// Command monsterlint runs the project's static-analysis suite: the
// go/analysis-style analyzers in internal/lint that enforce the
// engine's concurrency, clock, and error-handling invariants, plus the
// interprocedural call-graph analyzers (lockorder, goroutineleak,
// walexhaustive, statssurface).
//
// Usage:
//
//	monsterlint [-analyzers list] [-tests] [-list] [-json] [patterns ...]
//
// Patterns default to ./... relative to the enclosing module. The
// -analyzers list accepts names and the group aliases "syntactic" and
// "deep". -json emits every finding — including suppressed ones — as a
// machine-readable array for CI artifacts.
//
// Exit status: 0 clean, 3 unsuppressed findings, 1 operational error —
// the same convention as x/tools' multichecker, so CI can distinguish
// "code has findings" from "the linter broke". Suppressed findings are
// printed (and serialized) but never fail the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"monster/internal/lint"
)

// jsonFinding is the machine-readable finding shape for -json.
type jsonFinding struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Column     int    `json:"column"`
	Analyzer   string `json:"analyzer"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
}

func main() {
	var (
		analyzers = flag.String("analyzers", "all", "comma-separated analyzer subset to run (names or the groups \"syntactic\"/\"deep\")")
		tests     = flag.Bool("tests", false, "also analyze _test.go files (most analyzers exempt them)")
		list      = flag.Bool("list", false, "list analyzers and exit")
		asJSON    = flag.Bool("json", false, "emit findings as a JSON array (includes suppressed findings)")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	as, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run("", patterns, as, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	unsuppressed := 0
	for _, f := range findings {
		if !f.Suppressed {
			unsuppressed++
		}
	}

	if *asJSON {
		out := make([]jsonFinding, 0, len(findings))
		for _, f := range findings {
			out = append(out, jsonFinding{
				File:       f.Position.Filename,
				Line:       f.Position.Line,
				Column:     f.Position.Column,
				Analyzer:   f.Analyzer,
				Message:    f.Message,
				Suppressed: f.Suppressed,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if unsuppressed > 0 {
		fmt.Fprintf(os.Stderr, "monsterlint: %d unsuppressed finding(s)\n", unsuppressed)
		os.Exit(3)
	}
	if n := len(findings) - unsuppressed; n > 0 {
		fmt.Fprintf(os.Stderr, "monsterlint: clean (%d suppressed)\n", n)
	}
}
