// Command monsterlint runs the project's static-analysis suite: the
// go/analysis-style analyzers in internal/lint that enforce the
// engine's concurrency, clock, and error-handling invariants.
//
// Usage:
//
//	monsterlint [-analyzers list] [-tests] [-list] [patterns ...]
//
// Patterns default to ./... relative to the enclosing module.
// Exit status: 0 clean, 3 findings, 1 operational error — the same
// convention as x/tools' multichecker, so CI can distinguish "code
// has findings" from "the linter broke".
package main

import (
	"flag"
	"fmt"
	"os"

	"monster/internal/lint"
)

func main() {
	var (
		analyzers = flag.String("analyzers", "all", "comma-separated analyzer subset to run")
		tests     = flag.Bool("tests", false, "also analyze _test.go files (most analyzers exempt them)")
		list      = flag.Bool("list", false, "list analyzers and exit")
	)
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-16s %s\n", a.Name, a.Doc)
		}
		return
	}

	as, err := lint.ByName(*analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run("", patterns, as, *tests)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "monsterlint: %d finding(s)\n", len(findings))
		os.Exit(3)
	}
}
