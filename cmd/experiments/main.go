// Command experiments regenerates the paper's evaluation artifacts:
// every table and figure of Section IV plus the measured claims of
// Section III. Each experiment prints a table comparing this
// reproduction against the paper's reported numbers.
//
//	experiments -list
//	experiments -run fig16
//	experiments -run all            # full paper-scale sweep
//	experiments -run all -quick     # reduced scale, seconds instead of minutes
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"monster"
	"monster/internal/clock"
)

func main() {
	var (
		run   = flag.String("run", "all", "experiment id or 'all'")
		quick = flag.Bool("quick", false, "reduced scale for fast runs")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range monster.ExperimentIDs() {
			fmt.Println(id)
		}
		return
	}

	ids := []string{*run}
	if *run == "all" {
		ids = monster.ExperimentIDs()
	}
	clk := clock.NewReal()
	failed := 0
	for _, id := range ids {
		start := clk.Now()
		tbl, err := monster.RunExperiment(id, *quick)
		if err != nil {
			log.Printf("experiments: %s failed: %v", id, err)
			failed++
			continue
		}
		fmt.Print(tbl.Format())
		fmt.Printf("(%s in %v)\n\n", id, clk.Now().Sub(start).Round(time.Millisecond))
	}
	if failed > 0 {
		os.Exit(1)
	}
}
