// Command mquery is a consumer-side client for the Metrics Builder
// API — the role HiperJobViz plays in the paper. It requests a time
// range at a downsampling interval and prints the per-node series (or
// a summary), optionally using zlib transport compression.
//
//	mquery -url http://localhost:8080 -last 1h -interval 5m -agg max
//	mquery -url http://localhost:8080 -last 6h -nodes 10.101.1.1 -full
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strings"
	"time"

	"monster"
	"monster/internal/clock"
)

func main() {
	var (
		url      = flag.String("url", "http://localhost:8080", "Metrics Builder API base URL")
		startS   = flag.String("start", "", "range start (RFC3339); empty uses -last")
		endS     = flag.String("end", "", "range end (RFC3339); empty means now")
		last     = flag.Duration("last", time.Hour, "query the trailing window when -start is empty")
		interval = flag.Duration("interval", 5*time.Minute, "downsampling interval")
		agg      = flag.String("agg", "max", "aggregate: max min mean sum count first last stddev median")
		nodesS   = flag.String("nodes", "", "comma-separated node subset (empty = all)")
		jobs     = flag.Bool("jobs", false, "include job info")
		compress = flag.Bool("compress", true, "zlib transport compression")
		full     = flag.Bool("full", false, "print every series point (default prints a summary)")
		timeout  = flag.Duration("timeout", 2*time.Minute, "request timeout")
		stats    = flag.Bool("stats", false, "print storage statistics and exit")
	)
	flag.Parse()

	if *stats {
		printStats(*url, *timeout)
		return
	}

	end := clock.NewReal().Now().UTC()
	if *endS != "" {
		t, err := time.Parse(time.RFC3339, *endS)
		if err != nil {
			log.Fatalf("mquery: bad -end: %v", err)
		}
		end = t
	}
	start := end.Add(-*last)
	if *startS != "" {
		t, err := time.Parse(time.RFC3339, *startS)
		if err != nil {
			log.Fatalf("mquery: bad -start: %v", err)
		}
		start = t
	}

	req := monster.Request{
		Start:       start,
		End:         end,
		Interval:    *interval,
		Aggregate:   *agg,
		IncludeJobs: *jobs,
	}
	if *nodesS != "" {
		req.Nodes = strings.Split(*nodesS, ",")
	}

	client := &monster.BuilderClient{BaseURL: *url, Compress: *compress}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	res, err := client.Fetch(ctx, req)
	if err != nil {
		log.Fatalf("mquery: %v", err)
	}

	fmt.Printf("window [%s, %s) interval %v agg %s\n", start.Format(time.RFC3339), end.Format(time.RFC3339), *interval, *agg)
	fmt.Printf("transfer: %d wire bytes, %d decoded bytes, %v\n", res.WireBytes, res.BodyBytes, res.TransferTime.Round(time.Millisecond))
	printBuilderStats(res.Stats)
	resp := res.Response
	fmt.Printf("nodes: %d\n", len(resp.Nodes))
	for _, ns := range resp.Nodes {
		if *full {
			printFull(ns)
		} else {
			printSummary(ns)
		}
	}
	if *jobs {
		fmt.Printf("jobs: %d\n", len(resp.Jobs))
		for _, j := range resp.Jobs {
			finish := "running"
			if j.FinishTime > 0 {
				finish = time.Unix(j.FinishTime, 0).UTC().Format(time.RFC3339)
			}
			fmt.Printf("  job %s user=%s slots=%d nodes=%d submit=%s finish=%s\n",
				j.JobID, j.User, j.Slots, j.NodeCount,
				time.Unix(j.SubmitTime, 0).UTC().Format(time.RFC3339), finish)
		}
	}
}

// printBuilderStats prints the server-side build breakdown carried in
// the X-Monster-Stats header: what the builder queried, how much it
// scanned, and where the time went per stage.
func printBuilderStats(st monster.BuilderStats) {
	if st.Queries == 0 {
		return // header absent (older server) — nothing to report
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	cached := ""
	if st.CacheHit {
		cached = " (cache hit)"
	}
	fmt.Printf("builder: %d queries, %d series, %d points merged%s\n", st.Queries, st.Series, st.Points, cached)
	fmt.Printf("scanned: %d series, %d points, %d bytes (%d blocks decoded, %d from cold tier, %d pruned)\n",
		st.TSDB.SeriesScanned, st.TSDB.PointsScanned, st.TSDB.BytesScanned,
		st.TSDB.BlocksDecoded, st.TSDB.BlocksFromDisk, st.TSDB.BlocksSkipped)
	if st.TSDB.Tier != "" {
		// PointsScanned spans every query the builder merged (including
		// non-tiered ones), so only the absolute avoidance is meaningful.
		fmt.Printf("planner: served from tier %s (~%d raw points avoided)\n",
			st.TSDB.Tier, st.TSDB.TierRawEquivalent)
	}
	fmt.Printf("payload: %d bytes raw -> %d bytes compressed\n", st.BytesRaw, st.BytesCompressed)
	fmt.Printf("stages:  plan %.2fms, query %.2fms, merge %.2fms, encode %.2fms, compress %.2fms, total %.2fms\n",
		ms(st.PlanTime), ms(st.QueryTime), ms(st.MergeTime), ms(st.EncodeTime), ms(st.CompressTime), ms(st.Total))
}

func metricNames(ns monster.NodeSeries) []string {
	names := make([]string, 0, len(ns.Metrics))
	for name := range ns.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// printSummary prints min/max/last per metric for one node.
func printSummary(ns monster.NodeSeries) {
	fmt.Printf("  %s:\n", ns.NodeID)
	for _, name := range metricNames(ns) {
		sd := ns.Metrics[name]
		if len(sd.Values) == 0 {
			fmt.Printf("    %-22s (no data)\n", name)
			continue
		}
		lo, hi := sd.Values[0], sd.Values[0]
		for _, v := range sd.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		fmt.Printf("    %-22s %4d buckets  min=%.1f max=%.1f last=%.1f\n",
			name, len(sd.Values), lo, hi, sd.Values[len(sd.Values)-1])
	}
}

// printStats fetches and prints /v1/stats.
func printStats(baseURL string, timeout time.Duration) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/stats", nil)
	if err != nil {
		log.Fatalf("mquery: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatalf("mquery: %v", err)
	}
	defer resp.Body.Close()
	var body struct {
		Points       int64 `json:"points"`
		DataBytes    int64 `json:"data_bytes"`
		IndexBytes   int64 `json:"index_bytes"`
		Shards       int   `json:"shards"`
		Measurements []struct {
			Name   string `json:"name"`
			Series int    `json:"series"`
		} `json:"measurements"`
		StorageCache *struct {
			Hits      int64 `json:"hits"`
			Misses    int64 `json:"misses"`
			Evictions int64 `json:"evictions"`
			Resident  int64 `json:"resident_bytes"`
			Budget    int64 `json:"budget_bytes"`
			Entries   int   `json:"entries"`
		} `json:"storage_cache"`
		StorageTiers []struct {
			Target    string `json:"target"`
			Source    string `json:"source"`
			Aggregate string `json:"aggregate"`
			IntervalS int64  `json:"interval_s"`
			Points    int64  `json:"points"`
			Watermark int64  `json:"watermark"`
		} `json:"storage_tiers"`
		StorageCold *struct {
			BlocksCold     int64 `json:"blocks_cold"`
			ColdBytes      int64 `json:"cold_bytes"`
			ResidentBlocks int64 `json:"resident_blocks"`
			ResidentBytes  int64 `json:"resident_bytes"`
			BudgetBytes    int64 `json:"budget_bytes"`
			Files          int   `json:"files"`
			FileBytes      int64 `json:"file_bytes"`
			Spills         int64 `json:"spills"`
			Reads          int64 `json:"reads"`
			Compactions    int64 `json:"compactions"`
		} `json:"storage_cold"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		log.Fatalf("mquery: %v", err)
	}
	fmt.Printf("points: %d\ndata: %.2f MB (+%.2f MB index)\nshards: %d\n",
		body.Points, float64(body.DataBytes)/1e6, float64(body.IndexBytes)/1e6, body.Shards)
	fmt.Println("measurements:")
	for _, m := range body.Measurements {
		fmt.Printf("  %-14s %6d series\n", m.Name, m.Series)
	}
	if c := body.StorageCache; c != nil {
		total := c.Hits + c.Misses
		rate := 0.0
		if total > 0 {
			rate = 100 * float64(c.Hits) / float64(total)
		}
		budget := "unbounded"
		if c.Budget > 0 {
			budget = fmt.Sprintf("%.2f MB", float64(c.Budget)/1e6)
		}
		fmt.Printf("decode cache: %d hits / %d misses (%.1f%% hit rate), %d evictions, %.2f MB resident of %s budget, %d blocks\n",
			c.Hits, c.Misses, rate, c.Evictions, float64(c.Resident)/1e6, budget, c.Entries)
	}
	if c := body.StorageCold; c != nil {
		budget := "no budget"
		if c.BudgetBytes > 0 {
			budget = fmt.Sprintf("%.2f MB budget", float64(c.BudgetBytes)/1e6)
		}
		fmt.Printf("cold tier: %d blocks spilled (%.2f MB), %d resident (%.2f MB, %s), %d files (%.2f MB), %d spills, %d reads, %d compactions\n",
			c.BlocksCold, float64(c.ColdBytes)/1e6, c.ResidentBlocks, float64(c.ResidentBytes)/1e6, budget,
			c.Files, float64(c.FileBytes)/1e6, c.Spills, c.Reads, c.Compactions)
	}
	if len(body.StorageTiers) > 0 {
		fmt.Println("rollup tiers:")
		for _, ti := range body.StorageTiers {
			fmt.Printf("  %-22s %s(%s) @%ds  %8d points  watermark=%s\n",
				ti.Target, ti.Aggregate, ti.Source, ti.IntervalS, ti.Points,
				time.Unix(ti.Watermark, 0).UTC().Format(time.RFC3339))
		}
	}
}

// printFull prints every bucket of every metric for one node.
func printFull(ns monster.NodeSeries) {
	fmt.Printf("  %s:\n", ns.NodeID)
	for _, name := range metricNames(ns) {
		sd := ns.Metrics[name]
		fmt.Printf("    %s:\n", name)
		for i := range sd.Times {
			fmt.Printf("      %s  %.2f\n", time.Unix(sd.Times[i], 0).UTC().Format(time.RFC3339), sd.Values[i])
		}
	}
}
