// Command monsterd runs a complete MonSTer deployment over a simulated
// cluster: node physics, BMC fleet, resource manager with a synthetic
// workload, the Metrics Collector, and the Metrics Builder HTTP API.
//
// The simulation advances at -scale simulated seconds per wall-clock
// second, so a day of telemetry can be produced in minutes. Query the
// builder with cmd/mquery or any HTTP client:
//
//	monsterd -nodes 64 -scale 60 -listen :8080
//	curl 'http://localhost:8080/v1/metrics?start=<epoch>&end=<epoch>&interval=5m&agg=max'
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"monster"
	"monster/internal/clock"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 64, "simulated cluster size (467 = paper scale)")
		scale     = flag.Float64("scale", 60, "simulated seconds per wall-clock second")
		listen    = flag.String("listen", ":8080", "Metrics Builder API listen address")
		schedAddr = flag.String("sched-listen", "", "optional resource-manager API listen address (e.g. :8081)")
		seed      = flag.Int64("seed", 1, "simulation seed")
		schema    = flag.String("schema", "optimized", "storage schema: optimized | previous")
		duration  = flag.Duration("duration", 0, "stop after this wall-clock duration (0 = run until interrupted)")
		warmup    = flag.Duration("warmup", 30*time.Minute, "simulated warmup before serving (fills the DB)")
		retention = flag.Duration("retention", 0, "drop data older than this (0 = keep everything)")
		blockSize = flag.Int("block-size", 0, "storage seal threshold in points: columns this long compress into immutable blocks (0 = default 1024, negative = disable compression)")
		snapshot  = flag.String("snapshot", "", "write a database snapshot to this file on shutdown")
		workload  = flag.String("workload", "", "replay a workload trace (.json from SaveTrace, or .swf from the Parallel Workloads Archive)")

		walDir        = flag.String("wal-dir", "", "enable crash-safe storage: write-ahead log + checkpoint snapshots in this directory; restarts recover automatically")
		fsync         = flag.String("fsync", "interval", "WAL fsync policy: always | interval | never")
		fsyncInterval = flag.Duration("fsync-interval", time.Second, "fsync cadence under -fsync interval (bounds power-loss exposure)")
		snapInterval  = flag.Duration("snapshot-interval", 5*time.Minute, "background checkpoint (snapshot + WAL truncation) cadence when -wal-dir is set")

		decodeCacheMB = flag.Int64("decode-cache-mb", 0, "sealed-block decode cache budget in MiB (0 = default 64, negative = unbounded)")
		coldDir       = flag.String("cold-dir", "", "enable the file-backed cold tier: sealed blocks past -cold-after spill compressed payloads to segment files in this directory")
		coldAfter     = flag.Duration("cold-after", time.Hour, "age past which sealed blocks spill to -cold-dir")
		coldMaxMB     = flag.Int64("cold-max-resident-mb", 0, "resident compressed sealed-block budget in MiB: oldest blocks past it spill to -cold-dir regardless of age (0 = age-only)")
		plannerOff    = flag.Bool("planner-off", false, "disable the tier-aware query planner (A/B baseline: aggregates always scan raw storage)")
		rawRetention  = flag.Duration("raw-retention", 0, "expire raw samples older than this once every covering -rollup tier has materialized them (0 = keep raw forever)")

		forward        = flag.String("forward", "", "relay every routed point to a peer monsterd push endpoint (e.g. http://peer:8080/v1/ingest/write)")
		forwardOnly    = flag.Bool("forward-only", false, "skip local storage and act as a pure relay (requires -forward)")
		scrape         = flag.String("scrape", "", "comma-separated Prometheus-style exposition endpoints to scrape")
		scrapeInterval = flag.Duration("scrape-interval", time.Minute, "scrape cadence for -scrape targets")
		ingestQueue    = flag.Int("ingest-queue", 0, "pipeline stage queue depth in batches (0 = default 64)")
		ingestOverflow = flag.String("ingest-overflow", "block", "full-queue policy: block | drop-oldest")
		sinkDebug      = flag.String("sink-debug", "", "render every routed point as line protocol to this file (\"-\" = stdout)")
	)
	var routes []string
	flag.Func("route", "router rule, repeatable (add_tag:k=v[@Measurement] | rename_tag:old=new | drop_tag:k | rename_measurement:old=new | drop:Measurement | derive:Out.F=In.F*scale[+offset])", func(s string) error {
		routes = append(routes, s)
		return nil
	})
	var rollups []monster.RollupSpec
	flag.Func("rollup", "materialized rollup tier, repeatable (Source.Field:agg@interval, e.g. Power.Reading:max@5m; chain tiers by using a prior target as Source)", func(s string) error {
		spec, err := parseRollupFlag(s)
		if err != nil {
			return err
		}
		rollups = append(rollups, spec)
		return nil
	})
	flag.Parse()

	// -decode-cache-mb speaks MiB; Config speaks bytes. Keep the two
	// sentinels intact: 0 = engine default, negative = unbounded.
	cacheBytes := *decodeCacheMB
	if cacheBytes > 0 {
		cacheBytes <<= 20
	}
	// -cold-max-resident-mb likewise speaks MiB; 0 = age-only spilling.
	coldBudget := *coldMaxMB
	if coldBudget > 0 {
		coldBudget <<= 20
	}
	if coldBudget != 0 && *coldDir == "" {
		log.Fatalf("monsterd: -cold-max-resident-mb needs -cold-dir")
	}
	cfg := monster.Config{
		Nodes: *nodes, Seed: *seed, ConcurrentQueries: true,
		Retention:         *retention,
		BlockSize:         *blockSize,
		AlertRules:        monster.DefaultAlertRules(),
		IngestRules:       routes,
		IngestQueue:       *ingestQueue,
		IngestOverflow:    *ingestOverflow,
		ForwardTo:         *forward,
		ForwardOnly:       *forwardOnly,
		ScrapeInterval:    *scrapeInterval,
		Rollups:           rollups,
		RawRetention:      *rawRetention,
		DecodeCacheBytes:  cacheBytes,
		StoragePlannerOff: *plannerOff,
	}
	if *coldDir != "" {
		cfg.ColdDir = *coldDir
		cfg.ColdAfter = *coldAfter
		cfg.ColdMaxResidentBytes = coldBudget
	}
	if *rawRetention > 0 && len(rollups) == 0 {
		log.Fatalf("monsterd: -raw-retention needs at least one -rollup tier to cover the expired range")
	}
	if *scrape != "" {
		cfg.ScrapeTargets = strings.Split(*scrape, ",")
	}
	if *sinkDebug != "" {
		if *sinkDebug == "-" {
			cfg.DebugSink = os.Stdout
		} else {
			f, err := os.Create(*sinkDebug)
			if err != nil {
				log.Fatalf("monsterd: -sink-debug: %v", err)
			}
			defer f.Close()
			cfg.DebugSink = f
		}
	}
	if *walDir != "" {
		policy, err := monster.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("monsterd: %v", err)
		}
		cfg.WALDir = *walDir
		cfg.FsyncPolicy = policy
		cfg.FsyncInterval = *fsyncInterval
		cfg.SnapshotInterval = *snapInterval
	}
	switch *schema {
	case "optimized":
		cfg.Schema = monster.SchemaOptimized
	case "previous":
		cfg.Schema = monster.SchemaPrevious
	default:
		log.Fatalf("monsterd: unknown schema %q", *schema)
	}
	if *workload != "" {
		f, err := os.Open(*workload)
		if err != nil {
			log.Fatalf("monsterd: %v", err)
		}
		if strings.HasSuffix(*workload, ".swf") {
			trace, skipped, err := monster.LoadSWF(f, cfg.Start, 36)
			if err != nil {
				log.Fatalf("monsterd: %v", err)
			}
			log.Printf("monsterd: replaying %d SWF jobs (%d skipped)", trace.Len(), skipped)
			cfg.Trace = trace
		} else {
			trace, err := monster.LoadTrace(f)
			if err != nil {
				log.Fatalf("monsterd: %v", err)
			}
			log.Printf("monsterd: replaying %d traced jobs", trace.Len())
			cfg.Trace = trace
		}
		if err := f.Close(); err != nil {
			log.Fatalf("monsterd: %v", err)
		}
	}
	sys, err := monster.NewSystem(cfg)
	if err != nil {
		log.Fatalf("monsterd: %v", err)
	}
	if *walDir != "" {
		rec := sys.Recovery
		log.Printf("monsterd: storage recovery: snapshot=%t (%d points), wal records=%d points=%d torn_frames=%d",
			rec.SnapshotLoaded, rec.SnapshotPoints, rec.Records, rec.Points, rec.TornFrames)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *duration)
		defer cancel()
	}

	log.Printf("monsterd: warming up %v of simulated time over %d nodes", *warmup, *nodes)
	if err := sys.AdvanceCollecting(ctx, *warmup); err != nil {
		log.Fatalf("monsterd: warmup: %v", err)
	}
	st := sys.Collector.Stats()
	log.Printf("monsterd: warmup done: %d cycles, %d points, sim time %v", st.Cycles, st.PointsWritten, sys.Now().Format(time.RFC3339))

	mux := http.NewServeMux()
	mux.Handle("/v1/ingest/write", sys.Push)
	mux.Handle("/", sys.BuilderAPI)
	go func() {
		log.Printf("monsterd: Metrics Builder API + push receiver on %s", *listen)
		if err := http.ListenAndServe(*listen, mux); err != nil {
			log.Fatalf("monsterd: builder API: %v", err)
		}
	}()
	go func() {
		// Asynchronous stage workers: pushed and scraped points flow
		// through the bounded queues; the simulation loop's poll cycles
		// enqueue instead of writing inline.
		if err := sys.RunIngest(ctx); err != nil && ctx.Err() == nil {
			log.Fatalf("monsterd: ingest pipeline: %v", err)
		}
	}()
	if *schedAddr != "" {
		go func() {
			log.Printf("monsterd: resource-manager API on %s", *schedAddr)
			if err := http.ListenAndServe(*schedAddr, sys.SchedAPI); err != nil {
				log.Fatalf("monsterd: scheduler API: %v", err)
			}
		}()
	}

	clk := clock.NewReal()
	go progress(ctx, clk, sys)
	if *walDir != "" {
		go func() {
			if err := sys.RunCheckpoints(ctx, clk); err != nil && ctx.Err() == nil {
				log.Fatalf("monsterd: checkpoint loop: %v", err)
			}
		}()
	}
	err = sys.RunLive(ctx, clk, *scale, time.Second)
	if err == context.Canceled || err == context.DeadlineExceeded {
		final := sys.Collector.Stats()
		fmt.Printf("monsterd: stopped at sim time %v after %d cycles, %d points written, %d BMC requests (%d failed)\n",
			sys.Now().Format(time.RFC3339), final.Cycles, final.PointsWritten, final.BMCRequests, final.BMCFailures)
		if *snapshot != "" {
			if err := sys.DB.SaveFile(*snapshot); err != nil {
				log.Fatalf("monsterd: snapshot: %v", err)
			}
			log.Printf("monsterd: snapshot written to %s", *snapshot)
		}
		if *walDir != "" {
			// A clean shutdown checkpoints so the next start replays an
			// empty log; a kill -9 skips this and replays the WAL.
			if err := sys.Checkpoint(); err != nil {
				log.Fatalf("monsterd: final checkpoint: %v", err)
			}
			log.Printf("monsterd: checkpointed %s", *walDir)
		}
		return
	}
	if err != nil {
		log.Fatalf("monsterd: %v", err)
	}
}

// parseRollupFlag parses "Source.Field:agg@interval" (interval is a Go
// duration) into a RollupSpec. The target name is always derived, so
// chained tiers reference parents by the derived "<Source>_<agg>_<N>s".
func parseRollupFlag(s string) (monster.RollupSpec, error) {
	var spec monster.RollupSpec
	head, ivS, ok := strings.Cut(s, "@")
	if !ok {
		return spec, fmt.Errorf("want Source.Field:agg@interval, got %q", s)
	}
	sf, agg, ok := strings.Cut(head, ":")
	if !ok {
		return spec, fmt.Errorf("want Source.Field:agg@interval, got %q", s)
	}
	src, field, ok := strings.Cut(sf, ".")
	if !ok {
		return spec, fmt.Errorf("want Source.Field:agg@interval, got %q", s)
	}
	iv, err := time.ParseDuration(ivS)
	if err != nil {
		return spec, fmt.Errorf("bad rollup interval %q: %v", ivS, err)
	}
	if iv < time.Second || iv%time.Second != 0 {
		return spec, fmt.Errorf("rollup interval %v must be a whole number of seconds", iv)
	}
	spec = monster.RollupSpec{Source: src, Field: field, Aggregate: agg, Interval: int64(iv / time.Second)}
	return spec, spec.Validate()
}

func progress(ctx context.Context, clk clock.Clock, sys *monster.System) {
	seenAlerts := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-clk.After(10 * time.Second):
			st := sys.Collector.Stats()
			d := sys.DB.Disk()
			log.Printf("monsterd: sim=%v cycles=%d points=%d volume=%.1f MB jobs-running=%d",
				sys.Now().Format("01-02 15:04"), st.Cycles, st.PointsWritten,
				float64(d.TotalBytes())/1e6, len(sys.QMaster.Running()))
			if sys.Alerts != nil {
				hist := sys.Alerts.History()
				for _, ev := range hist[seenAlerts:] {
					log.Printf("monsterd: ALERT %s", ev)
				}
				seenAlerts = len(hist)
			}
		}
	}
}
