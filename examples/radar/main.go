// Radar: reproduce the paper's Figs 7–9 — radar-chart node profiles
// (normal vs critical), a node's historical status trend with
// cluster-coloured bands, and the per-user resource-usage histogram
// matrix. All artifacts are written as SVG files.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"monster"
)

func main() {
	sys := monster.New(monster.Config{Nodes: 32, Seed: 5})
	ctx := context.Background()

	// Warm up, then overheat one node so the "critical" radar shape
	// exists (Fig 7 right).
	if err := sys.AdvanceCollecting(ctx, 30*time.Minute); err != nil {
		log.Fatal(err)
	}
	hot := sys.Nodes.Node(2)
	hot.ForceLoad(1.0, 160)
	hot.Inject(monster.FaultOverheat)

	// Record a per-minute history of one node for the Fig 8 trend.
	trendNode := sys.Nodes.Node(0)
	var times []int64
	var history [][]float64
	for i := 0; i < 90; i++ {
		if err := sys.AdvanceCollecting(ctx, time.Minute); err != nil {
			log.Fatal(err)
		}
		// Load phase in the middle third.
		switch {
		case i == 30:
			trendNode.ForceLoad(0.95, 120)
		case i == 60:
			trendNode.ForceLoad(0, 0)
		}
		hv := trendNode.HealthVector()
		times = append(times, sys.Now().Unix())
		history = append(history, hv[:])
	}

	dims := monster.HealthDimensions()

	// Fig 7: radar profiles, clustered.
	ids := make([]string, sys.Nodes.Len())
	vecs := make([][]float64, sys.Nodes.Len())
	for i := 0; i < sys.Nodes.Len(); i++ {
		hv := sys.Nodes.Node(i).HealthVector()
		ids[i] = sys.Nodes.Node(i).Name()
		vecs[i] = hv[:]
	}
	norm := monster.Normalize(vecs, monster.ComputeBounds(vecs))
	km, err := monster.KMeans(norm, monster.KMeansOptions{K: 7, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	ranks := monster.ClusterByActivity(km.Centroids)
	profiles, err := monster.BuildRadarProfiles(ids, dims[:], vecs, km.Assignment)
	if err != nil {
		log.Fatal(err)
	}
	writeSVG("radar_normal.svg", monster.RadarSVG(&profiles[0], 260))
	writeSVG("radar_critical.svg", monster.RadarSVG(&profiles[2], 260))
	m0, m2 := profiles[0].Morph(), profiles[2].Morph()
	fmt.Printf("radar: %s area=%.3f peak=%s | %s area=%.3f peak=%s\n",
		profiles[0].NodeID, m0.Area, m0.PeakName,
		profiles[2].NodeID, m2.Area, m2.PeakName)

	// Fig 8: historical trend with cluster bands.
	histNorm := monster.Normalize(history, monster.ComputeBounds(history))
	histKM, err := monster.KMeans(histNorm, monster.KMeansOptions{K: 3, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	trend := monster.BuildTrend(trendNode.Name(), times, dims[:], history,
		histKM, monster.ComputeBounds(history))
	writeSVG("trend.svg", monster.TrendSVG(trend, monster.ClusterByActivity(histKM.Centroids), 1000, 260))
	fmt.Printf("trend: %d samples, %d cluster bands\n", len(times), len(trend.Bands))

	// Fig 9 right panel: per-user usage histograms from accounting.
	samples := map[string]map[string][]float64{}
	for _, rec := range sys.QMaster.Accounting(sys.Config.Start) {
		u := samples[rec.Owner]
		if u == nil {
			u = map[string][]float64{}
			samples[rec.Owner] = u
		}
		u["cpu hours"] = append(u["cpu hours"], rec.CPUSeconds/3600)
		u["max vmem GB"] = append(u["max vmem GB"], rec.MaxVMemGB)
		u["wallclock h"] = append(u["wallclock h"], rec.WallClock.Hours())
	}
	if len(samples) > 0 {
		matrix := monster.BuildUserUsageMatrix(samples, 10)
		writeSVG("usage_matrix.svg", monster.HistogramMatrixSVG(matrix, 80))
		if top, err := matrix.TopConsumer("cpu hours"); err == nil {
			fmt.Printf("usage matrix: %d users; top CPU consumer: %s\n", len(matrix.Users), top)
		}
	} else {
		fmt.Println("usage matrix: no completed jobs yet (short run)")
	}

	// Compose everything into one static HTML dashboard.
	var usageMatrix *monster.UserUsageMatrix
	if len(samples) > 0 {
		usageMatrix = monster.BuildUserUsageMatrix(samples, 10)
	}
	dash := &monster.Dashboard{
		Title:     fmt.Sprintf("MonSTer dashboard — %d nodes", sys.Nodes.Len()),
		Generated: sys.Now(),
		Radars:    profiles,
		Ranks:     ranks,
		Trend:     trend,
		Usage:     usageMatrix,
		Footnotes: []string{"simulated cluster; views reproduce the paper's Figs 7-9"},
	}
	html, err := dash.HTML()
	if err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile("dashboard.html", []byte(html), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote radar_normal.svg, radar_critical.svg, trend.svg, usage_matrix.svg, dashboard.html")
}

func writeSVG(name, svg string) {
	if err := os.WriteFile(name, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
}
