// Timeline: reproduce the paper's Fig 6 — the job-scheduling timeline
// with per-user job and host counts. A cluster runs the default user
// mix (MPI users spanning dozens of hosts, array users with many
// single-core tasks) for six simulated hours; the job data is read back
// through the Metrics Builder API exactly the way HiperJobViz does, and
// the view is written as an SVG.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"monster"
)

func main() {
	sys := monster.New(monster.Config{Nodes: 48, Seed: 11})
	ctx := context.Background()

	fmt.Println("simulating 6 hours of cluster operation...")
	if err := sys.AdvanceCollecting(ctx, 6*time.Hour); err != nil {
		log.Fatal(err)
	}

	// Fetch job info through the builder (the consumer-facing path).
	resp, _, err := sys.Builder.Fetch(ctx, monster.Request{
		Start:       sys.Config.Start,
		End:         sys.Now(),
		IncludeJobs: true,
		Nodes:       []string{sys.Nodes.Node(0).Addr()}, // metrics not needed; jobs are global
	})
	if err != nil {
		log.Fatal(err)
	}

	jobs := make([]monster.TimelineJob, 0, len(resp.Jobs))
	for _, j := range resp.Jobs {
		jobs = append(jobs, monster.TimelineJob{
			JobID: j.JobID, User: j.User,
			SubmitTime: j.SubmitTime, StartTime: j.StartTime, FinishTime: j.FinishTime,
			Slots: int(j.Slots), NodeCount: int(j.NodeCount),
		})
	}
	tl := monster.BuildTimeline(jobs, sys.Config.Start.Unix(), sys.Now().Unix())

	// Distinct hosts per user from the node→jobs correlation (the
	// paper's "997 jobs but only 29 hosts" statistic).
	nodeJobs := make(map[string][]string)
	for _, nj := range resp.NodeJobs {
		nodeJobs[nj.NodeID] = append(nodeJobs[nj.NodeID], nj.Jobs...)
	}
	owner := make(map[string]string, len(resp.Jobs))
	for _, j := range resp.Jobs {
		owner[j.JobID] = j.User
	}
	tl.OverrideHosts(monster.DistinctUserHosts(nodeJobs, owner))

	fmt.Printf("\n%-10s %6s %6s %8s %12s %12s\n", "user", "jobs", "hosts", "slots", "mean wait", "max wait")
	for _, u := range tl.Users {
		fmt.Printf("%-10s %6d %6d %8d %12s %12s\n",
			u.User, u.Jobs, u.Hosts, u.TotalSlots,
			u.MeanWait.Round(time.Second), u.MaxWait.Round(time.Second))
	}

	svg := monster.TimelineSVG(tl, 1000)
	out := "timeline.svg"
	if err := os.WriteFile(out, []byte(svg), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwrote %s (%d jobs; gray = queueing, green = running)\n", out, len(tl.Jobs))
}
