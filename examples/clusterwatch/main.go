// Clusterwatch: the system-administrator scenario that motivates the
// paper — detect failing nodes from monitoring data alone. A 48-node
// cluster runs a production-like workload while two faults are
// injected mid-run (a cooling failure and a node crash). The watcher
// uses only what MonSTer stores: Health transitions from the BMCs,
// and k-means anomaly ranking over the nine-dimensional health
// vectors.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"monster"
)

func main() {
	sys := monster.New(monster.Config{Nodes: 48, Seed: 7})
	ctx := context.Background()

	// Let the cluster reach a steady working state.
	if err := sys.AdvanceCollecting(ctx, 45*time.Minute); err != nil {
		log.Fatal(err)
	}

	// Fault injection: one node loses cooling under load, and one
	// currently-busy node goes down hard (so running jobs are killed).
	hot := sys.Nodes.Node(4)
	dead := sys.Nodes.Node(8)
	for _, rep := range sys.QMaster.HostReports() {
		if rep.SlotsUsed > 0 && rep.Host != hot.Name() {
			if n, ok := sys.Nodes.ByName(rep.Host); ok {
				dead = n
				break
			}
		}
	}
	hot.ForceLoad(1.0, 150)
	hot.Inject(monster.FaultOverheat)
	dead.Inject(monster.FaultHostDown)
	fmt.Printf("injected: cooling failure on %s, crash on %s\n\n", hot.Name(), dead.Name())

	if err := sys.AdvanceCollecting(ctx, 45*time.Minute); err != nil {
		log.Fatal(err)
	}

	// 1. Health transitions: the paper's pre-processing stores only
	// state changes, so anomalies are exactly the stored rows.
	fmt.Println("== health transitions stored in the last 45 minutes ==")
	since := sys.Now().Add(-45 * time.Minute).Unix()
	res, err := sys.DB.Query(fmt.Sprintf(
		`SELECT "Status" FROM "Health" WHERE time >= %d GROUP BY "NodeId"`, since))
	if err != nil {
		log.Fatal(err)
	}
	alerts := 0
	for _, s := range res.Series {
		node, _ := s.Tags.Get("NodeId")
		for _, row := range s.Rows {
			state := []string{"OK", "Warning", "Critical"}[row.Values[0].I]
			fmt.Printf("  %s  %s -> %s\n", time.Unix(row.Time, 0).UTC().Format("15:04:05"), node, state)
			if row.Values[0].I > 0 {
				alerts++
			}
		}
	}
	fmt.Printf("  (%d abnormal transitions)\n\n", alerts)

	// 2. Cluster + anomaly ranking over live health vectors — the
	// HiperJobViz view (Fig 9): the faulted nodes must surface at the
	// top.
	ids := make([]string, sys.Nodes.Len())
	vecs := make([][]float64, sys.Nodes.Len())
	for i := 0; i < sys.Nodes.Len(); i++ {
		hv := sys.Nodes.Node(i).HealthVector()
		ids[i] = sys.Nodes.Node(i).Name()
		vecs[i] = hv[:]
	}
	bounds := monster.ComputeBounds(vecs)
	norm := monster.Normalize(vecs, bounds)
	km, err := monster.KMeans(norm, monster.KMeansOptions{K: 7, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== k-means host groups (k=7, nine health metrics) ==")
	for c, size := range km.Sizes {
		fmt.Printf("  group %d: %d nodes\n", c+1, size)
	}

	// Rank nodes by distance from the dominant ("normal status") group
	// centroid — a singleton outlier cluster is itself the anomaly.
	normalGroup := 0
	for c, size := range km.Sizes {
		if size > km.Sizes[normalGroup] {
			normalGroup = c
		}
	}
	type scored struct {
		idx  int
		dist float64
	}
	scoredNodes := make([]scored, len(norm))
	for i, v := range norm {
		var d float64
		for dim, x := range v {
			diff := x - km.Centroids[normalGroup][dim]
			d += diff * diff
		}
		scoredNodes[i] = scored{i, d}
	}
	sort.Slice(scoredNodes, func(a, b int) bool { return scoredNodes[a].dist > scoredNodes[b].dist })

	fmt.Println("\n== top anomalies (distance from the normal group) ==")
	for i := 0; i < 5 && i < len(scoredNodes); i++ {
		idx := scoredNodes[i].idx
		r := sys.Nodes.Node(idx).Readings()
		fmt.Printf("  %d. %-6s cpu=%.0f/%.0f °C power=%.0f W state=%s health=%s\n",
			i+1, ids[idx], r.CPUTempC[0], r.CPUTempC[1], r.PowerW, r.PowerState, r.HostHealth)
	}
	if top := ids[scoredNodes[0].idx]; top != hot.Name() && top != dead.Name() {
		fmt.Println("  (note: expected a faulted node on top)")
	}

	// 3. The resource manager's view: the dead host was detected and
	// its jobs failed over.
	fmt.Println("\n== resource manager ==")
	failed := 0
	for _, rec := range sys.QMaster.Accounting(sys.Config.Start) {
		if rec.Failed {
			failed++
		}
	}
	fmt.Printf("  jobs failed by the crash: %d\n", failed)
	fmt.Printf("  slots in use on surviving nodes: %d\n", sys.QMaster.SlotsInUse())
}
