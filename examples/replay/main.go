// Replay: reproducibility and durability workflow — freeze a synthetic
// workload trace to JSON, replay it through a fresh deployment,
// snapshot the resulting database to disk, and verify an identical
// re-run produces identical telemetry. Then the crash-safety half:
// run a deployment with a write-ahead log, kill it without warning,
// and recover every acknowledged point — including from a log whose
// tail was torn mid-frame. This is how a MonSTer study becomes
// repeatable: the trace and the snapshot are both portable artifacts,
// and the WAL makes a live deployment survive its own crashes.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"time"

	"monster"
)

func main() {
	ctx := context.Background()
	start := time.Date(2020, 4, 20, 12, 0, 0, 0, time.UTC)

	// 1. Generate and freeze a workload trace.
	trace := monster.GenerateWorkload(monster.DefaultUserMix(), start, 2*time.Hour, 99)
	traceFile, err := os.Create("workload.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.SaveTrace(traceFile); err != nil {
		log.Fatal(err)
	}
	if err := traceFile.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("froze %d submissions to workload.json\n", trace.Len())

	// 2. Replay it twice through independent deployments.
	run := func() (*monster.System, int64) {
		f, err := os.Open("workload.json")
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		replayed, err := monster.LoadTrace(f)
		if err != nil {
			log.Fatal(err)
		}
		sys := monster.New(monster.Config{
			Nodes: 24, Seed: 7, Start: start,
			Trace: replayed,
		})
		if err := sys.AdvanceCollecting(ctx, 2*time.Hour); err != nil {
			log.Fatal(err)
		}
		return sys, sys.DB.Stats().PointsWritten
	}
	sysA, pointsA := run()
	_, pointsB := run()
	fmt.Printf("replay A wrote %d points, replay B wrote %d points\n", pointsA, pointsB)
	if pointsA != pointsB {
		log.Fatal("replays diverged — reproducibility broken")
	}

	// 3. Snapshot the database and reload it.
	if err := sysA.DB.SaveFile("telemetry.db"); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat("telemetry.db")
	reloaded, err := monster.LoadDB("telemetry.db")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot telemetry.db: %.1f KB, %d points restored\n",
		float64(info.Size())/1000, reloaded.Disk().Points)

	// 4. The restored database answers the same queries.
	stmt := `SELECT mean("Reading") FROM "Power" GROUP BY "NodeId" LIMIT 1`
	r1, err := sysA.DB.Query(stmt)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := reloaded.Query(stmt)
	if err != nil {
		log.Fatal(err)
	}
	if len(r1.Series) != len(r2.Series) {
		log.Fatal("restored database answers differently")
	}
	fmt.Printf("verified: %d per-node series identical after restore\n", len(r2.Series))

	// 5. Kill-and-recover: the same deployment with a write-ahead log.
	// Every batch is logged before it applies, so abandoning the system
	// without any shutdown — exactly what kill -9 does — loses nothing.
	walDir := "waldir"
	if err := os.RemoveAll(walDir); err != nil {
		log.Fatal(err)
	}
	durable := func() *monster.System {
		sys, err := monster.NewSystem(monster.Config{
			Nodes: 16, Seed: 7, Start: start,
			WALDir: walDir, FsyncPolicy: monster.FsyncNever,
		})
		if err != nil {
			log.Fatal(err)
		}
		return sys
	}
	victim := durable()
	if err := victim.AdvanceCollecting(ctx, 10*time.Minute); err != nil {
		log.Fatal(err)
	}
	acked := victim.DB.Disk().Points
	fmt.Printf("durable run acknowledged %d points, then died without shutdown\n", acked)
	// victim is abandoned here: no close, no checkpoint — a simulated crash.

	survivor := durable()
	rec := survivor.Recovery
	fmt.Printf("recovery replayed %d WAL records (%d points, %d torn frames)\n",
		rec.Records, rec.Points, rec.TornFrames)
	if got := survivor.DB.Disk().Points; got != acked {
		log.Fatalf("recovered %d points, acknowledged %d — durability broken", got, acked)
	}

	// 6. Tear the log mid-frame, the way a power cut tears a partial
	// write, and recover again: the longest valid prefix survives.
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		log.Fatalf("no WAL segments found: %v", err)
	}
	// Tear the record-bearing segment (each reopen adds a small empty
	// one; the records live in the largest).
	sort.Slice(segs, func(i, j int) bool {
		si, _ := os.Stat(segs[i])
		sj, _ := os.Stat(segs[j])
		return si.Size() > sj.Size()
	})
	victim2 := segs[0]
	st, err := os.Stat(victim2)
	if err != nil {
		log.Fatal(err)
	}
	if err := os.Truncate(victim2, st.Size()-3); err != nil {
		log.Fatal(err)
	}
	repaired := durable()
	fmt.Printf("torn tail: recovery counted %d torn frame(s), kept %d of %d points\n",
		repaired.Recovery.TornFrames, repaired.DB.Disk().Points, acked)

	// 7. Checkpoint = snapshot + log truncation: the next start loads
	// the snapshot and replays an empty log.
	if err := repaired.Checkpoint(); err != nil {
		log.Fatal(err)
	}
	clean := durable()
	fmt.Printf("after checkpoint: snapshot=%t (%d points), %d records replayed\n",
		clean.Recovery.SnapshotLoaded, clean.Recovery.SnapshotPoints, clean.Recovery.Records)

	fmt.Println("artifacts: workload.json, telemetry.db, waldir/")
}
