// Replay: reproducibility workflow — freeze a synthetic workload trace
// to JSON, replay it through a fresh deployment, snapshot the resulting
// database to disk, and verify an identical re-run produces identical
// telemetry. This is how a MonSTer study becomes repeatable: the trace
// and the snapshot are both portable artifacts.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"time"

	"monster"
)

func main() {
	ctx := context.Background()
	start := time.Date(2020, 4, 20, 12, 0, 0, 0, time.UTC)

	// 1. Generate and freeze a workload trace.
	trace := monster.GenerateWorkload(monster.DefaultUserMix(), start, 2*time.Hour, 99)
	traceFile, err := os.Create("workload.json")
	if err != nil {
		log.Fatal(err)
	}
	if err := trace.SaveTrace(traceFile); err != nil {
		log.Fatal(err)
	}
	if err := traceFile.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("froze %d submissions to workload.json\n", trace.Len())

	// 2. Replay it twice through independent deployments.
	run := func() (*monster.System, int64) {
		f, err := os.Open("workload.json")
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		replayed, err := monster.LoadTrace(f)
		if err != nil {
			log.Fatal(err)
		}
		sys := monster.New(monster.Config{
			Nodes: 24, Seed: 7, Start: start,
			Trace: replayed,
		})
		if err := sys.AdvanceCollecting(ctx, 2*time.Hour); err != nil {
			log.Fatal(err)
		}
		return sys, sys.DB.Stats().PointsWritten
	}
	sysA, pointsA := run()
	_, pointsB := run()
	fmt.Printf("replay A wrote %d points, replay B wrote %d points\n", pointsA, pointsB)
	if pointsA != pointsB {
		log.Fatal("replays diverged — reproducibility broken")
	}

	// 3. Snapshot the database and reload it.
	if err := sysA.DB.SaveFile("telemetry.db"); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat("telemetry.db")
	reloaded, err := monster.LoadDB("telemetry.db")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot telemetry.db: %.1f KB, %d points restored\n",
		float64(info.Size())/1000, reloaded.Disk().Points)

	// 4. The restored database answers the same queries.
	stmt := `SELECT mean("Reading") FROM "Power" GROUP BY "NodeId" LIMIT 1`
	r1, err := sysA.DB.Query(stmt)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := reloaded.Query(stmt)
	if err != nil {
		log.Fatal(err)
	}
	if len(r1.Series) != len(r2.Series) {
		log.Fatal("restored database answers differently")
	}
	fmt.Printf("verified: %d per-node series identical after restore\n", len(r2.Series))
	fmt.Println("artifacts: workload.json, telemetry.db")
}
