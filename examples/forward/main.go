// Forward: a two-node ingest-pipeline deployment. Node A monitors an
// 8-node cluster, routes every collected point through declarative
// rules (tagging each one with its origin), stores it locally, and
// forwards the routed stream to node B's push receiver over HTTP in
// line protocol. Node B — a site-wide aggregator — ingests the pushed
// points alongside its own cluster's. Both ends expose exact
// per-stage accounting through /v1/stats.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"time"

	"monster"
)

func main() {
	// Node B: the aggregator. Its push receiver mounts next to the
	// Metrics Builder API, exactly as monsterd arranges it.
	nodeB := monster.New(monster.Config{Nodes: 2, Seed: 2})
	mux := http.NewServeMux()
	mux.Handle("/v1/ingest/write", nodeB.Push)
	mux.Handle("/", nodeB.BuilderAPI)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: mux}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	peer := "http://" + ln.Addr().String()
	fmt.Printf("node B (aggregator) listening on %s\n", peer)

	// Node A: an edge collector. -route rules tag the stream before it
	// fans out to the local tsdb sink and the forward sink.
	nodeA := monster.New(monster.Config{
		Nodes:       8,
		Seed:        1,
		ForwardTo:   peer + "/v1/ingest/write",
		IngestRules: []string{"add_tag:origin=node-a"},
	})

	ctx := context.Background()
	if err := nodeA.AdvanceCollecting(ctx, 10*time.Minute); err != nil {
		log.Fatal(err)
	}
	if err := nodeB.AdvanceCollecting(ctx, 10*time.Minute); err != nil {
		log.Fatal(err)
	}

	// Node A's view: every point went to both sinks.
	ast := nodeA.Ingest.Stats()
	fmt.Println("\nnode A pipeline:")
	for _, r := range ast.Receivers {
		fmt.Printf("  receiver %-8s received=%d dropped=%d\n", r.Name, r.PointsReceived, r.PointsDropped)
	}
	for _, s := range ast.Sinks {
		fmt.Printf("  sink     %-8s written=%d batches=%d forward_errors=%d\n",
			s.Name, s.PointsWritten, s.Batches, s.ForwardErrors)
	}

	// Node B's view, fetched the way an operator would: /v1/stats now
	// carries an "ingest" section with the same counters.
	resp, err := http.Get(peer + "/v1/stats")
	if err != nil {
		log.Fatal(err)
	}
	var stats struct {
		Points int64           `json:"points"`
		Ingest json.RawMessage `json:"ingest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		log.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnode B /v1/stats: %d points stored, ingest section:\n", stats.Points)
	var pretty map[string]any
	if err := json.Unmarshal(stats.Ingest, &pretty); err != nil {
		log.Fatal(err)
	}
	out, err := json.MarshalIndent(pretty, "  ", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n", out)

	// The forwarded stream is queryable on node B, grouped by the tag
	// node A's router injected.
	res, err := nodeB.DB.Query(`SELECT count("Reading") FROM "Power" GROUP BY "origin"`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nnode B Power points by origin:")
	for _, s := range res.Series {
		origin := "(local)"
		if v, ok := s.Tags.Get("origin"); ok {
			origin = v
		}
		fmt.Printf("  %-8s %d\n", origin, s.Rows[0].Values[0].I)
	}
}
