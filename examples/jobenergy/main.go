// Jobenergy: the paper's motivating correlation made actionable —
// attribute every node's measured power (collected out-of-band via the
// BMCs) to the jobs resident on it (the NodeJobs correlation the
// collector stores), producing a per-job and per-user energy bill. No
// agent runs on any compute node; everything is joined from the
// Metrics Builder API, exactly as an analysis consumer would.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"monster"
)

func main() {
	sys := monster.New(monster.Config{Nodes: 32, Seed: 21})
	ctx := context.Background()

	fmt.Println("simulating 4 hours of cluster operation...")
	if err := sys.AdvanceCollecting(ctx, 4*time.Hour); err != nil {
		log.Fatal(err)
	}

	// One consumer request carries everything the join needs: node
	// power at full resolution plus jobs and node-job correlations.
	resp, _, err := sys.Builder.Fetch(ctx, monster.Request{
		Start:       sys.Config.Start,
		End:         sys.Now(),
		Interval:    time.Minute, // full collection resolution
		Aggregate:   "mean",
		Metrics:     []monster.Metric{{Measurement: "Power", Label: "NodePower"}},
		IncludeJobs: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	in := monster.AttributionFromResponse(resp, 105 /* idle watts, C6320 */)
	res := monster.AttributeEnergy(in)

	fmt.Printf("\ncluster energy over the window: %.2f kWh\n", res.TotalJoules/3.6e6)
	fmt.Printf("  idle (no resident jobs):      %.2f kWh (%.0f%%)\n",
		res.IdleJoules/3.6e6, 100*res.IdleJoules/res.TotalJoules)
	fmt.Printf("  unattributed:                 %.2f kWh\n", res.UnattributedJoules/3.6e6)

	fmt.Printf("\n%-10s %10s %14s\n", "user", "energy", "share of total")
	for _, user := range res.TopUsers() {
		j := res.Users[user]
		fmt.Printf("%-10s %7.2f kWh %13.1f%%\n", user, j/3.6e6, 100*j/res.TotalJoules)
	}

	// The five most expensive jobs.
	type pair struct {
		key string
		je  *monster.JobEnergy
	}
	var jobs []pair
	for k, je := range res.Jobs {
		jobs = append(jobs, pair{k, je})
	}
	for i := 0; i < len(jobs); i++ {
		for j := i + 1; j < len(jobs); j++ {
			if jobs[j].je.Joules > jobs[i].je.Joules {
				jobs[i], jobs[j] = jobs[j], jobs[i]
			}
		}
	}
	fmt.Printf("\n%-12s %-10s %10s %14s\n", "job", "user", "energy", "node-hours")
	for i := 0; i < 5 && i < len(jobs); i++ {
		je := jobs[i].je
		fmt.Printf("%-12s %-10s %7.2f kWh %14.1f\n", jobs[i].key, je.User, je.KWh(), je.NodeSeconds/3600)
	}
}
