// Quickstart: bring up a complete MonSTer deployment over a 16-node
// simulated cluster, let it monitor for 30 simulated minutes, and ask
// the Metrics Builder for the last half hour of node power and
// temperature — the paper's Section III-D request shape (time range +
// interval + aggregate).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"monster"
)

func main() {
	// A System wires the whole pipeline: simulated nodes with BMCs, a
	// UGE-style resource manager running a synthetic workload, the
	// Metrics Collector, the time-series database, and the Metrics
	// Builder.
	sys := monster.New(monster.Config{Nodes: 16, Seed: 42})
	ctx := context.Background()

	// Advance simulated time; the collector fires every 60 s.
	if err := sys.AdvanceCollecting(ctx, 30*time.Minute); err != nil {
		log.Fatal(err)
	}
	st := sys.Collector.Stats()
	fmt.Printf("collected %d cycles, %d points, %d BMC requests (%d failed)\n",
		st.Cycles, st.PointsWritten, st.BMCRequests, st.BMCFailures)

	// Ask the builder: last 30 minutes, 5-minute buckets, max values.
	resp, stats, err := sys.Builder.Fetch(ctx, monster.Request{
		Start:     sys.Config.Start,
		End:       sys.Now(),
		Interval:  5 * time.Minute,
		Aggregate: "max",
		Metrics: []monster.Metric{
			{Measurement: "Power", Label: "NodePower"},
			{Measurement: "Thermal", Label: "CPU1Temp"},
			{Measurement: "UGE", Label: "CPUUsage"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("builder ran %d queries, scanned %d points\n\n", stats.Queries, stats.TSDB.PointsScanned)

	fmt.Printf("%-12s  %-10s  %-10s  %-10s\n", "node", "power (W)", "cpu1 (°C)", "cpu (%)")
	for _, node := range resp.Nodes {
		fmt.Printf("%-12s  %-10.1f  %-10.1f  %-10.1f\n",
			node.NodeID,
			lastValue(node.Metrics["Power/NodePower"]),
			lastValue(node.Metrics["Thermal/CPU1Temp"]),
			lastValue(node.Metrics["UGE/CPUUsage"]))
	}
}

func lastValue(sd monster.SeriesData) float64 {
	if len(sd.Values) == 0 {
		return 0
	}
	return sd.Values[len(sd.Values)-1]
}
