package monster_test

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"monster"
)

// TestEndToEndPipeline drives the full public surface: simulate a
// cluster, collect, serve the Metrics Builder API over HTTP, fetch
// with the compressed consumer client, and run the analysis layer on
// the result — the complete paper pipeline in one test.
func TestEndToEndPipeline(t *testing.T) {
	sys := monster.New(monster.Config{Nodes: 12, Seed: 3, ConcurrentQueries: true})
	ctx := context.Background()
	if err := sys.AdvanceCollecting(ctx, time.Hour); err != nil {
		t.Fatal(err)
	}

	st := sys.Collector.Stats()
	if st.Cycles != 60 {
		t.Fatalf("cycles = %d", st.Cycles)
	}
	if st.PointsWritten == 0 || st.BMCRequests != 60*12*4 {
		t.Fatalf("stats = %+v", st)
	}

	srv := httptest.NewServer(sys.BuilderAPI)
	defer srv.Close()
	client := &monster.BuilderClient{BaseURL: srv.URL, Compress: true}
	res, err := client.Fetch(ctx, monster.Request{
		Start:       sys.Config.Start,
		End:         sys.Now(),
		Interval:    5 * time.Minute,
		Aggregate:   "mean",
		IncludeJobs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Response.Nodes) != 12 {
		t.Fatalf("nodes = %d", len(res.Response.Nodes))
	}
	if res.WireBytes >= res.BodyBytes {
		t.Fatalf("compression did not shrink transport: %d vs %d", res.WireBytes, res.BodyBytes)
	}
	power := res.Response.Nodes[0].Metrics["Power/NodePower"]
	if len(power.Times) != 12 {
		t.Fatalf("power buckets = %d, want 12", len(power.Times))
	}
	for _, v := range power.Values {
		if v < 50 || v > 500 {
			t.Fatalf("implausible power %v", v)
		}
	}
	if len(res.Response.Jobs) == 0 {
		t.Fatal("no jobs returned (workload generator idle?)")
	}

	// Analysis layer over live health vectors.
	vecs := make([][]float64, sys.Nodes.Len())
	ids := make([]string, sys.Nodes.Len())
	for i := 0; i < sys.Nodes.Len(); i++ {
		hv := sys.Nodes.Node(i).HealthVector()
		vecs[i] = hv[:]
		ids[i] = sys.Nodes.Node(i).Name()
	}
	norm := monster.Normalize(vecs, monster.ComputeBounds(vecs))
	km, err := monster.KMeans(norm, monster.KMeansOptions{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dims := monster.HealthDimensions()
	profiles, err := monster.BuildRadarProfiles(ids, dims[:], vecs, km.Assignment)
	if err != nil {
		t.Fatal(err)
	}
	svg := monster.RadarSVG(&profiles[0], 200)
	if !strings.Contains(svg, "polygon") {
		t.Fatal("radar svg empty")
	}
}

func TestFacadeTimelinePath(t *testing.T) {
	sys := monster.New(monster.Config{Nodes: 16, Seed: 9})
	ctx := context.Background()
	if err := sys.AdvanceCollecting(ctx, 2*time.Hour); err != nil {
		t.Fatal(err)
	}
	resp, _, err := sys.Builder.Fetch(ctx, monster.Request{
		Start: sys.Config.Start, End: sys.Now(), IncludeJobs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]monster.TimelineJob, 0, len(resp.Jobs))
	for _, j := range resp.Jobs {
		jobs = append(jobs, monster.TimelineJob{
			JobID: j.JobID, User: j.User,
			SubmitTime: j.SubmitTime, StartTime: j.StartTime, FinishTime: j.FinishTime,
			Slots: int(j.Slots), NodeCount: int(j.NodeCount),
		})
	}
	tl := monster.BuildTimeline(jobs, sys.Config.Start.Unix(), sys.Now().Unix())
	if len(tl.Users) == 0 || len(tl.Jobs) == 0 {
		t.Fatalf("timeline empty: %d users %d jobs", len(tl.Users), len(tl.Jobs))
	}
	nodeJobs := map[string][]string{}
	for _, nj := range resp.NodeJobs {
		nodeJobs[nj.NodeID] = append(nodeJobs[nj.NodeID], nj.Jobs...)
	}
	owner := map[string]string{}
	for _, j := range resp.Jobs {
		owner[j.JobID] = j.User
	}
	counts := monster.DistinctUserHosts(nodeJobs, owner)
	tl.OverrideHosts(counts)
	svg := monster.TimelineSVG(tl, 800)
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "rect") {
		t.Fatal("timeline svg incomplete")
	}
}

func TestFacadeFaultVisibleInHealthMeasurement(t *testing.T) {
	sys := monster.New(monster.Config{Nodes: 4, Seed: 2})
	ctx := context.Background()
	if err := sys.AdvanceCollecting(ctx, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	sys.Nodes.Node(1).Inject(monster.FaultBMCDegrade)
	if err := sys.AdvanceCollecting(ctx, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	res, err := sys.DB.Query(`SELECT "Status" FROM "Health" WHERE "Label"='BMC' AND "NodeId"='10.101.1.2'`)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range res.Series {
		for _, row := range s.Rows {
			if row.Values[0].I == 1 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("BMC warning transition not stored")
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := monster.ExperimentIDs()
	if len(ids) < 18 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	tbl, err := monster.RunExperiment("table3", true)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Format(), "Metrics Builder") {
		t.Fatal("table3 content wrong")
	}
}

func TestCompressionFacadeRoundTrip(t *testing.T) {
	data := []byte(strings.Repeat("monitoring data ", 1000))
	comp, err := monster.Compress(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) >= len(data)/10 {
		t.Fatalf("weak compression: %d -> %d", len(data), len(comp))
	}
	back, err := monster.Decompress(comp)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(data) {
		t.Fatal("round trip corrupted")
	}
}

func TestFacadeStorageFeatures(t *testing.T) {
	db := monster.OpenDB(monster.DBOptions{})
	// Line protocol in.
	n, err := db.WriteLineProtocol([]byte(
		"Power,NodeId=10.101.1.1,Label=NodePower Reading=273.8 1000\n"+
			"Power,NodeId=10.101.1.1,Label=NodePower Reading=280.1 1060\n"), 0)
	if err != nil || n != 2 {
		t.Fatalf("line protocol write: %d, %v", n, err)
	}
	// SHOW and ORDER BY through the facade DB.
	res, err := db.Query(`SHOW MEASUREMENTS`)
	if err != nil || len(res.Series) != 1 {
		t.Fatalf("show: %v %v", res, err)
	}
	res, err = db.Query(`SELECT "Reading" FROM "Power" ORDER BY time DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series[0].Rows[0].Values[0].F != 280.1 {
		t.Fatalf("latest = %v", res.Series[0].Rows[0].Values[0])
	}
	// Rollups.
	rm := monster.NewRollups(db)
	if err := rm.Add(monster.RollupSpec{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 60}); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Run(2000); err != nil {
		t.Fatal(err)
	}
	// Persistence round trip.
	path := t.TempDir() + "/snap.db"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := monster.LoadDB(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Disk().Points != db.Disk().Points {
		t.Fatal("snapshot round trip lost points")
	}
	// Export back to line protocol.
	out := monster.FormatLineProtocol([]monster.Point{{
		Measurement: "m", Fields: map[string]monster.Value{"f": {F: 1}}, Time: 5,
	}})
	if pts, err := monster.ParseLineProtocol(out, 0); err != nil || len(pts) != 1 {
		t.Fatalf("facade line protocol round trip: %v %v", pts, err)
	}
}

func TestFacadeAlertingAndCorrelation(t *testing.T) {
	db := monster.OpenDB(monster.DBOptions{})
	err := db.WritePoint(monster.Point{
		Measurement: "Thermal",
		Tags:        monster.Tags{{Key: "NodeId", Value: "n1"}, {Key: "Label", Value: "CPU1Temp"}},
		Fields:      map[string]monster.Value{"Reading": {F: 97}},
		Time:        100,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := monster.NewAlertEngine(db, monster.DefaultAlertRules())
	if err != nil {
		t.Fatal(err)
	}
	// Default rules confirm after 2 evaluations.
	for i := 0; i < 2; i++ {
		if _, err := eng.Evaluate(time.Unix(int64(101+i), 0), time.Minute); err != nil {
			t.Fatal(err)
		}
	}
	if eng.State("cpu1-temp", "n1") != monster.AlertCritical {
		t.Fatalf("state = %v", eng.State("cpu1-temp", "n1"))
	}

	r := monster.Pearson([]float64{1, 2, 3}, []float64{2, 4, 6})
	if r < 0.999 {
		t.Fatalf("pearson = %v", r)
	}
	m := monster.Correlate([]monster.CorrSeries{
		{Name: "a", Values: []float64{1, 2, 3}},
		{Name: "b", Values: []float64{3, 2, 1}},
	})
	if v, _ := m.Lookup("a", "b"); v > -0.999 {
		t.Fatalf("anticorrelation = %v", v)
	}
}

func TestFacadeEnergyAttributionEndToEnd(t *testing.T) {
	sys := monster.New(monster.Config{Nodes: 8, Seed: 4})
	ctx := context.Background()
	if err := sys.AdvanceCollecting(ctx, time.Hour); err != nil {
		t.Fatal(err)
	}
	resp, _, err := sys.Builder.Fetch(ctx, monster.Request{
		Start: sys.Config.Start, End: sys.Now(),
		Interval:    time.Minute,
		Metrics:     []monster.Metric{{Measurement: "Power", Label: "NodePower"}},
		IncludeJobs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := monster.AttributeEnergy(monster.AttributionFromResponse(resp, 105))
	if res.TotalJoules <= 0 {
		t.Fatal("no energy integrated")
	}
	var ledger float64
	for _, je := range res.Jobs {
		ledger += je.Joules
	}
	ledger += res.IdleJoules + res.UnattributedJoules
	if diff := (ledger - res.TotalJoules) / res.TotalJoules; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("energy not conserved: %v vs %v", ledger, res.TotalJoules)
	}
}

func TestFacadeWorkloadTrace(t *testing.T) {
	w := monster.GenerateWorkload(monster.DefaultUserMix(), time.Unix(1587384000, 0).UTC(), 2*time.Hour, 5)
	var buf strings.Builder
	if err := w.SaveTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := monster.LoadTrace(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != w.Len() {
		t.Fatalf("trace round trip: %d vs %d", back.Len(), w.Len())
	}
}

func TestFacadeExtendedMetricsPipeline(t *testing.T) {
	sys := monster.New(monster.Config{Nodes: 4, Seed: 6, CollectNetwork: true})
	ctx := context.Background()
	if err := sys.AdvanceCollecting(ctx, 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	resp, _, err := sys.Builder.Fetch(ctx, monster.Request{
		Start: sys.Config.Start, End: sys.Now(),
		Interval: time.Minute,
		Metrics:  monster.ExtendedMetrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	sd, ok := resp.Nodes[0].Metrics["Network/NICRx"]
	if !ok || len(sd.Times) == 0 {
		t.Fatal("extended metrics missing network series")
	}
	if _, ok := resp.Nodes[0].Metrics["Filesystem/ReadMBps"]; !ok {
		t.Fatal("extended metrics missing filesystem series")
	}
}
