// Package monster is a from-scratch, stdlib-only reproduction of
// MonSTer, the "out-of-the-box" HPC monitoring tool of Li et al.
// (IEEE CLUSTER 2020): a Metrics Collector that polls Redfish BMCs and
// a UGE/Slurm-style resource manager, a time-series storage engine, a
// Metrics Builder aggregation API with zlib transport compression, and
// the HiperJobViz analysis layer (k-means host groups, radar profiles,
// job timelines).
//
// Because the paper's substrate is a 467-node production cluster, this
// package also ships a complete simulated substrate — node physics,
// iDRAC-like BMCs with realistic latency and failure modes, a
// qmaster/execd resource manager with a synthetic workload — so the
// entire pipeline runs end to end on a laptop.
//
// Quick start:
//
//	sys := monster.New(monster.Config{Nodes: 32})
//	sys.AdvanceCollecting(ctx, 30*time.Minute) // simulate + collect
//	resp, _, _ := sys.Builder.Fetch(ctx, monster.Request{
//	    Start: sys.Config.Start, End: sys.Now(), Interval: 5 * time.Minute,
//	    Aggregate: "max",
//	})
//
// See the examples directory for runnable scenarios, and the
// experiments API (RunExperiment) for regenerating every table and
// figure of the paper's evaluation.
package monster

import (
	"io"
	"time"

	"monster/internal/alerting"
	"monster/internal/analysis"
	"monster/internal/builder"
	"monster/internal/collector"
	"monster/internal/core"
	"monster/internal/experiments"
	"monster/internal/ingest"
	"monster/internal/scheduler"
	"monster/internal/simnode"
	"monster/internal/tsdb"
)

// Deployment surface: the wired system.
type (
	// Config assembles a simulated cluster plus monitoring pipeline.
	Config = core.Config
	// System is a running MonSTer deployment.
	System = core.System
)

// New builds a System from a Config; zero values select the defaults
// documented on core.Config. It panics on bad configuration or failed
// storage recovery; daemons should prefer NewSystem.
func New(cfg Config) *System { return core.New(cfg) }

// NewSystem builds a System, returning configuration and storage
// recovery errors instead of panicking.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// QuanahNodes is the paper deployment's cluster size (467).
const QuanahNodes = core.QuanahNodes

// Collector / storage surface.
type (
	// SchemaVersion selects the previous (v1) or optimized (v2)
	// database layout (Section IV-B2 of the paper).
	SchemaVersion = collector.SchemaVersion
	// CollectorStats counts collector activity.
	CollectorStats = collector.Stats
	// DB is the time-series storage engine.
	DB = tsdb.DB
	// DBOptions configures a DB.
	DBOptions = tsdb.Options
	// Point is a single stored sample.
	Point = tsdb.Point
	// Value is a dynamically typed field value.
	Value = tsdb.Value
	// Tags is a canonicalizable tag set.
	Tags = tsdb.Tags
	// QueryResult is the answer to one query.
	QueryResult = tsdb.Result
	// RollupSpec is a continuous downsampling query.
	RollupSpec = tsdb.RollupSpec
	// Rollups manages continuous queries over a DB.
	Rollups = tsdb.Rollups
	// WALOptions configures the write-ahead log under a durable DB.
	WALOptions = tsdb.WALOptions
	// WALStats counts write-ahead-log activity and recovery outcomes.
	WALStats = tsdb.WALStats
	// FsyncPolicy selects when the WAL fsyncs (always/interval/never).
	FsyncPolicy = tsdb.FsyncPolicy
	// RecoveryInfo summarizes what a durable open reconstructed.
	RecoveryInfo = tsdb.RecoveryInfo
	// CompressionStats reports the sealed-block tier's raw vs
	// compressed data volume (DB.Compression).
	CompressionStats = tsdb.CompressionStats
	// CacheStats reports the sealed-block decode cache's hit/miss/
	// eviction counters and resident bytes (DB.CacheStats).
	CacheStats = tsdb.CacheStats
	// TierStats describes one registered rollup tier: its source,
	// aggregate, materialized point count, and watermark (DB.TierStats).
	TierStats = tsdb.TierStats
	// ColdStats reports the file-backed cold tier's block placement
	// (resident vs spilled), segment footprint, and spill/read/
	// compaction counters (DB.ColdStats).
	ColdStats = tsdb.ColdStats
)

// DefaultBlockSize is the storage engine's default seal threshold in
// points (DBOptions.BlockSize zero value resolves to it).
const DefaultBlockSize = tsdb.DefaultBlockSize

// WAL fsync policies.
const (
	FsyncInterval = tsdb.FsyncInterval
	FsyncAlways   = tsdb.FsyncAlways
	FsyncNever    = tsdb.FsyncNever
)

// ParseFsyncPolicy parses "always", "interval", or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return tsdb.ParseFsyncPolicy(s) }

// RecoverDB opens a crash-safe storage engine rooted at wopts.Dir:
// checkpoint snapshot + WAL replay on open, write-ahead logging of
// every mutation thereafter, and DB.Checkpoint to snapshot + truncate.
func RecoverDB(opts DBOptions, wopts WALOptions) (*DB, RecoveryInfo, error) {
	return tsdb.OpenDurable(opts, wopts)
}

// Schema versions.
const (
	SchemaOptimized = collector.SchemaV2
	SchemaPrevious  = collector.SchemaV1
)

// OpenDB creates an empty storage engine (normally you use the one
// wired into a System).
func OpenDB(opts DBOptions) *DB { return tsdb.Open(opts) }

// LoadDB restores a storage engine from a snapshot file written with
// DB.SaveFile.
func LoadDB(path string) (*DB, error) { return tsdb.LoadFile(path) }

// NewRollups creates a continuous-query manager over a DB.
func NewRollups(db *DB) *Rollups { return tsdb.NewRollups(db) }

// Ingest pipeline surface (receivers → router → sinks).
type (
	// IngestPipeline wires receivers through the router into sinks
	// with bounded, overflow-policied stage queues.
	IngestPipeline = ingest.Pipeline
	// IngestOptions configures a standalone pipeline.
	IngestOptions = ingest.Options
	// IngestRule is one declarative router transformation.
	IngestRule = ingest.Rule
	// IngestStats is the per-stage counter snapshot (the /v1/stats
	// "ingest" section).
	IngestStats = ingest.PipelineStats
	// OverflowPolicy selects block vs drop-oldest on a full stage.
	OverflowPolicy = ingest.OverflowPolicy
	// PushReceiver accepts line protocol over HTTP POST.
	PushReceiver = ingest.PushReceiver
	// ScrapeReceiver polls Prometheus-style exposition endpoints.
	ScrapeReceiver = ingest.ScrapeReceiver
	// ForwardSink relays routed points to a peer push endpoint.
	ForwardSink = ingest.ForwardSink
	// TSDBSink writes routed points into a local storage engine.
	TSDBSink = ingest.TSDBSink
)

// Overflow policies for a full pipeline stage.
const (
	OverflowBlock      = ingest.OverflowBlock
	OverflowDropOldest = ingest.OverflowDropOldest
)

// NewIngestPipeline builds a standalone pipeline (normally you use the
// one wired into a System).
func NewIngestPipeline(opts IngestOptions) (*IngestPipeline, error) { return ingest.New(opts) }

// ParseIngestRule parses one declarative router rule, e.g.
// "add_tag:cluster=quanah" or "derive:PowerKW.Reading=Power.Reading*0.001".
func ParseIngestRule(s string) (IngestRule, error) { return ingest.ParseRule(s) }

// FormatLineProtocol renders points in InfluxDB line protocol.
func FormatLineProtocol(points []Point) []byte { return tsdb.FormatLineProtocol(points) }

// ParseLineProtocol parses InfluxDB line protocol into points.
func ParseLineProtocol(data []byte, defaultTime int64) ([]Point, error) {
	return tsdb.ParseLineProtocol(data, defaultTime)
}

// Metrics Builder surface.
type (
	// Request is a consumer's (time range, interval, aggregate) ask.
	Request = builder.Request
	// Response is the builder's JSON answer.
	Response = builder.Response
	// Metric identifies one per-node series.
	Metric = builder.Metric
	// BuilderClient fetches from a remote builder API.
	BuilderClient = builder.Client
	// BuilderStats is the per-stage build breakdown (queries issued,
	// points scanned, bytes, stage timings) reported with every fetch.
	BuilderStats = builder.Stats
	// BuilderCache is an LRU response cache over a Builder.
	BuilderCache = builder.Cache
	// JobRecord is job info returned with IncludeJobs.
	JobRecord = builder.JobRecord
	// NodeSeries is one node's metrics within a Response.
	NodeSeries = builder.NodeSeries
	// SeriesData is one downsampled series.
	SeriesData = builder.SeriesData
)

// DefaultMetrics is the full per-node metric set (Tables I and II).
func DefaultMetrics() []Metric { return builder.DefaultMetrics() }

// ExtendedMetrics adds the network/filesystem series (Section VI
// extensions, collected when Config.CollectNetwork is set).
func ExtendedMetrics() []Metric { return builder.ExtendedMetrics() }

// EncodeResponse renders a builder response as its JSON wire format.
func EncodeResponse(resp *Response) ([]byte, error) { return builder.Encode(resp) }

// DecodeResponse parses the JSON wire format.
func DecodeResponse(data []byte) (*Response, error) { return builder.Decode(data) }

// Compress zlib-compresses a builder response body (the Fig 18/19
// transport optimization).
func Compress(data []byte, level int) ([]byte, error) { return builder.Compress(data, level) }

// Decompress reverses Compress.
func Decompress(data []byte) ([]byte, error) { return builder.Decompress(data) }

// Scheduler / workload surface.
type (
	// JobSpec is a qsub request.
	JobSpec = scheduler.JobSpec
	// UserProfile describes one synthetic user's behaviour.
	UserProfile = scheduler.UserProfile
	// AccountingRecord is an ARCo-style accounting row.
	AccountingRecord = scheduler.AccountingRecord
	// Workload is a time-ordered submission trace.
	Workload = scheduler.Workload
)

// GenerateWorkload builds a deterministic synthetic submission trace.
func GenerateWorkload(profiles []UserProfile, start time.Time, horizon time.Duration, seed int64) *Workload {
	return scheduler.GenerateWorkload(profiles, start, horizon, seed)
}

// LoadTrace reads a JSON submission trace (see Workload.SaveTrace).
func LoadTrace(in io.Reader) (*Workload, error) { return scheduler.LoadTrace(in) }

// LoadSWF imports a Parallel Workloads Archive trace (Standard
// Workload Format) for replay; it returns the workload and how many
// degenerate records were skipped.
func LoadSWF(in io.Reader, start time.Time, coresPerNode int) (*Workload, int, error) {
	return scheduler.LoadSWF(in, start, coresPerNode)
}

// Parallel environments for JobSpec.PE.
const (
	PESerial = scheduler.PESerial
	PESMP    = scheduler.PESMP
	PEMPI    = scheduler.PEMPI
)

// DefaultUserMix models the paper's Figure 6 user population.
func DefaultUserMix() []UserProfile { return scheduler.DefaultUserMix() }

// Node simulation surface (fault injection for demos and tests).
type (
	// NodeFault selects an injectable node failure mode.
	NodeFault = simnode.Fault
	// Node is one simulated compute node.
	Node = simnode.Node
)

// Fault kinds.
const (
	FaultNone       = simnode.FaultNone
	FaultOverheat   = simnode.FaultOverheat
	FaultMemLeak    = simnode.FaultMemLeak
	FaultBMCDegrade = simnode.FaultBMCDegrade
	FaultHostDown   = simnode.FaultHostDown
)

// HealthDimensions names the nine-dimensional node health vector used
// by the radar and clustering views.
func HealthDimensions() [9]string { return simnode.HealthDimensions() }

// Analysis (HiperJobViz data layer) surface.
type (
	// KMeansResult is a clustering outcome.
	KMeansResult = analysis.KMeansResult
	// KMeansOptions tunes clustering (K defaults to the paper's 7).
	KMeansOptions = analysis.KMeansOptions
	// RadarProfile is a node's radar-chart profile.
	RadarProfile = analysis.RadarProfile
	// Timeline is the Fig 6 job-scheduling artifact.
	Timeline = analysis.Timeline
	// TimelineJob is one bar of the timeline.
	TimelineJob = analysis.TimelineJob
	// TrendSeries is the Fig 8 historical view.
	TrendSeries = analysis.TrendSeries
	// UserUsageMatrix is the Fig 9 per-user histogram matrix.
	UserUsageMatrix = analysis.UserUsageMatrix
	// Dashboard composes the HiperJobViz views into one static HTML
	// page.
	Dashboard = analysis.Dashboard
)

// Bounds holds per-dimension normalization extrema.
type Bounds = analysis.Bounds

// KMeans clusters health vectors (k-means++, Lloyd iterations).
func KMeans(vectors [][]float64, opts KMeansOptions) (*KMeansResult, error) {
	return analysis.KMeans(vectors, opts)
}

// ComputeBounds scans vectors for per-dimension extrema.
func ComputeBounds(vectors [][]float64) Bounds { return analysis.ComputeBounds(vectors) }

// Normalize min-max scales vectors into [0,1] using bounds.
func Normalize(vectors [][]float64, b Bounds) [][]float64 { return analysis.Normalize(vectors, b) }

// ClusterByActivity ranks clusters by centroid mean so group labels
// are stable (coolest first).
func ClusterByActivity(centroids [][]float64) []int { return analysis.ClusterByActivity(centroids) }

// RankAnomalies orders node indices by distance from their cluster
// centroid, most anomalous first.
func RankAnomalies(norm [][]float64, res *KMeansResult) []int {
	return analysis.RankAnomalies(norm, res)
}

// BuildRadarProfiles prepares radar-chart profiles from raw health
// vectors.
func BuildRadarProfiles(nodeIDs []string, dims []string, raw [][]float64, assignment []int) ([]RadarProfile, error) {
	return analysis.BuildRadarProfiles(nodeIDs, dims, raw, assignment)
}

// BuildTimeline assembles the Fig 6 artifact from job records.
func BuildTimeline(jobs []TimelineJob, start, end int64) *Timeline {
	return analysis.BuildTimeline(jobs, start, end)
}

// DistinctUserHosts derives per-user distinct host counts from
// node→jobs correlations (the Fig 6 margin statistic).
func DistinctUserHosts(nodeJobs map[string][]string, owner map[string]string) map[string]int {
	return analysis.DistinctUserHosts(nodeJobs, owner)
}

// BuildTrend assembles a Fig 8 history with cluster bands.
func BuildTrend(nodeID string, times []int64, dims []string, vectors [][]float64, res *KMeansResult, bounds Bounds) *TrendSeries {
	return analysis.BuildTrend(nodeID, times, dims, vectors, res, bounds)
}

// BuildUserUsageMatrix groups per-user samples into the Fig 9
// histogram matrix.
func BuildUserUsageMatrix(samples map[string]map[string][]float64, nbins int) *UserUsageMatrix {
	return analysis.BuildUserUsageMatrix(samples, nbins)
}

// SVG renderers for static versions of the HiperJobViz views.
func RadarSVG(p *RadarProfile, size int) string { return analysis.RadarSVG(p, size) }

// TimelineSVG renders the Fig 6 timeline.
func TimelineSVG(tl *Timeline, width int) string { return analysis.TimelineSVG(tl, width) }

// TrendSVG renders the Fig 8 history.
func TrendSVG(ts *TrendSeries, ranks []int, width, height int) string {
	return analysis.TrendSVG(ts, ranks, width, height)
}

// HistogramMatrixSVG renders the Fig 9 histogram matrix.
func HistogramMatrixSVG(m *UserUsageMatrix, cell int) string {
	return analysis.HistogramMatrixSVG(m, cell)
}

// Cross-metric correlation (the paper's "cross-compare and correlate
// the sub-components" program).
type (
	// CorrSeries is one named, aligned sample vector.
	CorrSeries = analysis.Series
	// CorrelationMatrix holds pairwise Pearson coefficients.
	CorrelationMatrix = analysis.CorrelationMatrix
)

// Pearson computes the correlation coefficient of two vectors.
func Pearson(a, b []float64) float64 { return analysis.Pearson(a, b) }

// Correlate builds the pairwise correlation matrix of aligned series.
func Correlate(series []CorrSeries) *CorrelationMatrix { return analysis.Correlate(series) }

// CorrelationOutliers ranks entities by how far their per-entity (x,y)
// correlation deviates from the population median — stuck sensors and
// broken power readings surface first.
func CorrelationOutliers(xs, ys [][]float64) []int { return analysis.CorrelationOutliers(xs, ys) }

// Energy / usage attribution (the paper's job↔resource correlation).
type (
	// AttributionInput is the three measurement streams attribution
	// joins.
	AttributionInput = analysis.AttributionInput
	// AttributionResult is the energy ledger.
	AttributionResult = analysis.AttributionResult
	// JobEnergy is one job's attributed consumption.
	JobEnergy = analysis.JobEnergy
	// PowerSample is one node power reading.
	PowerSample = analysis.PowerSample
	// NodeJobsSample is one node→jobs correlation sample.
	NodeJobsSample = analysis.NodeJobsSample
	// JobMeta is the job metadata attribution needs.
	JobMeta = analysis.JobMeta
)

// AttributeEnergy apportions node energy to resident jobs and users.
func AttributeEnergy(in AttributionInput) *AttributionResult {
	return analysis.AttributeEnergy(in)
}

// AttributionFromResponse assembles an AttributionInput from one
// Metrics Builder response that was fetched with IncludeJobs and the
// Power metric — the consumer-side join the paper's middleware enables.
func AttributionFromResponse(resp *Response, idleWatts float64) AttributionInput {
	in := AttributionInput{
		IdleWatts: idleWatts,
		Power:     make(map[string][]PowerSample),
		NodeJobs:  make(map[string][]NodeJobsSample),
		Jobs:      make(map[string]JobMeta),
	}
	for _, ns := range resp.Nodes {
		sd, ok := ns.Metrics["Power/NodePower"]
		if !ok {
			continue
		}
		samples := make([]PowerSample, len(sd.Times))
		for i := range sd.Times {
			samples[i] = PowerSample{Time: sd.Times[i], Watts: sd.Values[i]}
		}
		in.Power[ns.NodeID] = samples
	}
	for _, nj := range resp.NodeJobs {
		in.NodeJobs[nj.NodeID] = append(in.NodeJobs[nj.NodeID], NodeJobsSample{Time: nj.Time, Jobs: nj.Jobs})
	}
	for _, j := range resp.Jobs {
		in.Jobs[j.JobID] = JobMeta{
			Key:       j.JobID,
			User:      j.User,
			Slots:     int(j.Slots),
			NodeCount: int(j.NodeCount),
		}
	}
	return in
}

// Alerting surface (the Nagios role of Section II, fed from the DB).
type (
	// AlertRule is one threshold check over a per-node metric.
	AlertRule = alerting.Rule
	// AlertEngine evaluates rules with flap damping.
	AlertEngine = alerting.Engine
	// AlertEvent is one state transition.
	AlertEvent = alerting.Event
	// AlertSeverity is OK / WARNING / CRITICAL.
	AlertSeverity = alerting.Severity
)

// Alert severities and threshold directions.
const (
	AlertOK       = alerting.SeverityOK
	AlertWarning  = alerting.SeverityWarning
	AlertCritical = alerting.SeverityCritical
	AlertAbove    = alerting.Above
	AlertBelow    = alerting.Below
)

// DefaultAlertRules covers the Table I alerting surface (CPU/inlet
// temperature, fan stall, node power).
func DefaultAlertRules() []AlertRule { return alerting.DefaultRules() }

// NewAlertEngine builds an engine over a DB.
func NewAlertEngine(db *DB, rules []AlertRule) (*AlertEngine, error) {
	return alerting.New(db, rules)
}

// Experiments surface: regenerate the paper's tables and figures.
type ExperimentTable = experiments.Table

// RunExperiment executes one paper artifact by ID (e.g. "fig13",
// "table4"); quick selects a reduced scale.
func RunExperiment(id string, quick bool) (*ExperimentTable, error) {
	return experiments.Run(id, quick)
}

// ExperimentIDs lists every reproducible artifact.
func ExperimentIDs() []string { return experiments.IDs() }
