// Benchmarks regenerating every table and figure of the paper's
// evaluation (one Benchmark per artifact, at reduced "quick" scale so
// `go test -bench=.` completes in minutes; run `go run
// ./cmd/experiments -run all` for the full paper-scale sweep), plus
// micro-benchmarks of the real data-path operations and ablation
// benchmarks for the design decisions called out in DESIGN.md.
package monster_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"monster"
)

// benchArtifact runs one registered experiment per iteration.
func benchArtifact(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tbl, err := monster.RunExperiment(id, true)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

// --- Section III / IV claims and tables ---

func BenchmarkClaimBMCSweep(b *testing.B)    { benchArtifact(b, "claim-bmc-latency") }
func BenchmarkClaimDailyVolume(b *testing.B) { benchArtifact(b, "claim-datavolume") }
func BenchmarkTable3Hosts(b *testing.B)      { benchArtifact(b, "table3") }
func BenchmarkTable4Bandwidth(b *testing.B)  { benchArtifact(b, "table4") }

// --- Evaluation figures ---

func BenchmarkFig6Timeline(b *testing.B)      { benchArtifact(b, "fig6") }
func BenchmarkFig7Radar(b *testing.B)         { benchArtifact(b, "fig7") }
func BenchmarkFig8Trend(b *testing.B)         { benchArtifact(b, "fig8") }
func BenchmarkFig9Clustering(b *testing.B)    { benchArtifact(b, "fig9") }
func BenchmarkFig10Baseline(b *testing.B)     { benchArtifact(b, "fig10") }
func BenchmarkFig11Breakdown(b *testing.B)    { benchArtifact(b, "fig11") }
func BenchmarkFig12Devices(b *testing.B)      { benchArtifact(b, "fig12") }
func BenchmarkFig13SchemaVolume(b *testing.B) { benchArtifact(b, "fig13") }
func BenchmarkFig14Schema(b *testing.B)       { benchArtifact(b, "fig14") }
func BenchmarkFig15Concurrency(b *testing.B)  { benchArtifact(b, "fig15") }
func BenchmarkFig16Cumulative(b *testing.B)   { benchArtifact(b, "fig16") }
func BenchmarkFig17Transmission(b *testing.B) { benchArtifact(b, "fig17") }
func BenchmarkFig18Compression(b *testing.B)  { benchArtifact(b, "fig18") }
func BenchmarkFig19Compressed(b *testing.B)   { benchArtifact(b, "fig19") }

// --- Real data-path micro-benchmarks ---

var benchStart = time.Date(2020, 4, 20, 12, 0, 0, 0, time.UTC)

// seededSystem builds a system with `minutes` of collected telemetry.
func seededSystem(b *testing.B, nodes int, minutes int) *monster.System {
	b.Helper()
	sys := monster.New(monster.Config{Nodes: nodes, Seed: 1})
	if err := sys.AdvanceCollecting(context.Background(), time.Duration(minutes)*time.Minute); err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkTSDBWriteBatch measures raw storage ingest (points/op
// reported via bytes metric).
func BenchmarkTSDBWriteBatch(b *testing.B) {
	const batch = 1000
	pts := make([]monster.Point, batch)
	for i := range pts {
		pts[i] = monster.Point{
			Measurement: "Power",
			Tags:        monster.Tags{{Key: "NodeId", Value: fmt.Sprintf("10.101.1.%d", i%60+1)}, {Key: "Label", Value: "NodePower"}},
			Fields:      map[string]monster.Value{"Reading": {F: float64(i)}},
			Time:        int64(i),
		}
	}
	db := monster.OpenDB(monster.DBOptions{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range pts {
			pts[j].Time = int64(i*batch + j)
		}
		if err := db.WritePoints(pts); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(batch), "points/op")
}

// BenchmarkTSDBQueryAggregate measures the paper-shaped aggregation
// query against one node-day of data.
func BenchmarkTSDBQueryAggregate(b *testing.B) {
	db := monster.OpenDB(monster.DBOptions{})
	var pts []monster.Point
	for i := 0; i < 1440; i++ {
		pts = append(pts, monster.Point{
			Measurement: "Power",
			Tags:        monster.Tags{{Key: "NodeId", Value: "10.101.1.1"}, {Key: "Label", Value: "NodePower"}},
			Fields:      map[string]monster.Value{"Reading": {F: float64(200 + i%50)}},
			Time:        benchStart.Unix() + int64(i*60),
		})
	}
	if err := db.WritePoints(pts); err != nil {
		b.Fatal(err)
	}
	stmt := `SELECT max("Reading") FROM "Power" WHERE "NodeId" = '10.101.1.1' AND "Label" = 'NodePower' AND time >= '2020-04-20T12:00:00Z' AND time < '2020-04-21T12:00:00Z' GROUP BY time(5m)`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(stmt)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) != 1 {
			b.Fatal("no data")
		}
	}
}

// BenchmarkCollectorCycle measures one full real collection cycle
// (BMC sweep over the in-process fleet + scheduler query +
// pre-processing + batched write) for a 32-node cluster.
func BenchmarkCollectorCycle(b *testing.B) {
	sys := seededSystem(b, 32, 2)
	ctx := context.Background()
	now := sys.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Minute)
		if _, err := sys.Collector.CollectOnce(ctx, now); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuilderFetchSequential / Concurrent measure the real
// middleware fan-out over 32 nodes × 10 metrics × 1 h.
func benchBuilderFetch(b *testing.B, concurrent bool) {
	sys := monster.New(monster.Config{Nodes: 32, Seed: 1, ConcurrentQueries: concurrent})
	if err := sys.AdvanceCollecting(context.Background(), time.Hour); err != nil {
		b.Fatal(err)
	}
	req := monster.Request{
		Start: sys.Config.Start, End: sys.Now(), Interval: 5 * time.Minute, Aggregate: "max",
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := sys.Builder.Fetch(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuilderFetchSequential(b *testing.B) { benchBuilderFetch(b, false) }
func BenchmarkBuilderFetchConcurrent(b *testing.B) { benchBuilderFetch(b, true) }

// BenchmarkBuilderFetch is the paper's optimization ladder at 64 nodes
// × 10 metrics × 1 h: the previous builder (one query per node-metric
// pair, serial), the optimized builder (batched multi-node queries on
// the worker pool), and the optimized builder behind the LRU response
// cache, cold and warm. The EXPERIMENTS.md baseline numbers come from
// this benchmark.
func BenchmarkBuilderFetch(b *testing.B) {
	build := func(b *testing.B, concurrent bool) *monster.System {
		b.Helper()
		sys := monster.New(monster.Config{Nodes: 64, Seed: 1, ConcurrentQueries: concurrent, CacheResponses: true})
		if err := sys.AdvanceCollecting(context.Background(), time.Hour); err != nil {
			b.Fatal(err)
		}
		return sys
	}
	req := func(sys *monster.System) monster.Request {
		return monster.Request{
			Start: sys.Config.Start, End: sys.Now(), Interval: 5 * time.Minute, Aggregate: "max",
		}
	}
	b.Run("sequential", func(b *testing.B) {
		sys := build(b, false)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sys.Builder.Fetch(context.Background(), req(sys)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("concurrent8", func(b *testing.B) {
		sys := build(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sys.Builder.Fetch(context.Background(), req(sys)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-cold", func(b *testing.B) {
		// Every iteration asks with a never-seen interval, so each
		// fetch misses and pays the full fill cost through the cache.
		sys := build(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r := req(sys)
			r.Interval = 5*time.Minute + time.Duration(i+1)*time.Second
			if _, _, err := sys.Cache.Fetch(context.Background(), r); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-warm", func(b *testing.B) {
		sys := build(b, true)
		if _, _, err := sys.Cache.Fetch(context.Background(), req(sys)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := sys.Cache.Fetch(context.Background(), req(sys)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkZlibResponse measures real compression of a real builder
// response (the Fig 18 path).
func BenchmarkZlibResponse(b *testing.B) {
	sys := seededSystem(b, 16, 60)
	resp, _, err := sys.Builder.Fetch(context.Background(), monster.Request{
		Start: sys.Config.Start, End: sys.Now(), Interval: time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	body, err := monster.EncodeResponse(resp)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(body)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := monster.Compress(body, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeansHostGroups measures the Fig 9 clustering at paper
// scale (467 nodes × 9 dims × k=7).
func BenchmarkKMeansHostGroups(b *testing.B) {
	vecs := make([][]float64, 467)
	for i := range vecs {
		v := make([]float64, 9)
		for d := range v {
			v[d] = float64((i*7+d*13)%100) / 100
		}
		vecs[i] = v
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := monster.KMeans(vecs, monster.KMeansOptions{K: 7, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benchmarks (design decisions from DESIGN.md §6) ---

// BenchmarkAblationBatchWrites compares batched vs per-point TSDB
// writes for one collection cycle's worth of points.
func BenchmarkAblationBatchWrites(b *testing.B) {
	mkPoints := func(n int, t0 int64) []monster.Point {
		pts := make([]monster.Point, n)
		for i := range pts {
			pts[i] = monster.Point{
				Measurement: "Thermal",
				Tags:        monster.Tags{{Key: "NodeId", Value: fmt.Sprintf("n%d", i%467)}, {Key: "Label", Value: "CPU1Temp"}},
				Fields:      map[string]monster.Value{"Reading": {F: 50}},
				Time:        t0 + int64(i),
			}
		}
		return pts
	}
	b.Run("batched", func(b *testing.B) {
		db := monster.OpenDB(monster.DBOptions{})
		for i := 0; i < b.N; i++ {
			if err := db.WritePoints(mkPoints(5000, int64(i*5000))); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-point", func(b *testing.B) {
		db := monster.OpenDB(monster.DBOptions{})
		for i := 0; i < b.N; i++ {
			for _, p := range mkPoints(5000, int64(i*5000)) {
				if err := db.WritePoint(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAblationZlibLevels compares compression levels on real
// response JSON (speed vs the Fig 18 ratio).
func BenchmarkAblationZlibLevels(b *testing.B) {
	sys := seededSystem(b, 16, 30)
	resp, _, err := sys.Builder.Fetch(context.Background(), monster.Request{
		Start: sys.Config.Start, End: sys.Now(), Interval: time.Minute,
	})
	if err != nil {
		b.Fatal(err)
	}
	body, err := monster.EncodeResponse(resp)
	if err != nil {
		b.Fatal(err)
	}
	for _, level := range []int{1, 6, 9} {
		level := level
		b.Run(fmt.Sprintf("level%d", level), func(b *testing.B) {
			b.SetBytes(int64(len(body)))
			var ratio float64
			for i := 0; i < b.N; i++ {
				comp, err := monster.Compress(body, level)
				if err != nil {
					b.Fatal(err)
				}
				ratio = float64(len(comp)) / float64(len(body))
			}
			b.ReportMetric(ratio*100, "%compressed")
		})
	}
}

// BenchmarkAblationSchemaIngest compares ingest volume/speed of the
// two schemas through the real collector.
func BenchmarkAblationSchemaIngest(b *testing.B) {
	for _, schema := range []monster.SchemaVersion{monster.SchemaOptimized, monster.SchemaPrevious} {
		schema := schema
		b.Run(schema.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys := monster.New(monster.Config{Nodes: 16, Seed: 1, Schema: schema})
				if err := sys.AdvanceCollecting(context.Background(), 10*time.Minute); err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(sys.DB.Disk().TotalBytes()), "bytes")
			}
		})
	}
}

// BenchmarkAblationRollup compares a coarse-interval query against the
// raw measurement vs against its materialized rollup.
func BenchmarkAblationRollup(b *testing.B) {
	db := monster.OpenDB(monster.DBOptions{})
	var pts []monster.Point
	for n := 0; n < 16; n++ {
		for i := 0; i < 24*60; i++ { // one day, minutely
			pts = append(pts, monster.Point{
				Measurement: "Power",
				Tags:        monster.Tags{{Key: "NodeId", Value: fmt.Sprintf("n%d", n)}, {Key: "Label", Value: "NodePower"}},
				Fields:      map[string]monster.Value{"Reading": {F: float64(200 + i%50)}},
				Time:        benchStart.Unix() + int64(i*60),
			})
		}
	}
	if err := db.WritePoints(pts); err != nil {
		b.Fatal(err)
	}
	rm := monster.NewRollups(db)
	if err := rm.Add(monster.RollupSpec{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 3600}); err != nil {
		b.Fatal(err)
	}
	if _, err := rm.Run(benchStart.Unix() + 24*3600); err != nil {
		b.Fatal(err)
	}
	rawStmt := fmt.Sprintf(`SELECT max("Reading") FROM "Power" WHERE "NodeId" = 'n0' AND time >= %d AND time < %d GROUP BY time(1h)`,
		benchStart.Unix(), benchStart.Unix()+24*3600)
	rolledStmt := fmt.Sprintf(`SELECT "Reading" FROM "Power_max_3600s" WHERE "NodeId" = 'n0' AND time >= %d AND time < %d`,
		benchStart.Unix(), benchStart.Unix()+24*3600)
	b.Run("raw", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(rawStmt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rollup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := db.Query(rolledStmt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationHealthFilter compares storing every health sample
// (the previous schema's behaviour) against transition-only storage,
// reporting the stored-point delta.
func BenchmarkAblationHealthFilter(b *testing.B) {
	for _, storeAll := range []bool{false, true} {
		storeAll := storeAll
		name := "transitions-only"
		if storeAll {
			name = "every-sample"
		}
		b.Run(name, func(b *testing.B) {
			var healthPoints float64
			for i := 0; i < b.N; i++ {
				sys := monster.New(monster.Config{Nodes: 8, Seed: 1, StoreAllHealth: storeAll})
				if err := sys.AdvanceCollecting(context.Background(), 10*time.Minute); err != nil {
					b.Fatal(err)
				}
				r, err := sys.DB.Query(`SELECT count("Status") FROM "Health"`)
				if err != nil {
					b.Fatal(err)
				}
				if len(r.Series) > 0 {
					healthPoints = float64(r.Series[0].Rows[0].Values[0].I)
				}
			}
			b.ReportMetric(healthPoints, "health-points")
		})
	}
}

// BenchmarkLineProtocolParse measures line-protocol ingest of one
// collection cycle's worth of lines.
func BenchmarkLineProtocolParse(b *testing.B) {
	db := monster.OpenDB(monster.DBOptions{})
	var pts []monster.Point
	for i := 0; i < 1000; i++ {
		pts = append(pts, monster.Point{
			Measurement: "Power",
			Tags:        monster.Tags{{Key: "NodeId", Value: fmt.Sprintf("10.101.1.%d", i%60+1)}, {Key: "Label", Value: "NodePower"}},
			Fields:      map[string]monster.Value{"Reading": {F: float64(200 + i)}},
			Time:        int64(i),
		})
	}
	_ = db
	data := monster.FormatLineProtocol(pts)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := monster.ParseLineProtocol(data, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationTelemetry compares the real collector's sweep over
// four category GETs (13G firmware) vs one Telemetry Service
// MetricReport per node (the paper's §VI future-work model).
func BenchmarkAblationTelemetry(b *testing.B) {
	for _, telemetry := range []bool{false, true} {
		telemetry := telemetry
		name := "four-gets"
		if telemetry {
			name = "metric-report"
		}
		b.Run(name, func(b *testing.B) {
			sys := monster.New(monster.Config{Nodes: 32, Seed: 1, Telemetry: telemetry})
			ctx := context.Background()
			now := sys.Now()
			var requests int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				now = now.Add(time.Minute)
				if _, err := sys.Collector.CollectOnce(ctx, now); err != nil {
					b.Fatal(err)
				}
				requests = sys.Collector.Stats().BMCRequests
			}
			b.ReportMetric(float64(requests)/float64(b.N), "requests/cycle")
		})
	}
}

// BenchmarkMixedReadWrite measures query latency while a collector-style
// writer continuously flushes large batches into the same store — the
// production monitoring load (continuous ingest concurrent with Metrics
// Builder fan-out). "global-lock" restores the engine's previous global
// RWMutex serialization; "snapshot" is the epoch-versioned lock-free
// read path. The queried measurement is fixed and disjoint from the
// ingest stream, so per-op work is identical and the delta is pure
// concurrency-model cost.
func BenchmarkMixedReadWrite(b *testing.B) {
	const nodes = 64
	for _, globalLock := range []bool{true, false} {
		name := "snapshot"
		if globalLock {
			name = "global-lock"
		}
		b.Run(name, func(b *testing.B) {
			db := monster.OpenDB(monster.DBOptions{ShardDuration: 3600, GlobalLock: globalLock})
			var pts []monster.Point
			base := int64(1_000_000_000)
			for n := 0; n < nodes; n++ {
				for i := 0; i < 60; i++ {
					pts = append(pts, monster.Point{
						Measurement: "Power",
						Tags:        monster.Tags{{Key: "NodeId", Value: fmt.Sprintf("node%03d", n)}, {Key: "Label", Value: "System Power Control"}},
						Fields:      map[string]monster.Value{"Reading": monster.Value{F: float64(100 + n + i%7)}},
						Time:        base + int64(i*60),
					})
				}
			}
			if err := db.WritePoints(pts); err != nil {
				b.Fatal(err)
			}

			stop := make(chan struct{})
			done := make(chan struct{})
			go func() {
				defer close(done)
				nodeTags := make([]monster.Tags, nodes)
				for n := range nodeTags {
					nodeTags[n] = monster.Tags{{Key: "NodeId", Value: fmt.Sprintf("node%03d", n)}}
				}
				const batchSize = 10000
				fields := make([]map[string]monster.Value, batchSize)
				for j := range fields {
					fields[j] = map[string]monster.Value{"Reading": monster.Value{F: float64(100 + j%50)}}
				}
				batch := make([]monster.Point, batchSize)
				ts := int64(0)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					for j := range batch {
						batch[j] = monster.Point{Measurement: "Ingest", Tags: nodeTags[j%nodes], Fields: fields[j], Time: ts}
						ts++
					}
					if err := db.WritePoints(batch); err != nil {
						return
					}
					if i%16 == 15 {
						db.DeleteBefore(ts - 2*3600)
					}
				}
			}()

			stmt := `SELECT max("Reading") FROM "Power" GROUP BY time(5m), "NodeId", "Label"`
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(stmt); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			close(stop)
			<-done
		})
	}
}
