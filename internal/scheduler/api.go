package scheduler

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// The HTTP API plays the role UGE's ARCo (Accounting and Reporting
// Console) plays in the paper: the Metrics Collector queries it over
// the head-node network for host metrics and job details. Payloads are
// deliberately verbose in the way qstat/qhost XML is — the Table IV
// bandwidth measurement depends on realistic accounting record sizes.

// HostEntry is the wire form of one execution host (qhost-like).
type HostEntry struct {
	Hostname       string            `json:"hostname"`
	Addr           string            `json:"addr"`
	State          string            `json:"state"` // "ok" | "unavailable"
	ReportTime     int64             `json:"report_time"`
	SlotsTotal     int               `json:"slots_total"`
	SlotsUsed      int               `json:"slots_used"`
	CPUUsage       float64           `json:"cpu_usage"`
	MemTotalGB     float64           `json:"mem_total_gb"`
	MemUsedGB      float64           `json:"mem_used_gb"`
	SwapTotalGB    float64           `json:"swap_total_gb"`
	SwapUsedGB     float64           `json:"swap_used_gb"`
	LoadAvg        float64           `json:"np_load_avg"`
	IOReadMBps     float64           `json:"io_read_mbps"`
	IOWriteMBps    float64           `json:"io_write_mbps"`
	JobList        []string          `json:"job_list"`
	LoadValues     map[string]string `json:"load_values"`
	QueueInstances []QueueInstance   `json:"queue_instances"`
}

// QueueInstance is one queue@host row (qstat -f style).
type QueueInstance struct {
	Queue      string `json:"qname"`
	SlotsTotal int    `json:"slots_total"`
	SlotsUsed  int    `json:"slots_used"`
	State      string `json:"state"`
}

// JobEntry is the wire form of one job (qstat -j style).
type JobEntry struct {
	JobID          int64             `json:"job_number"`
	TaskID         int               `json:"task_id,omitempty"`
	Owner          string            `json:"owner"`
	Name           string            `json:"job_name"`
	Queue          string            `json:"queue"`
	State          string            `json:"state"`
	PE             string            `json:"parallel_environment,omitempty"`
	Slots          int               `json:"slots"`
	SubmissionTime string            `json:"submission_time"` // RFC3339 — the date string the paper's pre-processing converts
	StartTime      string            `json:"start_time,omitempty"`
	Hosts          []string          `json:"exec_host_list"`
	HardResources  map[string]string `json:"hard_resource_list"`
	Usage          JobUsage          `json:"usage"`
}

// JobUsage is the per-job resource usage block.
type JobUsage struct {
	WallClockSec float64 `json:"wallclock"`
	CPUSec       float64 `json:"cpu"`
	MemGBs       float64 `json:"mem"`
	MaxVMemGB    float64 `json:"maxvmem"`
	IOOps        float64 `json:"io"`
}

// AccountingEntry is the wire form of one ARCo accounting row.
type AccountingEntry struct {
	JobID      int64    `json:"job_number"`
	TaskID     int      `json:"task_number,omitempty"`
	Owner      string   `json:"owner"`
	Name       string   `json:"job_name"`
	Queue      string   `json:"qname"`
	PE         string   `json:"granted_pe,omitempty"`
	Slots      int      `json:"slots"`
	SubmitTime string   `json:"submission_time"`
	StartTime  string   `json:"start_time"`
	EndTime    string   `json:"end_time"`
	WallClock  float64  `json:"ru_wallclock"`
	CPU        float64  `json:"cpu"`
	MaxVMem    float64  `json:"maxvmem"`
	Hosts      []string `json:"exec_hosts"`
	ExitStatus int      `json:"exit_status"`
	Failed     int      `json:"failed"`
}

// API serves the qmaster state over HTTP.
type API struct {
	qm  *QMaster
	mux *http.ServeMux
}

// NewAPI builds the HTTP facade for a qmaster.
func NewAPI(qm *QMaster) *API {
	a := &API{qm: qm, mux: http.NewServeMux()}
	a.mux.HandleFunc("/uge/hosts", a.handleHosts)
	a.mux.HandleFunc("/uge/jobs", a.handleJobs)
	a.mux.HandleFunc("/uge/accounting", a.handleAccounting)
	a.mux.HandleFunc("/slurm/v1/nodes", a.handleSlurmNodes)
	a.mux.HandleFunc("/slurm/v1/jobs", a.handleSlurmJobs)
	a.mux.HandleFunc("/slurmdb/v1/jobs", a.handleSlurmDBJobs)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		_ = err // client went away
	}
}

// HostEntries renders the qmaster's current host view (exported so the
// in-process collector can skip HTTP when embedded).
func (a *API) HostEntries() []HostEntry {
	reports := a.qm.HostReports()
	out := make([]HostEntry, 0, len(reports))
	for _, r := range reports {
		state := "ok"
		if !r.Available {
			state = "unavailable"
		}
		e := HostEntry{
			Hostname:    r.Host,
			Addr:        r.Addr,
			State:       state,
			ReportTime:  r.At.Unix(),
			SlotsTotal:  r.SlotsTotal,
			SlotsUsed:   r.SlotsUsed,
			CPUUsage:    r.CPUUsage,
			MemTotalGB:  r.MemTotalGB,
			MemUsedGB:   r.MemUsedGB,
			SwapTotalGB: r.SwapTotal,
			SwapUsedGB:  r.SwapUsed,
			LoadAvg:     r.LoadAvg,
			IOReadMBps:  r.IOReadMBps,
			IOWriteMBps: r.IOWriteMBps,
			JobList:     r.JobKeys,
			LoadValues:  loadValues(r),
			QueueInstances: []QueueInstance{
				{Queue: "omni", SlotsTotal: r.SlotsTotal, SlotsUsed: r.SlotsUsed, State: queueState(r)},
			},
		}
		out = append(out, e)
	}
	return out
}

func queueState(r HostReport) string {
	if !r.Available {
		return "au" // alarm, unreachable
	}
	return ""
}

// loadValues reproduces the verbose load_values block a real qhost -F
// reports (~40 attributes); the collector ignores most of them but the
// accounting bandwidth of Table IV includes them.
func loadValues(r HostReport) map[string]string {
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 6, 64) }
	mem := r.MemUsedGB
	return map[string]string{
		"arch":          "lx-amd64",
		"num_proc":      strconv.Itoa(r.SlotsTotal),
		"m_socket":      "2",
		"m_core":        strconv.Itoa(r.SlotsTotal / 2),
		"m_thread":      strconv.Itoa(r.SlotsTotal),
		"load_short":    f(r.LoadAvg),
		"load_medium":   f(r.LoadAvg * 0.98),
		"load_long":     f(r.LoadAvg * 0.95),
		"np_load_short": f(r.LoadAvg / float64(max(r.SlotsTotal, 1))),
		"np_load_avg":   f(r.LoadAvg / float64(max(r.SlotsTotal, 1))),
		"cpu":           f(r.CPUUsage * 100),
		"mem_free":      f(r.MemTotalGB - mem),
		"mem_used":      f(mem),
		"mem_total":     f(r.MemTotalGB),
		"swap_free":     f(r.SwapTotal - r.SwapUsed),
		"swap_used":     f(r.SwapUsed),
		"swap_total":    f(r.SwapTotal),
		"virtual_free":  f(r.MemTotalGB - mem + r.SwapTotal - r.SwapUsed),
		"virtual_used":  f(mem + r.SwapUsed),
		"virtual_total": f(r.MemTotalGB + r.SwapTotal),
	}
}

func (a *API) handleHosts(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, a.HostEntries())
}

// JobEntries renders running and pending jobs.
func (a *API) JobEntries() []JobEntry {
	now := a.qm.Now()
	var out []JobEntry
	for _, j := range a.qm.Running() {
		out = append(out, jobEntry(j, now))
	}
	for _, j := range a.qm.Pending() {
		out = append(out, jobEntry(j, now))
	}
	return out
}

func jobEntry(j *Job, now time.Time) JobEntry {
	e := JobEntry{
		JobID:          j.ID,
		TaskID:         j.TaskID,
		Owner:          j.Owner,
		Name:           j.Name,
		Queue:          j.Queue,
		State:          j.State.String(),
		PE:             string(j.PE),
		Slots:          j.Slots,
		SubmissionTime: j.SubmitAt.UTC().Format(time.RFC3339),
		Hosts:          j.Hosts(),
		HardResources: map[string]string{
			"h_rt":      fmt.Sprintf("%d", int(j.Runtime.Seconds())),
			"h_vmem":    fmt.Sprintf("%gG", j.MemGB),
			"exclusive": "false",
		},
	}
	if j.State == JobRunning {
		e.StartTime = j.StartAt.UTC().Format(time.RFC3339)
		elapsed := now.Sub(j.StartAt).Seconds()
		if elapsed < 0 {
			elapsed = 0
		}
		e.Usage = JobUsage{
			WallClockSec: elapsed,
			CPUSec:       elapsed * float64(j.Slots) * j.CPUFrac,
			MemGBs:       elapsed * float64(j.Slots) * j.MemGB,
			MaxVMemGB:    float64(j.Slots) * j.MemGB,
			IOOps:        elapsed * 12.5,
		}
	}
	return e
}

func (a *API) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, a.JobEntries())
}

// AccountingEntries renders completed jobs since the given time.
func (a *API) AccountingEntries(since time.Time) []AccountingEntry {
	recs := a.qm.Accounting(since)
	out := make([]AccountingEntry, 0, len(recs))
	for _, rec := range recs {
		failed := 0
		if rec.Failed {
			failed = 1
		}
		out = append(out, AccountingEntry{
			JobID:      rec.JobID,
			TaskID:     rec.TaskID,
			Owner:      rec.Owner,
			Name:       rec.Name,
			Queue:      rec.Queue,
			PE:         string(rec.PE),
			Slots:      rec.Slots,
			SubmitTime: rec.SubmitTime.UTC().Format(time.RFC3339),
			StartTime:  rec.StartTime.UTC().Format(time.RFC3339),
			EndTime:    rec.EndTime.UTC().Format(time.RFC3339),
			WallClock:  rec.WallClock.Seconds(),
			CPU:        rec.CPUSeconds,
			MaxVMem:    rec.MaxVMemGB,
			Hosts:      rec.Hosts,
			ExitStatus: rec.ExitStatus,
			Failed:     failed,
		})
	}
	return out
}

func (a *API) handleAccounting(w http.ResponseWriter, r *http.Request) {
	since := time.Unix(0, 0)
	if s := r.URL.Query().Get("since"); s != "" {
		sec, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = time.Unix(sec, 0)
	}
	writeJSON(w, a.AccountingEntries(since))
}

// SlurmNode is the Slurm REST (slurmrestd-style) node record.
type SlurmNode struct {
	Name        string  `json:"name"`
	Address     string  `json:"address"`
	State       string  `json:"state"`
	CPUs        int     `json:"cpus"`
	AllocCPUs   int     `json:"alloc_cpus"`
	RealMemory  int     `json:"real_memory"`  // MB
	AllocMemory int     `json:"alloc_memory"` // MB
	FreeMemory  int     `json:"free_memory"`  // MB
	CPULoad     float64 `json:"cpu_load"`
}

// SlurmJob is the Slurm REST job record.
type SlurmJob struct {
	JobID      int64  `json:"job_id"`
	ArrayTask  int    `json:"array_task_id,omitempty"`
	UserName   string `json:"user_name"`
	Name       string `json:"name"`
	Partition  string `json:"partition"`
	JobState   string `json:"job_state"`
	NumCPUs    int    `json:"num_cpus"`
	NumNodes   int    `json:"num_nodes"`
	Nodes      string `json:"nodes"`
	SubmitTime int64  `json:"submit_time"`
	StartTime  int64  `json:"start_time"`
	EndTime    int64  `json:"end_time"`
}

func slurmState(s JobState) string {
	switch s {
	case JobPending:
		return "PENDING"
	case JobRunning:
		return "RUNNING"
	case JobFailed:
		return "FAILED"
	default:
		return "COMPLETED"
	}
}

func (a *API) handleSlurmNodes(w http.ResponseWriter, r *http.Request) {
	reports := a.qm.HostReports()
	nodes := make([]SlurmNode, 0, len(reports))
	for _, rep := range reports {
		state := "IDLE"
		switch {
		case !rep.Available:
			state = "DOWN"
		case rep.SlotsUsed == rep.SlotsTotal:
			state = "ALLOCATED"
		case rep.SlotsUsed > 0:
			state = "MIXED"
		}
		nodes = append(nodes, SlurmNode{
			Name:        rep.Host,
			Address:     rep.Addr,
			State:       state,
			CPUs:        rep.SlotsTotal,
			AllocCPUs:   rep.SlotsUsed,
			RealMemory:  int(rep.MemTotalGB * 1024),
			AllocMemory: int(rep.MemUsedGB * 1024),
			FreeMemory:  int((rep.MemTotalGB - rep.MemUsedGB) * 1024),
			CPULoad:     rep.LoadAvg,
		})
	}
	writeJSON(w, map[string]interface{}{"nodes": nodes})
}

func (a *API) handleSlurmJobs(w http.ResponseWriter, r *http.Request) {
	var jobs []SlurmJob
	render := func(j *Job) SlurmJob {
		sj := SlurmJob{
			JobID:      j.ID,
			ArrayTask:  j.TaskID,
			UserName:   j.Owner,
			Name:       j.Name,
			Partition:  j.Queue,
			JobState:   slurmState(j.State),
			NumCPUs:    j.Slots,
			NumNodes:   len(j.Alloc),
			SubmitTime: j.SubmitAt.Unix(),
		}
		if !j.StartAt.IsZero() {
			sj.StartTime = j.StartAt.Unix()
		}
		if j.State == JobRunning {
			sj.EndTime = j.EndAt.Unix()
		}
		hosts := j.Hosts()
		for i, h := range hosts {
			if i > 0 {
				sj.Nodes += ","
			}
			sj.Nodes += h
		}
		return sj
	}
	for _, j := range a.qm.Running() {
		jobs = append(jobs, render(j))
	}
	for _, j := range a.qm.Pending() {
		jobs = append(jobs, render(j))
	}
	writeJSON(w, map[string]interface{}{"jobs": jobs})
}

// SlurmDBJob is the slurmdbd-style accounting record.
type SlurmDBJob struct {
	JobID      int64   `json:"job_id"`
	ArrayTask  int     `json:"array_task_id,omitempty"`
	UserName   string  `json:"user_name"`
	Name       string  `json:"name"`
	Partition  string  `json:"partition"`
	State      string  `json:"state"`
	AllocCPUs  int     `json:"alloc_cpus"`
	SubmitTime int64   `json:"submit_time"`
	StartTime  int64   `json:"start_time"`
	EndTime    int64   `json:"end_time"`
	Elapsed    float64 `json:"elapsed"`
	CPUSeconds float64 `json:"cpu_seconds"`
	MaxRSSGB   float64 `json:"max_rss_gb"`
	NodeList   string  `json:"nodes"`
	ExitCode   int     `json:"exit_code"`
}

// handleSlurmDBJobs serves completed-job accounting, slurmdbd style:
// GET /slurmdb/v1/jobs?start_time=<epoch> returns jobs that ended at or
// after start_time.
func (a *API) handleSlurmDBJobs(w http.ResponseWriter, r *http.Request) {
	since := time.Unix(0, 0)
	if s := r.URL.Query().Get("start_time"); s != "" {
		sec, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			http.Error(w, "bad start_time parameter", http.StatusBadRequest)
			return
		}
		since = time.Unix(sec, 0)
	}
	recs := a.qm.Accounting(since)
	jobs := make([]SlurmDBJob, 0, len(recs))
	for _, rec := range recs {
		state := "COMPLETED"
		if rec.Failed {
			state = "FAILED"
		}
		nodeList := ""
		for i, h := range rec.Hosts {
			if i > 0 {
				nodeList += ","
			}
			nodeList += h
		}
		jobs = append(jobs, SlurmDBJob{
			JobID:      rec.JobID,
			ArrayTask:  rec.TaskID,
			UserName:   rec.Owner,
			Name:       rec.Name,
			Partition:  rec.Queue,
			State:      state,
			AllocCPUs:  rec.Slots,
			SubmitTime: rec.SubmitTime.Unix(),
			StartTime:  rec.StartTime.Unix(),
			EndTime:    rec.EndTime.Unix(),
			Elapsed:    rec.WallClock.Seconds(),
			CPUSeconds: rec.CPUSeconds,
			MaxRSSGB:   rec.MaxVMemGB,
			NodeList:   nodeList,
			ExitCode:   rec.ExitStatus,
		})
	}
	writeJSON(w, map[string]interface{}{"jobs": jobs})
}
