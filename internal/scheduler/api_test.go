package scheduler

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newAPIFixture(t *testing.T) (*API, *QMaster) {
	t.Helper()
	fleet, qm := newTestQM(t, 3)
	qm.Submit(JobSpec{Owner: "jieyao", Name: "mpi", PE: PEMPI, Slots: 80, Runtime: 2 * time.Hour})
	qm.Submit(JobSpec{Owner: "ugrad", Name: "hw", Slots: 1, Runtime: time.Hour})
	tickTo(qm, fleet, t0.Add(10*time.Minute), 15*time.Second)
	return NewAPI(qm), qm
}

func apiGet(t *testing.T, api *API, path string, out interface{}) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s -> %d", path, rec.Code)
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad json: %v", path, err)
		}
	}
	return rec
}

func TestHostsEndpoint(t *testing.T) {
	api, _ := newAPIFixture(t)
	var hosts []HostEntry
	apiGet(t, api, "/uge/hosts", &hosts)
	if len(hosts) != 3 {
		t.Fatalf("hosts = %d", len(hosts))
	}
	h := hosts[0]
	if h.Hostname == "" || h.SlotsTotal != 36 {
		t.Fatalf("host = %+v", h)
	}
	if len(h.LoadValues) < 15 {
		t.Fatalf("load values too sparse (%d) for realistic accounting volume", len(h.LoadValues))
	}
	if h.State != "ok" {
		t.Fatalf("state = %q", h.State)
	}
	// The MPI job must appear in some host's job list.
	found := false
	for _, hh := range hosts {
		for range hh.JobList {
			found = true
		}
	}
	if !found {
		t.Fatal("no job listed on any host")
	}
}

func TestJobsEndpoint(t *testing.T) {
	api, _ := newAPIFixture(t)
	var jobs []JobEntry
	apiGet(t, api, "/uge/jobs", &jobs)
	if len(jobs) != 2 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	var mpi *JobEntry
	for i := range jobs {
		if jobs[i].Owner == "jieyao" {
			mpi = &jobs[i]
		}
	}
	if mpi == nil {
		t.Fatal("mpi job missing")
	}
	if mpi.State != "r" || mpi.Slots != 80 || len(mpi.Hosts) < 2 {
		t.Fatalf("mpi job = %+v", mpi)
	}
	// Submission time is an RFC3339 date string — the format the
	// paper's pre-processing converts to epoch integers.
	if _, err := time.Parse(time.RFC3339, mpi.SubmissionTime); err != nil {
		t.Fatalf("submission time %q not RFC3339: %v", mpi.SubmissionTime, err)
	}
	if mpi.Usage.CPUSec <= 0 || mpi.Usage.WallClockSec <= 0 {
		t.Fatalf("usage = %+v", mpi.Usage)
	}
}

func TestAccountingEndpoint(t *testing.T) {
	api, qm := newAPIFixture(t)
	qm.Submit(JobSpec{Owner: "carol", Name: "quick", Slots: 1, Runtime: 2 * time.Minute})
	fleetTick(api, qm, t0.Add(30*time.Minute))
	var recs []AccountingEntry
	apiGet(t, api, "/uge/accounting?since=0", &recs)
	if len(recs) != 1 {
		t.Fatalf("accounting = %d", len(recs))
	}
	if recs[0].Owner != "carol" || recs[0].WallClock <= 0 {
		t.Fatalf("record = %+v", recs[0])
	}

	req := httptest.NewRequest(http.MethodGet, "/uge/accounting?since=notanumber", nil)
	rec := httptest.NewRecorder()
	api.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad since -> %d", rec.Code)
	}
}

// fleetTick advances only the qmaster clock (no physics needed here).
func fleetTick(api *API, qm *QMaster, until time.Time) {
	for now := qm.Now(); now.Before(until); now = now.Add(15 * time.Second) {
		qm.Tick(now.Add(15 * time.Second))
	}
}

func TestSlurmNodesEndpoint(t *testing.T) {
	api, _ := newAPIFixture(t)
	var resp struct {
		Nodes []SlurmNode `json:"nodes"`
	}
	apiGet(t, api, "/slurm/v1/nodes", &resp)
	if len(resp.Nodes) != 3 {
		t.Fatalf("nodes = %d", len(resp.Nodes))
	}
	states := map[string]int{}
	for _, n := range resp.Nodes {
		states[n.State]++
		if n.CPUs != 36 {
			t.Fatalf("node = %+v", n)
		}
	}
	if states["ALLOCATED"]+states["MIXED"] == 0 {
		t.Fatalf("no busy nodes in %v", states)
	}
}

func TestSlurmJobsEndpoint(t *testing.T) {
	api, _ := newAPIFixture(t)
	var resp struct {
		Jobs []SlurmJob `json:"jobs"`
	}
	apiGet(t, api, "/slurm/v1/jobs", &resp)
	if len(resp.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(resp.Jobs))
	}
	for _, j := range resp.Jobs {
		if j.JobState != "RUNNING" {
			t.Fatalf("job state = %s", j.JobState)
		}
		if j.SubmitTime <= 0 || j.StartTime <= 0 {
			t.Fatalf("times = %+v", j)
		}
	}
}

func TestPayloadSizesAreAccountingScale(t *testing.T) {
	// Table IV context: node and job records are kilobyte-scale. Verify
	// our verbose wire format is within an order of magnitude (the
	// paper reports 19 KB/node, 23 KB/job including full qstat detail).
	api, _ := newAPIFixture(t)
	rec := apiGet(t, api, "/uge/hosts", nil)
	perHost := rec.Body.Len() / 3
	if perHost < 300 {
		t.Fatalf("per-host payload %d B too small to be accounting-realistic", perHost)
	}
	rec = apiGet(t, api, "/uge/jobs", nil)
	perJob := rec.Body.Len() / 2
	if perJob < 200 {
		t.Fatalf("per-job payload %d B too small", perJob)
	}
}

func TestWorkloadGeneratorDeterministic(t *testing.T) {
	mix := DefaultUserMix()
	a := GenerateWorkload(mix, t0, 24*time.Hour, 42)
	b := GenerateWorkload(mix, t0, 24*time.Hour, 42)
	if a.Len() == 0 {
		t.Fatal("empty workload")
	}
	if a.Len() != b.Len() {
		t.Fatalf("non-deterministic: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Submissions() {
		if !a.Submissions()[i].At.Equal(b.Submissions()[i].At) {
			t.Fatal("submission times differ between identical seeds")
		}
	}
	c := GenerateWorkload(mix, t0, 24*time.Hour, 43)
	if c.Len() == a.Len() {
		sameAll := true
		for i := range a.Submissions() {
			if !a.Submissions()[i].At.Equal(c.Submissions()[i].At) {
				sameAll = false
				break
			}
		}
		if sameAll {
			t.Fatal("different seeds produced identical workloads")
		}
	}
}

func TestWorkloadSubmissionsSortedAndInHorizon(t *testing.T) {
	w := GenerateWorkload(DefaultUserMix(), t0, 6*time.Hour, 7)
	last := time.Time{}
	for _, s := range w.Submissions() {
		if s.At.Before(last) {
			t.Fatal("submissions not time-sorted")
		}
		last = s.At
		if s.At.Before(t0) || !s.At.Before(t0.Add(6*time.Hour)) {
			t.Fatalf("submission at %v outside horizon", s.At)
		}
	}
}

func TestWorkloadFeedDue(t *testing.T) {
	fleet, qm := newTestQM(t, 8)
	_ = fleet
	w := GenerateWorkload(DefaultUserMix(), t0, 2*time.Hour, 7)
	fed := w.FeedDue(qm, t0.Add(time.Hour))
	if fed == 0 {
		t.Fatal("nothing fed in the first hour")
	}
	if w.Remaining() != w.Len()-fed {
		t.Fatalf("remaining = %d, want %d", w.Remaining(), w.Len()-fed)
	}
	// Feeding again at the same time must be a no-op.
	if again := w.FeedDue(qm, t0.Add(time.Hour)); again != 0 {
		t.Fatalf("re-fed %d submissions", again)
	}
}

func TestWorkloadMixHasMPIAndArrayUsers(t *testing.T) {
	var hasMPI, hasArray bool
	for _, p := range DefaultUserMix() {
		if p.Spec.PE == PEMPI && p.Spec.Slots >= 36*2 {
			hasMPI = true
		}
		if p.Spec.Tasks > 100 {
			hasArray = true
		}
	}
	if !hasMPI || !hasArray {
		t.Fatal("default mix lacks the Fig 6 user archetypes")
	}
}

func TestTraceSaveLoadRoundTrip(t *testing.T) {
	w := GenerateWorkload(DefaultUserMix(), t0, 6*time.Hour, 3)
	var buf bytes.Buffer
	if err := w.SaveTrace(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != w.Len() {
		t.Fatalf("round trip lost submissions: %d vs %d", back.Len(), w.Len())
	}
	for i := range w.Submissions() {
		a, b := w.Submissions()[i], back.Submissions()[i]
		// Trace timestamps are second-granular.
		if !a.At.Truncate(time.Second).Equal(b.At) || a.Spec.Owner != b.Spec.Owner || a.Spec.Slots != b.Spec.Slots {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a, b)
		}
		if a.Spec.Runtime.Round(time.Second) != b.Spec.Runtime.Round(time.Second) {
			t.Fatalf("entry %d runtime %v vs %v", i, a.Spec.Runtime, b.Spec.Runtime)
		}
	}
}

func TestLoadTraceValidation(t *testing.T) {
	bad := []string{
		`not json`,
		`[{"at": 1, "name": "x", "runtime_sec": 10}]`, // no owner
		`[{"at": 1, "owner": "u", "runtime_sec": 0}]`, // bad runtime
	}
	for _, s := range bad {
		if _, err := LoadTrace(strings.NewReader(s)); err == nil {
			t.Errorf("LoadTrace(%q) succeeded", s)
		}
	}
	// Out-of-order entries are sorted.
	w, err := LoadTrace(strings.NewReader(
		`[{"at": 100, "owner": "b", "runtime_sec": 5}, {"at": 50, "owner": "a", "runtime_sec": 5}]`))
	if err != nil {
		t.Fatal(err)
	}
	if w.Submissions()[0].Spec.Owner != "a" {
		t.Fatal("trace not sorted by time")
	}
}
