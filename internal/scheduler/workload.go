package scheduler

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// UserProfile describes one synthetic user's submission behaviour.
type UserProfile struct {
	Name string
	// Kind of work the user submits.
	Spec JobSpec
	// MeanInterarrival between submissions (exponential arrivals).
	MeanInterarrival time.Duration
	// RuntimeSigma spreads each submission's runtime lognormally around
	// Spec.Runtime (0 disables).
	RuntimeSigma float64
}

// DefaultUserMix models the population visible in the paper's Figure 6
// timeline: an MPI user whose jobs span dozens of hosts ("jieyao"
// submitted two jobs requiring 58 hosts), an array-job user with
// hundreds of single-core tasks sharing hosts ("abdumal" submitted 997
// jobs on 29 hosts), plus SMP and serial users filling the rest of the
// machine.
func DefaultUserMix() []UserProfile {
	return []UserProfile{
		{
			Name: "jieyao",
			Spec: JobSpec{
				Owner: "jieyao", Name: "mpi_cfd", PE: PEMPI,
				Slots: 58 * 36, Runtime: 5 * time.Hour,
				CPUPerSlot: 0.97, MemPerSlotGB: 2.5,
			},
			MeanInterarrival: 12 * time.Hour,
			RuntimeSigma:     0.3,
		},
		{
			Name: "abdumal",
			Spec: JobSpec{
				Owner: "abdumal", Name: "param_sweep", PE: PESerial,
				Slots: 1, Tasks: 250, Runtime: 90 * time.Minute,
				CPUPerSlot: 0.9, MemPerSlotGB: 1.5,
			},
			MeanInterarrival: 6 * time.Hour,
			RuntimeSigma:     0.5,
		},
		{
			Name: "mahmoud",
			Spec: JobSpec{
				Owner: "mahmoud", Name: "md_sim", PE: PESMP,
				Slots: 36, Runtime: 3 * time.Hour,
				CPUPerSlot: 0.95, MemPerSlotGB: 3,
			},
			MeanInterarrival: 90 * time.Minute,
			RuntimeSigma:     0.4,
		},
		{
			Name: "tnguyen",
			Spec: JobSpec{
				Owner: "tnguyen", Name: "viz_render", PE: PESMP,
				Slots: 18, Runtime: 45 * time.Minute,
				CPUPerSlot: 0.8, MemPerSlotGB: 4,
			},
			MeanInterarrival: 40 * time.Minute,
			RuntimeSigma:     0.6,
		},
		{
			Name: "hsingh",
			Spec: JobSpec{
				Owner: "hsingh", Name: "bio_blast", PE: PESerial,
				Slots: 4, Tasks: 24, Runtime: 2 * time.Hour,
				CPUPerSlot: 0.85, MemPerSlotGB: 2,
			},
			MeanInterarrival: 4 * time.Hour,
			RuntimeSigma:     0.5,
		},
		{
			Name: "weather",
			Spec: JobSpec{
				Owner: "weather", Name: "wrf_forecast", PE: PEMPI,
				Slots: 12 * 36, Runtime: 80 * time.Minute,
				CPUPerSlot: 0.96, MemPerSlotGB: 2,
			},
			MeanInterarrival: 3 * time.Hour,
			RuntimeSigma:     0.2,
		},
		{
			Name: "ugrad",
			Spec: JobSpec{
				Owner: "ugrad", Name: "hw_run", PE: PESerial,
				Slots: 1, Runtime: 20 * time.Minute,
				CPUPerSlot: 0.7, MemPerSlotGB: 1,
			},
			MeanInterarrival: 10 * time.Minute,
			RuntimeSigma:     0.8,
		},
	}
}

// Submission is one scheduled qsub event.
type Submission struct {
	At   time.Time
	Spec JobSpec
}

// Workload is a time-ordered list of submissions plus a cursor; the
// cluster stepper feeds due submissions into the qmaster.
type Workload struct {
	subs []Submission
	next int
}

// GenerateWorkload builds a deterministic synthetic trace over
// [start, start+horizon) from the user profiles.
func GenerateWorkload(profiles []UserProfile, start time.Time, horizon time.Duration, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	var subs []Submission
	for _, p := range profiles {
		if p.MeanInterarrival <= 0 {
			continue
		}
		// Start each user at a random phase of their interarrival cycle.
		t := start.Add(time.Duration(rng.Float64() * float64(p.MeanInterarrival) * 0.5))
		for t.Before(start.Add(horizon)) {
			spec := p.Spec
			if p.RuntimeSigma > 0 {
				factor := math.Exp(rng.NormFloat64() * p.RuntimeSigma)
				spec.Runtime = time.Duration(float64(spec.Runtime) * clampF(factor, 0.2, 5))
			}
			subs = append(subs, Submission{At: t, Spec: spec})
			gap := time.Duration(rng.ExpFloat64() * float64(p.MeanInterarrival))
			if gap < time.Minute {
				gap = time.Minute
			}
			t = t.Add(gap)
		}
	}
	sort.SliceStable(subs, func(i, j int) bool { return subs[i].At.Before(subs[j].At) })
	return &Workload{subs: subs}
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Len reports total submissions in the trace.
func (w *Workload) Len() int { return len(w.subs) }

// Remaining reports submissions not yet fed.
func (w *Workload) Remaining() int { return len(w.subs) - w.next }

// Submissions returns the full trace (shared slice; read-only).
func (w *Workload) Submissions() []Submission { return w.subs }

// FeedDue submits every submission with At <= now into the qmaster and
// reports how many were fed.
func (w *Workload) FeedDue(qm *QMaster, now time.Time) int {
	n := 0
	for w.next < len(w.subs) && !w.subs[w.next].At.After(now) {
		qm.Submit(w.subs[w.next].Spec)
		w.next++
		n++
	}
	return n
}
