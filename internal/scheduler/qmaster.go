package scheduler

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"monster/internal/simnode"
)

// Options configures a QMaster.
type Options struct {
	// ScheduleInterval is how often the dispatcher runs (UGE default
	// schedule_interval 0:0:15). Zero means 15 s.
	ScheduleInterval time.Duration
	// LoadReportInterval is how often each execd reports host load (UGE
	// default load_report_time 0:0:40 — the paper's 40 s limit on
	// in-band metric freshness). Zero means 40 s.
	LoadReportInterval time.Duration
	// MaxUnheard marks a host unavailable after this long without a
	// load report. Zero means 2 load report intervals.
	MaxUnheard time.Duration
	// AccountingCap bounds the in-memory accounting log. Zero means
	// 100000 records.
	AccountingCap int
}

func (o *Options) applyDefaults() {
	if o.ScheduleInterval == 0 {
		o.ScheduleInterval = 15 * time.Second
	}
	if o.LoadReportInterval == 0 {
		o.LoadReportInterval = 40 * time.Second
	}
	if o.MaxUnheard == 0 {
		o.MaxUnheard = 2 * o.LoadReportInterval
	}
	if o.AccountingCap == 0 {
		o.AccountingCap = 100000
	}
}

// HostReport is one execd load report as the qmaster last received it.
type HostReport struct {
	Host        string
	Addr        string // management address (the NodeId the collector tags with)
	At          time.Time
	CPUUsage    float64
	MemTotalGB  float64
	MemUsedGB   float64
	SwapTotal   float64
	SwapUsed    float64
	LoadAvg     float64
	SlotsTotal  int
	SlotsUsed   int
	IOReadMBps  float64
	IOWriteMBps float64
	JobKeys     []string
	Available   bool
}

type hostState struct {
	node       *simnode.Node
	slotsTotal int
	slotsUsed  int
	jobs       map[string]*Job // by job key
	lastReport HostReport
	lastHeard  time.Time
	reportAt   time.Time // next scheduled execd report
	available  bool
}

// QMaster is the resource manager core. It is driven by Tick (virtual
// or real time) and is safe for concurrent use — the HTTP API reads
// while the cluster stepper ticks.
type QMaster struct {
	opts Options

	mu         sync.RWMutex
	now        time.Time
	hosts      map[string]*hostState
	hostOrder  []string
	pending    []*Job
	running    map[string]*Job
	accounting []AccountingRecord
	nextID     int64
	nextSched  time.Time
	stats      Stats
}

// Stats counts scheduler activity.
type Stats struct {
	Submitted  int64
	Dispatched int64
	Completed  int64
	Failed     int64
	SchedRuns  int64
}

// NewQMaster creates a qmaster managing the given nodes, starting its
// clock at start.
func NewQMaster(nodes []*simnode.Node, start time.Time, opts Options) *QMaster {
	opts.applyDefaults()
	qm := &QMaster{
		opts:    opts,
		now:     start,
		hosts:   make(map[string]*hostState, len(nodes)),
		running: make(map[string]*Job),
		nextID:  1290000, // Quanah-era job IDs, cf. Fig 5
	}
	for i, n := range nodes {
		hs := &hostState{
			node:       n,
			slotsTotal: n.Config().Cores,
			jobs:       make(map[string]*Job),
			available:  true,
			lastHeard:  start,
			// Stagger execd reports so they do not arrive in one burst.
			reportAt: start.Add(time.Duration(i) * opts.LoadReportInterval / time.Duration(max(len(nodes), 1))),
		}
		qm.hosts[n.Name()] = hs
		qm.hostOrder = append(qm.hostOrder, n.Name())
		hs.captureReport(start)
	}
	qm.nextSched = start
	return qm
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Now reports the qmaster's current (last ticked) time.
func (qm *QMaster) Now() time.Time {
	qm.mu.RLock()
	defer qm.mu.RUnlock()
	return qm.now
}

// Stats returns activity counters.
func (qm *QMaster) Stats() Stats {
	qm.mu.RLock()
	defer qm.mu.RUnlock()
	return qm.stats
}

// Submit accepts a job specification, expanding array jobs into tasks.
// It returns the assigned job ID.
func (qm *QMaster) Submit(spec JobSpec) int64 {
	spec.normalize()
	qm.mu.Lock()
	defer qm.mu.Unlock()
	id := qm.nextID
	qm.nextID++
	for task := 1; task <= spec.Tasks; task++ {
		j := &Job{
			ID:       id,
			Owner:    spec.Owner,
			Name:     spec.Name,
			Queue:    spec.Queue,
			PE:       spec.PE,
			Slots:    spec.Slots,
			Runtime:  spec.Runtime,
			CPUFrac:  spec.CPUPerSlot,
			MemGB:    spec.MemPerSlotGB,
			State:    JobPending,
			SubmitAt: qm.now,
		}
		if spec.Tasks > 1 {
			j.TaskID = task
		}
		qm.pending = append(qm.pending, j)
		qm.stats.Submitted++
	}
	return id
}

// Tick advances the qmaster to now: completes finished jobs, collects
// due execd load reports, and runs the dispatcher if its interval has
// elapsed. Call it with monotonically non-decreasing times.
func (qm *QMaster) Tick(now time.Time) {
	qm.mu.Lock()
	defer qm.mu.Unlock()
	if now.Before(qm.now) {
		return
	}
	qm.now = now
	qm.completeLocked()
	qm.loadReportsLocked()
	if !now.Before(qm.nextSched) {
		qm.scheduleLocked()
		qm.nextSched = now.Add(qm.opts.ScheduleInterval)
		qm.stats.SchedRuns++
	}
}

func (qm *QMaster) completeLocked() {
	for key, j := range qm.running {
		if j.EndAt.After(qm.now) {
			continue
		}
		delete(qm.running, key)
		j.State = JobDone
		for _, a := range j.Alloc {
			hs := qm.hosts[a.Host]
			hs.slotsUsed -= a.Slots
			delete(hs.jobs, key)
			qm.applyDemandLocked(hs)
		}
		qm.stats.Completed++
		qm.appendAccountingLocked(j, 0, false)
	}
}

func (qm *QMaster) appendAccountingLocked(j *Job, exit int, failed bool) {
	rec := AccountingRecord{
		JobID:      j.ID,
		TaskID:     j.TaskID,
		Owner:      j.Owner,
		Name:       j.Name,
		Queue:      j.Queue,
		PE:         j.PE,
		Slots:      j.Slots,
		SubmitTime: j.SubmitAt,
		StartTime:  j.StartAt,
		EndTime:    j.EndAt,
		WallClock:  j.EndAt.Sub(j.StartAt),
		CPUSeconds: j.EndAt.Sub(j.StartAt).Seconds() * float64(j.Slots) * j.CPUFrac,
		MaxVMemGB:  float64(j.Slots) * j.MemGB,
		Hosts:      j.Hosts(),
		ExitStatus: exit,
		Failed:     failed,
	}
	qm.accounting = append(qm.accounting, rec)
	if len(qm.accounting) > qm.opts.AccountingCap {
		qm.accounting = qm.accounting[len(qm.accounting)-qm.opts.AccountingCap:]
	}
}

func (qm *QMaster) loadReportsLocked() {
	for _, name := range qm.hostOrder {
		hs := qm.hosts[name]
		if qm.now.Before(hs.reportAt) {
			continue
		}
		hs.reportAt = hs.reportAt.Add(qm.opts.LoadReportInterval)
		if hs.node.ActiveFault() == simnode.FaultHostDown {
			// No report arrives; the qmaster will eventually mark the
			// host unavailable.
			continue
		}
		hs.lastHeard = qm.now
		hs.captureReport(qm.now)
	}
	for _, name := range qm.hostOrder {
		hs := qm.hosts[name]
		avail := qm.now.Sub(hs.lastHeard) <= qm.opts.MaxUnheard
		if hs.available && !avail {
			// UGE labels the host and its resources as no longer
			// available; queued jobs avoid it (Section III-B2).
			hs.available = false
			qm.failJobsOnHostLocked(hs)
		} else if avail {
			hs.available = true
		}
	}
}

// failJobsOnHostLocked fails every job with an allocation on the dead
// host (a node crash kills the MPI job everywhere).
func (qm *QMaster) failJobsOnHostLocked(hs *hostState) {
	for key, j := range hs.jobs {
		delete(qm.running, key)
		j.State = JobFailed
		j.EndAt = qm.now
		for _, a := range j.Alloc {
			other := qm.hosts[a.Host]
			other.slotsUsed -= a.Slots
			delete(other.jobs, key)
			if other != hs {
				qm.applyDemandLocked(other)
			}
		}
		qm.stats.Failed++
		qm.appendAccountingLocked(j, 137, true)
	}
	hs.slotsUsed = 0
	hs.jobs = make(map[string]*Job)
	qm.applyDemandLocked(hs)
}

func (hs *hostState) captureReport(now time.Time) {
	m := hs.node.Host()
	io := hs.node.IO()
	keys := make([]string, 0, len(hs.jobs))
	for k := range hs.jobs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	hs.lastReport = HostReport{
		Host:        hs.node.Name(),
		Addr:        hs.node.Addr(),
		At:          now,
		CPUUsage:    m.CPUUsage,
		MemTotalGB:  m.MemTotalGB,
		MemUsedGB:   m.MemUsedGB,
		SwapTotal:   m.SwapTotal,
		SwapUsed:    m.SwapUsed,
		LoadAvg:     m.LoadAvg,
		SlotsTotal:  hs.slotsTotal,
		SlotsUsed:   hs.slotsUsed,
		IOReadMBps:  io.ReadMBps,
		IOWriteMBps: io.WriteMBps,
		JobKeys:     keys,
		Available:   true,
	}
}

// applyDemandLocked pushes the host's job mix into the node physics:
// CPU and memory demand, plus fabric traffic for multi-node (MPI) jobs
// and filesystem throughput for every job.
func (qm *QMaster) applyDemandLocked(hs *hostState) {
	var cpu, mem float64
	var netBps, ioMBps float64
	for _, j := range hs.jobs {
		for _, a := range j.Alloc {
			if a.Host != hs.node.Name() {
				continue
			}
			cpu += float64(a.Slots) * j.CPUFrac
			mem += float64(a.Slots) * j.MemGB
			// MPI ranks exchange ~2 MB/s per slot with their peers;
			// every job reads/writes the parallel filesystem at ~0.5
			// MB/s per slot.
			if len(j.Alloc) > 1 {
				netBps += float64(a.Slots) * 2e6
			}
			ioMBps += float64(a.Slots) * 0.5
		}
	}
	hs.node.SetDemand(cpu/float64(hs.slotsTotal), mem, len(hs.jobs))
	hs.node.SetTraffic(netBps, netBps)
	hs.node.SetIO(ioMBps*0.7, ioMBps*0.3)
}

// scheduleLocked dispatches pending jobs in FIFO order with backfill:
// a job that cannot be placed does not block later jobs that can.
func (qm *QMaster) scheduleLocked() {
	if len(qm.pending) == 0 {
		return
	}
	remaining := qm.pending[:0]
	for _, j := range qm.pending {
		if qm.placeLocked(j) {
			qm.stats.Dispatched++
		} else {
			remaining = append(remaining, j)
		}
	}
	qm.pending = remaining
}

// placeLocked tries to allocate and start a job now.
func (qm *QMaster) placeLocked(j *Job) bool {
	switch {
	case j.PE == PEMPI:
		return qm.placeMPILocked(j)
	default:
		return qm.placeSingleHostLocked(j)
	}
}

// placeSingleHostLocked handles serial and SMP jobs: all slots on one
// host, fill-up policy (most-loaded host that still fits, packing jobs
// tightly the way UGE's default host sort does).
func (qm *QMaster) placeSingleHostLocked(j *Job) bool {
	var best *hostState
	bestFree := -1
	for _, name := range qm.hostOrder {
		hs := qm.hosts[name]
		if !hs.available {
			continue
		}
		free := hs.slotsTotal - hs.slotsUsed
		if free < j.Slots {
			continue
		}
		// Fill-up: prefer the smallest sufficient free count.
		if bestFree == -1 || free < bestFree {
			best, bestFree = hs, free
		}
	}
	if best == nil {
		return false
	}
	qm.startLocked(j, []Allocation{{Host: best.node.Name(), Slots: j.Slots}})
	return true
}

// placeMPILocked spreads the job's slots across hosts, preferring
// emptier hosts (round-robin-ish spread, like a typical MPI PE).
func (qm *QMaster) placeMPILocked(j *Job) bool {
	type cand struct {
		hs   *hostState
		free int
	}
	var cands []cand
	totalFree := 0
	for _, name := range qm.hostOrder {
		hs := qm.hosts[name]
		if !hs.available {
			continue
		}
		free := hs.slotsTotal - hs.slotsUsed
		if free > 0 {
			cands = append(cands, cand{hs, free})
			totalFree += free
		}
	}
	if totalFree < j.Slots {
		return false
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].free > cands[b].free })
	var alloc []Allocation
	need := j.Slots
	for _, c := range cands {
		take := c.free
		if take > need {
			take = need
		}
		alloc = append(alloc, Allocation{Host: c.hs.node.Name(), Slots: take})
		need -= take
		if need == 0 {
			break
		}
	}
	qm.startLocked(j, alloc)
	return true
}

func (qm *QMaster) startLocked(j *Job, alloc []Allocation) {
	j.Alloc = alloc
	j.State = JobRunning
	j.StartAt = qm.now
	j.EndAt = qm.now.Add(j.Runtime)
	key := j.Key()
	qm.running[key] = j
	for _, a := range alloc {
		hs := qm.hosts[a.Host]
		hs.slotsUsed += a.Slots
		hs.jobs[key] = j
		qm.applyDemandLocked(hs)
	}
}

// Pending returns a snapshot of queued jobs in submit order.
func (qm *QMaster) Pending() []*Job {
	qm.mu.RLock()
	defer qm.mu.RUnlock()
	out := make([]*Job, len(qm.pending))
	copy(out, qm.pending)
	return out
}

// Running returns a snapshot of running jobs sorted by key.
func (qm *QMaster) Running() []*Job {
	qm.mu.RLock()
	defer qm.mu.RUnlock()
	out := make([]*Job, 0, len(qm.running))
	for _, j := range qm.running {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Key() < out[k].Key() })
	return out
}

// HostReports returns the latest execd report per host, in host order.
// This is the qmaster's (possibly stale, ≤40 s old) view — exactly what
// the collector can observe.
func (qm *QMaster) HostReports() []HostReport {
	qm.mu.RLock()
	defer qm.mu.RUnlock()
	out := make([]HostReport, 0, len(qm.hostOrder))
	for _, name := range qm.hostOrder {
		hs := qm.hosts[name]
		r := hs.lastReport
		r.Available = hs.available
		out = append(out, r)
	}
	return out
}

// Accounting returns completed-job records with EndTime >= since.
func (qm *QMaster) Accounting(since time.Time) []AccountingRecord {
	qm.mu.RLock()
	defer qm.mu.RUnlock()
	var out []AccountingRecord
	for _, r := range qm.accounting {
		if !r.EndTime.Before(since) {
			out = append(out, r)
		}
	}
	return out
}

// SlotsInUse reports total occupied slots (for tests and invariants).
func (qm *QMaster) SlotsInUse() int {
	qm.mu.RLock()
	defer qm.mu.RUnlock()
	n := 0
	for _, hs := range qm.hosts {
		n += hs.slotsUsed
	}
	return n
}

// checkInvariants panics if internal bookkeeping is inconsistent; used
// by tests.
func (qm *QMaster) checkInvariants() error {
	qm.mu.RLock()
	defer qm.mu.RUnlock()
	for name, hs := range qm.hosts {
		if hs.slotsUsed < 0 || hs.slotsUsed > hs.slotsTotal {
			return fmt.Errorf("host %s slots used %d out of [0,%d]", name, hs.slotsUsed, hs.slotsTotal)
		}
		sum := 0
		for _, j := range hs.jobs {
			for _, a := range j.Alloc {
				if a.Host == name {
					sum += a.Slots
				}
			}
		}
		if sum != hs.slotsUsed {
			return fmt.Errorf("host %s slots used %d but allocations sum to %d", name, hs.slotsUsed, sum)
		}
	}
	return nil
}
