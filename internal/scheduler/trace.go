package scheduler

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Workload traces can be exported and re-imported, so a synthetic trace
// can be frozen for reproducibility — or a trace recorded from a real
// scheduler (swf-style accounting logs converted to this JSON) can be
// replayed through the simulated cluster.

// traceEntry is the serialized form of one submission.
type traceEntry struct {
	At           int64   `json:"at"` // unix seconds
	Owner        string  `json:"owner"`
	Name         string  `json:"name"`
	Queue        string  `json:"queue,omitempty"`
	PE           string  `json:"pe,omitempty"`
	Slots        int     `json:"slots"`
	Tasks        int     `json:"tasks,omitempty"`
	RuntimeSec   float64 `json:"runtime_sec"`
	CPUPerSlot   float64 `json:"cpu_per_slot,omitempty"`
	MemPerSlotGB float64 `json:"mem_per_slot_gb,omitempty"`
}

// SaveTrace writes the workload's submissions as a JSON array.
func (w *Workload) SaveTrace(out io.Writer) error {
	entries := make([]traceEntry, 0, len(w.subs))
	for _, s := range w.subs {
		entries = append(entries, traceEntry{
			At:           s.At.Unix(),
			Owner:        s.Spec.Owner,
			Name:         s.Spec.Name,
			Queue:        s.Spec.Queue,
			PE:           string(s.Spec.PE),
			Slots:        s.Spec.Slots,
			Tasks:        s.Spec.Tasks,
			RuntimeSec:   s.Spec.Runtime.Seconds(),
			CPUPerSlot:   s.Spec.CPUPerSlot,
			MemPerSlotGB: s.Spec.MemPerSlotGB,
		})
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", " ")
	return enc.Encode(entries)
}

// LoadTrace reads a JSON submission trace. Entries are sorted by time;
// invalid entries are rejected.
func LoadTrace(in io.Reader) (*Workload, error) {
	var entries []traceEntry
	if err := json.NewDecoder(in).Decode(&entries); err != nil {
		return nil, fmt.Errorf("scheduler: load trace: %w", err)
	}
	subs := make([]Submission, 0, len(entries))
	for i, e := range entries {
		if e.Owner == "" {
			return nil, fmt.Errorf("scheduler: trace entry %d: missing owner", i)
		}
		if e.RuntimeSec <= 0 {
			return nil, fmt.Errorf("scheduler: trace entry %d: non-positive runtime", i)
		}
		subs = append(subs, Submission{
			At: time.Unix(e.At, 0).UTC(),
			Spec: JobSpec{
				Owner:        e.Owner,
				Name:         e.Name,
				Queue:        e.Queue,
				PE:           PE(e.PE),
				Slots:        e.Slots,
				Tasks:        e.Tasks,
				Runtime:      time.Duration(e.RuntimeSec * float64(time.Second)),
				CPUPerSlot:   e.CPUPerSlot,
				MemPerSlotGB: e.MemPerSlotGB,
			},
		})
	}
	sort.SliceStable(subs, func(i, j int) bool { return subs[i].At.Before(subs[j].At) })
	return &Workload{subs: subs}, nil
}
