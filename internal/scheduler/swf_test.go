package scheduler

import (
	"strings"
	"testing"
	"time"
)

const sampleSWF = `
; SWF header comment
; UnixStartTime: 1587384000
;
1   0    10  3600  1   -1 -1  1   3600 -1 1 101 5 1 1 1 -1 -1
2   60   -1  7200  36  -1 -1 36  7200 -1 1 102 5 1 2 1 -1 -1
3   120  5   1800  144 -1 -1 144 1800 -1 1 103 5 1 1 1 -1 -1
4   30   -1  -1    -1  -1 -1 -1  -1   -1 0 104 5 1 1 1 -1 -1
`

func TestLoadSWF(t *testing.T) {
	w, skipped, err := LoadSWF(strings.NewReader(sampleSWF), t0, 36)
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (the degenerate job)", skipped)
	}
	if w.Len() != 3 {
		t.Fatalf("jobs = %d", w.Len())
	}
	subs := w.Submissions()
	// Job 1: serial.
	if subs[0].Spec.PE != PESerial || subs[0].Spec.Slots != 1 {
		t.Fatalf("job1 = %+v", subs[0].Spec)
	}
	if !subs[0].At.Equal(t0) || subs[0].Spec.Runtime != time.Hour {
		t.Fatalf("job1 time = %v runtime %v", subs[0].At, subs[0].Spec.Runtime)
	}
	if subs[0].Spec.Owner != "user101" || subs[0].Spec.Queue != "q1" {
		t.Fatalf("job1 identity = %+v", subs[0].Spec)
	}
	// Job 2: full node -> SMP.
	if subs[1].Spec.PE != PESMP || subs[1].Spec.Slots != 36 {
		t.Fatalf("job2 = %+v", subs[1].Spec)
	}
	// Job 3: 144 procs -> MPI.
	if subs[2].Spec.PE != PEMPI || subs[2].Spec.Slots != 144 {
		t.Fatalf("job3 = %+v", subs[2].Spec)
	}
	if !subs[2].At.Equal(t0.Add(2 * time.Minute)) {
		t.Fatalf("job3 at %v", subs[2].At)
	}
}

func TestLoadSWFReplaysThroughQMaster(t *testing.T) {
	fleet, qm := newTestQM(t, 8)
	w, _, err := LoadSWF(strings.NewReader(sampleSWF), t0, 36)
	if err != nil {
		t.Fatal(err)
	}
	tick := t0
	for i := 0; i < 20; i++ {
		tick = tick.Add(15 * time.Second)
		w.FeedDue(qm, tick)
		fleet.Step(15 * time.Second)
		qm.Tick(tick)
	}
	if qm.Stats().Submitted != 3 {
		t.Fatalf("submitted = %d", qm.Stats().Submitted)
	}
	if qm.Stats().Dispatched == 0 {
		t.Fatal("nothing dispatched from the SWF trace")
	}
	if err := qm.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadSWFErrors(t *testing.T) {
	if _, _, err := LoadSWF(strings.NewReader("1 2 3"), t0, 36); err == nil {
		t.Fatal("short line accepted")
	}
	// Unparseable numeric fields behave like -1 (skipped), not errors.
	w, skipped, err := LoadSWF(strings.NewReader("x 0 0 100 1 0 0 1 100 0 1 1 1 1 1 1 -1 -1"), t0, 36)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 1 || skipped != 0 {
		t.Fatalf("len=%d skipped=%d", w.Len(), skipped)
	}
	// Empty input is an empty workload.
	w, _, err = LoadSWF(strings.NewReader("; only comments\n"), t0, 36)
	if err != nil || w.Len() != 0 {
		t.Fatalf("comment-only: %v %d", err, w.Len())
	}
}

func TestLoadSWFOutOfOrderSubmitsSorted(t *testing.T) {
	data := `
5 500 0 100 1 -1 -1 1 100 -1 1 1 1 1 1 1 -1 -1
6 100 0 100 1 -1 -1 1 100 -1 1 1 1 1 1 1 -1 -1
`
	w, _, err := LoadSWF(strings.NewReader(data), t0, 36)
	if err != nil {
		t.Fatal(err)
	}
	subs := w.Submissions()
	if !subs[0].At.Before(subs[1].At) {
		t.Fatal("SWF trace not time-sorted")
	}
}
