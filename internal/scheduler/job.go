// Package scheduler implements a Univa Grid Engine-style resource
// manager at the fidelity MonSTer's Metrics Collector observes: a
// qmaster that accepts jobs into queues and dispatches them onto
// execution hosts, per-host execution daemons that report load on a
// fixed interval (40 s by default, the UGE load_report_time), an
// accounting store in the spirit of ARCo, and HTTP query APIs in both
// UGE and Slurm flavours. A synthetic workload generator reproduces the
// user mix visible in the paper's Figure 6 (MPI users spanning dozens
// of hosts, array users with hundreds of tasks, and serial users).
package scheduler

import (
	"fmt"
	"time"
)

// JobState is the lifecycle state of a job.
type JobState int

// Job lifecycle states.
const (
	JobPending JobState = iota
	JobRunning
	JobDone
	JobFailed
)

// String implements fmt.Stringer using UGE's qstat state letters.
func (s JobState) String() string {
	switch s {
	case JobPending:
		return "qw"
	case JobRunning:
		return "r"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	default:
		return fmt.Sprintf("JobState(%d)", int(s))
	}
}

// PE is the parallel environment requested by a job.
type PE string

// Parallel environments.
const (
	PESerial PE = ""    // one slot
	PESMP    PE = "smp" // all slots on one host
	PEMPI    PE = "mpi" // slots spread across hosts
)

// JobSpec is what a user submits (the qsub request).
type JobSpec struct {
	Owner        string
	Name         string
	Queue        string
	PE           PE
	Slots        int           // total slots requested
	Tasks        int           // >1 makes this an array job of identical tasks
	Runtime      time.Duration // how long each task runs once started
	CPUPerSlot   float64       // activity per occupied slot [0,1]
	MemPerSlotGB float64
}

func (s *JobSpec) normalize() {
	if s.Slots <= 0 {
		s.Slots = 1
	}
	if s.Tasks <= 0 {
		s.Tasks = 1
	}
	if s.Queue == "" {
		s.Queue = "omni"
	}
	if s.CPUPerSlot <= 0 {
		s.CPUPerSlot = 0.95
	}
	if s.MemPerSlotGB <= 0 {
		s.MemPerSlotGB = 2
	}
	if s.Runtime <= 0 {
		s.Runtime = time.Hour
	}
}

// Allocation is the slots a job holds on one host.
type Allocation struct {
	Host  string
	Slots int
}

// Job is one schedulable unit (one array task is one Job with a
// non-zero TaskID sharing the array's ID).
type Job struct {
	ID       int64
	TaskID   int // 0 for non-array jobs, 1-based for array tasks
	Owner    string
	Name     string
	Queue    string
	PE       PE
	Slots    int
	Runtime  time.Duration
	CPUFrac  float64
	MemGB    float64 // per slot
	State    JobState
	SubmitAt time.Time
	StartAt  time.Time
	EndAt    time.Time
	Alloc    []Allocation
}

// Key identifies a job uniquely, rendering array tasks UGE-style as
// "id.task".
func (j *Job) Key() string {
	if j.TaskID > 0 {
		return fmt.Sprintf("%d.%d", j.ID, j.TaskID)
	}
	return fmt.Sprintf("%d", j.ID)
}

// Hosts lists the distinct hosts of the allocation.
func (j *Job) Hosts() []string {
	out := make([]string, 0, len(j.Alloc))
	for _, a := range j.Alloc {
		out = append(out, a.Host)
	}
	return out
}

// WaitTime is the queueing delay before execution (zero until started).
func (j *Job) WaitTime() time.Duration {
	if j.State == JobPending || j.StartAt.IsZero() {
		return 0
	}
	return j.StartAt.Sub(j.SubmitAt)
}

// AccountingRecord is the ARCo-style accounting row written when a job
// finishes.
type AccountingRecord struct {
	JobID      int64
	TaskID     int
	Owner      string
	Name       string
	Queue      string
	PE         PE
	Slots      int
	SubmitTime time.Time
	StartTime  time.Time
	EndTime    time.Time
	WallClock  time.Duration
	CPUSeconds float64 // slot-seconds of CPU consumed
	MaxVMemGB  float64
	Hosts      []string
	ExitStatus int
	Failed     bool
}
