package scheduler

import (
	"testing"
	"time"

	"monster/internal/simnode"
)

var t0 = time.Date(2020, 4, 20, 12, 0, 0, 0, time.UTC)

func newTestQM(t *testing.T, nodes int) (*simnode.Fleet, *QMaster) {
	t.Helper()
	fleet := simnode.NewFleet(nodes, 1)
	qm := NewQMaster(fleet.Nodes(), t0, Options{})
	return fleet, qm
}

// tickTo advances the qmaster in lockstep with the node physics.
func tickTo(qm *QMaster, fleet *simnode.Fleet, until time.Time, step time.Duration) {
	for now := qm.Now(); now.Before(until); now = now.Add(step) {
		fleet.Step(step)
		qm.Tick(now.Add(step))
	}
}

func TestSubmitAndDispatchSerialJob(t *testing.T) {
	fleet, qm := newTestQM(t, 2)
	id := qm.Submit(JobSpec{Owner: "alice", Name: "hello", Slots: 1, Runtime: 10 * time.Minute})
	if id == 0 {
		t.Fatal("no job id")
	}
	if got := len(qm.Pending()); got != 1 {
		t.Fatalf("pending = %d", got)
	}
	tickTo(qm, fleet, t0.Add(time.Minute), 15*time.Second)
	running := qm.Running()
	if len(running) != 1 {
		t.Fatalf("running = %d", len(running))
	}
	j := running[0]
	if j.State != JobRunning || len(j.Alloc) != 1 || j.Alloc[0].Slots != 1 {
		t.Fatalf("job = %+v", j)
	}
	if j.WaitTime() < 0 || j.WaitTime() > time.Minute {
		t.Fatalf("wait = %v", j.WaitTime())
	}
	if err := qm.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJobCompletesAndWritesAccounting(t *testing.T) {
	fleet, qm := newTestQM(t, 1)
	qm.Submit(JobSpec{Owner: "alice", Name: "quick", Slots: 2, Runtime: 5 * time.Minute})
	tickTo(qm, fleet, t0.Add(10*time.Minute), 15*time.Second)
	if len(qm.Running()) != 0 {
		t.Fatal("job still running after its runtime")
	}
	recs := qm.Accounting(time.Unix(0, 0))
	if len(recs) != 1 {
		t.Fatalf("accounting records = %d", len(recs))
	}
	rec := recs[0]
	if rec.Owner != "alice" || rec.Slots != 2 || rec.Failed {
		t.Fatalf("record = %+v", rec)
	}
	if rec.WallClock < 4*time.Minute || rec.WallClock > 6*time.Minute {
		t.Fatalf("wallclock = %v", rec.WallClock)
	}
	if qm.SlotsInUse() != 0 {
		t.Fatalf("slots in use = %d after completion", qm.SlotsInUse())
	}
	st := qm.Stats()
	if st.Submitted != 1 || st.Dispatched != 1 || st.Completed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestArrayJobExpandsToTasks(t *testing.T) {
	fleet, qm := newTestQM(t, 4)
	id := qm.Submit(JobSpec{Owner: "abdumal", Name: "sweep", Slots: 1, Tasks: 10, Runtime: time.Hour})
	tickTo(qm, fleet, t0.Add(time.Minute), 15*time.Second)
	running := qm.Running()
	if len(running) != 10 {
		t.Fatalf("running tasks = %d, want 10", len(running))
	}
	seen := map[string]bool{}
	for _, j := range running {
		if j.ID != id {
			t.Fatalf("task has id %d, want shared %d", j.ID, id)
		}
		if j.TaskID == 0 {
			t.Fatal("array task missing TaskID")
		}
		seen[j.Key()] = true
	}
	if len(seen) != 10 {
		t.Fatalf("duplicate task keys: %v", seen)
	}
}

func TestSMPJobStaysOnOneHost(t *testing.T) {
	fleet, qm := newTestQM(t, 3)
	qm.Submit(JobSpec{Owner: "bob", Name: "smp", PE: PESMP, Slots: 36, Runtime: time.Hour})
	tickTo(qm, fleet, t0.Add(time.Minute), 15*time.Second)
	j := qm.Running()[0]
	if len(j.Alloc) != 1 || j.Alloc[0].Slots != 36 {
		t.Fatalf("alloc = %+v", j.Alloc)
	}
}

func TestMPIJobSpansHosts(t *testing.T) {
	fleet, qm := newTestQM(t, 4)
	qm.Submit(JobSpec{Owner: "jieyao", Name: "mpi", PE: PEMPI, Slots: 100, Runtime: time.Hour})
	tickTo(qm, fleet, t0.Add(time.Minute), 15*time.Second)
	running := qm.Running()
	if len(running) != 1 {
		t.Fatalf("running = %d", len(running))
	}
	j := running[0]
	total := 0
	for _, a := range j.Alloc {
		total += a.Slots
	}
	if total != 100 {
		t.Fatalf("allocated %d slots, want 100", total)
	}
	if len(j.Alloc) < 3 {
		t.Fatalf("MPI job on %d hosts, want >= 3", len(j.Alloc))
	}
	if err := qm.checkInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMPIJobWaitsWhenClusterFull(t *testing.T) {
	fleet, qm := newTestQM(t, 2)
	qm.Submit(JobSpec{Owner: "a", PE: PEMPI, Slots: 72, Runtime: 30 * time.Minute, Name: "big1"})
	qm.Submit(JobSpec{Owner: "b", PE: PEMPI, Slots: 72, Runtime: 30 * time.Minute, Name: "big2"})
	tickTo(qm, fleet, t0.Add(time.Minute), 15*time.Second)
	if len(qm.Running()) != 1 || len(qm.Pending()) != 1 {
		t.Fatalf("running=%d pending=%d, want 1/1", len(qm.Running()), len(qm.Pending()))
	}
	// After the first finishes, the second must start.
	tickTo(qm, fleet, t0.Add(45*time.Minute), 15*time.Second)
	if len(qm.Running()) != 1 || len(qm.Pending()) != 0 {
		t.Fatalf("second job not dispatched: running=%d pending=%d", len(qm.Running()), len(qm.Pending()))
	}
	if qm.Running()[0].Name != "big2" {
		t.Fatalf("wrong job running: %s", qm.Running()[0].Name)
	}
}

func TestBackfillSmallJobOvertakesBlockedBigJob(t *testing.T) {
	fleet, qm := newTestQM(t, 1)
	qm.Submit(JobSpec{Owner: "a", PE: PESMP, Slots: 30, Runtime: time.Hour, Name: "holder"})
	tickTo(qm, fleet, t0.Add(30*time.Second), 15*time.Second)
	qm.Submit(JobSpec{Owner: "b", PE: PESMP, Slots: 20, Runtime: time.Hour, Name: "blocked"})
	qm.Submit(JobSpec{Owner: "c", Slots: 4, Runtime: time.Hour, Name: "small"})
	tickTo(qm, fleet, t0.Add(2*time.Minute), 15*time.Second)
	names := map[string]bool{}
	for _, j := range qm.Running() {
		names[j.Name] = true
	}
	if !names["small"] {
		t.Fatal("small job was not backfilled")
	}
	if names["blocked"] {
		t.Fatal("blocked job should not fit")
	}
}

func TestNoOversubscription(t *testing.T) {
	fleet, qm := newTestQM(t, 3)
	for i := 0; i < 40; i++ {
		qm.Submit(JobSpec{Owner: "u", Slots: 5, Runtime: time.Hour})
	}
	tickTo(qm, fleet, t0.Add(2*time.Minute), 15*time.Second)
	if err := qm.checkInvariants(); err != nil {
		t.Fatal(err)
	}
	if used := qm.SlotsInUse(); used > 3*36 {
		t.Fatalf("slots in use %d exceeds capacity %d", used, 3*36)
	}
}

func TestJobDrivesNodeDemand(t *testing.T) {
	fleet, qm := newTestQM(t, 1)
	qm.Submit(JobSpec{Owner: "u", PE: PESMP, Slots: 36, Runtime: time.Hour, CPUPerSlot: 1.0, MemPerSlotGB: 2})
	tickTo(qm, fleet, t0.Add(time.Minute), 15*time.Second)
	h := fleet.Node(0).Host()
	if h.CPUUsage < 0.99 {
		t.Fatalf("node cpu = %v, want ~1.0", h.CPUUsage)
	}
	if h.MemUsedGB < 70 {
		t.Fatalf("node mem = %v, want 72", h.MemUsedGB)
	}
	if h.NJobs != 1 {
		t.Fatalf("node jobs = %d", h.NJobs)
	}
}

func TestLoadReportsArriveOnInterval(t *testing.T) {
	fleet, qm := newTestQM(t, 2)
	qm.Submit(JobSpec{Owner: "u", PE: PESMP, Slots: 36, Runtime: time.Hour})
	tickTo(qm, fleet, t0.Add(2*time.Minute), 5*time.Second)
	reports := qm.HostReports()
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		if r.At.Before(t0) {
			t.Fatalf("report never refreshed: %+v", r.At)
		}
		if !r.Available {
			t.Fatalf("host %s unavailable", r.Host)
		}
	}
	// The loaded host's report includes the job key and slot usage.
	var loaded *HostReport
	for i := range reports {
		if reports[i].SlotsUsed > 0 {
			loaded = &reports[i]
		}
	}
	if loaded == nil {
		t.Fatal("no report shows the running job")
	}
	if len(loaded.JobKeys) != 1 {
		t.Fatalf("job list = %v", loaded.JobKeys)
	}
}

func TestDownHostMarkedUnavailableAndJobsFail(t *testing.T) {
	fleet, qm := newTestQM(t, 2)
	qm.Submit(JobSpec{Owner: "u", PE: PEMPI, Slots: 72, Runtime: 4 * time.Hour, Name: "mpi"})
	tickTo(qm, fleet, t0.Add(time.Minute), 15*time.Second)
	if len(qm.Running()) != 1 {
		t.Fatal("setup: job not running")
	}
	fleet.Node(0).Inject(simnode.FaultHostDown)
	tickTo(qm, fleet, t0.Add(5*time.Minute), 15*time.Second)
	var downSeen bool
	for _, r := range qm.HostReports() {
		if r.Host == fleet.Node(0).Name() && !r.Available {
			downSeen = true
		}
	}
	if !downSeen {
		t.Fatal("dead host still marked available after MaxUnheard")
	}
	if len(qm.Running()) != 0 {
		t.Fatal("job survives the death of one of its hosts")
	}
	recs := qm.Accounting(time.Unix(0, 0))
	if len(recs) != 1 || !recs[0].Failed {
		t.Fatalf("failure not accounted: %+v", recs)
	}
	if qm.Stats().Failed != 1 {
		t.Fatalf("stats = %+v", qm.Stats())
	}
	// New jobs must avoid the dead host.
	qm.Submit(JobSpec{Owner: "u", PE: PESMP, Slots: 36, Runtime: time.Hour})
	tickTo(qm, fleet, t0.Add(6*time.Minute), 15*time.Second)
	if len(qm.Running()) != 1 {
		t.Fatal("job not rescheduled on surviving host")
	}
	if qm.Running()[0].Alloc[0].Host == fleet.Node(0).Name() {
		t.Fatal("job scheduled on dead host")
	}
}

func TestTickIgnoresTimeTravel(t *testing.T) {
	_, qm := newTestQM(t, 1)
	qm.Tick(t0.Add(time.Minute))
	qm.Tick(t0) // backwards — must be ignored
	if got := qm.Now(); !got.Equal(t0.Add(time.Minute)) {
		t.Fatalf("now = %v", got)
	}
}

func TestAccountingSinceFilter(t *testing.T) {
	fleet, qm := newTestQM(t, 1)
	qm.Submit(JobSpec{Owner: "u", Slots: 1, Runtime: time.Minute, Name: "early"})
	tickTo(qm, fleet, t0.Add(5*time.Minute), 15*time.Second)
	qm.Submit(JobSpec{Owner: "u", Slots: 1, Runtime: time.Minute, Name: "late"})
	tickTo(qm, fleet, t0.Add(10*time.Minute), 15*time.Second)
	all := qm.Accounting(time.Unix(0, 0))
	if len(all) != 2 {
		t.Fatalf("records = %d", len(all))
	}
	recent := qm.Accounting(t0.Add(5 * time.Minute))
	if len(recent) != 1 || recent[0].Name != "late" {
		t.Fatalf("since filter returned %+v", recent)
	}
}

func TestJobKeyFormats(t *testing.T) {
	j := &Job{ID: 1291784}
	if j.Key() != "1291784" {
		t.Fatalf("key = %s", j.Key())
	}
	j.TaskID = 7
	if j.Key() != "1291784.7" {
		t.Fatalf("array key = %s", j.Key())
	}
}

func TestJobStateStrings(t *testing.T) {
	if JobPending.String() != "qw" || JobRunning.String() != "r" {
		t.Fatal("UGE state letters wrong")
	}
	if JobDone.String() != "done" || JobFailed.String() != "failed" {
		t.Fatal("terminal state strings wrong")
	}
}

func TestSpecNormalization(t *testing.T) {
	s := JobSpec{Owner: "u"}
	s.normalize()
	if s.Slots != 1 || s.Tasks != 1 || s.Queue != "omni" || s.Runtime != time.Hour {
		t.Fatalf("normalized spec = %+v", s)
	}
	if s.CPUPerSlot <= 0 || s.MemPerSlotGB <= 0 {
		t.Fatalf("normalized spec = %+v", s)
	}
}
