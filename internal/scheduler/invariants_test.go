package scheduler

import (
	"math/rand"
	"testing"
	"time"

	"monster/internal/simnode"
)

// Randomized invariant tests: arbitrary job streams with random faults
// must never corrupt the qmaster's bookkeeping.

func TestRandomizedSchedulingInvariants(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 1313))
		nNodes := 2 + rng.Intn(6)
		fleet := simnode.NewFleet(nNodes, int64(trial))
		qm := NewQMaster(fleet.Nodes(), t0, Options{})

		now := t0
		var submitted, faultsInjected int
		for step := 0; step < 120; step++ {
			// Random submissions.
			if rng.Float64() < 0.4 {
				pe := PESerial
				slots := 1 + rng.Intn(8)
				switch rng.Intn(3) {
				case 1:
					pe = PESMP
					slots = 1 + rng.Intn(36)
				case 2:
					pe = PEMPI
					slots = 1 + rng.Intn(nNodes*36)
				}
				qm.Submit(JobSpec{
					Owner:   "u",
					Name:    "j",
					PE:      pe,
					Slots:   slots,
					Tasks:   1 + rng.Intn(3),
					Runtime: time.Duration(1+rng.Intn(20)) * time.Minute,
				})
				submitted++
			}
			// Occasional node death and resurrection.
			if rng.Float64() < 0.03 {
				fleet.Node(rng.Intn(nNodes)).Inject(simnode.FaultHostDown)
				faultsInjected++
			}
			if rng.Float64() < 0.03 {
				fleet.Node(rng.Intn(nNodes)).Inject(simnode.FaultNone)
			}
			now = now.Add(15 * time.Second)
			fleet.Step(15 * time.Second)
			qm.Tick(now)

			if err := qm.checkInvariants(); err != nil {
				t.Fatalf("trial %d step %d: %v", trial, step, err)
			}
		}

		st := qm.Stats()
		if st.Submitted == 0 {
			continue
		}
		// Conservation: everything submitted is pending, running,
		// completed, or failed.
		accounted := int64(len(qm.Pending())) + int64(len(qm.Running())) + st.Completed + st.Failed
		if accounted != st.Submitted {
			t.Fatalf("trial %d: %d submitted but %d accounted (p=%d r=%d c=%d f=%d)",
				trial, st.Submitted, accounted,
				len(qm.Pending()), len(qm.Running()), st.Completed, st.Failed)
		}
		// Accounting records exist for every terminal job.
		recs := qm.Accounting(time.Unix(0, 0))
		if int64(len(recs)) != st.Completed+st.Failed {
			t.Fatalf("trial %d: %d records for %d terminal jobs", trial, len(recs), st.Completed+st.Failed)
		}
		for _, rec := range recs {
			if rec.EndTime.Before(rec.StartTime) {
				t.Fatalf("trial %d: record ends before it starts: %+v", trial, rec)
			}
			if !rec.Failed && rec.WallClock < 0 {
				t.Fatalf("trial %d: negative wallclock: %+v", trial, rec)
			}
		}
	}
}

func TestRandomizedRunningJobsNeverExceedCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	fleet := simnode.NewFleet(3, 1)
	qm := NewQMaster(fleet.Nodes(), t0, Options{})
	capacity := 3 * 36
	now := t0
	for step := 0; step < 200; step++ {
		if rng.Float64() < 0.5 {
			qm.Submit(JobSpec{Owner: "u", Slots: 1 + rng.Intn(12), Runtime: time.Duration(1+rng.Intn(10)) * time.Minute})
		}
		now = now.Add(15 * time.Second)
		qm.Tick(now)
		if used := qm.SlotsInUse(); used > capacity {
			t.Fatalf("step %d: %d slots in use > capacity %d", step, used, capacity)
		}
	}
}
