package scheduler

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"time"
)

// LoadSWF imports a trace in the Standard Workload Format of the
// Parallel Workloads Archive — the format real production logs (and
// logs from clusters like Quanah) are published in — so recorded
// workloads can be replayed through the simulated cluster.
//
// SWF is line-oriented: ';' starts a comment, data lines carry 18
// whitespace-separated fields. The fields used here:
//
//	 1  job number
//	 2  submit time (seconds since trace start)
//	 4  run time (seconds; -1 unknown)
//	 5  allocated processors (-1 unknown)
//	 8  requested processors (-1 unknown)
//	 9  requested time (seconds; fallback when run time unknown)
//	12  user id
//	15  queue number
//
// start anchors the trace's time zero; coresPerNode decides whether a
// job is serial, SMP (fits one node) or MPI (spans nodes); zero means
// 36 (the Quanah node width). Jobs with no usable processor count or
// runtime are skipped and counted in the returned skip tally.
func LoadSWF(in io.Reader, start time.Time, coresPerNode int) (*Workload, int, error) {
	if coresPerNode <= 0 {
		coresPerNode = 36
	}
	var subs []Submission
	skipped := 0
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, ";") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 15 {
			return nil, skipped, fmt.Errorf("scheduler: swf line %d: %d fields, want >= 15", lineNo, len(fields))
		}
		get := func(i int) int64 { // 1-based SWF field index
			v, err := strconv.ParseInt(fields[i-1], 10, 64)
			if err != nil {
				return -1
			}
			return v
		}
		jobID := get(1)
		submit := get(2)
		runTime := get(4)
		procs := get(5)
		if procs <= 0 {
			procs = get(8)
		}
		if runTime <= 0 {
			runTime = get(9)
		}
		if submit < 0 || procs <= 0 || runTime <= 0 {
			skipped++
			continue
		}
		user := fmt.Sprintf("user%d", get(12))
		queue := ""
		if q := get(15); q > 0 {
			queue = fmt.Sprintf("q%d", q)
		}
		pe := PESerial
		switch {
		case procs > int64(coresPerNode):
			pe = PEMPI
		case procs > 1:
			pe = PESMP
		}
		subs = append(subs, Submission{
			At: start.Add(time.Duration(submit) * time.Second),
			Spec: JobSpec{
				Owner:   user,
				Name:    fmt.Sprintf("swf-%d", jobID),
				Queue:   queue,
				PE:      pe,
				Slots:   int(procs),
				Runtime: time.Duration(runTime) * time.Second,
			},
		})
	}
	if err := sc.Err(); err != nil {
		return nil, skipped, fmt.Errorf("scheduler: swf read: %w", err)
	}
	sort.SliceStable(subs, func(i, j int) bool { return subs[i].At.Before(subs[j].At) })
	return &Workload{subs: subs}, skipped, nil
}
