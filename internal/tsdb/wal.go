package tsdb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"monster/internal/clock"
)

// Write-ahead log: the durability layer under the in-memory engine.
//
// Every mutation (write batch, measurement drop, retention sweep) is
// appended to an on-disk segment *before* it is applied to the
// published view, so a crashed process recovers by loading the last
// snapshot and replaying the log (see recover.go). The format follows
// the snapshot's conventions — little-endian, length-prefixed strings,
// versioned magic — with per-record CRC framing so a torn tail is
// detected and truncated rather than misread:
//
//	segment file wal-<seq>.seg:
//	  magic "MWAL" | version u16
//	  frame*: length u32 | crc32 u32 (IEEE, of payload) | payload
//	payload: op u8 | op body
//	  opWrite:        nPoints u32, then per point:
//	                  measurement str | nTags u32 | (k,v str)* |
//	                  nFields u32 | (name str, value)* | time i64
//	  opDrop:         measurement str
//	  opDeleteBefore: t i64
//
// Strings are u32 length + bytes; values are the snapshot's kind-byte
// encoding. Segments rotate by size; a checkpoint (snapshot + log
// truncation) cuts a segment boundary under the write lock so the
// deleted prefix is exactly what the snapshot covers.

const (
	walMagic   = "MWAL"
	walVersion = 1
	// walHeaderSize is the segment header: 4-byte magic + u16 version.
	walHeaderSize = 6
	// walFrameHeader prefixes every record: u32 length + u32 crc.
	walFrameHeader = 8

	// DefaultWALSegmentSize rotates segments at 4 MiB — small enough
	// that checkpoint truncation reclaims space promptly at the paper's
	// ~10 k points/minute ingest, large enough to keep the directory
	// tidy.
	DefaultWALSegmentSize = 4 << 20
	// DefaultSyncInterval batches fsyncs under FsyncInterval: at most
	// one second of acknowledged points is exposed to a power loss.
	DefaultSyncInterval = time.Second
	// maxWALRecord bounds a single record frame (a paper-scale write
	// batch is ~1 MiB; anything near this limit is corruption).
	maxWALRecord = 1 << 28
)

// FsyncPolicy selects when the WAL fsyncs its active segment.
type FsyncPolicy int

// Fsync policies. FsyncInterval is the zero value (the production
// default): appends fsync when SyncInterval has elapsed since the last
// sync, bounding power-loss exposure to one interval. FsyncAlways
// syncs every append (maximum durability, one fsync per write batch);
// FsyncNever leaves flushing to the OS (process crashes lose nothing —
// the page cache survives — but a machine crash may lose the unsynced
// tail).
const (
	FsyncInterval FsyncPolicy = iota
	FsyncAlways
	FsyncNever
)

// String renders the policy the way ParseFsyncPolicy accepts it.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncNever:
		return "never"
	default:
		return "interval"
	}
}

// ParseFsyncPolicy parses "always", "interval", or "never".
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	default:
		return FsyncInterval, fmt.Errorf("tsdb: unknown fsync policy %q (want always, interval, or never)", s)
	}
}

// WALOptions configures the write-ahead log under a durable DB.
type WALOptions struct {
	// Dir is the directory holding the segments and the checkpoint
	// snapshot. Required.
	Dir string
	// Policy selects fsync behaviour (FsyncInterval by default).
	Policy FsyncPolicy
	// SyncInterval is the fsync cadence under FsyncInterval. Zero
	// selects DefaultSyncInterval.
	SyncInterval time.Duration
	// SegmentSize rotates the active segment once it exceeds this many
	// bytes. Zero selects DefaultWALSegmentSize.
	SegmentSize int64
	// Clock drives the interval-sync timing; nil means the wall clock.
	// Simulated runs inject clock.Sim so sync points stay deterministic.
	Clock clock.Clock
}

func (o *WALOptions) applyDefaults() {
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = DefaultWALSegmentSize
	}
	if o.Clock == nil {
		o.Clock = clock.NewReal()
	}
}

// WALStats counts log activity since open, plus what recovery found.
type WALStats struct {
	Segments       int   // live segment files, including the active one
	Bytes          int64 // bytes across live segments
	Appends        int64 // records appended since open
	Syncs          int64 // fsyncs issued
	Rotations      int64 // segment rotations (including checkpoint cuts)
	Checkpoints    int64 // snapshot+truncate cycles completed
	Replayed       int64 // records replayed during recovery
	ReplayedPoints int64 // points re-applied from those records
	TornFrames     int64 // bad frames found (and truncated) at recovery
	TruncatedBytes int64 // bytes discarded with the torn tail
}

// WAL is an append-only, CRC-framed, segmented log. It is safe for
// concurrent use, though the DB already serializes appends under its
// write lock.
type WAL struct {
	dir     string
	policy  FsyncPolicy
	syncIvl time.Duration
	segSize int64
	clk     clock.Clock

	mu        sync.Mutex
	f         *os.File
	seq       uint64   // active segment sequence number
	segBytes  int64    // bytes in the active segment
	liveSeqs  []uint64 // non-active live segments, ascending
	liveBytes int64    // bytes across liveSeqs
	lastSync  time.Time
	stats     WALStats
}

type walOp byte

const (
	walOpWrite        walOp = 1
	walOpDrop         walOp = 2
	walOpDeleteBefore walOp = 3
	// walOpBatch is a composite record: a raw write batch plus the
	// rollup-tier mutations (clear + rewrite per target) that write-path
	// maintenance derived from it. Logging the derived ops — instead of
	// re-running maintenance at replay — makes recovery deterministic:
	// the tiers come back exactly as acknowledged, never double-applied.
	walOpBatch walOp = 4
	// walOpClearRange removes one measurement's rows in [start, end) —
	// the raw-tier expiry primitive behind DeleteMeasurementBefore.
	walOpClearRange walOp = 5
)

// walSegment describes one on-disk segment file.
type walSegment struct {
	seq  uint64
	path string
	size int64
}

func walSegmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%08d.seg", seq))
}

// listWALSegments returns the directory's segments in sequence order.
func listWALSegments(dir string) ([]walSegment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range entries {
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "wal-%08d.seg", &seq); n != 1 || err != nil {
			continue
		}
		info, err := e.Info()
		if err != nil {
			return nil, err
		}
		segs = append(segs, walSegment{seq: seq, path: filepath.Join(dir, e.Name()), size: info.Size()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

// openWAL opens the log for appending into a fresh segment numbered
// after every surviving segment, which recovery has already replayed
// and (if needed) truncated.
func openWAL(opts WALOptions, surviving []walSegment) (*WAL, error) {
	opts.applyDefaults()
	w := &WAL{
		dir:      opts.Dir,
		policy:   opts.Policy,
		syncIvl:  opts.SyncInterval,
		segSize:  opts.SegmentSize,
		clk:      opts.Clock,
		lastSync: opts.Clock.Now(),
	}
	var next uint64 = 1
	for _, s := range surviving {
		w.liveSeqs = append(w.liveSeqs, s.seq)
		w.liveBytes += s.size
		if s.seq >= next {
			next = s.seq + 1
		}
	}
	if err := w.newSegmentLocked(next); err != nil {
		return nil, err
	}
	return w, nil
}

// newSegmentLocked creates and headers segment seq, making it active.
// Callers hold mu (or have exclusive access during open).
func (w *WAL) newSegmentLocked(seq uint64) error {
	f, err := os.OpenFile(walSegmentPath(w.dir, seq), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("tsdb: wal: create segment: %w", err)
	}
	var hdr [walHeaderSize]byte
	copy(hdr[:4], walMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], walVersion)
	if _, err := f.Write(hdr[:]); err != nil {
		closeErr := f.Close()
		_ = closeErr // the write error is the one worth reporting
		return fmt.Errorf("tsdb: wal: segment header: %w", err)
	}
	w.f = f
	w.seq = seq
	w.segBytes = walHeaderSize
	return nil
}

// rotateLocked seals the active segment (sync + close) and opens the
// next one. Callers hold mu.
func (w *WAL) rotateLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("tsdb: wal: sync on rotate: %w", err)
	}
	w.stats.Syncs++
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("tsdb: wal: close on rotate: %w", err)
	}
	w.liveSeqs = append(w.liveSeqs, w.seq)
	w.liveBytes += w.segBytes
	w.stats.Rotations++
	return w.newSegmentLocked(w.seq + 1)
}

// append frames payload and writes it to the active segment, rotating
// and syncing per policy.
func (w *WAL) append(payload []byte) error {
	if len(payload) > maxWALRecord {
		return fmt.Errorf("tsdb: wal: record of %d bytes exceeds limit", len(payload))
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("tsdb: wal: closed")
	}
	if w.segBytes >= w.segSize {
		if err := w.rotateLocked(); err != nil {
			return err
		}
	}
	frame := make([]byte, walFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walFrameHeader:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("tsdb: wal: append: %w", err)
	}
	w.segBytes += int64(len(frame))
	w.stats.Appends++
	switch w.policy {
	case FsyncAlways:
		return w.syncLocked()
	case FsyncInterval:
		if now := w.clk.Now(); now.Sub(w.lastSync) >= w.syncIvl {
			return w.syncLocked()
		}
	}
	return nil
}

func (w *WAL) syncLocked() error {
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("tsdb: wal: fsync: %w", err)
	}
	w.stats.Syncs++
	w.lastSync = w.clk.Now()
	return nil
}

// cut rotates to a fresh segment and returns its sequence number: all
// records appended before the cut live in segments numbered strictly
// below the boundary. The DB calls this under its write lock so the
// boundary lines up exactly with a pinned view.
func (w *WAL) cut() (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return 0, fmt.Errorf("tsdb: wal: closed")
	}
	if err := w.rotateLocked(); err != nil {
		return 0, err
	}
	return w.seq, nil
}

// truncateBefore deletes every sealed segment numbered below boundary —
// the records a just-written snapshot now covers — plus any snapshot
// the boundary-stamped one supersedes.
func (w *WAL) truncateBefore(boundary uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	kept := w.liveSeqs[:0]
	for _, seq := range w.liveSeqs {
		if seq >= boundary {
			kept = append(kept, seq)
			continue
		}
		path := walSegmentPath(w.dir, seq)
		info, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("tsdb: wal: truncate: %w", err)
		}
		if err := os.Remove(path); err != nil {
			return fmt.Errorf("tsdb: wal: truncate: %w", err)
		}
		w.liveBytes -= info.Size()
	}
	w.liveSeqs = append([]uint64(nil), kept...)
	snaps, err := listSnapshots(w.dir)
	if err != nil {
		return fmt.Errorf("tsdb: wal: truncate: %w", err)
	}
	for _, s := range snaps {
		if s.boundary >= boundary {
			continue
		}
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("tsdb: wal: truncate: %w", err)
		}
	}
	w.stats.Checkpoints++
	return nil
}

// Close syncs and closes the active segment. Further appends fail.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		closeErr := w.f.Close()
		_ = closeErr // the sync error is the one worth reporting
		w.f = nil
		return fmt.Errorf("tsdb: wal: close: %w", err)
	}
	w.stats.Syncs++
	err := w.f.Close()
	w.f = nil
	if err != nil {
		return fmt.Errorf("tsdb: wal: close: %w", err)
	}
	return nil
}

// Stats returns a snapshot of the log counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.Segments = len(w.liveSeqs)
	st.Bytes = w.liveBytes
	if w.f != nil {
		st.Segments++
		st.Bytes += w.segBytes
	}
	return st
}

// ---- record encoding ----

func walPutU32(b *bytes.Buffer, v uint32) {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], v)
	b.Write(tmp[:])
}

func walPutI64(b *bytes.Buffer, v int64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], uint64(v))
	b.Write(tmp[:])
}

func walPutF64(b *bytes.Buffer, v float64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v))
	b.Write(tmp[:])
}

func walPutStr(b *bytes.Buffer, s string) {
	walPutU32(b, uint32(len(s)))
	b.WriteString(s)
}

func walPutValue(b *bytes.Buffer, v Value) {
	b.WriteByte(byte(v.Kind))
	switch v.Kind {
	case KindFloat:
		walPutF64(b, v.F)
	case KindInt:
		walPutI64(b, v.I)
	case KindString:
		walPutStr(b, v.S)
	case KindBool:
		if v.B {
			b.WriteByte(1)
		} else {
			b.WriteByte(0)
		}
	}
}

// walPutPoints emits a length-prefixed point list. Field maps are
// emitted in sorted key order so identical batches encode identically —
// the property the kill-point tests lean on.
func walPutPoints(b *bytes.Buffer, points []Point) {
	walPutU32(b, uint32(len(points)))
	for i := range points {
		p := &points[i]
		walPutStr(b, p.Measurement)
		walPutU32(b, uint32(len(p.Tags)))
		for _, t := range p.Tags {
			walPutStr(b, t.Key)
			walPutStr(b, t.Value)
		}
		names := make([]string, 0, len(p.Fields))
		for name := range p.Fields {
			names = append(names, name)
		}
		sort.Strings(names)
		walPutU32(b, uint32(len(names)))
		for _, name := range names {
			walPutStr(b, name)
			walPutValue(b, p.Fields[name])
		}
		walPutI64(b, p.Time)
	}
}

// encodeWriteRecord serializes a validated point batch.
func encodeWriteRecord(points []Point) []byte {
	var b bytes.Buffer
	b.WriteByte(byte(walOpWrite))
	walPutPoints(&b, points)
	return b.Bytes()
}

// encodeBatchRecord serializes a write batch together with the rollup
// ops maintenance derived from it (walOpBatch). A pure maintenance
// advance (RollupAdvance) logs with an empty point list.
func encodeBatchRecord(points []Point, ops []rollupOp) []byte {
	var b bytes.Buffer
	b.WriteByte(byte(walOpBatch))
	walPutPoints(&b, points)
	walPutU32(&b, uint32(len(ops)))
	for i := range ops {
		op := &ops[i]
		walPutStr(&b, op.target)
		walPutI64(&b, op.clearStart)
		walPutI64(&b, op.clearEnd)
		walPutPoints(&b, op.points)
	}
	return b.Bytes()
}

// encodeClearRangeRecord serializes a measurement range clear
// (walOpClearRange).
func encodeClearRangeRecord(name string, start, end int64) []byte {
	var b bytes.Buffer
	b.WriteByte(byte(walOpClearRange))
	walPutStr(&b, name)
	walPutI64(&b, start)
	walPutI64(&b, end)
	return b.Bytes()
}

func encodeDropRecord(name string) []byte {
	var b bytes.Buffer
	b.WriteByte(byte(walOpDrop))
	walPutStr(&b, name)
	return b.Bytes()
}

func encodeDeleteBeforeRecord(t int64) []byte {
	var b bytes.Buffer
	b.WriteByte(byte(walOpDeleteBefore))
	walPutI64(&b, t)
	return b.Bytes()
}

// ---- record decoding ----
//
// walDecoder reads a payload slice with explicit bounds checks: every
// claimed length is validated against the bytes that remain, so a
// corrupt (but CRC-valid) record can never drive an oversized
// allocation — the property FuzzWALReplay exercises.

type walDecoder struct {
	b   []byte
	off int
}

func (d *walDecoder) remaining() int { return len(d.b) - d.off }

func (d *walDecoder) byte() (byte, error) {
	if d.remaining() < 1 {
		return 0, fmt.Errorf("tsdb: wal: short record")
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *walDecoder) u32() (uint32, error) {
	if d.remaining() < 4 {
		return 0, fmt.Errorf("tsdb: wal: short record")
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v, nil
}

func (d *walDecoder) i64() (int64, error) {
	if d.remaining() < 8 {
		return 0, fmt.Errorf("tsdb: wal: short record")
	}
	v := int64(binary.LittleEndian.Uint64(d.b[d.off:]))
	d.off += 8
	return v, nil
}

func (d *walDecoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if int64(n) > int64(d.remaining()) {
		return "", fmt.Errorf("tsdb: wal: string length %d exceeds record", n)
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

func (d *walDecoder) value() (Value, error) {
	kind, err := d.byte()
	if err != nil {
		return Value{}, err
	}
	switch ValueKind(kind) {
	case KindFloat:
		v, err := d.i64()
		return Value{Kind: KindFloat, F: math.Float64frombits(uint64(v))}, err
	case KindInt:
		v, err := d.i64()
		return Int(v), err
	case KindString:
		s, err := d.str()
		return Str(s), err
	case KindBool:
		b, err := d.byte()
		return Bool(b != 0), err
	default:
		return Value{}, fmt.Errorf("tsdb: wal: bad value kind %d", kind)
	}
}

// walRecord is one decoded log entry.
type walRecord struct {
	op     walOp
	points []Point
	name   string     // opDrop, opClearRange
	before int64      // opDeleteBefore
	start  int64      // opClearRange
	end    int64      // opClearRange
	ops    []rollupOp // opBatch
}

// decodeWALPoints parses a length-prefixed point list. Each point needs
// at least measurement len + tag count + field count + time = 20 bytes;
// inflated counts are rejected before allocating.
func decodeWALPoints(d *walDecoder) ([]Point, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	if int64(n) > int64(d.remaining()/20)+1 {
		return nil, fmt.Errorf("tsdb: wal: point count %d exceeds record", n)
	}
	points := make([]Point, 0, n)
	for i := uint32(0); i < n; i++ {
		p, err := decodeWALPoint(d)
		if err != nil {
			return nil, err
		}
		points = append(points, p)
	}
	return points, nil
}

// decodeWALRecord parses a payload. Every length is bounds-checked and
// trailing bytes are rejected, so any mutation of a valid record is
// detected as corruption.
func decodeWALRecord(payload []byte) (walRecord, error) {
	d := &walDecoder{b: payload}
	op, err := d.byte()
	if err != nil {
		return walRecord{}, err
	}
	rec := walRecord{op: walOp(op)}
	switch rec.op {
	case walOpWrite:
		if rec.points, err = decodeWALPoints(d); err != nil {
			return walRecord{}, err
		}
	case walOpDrop:
		if rec.name, err = d.str(); err != nil {
			return walRecord{}, err
		}
	case walOpDeleteBefore:
		if rec.before, err = d.i64(); err != nil {
			return walRecord{}, err
		}
	case walOpBatch:
		if rec.points, err = decodeWALPoints(d); err != nil {
			return walRecord{}, err
		}
		nOps, err := d.u32()
		if err != nil {
			return walRecord{}, err
		}
		// Each op needs at least target len + two i64 bounds + point
		// count = 24 bytes.
		if int64(nOps) > int64(d.remaining()/24)+1 {
			return walRecord{}, fmt.Errorf("tsdb: wal: rollup op count %d exceeds record", nOps)
		}
		rec.ops = make([]rollupOp, 0, nOps)
		for i := uint32(0); i < nOps; i++ {
			var ro rollupOp
			if ro.target, err = d.str(); err != nil {
				return walRecord{}, err
			}
			if ro.clearStart, err = d.i64(); err != nil {
				return walRecord{}, err
			}
			if ro.clearEnd, err = d.i64(); err != nil {
				return walRecord{}, err
			}
			if ro.points, err = decodeWALPoints(d); err != nil {
				return walRecord{}, err
			}
			rec.ops = append(rec.ops, ro)
		}
	case walOpClearRange:
		if rec.name, err = d.str(); err != nil {
			return walRecord{}, err
		}
		if rec.start, err = d.i64(); err != nil {
			return walRecord{}, err
		}
		if rec.end, err = d.i64(); err != nil {
			return walRecord{}, err
		}
	default:
		return walRecord{}, fmt.Errorf("tsdb: wal: bad op %d", op)
	}
	if d.remaining() != 0 {
		return walRecord{}, fmt.Errorf("tsdb: wal: %d trailing bytes in record", d.remaining())
	}
	return rec, nil
}

func decodeWALPoint(d *walDecoder) (Point, error) {
	var p Point
	var err error
	if p.Measurement, err = d.str(); err != nil {
		return p, err
	}
	nTags, err := d.u32()
	if err != nil {
		return p, err
	}
	if int64(nTags) > int64(d.remaining()/8)+1 {
		return p, fmt.Errorf("tsdb: wal: tag count %d exceeds record", nTags)
	}
	p.Tags = make(Tags, 0, nTags)
	for i := uint32(0); i < nTags; i++ {
		k, err := d.str()
		if err != nil {
			return p, err
		}
		v, err := d.str()
		if err != nil {
			return p, err
		}
		p.Tags = append(p.Tags, Tag{Key: k, Value: v})
	}
	nFields, err := d.u32()
	if err != nil {
		return p, err
	}
	if int64(nFields) > int64(d.remaining()/5)+1 {
		return p, fmt.Errorf("tsdb: wal: field count %d exceeds record", nFields)
	}
	p.Fields = make(map[string]Value, nFields)
	for i := uint32(0); i < nFields; i++ {
		name, err := d.str()
		if err != nil {
			return p, err
		}
		v, err := d.value()
		if err != nil {
			return p, err
		}
		p.Fields[name] = v
	}
	p.Time, err = d.i64()
	return p, err
}
