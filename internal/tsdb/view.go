package tsdb

import (
	"sort"
)

// ---- snapshot views ----
//
// The DB publishes its entire contents as an immutable dbView behind an
// atomic pointer (see DB in db.go). A write batch derives the next view
// from the current one with copy-on-write at every level it touches:
//
//	view        fresh struct every batch (cheap value copy)
//	shards map  cloned only when a shard pointer changes
//	shard       cloned once per batch when first written
//	series      cloned once per batch when first written
//	column      struct cloned once per batch; in-order appends land in
//	            spare capacity beyond every published length, so older
//	            views never observe them; out-of-order appends rebuild
//	            the slices into fresh arrays before publication; sealed
//	            blocks are immutable and shared — sealing appends block
//	            pointers and replaces the tail with fresh arrays
//	index       maps cloned only when a new measurement, series, field,
//	            or tag value appears (none do in steady-state ingest)
//
// Readers therefore see a frozen, fully consistent database: a batch is
// visible in its entirety or not at all, and no query, metadata read,
// or snapshot serialization ever blocks behind a write. Mutators are
// serialized by DB.writeMu, which keeps view history linear — the
// invariant that makes extending shared slice capacity safe (only the
// newest view's columns are ever appended to).
type dbView struct {
	// epoch counts mutations (write batches, drops, retention). Caches
	// layered above the DB — the Metrics Builder's LRU response cache —
	// compare epochs to invalidate without inspecting data.
	epoch       int64
	stats       DBStats
	shards      map[int64]*shard // keyed by start time
	shardStarts []int64          // sorted
	// index: measurement -> tag key -> tag value -> set of series keys
	index map[string]*measurementIndex
}

// shardsOverlapping returns shards intersecting [start, end), in time
// order.
func (v *dbView) shardsOverlapping(start, end int64) []*shard {
	var out []*shard
	for _, s := range v.shardStarts {
		sh := v.shards[s]
		if sh.end <= start || sh.start >= end {
			continue
		}
		out = append(out, sh)
	}
	return out
}

// batch derives one new view from a base view. All clone-tracking sets
// hold the *copies* made for this batch: anything present is owned by
// the batch and may be mutated freely until publication.
type batch struct {
	shardDuration int64
	blockSize     int // seal threshold in points; <= 0 disables sealing
	v             *dbView

	clonedShardMap bool
	clonedStarts   bool
	clonedIndexMap bool
	freshShards    map[*shard]bool
	freshSeries    map[*series]bool
	freshCols      map[*column]bool
	freshMI        map[*measurementIndex]bool
	freshTagVals   map[*measurementIndex]map[string]bool
	dirtyCols      map[*column]bool // got an out-of-order append
}

func newBatch(base *dbView, shardDuration int64, blockSize int) *batch {
	nv := *base // maps and slices stay shared until cloned
	return &batch{
		shardDuration: shardDuration,
		blockSize:     blockSize,
		v:             &nv,
		freshShards:   make(map[*shard]bool),
		freshSeries:   make(map[*series]bool),
		freshCols:     make(map[*column]bool),
		freshMI:       make(map[*measurementIndex]bool),
		freshTagVals:  make(map[*measurementIndex]map[string]bool),
		dirtyCols:     make(map[*column]bool),
	}
}

// finish sorts any columns that received out-of-order appends, seals
// full block runs, and seals the view. mutated reports whether stored
// data changed (an empty batch still counts as a batch but must not
// advance the epoch). waitNs is the write-lock wait the batch accrued,
// folded into the view's stats.
func (b *batch) finish(mutated bool, waitNs int64) *dbView {
	for col := range b.dirtyCols {
		col.sortByTime()
		// If the shuffle reaches behind sealed data, decode everything
		// back to raw and re-sort; the seal pass below re-compresses
		// full runs. Out-of-order within the tail alone leaves blocks
		// untouched.
		if n := len(col.blocks); n > 0 && len(col.times) > 0 && col.times[0] < col.blocks[n-1].maxT {
			col.unseal()
			col.sortByTime()
		}
	}
	if b.blockSize > 0 {
		for col := range b.freshCols {
			b.v.stats.BlocksSealed += int64(col.seal(b.blockSize))
		}
	}
	b.v.stats.BatchesWritten++
	b.v.stats.WriteWaitNs += waitNs
	if mutated {
		b.v.epoch++
	}
	return b.v
}

func (b *batch) cloneShardMap() {
	if b.clonedShardMap {
		return
	}
	m := make(map[int64]*shard, len(b.v.shards)+1)
	for k, v := range b.v.shards {
		m[k] = v
	}
	b.v.shards = m
	b.clonedShardMap = true
}

func (b *batch) cloneIndexMap() {
	if b.clonedIndexMap {
		return
	}
	m := make(map[string]*measurementIndex, len(b.v.index)+1)
	for k, v := range b.v.index {
		m[k] = v
	}
	b.v.index = m
	b.clonedIndexMap = true
}

// insertShardStart inserts start into the sorted shardStarts slice at
// its position — no full re-sort per new shard.
func (b *batch) insertShardStart(start int64) {
	if !b.clonedStarts {
		b.v.shardStarts = append([]int64(nil), b.v.shardStarts...)
		b.clonedStarts = true
	}
	s := b.v.shardStarts
	i := sort.Search(len(s), func(j int) bool { return s[j] >= start })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = start
	b.v.shardStarts = s
}

// shardFor returns a batch-owned (mutable) shard covering ts.
func (b *batch) shardFor(ts int64) *shard {
	start := ts - mod(ts, b.shardDuration)
	if sh, ok := b.v.shards[start]; ok {
		return b.mutableShard(start, sh)
	}
	sh := newShard(start, start+b.shardDuration)
	b.cloneShardMap()
	b.v.shards[start] = sh
	b.freshShards[sh] = true
	b.insertShardStart(start)
	return sh
}

func (b *batch) mutableShard(start int64, sh *shard) *shard {
	if b.freshShards[sh] {
		return sh
	}
	c := sh.clone()
	b.cloneShardMap()
	b.v.shards[start] = c
	b.freshShards[c] = true
	return c
}

// mutableMI returns a batch-owned clone of a measurement index. Inner
// byTag value maps stay shared until mutableTagVals touches them.
func (b *batch) mutableMI(name string, mi *measurementIndex) *measurementIndex {
	if b.freshMI[mi] {
		return mi
	}
	c := &measurementIndex{
		byTag:  make(map[string]map[string][]string, len(mi.byTag)),
		series: make(map[string]Tags, len(mi.series)+1),
		fields: make(map[string]ValueKind, len(mi.fields)+1),
	}
	for k, v := range mi.byTag {
		c.byTag[k] = v
	}
	for k, v := range mi.series {
		c.series[k] = v
	}
	for k, v := range mi.fields {
		c.fields[k] = v
	}
	b.cloneIndexMap()
	b.v.index[name] = c
	b.freshMI[c] = true
	return c
}

// mutableTagVals returns a batch-owned tag-value posting map of mi
// (which must already be batch-owned).
func (b *batch) mutableTagVals(mi *measurementIndex, key string) map[string][]string {
	set := b.freshTagVals[mi]
	if set == nil {
		set = make(map[string]bool)
		b.freshTagVals[mi] = set
	}
	vals := mi.byTag[key]
	if vals == nil {
		vals = make(map[string][]string)
		mi.byTag[key] = vals
		set[key] = true
		return vals
	}
	if set[key] {
		return vals
	}
	c := make(map[string][]string, len(vals)+1)
	for k, v := range vals {
		c[k] = v
	}
	mi.byTag[key] = c
	set[key] = true
	return c
}

// indexSeries records a point's measurement, series, and field metadata
// in the view's index, cloning only what it changes.
func (b *batch) indexSeries(p *Point, key string, sorted Tags) {
	mi := b.v.index[p.Measurement]
	if mi == nil {
		mi = &measurementIndex{
			byTag:  make(map[string]map[string][]string),
			series: make(map[string]Tags),
			fields: make(map[string]ValueKind),
		}
		b.cloneIndexMap()
		b.v.index[p.Measurement] = mi
		b.freshMI[mi] = true
		b.v.stats.Measurements++
	}
	for fk, fv := range p.Fields {
		if _, seen := mi.fields[fk]; !seen {
			mi = b.mutableMI(p.Measurement, mi)
			mi.fields[fk] = fv.Kind
		}
	}
	if _, ok := mi.series[key]; ok {
		return
	}
	mi = b.mutableMI(p.Measurement, mi)
	mi.series[key] = sorted
	b.v.stats.SeriesCreated++
	for _, t := range sorted {
		vals := b.mutableTagVals(mi, t.Key)
		// Appending may write into spare capacity shared with the
		// previous view's slice — safe, because that view's header
		// bounds its readers below the appended cell.
		vals[t.Value] = append(vals[t.Value], key)
	}
}

// writePoint appends one point's samples into batch-owned storage.
func (b *batch) writePoint(p *Point, key string, sorted Tags) {
	sh := b.shardFor(p.Time)
	sr, ok := sh.series[key]
	switch {
	case !ok:
		sr = &series{measurement: p.Measurement, tags: sorted, fields: make(map[string]*column)}
		sh.series[key] = sr
		sh.keyBytes += len(key) + 8 // key plus index entry overhead
		b.freshSeries[sr] = true
	case !b.freshSeries[sr]:
		c := sr.clone()
		sh.series[key] = c
		b.freshSeries[c] = true
		sr = c
	}
	for fk, fv := range p.Fields {
		col := sr.fields[fk]
		switch {
		case col == nil:
			col = &column{}
			sr.fields[fk] = col
			b.freshCols[col] = true
		case !b.freshCols[col]:
			c := &column{blocks: col.blocks, times: col.times, vals: col.vals}
			sr.fields[fk] = c
			b.freshCols[c] = true
			col = c
		}
		// A tail append behind the column's newest time (which, for an
		// empty tail, is the last sealed block's maxT) marks the column
		// for the sort/unseal pass in finish.
		if last, ok := col.lastTime(); ok && p.Time < last {
			b.dirtyCols[col] = true
		}
		col.times = append(col.times, p.Time)
		col.vals = append(col.vals, fv)
	}
	sz := p.EncodedSize()
	sr.bytes += sz
	sh.points++
	sh.bytes += int64(sz)
	b.v.stats.PointsWritten++
}

// dropMeasurementView derives, copy-on-write, a view with measurement
// name and all its stored series removed. It returns nil if the
// measurement does not exist in base. waitNs is the caller's write-lock
// wait, folded into the new view's stats.
func dropMeasurementView(base *dbView, name string, waitNs int64) *dbView {
	mi, ok := base.index[name]
	if !ok {
		return nil
	}
	nv := *base
	nv.index = make(map[string]*measurementIndex, len(base.index))
	for k, v := range base.index {
		if k != name {
			nv.index[k] = v
		}
	}
	// Clone only shards that actually hold series of this measurement.
	cloned := make(map[int64]*shard)
	for key := range mi.series {
		for _, start := range nv.shardStarts {
			sh := cloned[start]
			if sh == nil {
				sh = nv.shards[start]
			}
			sr, ok := sh.series[key]
			if !ok {
				continue
			}
			if cloned[start] == nil {
				sh = sh.clone()
				cloned[start] = sh
			}
			sh.points -= int64(sr.points())
			sh.bytes -= int64(sr.bytes)
			sh.keyBytes -= len(key) + 8
			delete(sh.series, key)
		}
	}
	if len(cloned) > 0 {
		m := make(map[int64]*shard, len(nv.shards))
		for k, v := range nv.shards {
			m[k] = v
		}
		for k, v := range cloned {
			m[k] = v
		}
		nv.shards = m
	}
	nv.stats.Measurements--
	nv.stats.WriteWaitNs += waitNs
	nv.epoch++
	return &nv
}

// clearColumnRange derives a copy of col with samples in [start, end)
// removed, reporting removed sample count and their value-encoding
// bytes. Returns col itself untouched when nothing overlaps. When
// sealed blocks overlap the range, the whole column is rebuilt raw and
// re-sealed at bs (the boundary shard of a raw-tier expiry pays one
// decode+reseal; fully-covered shards never reach here — their series
// are deleted outright).
func clearColumnRange(col *column, start, end int64, bs int) (*column, int, int64) {
	first, ok := col.firstTime()
	if !ok {
		return col, 0, 0
	}
	last, _ := col.lastTime()
	if last < start || first >= end {
		return col, 0, 0
	}
	blocksHit := false
	for _, blk := range col.blocks {
		if blk.overlaps(start, end) {
			blocksHit = true
			break
		}
	}
	if !blocksHit {
		lo, hi := col.rangeIndexes(start, end)
		if lo == hi {
			return col, 0, 0
		}
		nc := &column{blocks: col.blocks}
		nc.times = make([]int64, 0, len(col.times)-(hi-lo))
		nc.vals = make([]Value, 0, len(col.times)-(hi-lo))
		nc.times = append(append(nc.times, col.times[:lo]...), col.times[hi:]...)
		nc.vals = append(append(nc.vals, col.vals[:lo]...), col.vals[hi:]...)
		var bytes int64
		for i := lo; i < hi; i++ {
			bytes += int64(col.vals[i].EncodedSize())
		}
		return nc, hi - lo, bytes
	}
	total := col.numPoints()
	nc := &column{
		times: make([]int64, 0, total),
		vals:  make([]Value, 0, total),
	}
	var bytes int64
	removed := 0
	keep := func(times []int64, vals []Value) {
		for i := range times {
			if times[i] >= start && times[i] < end {
				removed++
				bytes += int64(vals[i].EncodedSize())
				continue
			}
			nc.times = append(nc.times, times[i])
			nc.vals = append(nc.vals, vals[i])
		}
	}
	for _, blk := range col.blocks {
		p, _, err := blk.decode(nil)
		if err != nil {
			// Validated at seal/restore; undecodable is post-hoc
			// corruption with nothing recoverable to keep.
			continue
		}
		keep(p.times, p.vals)
	}
	keep(col.times, col.vals)
	if removed == 0 {
		// Header overlap without sample overlap: keep the original
		// column (and its decode caches) untouched.
		return col, 0, 0
	}
	nc.seal(bs)
	return nc, removed, bytes
}

// clearMeasurementRangeView derives, copy-on-write, a view with
// measurement name's samples in [start, end) removed — the raw-tier
// expiry and rollup-recompute primitive, surgical where DeleteBefore
// is shard-granular. bs is the seal threshold for rebuilt boundary
// columns. It returns (nil, 0) when nothing overlaps; otherwise the
// new view and the number of points removed (series max-across-columns
// semantics, matching shard accounting).
func clearMeasurementRangeView(base *dbView, name string, start, end int64, bs int, waitNs int64) (*dbView, int64) {
	mi, ok := base.index[name]
	if !ok || start >= end {
		return nil, 0
	}
	var removed int64
	cloned := make(map[int64]*shard)
	for _, shStart := range base.shardStarts {
		sh := base.shards[shStart]
		if sh.end <= start || sh.start >= end {
			continue
		}
		for key := range mi.series {
			sr, ok := sh.series[key]
			if !ok {
				continue
			}
			oldPts := sr.points()
			nsr := &series{measurement: sr.measurement, tags: sr.tags, bytes: sr.bytes}
			nsr.fields = make(map[string]*column, len(sr.fields))
			touched := false
			var valBytes int64
			for fk, col := range sr.fields {
				nc, n, vb := clearColumnRange(col, start, end, bs)
				if nc != col {
					touched = true
					valBytes += vb + int64(n*(2+len(fk)))
				}
				if nc.numPoints() > 0 {
					nsr.fields[fk] = nc
				}
			}
			if !touched {
				continue
			}
			csh := cloned[shStart]
			if csh == nil {
				csh = sh.clone()
				cloned[shStart] = csh
			}
			newPts := 0
			for _, c := range nsr.fields {
				if n := c.numPoints(); n > newPts {
					newPts = n
				}
			}
			gone := int64(oldPts - newPts)
			removed += gone
			csh.points -= gone
			// Removed bytes: one 8-byte timestamp per removed point plus
			// each removed sample's field key and value encoding, clamped
			// to what the series is charged with (multi-field points share
			// a timestamp, so this is exact for aligned columns and a safe
			// estimate otherwise).
			goneBytes := gone*8 + valBytes
			if goneBytes > int64(nsr.bytes) {
				goneBytes = int64(nsr.bytes)
			}
			nsr.bytes -= int(goneBytes)
			csh.bytes -= goneBytes
			if len(nsr.fields) == 0 {
				delete(csh.series, key)
				csh.keyBytes -= len(key) + 8
			} else {
				csh.series[key] = nsr
			}
		}
	}
	if len(cloned) == 0 {
		return nil, 0
	}
	nv := *base
	nv.shards = make(map[int64]*shard, len(base.shards))
	for k, v := range base.shards {
		nv.shards[k] = v
	}
	for k, v := range cloned {
		nv.shards[k] = v
	}
	nv.stats.WriteWaitNs += waitNs
	nv.epoch++
	return &nv, removed
}

// deleteBeforeView derives, copy-on-write, a view with every shard
// whose window ends at or before t removed, reporting how many were
// dropped. It returns (nil, 0) when no shard qualifies.
func deleteBeforeView(base *dbView, t int64, waitNs int64) (*dbView, int) {
	dropped := 0
	for _, s := range base.shardStarts {
		if base.shards[s].end <= t {
			dropped++
		}
	}
	if dropped == 0 {
		return nil, 0
	}
	nv := *base
	nv.shards = make(map[int64]*shard, len(base.shards)-dropped)
	nv.shardStarts = make([]int64, 0, len(base.shardStarts)-dropped)
	for _, s := range base.shardStarts {
		if sh := base.shards[s]; sh.end > t {
			nv.shards[s] = sh
			nv.shardStarts = append(nv.shardStarts, s)
		}
	}
	nv.stats.WriteWaitNs += waitNs
	nv.epoch++
	return &nv, dropped
}

// spillBlocksView derives, copy-on-write, a view with each block in
// twins replaced by its cold (or compaction-relocated) twin: same
// header and samples, payload living in a cold-tier segment file.
// The epoch does not advance — the stored data is unchanged, only its
// representation moved, so epoch-keyed caches layered above the DB
// stay valid.
func spillBlocksView(base *dbView, twins map[*block]*block, waitNs int64) *dbView {
	nv := *base
	clonedShards := false
	for _, start := range base.shardStarts {
		sh := base.shards[start]
		var nsh *shard
		for key, sr := range sh.series {
			var nsr *series
			for fk, col := range sr.fields {
				hit := false
				for _, blk := range col.blocks {
					if _, ok := twins[blk]; ok {
						hit = true
						break
					}
				}
				if !hit {
					continue
				}
				nb := make([]*block, len(col.blocks))
				for i, blk := range col.blocks {
					if t, ok := twins[blk]; ok {
						nb[i] = t
					} else {
						nb[i] = blk
					}
				}
				nc := &column{blocks: nb, times: col.times, vals: col.vals}
				if nsr == nil {
					nsr = sr.clone()
					if nsh == nil {
						nsh = sh.clone()
						if !clonedShards {
							m := make(map[int64]*shard, len(nv.shards))
							for k, v := range nv.shards {
								m[k] = v
							}
							nv.shards = m
							clonedShards = true
						}
						nv.shards[start] = nsh
					}
					nsh.series[key] = nsr
				}
				nsr.fields[fk] = nc
			}
		}
	}
	nv.stats.WriteWaitNs += waitNs
	return &nv
}
