package tsdb

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLineProtocol feeds arbitrary bytes through the push wire-format
// parser (the ingest pipeline's HTTP push receiver and forward sink
// both speak it). Invariants: parsing never panics; an accepted input
// re-renders through FormatLineProtocol into a form that parses again
// with the same point count and is byte-stable on the second round
// trip (comparing rendered bytes sidesteps NaN != NaN); and the point
// count never exceeds the input's line count.
func FuzzLineProtocol(f *testing.F) {
	seeds := []string{
		"Power,NodeId=10.101.1.1,Label=NodePower Reading=273.8 1583792296\n",
		"m f=1i 10\nm f=2i 20\n",
		"m,tag=with\\ space f=\"quoted \\\" string\" 5\n",
		"m f=true\n",
		"# comment\n\nm f=0\n",
		"esc\\,aped,k\\=ey=v\\,alue f=1 1\n",
		"m f=1e300,g=-2.5 99\n",
		// Must-fail shapes.
		"not line protocol",
		"m",
		"m f= 1",
		",missing f=1 1",
		"m f=1 notatime",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		pts, err := ParseLineProtocol(data, 42)
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		if lines := strings.Count(string(data), "\n") + 1; len(pts) > lines {
			t.Fatalf("%d points out of %d input lines", len(pts), lines)
		}
		b1 := FormatLineProtocol(pts)
		pts2, err := ParseLineProtocol(b1, 42)
		if err != nil {
			t.Fatalf("re-parse of rendered output failed: %v\ninput %q\nrendered %q", err, data, b1)
		}
		if len(pts2) != len(pts) {
			t.Fatalf("round trip changed point count: %d -> %d", len(pts), len(pts2))
		}
		b2 := FormatLineProtocol(pts2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("second round trip not byte-stable:\n%q\n%q", b1, b2)
		}
	})
}
