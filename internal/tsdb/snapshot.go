package tsdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Snapshot format: a simple length-prefixed binary stream.
//
//	magic "MTSD" | version u16 | shardDuration i64 | nShards u32
//	per shard: start i64 | nSeries u32
//	  per series: key | measurement | nTags u32 | (k,v)* | nFields u32
//	    per field: name | nSamples u32 | (time i64, value)*
//	value: kind u8 + payload
//
// Strings are u32 length + bytes. Integers are little-endian.

const snapshotMagic = "MTSD"
const snapshotVersion = 1

// Snapshot serializes the whole database to w. It pins the current
// immutable view, so both concurrent queries and concurrent writes
// proceed unimpeded while the serialization runs.
func (db *DB) Snapshot(w io.Writer) error {
	v := db.acquireView()
	defer db.releaseView()
	return snapshotView(v, db.shardDuration, w)
}

// snapshotView serializes one pinned view — the same body Snapshot
// uses, shared with Checkpoint, which must serialize the exact view it
// cut the WAL boundary against.
func snapshotView(v *dbView, shardDuration int64, w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	writeU16(bw, snapshotVersion)
	writeI64(bw, shardDuration)
	writeU32(bw, uint32(len(v.shardStarts)))
	for _, start := range v.shardStarts {
		sh := v.shards[start]
		writeI64(bw, sh.start)
		keys := make([]string, 0, len(sh.series))
		for k := range sh.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		writeU32(bw, uint32(len(keys)))
		for _, k := range keys {
			sr := sh.series[k]
			writeStr(bw, k)
			writeStr(bw, sr.measurement)
			writeU32(bw, uint32(len(sr.tags)))
			for _, t := range sr.tags {
				writeStr(bw, t.Key)
				writeStr(bw, t.Value)
			}
			fields := make([]string, 0, len(sr.fields))
			for f := range sr.fields {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			writeU32(bw, uint32(len(fields)))
			for _, f := range fields {
				col := sr.fields[f]
				writeStr(bw, f)
				writeU32(bw, uint32(len(col.times)))
				for i := range col.times {
					writeI64(bw, col.times[i])
					writeValue(bw, col.vals[i])
				}
			}
		}
	}
	return bw.Flush()
}

// Restore loads a snapshot written by Snapshot into a fresh DB.
func Restore(r io.Reader) (*DB, error) { return RestoreOptions(r, Options{}) }

// RestoreOptions loads a snapshot into a fresh DB configured by opts
// (worker pool, clock, lock mode). The shard duration always comes
// from the snapshot — the stored data was laid out under it.
func RestoreOptions(r io.Reader, opts Options) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("tsdb: restore: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("tsdb: restore: bad magic %q", magic)
	}
	ver, err := readU16(br)
	if err != nil {
		return nil, err
	}
	if ver != snapshotVersion {
		return nil, fmt.Errorf("tsdb: restore: unsupported version %d", ver)
	}
	sd, err := readI64(br)
	if err != nil {
		return nil, err
	}
	opts.ShardDuration = sd
	db := Open(opts)
	nShards, err := readU32(br)
	if err != nil {
		return nil, err
	}
	for s := uint32(0); s < nShards; s++ {
		start, err := readI64(br)
		if err != nil {
			return nil, err
		}
		_ = start
		nSeries, err := readU32(br)
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < nSeries; i++ {
			if err := db.restoreSeries(br); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

func (db *DB) restoreSeries(br *bufio.Reader) error {
	if _, err := readStr(br); err != nil { // key is recomputed
		return err
	}
	measurement, err := readStr(br)
	if err != nil {
		return err
	}
	nTags, err := readU32(br)
	if err != nil {
		return err
	}
	tags := make(Tags, 0, nTags)
	for t := uint32(0); t < nTags; t++ {
		k, err := readStr(br)
		if err != nil {
			return err
		}
		v, err := readStr(br)
		if err != nil {
			return err
		}
		tags = append(tags, Tag{k, v})
	}
	nFields, err := readU32(br)
	if err != nil {
		return err
	}
	// Merge fields back into multi-field points: for each timestamp, the
	// k-th occurrence of that timestamp in every field joins the k-th
	// reassembled point. This restores both the stored samples and the
	// original point/byte accounting for the common case of aligned
	// multi-field writes.
	type occKey struct {
		t int64
		k int
	}
	merged := make(map[occKey]map[string]Value)
	var order []occKey
	for f := uint32(0); f < nFields; f++ {
		name, err := readStr(br)
		if err != nil {
			return err
		}
		nSamples, err := readU32(br)
		if err != nil {
			return err
		}
		occ := make(map[int64]int)
		for s := uint32(0); s < nSamples; s++ {
			ts, err := readI64(br)
			if err != nil {
				return err
			}
			v, err := readValue(br)
			if err != nil {
				return err
			}
			key := occKey{ts, occ[ts]}
			occ[ts]++
			fields, ok := merged[key]
			if !ok {
				fields = make(map[string]Value)
				merged[key] = fields
				order = append(order, key)
			}
			fields[name] = v
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].t != order[j].t {
			return order[i].t < order[j].t
		}
		return order[i].k < order[j].k
	})
	pts := make([]Point, 0, len(order))
	for _, key := range order {
		pts = append(pts, Point{
			Measurement: measurement,
			Tags:        tags,
			Fields:      merged[key],
			Time:        key.t,
		})
	}
	return db.WritePoints(pts)
}

// writeBin encodes v little-endian into the snapshot's bufio.Writer,
// whose error is sticky: the first failure poisons every later write
// and Snapshot surfaces it through the single Flush check at the end.
func writeBin(w io.Writer, v any) {
	//lint:ignore errdrop bufio errors are sticky; Snapshot checks Flush once at the end
	binary.Write(w, binary.LittleEndian, v)
}

func writeU16(w io.Writer, v uint16)  { writeBin(w, v) }
func writeU32(w io.Writer, v uint32)  { writeBin(w, v) }
func writeI64(w io.Writer, v int64)   { writeBin(w, v) }
func writeF64(w io.Writer, v float64) { writeBin(w, v) }

func writeStr(w *bufio.Writer, s string) {
	writeU32(w, uint32(len(s)))
	//lint:ignore errdrop bufio errors are sticky; Snapshot checks Flush once at the end
	w.WriteString(s)
}

func writeValue(w *bufio.Writer, v Value) {
	//lint:ignore errdrop bufio errors are sticky; Snapshot checks Flush once at the end
	w.WriteByte(byte(v.Kind))
	switch v.Kind {
	case KindFloat:
		writeF64(w, v.F)
	case KindInt:
		writeI64(w, v.I)
	case KindString:
		writeStr(w, v.S)
	case KindBool:
		b := byte(0)
		if v.B {
			b = 1
		}
		//lint:ignore errdrop bufio errors are sticky; Snapshot checks Flush once at the end
		w.WriteByte(b)
	}
}

func readU16(r io.Reader) (uint16, error) {
	var v uint16
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readI64(r io.Reader) (int64, error) {
	var v int64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readF64(r io.Reader) (float64, error) {
	var v float64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readStr(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<28 {
		return "", fmt.Errorf("tsdb: restore: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readValue(r *bufio.Reader) (Value, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch ValueKind(kind) {
	case KindFloat:
		f, err := readF64(r)
		return Float(f), err
	case KindInt:
		i, err := readI64(r)
		return Int(i), err
	case KindString:
		s, err := readStr(r)
		return Str(s), err
	case KindBool:
		b, err := r.ReadByte()
		return Bool(b != 0), err
	default:
		return Value{}, fmt.Errorf("tsdb: restore: bad value kind %d", kind)
	}
}
