package tsdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Snapshot format: a length-prefixed binary stream.
//
// Version 3 (current writer) persists the sealed-block tier verbatim —
// compressed payloads are copied byte-for-byte, never re-encoded — plus
// each column's raw tail and the engine counters, so a restore
// reconstructs the exact view (same blocks, same accounting) without
// replaying writes:
//
//	magic "MTSD" | version u16 = 3 | shardDuration i64
//	epoch i64 | pointsWritten i64 | batchesWritten i64
//	seriesCreated i64 | measurements i64 | writeWaitNs i64
//	blocksSealed i64
//	nShards u32
//	per shard: start i64 | points i64 | bytes i64 | nSeries u32
//	  per series: key | measurement | seriesBytes i64
//	              nTags u32 | (k,v)* | nFields u32
//	    per field: name | nBlocks u32
//	      per block: minT i64 | maxT i64 | count u32 | rawBytes i64
//	                 loc u8
//	        loc 0 (inline): dataLen u32 | data
//	        loc 1 (cold):   fileName str | off i64 | len u32 | crc u32
//	    tail: nSamples u32 | (time i64, value)*
//
// A cold location references the payload inside a cold-tier segment
// file instead of re-serializing it — the already-durable frame is the
// payload's home, so a checkpoint stays O(hot set). Checkpoint
// snapshots therefore restore only next to their cold directory;
// Snapshot/SaveFile (the portable export paths) always inline, reading
// cold payloads back through the tier, so an exported file is
// self-contained. Version 2 is identical minus the loc byte (always
// inline); version 1 stored every sample raw (per field: nSamples +
// samples, no per-shard accounting, no engine counters). Readers
// accept all three.
//
// Strings are u32 length + bytes. Integers are little-endian. Values
// are a kind byte + payload.

const snapshotMagic = "MTSD"

// Snapshot format versions. snapshotVersion is what Snapshot writes;
// RestoreOptions accepts every version listed here.
const (
	snapshotV1      = 1
	snapshotV2      = 2
	snapshotV3      = 3
	snapshotVersion = snapshotV3
)

// Block payload locations (v3).
const (
	blockLocInline byte = 0
	blockLocCold   byte = 1
)

// Snapshot serializes the whole database to w. It pins the current
// immutable view, so both concurrent queries and concurrent writes
// proceed unimpeded while the serialization runs.
func (db *DB) Snapshot(w io.Writer) error {
	v := db.acquireView()
	defer db.releaseView()
	return snapshotView(v, db.shardDuration, w, true)
}

// snapshotView serializes one pinned view — the same body Snapshot
// uses, shared with Checkpoint, which must serialize the exact view it
// cut the WAL boundary against. inlineCold controls spilled blocks:
// true reads their payloads back and inlines them (portable export);
// false writes file references (checkpoint — the segment bytes are
// already durable and fsynced before any referencing view publishes).
func snapshotView(v *dbView, shardDuration int64, w io.Writer, inlineCold bool) error {
	ew := &errWriter{w: bufio.NewWriter(w)}
	ew.raw(snapshotMagic)
	ew.u16(snapshotVersion)
	ew.i64(shardDuration)
	ew.i64(v.epoch)
	ew.i64(v.stats.PointsWritten)
	ew.i64(v.stats.BatchesWritten)
	ew.i64(v.stats.SeriesCreated)
	ew.i64(int64(v.stats.Measurements))
	ew.i64(v.stats.WriteWaitNs)
	ew.i64(v.stats.BlocksSealed)
	ew.u32(uint32(len(v.shardStarts)))
	for _, start := range v.shardStarts {
		sh := v.shards[start]
		ew.i64(sh.start)
		ew.i64(sh.points)
		ew.i64(sh.bytes)
		keys := make([]string, 0, len(sh.series))
		for k := range sh.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		ew.u32(uint32(len(keys)))
		for _, k := range keys {
			sr := sh.series[k]
			ew.str(k)
			ew.str(sr.measurement)
			ew.i64(int64(sr.bytes))
			ew.u32(uint32(len(sr.tags)))
			for _, t := range sr.tags {
				ew.str(t.Key)
				ew.str(t.Value)
			}
			fields := make([]string, 0, len(sr.fields))
			for f := range sr.fields {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			ew.u32(uint32(len(fields)))
			for _, f := range fields {
				col := sr.fields[f]
				ew.str(f)
				ew.u32(uint32(len(col.blocks)))
				for _, blk := range col.blocks {
					ew.i64(blk.minT)
					ew.i64(blk.maxT)
					ew.u32(uint32(blk.count))
					ew.i64(blk.rawBytes)
					if blk.cold != nil && !inlineCold {
						ew.byteVal(blockLocCold)
						ew.str(blk.cold.file)
						ew.i64(blk.cold.off)
						ew.u32(blk.cold.length)
						ew.u32(blk.cold.crc)
						continue
					}
					data, _, err := blk.payloadBytes()
					if err != nil {
						ew.fail(err)
						continue
					}
					ew.byteVal(blockLocInline)
					ew.u32(uint32(len(data)))
					ew.bytes(data)
				}
				ew.u32(uint32(len(col.times)))
				for i := range col.times {
					ew.i64(col.times[i])
					ew.value(col.vals[i])
				}
			}
		}
	}
	return ew.flush()
}

// Restore loads a snapshot written by Snapshot into a fresh DB.
func Restore(r io.Reader) (*DB, error) { return RestoreOptions(r, Options{}) }

// RestoreOptions loads a snapshot into a fresh DB configured by opts
// (worker pool, clock, lock mode, block size). The shard duration
// always comes from the snapshot — the stored data was laid out under
// it. Both current (v2, sealed blocks verbatim) and legacy (v1, raw
// samples) files restore.
func RestoreOptions(r io.Reader, opts Options) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("tsdb: restore: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("tsdb: restore: bad magic %q", magic)
	}
	ver, err := readU16(br)
	if err != nil {
		return nil, err
	}
	sd, err := readI64(br)
	if err != nil {
		return nil, err
	}
	if sd <= 0 {
		return nil, fmt.Errorf("tsdb: restore: bad shard duration %d", sd)
	}
	opts.ShardDuration = sd
	switch ver {
	case snapshotV1:
		return restoreV1(br, opts)
	case snapshotV2, snapshotV3:
		return restoreSealed(br, opts, sd, ver)
	default:
		return nil, fmt.Errorf("tsdb: restore: unsupported version %d", ver)
	}
}

// restoreV1 replays a legacy raw-sample snapshot through the ordinary
// write path (which also re-seals the data under the target's block
// size — a v1 file restored today comes out compressed).
func restoreV1(br *bufio.Reader, opts Options) (*DB, error) {
	db := Open(opts)
	nShards, err := readU32(br)
	if err != nil {
		return nil, err
	}
	for s := uint32(0); s < nShards; s++ {
		if _, err := readI64(br); err != nil { // shard start, re-derived
			return nil, err
		}
		nSeries, err := readU32(br)
		if err != nil {
			return nil, err
		}
		for i := uint32(0); i < nSeries; i++ {
			if err := db.restoreSeries(br); err != nil {
				return nil, err
			}
		}
	}
	return db, nil
}

// maxRestoreCount bounds every count field a snapshot may claim, so a
// corrupt or adversarial header cannot drive a huge allocation before
// the payload disproves it.
const maxRestoreCount = 1 << 28

// restoreSealed rebuilds the exact serialized view (formats v2 and
// v3): sealed blocks are adopted verbatim (after validation), tails
// and accounting are restored directly, and the finished dbView is
// published in one shot. Nothing is re-encoded and no write batches
// run. v3 cold references are resolved against the DB's cold tier and
// validated by reading the payload through it, so a missing,
// truncated, or bit-flipped segment file fails the restore loudly
// instead of surfacing as silently skipped blocks in later scans.
func restoreSealed(br *bufio.Reader, opts Options, sd int64, ver uint16) (*DB, error) {
	db := Open(opts)
	corrupt := func(format string, args ...any) error {
		return fmt.Errorf("tsdb: restore: "+format, args...)
	}
	var hdr [7]int64
	for i := range hdr {
		v, err := readI64(br)
		if err != nil {
			return nil, err
		}
		hdr[i] = v
	}
	stats := DBStats{
		PointsWritten:  hdr[1],
		BatchesWritten: hdr[2],
		SeriesCreated:  hdr[3],
		Measurements:   int(hdr[4]),
		WriteWaitNs:    hdr[5],
		BlocksSealed:   hdr[6],
	}
	nShards, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nShards > maxRestoreCount {
		return nil, corrupt("shard count %d too large", nShards)
	}
	shards := make(map[int64]*shard)
	var shardStarts []int64
	index := make(map[string]*measurementIndex)
	indexed := make(map[string]bool) // series keys already in postings
	for s := uint32(0); s < nShards; s++ {
		start, err := readI64(br)
		if err != nil {
			return nil, err
		}
		if _, ok := shards[start]; ok {
			return nil, corrupt("duplicate shard %d", start)
		}
		sh := newShard(start, start+sd)
		if sh.points, err = readI64(br); err != nil {
			return nil, err
		}
		if sh.bytes, err = readI64(br); err != nil {
			return nil, err
		}
		nSeries, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if nSeries > maxRestoreCount {
			return nil, corrupt("series count %d too large", nSeries)
		}
		for i := uint32(0); i < nSeries; i++ {
			if _, err := readStr(br); err != nil { // key, recomputed below
				return nil, err
			}
			measurement, err := readStr(br)
			if err != nil {
				return nil, err
			}
			srBytes, err := readI64(br)
			if err != nil {
				return nil, err
			}
			nTags, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if nTags > maxRestoreCount {
				return nil, corrupt("tag count %d too large", nTags)
			}
			var tags Tags
			for t := uint32(0); t < nTags; t++ {
				k, err := readStr(br)
				if err != nil {
					return nil, err
				}
				v, err := readStr(br)
				if err != nil {
					return nil, err
				}
				tags = append(tags, Tag{k, v})
			}
			tags = tags.Sorted()
			key := seriesKey(measurement, tags)
			sr := &series{measurement: measurement, tags: tags, fields: make(map[string]*column), bytes: int(srBytes)}
			nFields, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if nFields > maxRestoreCount {
				return nil, corrupt("field count %d too large", nFields)
			}
			mi := index[measurement]
			if mi == nil {
				mi = &measurementIndex{
					byTag:  make(map[string]map[string][]string),
					series: make(map[string]Tags),
					fields: make(map[string]ValueKind),
				}
				index[measurement] = mi
			}
			for f := uint32(0); f < nFields; f++ {
				name, err := readStr(br)
				if err != nil {
					return nil, err
				}
				col := &column{}
				var kind ValueKind
				haveKind := false
				nBlocks, err := readU32(br)
				if err != nil {
					return nil, err
				}
				if nBlocks > maxRestoreCount {
					return nil, corrupt("block count %d too large", nBlocks)
				}
				lastMax := int64(math.MinInt64)
				for bi := uint32(0); bi < nBlocks; bi++ {
					blk := &block{}
					if blk.minT, err = readI64(br); err != nil {
						return nil, err
					}
					if blk.maxT, err = readI64(br); err != nil {
						return nil, err
					}
					count, err := readU32(br)
					if err != nil {
						return nil, err
					}
					if count == 0 || count > maxBlockPoints {
						return nil, corrupt("block point count %d out of range", count)
					}
					blk.count = int(count)
					if blk.rawBytes, err = readI64(br); err != nil {
						return nil, err
					}
					loc := blockLocInline
					if ver >= snapshotV3 {
						if loc, err = br.ReadByte(); err != nil {
							return nil, err
						}
					}
					switch loc {
					case blockLocInline:
						dataLen, err := readU32(br)
						if err != nil {
							return nil, err
						}
						if dataLen > maxRestoreCount {
							return nil, corrupt("block payload %d too large", dataLen)
						}
						blk.data = make([]byte, dataLen)
						if _, err := io.ReadFull(br, blk.data); err != nil {
							return nil, err
						}
					case blockLocCold:
						if db.cold == nil {
							return nil, corrupt("cold block reference but no cold directory configured (Options.ColdDir)")
						}
						file, err := readStr(br)
						if err != nil {
							return nil, err
						}
						off, err := readI64(br)
						if err != nil {
							return nil, err
						}
						length, err := readU32(br)
						if err != nil {
							return nil, err
						}
						crc, err := readU32(br)
						if err != nil {
							return nil, err
						}
						if length == 0 || length > maxColdFrame || off < coldHeaderSize+coldFrameHeader {
							return nil, corrupt("field %q block %d: bad cold reference", name, bi)
						}
						blk.cold = &coldRef{ct: db.cold, file: file, off: off, length: length, crc: crc}
					default:
						return nil, corrupt("field %q block %d: bad payload location %d", name, bi, loc)
					}
					p, err := blk.validate()
					if err != nil {
						return nil, corrupt("field %q block %d: %v", name, bi, err)
					}
					if bi > 0 && blk.minT < lastMax {
						return nil, corrupt("field %q blocks out of order", name)
					}
					lastMax = blk.maxT
					if !haveKind {
						kind, haveKind = p.vals[0].Kind, true
					}
					col.blocks = append(col.blocks, blk)
				}
				nSamples, err := readU32(br)
				if err != nil {
					return nil, err
				}
				if nSamples > maxRestoreCount {
					return nil, corrupt("tail sample count %d too large", nSamples)
				}
				for j := uint32(0); j < nSamples; j++ {
					ts, err := readI64(br)
					if err != nil {
						return nil, err
					}
					v, err := readValue(br)
					if err != nil {
						return nil, err
					}
					if n := len(col.times); (n > 0 && ts < col.times[n-1]) || (n == 0 && ts < lastMax) {
						return nil, corrupt("field %q tail out of order", name)
					}
					col.times = append(col.times, ts)
					col.vals = append(col.vals, v)
					if !haveKind {
						kind, haveKind = v.Kind, true
					}
				}
				sr.fields[name] = col
				if haveKind {
					if _, seen := mi.fields[name]; !seen {
						mi.fields[name] = kind
					}
				}
			}
			sh.series[key] = sr
			sh.keyBytes += len(key) + 8
			if !indexed[key] {
				indexed[key] = true
				mi.series[key] = tags
				for _, t := range tags {
					vals := mi.byTag[t.Key]
					if vals == nil {
						vals = make(map[string][]string)
						mi.byTag[t.Key] = vals
					}
					vals[t.Value] = append(vals[t.Value], key)
				}
			}
		}
		shards[start] = sh
		shardStarts = append(shardStarts, start)
	}
	sort.Slice(shardStarts, func(i, j int) bool { return shardStarts[i] < shardStarts[j] })
	db.publish(&dbView{
		epoch:       hdr[0],
		stats:       stats,
		shards:      shards,
		shardStarts: shardStarts,
		index:       index,
	})
	return db, nil
}

func (db *DB) restoreSeries(br *bufio.Reader) error {
	if _, err := readStr(br); err != nil { // key is recomputed
		return err
	}
	measurement, err := readStr(br)
	if err != nil {
		return err
	}
	nTags, err := readU32(br)
	if err != nil {
		return err
	}
	tags := make(Tags, 0, nTags)
	for t := uint32(0); t < nTags; t++ {
		k, err := readStr(br)
		if err != nil {
			return err
		}
		v, err := readStr(br)
		if err != nil {
			return err
		}
		tags = append(tags, Tag{k, v})
	}
	nFields, err := readU32(br)
	if err != nil {
		return err
	}
	// Merge fields back into multi-field points: for each timestamp, the
	// k-th occurrence of that timestamp in every field joins the k-th
	// reassembled point. This restores both the stored samples and the
	// original point/byte accounting for the common case of aligned
	// multi-field writes.
	type occKey struct {
		t int64
		k int
	}
	merged := make(map[occKey]map[string]Value)
	var order []occKey
	for f := uint32(0); f < nFields; f++ {
		name, err := readStr(br)
		if err != nil {
			return err
		}
		nSamples, err := readU32(br)
		if err != nil {
			return err
		}
		occ := make(map[int64]int)
		for s := uint32(0); s < nSamples; s++ {
			ts, err := readI64(br)
			if err != nil {
				return err
			}
			v, err := readValue(br)
			if err != nil {
				return err
			}
			key := occKey{ts, occ[ts]}
			occ[ts]++
			fields, ok := merged[key]
			if !ok {
				fields = make(map[string]Value)
				merged[key] = fields
				order = append(order, key)
			}
			fields[name] = v
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].t != order[j].t {
			return order[i].t < order[j].t
		}
		return order[i].k < order[j].k
	})
	pts := make([]Point, 0, len(order))
	for _, key := range order {
		pts = append(pts, Point{
			Measurement: measurement,
			Tags:        tags,
			Fields:      merged[key],
			Time:        key.t,
		})
	}
	return db.WritePoints(pts)
}

// errWriter wraps the snapshot's buffered writer with a latching
// error: the first failure is remembered, every later write becomes a
// no-op, and flush surfaces exactly that first error. Serialization
// code stays linear while a full disk (or any failing sink) can no
// longer produce a silently truncated yet "successful" snapshot.
type errWriter struct {
	w   *bufio.Writer
	err error
}

func (ew *errWriter) raw(s string) {
	if ew.err != nil {
		return
	}
	_, ew.err = ew.w.WriteString(s)
}

func (ew *errWriter) bin(v any) {
	if ew.err != nil {
		return
	}
	ew.err = binary.Write(ew.w, binary.LittleEndian, v)
}

// fail latches an externally produced error (e.g. a cold-tier read
// feeding an inline block) into the writer.
func (ew *errWriter) fail(err error) {
	if ew.err == nil {
		ew.err = err
	}
}

func (ew *errWriter) u16(v uint16) { ew.bin(v) }
func (ew *errWriter) u32(v uint32) { ew.bin(v) }
func (ew *errWriter) i64(v int64)  { ew.bin(v) }
func (ew *errWriter) f64(v float64) {
	ew.bin(v)
}

func (ew *errWriter) bytes(p []byte) {
	if ew.err != nil {
		return
	}
	_, ew.err = ew.w.Write(p)
}

func (ew *errWriter) byteVal(b byte) {
	if ew.err != nil {
		return
	}
	ew.err = ew.w.WriteByte(b)
}

func (ew *errWriter) str(s string) {
	ew.u32(uint32(len(s)))
	ew.raw(s)
}

func (ew *errWriter) value(v Value) {
	ew.byteVal(byte(v.Kind))
	switch v.Kind {
	case KindFloat:
		ew.f64(v.F)
	case KindInt:
		ew.i64(v.I)
	case KindString:
		ew.str(v.S)
	case KindBool:
		b := byte(0)
		if v.B {
			b = 1
		}
		ew.byteVal(b)
	}
}

// flush drains the buffer and reports the first error any write hit.
func (ew *errWriter) flush() error {
	if ew.err != nil {
		return ew.err
	}
	return ew.w.Flush()
}

func readU16(r io.Reader) (uint16, error) {
	var v uint16
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readU32(r io.Reader) (uint32, error) {
	var v uint32
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readI64(r io.Reader) (int64, error) {
	var v int64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readF64(r io.Reader) (float64, error) {
	var v float64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}

func readStr(r *bufio.Reader) (string, error) {
	n, err := readU32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<28 {
		return "", fmt.Errorf("tsdb: restore: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readValue(r *bufio.Reader) (Value, error) {
	kind, err := r.ReadByte()
	if err != nil {
		return Value{}, err
	}
	switch ValueKind(kind) {
	case KindFloat:
		f, err := readF64(r)
		return Float(f), err
	case KindInt:
		i, err := readI64(r)
		return Int(i), err
	case KindString:
		s, err := readStr(r)
		return Str(s), err
	case KindBool:
		b, err := r.ReadByte()
		return Bool(b != 0), err
	default:
		return Value{}, fmt.Errorf("tsdb: restore: bad value kind %d", kind)
	}
}
