package tsdb

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// genColumn fabricates one sorted column of n samples in the given
// style; the styles cover every value encoding plus the ugly shapes
// (duplicate timestamps, negative times, NaN/Inf floats).
func genColumn(rng *rand.Rand, style string, n int) ([]int64, []Value) {
	times := make([]int64, n)
	vals := make([]Value, n)
	t := int64(-120)
	for i := 0; i < n; i++ {
		switch rng.Intn(5) {
		case 0: // duplicate timestamp
		default:
			t += int64(rng.Intn(600))
		}
		times[i] = t
		switch style {
		case "float-smooth":
			vals[i] = Float(200 + math.Sin(float64(i)/10)*50)
		case "float-random":
			f := rng.NormFloat64() * 1e6
			switch rng.Intn(20) {
			case 0:
				f = math.Inf(1)
			case 1:
				f = math.NaN()
			}
			vals[i] = Float(f)
		case "int":
			vals[i] = Int(rng.Int63n(1000) - 500)
		case "mixed":
			switch rng.Intn(4) {
			case 0:
				vals[i] = Float(rng.Float64())
			case 1:
				vals[i] = Int(rng.Int63())
			case 2:
				vals[i] = Str(fmt.Sprintf("s%d", rng.Intn(10)))
			default:
				vals[i] = Bool(rng.Intn(2) == 0)
			}
		}
	}
	return times, vals
}

func valuesEqual(t *testing.T, want, got []Value) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("length mismatch: want %d got %d", len(want), len(got))
	}
	for i := range want {
		w, g := want[i], got[i]
		if w.Kind == KindFloat && g.Kind == KindFloat {
			if math.Float64bits(w.F) != math.Float64bits(g.F) {
				t.Fatalf("value %d: want %x got %x", i, math.Float64bits(w.F), math.Float64bits(g.F))
			}
			continue
		}
		if w != g {
			t.Fatalf("value %d: want %+v got %+v", i, w, g)
		}
	}
}

func TestBlockRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, style := range []string{"float-smooth", "float-random", "int", "mixed"} {
		for trial := 0; trial < 25; trial++ {
			n := 1 + rng.Intn(300)
			times, vals := genColumn(rng, style, n)
			blk := sealBlock(times, vals)
			if blk.minT != times[0] || blk.maxT != times[n-1] || blk.count != n {
				t.Fatalf("%s: bad header %+v for %d points [%d,%d]", style, blk, n, times[0], times[n-1])
			}
			if _, err := blk.validate(); err != nil {
				t.Fatalf("%s: validate: %v", style, err)
			}
			p, _, err := blk.decode(nil)
			if err != nil {
				t.Fatalf("%s: decode: %v", style, err)
			}
			for i := range times {
				if p.times[i] != times[i] {
					t.Fatalf("%s trial %d: time %d: want %d got %d", style, trial, i, times[i], p.times[i])
				}
			}
			valuesEqual(t, vals, p.vals)
		}
	}
}

func TestBlockDecodeRejectsCorrupt(t *testing.T) {
	times, vals := genColumn(rand.New(rand.NewSource(7)), "float-smooth", 64)
	blk := sealBlock(times, vals)
	// Truncations at every length must error, never panic.
	for cut := 0; cut < len(blk.data); cut++ {
		if _, _, err := decodeBlockData(blk.data[:cut]); err == nil {
			t.Fatalf("truncation at %d decoded successfully", cut)
		}
	}
	// Trailing garbage is rejected too.
	if _, _, err := decodeBlockData(append(append([]byte(nil), blk.data...), 0xff)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
	// A count the payload cannot back must be rejected before any
	// allocation happens.
	huge := []byte{0xff, 0xff, 0xff, 0x7f, vencFloat}
	if _, _, err := decodeBlockData(huge); err == nil {
		t.Fatal("oversized count accepted")
	}
}

// TestSealThresholdAndTail drives the write path with a small block
// size and checks the column splits into sealed blocks plus a raw tail
// at the advertised threshold.
func TestSealThresholdAndTail(t *testing.T) {
	db := Open(Options{ShardDuration: 86400, BlockSize: 4})
	for i := 0; i < 10; i++ {
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	cs := db.Compression()
	if cs.Blocks != 2 || cs.SealedPoints != 8 || cs.TailPoints != 2 {
		t.Fatalf("want 2 blocks / 8 sealed / 2 tail, got %+v", cs)
	}
	if cs.BlocksSealed != 2 {
		t.Fatalf("BlocksSealed counter = %d, want 2", cs.BlocksSealed)
	}
	if got := db.Stats().BlocksSealed; got != 2 {
		t.Fatalf("DBStats.BlocksSealed = %d, want 2", got)
	}
	// One bulk batch seals everything it can in one finish.
	db2 := Open(Options{ShardDuration: 86400, BlockSize: 4})
	var pts []Point
	for i := 0; i < 11; i++ {
		pts = append(pts, walPoint("n1", int64(60*i), float64(i)))
	}
	if err := db2.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	if cs := db2.Compression(); cs.Blocks != 2 || cs.TailPoints != 3 {
		t.Fatalf("bulk write: want 2 blocks / 3 tail, got %+v", cs)
	}
	// Sealing disabled keeps everything raw.
	db3 := Open(Options{ShardDuration: 86400, BlockSize: -1})
	if err := db3.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	if cs := db3.Compression(); cs.Blocks != 0 || cs.TailPoints != 11 {
		t.Fatalf("disabled sealing: got %+v", cs)
	}
}

// queryAll formats every Power sample — the equivalence oracle used by
// the sealed-vs-raw tests.
func queryAll(t *testing.T, db *DB, stmt string) string {
	t.Helper()
	res, err := db.Query(stmt)
	if err != nil {
		t.Fatalf("query %q: %v", stmt, err)
	}
	return FormatResult(res)
}

// TestSealedQueryEquivalence checks that every query shape (raw
// selects, whole-range aggregates, bucketed aggregates) returns
// bit-identical results whether data is sealed or raw.
func TestSealedQueryEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	sealed := Open(Options{ShardDuration: 3600, BlockSize: 8})
	raw := Open(Options{ShardDuration: 3600, BlockSize: -1})
	for i := 0; i < 500; i++ {
		p := walPoint(fmt.Sprintf("n%d", rng.Intn(3)), int64(i*30), float64(rng.Intn(100)))
		for _, db := range []*DB{sealed, raw} {
			if err := db.WritePoint(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	stmts := []string{
		"SELECT Reading FROM Power WHERE time >= '1970-01-01T00:10:00Z' AND time < '1970-01-01T03:00:00Z'",
		"SELECT max(Reading) FROM Power GROUP BY \"NodeId\"",
		"SELECT mean(Reading) FROM Power WHERE time >= '1970-01-01T00:00:00Z' AND time < '1970-01-01T04:00:00Z' GROUP BY time(5m), \"NodeId\"",
		"SELECT count(Reading), min(Reading), spread(Reading) FROM Power GROUP BY time(10m)",
	}
	for _, stmt := range stmts {
		if got, want := queryAll(t, sealed, stmt), queryAll(t, raw, stmt); got != want {
			t.Fatalf("sealed and raw disagree on %q:\nsealed:\n%s\nraw:\n%s", stmt, got, want)
		}
	}
}

// TestBlockHeaderPruning verifies scans decode only overlapping blocks:
// out-of-range queries are pure header skips.
func TestBlockHeaderPruning(t *testing.T) {
	db := Open(Options{ShardDuration: 86400, BlockSize: 10})
	for i := 0; i < 100; i++ { // 10 sealed blocks, empty tail
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	q, err := Parse("SELECT max(Reading) FROM Power WHERE time >= '1970-01-01T02:00:00Z' AND time < '1970-01-01T10:00:00Z'")
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlocksDecoded != 0 || res.Stats.BlocksSkipped != 10 {
		t.Fatalf("out-of-range scan: decoded %d skipped %d, want 0/10", res.Stats.BlocksDecoded, res.Stats.BlocksSkipped)
	}
	if len(res.Series) != 0 {
		t.Fatalf("out-of-range scan returned rows: %v", res.Series)
	}
	// A window over blocks 2..3 decodes exactly those two.
	q, err = Parse("SELECT max(Reading) FROM Power WHERE time >= '1970-01-01T00:21:00Z' AND time < '1970-01-01T00:35:00Z'")
	if err != nil {
		t.Fatal(err)
	}
	res, err = db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlocksDecoded != 2 || res.Stats.BlocksSkipped != 8 {
		t.Fatalf("window scan: decoded %d skipped %d, want 2/8", res.Stats.BlocksDecoded, res.Stats.BlocksSkipped)
	}
	if v := res.Series[0].Rows[0].Values[0]; v.F != 34 {
		t.Fatalf("window max = %v, want 34", v)
	}
}

// TestOutOfOrderAcrossSealBoundary lands writes behind already-sealed
// data and checks the unseal/re-sort path keeps results identical to
// an uncompressed engine.
func TestOutOfOrderAcrossSealBoundary(t *testing.T) {
	sealed := Open(Options{ShardDuration: 86400, BlockSize: 4})
	raw := Open(Options{ShardDuration: 86400, BlockSize: -1})
	ts := []int64{0, 60, 120, 180, 240, 300, 90, 30, 360, 15, 420, 480, 540, 600, 45}
	for i, at := range ts {
		p := walPoint("n1", at, float64(i))
		for _, db := range []*DB{sealed, raw} {
			if err := db.WritePoint(p); err != nil {
				t.Fatal(err)
			}
		}
	}
	stmt := "SELECT Reading FROM Power"
	if got, want := queryAll(t, sealed, stmt), queryAll(t, raw, stmt); got != want {
		t.Fatalf("out-of-order: sealed and raw disagree:\nsealed:\n%s\nraw:\n%s", got, want)
	}
	if cs := sealed.Compression(); cs.SealedPoints+cs.TailPoints != int64(len(ts)) {
		t.Fatalf("lost points: %+v, want %d total", cs, len(ts))
	}
}

// TestBlockBytesPerPoint asserts the acceptance target: the monotonic
// one-minute HPC workload (bench_test.go's shape) seals at <= 3
// bytes/point, versus ~25 B/point raw.
func TestBlockBytesPerPoint(t *testing.T) {
	db := Open(Options{ShardDuration: 86400 * 7, BlockSize: DefaultBlockSize})
	const n = 8192
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		pts = append(pts, walPoint("n1", int64(60*i), float64(200+i%50)))
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	cs := db.Compression()
	if cs.SealedPoints != n { // 8192 = 8 full default blocks
		t.Fatalf("sealed %d of %d points (%d blocks)", cs.SealedPoints, n, cs.Blocks)
	}
	rawPer := float64(cs.BytesRaw) / float64(cs.SealedPoints)
	perPoint := float64(cs.BytesCompressed) / float64(cs.SealedPoints)
	t.Logf("raw %.2f B/point, sealed %.3f B/point, ratio %.1fx", rawPer, perPoint, cs.Ratio())
	if perPoint > 3 {
		t.Fatalf("sealed encoding costs %.3f B/point, want <= 3", perPoint)
	}
	if cs.Ratio() < 5 {
		t.Fatalf("compression ratio %.2f, want >= 5", cs.Ratio())
	}
}

// TestColumnIteratorWalksBlocksThenTail exercises the iterator
// directly: chunks must arrive in time order, blocks before tail, with
// range clipping inside partially-overlapping blocks.
func TestColumnIteratorWalksBlocksThenTail(t *testing.T) {
	col := &column{}
	for b := 0; b < 3; b++ {
		var times []int64
		var vals []Value
		for i := 0; i < 4; i++ {
			times = append(times, int64(b*40+i*10))
			vals = append(vals, Float(float64(b*4+i)))
		}
		col.blocks = append(col.blocks, sealBlock(times, vals))
	}
	col.times = []int64{120, 130}
	col.vals = []Value{Float(12), Float(13)}

	var stats QueryStats
	it := newColumnIterator(col, 15, 125, nil)
	var got []int64
	for {
		ch, ok := it.next(&stats)
		if !ok {
			break
		}
		for i := ch.lo; i < ch.hi; i++ {
			got = append(got, ch.times[i])
		}
	}
	want := []int64{20, 30, 40, 50, 60, 70, 80, 90, 100, 110, 120}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("iterator yielded %v, want %v", got, want)
	}
	if stats.BlocksDecoded != 3 || stats.BlocksSkipped != 0 {
		t.Fatalf("stats %+v", stats)
	}
}

// TestSnapshotV2RoundTripSealedBlocks snapshots a database holding
// sealed blocks, raw tails, and every value kind, then restores it and
// compares queries, accounting, and compression state.
func TestSnapshotV2RoundTripSealedBlocks(t *testing.T) {
	db := Open(Options{ShardDuration: 3600, BlockSize: 8})
	for i := 0; i < 100; i++ {
		if err := db.WritePoint(walPoint(fmt.Sprintf("n%d", i%2), int64(i*120), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WritePoint(Point{
		Measurement: "Meta",
		Tags:        Tags{{Key: "NodeId", Value: "n1"}},
		Fields:      map[string]Value{"state": Str("ok"), "up": Bool(true), "jobs": Int(3)},
		Time:        500,
	}); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := RestoreOptions(&buf, Options{BlockSize: 8})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	for _, stmt := range []string{
		"SELECT Reading FROM Power",
		"SELECT mean(Reading) FROM Power GROUP BY time(10m), \"NodeId\"",
		"SELECT state, up, jobs FROM Meta",
		"SHOW FIELD KEYS",
		"SHOW SERIES",
	} {
		if got, want := queryAll(t, db2, stmt), queryAll(t, db, stmt); got != want {
			t.Fatalf("restored DB disagrees on %q:\ngot:\n%s\nwant:\n%s", stmt, got, want)
		}
	}
	if got, want := db2.Disk(), db.Disk(); got != want {
		t.Fatalf("disk accounting changed: got %+v want %+v", got, want)
	}
	if got, want := db2.Stats(), db.Stats(); got != want {
		t.Fatalf("stats changed: got %+v want %+v", got, want)
	}
	cg, cw := db2.Compression(), db.Compression()
	cg.BlocksCached, cw.BlocksCached = 0, 0 // query-dependent, not stored
	if cg != cw {
		t.Fatalf("compression state changed: got %+v want %+v", cg, cw)
	}
	if db2.Epoch() != db.Epoch() {
		t.Fatalf("epoch changed: %d vs %d", db2.Epoch(), db.Epoch())
	}
}

// writeSnapshotV1 emits the legacy raw-sample format (the exact v1
// writer this engine shipped with) so the compat test has a real v1
// byte stream to restore.
func writeSnapshotV1(t *testing.T, db *DB, w *bytes.Buffer) {
	t.Helper()
	v := db.view.Load()
	ew := &errWriter{w: bufio.NewWriter(w)}
	ew.raw(snapshotMagic)
	ew.u16(snapshotV1)
	ew.i64(db.shardDuration)
	ew.u32(uint32(len(v.shardStarts)))
	for _, start := range v.shardStarts {
		sh := v.shards[start]
		ew.i64(sh.start)
		ew.u32(uint32(len(sh.series)))
		for k, sr := range sh.series {
			ew.str(k)
			ew.str(sr.measurement)
			ew.u32(uint32(len(sr.tags)))
			for _, tag := range sr.tags {
				ew.str(tag.Key)
				ew.str(tag.Value)
			}
			ew.u32(uint32(len(sr.fields)))
			for f, col := range sr.fields {
				ew.str(f)
				ew.u32(uint32(len(col.times)))
				for i := range col.times {
					ew.i64(col.times[i])
					ew.value(col.vals[i])
				}
			}
		}
	}
	if err := ew.flush(); err != nil {
		t.Fatalf("v1 writer: %v", err)
	}
}

// TestSnapshotV1Compat restores a legacy v1 stream and checks the data
// comes back — re-sealed under the current engine's block tier.
func TestSnapshotV1Compat(t *testing.T) {
	src := Open(Options{ShardDuration: 3600, BlockSize: -1}) // all raw, like the v1 engine
	for i := 0; i < 50; i++ {
		if err := src.WritePoint(walPoint("n1", int64(i*60), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	writeSnapshotV1(t, src, &buf)

	db, err := RestoreOptions(&buf, Options{BlockSize: 16})
	if err != nil {
		t.Fatalf("restore v1: %v", err)
	}
	stmt := "SELECT Reading FROM Power"
	if got, want := queryAll(t, db, stmt), queryAll(t, src, stmt); got != want {
		t.Fatalf("v1 restore disagrees:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The v1 data re-sealed on the way in: 50 points at block size 16.
	if cs := db.Compression(); cs.Blocks != 3 || cs.TailPoints != 2 {
		t.Fatalf("v1 restore did not re-seal: %+v", cs)
	}
}

// failingWriter errors once n bytes have been accepted.
type failingWriter struct {
	n    int
	seen int
}

func (w *failingWriter) Write(p []byte) (int, error) {
	if w.seen+len(p) > w.n {
		ok := w.n - w.seen
		w.seen = w.n
		return ok, fmt.Errorf("synthetic write failure after %d bytes", w.n)
	}
	w.seen += len(p)
	return len(p), nil
}

// TestSnapshotFailingWriter proves the errWriter latches: a sink that
// fails at any byte offset must surface an error from Snapshot — no
// silently truncated "successful" snapshots.
func TestSnapshotFailingWriter(t *testing.T) {
	db := Open(Options{ShardDuration: 3600, BlockSize: 8})
	for i := 0; i < 40; i++ {
		if err := db.WritePoint(walPoint("n1", int64(i*60), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	var full bytes.Buffer
	if err := db.Snapshot(&full); err != nil {
		t.Fatal(err)
	}
	if full.Len() == 0 {
		t.Fatal("empty snapshot")
	}
	for _, cut := range []int{0, 1, 4, 7, full.Len() / 2, full.Len() - 1} {
		if err := db.Snapshot(&failingWriter{n: cut}); err == nil {
			t.Fatalf("snapshot to writer failing at byte %d reported success", cut)
		}
	}
}

// TestRangeIndexesSuffixSearch pins the rangeIndexes micro-fix: the
// upper bound must match the naive full-column search on every window.
func TestRangeIndexesSuffixSearch(t *testing.T) {
	c := &column{}
	for i := 0; i < 200; i++ {
		c.times = append(c.times, int64(i/3*10)) // runs of duplicates
		c.vals = append(c.vals, Float(0))
	}
	naive := func(start, end int64) (int, int) {
		lo, hi := 0, 0
		for _, ts := range c.times {
			if ts < start {
				lo++
			}
			if ts < end {
				hi++
			} else {
				break
			}
		}
		return lo, hi
	}
	for start := int64(-10); start < 700; start += 7 {
		for _, span := range []int64{0, 5, 10, 33, 1000} {
			end := start + span
			glo, ghi := c.rangeIndexes(start, end)
			wlo, whi := naive(start, end)
			if glo != wlo || ghi != whi {
				t.Fatalf("rangeIndexes(%d,%d) = (%d,%d), want (%d,%d)", start, end, glo, ghi, wlo, whi)
			}
		}
	}
}
