package tsdb

import (
	"testing"
)

func showFixture(t *testing.T) *DB {
	t.Helper()
	db := Open(Options{})
	pts := []Point{
		{
			Measurement: "Power",
			Tags:        Tags{{"NodeId", "10.101.1.1"}, {"Label", "NodePower"}},
			Fields:      map[string]Value{"Reading": Float(273.8)},
			Time:        100,
		},
		{
			Measurement: "Power",
			Tags:        Tags{{"NodeId", "10.101.1.2"}, {"Label", "NodePower"}},
			Fields:      map[string]Value{"Reading": Float(280)},
			Time:        100,
		},
		{
			Measurement: "JobsInfo",
			Tags:        Tags{{"JobId", "1291784"}},
			Fields:      map[string]Value{"User": Str("jieyao"), "Slots": Int(36)},
			Time:        100,
		},
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	return db
}

func rowsOf(t *testing.T, res *Result) []string {
	t.Helper()
	var out []string
	for _, s := range res.Series {
		for _, r := range s.Rows {
			out = append(out, r.Values[0].S)
		}
	}
	return out
}

func TestShowMeasurements(t *testing.T) {
	db := showFixture(t)
	res, err := db.Query("SHOW MEASUREMENTS")
	if err != nil {
		t.Fatal(err)
	}
	got := rowsOf(t, res)
	if len(got) != 2 || got[0] != "JobsInfo" || got[1] != "Power" {
		t.Fatalf("measurements = %v", got)
	}
}

func TestShowSeries(t *testing.T) {
	db := showFixture(t)
	res, err := db.Query("SHOW SERIES")
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsOf(t, res)) != 3 {
		t.Fatalf("series = %v", rowsOf(t, res))
	}
	res, err = db.Query(`SHOW SERIES FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowsOf(t, res)
	if len(got) != 2 || got[0] != "Power,Label=NodePower,NodeId=10.101.1.1" {
		t.Fatalf("power series = %v", got)
	}
}

func TestShowTagKeys(t *testing.T) {
	db := showFixture(t)
	res, err := db.Query("SHOW TAG KEYS")
	if err != nil {
		t.Fatal(err)
	}
	got := rowsOf(t, res)
	if len(got) != 3 { // JobId, Label, NodeId
		t.Fatalf("tag keys = %v", got)
	}
	res, err = db.Query(`SHOW TAG KEYS FROM "JobsInfo"`)
	if err != nil {
		t.Fatal(err)
	}
	got = rowsOf(t, res)
	if len(got) != 1 || got[0] != "JobId" {
		t.Fatalf("jobsinfo tag keys = %v", got)
	}
}

func TestShowTagValues(t *testing.T) {
	db := showFixture(t)
	res, err := db.Query(`SHOW TAG VALUES FROM "Power" WITH KEY = "NodeId"`)
	if err != nil {
		t.Fatal(err)
	}
	got := rowsOf(t, res)
	if len(got) != 2 || got[0] != "10.101.1.1" {
		t.Fatalf("tag values = %v", got)
	}
	// Without FROM, scans every measurement.
	res, err = db.Query(`SHOW TAG VALUES WITH KEY = JobId`)
	if err != nil {
		t.Fatal(err)
	}
	if got := rowsOf(t, res); len(got) != 1 || got[0] != "1291784" {
		t.Fatalf("job tag values = %v", got)
	}
}

func TestShowFieldKeys(t *testing.T) {
	db := showFixture(t)
	res, err := db.Query(`SHOW FIELD KEYS FROM "JobsInfo"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 || res.Series[0].Name != "JobsInfo" {
		t.Fatalf("series = %+v", res.Series)
	}
	rows := res.Series[0].Rows
	if len(rows) != 2 {
		t.Fatalf("field rows = %d", len(rows))
	}
	// Sorted: Slots(integer), User(string).
	if rows[0].Values[0].S != "Slots" || rows[0].Values[1].S != "integer" {
		t.Fatalf("row0 = %+v", rows[0])
	}
	if rows[1].Values[0].S != "User" || rows[1].Values[1].S != "string" {
		t.Fatalf("row1 = %+v", rows[1])
	}
}

func TestShowErrors(t *testing.T) {
	db := showFixture(t)
	bad := []string{
		"SHOW",
		"SHOW NONSENSE",
		"SHOW TAG",
		"SHOW TAG VALUES",                 // missing WITH KEY
		"SHOW TAG VALUES WITH KEY NodeId", // missing =
		"SHOW FIELD",
		"SHOW MEASUREMENTS extra",
		"SHOW SERIES FROM",
	}
	for _, s := range bad {
		if _, err := db.Query(s); err == nil {
			t.Errorf("Query(%q) succeeded, want error", s)
		}
	}
}

func TestShowOnEmptyDB(t *testing.T) {
	db := Open(Options{})
	res, err := db.Query("SHOW MEASUREMENTS")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 0 {
		t.Fatal("empty db returned series")
	}
}

func TestDropMeasurement(t *testing.T) {
	db := showFixture(t)
	before := db.Disk()
	if before.Points != 3 {
		t.Fatalf("setup points = %d", before.Points)
	}
	res, err := db.Query(`DROP MEASUREMENT "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rows != 1 {
		t.Fatal("drop did not report success")
	}
	ms := db.Measurements()
	if len(ms) != 1 || ms[0] != "JobsInfo" {
		t.Fatalf("measurements after drop = %v", ms)
	}
	after := db.Disk()
	if after.Points != 1 {
		t.Fatalf("points after drop = %d, want 1", after.Points)
	}
	if after.DataBytes >= before.DataBytes {
		t.Fatal("bytes not reclaimed")
	}
	// Dropped data must not be queryable.
	r, err := db.Query(`SELECT count("Reading") FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 0 {
		t.Fatal("dropped measurement still queryable")
	}
	// Dropping again reports not-found.
	res, err = db.Query(`DROP MEASUREMENT "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Rows != 0 {
		t.Fatal("second drop reported success")
	}
}

func TestDropStatementErrors(t *testing.T) {
	db := showFixture(t)
	for _, s := range []string{"DROP", "DROP TABLE x", "DROP MEASUREMENT", "DROP MEASUREMENT a b"} {
		if _, err := db.Query(s); err == nil {
			t.Errorf("Query(%q) succeeded", s)
		}
	}
}
