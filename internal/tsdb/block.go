package tsdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync/atomic"
)

// Sealed-block tier: Gorilla-style compression for immutable column
// runs.
//
// A column is hot-tail-plus-sealed-blocks: writes append to the raw
// time/value slices, and whenever the tail reaches Options.BlockSize
// points the write batch seals a full run into an immutable compressed
// block (see column.seal in shard.go). HPC telemetry is overwhelmingly
// monotonic timestamps at a fixed cadence carrying slowly-varying
// floats, which is exactly the shape Gorilla's encodings collapse:
//
//	timestamps  delta-of-delta, zig-zag varint: a fixed cadence makes
//	            every delta-of-delta zero — one byte per point, and
//	            most of that byte's bits are shared with neighbours in
//	            the varint stream
//	floats      XOR against the previous value with leading/trailing-
//	            zero windows: an unchanged reading costs one bit, a
//	            small change only its meaningful mantissa bits
//	ints        delta, zig-zag varint
//	mixed       per-value kind byte + canonical payload (strings,
//	            bools, or columns that changed kind mid-stream)
//
// Block payload layout (everything after the in-memory header):
//
//	uvarint count | u8 venc
//	varint t0 | varint d0 | varint dod*          (count-2 dods)
//	values per venc (see above)
//
// The float bitstream is MSB-first. Each value after the first is:
//
//	'0'                                          identical to previous
//	'1' '0' <meaningful bits>                    reuse previous window
//	'1' '1' <5b leading> <6b sigbits-1> <bits>   new window
//
// Every block additionally carries min/max-time and count in its
// in-memory (and snapshot v2) header, so scans prune blocks entirely
// outside the query range without touching the payload.

// DefaultBlockSize is the seal threshold in points when
// Options.BlockSize is zero. 1024 points of one-minute telemetry is
// ~17 hours of one series — long enough to amortize per-block headers,
// short enough that header pruning has real granularity inside a
// one-day shard.
const DefaultBlockSize = 1024

// maxBlockPoints bounds the decoded point count a block header may
// claim, independent of the payload-length guard below.
const maxBlockPoints = 1 << 24

// blockHeaderBytes is the accounting cost of one block's header as
// persisted by snapshot v2 (minT, maxT, count, rawBytes, dataLen); the
// in-memory struct is the same magnitude. Charged into
// CompressionStats.BytesCompressed so the reported ratio is honest.
const blockHeaderBytes = 8 + 8 + 4 + 8 + 4

// Value stream encodings.
const (
	vencFloat byte = 1 // all values KindFloat: XOR bitstream
	vencInt   byte = 2 // all values KindInt: zig-zag delta varints
	vencMixed byte = 3 // per-value kind byte + canonical payload
)

var errBlockCorrupt = errors.New("tsdb: corrupt block")

// block is one sealed, immutable run of a column: count points in
// [minT, maxT], compressed into data. Blocks are shared freely across
// COW views and never mutated after sealBlock returns; the only
// mutable cell is the decode cache, which is set at most to one value
// (identical across racing decoders) through an atomic pointer.
type block struct {
	minT, maxT int64
	count      int
	rawBytes   int64 // canonical encoded size of the sealed samples
	data       []byte

	// cold locates the compressed payload in a cold-tier segment file
	// when data is nil: spilled blocks keep only this header plus the
	// reference, so scan pruning stays in memory while the payload
	// costs one pread on first touch. Exactly one of data/cold is set
	// on a sealed block.
	cold *coldRef

	// cache memoizes the decoded payload: blocks are immutable, so the
	// first scan that touches a block pays the decode and later scans
	// read the cached slices. Resident raw bytes are therefore bounded
	// by what queries actually touch (worst case: the pre-compression
	// engine); cold blocks stay compressed. Dropped with the block by
	// retention/drop sweeps.
	cache atomic.Pointer[blockPayload]
}

// blockPayload is a decoded block: parallel time/value slices, never
// written after construction. ref is the CLOCK second-chance bit — the
// only mutable cell, set lock-free by cache hits and cleared by the
// eviction sweep (see cache.go).
type blockPayload struct {
	times []int64
	vals  []Value
	ref   atomic.Bool
}

// overlaps reports whether the block intersects [start, end).
func (b *block) overlaps(start, end int64) bool {
	return b.maxT >= start && b.minT < end
}

// payloadBytes returns the block's compressed payload, reading it
// through the cold tier (one pread + CRC check) when the block has
// been spilled. fromDisk reports which side served it.
func (b *block) payloadBytes() (data []byte, fromDisk bool, err error) {
	if b.data != nil {
		return b.data, false, nil
	}
	if b.cold == nil {
		return nil, false, fmt.Errorf("%w: block has neither payload nor cold reference", errBlockCorrupt)
	}
	data, err = b.cold.read()
	return data, true, err
}

// compressedLen is the compressed payload size regardless of where it
// lives.
func (b *block) compressedLen() int {
	if b.data != nil {
		return len(b.data)
	}
	if b.cold != nil {
		return int(b.cold.length)
	}
	return 0
}

// sealBlock compresses one sorted run of samples into an immutable
// block. times must be non-empty and sorted ascending; the slices are
// only read.
func sealBlock(times []int64, vals []Value) *block {
	n := len(times)
	b := &block{minT: times[0], maxT: times[n-1], count: n}
	for i := range vals {
		b.rawBytes += 8 + int64(vals[i].EncodedSize())
	}

	venc := vencMixed
	switch vals[0].Kind {
	case KindFloat:
		venc = vencFloat
	case KindInt:
		venc = vencInt
	}
	if venc != vencMixed {
		want := vals[0].Kind
		for i := 1; i < n; i++ {
			if vals[i].Kind != want {
				venc = vencMixed
				break
			}
		}
	}

	buf := make([]byte, 0, n/4+16)
	buf = binary.AppendUvarint(buf, uint64(n))
	buf = append(buf, venc)

	// Timestamps: t0, first delta, then delta-of-deltas.
	buf = binary.AppendVarint(buf, times[0])
	if n > 1 {
		prevDelta := times[1] - times[0]
		buf = binary.AppendVarint(buf, prevDelta)
		for i := 2; i < n; i++ {
			d := times[i] - times[i-1]
			buf = binary.AppendVarint(buf, d-prevDelta)
			prevDelta = d
		}
	}

	switch venc {
	case vencFloat:
		w := bitWriter{buf: buf}
		prev := math.Float64bits(vals[0].F)
		w.writeBits(prev, 64)
		// lead > 64 marks "no window yet": the first changed value
		// always opens one.
		lead, trail := uint(65), uint(65)
		for i := 1; i < n; i++ {
			cur := math.Float64bits(vals[i].F)
			x := cur ^ prev
			prev = cur
			if x == 0 {
				w.writeBits(0, 1)
				continue
			}
			w.writeBits(1, 1)
			l := uint(bits.LeadingZeros64(x))
			if l > 31 {
				l = 31 // 5-bit field
			}
			t := uint(bits.TrailingZeros64(x))
			if l >= lead && t >= trail {
				w.writeBits(0, 1)
				w.writeBits(x>>trail, 64-lead-trail)
				continue
			}
			lead, trail = l, t
			sig := 64 - lead - trail
			w.writeBits(1, 1)
			w.writeBits(uint64(lead), 5)
			w.writeBits(uint64(sig-1), 6)
			w.writeBits(x>>trail, sig)
		}
		buf = w.buf
	case vencInt:
		prev := vals[0].I
		buf = binary.AppendVarint(buf, prev)
		for i := 1; i < n; i++ {
			buf = binary.AppendVarint(buf, vals[i].I-prev)
			prev = vals[i].I
		}
	default:
		for i := range vals {
			buf = appendValue(buf, vals[i])
		}
	}
	b.data = buf
	return b
}

// decode returns the block's samples, memoizing the result. Racing
// callers may both decode; the stores are idempotent (identical
// content), so last-write-wins is harmless. A non-nil cache charges
// the payload against the global decode budget (and may evict other
// blocks to admit it); nil keeps the unaccounted PR 5 behavior, used
// by internal maintenance paths whose payloads are transient.
// fromDisk reports whether the compressed payload came through the
// cold tier rather than memory (always false on a memo hit).
func (b *block) decode(c *decodeCache) (p *blockPayload, fromDisk bool, err error) {
	if p := b.cache.Load(); p != nil {
		if c != nil {
			c.hit(p)
		}
		return p, false, nil
	}
	data, fromDisk, err := b.payloadBytes()
	if err != nil {
		return nil, fromDisk, err
	}
	times, vals, err := decodeBlockData(data)
	if err != nil {
		return nil, fromDisk, err
	}
	p = &blockPayload{times: times, vals: vals}
	b.cache.Store(p)
	if c != nil {
		c.admit(b, p)
	}
	return p, fromDisk, nil
}

// validate fully decodes the block without caching and checks the
// payload against the header: exact count, sorted timestamps, and
// min/max agreeing with the pruning header. Restore runs this on every
// block read from a snapshot so a corrupt or adversarial file fails
// loudly instead of poisoning scans later. The decoded payload is
// returned for callers that need a peek (field-kind recovery) without
// pinning it in the cache.
func (b *block) validate() (*blockPayload, error) {
	data, _, err := b.payloadBytes()
	if err != nil {
		return nil, err
	}
	times, vals, err := decodeBlockData(data)
	if err != nil {
		return nil, err
	}
	if len(times) != b.count {
		return nil, fmt.Errorf("%w: header count %d, payload %d", errBlockCorrupt, b.count, len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] < times[i-1] {
			return nil, fmt.Errorf("%w: timestamps out of order", errBlockCorrupt)
		}
	}
	if times[0] != b.minT || times[len(times)-1] != b.maxT {
		return nil, fmt.Errorf("%w: time range header mismatch", errBlockCorrupt)
	}
	return &blockPayload{times: times, vals: vals}, nil
}

// decodeBlockData decodes a block payload. It is the pure inverse of
// sealBlock and must be safe on arbitrary bytes (FuzzBlockDecode):
// every read is bounds-checked and allocations are bounded by the
// input length — each encoded point costs at least one payload byte,
// so a count the payload cannot back is rejected before any
// allocation.
func decodeBlockData(data []byte) ([]int64, []Value, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, nil, fmt.Errorf("%w: bad count", errBlockCorrupt)
	}
	if n == 0 || n > maxBlockPoints || n > uint64(len(data)) {
		return nil, nil, fmt.Errorf("%w: count %d out of range for %d payload bytes", errBlockCorrupt, n, len(data))
	}
	off := sz
	if off >= len(data) {
		return nil, nil, fmt.Errorf("%w: missing value encoding", errBlockCorrupt)
	}
	venc := data[off]
	off++

	count := int(n)
	times := make([]int64, count)
	t0, sz := binary.Varint(data[off:])
	if sz <= 0 {
		return nil, nil, fmt.Errorf("%w: bad t0", errBlockCorrupt)
	}
	off += sz
	times[0] = t0
	if count > 1 {
		delta, sz := binary.Varint(data[off:])
		if sz <= 0 {
			return nil, nil, fmt.Errorf("%w: bad first delta", errBlockCorrupt)
		}
		off += sz
		times[1] = times[0] + delta
		for i := 2; i < count; i++ {
			dod, sz := binary.Varint(data[off:])
			if sz <= 0 {
				return nil, nil, fmt.Errorf("%w: bad delta-of-delta", errBlockCorrupt)
			}
			off += sz
			delta += dod
			times[i] = times[i-1] + delta
		}
	}

	vals := make([]Value, count)
	switch venc {
	case vencFloat:
		r := bitReader{buf: data[off:]}
		first, err := r.readBits(64)
		if err != nil {
			return nil, nil, err
		}
		prev := first
		vals[0] = Float(math.Float64frombits(prev))
		lead, trail := uint(65), uint(65)
		for i := 1; i < count; i++ {
			ctrl, err := r.readBits(1)
			if err != nil {
				return nil, nil, err
			}
			if ctrl == 0 {
				vals[i] = Float(math.Float64frombits(prev))
				continue
			}
			ctrl, err = r.readBits(1)
			if err != nil {
				return nil, nil, err
			}
			if ctrl == 1 {
				hdr, err := r.readBits(11)
				if err != nil {
					return nil, nil, err
				}
				lead = uint(hdr >> 6)
				sig := uint(hdr&0x3f) + 1
				if lead+sig > 64 {
					return nil, nil, fmt.Errorf("%w: float window %d+%d bits", errBlockCorrupt, lead, sig)
				}
				trail = 64 - lead - sig
			} else if lead > 64 {
				return nil, nil, fmt.Errorf("%w: window reuse before first window", errBlockCorrupt)
			}
			sig := 64 - lead - trail
			mbits, err := r.readBits(sig)
			if err != nil {
				return nil, nil, err
			}
			prev ^= mbits << trail
			vals[i] = Float(math.Float64frombits(prev))
		}
		if rem := r.remainingBytes(); rem > 0 {
			return nil, nil, fmt.Errorf("%w: %d trailing bytes after float stream", errBlockCorrupt, rem)
		}
		return times, vals, nil
	case vencInt:
		v0, sz := binary.Varint(data[off:])
		if sz <= 0 {
			return nil, nil, fmt.Errorf("%w: bad first int", errBlockCorrupt)
		}
		off += sz
		vals[0] = Int(v0)
		prev := v0
		for i := 1; i < count; i++ {
			d, sz := binary.Varint(data[off:])
			if sz <= 0 {
				return nil, nil, fmt.Errorf("%w: bad int delta", errBlockCorrupt)
			}
			off += sz
			prev += d
			vals[i] = Int(prev)
		}
	case vencMixed:
		d := &walDecoder{b: data, off: off}
		for i := 0; i < count; i++ {
			v, err := d.value()
			if err != nil {
				return nil, nil, fmt.Errorf("%w: %v", errBlockCorrupt, err)
			}
			vals[i] = v
		}
		off = d.off
	default:
		return nil, nil, fmt.Errorf("%w: unknown value encoding %d", errBlockCorrupt, venc)
	}
	if off != len(data) {
		return nil, nil, fmt.Errorf("%w: %d trailing bytes", errBlockCorrupt, len(data)-off)
	}
	return times, vals, nil
}

// appendValue appends a value in the canonical kind-byte + payload
// encoding (the walDecoder.value inverse).
func appendValue(buf []byte, v Value) []byte {
	buf = append(buf, byte(v.Kind))
	switch v.Kind {
	case KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.F))
	case KindInt:
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v.I))
	case KindString:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.S)))
		buf = append(buf, v.S...)
	case KindBool:
		if v.B {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	}
	return buf
}

// bitWriter appends an MSB-first bitstream onto a byte slice.
type bitWriter struct {
	buf  []byte
	free uint // unused low bits in the last byte (0 = byte-aligned)
}

// writeBits appends the n lowest bits of v, most-significant first.
func (w *bitWriter) writeBits(v uint64, n uint) {
	for n > 0 {
		if w.free == 0 {
			w.buf = append(w.buf, 0)
			w.free = 8
		}
		take := n
		if take > w.free {
			take = w.free
		}
		chunk := (v >> (n - take)) & (1<<take - 1)
		w.buf[len(w.buf)-1] |= byte(chunk << (w.free - take))
		w.free -= take
		n -= take
	}
}

// bitReader consumes an MSB-first bitstream with bounds checks.
type bitReader struct {
	buf []byte
	pos uint // absolute bit position consumed so far
}

func (r *bitReader) readBits(n uint) (uint64, error) {
	if uint(len(r.buf))*8-r.pos < n {
		return 0, fmt.Errorf("%w: bitstream exhausted", errBlockCorrupt)
	}
	var v uint64
	for n > 0 {
		avail := 8 - r.pos&7
		take := n
		if take > avail {
			take = avail
		}
		chunk := (uint64(r.buf[r.pos>>3]) >> (avail - take)) & (1<<take - 1)
		v = v<<take | chunk
		r.pos += take
		n -= take
	}
	return v, nil
}

// remainingBytes reports how many whole unread bytes follow the
// current (possibly partial) byte — the final byte's padding bits are
// legitimate, full trailing bytes are corruption.
func (r *bitReader) remainingBytes() int {
	consumed := int((r.pos + 7) / 8)
	return len(r.buf) - consumed
}

// columnIterator walks one column's samples inside [start, end) in
// time order: sealed blocks first, then the raw tail. Block headers
// prune the walk — a block entirely outside the range is skipped
// without touching its payload, so an out-of-range scan costs one
// header comparison per skipped block and decodes nothing.
type columnIterator struct {
	col        *column
	cache      *decodeCache
	start, end int64
	blockIdx   int
	tailDone   bool
}

func newColumnIterator(col *column, start, end int64, cache *decodeCache) columnIterator {
	return columnIterator{col: col, cache: cache, start: start, end: end}
}

// next yields the following non-empty chunk, charging pruning and
// decode work to stats.
func (it *columnIterator) next(stats *QueryStats) (colChunk, bool) {
	blocks := it.col.blocks
	for it.blockIdx < len(blocks) {
		blk := blocks[it.blockIdx]
		if blk.minT >= it.end {
			// Blocks are time-ordered: everything from here on starts
			// past the range.
			stats.BlocksSkipped += int64(len(blocks) - it.blockIdx)
			it.blockIdx = len(blocks)
			break
		}
		it.blockIdx++
		if blk.maxT < it.start {
			stats.BlocksSkipped++
			continue
		}
		p, fromDisk, err := blk.decode(it.cache)
		if err != nil {
			if blk.cold != nil {
				// A spilled block that cannot be read back is an IO
				// fault — a missing, truncated, or corrupt segment file.
				// Latch it so the query fails instead of answering with
				// durable data silently missing.
				if stats.scanErr == nil {
					stats.scanErr = err
				}
				stats.BlocksSkipped++
				continue
			}
			// Resident blocks are validated when sealed and when
			// restored; an undecodable one here is post-hoc memory
			// corruption. Drop it from the scan rather than failing the
			// whole query.
			stats.BlocksSkipped++
			continue
		}
		stats.BlocksDecoded++
		if fromDisk {
			stats.BlocksFromDisk++
		}
		lo, hi := 0, len(p.times)
		if blk.minT < it.start {
			lo = sort.Search(len(p.times), func(i int) bool { return p.times[i] >= it.start })
		}
		if blk.maxT >= it.end {
			hi = sort.Search(len(p.times), func(i int) bool { return p.times[i] >= it.end })
		}
		if lo < hi {
			return colChunk{times: p.times, vals: p.vals, lo: lo, hi: hi}, true
		}
	}
	if !it.tailDone {
		it.tailDone = true
		lo, hi := it.col.rangeIndexes(it.start, it.end)
		if lo < hi {
			return colChunk{times: it.col.times, vals: it.col.vals, lo: lo, hi: hi}, true
		}
	}
	return colChunk{}, false
}
