package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// coldPoint builds one Power sample for the cold-tier tests.
func coldPoint(node string, ts int64, v float64) Point {
	return Point{
		Measurement: "Power",
		Tags:        Tags{{Key: "NodeId", Value: node}},
		Fields:      map[string]Value{"Reading": Float(v)},
		Time:        ts,
	}
}

// coldFixture builds a cold-enabled DB with an aggressive seal
// threshold plus an identical all-resident twin for bit-identical
// comparisons. Both hold nodes x perNode minutely points.
func coldFixture(t *testing.T, nodes, perNode int) (cold, resident *DB) {
	t.Helper()
	cold = Open(Options{BlockSize: 32, ColdDir: t.TempDir()})
	resident = Open(Options{BlockSize: 32})
	var pts []Point
	for n := 0; n < nodes; n++ {
		for i := 0; i < perNode; i++ {
			pts = append(pts, coldPoint(fmt.Sprintf("n%d", n), int64(i*60), float64(100+(n*perNode+i)%97)))
		}
	}
	for _, db := range []*DB{cold, resident} {
		if err := db.WritePoints(pts); err != nil {
			t.Fatal(err)
		}
		if cs := db.Compression(); cs.BlocksSealed == 0 {
			t.Fatal("fixture sealed no blocks")
		}
	}
	return cold, resident
}

// queriesEqual runs stmt against both databases and requires
// bit-identical result series.
func queriesEqual(t *testing.T, got, want *DB, stmt string) {
	t.Helper()
	rg, err := got.Query(stmt)
	if err != nil {
		t.Fatalf("%s: %v", stmt, err)
	}
	rw, err := want.Query(stmt)
	if err != nil {
		t.Fatalf("%s (baseline): %v", stmt, err)
	}
	if !reflect.DeepEqual(rg.Series, rw.Series) {
		t.Fatalf("%s: cold-tier result diverges from all-resident baseline\ngot:  %+v\nwant: %+v",
			stmt, rg.Series, rw.Series)
	}
}

// TestColdSpillReadThrough is the basic contract: spilling sealed
// blocks drops their in-memory payloads, queries read them back from
// disk bit-identically, and the decode cache makes the second scan
// serve from memory again.
func TestColdSpillReadThrough(t *testing.T) {
	cold, resident := coldFixture(t, 4, 256)
	before := cold.ColdStats()
	if !before.Enabled || before.BlocksCold != 0 || before.ResidentBlocks == 0 {
		t.Fatalf("pre-spill stats: %+v", before)
	}

	n, err := cold.SpillCold(math.MaxInt64)
	if err != nil {
		t.Fatal(err)
	}
	if int64(n) != before.ResidentBlocks {
		t.Fatalf("spilled %d blocks, want %d", n, before.ResidentBlocks)
	}
	after := cold.ColdStats()
	if after.ResidentBlocks != 0 || after.BlocksCold != before.ResidentBlocks {
		t.Fatalf("post-spill stats: %+v", after)
	}
	if after.ColdBytes != before.ResidentBytes {
		t.Fatalf("cold bytes %d, want the former resident bytes %d", after.ColdBytes, before.ResidentBytes)
	}
	if after.Files == 0 || after.FileBytes == 0 || after.Spills != int64(n) {
		t.Fatalf("segment accounting: %+v", after)
	}
	// Compression accounting still sees every sealed block.
	if cs := cold.Compression(); cs.BlocksCold != int64(n) || cs.BytesCompressed == 0 {
		t.Fatalf("compression stats lost cold blocks: %+v", cs)
	}

	res, err := cold.Query(`SELECT count("Reading") FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BlocksFromDisk == 0 || res.Stats.BlocksFromDisk > res.Stats.BlocksDecoded {
		t.Fatalf("BlocksFromDisk = %d of %d decoded, want 0 < from-disk <= decoded",
			res.Stats.BlocksFromDisk, res.Stats.BlocksDecoded)
	}
	for _, stmt := range []string{
		`SELECT count("Reading") FROM "Power"`,
		`SELECT max("Reading") FROM "Power" GROUP BY time(5m), "NodeId"`,
		`SELECT "Reading" FROM "Power" GROUP BY "NodeId"`,
	} {
		queriesEqual(t, cold, resident, stmt)
	}

	// The decode cache now holds the hot set: a warm scan serves every
	// block from the memo (no cache misses) and touches no file.
	missesBefore := cold.CacheStats().Misses
	warm, err := cold.Query(`SELECT count("Reading") FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.BlocksFromDisk != 0 {
		t.Fatalf("warm scan went back to disk: %+v", warm.Stats)
	}
	if misses := cold.CacheStats().Misses; misses != missesBefore {
		t.Fatalf("warm scan re-decoded: %d misses, was %d", misses, missesBefore)
	}
}

// TestColdSpillBudget drives spilling purely by the resident budget:
// with olderThan below every block, only ColdMaxResidentBytes forces
// blocks out, oldest first, until the residue fits.
func TestColdSpillBudget(t *testing.T) {
	const budget = 2 * 1024
	db := Open(Options{BlockSize: 32, ColdDir: t.TempDir(), ColdMaxResidentBytes: budget})
	resident := Open(Options{BlockSize: 32})
	var pts []Point
	for n := 0; n < 8; n++ {
		for i := 0; i < 512; i++ {
			// Every value differs deep in the mantissa so the XOR stream
			// stays incompressible and each block carries real weight.
			pts = append(pts, coldPoint(fmt.Sprintf("n%d", n), int64(i*60), float64(i)*1.000001+float64(n)*0.37))
		}
	}
	for _, d := range []*DB{db, resident} {
		if err := d.WritePoints(pts); err != nil {
			t.Fatal(err)
		}
	}
	pre := db.ColdStats()
	if pre.ResidentBytes <= budget {
		t.Fatalf("fixture too small to exercise the budget: %+v", pre)
	}

	if _, err := db.SpillCold(math.MinInt64); err != nil {
		t.Fatal(err)
	}
	cs := db.ColdStats()
	if cs.ResidentBytes > budget {
		t.Fatalf("resident %d bytes exceeds budget %d: %+v", cs.ResidentBytes, budget, cs)
	}
	if cs.BlocksCold == 0 {
		t.Fatalf("budget pass spilled nothing: %+v", cs)
	}
	// Oldest-first: every remaining resident block must end no earlier
	// than every spilled block ends.
	v := db.view.Load()
	minResident, maxCold := int64(math.MaxInt64), int64(math.MinInt64)
	for _, sh := range v.shards {
		for _, sr := range sh.series {
			for _, col := range sr.fields {
				for _, blk := range col.blocks {
					if blk.cold != nil && blk.maxT > maxCold {
						maxCold = blk.maxT
					}
					if blk.data != nil && blk.maxT < minResident {
						minResident = blk.maxT
					}
				}
			}
		}
	}
	if minResident < maxCold {
		t.Fatalf("spill order not oldest-first: resident block ends %d before cold block end %d", minResident, maxCold)
	}
	queriesEqual(t, db, resident, `SELECT mean("Reading") FROM "Power" GROUP BY time(10m), "NodeId"`)

	// A second pass with nothing over budget is a no-op.
	if n, err := db.SpillCold(math.MinInt64); n != 0 || err != nil {
		t.Fatalf("idempotent spill: n=%d err=%v", n, err)
	}
}

// TestColdPropertyAggregates is the randomized property test: across
// random interleavings of writes and spills at random cutoffs, all
// five aggregates stay bit-identical to an all-resident twin fed the
// exact same points.
func TestColdPropertyAggregates(t *testing.T) {
	aggs := []string{"max", "min", "mean", "sum", "count"}
	for trial := 0; trial < 5; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		cold := Open(Options{BlockSize: 16, ColdDir: t.TempDir(), ShardDuration: 3600})
		resident := Open(Options{BlockSize: 16, ShardDuration: 3600})
		maxTs := int64(0)
		for round := 0; round < 6; round++ {
			var pts []Point
			for i := 0; i < 50+rng.Intn(100); i++ {
				node := fmt.Sprintf("n%d", rng.Intn(3))
				maxTs += int64(rng.Intn(90))
				pts = append(pts, coldPoint(node, maxTs, math.Round(rng.Float64()*1000)/4))
			}
			for _, d := range []*DB{cold, resident} {
				if err := d.WritePoints(pts); err != nil {
					t.Fatal(err)
				}
			}
			// Spill at a random cutoff inside the written range (and
			// sometimes past it, spilling everything sealed).
			cutoff := int64(rng.Intn(int(maxTs) + 2))
			if rng.Intn(3) == 0 {
				cutoff = math.MaxInt64
			}
			if _, err := cold.SpillCold(cutoff); err != nil {
				t.Fatal(err)
			}
			for _, agg := range aggs {
				stmt := fmt.Sprintf(`SELECT %s("Reading") FROM "Power" GROUP BY time(7m), "NodeId"`, agg)
				queriesEqual(t, cold, resident, stmt)
			}
		}
		if cs := cold.ColdStats(); cs.BlocksCold == 0 {
			t.Fatalf("trial %d never spilled: %+v", trial, cs)
		}
	}
}

// TestColdSaveFileInlines checks the portable export path: SaveFile of
// a database with spilled blocks inlines their payloads, so the file
// restores with no cold directory at all.
func TestColdSaveFileInlines(t *testing.T) {
	cold, resident := coldFixture(t, 2, 128)
	if _, err := cold.SpillCold(math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "export.mtsd")
	if err := cold.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cs := restored.ColdStats(); cs.Enabled || cs.BlocksCold != 0 {
		t.Fatalf("restored export references the cold tier: %+v", cs)
	}
	queriesEqual(t, restored, resident, `SELECT max("Reading") FROM "Power" GROUP BY time(5m), "NodeId"`)
}

// coldSegments lists the cold segment files under dir.
func coldSegments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, _, ok := parseColdName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	return names
}

// TestColdCheckpointReopen covers the durable path: a checkpoint
// snapshot stores cold blocks by file reference (v3), and recovery
// restores them still cold — the payloads are never re-read into
// memory — while queries stay bit-identical.
func TestColdCheckpointReopen(t *testing.T) {
	root := t.TempDir()
	walDir := filepath.Join(root, "wal")
	coldDir := filepath.Join(root, "cold")
	opts := Options{ShardDuration: 3600, BlockSize: 4, ColdDir: coldDir}
	db, _, err := OpenDurable(opts, WALOptions{Dir: walDir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		if err := db.WritePoint(coldPoint("n1", int64(i*60), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.SpillCold(math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	wantCold := db.ColdStats().BlocksCold
	if wantCold == 0 {
		t.Fatal("nothing spilled")
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	baseline, err := db.Query(`SELECT "Reading" FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}

	// Crash (abandon the handle) and recover next to the cold dir.
	db2, info, err := OpenDurable(opts, WALOptions{Dir: walDir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if !info.SnapshotLoaded {
		t.Fatalf("checkpoint snapshot not loaded: %+v", info)
	}
	cs := db2.ColdStats()
	if cs.BlocksCold != wantCold || cs.ResidentBlocks != 0 {
		t.Fatalf("recovery rehydrated cold blocks: %+v, want %d cold", cs, wantCold)
	}
	res, err := db2.Query(`SELECT "Reading" FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Series, baseline.Series) {
		t.Fatalf("recovered query diverges:\ngot:  %+v\nwant: %+v", res.Series, baseline.Series)
	}
	if res.Stats.BlocksFromDisk == 0 {
		t.Fatalf("recovered cold blocks never touched disk: %+v", res.Stats)
	}

	// Without the cold directory configured, the reference-bearing
	// snapshot must refuse to restore rather than silently drop data.
	if _, _, err := OpenDurable(Options{ShardDuration: 3600, BlockSize: 4},
		WALOptions{Dir: walDir, Policy: FsyncNever}); err == nil {
		t.Fatal("restore without ColdDir accepted a snapshot with cold references")
	}
}

// copyDir clones every regular file in src into dst.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestColdKillPointMatrix proves spill/checkpoint crash safety by
// truncating the cold segment file at every offset. Workload: batch A
// is spilled and checkpointed (the snapshot references A's frames);
// batch B is spilled afterwards (references memory-only, frames appended
// past A's). Any truncation at or past A's high-water mark must recover
// every point — B replays from the WAL, its orphaned frames are
// garbage. Any truncation below it must fail loudly at restore, never
// panic or return wrong data.
func TestColdKillPointMatrix(t *testing.T) {
	root := t.TempDir()
	walDir := filepath.Join(root, "wal")
	coldDir := filepath.Join(root, "cold")
	opts := Options{ShardDuration: 3600, BlockSize: 4, ColdDir: coldDir}
	db, _, err := OpenDurable(opts, WALOptions{Dir: walDir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const perBatch = 8
	for i := 0; i < perBatch; i++ {
		if err := db.WritePoint(coldPoint("n1", int64(i*60), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.SpillCold(math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	segs := coldSegments(t, coldDir)
	if len(segs) != 1 {
		t.Fatalf("want one segment file, have %v", segs)
	}
	segName := segs[0]
	st, err := os.Stat(filepath.Join(coldDir, segName))
	if err != nil {
		t.Fatal(err)
	}
	durableSize := st.Size() // frames the checkpoint below will reference
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := perBatch; i < 2*perBatch; i++ {
		if err := db.WritePoint(coldPoint("n1", int64(i*60), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.SpillCold(math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(coldDir, segName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) <= durableSize {
		t.Fatalf("batch B appended nothing: %d <= %d", len(data), durableSize)
	}

	stride := int64(1)
	if testing.Short() {
		stride = int64(len(data)) / 64
		if stride < 1 {
			stride = 1
		}
	}
	for off := int64(0); off <= int64(len(data)); off += stride {
		trial := filepath.Join(t.TempDir(), fmt.Sprintf("kill-%d", off))
		trialWAL := filepath.Join(trial, "wal")
		trialCold := filepath.Join(trial, "cold")
		copyDir(t, walDir, trialWAL)
		if err := os.MkdirAll(trialCold, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(trialCold, segName), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		trialOpts := opts
		trialOpts.ColdDir = trialCold
		rec, _, err := OpenDurable(trialOpts, WALOptions{Dir: trialWAL, Policy: FsyncNever})
		if off < durableSize {
			// A referenced frame is gone: recovery must say so.
			if err == nil {
				t.Fatalf("offset %d (< durable %d): recovery accepted a truncated segment", off, durableSize)
			}
			continue
		}
		if err != nil {
			t.Fatalf("offset %d (>= durable %d): recovery failed: %v", off, durableSize, err)
		}
		res, err := rec.Query(`SELECT count("Reading") FROM "Power"`)
		if err != nil {
			t.Fatalf("offset %d: query: %v", off, err)
		}
		if n := res.Series[0].Rows[0].Values[0].I; n != 2*perBatch {
			t.Fatalf("offset %d: count = %d, want %d", off, n, 2*perBatch)
		}
		// Recovery after recovery is stable: the first pass's orphan
		// sweep must keep every snapshot-referenced frame.
		rec2, _, err := OpenDurable(trialOpts, WALOptions{Dir: trialWAL, Policy: FsyncNever})
		if err != nil {
			t.Fatalf("offset %d: second recovery: %v", off, err)
		}
		if got := rec2.Disk().Points; got != rec.Disk().Points {
			t.Fatalf("offset %d: second recovery diverged: %d vs %d points", off, got, rec.Disk().Points)
		}
	}
}

// TestColdCompaction checks the garbage lifecycle: dropping most cold
// data makes its file mostly dead, compaction rewrites the survivors
// into a fresh generation, and the orphan sweep deletes the old file —
// with queries bit-identical throughout.
func TestColdCompaction(t *testing.T) {
	coldDir := t.TempDir()
	db := Open(Options{BlockSize: 8, ColdDir: coldDir, ShardDuration: 86400})
	resident := Open(Options{BlockSize: 8, ShardDuration: 86400})
	var pts []Point
	for i := 0; i < 64; i++ {
		pts = append(pts, coldPoint("n1", int64(i*60), float64(i)))
		// scratch carries two fields, so dropping it leaves clearly more
		// dead than live bytes in the segment file.
		pts = append(pts, Point{
			Measurement: "scratch",
			Tags:        Tags{{Key: "NodeId", Value: "n1"}},
			Fields: map[string]Value{
				"v": Float(float64(i) * 1.000001),
				"w": Float(float64(i) * 1.000003),
			},
			Time: int64(i * 60),
		})
	}
	for _, d := range []*DB{db, resident} {
		if err := d.WritePoints(pts); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.SpillCold(math.MaxInt64); err != nil {
		t.Fatal(err)
	}
	if ok, err := db.DropMeasurement("scratch"); !ok || err != nil {
		t.Fatalf("drop: ok=%t err=%v", ok, err)
	}
	if ok, err := resident.DropMeasurement("scratch"); !ok || err != nil {
		t.Fatalf("drop baseline: ok=%t err=%v", ok, err)
	}
	before := db.ColdStats()
	if before.BlocksCold == 0 {
		t.Fatalf("fixture has no cold blocks: %+v", before)
	}

	if err := db.compactCold(); err != nil {
		t.Fatal(err)
	}
	if cs := db.ColdStats(); cs.Compactions == 0 {
		t.Fatalf("mostly-dead file not compacted: %+v", cs)
	}
	// The live view now references only the fresh generation; the old
	// file is unreferenced garbage for the sweep.
	if err := db.cold.sweepOrphans(db.view.Load()); err != nil {
		t.Fatal(err)
	}
	after := db.ColdStats()
	if after.ReclaimedBytes == 0 || after.FileBytes >= before.FileBytes {
		t.Fatalf("sweep reclaimed nothing: before %+v after %+v", before, after)
	}
	if after.BlocksCold != before.BlocksCold {
		t.Fatalf("compaction lost blocks: %d -> %d", before.BlocksCold, after.BlocksCold)
	}
	queriesEqual(t, db, resident, `SELECT "Reading" FROM "Power"`)
	queriesEqual(t, db, resident, `SELECT sum("Reading") FROM "Power" GROUP BY time(7m)`)
}

// TestColdCorruptSegment flips and truncates segment bytes under live
// references: queries must fail with an explicit corruption error —
// never panic, never return data that passed no checksum.
func TestColdCorruptSegment(t *testing.T) {
	corrupt := func(t *testing.T, mutate func(db *DB, path string, data []byte)) error {
		t.Helper()
		coldDir := t.TempDir()
		db := Open(Options{BlockSize: 32, ColdDir: coldDir})
		var pts []Point
		for i := 0; i < 256; i++ {
			pts = append(pts, coldPoint("n1", int64(i*60), float64(i)))
		}
		if err := db.WritePoints(pts); err != nil {
			t.Fatal(err)
		}
		if _, err := db.SpillCold(math.MaxInt64); err != nil {
			t.Fatal(err)
		}
		segs := coldSegments(t, coldDir)
		if len(segs) != 1 {
			t.Fatalf("segments: %v", segs)
		}
		path := filepath.Join(coldDir, segs[0])
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mutate(db, path, data)
		_, err = db.Query(`SELECT count("Reading") FROM "Power"`)
		return err
	}
	// dropHandles closes the tier's cached file handles — what a process
	// restart does implicitly, forcing the next read to reopen the file.
	dropHandles := func(t *testing.T, db *DB) {
		t.Helper()
		db.cold.mu.Lock()
		defer db.cold.mu.Unlock()
		for name, cf := range db.cold.files {
			if err := cf.f.Close(); err != nil {
				t.Fatal(err)
			}
			delete(db.cold.files, name)
		}
		db.cold.appenders = make(map[int64]*coldFile)
	}

	t.Run("bitflip", func(t *testing.T) {
		err := corrupt(t, func(db *DB, path string, data []byte) {
			data[coldHeaderSize+coldFrameHeader+3] ^= 0x40 // inside the first payload
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
		})
		if err == nil || !strings.Contains(err.Error(), "corrupt") {
			t.Fatalf("bit-flipped payload: err = %v, want corruption error", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		err := corrupt(t, func(db *DB, path string, data []byte) {
			if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		})
		if err == nil {
			t.Fatal("truncated segment: query succeeded")
		}
	})
	t.Run("missing", func(t *testing.T) {
		err := corrupt(t, func(db *DB, path string, data []byte) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
			dropHandles(t, db)
		})
		if err == nil {
			t.Fatal("deleted segment: query succeeded")
		}
	})
}

// TestColdConcurrentScanSpillExpire races scans against spills and
// retention sweeps under a tiny decode-cache budget — the
// eviction/purge/read-through interleaving the race detector must
// bless. Scans tolerate shard drops mid-flight; what they must never
// do is crash, race, or return corrupt data.
func TestColdConcurrentScanSpillExpire(t *testing.T) {
	db := Open(Options{
		BlockSize:            16,
		ColdDir:              t.TempDir(),
		ShardDuration:        3600,
		DecodeCacheBytes:     8 * 1024,
		ColdMaxResidentBytes: 4 * 1024,
	})
	var pts []Point
	for n := 0; n < 4; n++ {
		for i := 0; i < 600; i++ {
			pts = append(pts, coldPoint(fmt.Sprintf("n%d", n), int64(i*60), float64(i)))
		}
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Query(`SELECT mean("Reading") FROM "Power" GROUP BY time(5m), "NodeId"`); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
			}
		}()
	}
	for round := 0; round < 20; round++ {
		if _, err := db.SpillCold(int64(round * 120)); err != nil {
			t.Fatal(err)
		}
		if round == 10 {
			if _, err := db.DeleteBefore(3600); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	if cs := db.CacheStats(); cs.ResidentBytes > 8*1024 {
		t.Fatalf("decode cache over budget after the storm: %+v", cs)
	}
}

// FuzzColdBlockRead feeds arbitrary bytes in as a segment file and
// reads a frame back through a coldRef: every outcome must be a clean
// payload or an error — never a panic, and never a payload that fails
// its own checksum.
func FuzzColdBlockRead(f *testing.F) {
	// Seed with a well-formed single-frame segment.
	ct := newColdTier(f.TempDir(), 0)
	payload := []byte("gorilla-compressed-bytes-stand-in")
	ref, err := ct.appendPayload(0, payload, false)
	if err != nil {
		f.Fatal(err)
	}
	if err := ct.syncAppenders(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(ct.dir, ref.file))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, ref.off, ref.length, ref.crc)
	f.Add(seed[:len(seed)-3], ref.off, ref.length, ref.crc) // torn tail
	f.Add([]byte{}, int64(coldHeaderSize+coldFrameHeader), uint32(1), uint32(0))

	f.Fuzz(func(t *testing.T, file []byte, off int64, length, crc uint32) {
		dir := t.TempDir()
		name := coldFileName(0, 0)
		if err := os.WriteFile(filepath.Join(dir, name), file, 0o644); err != nil {
			t.Skip()
		}
		// Bound the claimed length so a hostile value cannot force a
		// giant allocation; anything past EOF errors inside read.
		if int64(length) > int64(len(file))+coldFrameHeader {
			length = uint32(len(file)) + coldFrameHeader
		}
		tier := newColdTier(dir, 0)
		r := &coldRef{ct: tier, file: name, off: off, length: length, crc: crc}
		got, err := r.read()
		if err != nil {
			return
		}
		if uint32(len(got)) != length {
			t.Fatalf("read returned %d bytes, claimed %d", len(got), length)
		}
		// A successful read implies the checksum held; decoding must
		// then be panic-free (it may still reject the bytes).
		blk := &block{count: 1, data: got}
		_, _, _ = blk.decode(nil)
	})
}
