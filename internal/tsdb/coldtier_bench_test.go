package tsdb

import (
	"encoding/json"
	"math"
	"os"
	"sync"
	"testing"
)

// The bounded-footprint workload: the paper's long-horizon archive
// case the cold tier targets. A month of 60-second samples for a few
// nodes, sealed aggressively, then spilled until compressed resident
// bytes fit a budget ~10x smaller than the sealed set. Queries over
// the spilled range must read through the segment files and match a
// fully resident twin bit for bit.
const (
	benchColdNodes   = 4
	benchColdPerNode = 30 * 24 * 60 // 30d at 60s cadence
	benchColdBudget  = 64 * 1024    // compressed resident budget
	benchColdQuery   = `SELECT max("Reading") FROM "Power" WHERE time >= 0 AND time < 2592000 GROUP BY time(1h), "NodeId"`
)

var (
	benchColdOnce     sync.Once
	benchColdDB       *DB // spilled, budget-bounded
	benchColdResident *DB // identical data, never spilled
)

// benchColdPoints builds the deterministic workload; values vary deep
// in the mantissa so blocks carry real compressed weight.
func benchColdPoints() []Point {
	pts := make([]Point, 0, benchColdNodes*benchColdPerNode)
	for n := 0; n < benchColdNodes; n++ {
		node := Tags{{"NodeId", nodeName(n)}}
		for i := 0; i < benchColdPerNode; i++ {
			pts = append(pts, Point{
				Measurement: "Power",
				Tags:        node,
				Fields:      map[string]Value{"Reading": Float(float64(200+(i*7)%150) * 1.000001)},
				Time:        int64(i * 60),
			})
		}
	}
	return pts
}

// benchColdFixture builds (once) the spilled database and its fully
// resident twin. Tiny decode caches keep every timed scan honest:
// the cold engine re-reads from disk, the resident engine re-decodes
// from memory, so the ratio isolates the pread cost.
func benchColdFixture(tb testing.TB) (*DB, *DB) {
	benchColdOnce.Do(func() {
		dir, err := os.MkdirTemp("", "monster-bench-cold-")
		if err != nil {
			tb.Fatal(err)
		}
		cold := Open(Options{
			BlockSize:            128,
			PlannerOff:           true,
			DecodeCacheBytes:     32 * 1024,
			ColdDir:              dir,
			ColdMaxResidentBytes: benchColdBudget,
		})
		resident := Open(Options{
			BlockSize:        128,
			PlannerOff:       true,
			DecodeCacheBytes: 32 * 1024,
		})
		pts := benchColdPoints()
		if err := cold.WritePoints(pts); err != nil {
			tb.Fatal(err)
		}
		if err := resident.WritePoints(pts); err != nil {
			tb.Fatal(err)
		}
		// Age pass disabled (MinInt64 cutoff): the budget pass alone
		// spills oldest-first until compressed resident bytes fit.
		if _, err := cold.SpillCold(math.MinInt64); err != nil {
			tb.Fatal(err)
		}
		benchColdDB, benchColdResident = cold, resident
	})
	return benchColdDB, benchColdResident
}

// BenchmarkColdScan times the dashboard query reading through the
// cold tier (tiny decode cache: every pass pays pread + decode).
func BenchmarkColdScan(b *testing.B) {
	cold, _ := benchColdFixture(b)
	q, err := Parse(benchColdQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cold.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkResidentScan times the same query against the twin whose
// sealed blocks never left memory (every pass pays decode only).
func BenchmarkResidentScan(b *testing.B) {
	_, resident := benchColdFixture(b)
	q, err := Parse(benchColdQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := resident.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchColdTierJSON writes BENCH_coldtier.json when the BENCH_JSON
// env var names the output path (the `make bench-json` entry point).
// The acceptance gates live here: compressed resident bytes at or
// under the configured budget after the spill, and the cold-tier scan
// answering bit-identically to the fully resident twin. The cold/warm
// latency ratio is recorded (not gated — it is hardware-dependent).
func TestBenchColdTierJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("BENCH_JSON not set; artifact generation only")
	}

	cold, resident := benchColdFixture(t)
	cs := cold.ColdStats()
	if !cs.Enabled || cs.BlocksCold == 0 {
		t.Fatalf("fixture spilled nothing: %+v", cs)
	}
	if cs.ResidentBytes > cs.BudgetBytes {
		t.Errorf("compressed resident %d bytes over the %d budget", cs.ResidentBytes, cs.BudgetBytes)
	}

	coldRes, err := cold.Query(benchColdQuery)
	if err != nil {
		t.Fatal(err)
	}
	residentRes, err := resident.Query(benchColdQuery)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, coldRes, residentRes, "cold-tier dashboard")
	if coldRes.Stats.BlocksFromDisk == 0 {
		t.Error("cold scan read nothing from disk; gate is vacuous")
	}

	coldB := testing.Benchmark(BenchmarkColdScan)
	residentB := testing.Benchmark(BenchmarkResidentScan)
	ratio := float64(coldB.NsPerOp()) / float64(residentB.NsPerOp())

	out := map[string]any{
		"workload":              "bounded footprint: 30d of 60s samples, 4 nodes, budget-pass spill",
		"raw_points":            benchColdNodes * benchColdPerNode,
		"budget_bytes":          cs.BudgetBytes,
		"resident_bytes":        cs.ResidentBytes,
		"resident_blocks":       cs.ResidentBlocks,
		"blocks_cold":           cs.BlocksCold,
		"cold_bytes":            cs.ColdBytes,
		"cold_files":            cs.Files,
		"cold_file_bytes":       cs.FileBytes,
		"spills":                cs.Spills,
		"blocks_from_disk":      coldRes.Stats.BlocksFromDisk,
		"results_identical":     true, // sameResult above is fatal on any mismatch
		"query_ns_cold":         coldB.NsPerOp(),
		"query_ns_resident":     residentB.NsPerOp(),
		"cold_latency_ratio":    ratio,
		"resident_under_budget": cs.ResidentBytes <= cs.BudgetBytes,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %d/%d compressed bytes resident, %d blocks cold, cold scan %.2fx resident",
		path, cs.ResidentBytes, cs.BudgetBytes, cs.BlocksCold, ratio)
}
