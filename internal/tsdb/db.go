package tsdb

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"monster/internal/clock"
)

// DefaultShardDuration is the time width of one shard in seconds (one
// day, matching InfluxDB's default retention-policy shard group
// duration for short retention policies).
const DefaultShardDuration = 24 * 60 * 60

// Options configures a DB.
type Options struct {
	// ShardDuration is the shard width in seconds. Zero selects
	// DefaultShardDuration.
	ShardDuration int64

	// ExecWorkers bounds the worker pool Exec uses to scan and
	// aggregate series groups in parallel. Zero selects an automatic
	// bound (GOMAXPROCS, capped); 1 forces serial execution.
	ExecWorkers int

	// BlockSize is the seal threshold in points: when a column's raw
	// tail reaches this length, the write batch compresses full runs
	// into immutable Gorilla-encoded blocks (see block.go). Zero
	// selects DefaultBlockSize; negative disables sealing entirely
	// (every sample stays raw — the A/B baseline for the compression
	// benchmarks).
	BlockSize int

	// GlobalLock restores the pre-snapshot concurrency model for A/B
	// comparison: queries hold a read lock for their full duration and
	// each write batch takes the exclusive lock, so a collector flush
	// stalls every concurrent query. Used by BenchmarkMixedReadWrite
	// and the ext-contention experiment as the baseline.
	GlobalLock bool

	// DecodeCacheBytes bounds the total resident bytes of decoded
	// sealed-block payloads (the age-based retention tier for memory —
	// see cache.go). Zero selects a 64 MiB default; negative removes
	// the bound (the PR 5 keep-everything baseline for A/B runs).
	DecodeCacheBytes int64

	// PlannerOff disables the tier-aware query planner: every query
	// scans raw data even when a registered rollup could answer it.
	// The A/B escape hatch for the equivalence tests and benchmarks,
	// same pattern as GlobalLock/BlockSize.
	PlannerOff bool

	// Clock supplies time for contention accounting (write-wait and
	// query lock-wait measurements). Nil selects the wall clock; the
	// DES experiments inject a virtual clock so replayed runs stay
	// deterministic.
	Clock clock.Clock

	// ColdDir, when non-empty, enables the file-backed cold tier:
	// SpillCold moves sealed block payloads into CRC-framed segment
	// files under this directory and queries read them back on demand
	// (see coldtier.go). Empty keeps every sealed block resident.
	ColdDir string

	// ColdMaxResidentBytes bounds the compressed bytes of sealed
	// blocks kept in memory when the cold tier is enabled: SpillCold
	// spills oldest-first past the budget even before the age cutoff.
	// Zero or negative means age-based spilling only.
	ColdMaxResidentBytes int64
}

// DB is an in-process time-series database: a set of measurements, each
// holding tag-indexed series, stored in time-window shards.
//
// DB is safe for concurrent use. The entire database state lives in an
// immutable dbView published through an atomic pointer: readers load
// the current view and run lock-free against that consistent snapshot,
// so queries never block behind a write batch and always see a batch
// in its entirety or not at all. Mutators (WritePoints,
// DropMeasurement, DeleteBefore, Restore) serialize on writeMu and
// derive the next view copy-on-write (see view.go).
type DB struct {
	shardDuration int64
	execWorkers   int
	blockSize     int // resolved seal threshold; 0 = sealing disabled
	globalLock    bool
	plannerOff    bool
	clock         clock.Clock

	// cache charge-accounts decoded block payloads against one global
	// budget (see cache.go). Set once at Open, never nil.
	cache *decodeCache

	// cold is the file-backed segment tier sealed blocks spill into
	// (see coldtier.go). Nil unless Options.ColdDir is set; set once at
	// Open and never changed.
	cold *coldTier

	writeMu sync.Mutex
	view    atomic.Pointer[dbView]

	// rollups is the registry of engine-level rollup tiers the planner
	// and write-path maintenance consult (see rollup.go). Registration
	// swaps the pointer under writeMu; readers load it lock-free.
	rollups atomic.Pointer[rollupRegistry]

	// rollupWM caches each rollup target's maintenance watermark (first
	// unprocessed bucket start). Guarded by writeMu; purely an
	// optimization — when a target is absent the watermark is inferred
	// from the published view, which is also how recovery resumes.
	rollupWM map[string]int64

	// wal, when non-nil, receives every mutation before it applies —
	// the durability layer OpenDurable attaches (see wal.go). It is set
	// once before the DB is shared and never changes.
	wal *WAL

	// legacyMu reproduces the old global-RWMutex serialization when
	// Options.GlobalLock is set; otherwise it is never touched.
	legacyMu sync.RWMutex
}

type measurementIndex struct {
	byTag  map[string]map[string][]string // tag key -> value -> series keys
	series map[string]Tags                // series key -> sorted tags
	fields map[string]ValueKind           // field key -> first-seen kind
}

// DBStats aggregates engine-wide counters.
type DBStats struct {
	PointsWritten  int64
	BatchesWritten int64
	SeriesCreated  int64
	Measurements   int
	// WriteWaitNs is cumulative time writers spent waiting to acquire
	// the write path (the store-side contention signal mirrored into
	// collector.Stats and /v1/stats).
	WriteWaitNs int64
	// BlocksSealed counts columns runs compressed into immutable
	// blocks since open (restored snapshots carry the counter over).
	BlocksSealed int64
}

// Open creates an empty DB.
func Open(opts Options) *DB {
	sd := opts.ShardDuration
	if sd <= 0 {
		sd = DefaultShardDuration
	}
	bs := opts.BlockSize
	switch {
	case bs == 0:
		bs = DefaultBlockSize
	case bs < 0:
		bs = 0 // sealing disabled
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	budget := opts.DecodeCacheBytes
	switch {
	case budget == 0:
		budget = defaultDecodeCacheBytes
	case budget < 0:
		budget = -1 // unlimited, accounting stays on
	}
	db := &DB{
		shardDuration: sd,
		execWorkers:   opts.ExecWorkers,
		blockSize:     bs,
		globalLock:    opts.GlobalLock,
		plannerOff:    opts.PlannerOff,
		clock:         clk,
		cache:         newDecodeCache(budget),
		rollupWM:      make(map[string]int64),
	}
	if opts.ColdDir != "" {
		// Directory creation is deferred to the first spill (and
		// latched): Open cannot return an error, and a read-only
		// restore should not need write access.
		db.cold = newColdTier(opts.ColdDir, opts.ColdMaxResidentBytes)
	}
	db.view.Store(&dbView{
		shards: make(map[int64]*shard),
		index:  make(map[string]*measurementIndex),
	})
	return db
}

// acquireView pins the current snapshot for a reader. In the default
// mode this is a single atomic load; in GlobalLock mode it additionally
// takes the legacy read lock, which the reader must hold for its full
// duration (releaseView drops it).
func (db *DB) acquireView() *dbView {
	if db.globalLock {
		db.legacyMu.RLock()
	}
	return db.view.Load()
}

func (db *DB) releaseView() {
	if db.globalLock {
		db.legacyMu.RUnlock()
	}
}

// lockWrite serializes a mutator and reports how long it waited.
func (db *DB) lockWrite() time.Duration {
	t0 := db.clock.Now()
	if db.globalLock {
		db.legacyMu.Lock()
	}
	db.writeMu.Lock()
	return db.clock.Now().Sub(t0)
}

func (db *DB) unlockWrite() {
	db.writeMu.Unlock()
	if db.globalLock {
		db.legacyMu.Unlock()
	}
}

// publish installs the next view. Callers must hold writeMu.
func (db *DB) publish(v *dbView) { db.view.Store(v) }

// WritePoints stores a batch of points. The batch is validated first;
// on error nothing is written. Tag sets are canonicalized (sorted) on
// ingest. Concurrent queries keep running against the previous snapshot
// and switch to the new one atomically when the batch publishes.
//
// On a durable DB (OpenDurable) the batch — including any rollup
// maintenance it triggered — is appended to the write-ahead log before
// it publishes; a log failure rejects the write so an acknowledged
// batch is always recoverable.
func (db *DB) WritePoints(points []Point) error {
	for i := range points {
		if err := points[i].Validate(); err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
	}
	wait := db.lockWrite()
	defer db.unlockWrite()
	b := newBatch(db.view.Load(), db.shardDuration, db.blockSize)
	for i := range points {
		p := &points[i]
		sorted := p.Tags.Sorted()
		key := seriesKey(p.Measurement, sorted)
		b.indexSeries(p, key, sorted)
		b.writePoint(p, key, sorted)
	}
	nv := b.finish(len(points) > 0, wait.Nanoseconds())
	nv, ops, wms, err := db.rollupMaintain(nv, points)
	if err != nil {
		return err
	}
	if db.wal != nil && len(points) > 0 {
		// A plain batch keeps the PR 4 record format so existing logs
		// and kill-point fixtures stay byte-identical; maintenance work
		// rides in one composite record so a crash can never tear a raw
		// write from the rollup rows it produced.
		var rec []byte
		if len(ops) == 0 {
			rec = encodeWriteRecord(points)
		} else {
			rec = encodeBatchRecord(points, ops)
		}
		if err := db.wal.append(rec); err != nil {
			return err
		}
	}
	for target, wm := range wms {
		db.rollupWM[target] = wm
	}
	db.publish(nv)
	return nil
}

// Epoch reports the DB's mutation epoch: a counter bumped by every
// write batch, measurement drop, and retention sweep that changes
// stored data. A response cached at epoch E is stale iff Epoch() != E.
func (db *DB) Epoch() int64 {
	v := db.acquireView()
	defer db.releaseView()
	return v.epoch
}

// WritePoint stores a single point.
func (db *DB) WritePoint(p Point) error { return db.WritePoints([]Point{p}) }

// mod is a floored modulo that behaves for negative timestamps.
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// Measurements lists measurement names in sorted order.
func (db *DB) Measurements() []string {
	v := db.acquireView()
	defer db.releaseView()
	out := make([]string, 0, len(v.index))
	for m := range v.index {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// SeriesCardinality reports the number of distinct series in a
// measurement ("" for the whole DB). Query cost scales with this
// number — the property the paper's schema redesign attacks.
func (db *DB) SeriesCardinality(measurement string) int {
	v := db.acquireView()
	defer db.releaseView()
	if measurement != "" {
		if mi, ok := v.index[measurement]; ok {
			return len(mi.series)
		}
		return 0
	}
	n := 0
	for _, mi := range v.index {
		n += len(mi.series)
	}
	return n
}

// TagValues lists the distinct values of a tag key within a
// measurement, sorted.
func (db *DB) TagValues(measurement, tagKey string) []string {
	v := db.acquireView()
	defer db.releaseView()
	mi, ok := v.index[measurement]
	if !ok {
		return nil
	}
	vals, ok := mi.byTag[tagKey]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(vals))
	for val := range vals {
		out = append(out, val)
	}
	sort.Strings(out)
	return out
}

// FieldKinds reports the field keys and first-seen kinds of a
// measurement.
func (db *DB) FieldKinds(measurement string) map[string]ValueKind {
	v := db.acquireView()
	defer db.releaseView()
	mi, ok := v.index[measurement]
	if !ok {
		return nil
	}
	out := make(map[string]ValueKind, len(mi.fields))
	for k, kind := range mi.fields {
		out[k] = kind
	}
	return out
}

// Stats returns engine-wide counters.
func (db *DB) Stats() DBStats {
	v := db.acquireView()
	defer db.releaseView()
	return v.stats
}

// DiskStats aggregates per-shard size accounting.
type DiskStats struct {
	Shards     int
	Points     int64
	DataBytes  int64
	IndexBytes int64
}

// TotalBytes is data plus index bytes.
func (d DiskStats) TotalBytes() int64 { return d.DataBytes + d.IndexBytes }

// Disk reports the engine's encoded data volume. Volumes are exact
// encoded sizes of the stored points, the quantity compared in Fig 13.
func (db *DB) Disk() DiskStats {
	v := db.acquireView()
	defer db.releaseView()
	var d DiskStats
	d.Shards = len(v.shards)
	for _, sh := range v.shards {
		d.Points += sh.points
		d.DataBytes += sh.bytes
		d.IndexBytes += int64(sh.keyBytes)
	}
	return d
}

// CompressionStats reports the sealed-block tier's effect on stored
// data volume, computed against the current view. BytesRaw is the
// canonical encoded size of every live sample (what the engine stored
// before the block tier existed); BytesCompressed is what the sealed
// representation actually occupies — block payloads plus headers plus
// the raw hot tail.
type CompressionStats struct {
	BlocksSealed    int64 // cumulative seals since open (DBStats counter)
	Blocks          int64 // sealed blocks currently live
	BlocksCached    int64 // live blocks holding a decoded payload cache
	BlocksCold      int64 // live blocks whose compressed payload lives on disk
	SealedPoints    int64 // samples inside sealed blocks
	TailPoints      int64 // samples in raw hot tails
	BytesRaw        int64
	BytesCompressed int64
}

// Ratio is the raw-to-compressed volume quotient (1 when nothing is
// sealed yet).
func (c CompressionStats) Ratio() float64 {
	if c.BytesCompressed == 0 {
		return 1
	}
	return float64(c.BytesRaw) / float64(c.BytesCompressed)
}

// Compression walks the current view and totals the block tier's
// accounting — the numbers behind /v1/stats' storage_bytes_raw /
// storage_bytes_compressed / compression_ratio fields.
func (db *DB) Compression() CompressionStats {
	v := db.acquireView()
	defer db.releaseView()
	cs := CompressionStats{BlocksSealed: v.stats.BlocksSealed}
	for _, sh := range v.shards {
		for _, sr := range sh.series {
			for _, col := range sr.fields {
				for _, blk := range col.blocks {
					cs.Blocks++
					cs.SealedPoints += int64(blk.count)
					cs.BytesRaw += blk.rawBytes
					// Cold payloads still count: BytesCompressed is the
					// sealed representation's storage volume wherever it
					// lives; the memory split is ColdStats' job.
					cs.BytesCompressed += int64(blk.compressedLen()) + blockHeaderBytes
					if blk.cold != nil {
						cs.BlocksCold++
					}
					if blk.cache.Load() != nil {
						cs.BlocksCached++
					}
				}
				for i := range col.times {
					sz := 8 + int64(col.vals[i].EncodedSize())
					cs.TailPoints++
					cs.BytesRaw += sz
					cs.BytesCompressed += sz
				}
			}
		}
	}
	return cs
}

// ShardStats lists per-shard statistics in time order.
func (db *DB) ShardStats() []ShardStats {
	v := db.acquireView()
	defer db.releaseView()
	out := make([]ShardStats, 0, len(v.shardStarts))
	for _, s := range v.shardStarts {
		out = append(out, v.shards[s].stats())
	}
	return out
}

// DropMeasurement removes a measurement: its index entries and all its
// stored series data. It reports whether the measurement existed. On a
// durable DB the drop is write-ahead logged before it applies; a log
// failure leaves the measurement in place.
func (db *DB) DropMeasurement(name string) (bool, error) {
	wait := db.lockWrite()
	defer db.unlockWrite()
	nv := dropMeasurementView(db.view.Load(), name, wait.Nanoseconds())
	if nv == nil {
		return false, nil
	}
	if db.wal != nil {
		if err := db.wal.append(encodeDropRecord(name)); err != nil {
			return false, err
		}
	}
	db.publish(nv)
	db.cache.purgeDead(nv)
	return true, nil
}

// DeleteBefore drops whole shards whose window ends at or before t
// (retention enforcement). It reports the number of shards dropped.
// Series index entries are retained (matching InfluxDB, where the
// in-memory index survives shard drops until a restart). On a durable
// DB the sweep is write-ahead logged before it applies.
func (db *DB) DeleteBefore(t int64) (int, error) {
	wait := db.lockWrite()
	defer db.unlockWrite()
	nv, dropped := deleteBeforeView(db.view.Load(), t, wait.Nanoseconds())
	if nv == nil {
		return 0, nil
	}
	if db.wal != nil {
		if err := db.wal.append(encodeDeleteBeforeRecord(t)); err != nil {
			return 0, err
		}
	}
	db.publish(nv)
	db.cache.purgeDead(nv)
	return dropped, nil
}

// DeleteMeasurementBefore removes one measurement's samples with
// time < t, reporting how many points were deleted. Unlike the
// shard-granular DeleteBefore, this surgically rewrites overlapping
// columns — the raw-tier expiry path, where raw data ages out while
// its covering rollup measurements (and unrelated raw measurements in
// the same shards) stay. On a durable DB the clear is write-ahead
// logged before it applies.
func (db *DB) DeleteMeasurementBefore(name string, t int64) (int64, error) {
	wait := db.lockWrite()
	defer db.unlockWrite()
	nv, removed := clearMeasurementRangeView(db.view.Load(), name, minInt64, t, db.blockSize, wait.Nanoseconds())
	if nv == nil {
		return 0, nil
	}
	if db.wal != nil {
		if err := db.wal.append(encodeClearRangeRecord(name, minInt64, t)); err != nil {
			return 0, err
		}
	}
	db.publish(nv)
	db.cache.purgeDead(nv)
	return removed, nil
}

// ExpireRaw ages out raw-tier data that a registered rollup already
// covers: for every rollup source measurement, samples older than
// min(cutoff, every covering rollup's watermark) are deleted. The
// watermark bound guarantees a bucket is never expired before each of
// its rollups materialized it, so coarse dashboard queries keep exact
// answers while the raw tier shrinks to the configured horizon. It
// reports total points removed.
func (db *DB) ExpireRaw(cutoff int64) (int64, error) {
	reg := db.rollups.Load()
	if reg == nil {
		return 0, nil
	}
	// Collect the safe cutoff per root source: bounded by the least
	// advanced rollup materialized from it (directly or via a chain).
	safe := make(map[string]int64)
	for _, cr := range reg.specs {
		c, ok := safe[cr.root]
		if !ok {
			c = cutoff
		}
		db.lockWrite()
		wm, okWM := db.rollupWM[cr.target]
		if !okWM {
			wm, okWM = inferWatermark(db.view.Load(), cr)
		}
		db.unlockWrite()
		if !okWM {
			wm = minInt64 // nothing materialized yet: nothing expires
		}
		if wm < c {
			c = wm
		}
		safe[cr.root] = c
	}
	var total int64
	for source, c := range safe {
		if c <= minInt64 {
			continue
		}
		n, err := db.DeleteMeasurementBefore(source, c)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
