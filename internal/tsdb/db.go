package tsdb

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultShardDuration is the time width of one shard in seconds (one
// day, matching InfluxDB's default retention-policy shard group
// duration for short retention policies).
const DefaultShardDuration = 24 * 60 * 60

// Options configures a DB.
type Options struct {
	// ShardDuration is the shard width in seconds. Zero selects
	// DefaultShardDuration.
	ShardDuration int64
}

// DB is an in-process time-series database: a set of measurements, each
// holding tag-indexed series, stored in time-window shards.
//
// DB is safe for concurrent use. Writes take the write lock briefly per
// batch; queries run under the read lock and may proceed concurrently
// with each other (the concurrency the Metrics Builder exploits in the
// Fig 15 experiment).
type DB struct {
	mu            sync.RWMutex
	shardDuration int64
	shards        map[int64]*shard // keyed by start time
	shardStarts   []int64          // sorted
	// index: measurement -> tag key -> tag value -> set of series keys
	index map[string]*measurementIndex
	stats DBStats
	// epoch counts mutations (write batches, drops, retention). Caches
	// layered above the DB — the Metrics Builder's LRU response cache —
	// compare epochs to invalidate without inspecting data.
	epoch int64
}

type measurementIndex struct {
	byTag  map[string]map[string][]string // tag key -> value -> series keys
	series map[string]Tags                // series key -> sorted tags
	fields map[string]ValueKind           // field key -> first-seen kind
}

// DBStats aggregates engine-wide counters.
type DBStats struct {
	PointsWritten  int64
	BatchesWritten int64
	SeriesCreated  int64
	Measurements   int
}

// Open creates an empty DB.
func Open(opts Options) *DB {
	sd := opts.ShardDuration
	if sd <= 0 {
		sd = DefaultShardDuration
	}
	return &DB{
		shardDuration: sd,
		shards:        make(map[int64]*shard),
		index:         make(map[string]*measurementIndex),
	}
}

// WritePoints stores a batch of points. The batch is validated first;
// on error nothing is written. Tag sets are canonicalized (sorted) on
// ingest.
func (db *DB) WritePoints(points []Point) error {
	for i := range points {
		if err := points[i].Validate(); err != nil {
			return fmt.Errorf("point %d: %w", i, err)
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	for i := range points {
		p := &points[i]
		sorted := p.Tags.Sorted()
		key := seriesKey(p.Measurement, sorted)
		db.indexSeriesLocked(p, key, sorted)
		sh := db.shardForLocked(p.Time)
		sh.write(p, key, sorted)
		db.stats.PointsWritten++
	}
	db.stats.BatchesWritten++
	if len(points) > 0 {
		db.epoch++
	}
	return nil
}

// Epoch reports the DB's mutation epoch: a counter bumped by every
// write batch, measurement drop, and retention sweep that changes
// stored data. A response cached at epoch E is stale iff Epoch() != E.
func (db *DB) Epoch() int64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.epoch
}

// WritePoint stores a single point.
func (db *DB) WritePoint(p Point) error { return db.WritePoints([]Point{p}) }

func (db *DB) indexSeriesLocked(p *Point, key string, sorted Tags) {
	mi, ok := db.index[p.Measurement]
	if !ok {
		mi = &measurementIndex{
			byTag:  make(map[string]map[string][]string),
			series: make(map[string]Tags),
			fields: make(map[string]ValueKind),
		}
		db.index[p.Measurement] = mi
		db.stats.Measurements++
	}
	for fk, fv := range p.Fields {
		if _, seen := mi.fields[fk]; !seen {
			mi.fields[fk] = fv.Kind
		}
	}
	if _, ok := mi.series[key]; ok {
		return
	}
	mi.series[key] = sorted
	db.stats.SeriesCreated++
	for _, t := range sorted {
		vals, ok := mi.byTag[t.Key]
		if !ok {
			vals = make(map[string][]string)
			mi.byTag[t.Key] = vals
		}
		vals[t.Value] = append(vals[t.Value], key)
	}
}

func (db *DB) shardForLocked(ts int64) *shard {
	start := ts - mod(ts, db.shardDuration)
	sh, ok := db.shards[start]
	if !ok {
		sh = newShard(start, start+db.shardDuration)
		db.shards[start] = sh
		db.shardStarts = append(db.shardStarts, start)
		sort.Slice(db.shardStarts, func(i, j int) bool { return db.shardStarts[i] < db.shardStarts[j] })
	}
	return sh
}

// mod is a floored modulo that behaves for negative timestamps.
func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// shardsOverlapping returns shards intersecting [start, end), in time
// order. Callers must hold at least the read lock.
func (db *DB) shardsOverlappingLocked(start, end int64) []*shard {
	var out []*shard
	for _, s := range db.shardStarts {
		sh := db.shards[s]
		if sh.end <= start || sh.start >= end {
			continue
		}
		out = append(out, sh)
	}
	return out
}

// Measurements lists measurement names in sorted order.
func (db *DB) Measurements() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.index))
	for m := range db.index {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// SeriesCardinality reports the number of distinct series in a
// measurement ("" for the whole DB). Query cost scales with this
// number — the property the paper's schema redesign attacks.
func (db *DB) SeriesCardinality(measurement string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if measurement != "" {
		if mi, ok := db.index[measurement]; ok {
			return len(mi.series)
		}
		return 0
	}
	n := 0
	for _, mi := range db.index {
		n += len(mi.series)
	}
	return n
}

// TagValues lists the distinct values of a tag key within a
// measurement, sorted.
func (db *DB) TagValues(measurement, tagKey string) []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	mi, ok := db.index[measurement]
	if !ok {
		return nil
	}
	vals, ok := mi.byTag[tagKey]
	if !ok {
		return nil
	}
	out := make([]string, 0, len(vals))
	for v := range vals {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// FieldKinds reports the field keys and first-seen kinds of a
// measurement.
func (db *DB) FieldKinds(measurement string) map[string]ValueKind {
	db.mu.RLock()
	defer db.mu.RUnlock()
	mi, ok := db.index[measurement]
	if !ok {
		return nil
	}
	out := make(map[string]ValueKind, len(mi.fields))
	for k, v := range mi.fields {
		out[k] = v
	}
	return out
}

// Stats returns engine-wide counters.
func (db *DB) Stats() DBStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.stats
}

// DiskStats aggregates per-shard size accounting.
type DiskStats struct {
	Shards     int
	Points     int64
	DataBytes  int64
	IndexBytes int64
}

// TotalBytes is data plus index bytes.
func (d DiskStats) TotalBytes() int64 { return d.DataBytes + d.IndexBytes }

// Disk reports the engine's encoded data volume. Volumes are exact
// encoded sizes of the stored points, the quantity compared in Fig 13.
func (db *DB) Disk() DiskStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var d DiskStats
	d.Shards = len(db.shards)
	for _, sh := range db.shards {
		d.Points += sh.points
		d.DataBytes += sh.bytes
		d.IndexBytes += int64(sh.keyBytes)
	}
	return d
}

// ShardStats lists per-shard statistics in time order.
func (db *DB) ShardStats() []ShardStats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]ShardStats, 0, len(db.shardStarts))
	for _, s := range db.shardStarts {
		out = append(out, db.shards[s].stats())
	}
	return out
}

// DropMeasurement removes a measurement: its index entries and all its
// stored series data. It reports whether the measurement existed.
func (db *DB) DropMeasurement(name string) bool {
	db.mu.Lock()
	defer db.mu.Unlock()
	mi, ok := db.index[name]
	if !ok {
		return false
	}
	for key := range mi.series {
		for _, start := range db.shardStarts {
			sh := db.shards[start]
			if sr, ok := sh.series[key]; ok {
				sh.points -= int64(sr.points())
				sh.bytes -= int64(sr.bytes)
				sh.keyBytes -= len(key) + 8
				delete(sh.series, key)
			}
		}
	}
	delete(db.index, name)
	db.stats.Measurements--
	db.epoch++
	return true
}

// DeleteBefore drops whole shards whose window ends at or before t
// (retention enforcement). It reports the number of shards dropped.
// Series index entries are retained (matching InfluxDB, where the
// in-memory index survives shard drops until a restart).
func (db *DB) DeleteBefore(t int64) int {
	db.mu.Lock()
	defer db.mu.Unlock()
	dropped := 0
	keep := db.shardStarts[:0]
	for _, s := range db.shardStarts {
		if db.shards[s].end <= t {
			delete(db.shards, s)
			dropped++
		} else {
			keep = append(keep, s)
		}
	}
	db.shardStarts = keep
	if dropped > 0 {
		db.epoch++
	}
	return dropped
}
