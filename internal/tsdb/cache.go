package tsdb

import (
	"sync"
	"sync/atomic"
)

// Global decode-cache budget: age-based retention for decoded block
// payloads.
//
// PR 5's per-block memoization (block.cache) made warm scans ~1.0x raw
// speed, but every block a query ever touched stayed decoded forever —
// a month-long cold scan left the whole database resident at raw size.
// The decodeCache charges every cached payload against one global
// budget (Options.DecodeCacheBytes) and evicts cold payloads with a
// CLOCK second-chance sweep, so resident decoded bytes stay bounded
// while the hot working set keeps its pointer-load fast path.
//
// The hit path stays lock-free: a cached read is still a single
// atomic.Pointer load on the block plus setting the payload's ref bit.
// Only misses (decode + admit) and evictions take the cache mutex.

// defaultDecodeCacheBytes is the budget when Options.DecodeCacheBytes
// is zero: 64 MiB holds ~1.2M decoded points — a day of minutely
// telemetry for a few hundred nodes.
const defaultDecodeCacheBytes = 64 << 20

// cachedPointBytes is the accounting charge per decoded point: an
// int64 timestamp plus one Value struct (kind + float + int + string
// header + bool, padded). Slice headers and allocator slack are not
// counted; string payloads in mixed blocks are charged at header size
// only. The budget is a working-set bound, not an allocator audit.
const cachedPointBytes = 8 + 48

// cacheEntry tracks one admitted payload for the CLOCK sweep.
type cacheEntry struct {
	blk   *block
	p     *blockPayload
	bytes int64
}

// decodeCache is the global charge-accounted registry of decoded block
// payloads. Eviction is CLOCK second-chance: the hand sweeps the ring,
// clearing ref bits set by hits and evicting the first unreferenced
// entry, so anything touched since the last sweep survives one round.
type decodeCache struct {
	budget int64 // max resident payload bytes; <0 = unlimited

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	purges    atomic.Int64
	resident  atomic.Int64

	mu      sync.Mutex
	entries map[*block]*cacheEntry
	ring    []*cacheEntry
	hand    int
}

// newDecodeCache builds a cache with the given budget (<0 unlimited).
func newDecodeCache(budget int64) *decodeCache {
	return &decodeCache{budget: budget, entries: make(map[*block]*cacheEntry)}
}

// hit records a lock-free cache hit: mark the payload recently used.
func (c *decodeCache) hit(p *blockPayload) {
	c.hits.Add(1)
	if !p.ref.Load() {
		p.ref.Store(true)
	}
}

// admit registers a freshly decoded payload and evicts until the
// budget holds. Racing decoders of the same block dedup on the entries
// map: the loser converges the block's decode memo back onto the
// winner's accounted payload (dropping its own duplicate), counts no
// miss, and still runs the eviction sweep — the sweep must run on
// every admit path, because a racing eviction of the winner can leave
// the budget violated at exactly the moment the loser arrives.
func (c *decodeCache) admit(blk *block, p *blockPayload) {
	bytes := int64(blk.count) * cachedPointBytes
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[blk]; ok {
		blk.cache.Store(e.p)
		e.p.ref.Store(true)
	} else {
		c.misses.Add(1)
		e := &cacheEntry{blk: blk, p: p, bytes: bytes}
		c.entries[blk] = e
		c.ring = append(c.ring, e)
		c.resident.Add(bytes)
	}
	if c.budget < 0 {
		return
	}
	// CLOCK sweep: each pass either clears a ref bit or evicts, so the
	// loop terminates — in the worst case by evicting everything,
	// including the entry just admitted when it alone exceeds budget.
	for c.resident.Load() > c.budget && len(c.ring) > 0 {
		if c.hand >= len(c.ring) {
			c.hand = 0
		}
		victim := c.ring[c.hand]
		if victim.p.ref.Load() {
			victim.p.ref.Store(false)
			c.hand++
			continue
		}
		c.evictLocked(c.hand)
	}
}

// evictLocked drops ring[i]: the block's decode memo is cleared so the
// next scan re-decodes (and re-admits). In-flight readers holding the
// payload pointer keep it alive until they finish; eviction only
// severs the block's reference.
func (c *decodeCache) evictLocked(i int) {
	c.removeLocked(i)
	c.evictions.Add(1)
}

// removeLocked is the shared removal core for eviction and purge.
func (c *decodeCache) removeLocked(i int) {
	victim := c.ring[i]
	victim.blk.cache.Store(nil)
	delete(c.entries, victim.blk)
	last := len(c.ring) - 1
	c.ring[i] = c.ring[last]
	c.ring[last] = nil
	c.ring = c.ring[:last]
	c.resident.Add(-victim.bytes)
}

// purgeDead removes cache entries whose block is no longer reachable
// from v. Drop, expiry, and spill paths call this after publishing the
// shrunken view: without it, deleted blocks pin their payloads in
// entries/ring forever and keep charging resident against the budget —
// and since eviction only runs inside admit, a quiet database never
// reclaims them while CLOCK pressure evicts live blocks first.
//
// A scan still running against an older view can re-decode and
// re-admit a just-purged block; that readmission is bounded by the
// budget sweep and dies on the next purge, so it is tolerated rather
// than locked out.
func (c *decodeCache) purgeDead(v *dbView) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.entries) == 0 {
		return
	}
	live := make(map[*block]struct{}, len(c.entries))
	for _, sh := range v.shards {
		for _, sr := range sh.series {
			for _, col := range sr.fields {
				for _, blk := range col.blocks {
					if _, ok := c.entries[blk]; ok {
						live[blk] = struct{}{}
					}
				}
			}
		}
	}
	for i := 0; i < len(c.ring); {
		if _, ok := live[c.ring[i].blk]; ok {
			i++
			continue
		}
		c.removeLocked(i) // swap-removal refills i; do not advance
		c.purges.Add(1)
	}
}

// CacheStats is a point-in-time snapshot of the decode cache
// (DB.CacheStats): how the bounded cold-block cache is performing.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Purges        int64 `json:"purges"` // entries dropped because their block was deleted
	ResidentBytes int64 `json:"resident_bytes"`
	BudgetBytes   int64 `json:"budget_bytes"` // <0 = unlimited
	Entries       int   `json:"entries"`
}

// CacheStats reports the decode cache's counters.
func (db *DB) CacheStats() CacheStats {
	c := db.cache
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	n := len(c.entries)
	c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Evictions:     c.evictions.Load(),
		Purges:        c.purges.Load(),
		ResidentBytes: c.resident.Load(),
		BudgetBytes:   c.budget,
		Entries:       n,
	}
}
