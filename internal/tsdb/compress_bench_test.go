package tsdb

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
)

// benchSeriesStart mirrors bench_test.go's workload epoch
// (2020-04-20T12:00:00Z): one reading per node per minute.
const benchSeriesStart = 1587384000

// benchColumn builds one monotonic HPC column: minute cadence, a power
// reading oscillating in a narrow band — the shape the collector
// produces for every node.
func benchColumn(n int) ([]int64, []Value) {
	times := make([]int64, n)
	vals := make([]Value, n)
	for i := 0; i < n; i++ {
		times[i] = benchSeriesStart + int64(i*60)
		vals[i] = Float(200 + float64(i%50))
	}
	return times, vals
}

// BenchmarkBlockEncode seals DefaultBlockSize-point columns and
// reports the two numbers that matter: ns per point and bytes per
// point on the monotonic workload.
func BenchmarkBlockEncode(b *testing.B) {
	times, vals := benchColumn(DefaultBlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	var bytesOut int64
	for i := 0; i < b.N; i++ {
		blk := sealBlock(times, vals)
		bytesOut += int64(len(blk.data))
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*DefaultBlockSize), "ns/point")
	b.ReportMetric(float64(bytesOut)/float64(int64(b.N)*DefaultBlockSize), "bytes/point")
}

// BenchmarkBlockDecode measures the cold-decode path (the cache is
// deliberately bypassed — a cached decode is a pointer load).
func BenchmarkBlockDecode(b *testing.B) {
	times, vals := benchColumn(DefaultBlockSize)
	blk := sealBlock(times, vals)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := decodeBlockData(blk.data); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*DefaultBlockSize), "ns/point")
}

// benchScanDB loads nodes*perNode points with the given seal threshold.
func benchScanDB(b *testing.B, blockSize, nodes, perNode int) *DB {
	b.Helper()
	db := Open(Options{ShardDuration: 86400 * 30, BlockSize: blockSize})
	pts := make([]Point, 0, nodes*perNode)
	for n := 0; n < nodes; n++ {
		node := fmt.Sprintf("10.101.1.%d", n)
		for i := 0; i < perNode; i++ {
			pts = append(pts, Point{
				Measurement: "Power",
				Tags:        Tags{{Key: "Label", Value: "NodePower"}, {Key: "NodeId", Value: node}},
				Fields:      map[string]Value{"Reading": Float(200 + float64((n+i)%50))},
				Time:        benchSeriesStart + int64(i*60),
			})
		}
	}
	if err := db.WritePoints(pts); err != nil {
		b.Fatal(err)
	}
	return db
}

// benchScan runs the paper's Section III-D aggregate over the whole
// range; the query decodes (then reuses) every sealed block.
func benchScan(b *testing.B, db *DB) {
	b.Helper()
	q, err := Parse(`SELECT max("Reading") FROM "Power" GROUP BY time(5m), "NodeId"`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Exec(q)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Series) == 0 {
			b.Fatal("empty result")
		}
	}
}

// BenchmarkCompressedScan compares warm scans over sealed blocks
// against the raw-slice engine (BlockSize < 0). The acceptance target
// is sealed <= 1.3x raw.
func BenchmarkCompressedScan(b *testing.B) {
	const nodes, perNode = 16, 4096
	b.Run("sealed", func(b *testing.B) { benchScan(b, benchScanDB(b, DefaultBlockSize, nodes, perNode)) })
	b.Run("raw", func(b *testing.B) { benchScan(b, benchScanDB(b, -1, nodes, perNode)) })
	b.Run("sealed-cold", func(b *testing.B) {
		// Cold decode on every iteration: rebuild the DB so no block
		// cache survives. Reported for honesty; the warm number above is
		// the steady-state cost.
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			db := benchScanDB(b, DefaultBlockSize, nodes, 1024)
			b.StartTimer()
			q, _ := Parse(`SELECT max("Reading") FROM "Power" GROUP BY time(5m), "NodeId"`)
			if _, err := db.Exec(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// TestBenchJSON writes BENCH_compression.json when the BENCH_JSON env
// var names the output path (the `make bench-json` entry point). It
// runs the compression benchmarks via testing.Benchmark so the numbers
// in the artifact are the same ones `go test -bench` prints.
func TestBenchJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("BENCH_JSON not set; artifact generation only")
	}

	times, vals := benchColumn(DefaultBlockSize)
	blk := sealBlock(times, vals)
	bytesPerPoint := float64(len(blk.data)+blockHeaderBytes) / float64(blk.count)
	rawBytesPerPoint := float64(blk.rawBytes) / float64(blk.count)

	enc := testing.Benchmark(BenchmarkBlockEncode)
	dec := testing.Benchmark(BenchmarkBlockDecode)
	const nodes, perNode = 16, 4096
	var sealedDB, rawDB *DB
	// Build and warm both engines up front so the timed comparison is
	// steady state for each (the cold-decode cost is reported
	// separately by BenchmarkCompressedScan/sealed-cold).
	testing.Benchmark(func(b *testing.B) {
		sealedDB = benchScanDB(b, DefaultBlockSize, nodes, perNode)
		rawDB = benchScanDB(b, -1, nodes, perNode)
		for _, db := range []*DB{sealedDB, rawDB} {
			if _, err := db.Query(`SELECT max("Reading") FROM "Power" GROUP BY time(5m), "NodeId"`); err != nil {
				b.Fatal(err)
			}
		}
	})
	sealed := testing.Benchmark(func(b *testing.B) { benchScan(b, sealedDB) })
	raw := testing.Benchmark(func(b *testing.B) { benchScan(b, rawDB) })
	cs := sealedDB.Compression()

	perPoint := func(r testing.BenchmarkResult) float64 {
		return float64(r.NsPerOp()) / DefaultBlockSize
	}
	out := map[string]any{
		"workload":              "monotonic HPC power readings, 60s cadence, 200+i%50 W",
		"block_size":            DefaultBlockSize,
		"bytes_per_point":       bytesPerPoint,
		"raw_bytes_per_point":   rawBytesPerPoint,
		"compression_ratio":     cs.Ratio(),
		"encode_ns_per_point":   perPoint(enc),
		"decode_ns_per_point":   perPoint(dec),
		"scan_sealed_ns_per_op": sealed.NsPerOp(),
		"scan_raw_ns_per_op":    raw.NsPerOp(),
		"scan_sealed_vs_raw":    float64(sealed.NsPerOp()) / float64(raw.NsPerOp()),
		"scan_points":           nodes * perNode,
		"blocks_sealed":         cs.BlocksSealed,
		"storage_bytes_raw":     cs.BytesRaw,
		"storage_bytes_sealed":  cs.BytesCompressed,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.2f B/point (raw %.0f), scan sealed/raw = %.2fx",
		path, bytesPerPoint, rawBytesPerPoint, float64(sealed.NsPerOp())/float64(raw.NsPerOp()))
	if bytesPerPoint > 3 {
		t.Errorf("bytes/point %.2f exceeds the 3 B/point target", bytesPerPoint)
	}
}
