package tsdb

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestMeasurementsListing(t *testing.T) {
	db := Open(Options{})
	for _, m := range []string{"Thermal", "Power", "Health"} {
		err := db.WritePoint(Point{Measurement: m, Fields: map[string]Value{"f": Float(1)}, Time: 1})
		if err != nil {
			t.Fatal(err)
		}
	}
	got := db.Measurements()
	want := []string{"Health", "Power", "Thermal"}
	if len(got) != 3 {
		t.Fatalf("measurements = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("measurements = %v, want %v", got, want)
		}
	}
}

func TestSeriesCardinality(t *testing.T) {
	db := Open(Options{})
	for n := 0; n < 5; n++ {
		for _, label := range []string{"CPU1Temp", "CPU2Temp"} {
			err := db.WritePoint(Point{
				Measurement: "Thermal",
				Tags:        Tags{{"NodeId", fmt.Sprintf("n%d", n)}, {"Label", label}},
				Fields:      map[string]Value{"Reading": Float(40)},
				Time:        1,
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := db.SeriesCardinality("Thermal"); got != 10 {
		t.Fatalf("cardinality = %d, want 10", got)
	}
	if got := db.SeriesCardinality(""); got != 10 {
		t.Fatalf("total cardinality = %d, want 10", got)
	}
	if got := db.SeriesCardinality("Nope"); got != 0 {
		t.Fatalf("missing measurement cardinality = %d", got)
	}
	// Rewriting the same series must not grow cardinality.
	err := db.WritePoint(Point{
		Measurement: "Thermal",
		Tags:        Tags{{"NodeId", "n0"}, {"Label", "CPU1Temp"}},
		Fields:      map[string]Value{"Reading": Float(41)},
		Time:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.SeriesCardinality("Thermal"); got != 10 {
		t.Fatalf("cardinality after rewrite = %d, want 10", got)
	}
}

func TestTagValues(t *testing.T) {
	db := Open(Options{})
	writeTestFleet(t, db, 3, 1, 0, 60)
	got := db.TagValues("Power", "NodeId")
	if len(got) != 3 || got[0] != "10.101.1.1" {
		t.Fatalf("tag values = %v", got)
	}
	if db.TagValues("Power", "missing") != nil {
		t.Fatal("missing tag key returned values")
	}
	if db.TagValues("missing", "NodeId") != nil {
		t.Fatal("missing measurement returned values")
	}
}

func TestFieldKinds(t *testing.T) {
	db := Open(Options{})
	err := db.WritePoint(Point{
		Measurement: "JobsInfo",
		Tags:        Tags{{"JobId", "1"}},
		Fields: map[string]Value{
			"User":      Str("jieyao"),
			"StartTime": Int(1583792296),
			"Slots":     Int(36),
		},
		Time: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	kinds := db.FieldKinds("JobsInfo")
	if kinds["User"] != KindString || kinds["StartTime"] != KindInt {
		t.Fatalf("kinds = %v", kinds)
	}
}

func TestDiskAccounting(t *testing.T) {
	db := Open(Options{})
	writeTestFleet(t, db, 2, 100, 0, 60)
	d := db.Disk()
	if d.Points != 200 {
		t.Fatalf("points = %d, want 200", d.Points)
	}
	if d.DataBytes <= 0 || d.IndexBytes <= 0 {
		t.Fatalf("disk = %+v", d)
	}
	if d.TotalBytes() != d.DataBytes+d.IndexBytes {
		t.Fatal("TotalBytes mismatch")
	}
	// Data bytes should be points × (8 ts + field overhead).
	perPoint := int64(8 + 2 + len("Reading") + 8)
	if d.DataBytes != 200*perPoint {
		t.Fatalf("data bytes = %d, want %d", d.DataBytes, 200*perPoint)
	}
}

func TestShardStatsOrdering(t *testing.T) {
	db := Open(Options{ShardDuration: 100})
	for _, ts := range []int64{250, 50, 150} {
		err := db.WritePoint(Point{Measurement: "m", Fields: map[string]Value{"f": Float(1)}, Time: ts})
		if err != nil {
			t.Fatal(err)
		}
	}
	st := db.ShardStats()
	if len(st) != 3 {
		t.Fatalf("shards = %d", len(st))
	}
	for i := 1; i < len(st); i++ {
		if st[i].Start <= st[i-1].Start {
			t.Fatal("shard stats not time ordered")
		}
	}
}

func TestDeleteBefore(t *testing.T) {
	db := Open(Options{ShardDuration: 100})
	for ts := int64(0); ts < 1000; ts += 50 {
		err := db.WritePoint(Point{Measurement: "m", Fields: map[string]Value{"f": Float(1)}, Time: ts})
		if err != nil {
			t.Fatal(err)
		}
	}
	if dropped, _ := db.DeleteBefore(500); dropped != 5 {
		t.Fatalf("dropped %d shards, want 5", dropped)
	}
	res, err := db.Query(`SELECT count("f") FROM "m"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Series[0].Rows[0].Values[0].I; got != 10 {
		t.Fatalf("count after retention = %d, want 10", got)
	}
}

func TestNegativeTimestampsShardCorrectly(t *testing.T) {
	db := Open(Options{ShardDuration: 100})
	err := db.WritePoint(Point{Measurement: "m", Fields: map[string]Value{"f": Float(1)}, Time: -150})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT count("f") FROM "m" WHERE time >= -200 AND time < 0`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Series[0].Rows[0].Values[0].I; got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
}

func TestConcurrentWritesAndQueries(t *testing.T) {
	db := Open(Options{})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				err := db.WritePoint(Point{
					Measurement: "Power",
					Tags:        Tags{{"NodeId", fmt.Sprintf("n%d", w)}},
					Fields:      map[string]Value{"Reading": Float(float64(i))},
					Time:        int64(i),
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := db.Query(`SELECT mean("Reading") FROM "Power"`); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := db.Stats().PointsWritten; got != 400 {
		t.Fatalf("points written = %d, want 400", got)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	db := Open(Options{ShardDuration: 3600})
	writeTestFleet(t, db, 3, 25, 1583792296, 60)
	err := db.WritePoint(Point{
		Measurement: "JobsInfo",
		Tags:        Tags{{"JobId", "1291784"}},
		Fields: map[string]Value{
			"User":  Str("jieyao"),
			"Slots": Int(36),
			"Array": Bool(false),
		},
		Time: 1583792300,
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}

	for _, stmt := range []string{
		`SELECT count("Reading") FROM "Power"`,
		`SELECT mean("Reading") FROM "Power" GROUP BY "NodeId"`,
		`SELECT "User", "Slots" FROM "JobsInfo"`,
	} {
		r1, err := db.Query(stmt)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := db2.Query(stmt)
		if err != nil {
			t.Fatal(err)
		}
		if FormatResult(r1) != FormatResult(r2) {
			t.Fatalf("restore changed results for %s:\n%s\nvs\n%s", stmt, FormatResult(r1), FormatResult(r2))
		}
	}
	if db.Disk().Points != db2.Disk().Points {
		t.Fatalf("restored points = %d, want %d", db2.Disk().Points, db.Disk().Points)
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	if _, err := Restore(bytes.NewReader([]byte("BOGUSDATA"))); err == nil {
		t.Fatal("garbage restore succeeded")
	}
	if _, err := Restore(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty restore succeeded")
	}
}

func TestSnapshotEmptyDB(t *testing.T) {
	var buf bytes.Buffer
	if err := Open(Options{}).Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db.Disk().Points != 0 {
		t.Fatal("empty restore has points")
	}
}

func TestSaveLoadFile(t *testing.T) {
	db := Open(Options{})
	writeTestFleet(t, db, 2, 20, 1583792296, 60)
	path := t.TempDir() + "/snap.db"
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Disk().Points != db.Disk().Points {
		t.Fatalf("points = %d, want %d", back.Disk().Points, db.Disk().Points)
	}
	// Overwriting an existing snapshot must work (atomic rename).
	if err := db.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(t.TempDir() + "/missing.db"); err == nil {
		t.Fatal("missing file loaded")
	}
}
