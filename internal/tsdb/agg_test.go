package tsdb

import (
	"math"
	"testing"
)

func feed(a aggregator, vals ...float64) {
	for _, v := range vals {
		a.add(Float(v))
	}
}

func mustResult(t *testing.T, a aggregator) Value {
	t.Helper()
	v, ok := a.result()
	if !ok {
		t.Fatal("aggregator produced no result")
	}
	return v
}

func TestNewAggregatorNames(t *testing.T) {
	for _, name := range []string{"count", "sum", "mean", "max", "min", "first", "last", "spread", "stddev", "median"} {
		if _, ok := newAggregator(name); !ok {
			t.Errorf("aggregator %q missing", name)
		}
	}
	if _, ok := newAggregator("percentile"); ok {
		t.Error("unknown aggregator accepted")
	}
}

func TestCountCountsAllKinds(t *testing.T) {
	a, _ := newAggregator("count")
	a.add(Float(1))
	a.add(Str("x"))
	a.add(Bool(true))
	if v := mustResult(t, a); v.I != 3 {
		t.Fatalf("count = %v", v)
	}
}

func TestSumIgnoresNonNumeric(t *testing.T) {
	a, _ := newAggregator("sum")
	feed(a, 1, 2, 3)
	a.add(Str("nope"))
	if v := mustResult(t, a); v.F != 6 {
		t.Fatalf("sum = %v", v)
	}
}

func TestMeanEmptyNotOK(t *testing.T) {
	a, _ := newAggregator("mean")
	if _, ok := a.result(); ok {
		t.Fatal("empty mean reported ok")
	}
	a.add(Str("only strings"))
	if _, ok := a.result(); ok {
		t.Fatal("string-only mean reported ok")
	}
}

func TestMinMaxNegativeValues(t *testing.T) {
	mx, _ := newAggregator("max")
	mn, _ := newAggregator("min")
	feed(mx, -5, -2, -9)
	feed(mn, -5, -2, -9)
	if v := mustResult(t, mx); v.F != -2 {
		t.Fatalf("max = %v", v)
	}
	if v := mustResult(t, mn); v.F != -9 {
		t.Fatalf("min = %v", v)
	}
}

func TestFirstLastKeepKind(t *testing.T) {
	f, _ := newAggregator("first")
	l, _ := newAggregator("last")
	for _, v := range []Value{Str("a"), Int(2), Str("c")} {
		f.add(v)
		l.add(v)
	}
	if v := mustResult(t, f); v.Kind != KindString || v.S != "a" {
		t.Fatalf("first = %v", v)
	}
	if v := mustResult(t, l); v.Kind != KindString || v.S != "c" {
		t.Fatalf("last = %v", v)
	}
}

func TestSpread(t *testing.T) {
	a, _ := newAggregator("spread")
	feed(a, 10, 4, 7)
	if v := mustResult(t, a); v.F != 6 {
		t.Fatalf("spread = %v", v)
	}
}

func TestStddevMatchesDefinition(t *testing.T) {
	a, _ := newAggregator("stddev")
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	feed(a, vals...)
	var mean, m2 float64
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))
	for _, v := range vals {
		m2 += (v - mean) * (v - mean)
	}
	want := math.Sqrt(m2 / float64(len(vals)-1))
	got := mustResult(t, a).F
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("stddev = %v, want %v", got, want)
	}
}

func TestStddevNeedsTwoSamples(t *testing.T) {
	a, _ := newAggregator("stddev")
	a.add(Float(1))
	if _, ok := a.result(); ok {
		t.Fatal("stddev of one sample reported ok")
	}
}

func TestMedianOddEven(t *testing.T) {
	odd, _ := newAggregator("median")
	feed(odd, 9, 1, 5)
	if v := mustResult(t, odd); v.F != 5 {
		t.Fatalf("odd median = %v", v)
	}
	even, _ := newAggregator("median")
	feed(even, 1, 2, 3, 4)
	if v := mustResult(t, even); v.F != 2.5 {
		t.Fatalf("even median = %v", v)
	}
}

func TestResetClearsState(t *testing.T) {
	for _, name := range []string{"count", "sum", "mean", "max", "min", "first", "last", "spread", "stddev", "median"} {
		a, _ := newAggregator(name)
		feed(a, 1, 2, 3)
		a.reset()
		if name == "stddev" {
			feed(a, 5, 5)
			if v := mustResult(t, a); v.F != 0 {
				t.Errorf("%s after reset = %v", name, v)
			}
			continue
		}
		feed(a, 5)
		v, ok := a.result()
		if !ok {
			t.Errorf("%s: no result after reset+add", name)
			continue
		}
		switch name {
		case "count":
			if v.I != 1 {
				t.Errorf("count after reset = %v", v)
			}
		case "spread":
			if v.F != 0 {
				t.Errorf("spread after reset = %v", v)
			}
		case "median", "sum", "mean", "max", "min":
			if v.F != 5 {
				t.Errorf("%s after reset = %v", name, v)
			}
		case "first", "last":
			if v.F != 5 {
				t.Errorf("%s after reset = %v", name, v)
			}
		}
	}
}
