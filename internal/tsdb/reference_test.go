package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// Reference-model tests: the engine's GROUP BY time aggregation is
// compared, over randomized datasets, against a brute-force in-memory
// reference implementation.

type refPoint struct {
	series int
	t      int64
	v      float64
}

// refAggregate computes the expected bucketed aggregate over points
// matching the series filter.
func refAggregate(points []refPoint, series int, start, end, interval int64, agg string) map[int64]float64 {
	buckets := make(map[int64][]float64)
	for _, p := range points {
		if p.series != series || p.t < start || p.t >= end {
			continue
		}
		bt := p.t - mod(p.t, interval)
		buckets[bt] = append(buckets[bt], p.v)
	}
	out := make(map[int64]float64, len(buckets))
	for bt, vals := range buckets {
		switch agg {
		case "max":
			m := vals[0]
			for _, v := range vals {
				if v > m {
					m = v
				}
			}
			out[bt] = m
		case "min":
			m := vals[0]
			for _, v := range vals {
				if v < m {
					m = v
				}
			}
			out[bt] = m
		case "sum", "mean":
			var s float64
			for _, v := range vals {
				s += v
			}
			if agg == "mean" {
				s /= float64(len(vals))
			}
			out[bt] = s
		case "count":
			out[bt] = float64(len(vals))
		}
	}
	return out
}

func TestEngineMatchesReferenceOnRandomData(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 911))
		db := Open(Options{ShardDuration: 500}) // small shards force multi-shard scans
		nSeries := 1 + rng.Intn(4)
		nPoints := 50 + rng.Intn(300)
		interval := int64(10 * (1 + rng.Intn(30)))

		var points []refPoint
		var batch []Point
		for i := 0; i < nPoints; i++ {
			p := refPoint{
				series: rng.Intn(nSeries),
				t:      int64(rng.Intn(5000)),
				v:      math.Round(rng.Float64()*1000) / 10,
			}
			points = append(points, p)
			batch = append(batch, Point{
				Measurement: "m",
				Tags:        Tags{{"id", fmt.Sprintf("s%d", p.series)}},
				Fields:      map[string]Value{"f": Float(p.v)},
				Time:        p.t,
			})
		}
		if err := db.WritePoints(batch); err != nil {
			t.Fatal(err)
		}

		start := int64(rng.Intn(2000))
		end := start + int64(500+rng.Intn(3000))
		series := rng.Intn(nSeries)
		for _, agg := range []string{"max", "min", "sum", "mean", "count"} {
			stmt := fmt.Sprintf(
				`SELECT %s("f") FROM "m" WHERE "id"='s%d' AND time >= %d AND time < %d GROUP BY time(%ds)`,
				agg, series, start, end, interval)
			res, err := db.Query(stmt)
			if err != nil {
				t.Fatalf("trial %d: %v", trial, err)
			}
			want := refAggregate(points, series, start, end, interval, agg)
			got := map[int64]float64{}
			for _, s := range res.Series {
				for _, row := range s.Rows {
					if !row.Present[0] {
						continue
					}
					f, _ := row.Values[0].AsFloat()
					got[row.Time] = f
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d %s: %d buckets, reference has %d\nstmt: %s", trial, agg, len(got), len(want), stmt)
			}
			for bt, wv := range want {
				gv, ok := got[bt]
				if !ok {
					t.Fatalf("trial %d %s: bucket %d missing", trial, agg, bt)
				}
				if math.Abs(gv-wv) > 1e-9 {
					t.Fatalf("trial %d %s: bucket %d = %v, reference %v", trial, agg, bt, gv, wv)
				}
			}
		}
	}
}

func TestEngineMatchesReferenceWithDuplicateTimestamps(t *testing.T) {
	// Duplicate timestamps are kept (not overwritten); count must see
	// every sample.
	db := Open(Options{})
	const dup = 5
	for i := 0; i < dup; i++ {
		err := db.WritePoint(Point{
			Measurement: "m",
			Tags:        Tags{{"id", "x"}},
			Fields:      map[string]Value{"f": Float(float64(i))},
			Time:        100,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(`SELECT count("f"), sum("f") FROM "m"`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Series[0].Rows[0]
	if row.Values[0].I != dup {
		t.Fatalf("count = %d, want %d", row.Values[0].I, dup)
	}
	if row.Values[1].F != 0+1+2+3+4 {
		t.Fatalf("sum = %v", row.Values[1].F)
	}
}
