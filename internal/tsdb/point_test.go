package tsdb

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind ValueKind
		str  string
	}{
		{Float(273.8), KindFloat, "273.8"},
		{Int(42), KindInt, "42"},
		{Str("Warning"), KindString, "Warning"},
		{Bool(true), KindBool, "true"},
	}
	for _, c := range cases {
		if c.v.Kind != c.kind {
			t.Errorf("kind = %v, want %v", c.v.Kind, c.kind)
		}
		if got := c.v.String(); got != c.str {
			t.Errorf("String() = %q, want %q", got, c.str)
		}
	}
}

func TestValueKindString(t *testing.T) {
	if KindFloat.String() != "float" || KindString.String() != "string" {
		t.Fatal("ValueKind.String mismatch")
	}
	if ValueKind(99).String() == "" {
		t.Fatal("unknown kind should still render")
	}
}

func TestValueAsFloat(t *testing.T) {
	if f, ok := Float(1.5).AsFloat(); !ok || f != 1.5 {
		t.Fatalf("Float.AsFloat = %v,%v", f, ok)
	}
	if f, ok := Int(3).AsFloat(); !ok || f != 3 {
		t.Fatalf("Int.AsFloat = %v,%v", f, ok)
	}
	if _, ok := Str("x").AsFloat(); ok {
		t.Fatal("Str.AsFloat should not convert")
	}
	if _, ok := Bool(true).AsFloat(); ok {
		t.Fatal("Bool.AsFloat should not convert")
	}
}

func TestValueEncodedSize(t *testing.T) {
	if got := Float(1).EncodedSize(); got != 8 {
		t.Errorf("float size %d, want 8", got)
	}
	if got := Int(1).EncodedSize(); got != 8 {
		t.Errorf("int size %d, want 8", got)
	}
	if got := Bool(true).EncodedSize(); got != 1 {
		t.Errorf("bool size %d, want 1", got)
	}
	if got := Str("Warning").EncodedSize(); got != 2+7 {
		t.Errorf("string size %d, want 9", got)
	}
}

func TestNewTagsSorted(t *testing.T) {
	ts := NewTags(map[string]string{"b": "2", "a": "1", "c": "3"})
	want := Tags{{"a", "1"}, {"b", "2"}, {"c", "3"}}
	if len(ts) != len(want) {
		t.Fatalf("len = %d", len(ts))
	}
	for i := range want {
		if ts[i] != want[i] {
			t.Fatalf("tags = %v, want %v", ts, want)
		}
	}
}

func TestTagsSortedIdempotent(t *testing.T) {
	ts := Tags{{"a", "1"}, {"b", "2"}}
	got := ts.Sorted()
	if &got[0] != &ts[0] {
		t.Fatal("already-sorted tags should not be copied")
	}
	unsorted := Tags{{"b", "2"}, {"a", "1"}}
	got2 := unsorted.Sorted()
	if got2[0].Key != "a" {
		t.Fatalf("Sorted did not sort: %v", got2)
	}
	if unsorted[0].Key != "b" {
		t.Fatal("Sorted mutated its receiver")
	}
}

func TestTagsGet(t *testing.T) {
	ts := Tags{{"NodeId", "10.101.1.1"}, {"Label", "NodePower"}}
	if v, ok := ts.Get("NodeId"); !ok || v != "10.101.1.1" {
		t.Fatalf("Get(NodeId) = %q,%v", v, ok)
	}
	if _, ok := ts.Get("missing"); ok {
		t.Fatal("Get(missing) reported ok")
	}
}

func TestPointSeriesKeyCanonical(t *testing.T) {
	a := Point{
		Measurement: "Power",
		Tags:        Tags{{"NodeId", "10.101.1.1"}, {"Label", "NodePower"}},
	}
	b := Point{
		Measurement: "Power",
		Tags:        Tags{{"Label", "NodePower"}, {"NodeId", "10.101.1.1"}},
	}
	if a.SeriesKey() != b.SeriesKey() {
		t.Fatalf("series keys differ for same identity: %q vs %q", a.SeriesKey(), b.SeriesKey())
	}
	if want := "Power,Label=NodePower,NodeId=10.101.1.1"; a.SeriesKey() != want {
		t.Fatalf("series key = %q, want %q", a.SeriesKey(), want)
	}
}

func TestPointValidate(t *testing.T) {
	good := Point{Measurement: "m", Fields: map[string]Value{"f": Float(1)}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid point rejected: %v", err)
	}
	cases := []Point{
		{Fields: map[string]Value{"f": Float(1)}},                                          // no measurement
		{Measurement: "m"},                                                                 // no fields
		{Measurement: "m", Fields: map[string]Value{"": Float(1)}},                         // empty field key
		{Measurement: "m", Fields: map[string]Value{"f": Float(1)}, Tags: Tags{{"", "v"}}}, // empty tag key
		{Measurement: "m", Fields: map[string]Value{"f": Float(1)}, Tags: Tags{{"time", "v"}}},
	}
	for i, p := range cases {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid point accepted", i)
		}
	}
}

func TestFormatParseTimeRoundTrip(t *testing.T) {
	const sec = int64(1583792296)
	s := FormatTime(sec)
	got, err := ParseTime(s)
	if err != nil {
		t.Fatal(err)
	}
	if got != sec {
		t.Fatalf("round trip %d -> %q -> %d", sec, s, got)
	}
}

func TestParseTimeRejectsGarbage(t *testing.T) {
	if _, err := ParseTime("not-a-time"); err == nil {
		t.Fatal("ParseTime accepted garbage")
	}
}

func TestPropTimeRoundTrip(t *testing.T) {
	f := func(sec int32) bool {
		s := int64(sec)
		got, err := ParseTime(FormatTime(s))
		return err == nil && got == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSeriesKeyOrderInvariant(t *testing.T) {
	f := func(k1, v1, k2, v2 string) bool {
		if k1 == "" || k2 == "" || k1 == k2 {
			return true
		}
		a := Point{Measurement: "m", Tags: Tags{{k1, v1}, {k2, v2}}}
		b := Point{Measurement: "m", Tags: Tags{{k2, v2}, {k1, v1}}}
		return a.SeriesKey() == b.SeriesKey()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropEncodedSizePositive(t *testing.T) {
	f := func(fkey string, s string, i int64, fl float64) bool {
		if fkey == "" {
			fkey = "f"
		}
		p := Point{
			Measurement: "m",
			Fields: map[string]Value{
				fkey:       Str(s),
				fkey + "i": Int(i),
				fkey + "f": Float(fl),
			},
		}
		return p.EncodedSize() >= 8+3*2+len(s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
