package tsdb

import (
	"sort"
)

// column stores one field of one series as parallel time/value slices.
// Appends usually arrive in time order; out-of-order writes set dirty
// and the column is sorted lazily before reads.
type column struct {
	times []int64
	vals  []Value
	dirty bool
}

func (c *column) append(t int64, v Value) {
	if n := len(c.times); n > 0 && t < c.times[n-1] {
		c.dirty = true
	}
	c.times = append(c.times, t)
	c.vals = append(c.vals, v)
}

// ensureSorted sorts the column by time (stable, preserving write order
// for equal timestamps). Later writes at the same timestamp win for
// last-value semantics, which stable sort preserves.
func (c *column) ensureSorted() {
	if !c.dirty {
		return
	}
	idx := make([]int, len(c.times))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return c.times[idx[a]] < c.times[idx[b]] })
	nt := make([]int64, len(c.times))
	nv := make([]Value, len(c.vals))
	for i, j := range idx {
		nt[i] = c.times[j]
		nv[i] = c.vals[j]
	}
	c.times, c.vals = nt, nv
	c.dirty = false
}

// rangeIndexes returns the half-open index range [lo, hi) of samples
// with start <= time < end. The column must be sorted.
func (c *column) rangeIndexes(start, end int64) (int, int) {
	lo := sort.Search(len(c.times), func(i int) bool { return c.times[i] >= start })
	hi := sort.Search(len(c.times), func(i int) bool { return c.times[i] >= end })
	return lo, hi
}

// series is all data for one (measurement, tagset) identity within a
// shard.
type series struct {
	measurement string
	tags        Tags // sorted
	fields      map[string]*column
	bytes       int // encoded bytes of all points appended
}

func (s *series) points() int {
	max := 0
	for _, c := range s.fields {
		if len(c.times) > max {
			max = len(c.times)
		}
	}
	return max
}

// shard holds all series for one time window [start, end).
type shard struct {
	start, end int64 // unix seconds, half-open
	series     map[string]*series
	keyBytes   int // bytes of series keys indexed in this shard
	points     int64
	bytes      int64
}

func newShard(start, end int64) *shard {
	return &shard{start: start, end: end, series: make(map[string]*series)}
}

func (sh *shard) write(p *Point, key string, sorted Tags) {
	sr, ok := sh.series[key]
	if !ok {
		sr = &series{
			measurement: p.Measurement,
			tags:        sorted,
			fields:      make(map[string]*column),
		}
		sh.series[key] = sr
		sh.keyBytes += len(key) + 8 // key plus index entry overhead
	}
	for fk, fv := range p.Fields {
		col, ok := sr.fields[fk]
		if !ok {
			col = &column{}
			sr.fields[fk] = col
		}
		col.append(p.Time, fv)
	}
	sz := p.EncodedSize()
	sr.bytes += sz
	sh.points++
	sh.bytes += int64(sz)
}

// ShardStats summarizes one shard's contents.
type ShardStats struct {
	Start, End int64
	Series     int
	Points     int64
	Bytes      int64 // data bytes
	IndexBytes int64 // series-key/index bytes
}

func (sh *shard) stats() ShardStats {
	return ShardStats{
		Start:      sh.start,
		End:        sh.end,
		Series:     len(sh.series),
		Points:     sh.points,
		Bytes:      sh.bytes,
		IndexBytes: int64(sh.keyBytes),
	}
}
