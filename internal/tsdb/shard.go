package tsdb

import (
	"sort"
)

// column stores one field of one series as sealed compressed blocks
// plus a raw hot tail of parallel time/value slices. Writes append to
// the tail; when it reaches the seal threshold the write batch
// compresses full runs into immutable blocks (see batch.finish in
// view.go and sealBlock in block.go). Published columns (reachable
// from the DB's current view) are always globally sorted by time —
// blocks in order, every tail time at or after the last block's maxT —
// so readers never sort and never observe a mid-sort column.
type column struct {
	blocks []*block // sealed, immutable, time-ordered
	times  []int64  // raw tail
	vals   []Value
}

// numPoints is the column's total sample count across sealed blocks
// and the raw tail.
func (c *column) numPoints() int {
	n := len(c.times)
	for _, b := range c.blocks {
		n += b.count
	}
	return n
}

// lastTime reports the column's newest timestamp (tail if non-empty,
// else the last sealed block), with ok=false for an empty column.
func (c *column) lastTime() (int64, bool) {
	if n := len(c.times); n > 0 {
		return c.times[n-1], true
	}
	if n := len(c.blocks); n > 0 {
		return c.blocks[n-1].maxT, true
	}
	return 0, false
}

// firstTime reports the column's oldest timestamp.
func (c *column) firstTime() (int64, bool) {
	if len(c.blocks) > 0 {
		return c.blocks[0].minT, true
	}
	if len(c.times) > 0 {
		return c.times[0], true
	}
	return 0, false
}

// seal compresses full bs-point runs of the tail into immutable
// blocks, leaving the remainder (< bs points) raw, and reports how
// many blocks it sealed. The caller must own the column (batch clone)
// and the tail must be sorted. The surviving tail is rebuilt into
// fresh arrays so the sealed run's raw backing can be collected once
// older views retire; appending to c.blocks may extend capacity shared
// with a published view, which is safe under the linear-history
// invariant (older views never index past their own length).
func (c *column) seal(bs int) int {
	if bs <= 0 || len(c.times) < bs {
		return 0
	}
	n := 0
	for len(c.times)-n*bs >= bs {
		lo := n * bs
		c.blocks = append(c.blocks, sealBlock(c.times[lo:lo+bs], c.vals[lo:lo+bs]))
		n++
	}
	rest := len(c.times) - n*bs
	nt := make([]int64, rest, bs)
	nv := make([]Value, rest, bs)
	copy(nt, c.times[n*bs:])
	copy(nv, c.vals[n*bs:])
	c.times, c.vals = nt, nv
	return n
}

// unseal decodes every sealed block back into the raw tail — the slow
// path for out-of-order writes that land before already-sealed data.
// The caller re-sorts afterwards and the next seal re-compresses, so
// correctness never depends on write order, only the rare shuffle pays
// for it.
func (c *column) unseal() {
	if len(c.blocks) == 0 {
		return
	}
	total := len(c.times)
	for _, b := range c.blocks {
		total += b.count
	}
	nt := make([]int64, 0, total)
	nv := make([]Value, 0, total)
	for _, b := range c.blocks {
		p, _, err := b.decode(nil)
		if err != nil {
			// Validated at seal/restore time; undecodable means
			// post-hoc corruption — nothing recoverable to keep.
			continue
		}
		nt = append(nt, p.times...)
		nv = append(nv, p.vals...)
	}
	nt = append(nt, c.times...)
	nv = append(nv, c.vals...)
	c.times, c.vals, c.blocks = nt, nv, nil
}

// sortByTime rebuilds the column sorted by time into fresh arrays
// (stable, preserving write order for equal timestamps so later writes
// win under last-value semantics). Fresh arrays matter: the unsorted
// cells may sit in capacity shared with a previously published view,
// and those must never be rewritten in place.
func (c *column) sortByTime() {
	idx := make([]int, len(c.times))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return c.times[idx[a]] < c.times[idx[b]] })
	nt := make([]int64, len(c.times))
	nv := make([]Value, len(c.vals))
	for i, j := range idx {
		nt[i] = c.times[j]
		nv[i] = c.vals[j]
	}
	c.times, c.vals = nt, nv
}

// rangeIndexes returns the half-open index range [lo, hi) of tail
// samples with start <= time < end. The upper bound searches only the
// suffix at lo — times is sorted, so nothing before lo can reach end.
func (c *column) rangeIndexes(start, end int64) (int, int) {
	lo := sort.Search(len(c.times), func(i int) bool { return c.times[i] >= start })
	hi := lo + sort.Search(len(c.times)-lo, func(i int) bool { return c.times[lo+i] >= end })
	return lo, hi
}

// series is all data for one (measurement, tagset) identity within a
// shard.
type series struct {
	measurement string
	tags        Tags // sorted
	fields      map[string]*column
	bytes       int // encoded bytes of all points appended
}

// clone makes a shallow copy whose fields map is private; the columns
// themselves stay shared until a write touches them.
func (s *series) clone() *series {
	c := &series{measurement: s.measurement, tags: s.tags, bytes: s.bytes}
	c.fields = make(map[string]*column, len(s.fields))
	for k, v := range s.fields {
		c.fields[k] = v
	}
	return c
}

func (s *series) points() int {
	max := 0
	for _, c := range s.fields {
		if n := c.numPoints(); n > max {
			max = n
		}
	}
	return max
}

// shard holds all series for one time window [start, end).
type shard struct {
	start, end int64 // unix seconds, half-open
	series     map[string]*series
	keyBytes   int // bytes of series keys indexed in this shard
	points     int64
	bytes      int64
}

func newShard(start, end int64) *shard {
	return &shard{start: start, end: end, series: make(map[string]*series)}
}

// clone makes a shallow copy whose series map is private; the series
// themselves stay shared until a write touches them.
func (sh *shard) clone() *shard {
	c := &shard{start: sh.start, end: sh.end, keyBytes: sh.keyBytes, points: sh.points, bytes: sh.bytes}
	c.series = make(map[string]*series, len(sh.series))
	for k, v := range sh.series {
		c.series[k] = v
	}
	return c
}

// ShardStats summarizes one shard's contents.
type ShardStats struct {
	Start, End int64
	Series     int
	Points     int64
	Bytes      int64 // data bytes
	IndexBytes int64 // series-key/index bytes
}

func (sh *shard) stats() ShardStats {
	return ShardStats{
		Start:      sh.start,
		End:        sh.end,
		Series:     len(sh.series),
		Points:     sh.points,
		Bytes:      sh.bytes,
		IndexBytes: int64(sh.keyBytes),
	}
}
