package tsdb

import (
	"sort"
)

// column stores one field of one series as parallel time/value slices.
// Published columns (reachable from the DB's current view) are always
// sorted by time: a write batch that appends out of order rebuilds the
// column into fresh sorted arrays before the view is published (see
// batch.finish in view.go), so readers never sort and never observe a
// mid-sort column.
type column struct {
	times []int64
	vals  []Value
}

// sortByTime rebuilds the column sorted by time into fresh arrays
// (stable, preserving write order for equal timestamps so later writes
// win under last-value semantics). Fresh arrays matter: the unsorted
// cells may sit in capacity shared with a previously published view,
// and those must never be rewritten in place.
func (c *column) sortByTime() {
	idx := make([]int, len(c.times))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return c.times[idx[a]] < c.times[idx[b]] })
	nt := make([]int64, len(c.times))
	nv := make([]Value, len(c.vals))
	for i, j := range idx {
		nt[i] = c.times[j]
		nv[i] = c.vals[j]
	}
	c.times, c.vals = nt, nv
}

// rangeIndexes returns the half-open index range [lo, hi) of samples
// with start <= time < end.
func (c *column) rangeIndexes(start, end int64) (int, int) {
	lo := sort.Search(len(c.times), func(i int) bool { return c.times[i] >= start })
	hi := sort.Search(len(c.times), func(i int) bool { return c.times[i] >= end })
	return lo, hi
}

// series is all data for one (measurement, tagset) identity within a
// shard.
type series struct {
	measurement string
	tags        Tags // sorted
	fields      map[string]*column
	bytes       int // encoded bytes of all points appended
}

// clone makes a shallow copy whose fields map is private; the columns
// themselves stay shared until a write touches them.
func (s *series) clone() *series {
	c := &series{measurement: s.measurement, tags: s.tags, bytes: s.bytes}
	c.fields = make(map[string]*column, len(s.fields))
	for k, v := range s.fields {
		c.fields[k] = v
	}
	return c
}

func (s *series) points() int {
	max := 0
	for _, c := range s.fields {
		if len(c.times) > max {
			max = len(c.times)
		}
	}
	return max
}

// shard holds all series for one time window [start, end).
type shard struct {
	start, end int64 // unix seconds, half-open
	series     map[string]*series
	keyBytes   int // bytes of series keys indexed in this shard
	points     int64
	bytes      int64
}

func newShard(start, end int64) *shard {
	return &shard{start: start, end: end, series: make(map[string]*series)}
}

// clone makes a shallow copy whose series map is private; the series
// themselves stay shared until a write touches them.
func (sh *shard) clone() *shard {
	c := &shard{start: sh.start, end: sh.end, keyBytes: sh.keyBytes, points: sh.points, bytes: sh.bytes}
	c.series = make(map[string]*series, len(sh.series))
	for k, v := range sh.series {
		c.series[k] = v
	}
	return c
}

// ShardStats summarizes one shard's contents.
type ShardStats struct {
	Start, End int64
	Series     int
	Points     int64
	Bytes      int64 // data bytes
	IndexBytes int64 // series-key/index bytes
}

func (sh *shard) stats() ShardStats {
	return ShardStats{
		Start:      sh.start,
		End:        sh.end,
		Series:     len(sh.series),
		Points:     sh.points,
		Bytes:      sh.bytes,
		IndexBytes: int64(sh.keyBytes),
	}
}
