package tsdb

import (
	"fmt"
	"sort"
	"strings"
)

// Metadata statements, the InfluxQL SHOW family:
//
//	SHOW MEASUREMENTS
//	SHOW SERIES [FROM <m>]
//	SHOW TAG KEYS [FROM <m>]
//	SHOW TAG VALUES [FROM <m>] WITH KEY = <key>
//	SHOW FIELD KEYS [FROM <m>]
//
// The Query entry point dispatches to these when the statement starts
// with SHOW; results use the same Result/ResultSeries shape as data
// queries (string values, zero timestamps).

// isShowStatement reports whether stmt is a SHOW statement.
func isShowStatement(stmt string) bool {
	trimmed := strings.TrimSpace(stmt)
	return len(trimmed) >= 4 && strings.EqualFold(trimmed[:4], "SHOW")
}

// isDropStatement reports whether stmt is a DROP statement.
func isDropStatement(stmt string) bool {
	trimmed := strings.TrimSpace(stmt)
	return len(trimmed) >= 4 && strings.EqualFold(trimmed[:4], "DROP")
}

// execDrop parses and executes DROP MEASUREMENT <name>.
func (db *DB) execDrop(stmt string) (*Result, error) {
	p := &parser{lex: newLexer(stmt)}
	if p.lex.err != nil {
		return nil, fmt.Errorf("tsdb: parse %q: %w", stmt, p.lex.err)
	}
	if !p.keyword("DROP") || !p.keyword("MEASUREMENT") {
		return nil, fmt.Errorf("tsdb: only DROP MEASUREMENT is supported: %q", stmt)
	}
	tok, err := p.expect(tokIdent, "measurement name")
	if err != nil {
		return nil, err
	}
	if err := expectEnd(p); err != nil {
		return nil, err
	}
	dropped, err := db.DropMeasurement(tok.text)
	if err != nil {
		return nil, err
	}
	res := &Result{}
	if dropped {
		res.Stats.Rows = 1
	}
	return res, nil
}

// execShow parses and executes a SHOW statement.
func (db *DB) execShow(stmt string) (*Result, error) {
	p := &parser{lex: newLexer(stmt)}
	if p.lex.err != nil {
		return nil, fmt.Errorf("tsdb: parse %q: %w", stmt, p.lex.err)
	}
	if !p.keyword("SHOW") {
		return nil, fmt.Errorf("tsdb: not a SHOW statement: %q", stmt)
	}
	switch {
	case p.keyword("MEASUREMENTS"):
		return db.showMeasurements(p)
	case p.keyword("SERIES"):
		return db.showSeries(p)
	case p.keyword("TAG"):
		switch {
		case p.keyword("KEYS"):
			return db.showTagKeys(p)
		case p.keyword("VALUES"):
			return db.showTagValues(p)
		}
		return nil, fmt.Errorf("tsdb: expected KEYS or VALUES after SHOW TAG")
	case p.keyword("FIELD"):
		if !p.keyword("KEYS") {
			return nil, fmt.Errorf("tsdb: expected KEYS after SHOW FIELD")
		}
		return db.showFieldKeys(p)
	default:
		return nil, fmt.Errorf("tsdb: unsupported SHOW statement %q", stmt)
	}
}

// parseOptionalFrom consumes "FROM <measurement>" if present.
func parseOptionalFrom(p *parser) (string, error) {
	if !p.keyword("FROM") {
		return "", nil
	}
	tok, err := p.expect(tokIdent, "measurement name")
	if err != nil {
		return "", err
	}
	return tok.text, nil
}

func expectEnd(p *parser) error {
	if t := p.peek(); t.kind != tokEOF {
		return fmt.Errorf("tsdb: unexpected trailing input %s", t)
	}
	return nil
}

// stringListResult renders values as single-column rows.
func stringListResult(name, column string, values []string) *Result {
	rs := ResultSeries{Name: name, Columns: []string{column}}
	for _, v := range values {
		rs.Rows = append(rs.Rows, Row{Values: []Value{Str(v)}, Present: []bool{true}})
	}
	res := &Result{}
	res.Stats.Rows = len(rs.Rows)
	if len(rs.Rows) > 0 {
		res.Series = append(res.Series, rs)
	}
	return res
}

func (db *DB) showMeasurements(p *parser) (*Result, error) {
	if err := expectEnd(p); err != nil {
		return nil, err
	}
	return stringListResult("measurements", "name", db.Measurements()), nil
}

func (db *DB) showSeries(p *parser) (*Result, error) {
	from, err := parseOptionalFrom(p)
	if err != nil {
		return nil, err
	}
	if err := expectEnd(p); err != nil {
		return nil, err
	}
	v := db.acquireView()
	defer db.releaseView()
	var keys []string
	for m, mi := range v.index {
		if from != "" && m != from {
			continue
		}
		for k := range mi.series {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return stringListResult("series", "key", keys), nil
}

func (db *DB) showTagKeys(p *parser) (*Result, error) {
	from, err := parseOptionalFrom(p)
	if err != nil {
		return nil, err
	}
	if err := expectEnd(p); err != nil {
		return nil, err
	}
	v := db.acquireView()
	defer db.releaseView()
	set := map[string]bool{}
	for m, mi := range v.index {
		if from != "" && m != from {
			continue
		}
		for k := range mi.byTag {
			set[k] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return stringListResult("tagKeys", "tagKey", keys), nil
}

func (db *DB) showTagValues(p *parser) (*Result, error) {
	from, err := parseOptionalFrom(p)
	if err != nil {
		return nil, err
	}
	if !p.keyword("WITH") {
		return nil, fmt.Errorf("tsdb: SHOW TAG VALUES requires WITH KEY = <key>")
	}
	if !p.keyword("KEY") {
		return nil, fmt.Errorf("tsdb: expected KEY after WITH")
	}
	if _, err := p.expect(tokEq, "="); err != nil {
		return nil, err
	}
	keyTok := p.next()
	if keyTok.kind != tokIdent && keyTok.kind != tokString {
		return nil, fmt.Errorf("tsdb: expected tag key, got %s", keyTok)
	}
	if err := expectEnd(p); err != nil {
		return nil, err
	}
	v := db.acquireView()
	defer db.releaseView()
	set := map[string]bool{}
	for m, mi := range v.index {
		if from != "" && m != from {
			continue
		}
		for tv := range mi.byTag[keyTok.text] {
			set[tv] = true
		}
	}
	vals := make([]string, 0, len(set))
	for tv := range set {
		vals = append(vals, tv)
	}
	sort.Strings(vals)
	return stringListResult("tagValues", "value", vals), nil
}

func (db *DB) showFieldKeys(p *parser) (*Result, error) {
	from, err := parseOptionalFrom(p)
	if err != nil {
		return nil, err
	}
	if err := expectEnd(p); err != nil {
		return nil, err
	}
	v := db.acquireView()
	defer db.releaseView()
	res := &Result{}
	var measurements []string
	for m := range v.index {
		if from != "" && m != from {
			continue
		}
		measurements = append(measurements, m)
	}
	sort.Strings(measurements)
	for _, m := range measurements {
		mi := v.index[m]
		rs := ResultSeries{Name: m, Columns: []string{"fieldKey", "fieldType"}}
		var fields []string
		for f := range mi.fields {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			rs.Rows = append(rs.Rows, Row{
				Values:  []Value{Str(f), Str(mi.fields[f].String())},
				Present: []bool{true, true},
			})
		}
		res.Stats.Rows += len(rs.Rows)
		if len(rs.Rows) > 0 {
			res.Series = append(res.Series, rs)
		}
	}
	return res, nil
}
