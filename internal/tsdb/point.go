// Package tsdb implements the time-series storage engine MonSTer uses
// in place of InfluxDB: measurements hold tag-indexed series of
// timestamped field values, writes are batched, and an InfluxQL-subset
// query language supports the aggregation/downsampling queries the
// Metrics Builder issues (SELECT agg(field) FROM m WHERE tags AND time
// range GROUP BY time(interval)).
//
// The engine additionally exposes exact scan statistics (series probed,
// points scanned, encoded bytes touched) so that the experiment harness
// can charge device time for a query without guessing — the paper's
// schema-cardinality and storage-device results (Figures 12–14) depend
// on these quantities.
package tsdb

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// ValueKind discriminates the types a field value can hold, mirroring
// InfluxDB's float/integer/string/boolean field types.
type ValueKind uint8

// Field value kinds.
const (
	KindFloat ValueKind = iota
	KindInt
	KindString
	KindBool
)

// String implements fmt.Stringer.
func (k ValueKind) String() string {
	switch k {
	case KindFloat:
		return "float"
	case KindInt:
		return "integer"
	case KindString:
		return "string"
	case KindBool:
		return "boolean"
	default:
		return fmt.Sprintf("ValueKind(%d)", uint8(k))
	}
}

// Value is a dynamically-typed field value. The zero Value is the float
// 0.
type Value struct {
	Kind ValueKind
	F    float64
	I    int64
	S    string
	B    bool
}

// Float returns a float-typed Value.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Int returns an integer-typed Value.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// String returns a string-typed Value.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Bool returns a boolean-typed Value.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// AsFloat converts numeric values to float64; strings and bools report
// ok=false.
func (v Value) AsFloat() (float64, bool) {
	switch v.Kind {
	case KindFloat:
		return v.F, true
	case KindInt:
		return float64(v.I), true
	default:
		return 0, false
	}
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool { return v == o }

// GoString renders the value as it would appear in a query result.
func (v Value) String() string {
	switch v.Kind {
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindString:
		return v.S
	case KindBool:
		return fmt.Sprintf("%t", v.B)
	default:
		return "?"
	}
}

// EncodedSize reports the value's size under the engine's canonical
// storage encoding: 8 bytes for numerics, 1 byte for booleans, length
// plus a 2-byte prefix for strings. This is the unit the data-volume
// experiments (Fig 13, 18) measure.
func (v Value) EncodedSize() int {
	switch v.Kind {
	case KindFloat, KindInt:
		return 8
	case KindBool:
		return 1
	case KindString:
		return 2 + len(v.S)
	default:
		return 8
	}
}

// Tag is a single key=value pair of series metadata.
type Tag struct {
	Key   string
	Value string
}

// Tags is a set of tags. Canonical form is sorted by key.
type Tags []Tag

// NewTags builds a canonical (sorted, copied) tag set from a map.
func NewTags(m map[string]string) Tags {
	ts := make(Tags, 0, len(m))
	for k, v := range m {
		ts = append(ts, Tag{k, v})
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key < ts[j].Key })
	return ts
}

// Sorted returns a sorted copy of the tag set (or the receiver if it is
// already sorted).
func (ts Tags) Sorted() Tags {
	if sort.SliceIsSorted(ts, func(i, j int) bool { return ts[i].Key < ts[j].Key }) {
		return ts
	}
	out := make(Tags, len(ts))
	copy(out, ts)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Get looks up a tag value by key.
func (ts Tags) Get(key string) (string, bool) {
	for _, t := range ts {
		if t.Key == key {
			return t.Value, true
		}
	}
	return "", false
}

// Point is a single sample: one timestamp, one tag set, one or more
// field values under a measurement. Time is Unix seconds (the paper
// stores epoch-second timestamps after its schema optimization).
type Point struct {
	Measurement string
	Tags        Tags
	Fields      map[string]Value
	Time        int64
}

// Validate reports whether the point can be stored.
func (p *Point) Validate() error {
	if p.Measurement == "" {
		return fmt.Errorf("tsdb: point has empty measurement")
	}
	if len(p.Fields) == 0 {
		return fmt.Errorf("tsdb: point in %q has no fields", p.Measurement)
	}
	for k := range p.Fields {
		if k == "" {
			return fmt.Errorf("tsdb: point in %q has empty field key", p.Measurement)
		}
	}
	for _, t := range p.Tags {
		if t.Key == "" {
			return fmt.Errorf("tsdb: point in %q has empty tag key", p.Measurement)
		}
		if t.Key == "time" {
			return fmt.Errorf("tsdb: tag key %q is reserved", t.Key)
		}
	}
	return nil
}

// SeriesKey returns the canonical series identity string:
// measurement,k1=v1,k2=v2 with tags sorted by key.
func (p *Point) SeriesKey() string {
	return seriesKey(p.Measurement, p.Tags.Sorted())
}

func seriesKey(measurement string, sorted Tags) string {
	var b strings.Builder
	b.WriteString(measurement)
	for _, t := range sorted {
		b.WriteByte(',')
		b.WriteString(t.Key)
		b.WriteByte('=')
		b.WriteString(t.Value)
	}
	return b.String()
}

// EncodedSize reports the point's size under the canonical storage
// encoding: 8 bytes of timestamp plus each field's key and value.
// Series-key bytes are accounted once per series per shard by the
// engine, not per point.
func (p *Point) EncodedSize() int {
	n := 8
	for k, v := range p.Fields {
		n += 2 + len(k) + v.EncodedSize()
	}
	return n
}

// FormatTime renders a Unix-seconds timestamp in RFC3339 UTC, the
// format the query language accepts in time predicates.
func FormatTime(sec int64) string {
	return time.Unix(sec, 0).UTC().Format(time.RFC3339)
}

// ParseTime parses an RFC3339 timestamp to Unix seconds.
func ParseTime(s string) (int64, error) {
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return 0, fmt.Errorf("tsdb: bad timestamp %q: %w", s, err)
	}
	return t.Unix(), nil
}
