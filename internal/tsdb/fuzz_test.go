package tsdb

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math"
	"os"
	"testing"
	"time"
)

// FuzzParseQuery feeds arbitrary statements through the full query
// front door — Parse for SELECTs, plus the Query dispatcher so the
// SHOW/DROP parsers and the executor are covered too. The invariant is
// simple: no input may panic, and Parse's (query, error) results must
// be mutually exclusive. Seeds come from the parser test corpus, both
// the statements that must parse and the ones that must not.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		// Valid statements, including the paper's Section III-D shape.
		`SELECT max("Reading") FROM "Power" WHERE "NodeId"='10.101.1.1' AND "Label"='NodePower' AND time >= '2020-04-20T12:00:00Z' AND time < '2020-04-21T12:00:00Z' GROUP BY time(5m)`,
		`SELECT mean(Reading) FROM Thermal WHERE Label='CPU1Temp' GROUP BY time(30s), NodeId LIMIT 10`,
		`SELECT "Reading" FROM "Power"`,
		`SELECT count(f), spread(f), stddev(f), median(f) FROM m GROUP BY time(1h)`,
		`SELECT last(f) FROM m WHERE NodeId =~ /^10\.101\./ GROUP BY time(10m), NodeId`,
		`SELECT f FROM m WHERE time >= 100 AND time < 200`,
		// Metadata and admin statements (handled by Query, not Parse).
		`SHOW MEASUREMENTS`,
		`SHOW SERIES FROM "Power"`,
		`SHOW TAG KEYS FROM m`,
		`SHOW TAG VALUES FROM m WITH KEY = NodeId`,
		`SHOW FIELD KEYS`,
		`DROP MEASUREMENT "Power"`,
		// Statements that must fail to parse.
		``,
		`FROM m`,
		`SELECT FROM m`,
		`SELECT max(f FROM m`,
		`SELECT nosuchagg(f) FROM m`,
		`SELECT f FROM m WHERE k='v`,
		`SELECT f FROM m WHERE time ~ 5`,
		`SELECT f FROM m WHERE time >= 'bogus'`,
		`SELECT mean(f) FROM m GROUP BY time(5q)`,
		`SELECT f FROM m GROUP BY time(5m)`,
		`SELECT f, max(f) FROM m`,
		`SELECT f FROM m WHERE NodeId =~ /[unclosed/`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	db := Open(Options{})
	if err := db.WritePoints([]Point{
		{Measurement: "Power", Tags: NewTags(map[string]string{"NodeId": "10.101.1.1", "Label": "NodePower"}),
			Fields: map[string]Value{"Reading": Float(314)}, Time: time.Unix(150, 0).Unix()},
		{Measurement: "m", Tags: NewTags(map[string]string{"NodeId": "n1"}),
			Fields: map[string]Value{"f": Int(7)}, Time: time.Unix(150, 0).Unix()},
	}); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, stmt string) {
		q, err := Parse(stmt)
		if err == nil && q == nil {
			t.Fatalf("Parse(%q) returned nil query and nil error", stmt)
		}
		if err != nil && q != nil {
			t.Fatalf("Parse(%q) returned both a query and an error: %v", stmt, err)
		}
		// The dispatcher also covers SHOW/DROP parsing and execution.
		// DROP against the shared db is fine: views are immutable and
		// the two seed measurements are re-created per process, so the
		// only invariant that matters here is "no panic, no result
		// alongside an error".
		res, qerr := db.Query(stmt)
		if qerr == nil && res == nil {
			t.Fatalf("Query(%q) returned nil result and nil error", stmt)
		}
		if qerr != nil && res != nil {
			t.Fatalf("Query(%q) returned both a result and an error: %v", stmt, qerr)
		}
	})
}

// FuzzBlockDecode feeds arbitrary bytes to the sealed-block decoder.
// Invariants: no input panics; allocation stays proportional to the
// input (a lying count header must be rejected, not trusted); and any
// payload that decodes successfully re-seals into an encoding that
// decodes back to the same column (round-trip stability).
func FuzzBlockDecode(f *testing.F) {
	seed := func(times []int64, vals []Value) {
		f.Add(sealBlock(times, vals).data)
	}
	seed([]int64{60}, []Value{Float(314)})
	seed([]int64{0, 60, 120, 180}, []Value{Float(200), Float(201), Float(200.5), Float(200.5)})
	seed([]int64{-120, -120, 0, 1 << 40}, []Value{Int(-5), Int(9000), Int(0), Int(1)})
	seed([]int64{10, 20, 30}, []Value{Str("OK"), Bool(true), Float(7)})
	trunc := sealBlock([]int64{0, 60, 120}, []Value{Float(1), Float(2), Float(3)}).data
	f.Add(trunc[:len(trunc)/2])              // torn payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1}) // absurd count
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		times, vals, err := decodeBlockData(data)
		if err != nil {
			return
		}
		if len(times) != len(vals) {
			t.Fatalf("decode returned %d times but %d values", len(times), len(vals))
		}
		// Decoded lengths are bounded by the input: every point costs at
		// least one payload byte, so a tiny input can never produce a
		// huge column.
		if len(times) > len(data) {
			t.Fatalf("%d bytes decoded into %d points", len(data), len(times))
		}
		if len(times) == 0 {
			return
		}
		// Re-seal and decode again: the encoder must be able to carry
		// anything the decoder accepts.
		t2, v2, err := decodeBlockData(sealBlock(times, vals).data)
		if err != nil {
			t.Fatalf("re-encoded block failed to decode: %v", err)
		}
		for i := range times {
			if t2[i] != times[i] {
				t.Fatalf("time %d changed across re-encode: %d -> %d", i, times[i], t2[i])
			}
			if w, g := vals[i], v2[i]; w.Kind != g.Kind ||
				(w.Kind == KindFloat && math.Float64bits(w.F) != math.Float64bits(g.F)) ||
				(w.Kind != KindFloat && w != g) {
				t.Fatalf("value %d changed across re-encode: %+v -> %+v", i, w, g)
			}
		}
	})
}

// walSeedSegment frames the given record payloads into a well-formed
// WAL segment image, for seeding FuzzWALReplay with valid logs.
func walSeedSegment(payloads ...[]byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(walMagic)
	var ver [2]byte
	binary.LittleEndian.PutUint16(ver[:], walVersion)
	buf.Write(ver[:])
	for _, p := range payloads {
		var hdr [walFrameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(p))
		buf.Write(hdr[:])
		buf.Write(p)
	}
	return buf.Bytes()
}

// FuzzWALReplay writes arbitrary bytes as a WAL segment and opens the
// directory. The invariant: recovery never panics and never errors on
// corrupt content (a torn or garbage tail is data loss to tolerate,
// not a failure), and the recovered database is fully usable. Seeds
// cover a valid multi-record log, every interesting truncation, and
// plain garbage.
func FuzzWALReplay(f *testing.F) {
	write := encodeWriteRecord([]Point{{
		Measurement: "Power",
		Tags:        Tags{{Key: "NodeId", Value: "n1"}},
		Fields:      map[string]Value{"Reading": Float(42), "Raw": Int(7), "Status": Str("OK"), "On": Bool(true)},
		Time:        60,
	}})
	drop := encodeDropRecord("Power")
	del := encodeDeleteBeforeRecord(120)

	valid := walSeedSegment(write, del, drop)
	f.Add(valid)
	f.Add(valid[:0])                              // empty file
	f.Add(valid[:3])                              // torn magic
	f.Add(valid[:walHeaderSize])                  // header only
	f.Add(valid[:walHeaderSize+3])                // torn frame header
	f.Add(valid[:walHeaderSize+walFrameHeader+5]) // torn payload
	f.Add(walSeedSegment([]byte{99}))             // unknown op, valid CRC
	f.Add(walSeedSegment(nil))                    // zero-length record
	f.Add([]byte("MWALxxxx garbage that is not a log at all"))
	huge := walSeedSegment(write)
	binary.LittleEndian.PutUint32(huge[walHeaderSize:], 1<<30) // length field lies
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(walSegmentPath(dir, 1), data, 0o644); err != nil {
			t.Fatal(err)
		}
		db, info, err := OpenDurable(Options{ShardDuration: 3600}, WALOptions{Dir: dir, Policy: FsyncNever})
		if err != nil {
			t.Fatalf("OpenDurable rejected corrupt-but-tolerable input: %v", err)
		}
		if info.TornFrames > 1 {
			t.Fatalf("single segment produced %d torn frames", info.TornFrames)
		}
		// The recovered DB must accept writes and answer queries.
		if err := db.WritePoint(Point{Measurement: "m", Fields: map[string]Value{"f": Int(1)}, Time: 1}); err != nil {
			t.Fatalf("write after recovery: %v", err)
		}
		if _, err := db.Query(`SELECT "f" FROM "m"`); err != nil {
			t.Fatalf("query after recovery: %v", err)
		}
		if err := db.CloseWAL(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		// A second recovery of the repaired directory is clean.
		_, info2, err := OpenDurable(Options{ShardDuration: 3600}, WALOptions{Dir: dir, Policy: FsyncNever})
		if err != nil {
			t.Fatalf("second recovery: %v", err)
		}
		if info2.TornFrames != 0 {
			t.Fatalf("recovery did not repair the log: second pass saw %+v", info2)
		}
	})
}
