package tsdb

import (
	"testing"
	"time"
)

// FuzzParseQuery feeds arbitrary statements through the full query
// front door — Parse for SELECTs, plus the Query dispatcher so the
// SHOW/DROP parsers and the executor are covered too. The invariant is
// simple: no input may panic, and Parse's (query, error) results must
// be mutually exclusive. Seeds come from the parser test corpus, both
// the statements that must parse and the ones that must not.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		// Valid statements, including the paper's Section III-D shape.
		`SELECT max("Reading") FROM "Power" WHERE "NodeId"='10.101.1.1' AND "Label"='NodePower' AND time >= '2020-04-20T12:00:00Z' AND time < '2020-04-21T12:00:00Z' GROUP BY time(5m)`,
		`SELECT mean(Reading) FROM Thermal WHERE Label='CPU1Temp' GROUP BY time(30s), NodeId LIMIT 10`,
		`SELECT "Reading" FROM "Power"`,
		`SELECT count(f), spread(f), stddev(f), median(f) FROM m GROUP BY time(1h)`,
		`SELECT last(f) FROM m WHERE NodeId =~ /^10\.101\./ GROUP BY time(10m), NodeId`,
		`SELECT f FROM m WHERE time >= 100 AND time < 200`,
		// Metadata and admin statements (handled by Query, not Parse).
		`SHOW MEASUREMENTS`,
		`SHOW SERIES FROM "Power"`,
		`SHOW TAG KEYS FROM m`,
		`SHOW TAG VALUES FROM m WITH KEY = NodeId`,
		`SHOW FIELD KEYS`,
		`DROP MEASUREMENT "Power"`,
		// Statements that must fail to parse.
		``,
		`FROM m`,
		`SELECT FROM m`,
		`SELECT max(f FROM m`,
		`SELECT nosuchagg(f) FROM m`,
		`SELECT f FROM m WHERE k='v`,
		`SELECT f FROM m WHERE time ~ 5`,
		`SELECT f FROM m WHERE time >= 'bogus'`,
		`SELECT mean(f) FROM m GROUP BY time(5q)`,
		`SELECT f FROM m GROUP BY time(5m)`,
		`SELECT f, max(f) FROM m`,
		`SELECT f FROM m WHERE NodeId =~ /[unclosed/`,
	}
	for _, s := range seeds {
		f.Add(s)
	}

	db := Open(Options{})
	if err := db.WritePoints([]Point{
		{Measurement: "Power", Tags: NewTags(map[string]string{"NodeId": "10.101.1.1", "Label": "NodePower"}),
			Fields: map[string]Value{"Reading": Float(314)}, Time: time.Unix(150, 0).Unix()},
		{Measurement: "m", Tags: NewTags(map[string]string{"NodeId": "n1"}),
			Fields: map[string]Value{"f": Int(7)}, Time: time.Unix(150, 0).Unix()},
	}); err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, stmt string) {
		q, err := Parse(stmt)
		if err == nil && q == nil {
			t.Fatalf("Parse(%q) returned nil query and nil error", stmt)
		}
		if err != nil && q != nil {
			t.Fatalf("Parse(%q) returned both a query and an error: %v", stmt, err)
		}
		// The dispatcher also covers SHOW/DROP parsing and execution.
		// DROP against the shared db is fine: views are immutable and
		// the two seed measurements are re-created per process, so the
		// only invariant that matters here is "no panic, no result
		// alongside an error".
		res, qerr := db.Query(stmt)
		if qerr == nil && res == nil {
			t.Fatalf("Query(%q) returned nil result and nil error", stmt)
		}
		if qerr != nil && res != nil {
			t.Fatalf("Query(%q) returned both a result and an error: %v", stmt, qerr)
		}
	})
}
