package tsdb

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
)

// snapshotPath names a checkpoint snapshot inside a WAL directory. The
// embedded number is the checkpoint's cut boundary: every record in
// segments numbered below it is folded into the snapshot, and recovery
// replays only segments at or above it. Carrying the boundary in the
// file name makes "snapshot + covered prefix" a single atomic rename —
// the store appends duplicate timestamps rather than overwriting, so a
// crash between snapshot and log truncation must not replay covered
// records a second time.
func snapshotPath(dir string, boundary uint64) string {
	return filepath.Join(dir, fmt.Sprintf("snapshot-%08d.mtsd", boundary))
}

// walSnapshot describes one on-disk checkpoint snapshot.
type walSnapshot struct {
	boundary uint64
	path     string
}

// listSnapshots returns the directory's checkpoint snapshots in
// boundary order.
func listSnapshots(dir string) ([]walSnapshot, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var snaps []walSnapshot
	for _, e := range entries {
		var boundary uint64
		if n, err := fmt.Sscanf(e.Name(), "snapshot-%08d.mtsd", &boundary); n != 1 || err != nil {
			continue
		}
		snaps = append(snaps, walSnapshot{boundary: boundary, path: filepath.Join(dir, e.Name())})
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].boundary < snaps[j].boundary })
	return snaps, nil
}

// RecoveryInfo summarizes what OpenDurable reconstructed.
type RecoveryInfo struct {
	// SnapshotLoaded reports whether a checkpoint snapshot existed and
	// was restored before replay.
	SnapshotLoaded bool
	// SnapshotPoints is the point count restored from the snapshot.
	SnapshotPoints int64
	// Segments is how many WAL segment files were scanned.
	Segments int
	// Records and Points count the WAL entries re-applied on top of the
	// snapshot.
	Records int64
	Points  int64
	// TornFrames counts bad frames (short, CRC-mismatched, or
	// undecodable) found at the tail; the log was truncated at the
	// first one and TruncatedBytes were discarded.
	TornFrames     int64
	TruncatedBytes int64
}

// OpenDurable opens a crash-safe DB rooted at wopts.Dir: it restores
// the checkpoint snapshot if one exists, replays the write-ahead log
// on top (recovering the longest valid prefix and truncating a torn
// tail in place), then attaches a fresh log segment so every
// subsequent mutation is logged before it applies. The returned
// RecoveryInfo is also visible through DB.WALStats.
func OpenDurable(opts Options, wopts WALOptions) (*DB, RecoveryInfo, error) {
	var info RecoveryInfo
	if wopts.Dir == "" {
		return nil, info, fmt.Errorf("tsdb: open durable: WAL directory required")
	}
	if err := os.MkdirAll(wopts.Dir, 0o755); err != nil {
		return nil, info, fmt.Errorf("tsdb: open durable: %w", err)
	}
	wopts.applyDefaults()

	// The newest snapshot wins; older snapshots and the segments its
	// boundary covers are leftovers from a checkpoint that crashed
	// between its atomic rename and its truncation pass. Replaying a
	// covered segment would apply its records a second time, so stale
	// files are deleted, never replayed.
	snaps, err := listSnapshots(wopts.Dir)
	if err != nil {
		return nil, info, fmt.Errorf("tsdb: open durable: %w", err)
	}
	var boundary uint64
	var db *DB
	var restoredView *dbView // the snapshot's view, pre-replay
	if len(snaps) > 0 {
		newest := snaps[len(snaps)-1]
		db, err = loadFileOptions(newest.path, opts)
		if err != nil {
			return nil, info, fmt.Errorf("tsdb: open durable: %w", err)
		}
		restoredView = db.view.Load()
		boundary = newest.boundary
		info.SnapshotLoaded = true
		info.SnapshotPoints = db.Stats().PointsWritten
		for _, stale := range snaps[:len(snaps)-1] {
			if err := os.Remove(stale.path); err != nil {
				return nil, info, fmt.Errorf("tsdb: open durable: drop stale snapshot: %w", err)
			}
		}
	} else {
		db = Open(opts)
	}

	segs, err := listWALSegments(wopts.Dir)
	if err != nil {
		return nil, info, fmt.Errorf("tsdb: open durable: %w", err)
	}
	live := segs[:0]
	for _, seg := range segs {
		if seg.seq < boundary {
			if err := os.Remove(seg.path); err != nil {
				return nil, info, fmt.Errorf("tsdb: open durable: drop covered segment: %w", err)
			}
			continue
		}
		live = append(live, seg)
	}
	surviving, err := replayWAL(db, live, &info)
	if err != nil {
		return nil, info, err
	}

	if db.cold != nil {
		// Sweep cold segments neither the on-disk snapshot nor the
		// replayed state references: crashed spills, crashed
		// compactions, and files for data the replay dropped. The
		// snapshot's own references must survive — this same recovery
		// may run again from the same snapshot after another crash.
		if err := db.cold.sweepOrphans(restoredView, db.view.Load()); err != nil {
			return nil, info, fmt.Errorf("tsdb: open durable: %w", err)
		}
	}

	w, err := openWAL(wopts, surviving)
	if err != nil {
		return nil, info, err
	}
	w.mu.Lock()
	w.stats.Replayed = info.Records
	w.stats.ReplayedPoints = info.Points
	w.stats.TornFrames = info.TornFrames
	w.stats.TruncatedBytes = info.TruncatedBytes
	w.mu.Unlock()
	db.wal = w
	return db, info, nil
}

// replayWAL applies every decodable record in segment order. At the
// first bad frame it truncates that segment at the frame boundary,
// deletes any later segments (records after a tear have no reliable
// ordering), and stops — the recovered state is the longest valid
// prefix of the log. It returns the segments that remain on disk.
func replayWAL(db *DB, segs []walSegment, info *RecoveryInfo) ([]walSegment, error) {
	info.Segments = len(segs)
	for i, seg := range segs {
		tornAt, err := replaySegment(db, seg, info)
		if err != nil {
			return nil, err
		}
		if tornAt < 0 {
			continue // segment fully replayed
		}
		info.TornFrames++
		info.TruncatedBytes += seg.size - tornAt
		surviving := append([]walSegment(nil), segs[:i]...)
		if tornAt <= walHeaderSize {
			// Nothing valid remains in this segment (torn or foreign
			// header, or an empty record area): drop the file so later
			// recoveries don't re-count it.
			if err := os.Remove(seg.path); err != nil {
				return nil, fmt.Errorf("tsdb: wal: drop torn segment: %w", err)
			}
		} else {
			if err := os.Truncate(seg.path, tornAt); err != nil {
				return nil, fmt.Errorf("tsdb: wal: truncate torn tail: %w", err)
			}
			seg.size = tornAt
			surviving = append(surviving, seg)
		}
		for _, later := range segs[i+1:] {
			info.TruncatedBytes += later.size
			if err := os.Remove(later.path); err != nil {
				return nil, fmt.Errorf("tsdb: wal: drop post-tear segment: %w", err)
			}
		}
		return surviving, nil
	}
	return segs, nil
}

// replaySegment applies one segment's records to db. It returns -1
// when the whole segment replayed cleanly, or the byte offset of the
// first bad frame (never a mid-frame offset).
func replaySegment(db *DB, seg walSegment, info *RecoveryInfo) (int64, error) {
	data, err := os.ReadFile(seg.path)
	if err != nil {
		return 0, fmt.Errorf("tsdb: wal: read segment: %w", err)
	}
	if len(data) < walHeaderSize || string(data[:4]) != walMagic ||
		binary.LittleEndian.Uint16(data[4:6]) != walVersion {
		// The segment header itself is torn or foreign; nothing in this
		// file is trustworthy.
		return 0, nil
	}
	off := int64(walHeaderSize)
	size := int64(len(data))
	for off < size {
		if size-off < walFrameHeader {
			return off, nil // torn mid-header
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		wantCRC := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxWALRecord || length > size-off-walFrameHeader {
			return off, nil // torn mid-payload (or corrupt length)
		}
		payload := data[off+walFrameHeader : off+walFrameHeader+length]
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return off, nil
		}
		rec, err := decodeWALRecord(payload)
		if err != nil {
			return off, nil // CRC-valid but undecodable: corrupt frame
		}
		if err := applyWALRecord(db, rec); err != nil {
			// A record that validated at log time but fails to apply is
			// corruption of a subtler kind; stop at the same boundary.
			return off, nil
		}
		info.Records++
		info.Points += int64(len(rec.points))
		off += walFrameHeader + length
	}
	return -1, nil
}

// applyWALRecord re-applies one mutation. The DB has no WAL attached
// during replay, so nothing is re-logged; rollup specs are registered
// only after OpenDurable returns, so replaying a write never re-runs
// tier maintenance — composite records carry their derived ops and
// replay them verbatim instead.
func applyWALRecord(db *DB, rec walRecord) error {
	switch rec.op {
	case walOpWrite:
		return db.WritePoints(rec.points)
	case walOpDrop:
		_, err := db.DropMeasurement(rec.name)
		return err
	case walOpDeleteBefore:
		_, err := db.DeleteBefore(rec.before)
		return err
	case walOpBatch:
		return db.applyBatchRecord(rec.points, rec.ops)
	case walOpClearRange:
		return db.applyClearRange(rec.name, rec.start, rec.end)
	default:
		return fmt.Errorf("tsdb: wal: bad op %d", rec.op)
	}
}

// applyBatchRecord replays a composite record: the raw write batch,
// then each rollup op exactly as maintenance produced it at log time
// (clear the stale bucket range, write the recomputed rows). One
// publish at the end keeps the whole record atomic for readers, the
// same guarantee the original write gave.
func (db *DB) applyBatchRecord(points []Point, ops []rollupOp) error {
	for i := range points {
		if err := points[i].Validate(); err != nil {
			return err
		}
	}
	wait := db.lockWrite()
	defer db.unlockWrite()
	v := db.view.Load()
	if len(points) > 0 {
		b := newBatch(v, db.shardDuration, db.blockSize)
		for i := range points {
			p := &points[i]
			sorted := p.Tags.Sorted()
			key := seriesKey(p.Measurement, sorted)
			b.indexSeries(p, key, sorted)
			b.writePoint(p, key, sorted)
		}
		v = b.finish(true, wait.Nanoseconds())
	}
	for i := range ops {
		op := &ops[i]
		if op.clearStart < op.clearEnd {
			if nv, _ := clearMeasurementRangeView(v, op.target, op.clearStart, op.clearEnd, db.blockSize, 0); nv != nil {
				v = nv
			}
		}
		if len(op.points) > 0 {
			v = applyRollupPoints(v, op.points, db.shardDuration, db.blockSize)
		}
	}
	db.publish(v)
	return nil
}

// applyClearRange replays a measurement range clear.
func (db *DB) applyClearRange(name string, start, end int64) error {
	wait := db.lockWrite()
	defer db.unlockWrite()
	if nv, _ := clearMeasurementRangeView(db.view.Load(), name, start, end, db.blockSize, wait.Nanoseconds()); nv != nil {
		db.publish(nv)
	}
	return nil
}

// Checkpoint makes the WAL directory's snapshot current and truncates
// the log: it cuts a segment boundary under the write lock (so the
// pinned view contains exactly the records in the sealed segments),
// serializes that view to a boundary-stamped snapshot file, and
// deletes the sealed prefix plus any older snapshot. Concurrent writes
// proceed after the cut and stay logged in the new segment. A crash
// anywhere in the protocol recovers consistently: before the
// snapshot's atomic rename the previous snapshot + full log apply;
// after it, recovery loads the new snapshot and skips (deletes) the
// covered segments, so no record is ever applied twice. It is an error
// on a DB without a WAL.
//
// With a cold tier attached, Checkpoint is also the tier's maintenance
// point: mostly-garbage segment files are compacted (rewritten into a
// fresh generation) before the cut so the snapshot records the new
// layout, and after the snapshot is durable, segment files that
// neither it nor the live view references are deleted. The ordering
// means a crash anywhere leaves at worst extra garbage files — never a
// referenced frame missing.
func (db *DB) Checkpoint() error {
	if db.wal == nil {
		return fmt.Errorf("tsdb: checkpoint: no WAL attached (use OpenDurable)")
	}
	if err := db.compactCold(); err != nil {
		return fmt.Errorf("tsdb: checkpoint: cold compaction: %w", err)
	}
	_ = db.lockWrite()
	boundary, err := db.wal.cut()
	v := db.view.Load()
	db.unlockWrite()
	if err != nil {
		return fmt.Errorf("tsdb: checkpoint: %w", err)
	}
	if err := saveViewFile(v, db.shardDuration, snapshotPath(db.wal.dir, boundary), false); err != nil {
		return fmt.Errorf("tsdb: checkpoint: %w", err)
	}
	if err := db.wal.truncateBefore(boundary); err != nil {
		return fmt.Errorf("tsdb: checkpoint: %w", err)
	}
	if db.cold != nil {
		// Under the write lock so no spill can create-and-reference a
		// new segment file between the liveness scan and the deletes.
		_ = db.lockWrite()
		sweepErr := db.cold.sweepOrphans(v, db.view.Load())
		db.unlockWrite()
		if sweepErr != nil {
			return fmt.Errorf("tsdb: checkpoint: cold sweep: %w", sweepErr)
		}
	}
	return nil
}

// WALStats reports write-ahead-log counters; the zero value when the
// DB has no WAL (it was opened with Open, not OpenDurable).
func (db *DB) WALStats() WALStats {
	if db.wal == nil {
		return WALStats{}
	}
	return db.wal.Stats()
}

// CloseWAL syncs and closes the write-ahead log, if any. The DB
// remains readable and writable in memory, but mutations after close
// fail (the durability contract would be silently broken otherwise).
func (db *DB) CloseWAL() error {
	if db.wal == nil {
		return nil
	}
	return db.wal.Close()
}
