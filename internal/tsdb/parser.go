package tsdb

import (
	"container/list"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"time"
	"unicode"
)

// Compiled regex predicates are cached by pattern text: batched fan-out
// queries reuse the same node-alternation patterns on every request,
// and compiling them dominates the parse cost otherwise. The cache is a
// small LRU so the steady-state fan-out patterns stay hot while
// adversarial workloads sending endless distinct patterns evict only
// the coldest entry instead of growing memory without limit.
const reCacheLimit = 512

type regexCache struct {
	mu    sync.Mutex
	ll    *list.List // front = most recent; holds *reCacheEntry
	items map[string]*list.Element
}

type reCacheEntry struct {
	pattern string
	re      *regexp.Regexp
}

var reCache = &regexCache{ll: list.New(), items: make(map[string]*list.Element)}

func (c *regexCache) get(pattern string) (*regexp.Regexp, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[pattern]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*reCacheEntry).re, true
}

func (c *regexCache) put(pattern string, re *regexp.Regexp) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[pattern]; ok {
		c.ll.MoveToFront(el)
		return
	}
	c.items[pattern] = c.ll.PushFront(&reCacheEntry{pattern, re})
	for c.ll.Len() > reCacheLimit {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.items, el.Value.(*reCacheEntry).pattern)
	}
}

func (c *regexCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func compileCachedRegex(pattern string) (*regexp.Regexp, error) {
	if re, ok := reCache.get(pattern); ok {
		return re, nil
	}
	// Compile outside the lock: patterns can be pathologically slow to
	// compile, and that must not serialize concurrent parses.
	re, err := regexp.Compile(pattern)
	if err != nil {
		return nil, err
	}
	reCache.put(pattern, re)
	return re, nil
}

// Parse parses an InfluxQL-subset statement into a Query.
func Parse(s string) (*Query, error) {
	p := &parser{lex: newLexer(s)}
	q, err := p.parse()
	if err != nil {
		return nil, fmt.Errorf("tsdb: parse %q: %w", s, err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse for statically-known statements; it panics on
// error.
func MustParse(s string) *Query {
	q, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return q
}

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokString // 'single quoted'
	tokNumber
	tokDuration // 5m, 30s, 2h, 1d
	tokLParen
	tokRParen
	tokComma
	tokEq
	tokMatch // =~
	tokLT
	tokLE
	tokGT
	tokGE
	tokStar
	tokRegex // /pattern/
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src  string
	pos  int
	toks []token
	err  error
}

func newLexer(src string) *lexer {
	l := &lexer{src: src}
	l.run()
	return l
}

func (l *lexer) emit(k tokenKind, text string, pos int) {
	l.toks = append(l.toks, token{kind: k, text: text, pos: pos})
}

func (l *lexer) run() {
	s := l.src
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			l.emit(tokLParen, "(", i)
			i++
		case c == ')':
			l.emit(tokRParen, ")", i)
			i++
		case c == ',':
			l.emit(tokComma, ",", i)
			i++
		case c == '=':
			if i+1 < len(s) && s[i+1] == '~' {
				l.emit(tokMatch, "=~", i)
				i += 2
			} else {
				l.emit(tokEq, "=", i)
				i++
			}
		case c == '/':
			// Regex literal: scan to the next unescaped '/'. The only
			// escape the lexer interprets is \/ (a literal slash); every
			// other backslash sequence is passed through to the regexp
			// engine untouched.
			var sb strings.Builder
			j := i + 1
			closed := false
			for j < len(s) {
				if s[j] == '\\' && j+1 < len(s) && s[j+1] == '/' {
					sb.WriteByte('/')
					j += 2
					continue
				}
				if s[j] == '/' {
					closed = true
					break
				}
				sb.WriteByte(s[j])
				j++
			}
			if !closed {
				l.err = fmt.Errorf("unterminated regex at offset %d", i)
				return
			}
			l.emit(tokRegex, sb.String(), i)
			i = j + 1
		case c == '*':
			l.emit(tokStar, "*", i)
			i++
		case c == '<':
			if i+1 < len(s) && s[i+1] == '=' {
				l.emit(tokLE, "<=", i)
				i += 2
			} else {
				l.emit(tokLT, "<", i)
				i++
			}
		case c == '>':
			if i+1 < len(s) && s[i+1] == '=' {
				l.emit(tokGE, ">=", i)
				i += 2
			} else {
				l.emit(tokGT, ">", i)
				i++
			}
		case c == '\'':
			j := strings.IndexByte(s[i+1:], '\'')
			if j < 0 {
				l.err = fmt.Errorf("unterminated string at offset %d", i)
				return
			}
			l.emit(tokString, s[i+1:i+1+j], i)
			i += j + 2
		case c == '"':
			j := strings.IndexByte(s[i+1:], '"')
			if j < 0 {
				l.err = fmt.Errorf("unterminated identifier at offset %d", i)
				return
			}
			l.emit(tokIdent, s[i+1:i+1+j], i)
			i += j + 2
		case c >= '0' && c <= '9' || c == '-' && i+1 < len(s) && s[i+1] >= '0' && s[i+1] <= '9':
			j := i + 1
			for j < len(s) && (s[j] >= '0' && s[j] <= '9' || s[j] == '.') {
				j++
			}
			// A trailing duration unit makes it a duration literal.
			k := j
			for k < len(s) && isLetter(s[k]) {
				k++
			}
			if k > j {
				l.emit(tokDuration, s[i:k], i)
				i = k
			} else {
				l.emit(tokNumber, s[i:j], i)
				i = j
			}
		case isLetter(c) || c == '_':
			j := i + 1
			for j < len(s) && (isLetter(s[j]) || s[j] >= '0' && s[j] <= '9' || s[j] == '_' || s[j] == '.') {
				j++
			}
			l.emit(tokIdent, s[i:j], i)
			i = j
		default:
			l.err = fmt.Errorf("unexpected character %q at offset %d", rune(c), i)
			return
		}
	}
}

func isLetter(c byte) bool {
	return unicode.IsLetter(rune(c))
}

type parser struct {
	lex *lexer
	i   int
}

func (p *parser) peek() token {
	if p.i < len(p.lex.toks) {
		return p.lex.toks[p.i]
	}
	return token{kind: tokEOF}
}

func (p *parser) next() token {
	t := p.peek()
	if t.kind != tokEOF {
		p.i++
	}
	return t
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	t := p.next()
	if t.kind != k {
		return t, fmt.Errorf("expected %s, got %s", what, t)
	}
	return t, nil
}

func (p *parser) keyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && strings.EqualFold(t.text, kw) {
		p.i++
		return true
	}
	return false
}

func (p *parser) parse() (*Query, error) {
	if p.lex.err != nil {
		return nil, p.lex.err
	}
	if !p.keyword("SELECT") {
		return nil, fmt.Errorf("expected SELECT, got %s", p.peek())
	}
	q := &Query{Start: math.MinInt64, End: math.MaxInt64}
	for {
		fe, err := p.parseFieldExpr()
		if err != nil {
			return nil, err
		}
		q.Fields = append(q.Fields, fe)
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if !p.keyword("FROM") {
		return nil, fmt.Errorf("expected FROM, got %s", p.peek())
	}
	m, err := p.expect(tokIdent, "measurement name")
	if err != nil {
		return nil, err
	}
	q.Measurement = m.text
	if p.keyword("WHERE") {
		if err := p.parseWhere(q); err != nil {
			return nil, err
		}
	}
	if p.keyword("GROUP") {
		if !p.keyword("BY") {
			return nil, fmt.Errorf("expected BY after GROUP, got %s", p.peek())
		}
		if err := p.parseGroupBy(q); err != nil {
			return nil, err
		}
	}
	if p.keyword("ORDER") {
		if !p.keyword("BY") {
			return nil, fmt.Errorf("expected BY after ORDER, got %s", p.peek())
		}
		t := p.next()
		if t.kind != tokIdent || !strings.EqualFold(t.text, "time") {
			return nil, fmt.Errorf("only ORDER BY time is supported, got %s", t)
		}
		switch {
		case p.keyword("DESC"):
			q.Descending = true
		case p.keyword("ASC"):
		}
	}
	if p.keyword("LIMIT") {
		n, err := p.expect(tokNumber, "LIMIT count")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil {
			return nil, fmt.Errorf("bad LIMIT %q", n.text)
		}
		q.Limit = v
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("unexpected trailing input %s", t)
	}
	return q, nil
}

func (p *parser) parseFieldExpr() (FieldExpr, error) {
	id, err := p.expect(tokIdent, "field or function")
	if err != nil {
		return FieldExpr{}, err
	}
	if p.peek().kind != tokLParen {
		return FieldExpr{Field: id.text}, nil
	}
	p.next() // (
	field, err := p.expect(tokIdent, "field name")
	if err != nil {
		return FieldExpr{}, err
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return FieldExpr{}, err
	}
	return FieldExpr{Func: strings.ToLower(id.text), Field: field.text}, nil
}

func (p *parser) parseWhere(q *Query) error {
	for {
		id, err := p.expect(tokIdent, "tag key or time")
		if err != nil {
			return err
		}
		if strings.EqualFold(id.text, "time") {
			if err := p.parseTimeCond(q); err != nil {
				return err
			}
		} else if p.peek().kind == tokMatch {
			p.next()
			v, err := p.expect(tokRegex, "regex literal like /^(a|b)$/")
			if err != nil {
				return err
			}
			re, err := compileCachedRegex(v.text)
			if err != nil {
				return fmt.Errorf("bad regex for %q: %v", id.text, err)
			}
			q.TagRegexps = append(q.TagRegexps, TagRegex{Key: id.text, Re: re})
		} else {
			if _, err := p.expect(tokEq, "="); err != nil {
				return err
			}
			v, err := p.expect(tokString, "tag value string")
			if err != nil {
				return err
			}
			q.TagConds = append(q.TagConds, TagCond{Key: id.text, Value: v.text})
		}
		if !p.keyword("AND") {
			return nil
		}
	}
}

func (p *parser) parseTimeCond(q *Query) error {
	op := p.next()
	switch op.kind {
	case tokGE, tokGT, tokLT, tokLE, tokEq:
	default:
		return fmt.Errorf("expected comparison after time, got %s", op)
	}
	v := p.next()
	var sec int64
	switch v.kind {
	case tokString:
		s, err := ParseTime(v.text)
		if err != nil {
			return err
		}
		sec = s
	case tokNumber:
		s, err := strconv.ParseInt(v.text, 10, 64)
		if err != nil {
			return fmt.Errorf("bad epoch literal %q", v.text)
		}
		sec = s
	default:
		return fmt.Errorf("expected timestamp literal, got %s", v)
	}
	switch op.kind {
	case tokGE:
		q.Start = sec
	case tokGT:
		q.Start = sec + 1
	case tokLT:
		q.End = sec
	case tokLE:
		q.End = sec + 1
	case tokEq:
		q.Start, q.End = sec, sec+1
	}
	return nil
}

func (p *parser) parseGroupBy(q *Query) error {
	for {
		t := p.peek()
		if t.kind == tokIdent && strings.EqualFold(t.text, "time") {
			// Could be time(5m) or a tag literally named time only via
			// quoting; unquoted time means the bucket clause.
			p.next()
			if _, err := p.expect(tokLParen, "( after time"); err != nil {
				return err
			}
			d, err := p.expect(tokDuration, "duration like 5m")
			if err != nil {
				return err
			}
			iv, err := parseDuration(d.text)
			if err != nil {
				return err
			}
			if _, err := p.expect(tokRParen, ")"); err != nil {
				return err
			}
			q.GroupByTime = int64(iv / time.Second)
		} else if t.kind == tokIdent {
			p.next()
			q.GroupByTags = append(q.GroupByTags, t.text)
		} else if t.kind == tokStar {
			p.next()
			q.GroupByTags = append(q.GroupByTags, "*")
		} else {
			return fmt.Errorf("expected group key, got %s", t)
		}
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		return nil
	}
}

// parseDuration parses InfluxQL duration literals (s, m, h, d, w).
func parseDuration(s string) (time.Duration, error) {
	i := 0
	for i < len(s) && (s[i] >= '0' && s[i] <= '9' || s[i] == '.') {
		i++
	}
	if i == 0 || i == len(s) {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	n, err := strconv.ParseFloat(s[:i], 64)
	if err != nil {
		return 0, fmt.Errorf("bad duration %q", s)
	}
	var unit time.Duration
	switch s[i:] {
	case "s":
		unit = time.Second
	case "m":
		unit = time.Minute
	case "h":
		unit = time.Hour
	case "d":
		unit = 24 * time.Hour
	case "w":
		unit = 7 * 24 * time.Hour
	default:
		return 0, fmt.Errorf("bad duration unit in %q", s)
	}
	return time.Duration(n * float64(unit)), nil
}
