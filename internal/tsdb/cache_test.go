package tsdb

import (
	"fmt"
	"testing"
)

// cacheFixture builds a DB whose columns are mostly sealed: nodes
// series of perNode minutely points with an aggressive seal threshold,
// so scans must decode blocks through the decode cache.
func cacheFixture(t *testing.T, budget int64, nodes, perNode int) *DB {
	t.Helper()
	db := Open(Options{BlockSize: 32, DecodeCacheBytes: budget})
	var pts []Point
	for n := 0; n < nodes; n++ {
		for i := 0; i < perNode; i++ {
			pts = append(pts, Point{
				Measurement: "Power",
				Tags:        Tags{{"NodeId", fmt.Sprintf("n%d", n)}},
				Fields:      map[string]Value{"Reading": Float(float64(100 + i%50))},
				Time:        int64(i * 60),
			})
		}
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	if cs := db.Compression(); cs.BlocksSealed == 0 {
		t.Fatal("fixture sealed no blocks")
	}
	return db
}

// TestDecodeCacheCounters checks the basic contract: a cold scan is
// all misses, an immediately repeated scan is all hits, and resident
// bytes track the admitted payloads.
func TestDecodeCacheCounters(t *testing.T) {
	db := cacheFixture(t, 1<<30, 4, 256)
	scan := func() {
		t.Helper()
		if _, err := db.Query(`SELECT max("Reading") FROM "Power" GROUP BY time(5m), "NodeId"`); err != nil {
			t.Fatal(err)
		}
	}
	scan()
	cold := db.CacheStats()
	if cold.Misses == 0 || cold.Hits != 0 {
		t.Fatalf("cold scan: %+v, want misses only", cold)
	}
	if cold.ResidentBytes == 0 || cold.Entries == 0 {
		t.Fatalf("cold scan admitted nothing: %+v", cold)
	}
	scan()
	warm := db.CacheStats()
	if warm.Misses != cold.Misses {
		t.Fatalf("warm scan re-decoded: %+v after %+v", warm, cold)
	}
	if warm.Hits == 0 {
		t.Fatalf("warm scan missed the cache: %+v", warm)
	}
	if warm.Evictions != 0 {
		t.Fatalf("evictions under a roomy budget: %+v", warm)
	}
}

// TestDecodeCacheBudgetEviction is the cold-scan stress: with a budget
// far smaller than the decoded working set, repeated full scans must
// keep resident bytes at or under budget by evicting, never crash, and
// still answer correctly.
func TestDecodeCacheBudgetEviction(t *testing.T) {
	const budget = 64 * 1024              // ~1170 points of 64k decoded
	db := cacheFixture(t, budget, 8, 512) // 4096 points decoded cold
	for pass := 0; pass < 3; pass++ {
		res, err := db.Query(`SELECT count("Reading") FROM "Power"`)
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Series[0].Rows[0].Values[0].I; n != 8*512 {
			t.Fatalf("pass %d: count = %d, want %d", pass, n, 8*512)
		}
		cs := db.CacheStats()
		if cs.ResidentBytes > budget {
			t.Fatalf("pass %d: resident %d exceeds budget %d: %+v", pass, cs.ResidentBytes, budget, cs)
		}
	}
	cs := db.CacheStats()
	if cs.Evictions == 0 {
		t.Fatalf("working set exceeds budget yet nothing evicted: %+v", cs)
	}
	if cs.BudgetBytes != budget {
		t.Fatalf("budget reported %d, want %d", cs.BudgetBytes, budget)
	}
}

// TestDecodeCacheUnbounded checks the A/B baseline: a negative budget
// disables eviction entirely (PR 5 keep-everything behavior).
func TestDecodeCacheUnbounded(t *testing.T) {
	db := cacheFixture(t, -1, 8, 512)
	for pass := 0; pass < 2; pass++ {
		if _, err := db.Query(`SELECT count("Reading") FROM "Power"`); err != nil {
			t.Fatal(err)
		}
	}
	cs := db.CacheStats()
	if cs.Evictions != 0 {
		t.Fatalf("unbounded cache evicted: %+v", cs)
	}
	if cs.BudgetBytes >= 0 {
		t.Fatalf("budget reported %d, want negative sentinel", cs.BudgetBytes)
	}
	if cs.ResidentBytes == 0 || cs.Hits == 0 {
		t.Fatalf("unbounded cache not caching: %+v", cs)
	}
}
