package tsdb

import (
	"fmt"
	"testing"
)

// cacheFixture builds a DB whose columns are mostly sealed: nodes
// series of perNode minutely points with an aggressive seal threshold,
// so scans must decode blocks through the decode cache.
func cacheFixture(t *testing.T, budget int64, nodes, perNode int) *DB {
	t.Helper()
	db := Open(Options{BlockSize: 32, DecodeCacheBytes: budget})
	var pts []Point
	for n := 0; n < nodes; n++ {
		for i := 0; i < perNode; i++ {
			pts = append(pts, Point{
				Measurement: "Power",
				Tags:        Tags{{"NodeId", fmt.Sprintf("n%d", n)}},
				Fields:      map[string]Value{"Reading": Float(float64(100 + i%50))},
				Time:        int64(i * 60),
			})
		}
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	if cs := db.Compression(); cs.BlocksSealed == 0 {
		t.Fatal("fixture sealed no blocks")
	}
	return db
}

// TestDecodeCacheCounters checks the basic contract: a cold scan is
// all misses, an immediately repeated scan is all hits, and resident
// bytes track the admitted payloads.
func TestDecodeCacheCounters(t *testing.T) {
	db := cacheFixture(t, 1<<30, 4, 256)
	scan := func() {
		t.Helper()
		if _, err := db.Query(`SELECT max("Reading") FROM "Power" GROUP BY time(5m), "NodeId"`); err != nil {
			t.Fatal(err)
		}
	}
	scan()
	cold := db.CacheStats()
	if cold.Misses == 0 || cold.Hits != 0 {
		t.Fatalf("cold scan: %+v, want misses only", cold)
	}
	if cold.ResidentBytes == 0 || cold.Entries == 0 {
		t.Fatalf("cold scan admitted nothing: %+v", cold)
	}
	scan()
	warm := db.CacheStats()
	if warm.Misses != cold.Misses {
		t.Fatalf("warm scan re-decoded: %+v after %+v", warm, cold)
	}
	if warm.Hits == 0 {
		t.Fatalf("warm scan missed the cache: %+v", warm)
	}
	if warm.Evictions != 0 {
		t.Fatalf("evictions under a roomy budget: %+v", warm)
	}
}

// TestDecodeCacheBudgetEviction is the cold-scan stress: with a budget
// far smaller than the decoded working set, repeated full scans must
// keep resident bytes at or under budget by evicting, never crash, and
// still answer correctly.
func TestDecodeCacheBudgetEviction(t *testing.T) {
	const budget = 64 * 1024              // ~1170 points of 64k decoded
	db := cacheFixture(t, budget, 8, 512) // 4096 points decoded cold
	for pass := 0; pass < 3; pass++ {
		res, err := db.Query(`SELECT count("Reading") FROM "Power"`)
		if err != nil {
			t.Fatal(err)
		}
		if n := res.Series[0].Rows[0].Values[0].I; n != 8*512 {
			t.Fatalf("pass %d: count = %d, want %d", pass, n, 8*512)
		}
		cs := db.CacheStats()
		if cs.ResidentBytes > budget {
			t.Fatalf("pass %d: resident %d exceeds budget %d: %+v", pass, cs.ResidentBytes, budget, cs)
		}
	}
	cs := db.CacheStats()
	if cs.Evictions == 0 {
		t.Fatalf("working set exceeds budget yet nothing evicted: %+v", cs)
	}
	if cs.BudgetBytes != budget {
		t.Fatalf("budget reported %d, want %d", cs.BudgetBytes, budget)
	}
}

// TestDecodeCachePurgeOnDelete pins the drop-path lifecycle: deleting
// shards must purge their decode-cache entries. Before the purge hook,
// DeleteBefore left dead blocks charged against the budget forever —
// a quiet database never reclaimed them, and CLOCK pressure evicted
// live blocks while the corpses stayed resident.
func TestDecodeCachePurgeOnDelete(t *testing.T) {
	db := cacheFixture(t, 1<<30, 4, 256)
	if _, err := db.Query(`SELECT count("Reading") FROM "Power"`); err != nil {
		t.Fatal(err)
	}
	before := db.CacheStats()
	if before.ResidentBytes == 0 || before.Entries == 0 {
		t.Fatalf("scan admitted nothing: %+v", before)
	}
	if _, err := db.DeleteBefore(1 << 40); err != nil { // everything
		t.Fatal(err)
	}
	after := db.CacheStats()
	if after.Entries != 0 || after.ResidentBytes != 0 {
		t.Fatalf("deleted blocks still cached: %+v", after)
	}
	if after.Purges == 0 {
		t.Fatalf("purge counter did not move: %+v", after)
	}
	// The empty database must not re-decode anything.
	if _, err := db.Query(`SELECT count("Reading") FROM "Power"`); err != nil {
		t.Fatal(err)
	}
	if final := db.CacheStats(); final.Misses != after.Misses {
		t.Fatalf("post-delete scan decoded: %+v after %+v", final, after)
	}
}

// TestDecodeCacheAdmitDedup pins the racing-decoder loser path in
// admit: when a block is already admitted, a second admit must count
// no miss, converge the block's memo back onto the winner's accounted
// payload, and leave resident bytes charged exactly once. The old path
// double-counted the miss and left the loser's duplicate payload as
// the block memo, splitting accounting from reality.
func TestDecodeCacheAdmitDedup(t *testing.T) {
	c := newDecodeCache(1 << 20)
	blk := &block{count: 10}
	p1 := &blockPayload{}
	blk.cache.Store(p1)
	c.admit(blk, p1)
	want := int64(10) * cachedPointBytes
	if m := c.misses.Load(); m != 1 {
		t.Fatalf("first admit: misses = %d, want 1", m)
	}
	if r := c.resident.Load(); r != want {
		t.Fatalf("first admit: resident = %d, want %d", r, want)
	}

	// A racing decoder lost: it stored its own payload into the memo
	// and now admits it.
	p2 := &blockPayload{}
	blk.cache.Store(p2)
	c.admit(blk, p2)
	if m := c.misses.Load(); m != 1 {
		t.Fatalf("dedup admit counted a miss: misses = %d, want 1", m)
	}
	if r := c.resident.Load(); r != want {
		t.Fatalf("dedup admit double-charged: resident = %d, want %d", r, want)
	}
	if got := blk.cache.Load(); got != p1 {
		t.Fatalf("memo not converged onto winner payload: got %p, want %p", got, p1)
	}
	if !p1.ref.Load() {
		t.Fatal("winner payload not marked recently used")
	}
}

// TestDecodeCacheAdmitRace hammers admit with racing decoders of the
// same blocks under -race: accounting must stay consistent — one miss
// and one charge per distinct block, no duplicate ring entries.
func TestDecodeCacheAdmitRace(t *testing.T) {
	c := newDecodeCache(-1)
	blocks := make([]*block, 16)
	for i := range blocks {
		blocks[i] = &block{count: 8}
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for _, blk := range blocks {
				p := &blockPayload{}
				blk.cache.Store(p)
				c.admit(blk, p)
			}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if m := c.misses.Load(); m != int64(len(blocks)) {
		t.Fatalf("misses = %d, want %d (one per distinct block)", m, len(blocks))
	}
	want := int64(len(blocks)) * 8 * cachedPointBytes
	if r := c.resident.Load(); r != want {
		t.Fatalf("resident = %d, want %d", r, want)
	}
	c.mu.Lock()
	entries, ring := len(c.entries), len(c.ring)
	c.mu.Unlock()
	if entries != len(blocks) || ring != len(blocks) {
		t.Fatalf("entries = %d, ring = %d, want %d each", entries, ring, len(blocks))
	}
}

// TestDecodeCacheUnbounded checks the A/B baseline: a negative budget
// disables eviction entirely (PR 5 keep-everything behavior).
func TestDecodeCacheUnbounded(t *testing.T) {
	db := cacheFixture(t, -1, 8, 512)
	for pass := 0; pass < 2; pass++ {
		if _, err := db.Query(`SELECT count("Reading") FROM "Power"`); err != nil {
			t.Fatal(err)
		}
	}
	cs := db.CacheStats()
	if cs.Evictions != 0 {
		t.Fatalf("unbounded cache evicted: %+v", cs)
	}
	if cs.BudgetBytes >= 0 {
		t.Fatalf("budget reported %d, want negative sentinel", cs.BudgetBytes)
	}
	if cs.ResidentBytes == 0 || cs.Hits == 0 {
		t.Fatalf("unbounded cache not caching: %+v", cs)
	}
}
