package tsdb

import (
	"encoding/json"
	"os"
	"sync"
	"testing"
)

// The month-long-dashboard workload: the paper's dashboard case a tier
// rewrite targets. 30 days of 60-second samples for a handful of nodes,
// rolled up raw -> 5m -> 1h, queried at 1-hour buckets over the full
// month — the query every monitoring UI issues on load.
const (
	benchRollupNodes   = 4
	benchRollupDays    = 30
	benchRollupPerNode = benchRollupDays * 24 * 60 // 60s cadence
	benchRollupQuery   = `SELECT max("Reading") FROM "Power" WHERE time >= 0 AND time < 2592000 GROUP BY time(1h), "NodeId"`
)

var (
	benchRollupOnce sync.Once
	benchRollupDB   *DB
)

// benchRollupFixture builds (once) the month-long tiered database.
func benchRollupFixture(tb testing.TB) *DB {
	benchRollupOnce.Do(func() {
		db := Open(Options{})
		pts := make([]Point, 0, benchRollupPerNode)
		for n := 0; n < benchRollupNodes; n++ {
			node := Tags{{"NodeId", nodeName(n)}, {"Label", "NodePower"}}
			pts = pts[:0]
			for i := 0; i < benchRollupPerNode; i++ {
				pts = append(pts, Point{
					Measurement: "Power",
					Tags:        node,
					Fields:      map[string]Value{"Reading": Float(float64(200 + (i*7)%150))},
					Time:        int64(i * 60),
				})
			}
			if err := db.WritePoints(pts); err != nil {
				tb.Fatal(err)
			}
		}
		rm := NewRollups(db)
		for _, spec := range []RollupSpec{
			{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300},
			{Source: "Power_max_300s", Field: "Reading", Aggregate: "max", Interval: 3600},
		} {
			if err := rm.Add(spec); err != nil {
				tb.Fatal(err)
			}
		}
		if _, err := rm.Run(benchRollupPerNode * 60); err != nil {
			tb.Fatal(err)
		}
		benchRollupDB = db
	})
	return benchRollupDB
}

func nodeName(n int) string { return string(rune('a' + n)) }

// BenchmarkTieredDashboard times the month-long dashboard query with
// the planner serving it from the 1h tier.
func BenchmarkTieredDashboard(b *testing.B) {
	db := benchRollupFixture(b)
	q, err := Parse(benchRollupQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRawDashboard times the same query with the rewrite bypassed
// — the full raw scan every pre-tier engine build paid.
func BenchmarkRawDashboard(b *testing.B) {
	db := benchRollupFixture(b)
	q, err := Parse(benchRollupQuery)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.execNoRewrite(q); err != nil {
			b.Fatal(err)
		}
	}
}

// TestBenchRollupJSON writes BENCH_rollup.json when the BENCH_JSON env
// var names the output path (the `make bench-json` entry point): the
// month-long-dashboard scan reduction and latency, plus a cold-scan
// cache stress showing resident decoded bytes honoring the budget.
// The acceptance gates live here too: >=50x fewer points scanned with
// an identical answer, and the cache never over budget.
func TestBenchRollupJSON(t *testing.T) {
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		t.Skip("BENCH_JSON not set; artifact generation only")
	}

	db := benchRollupFixture(t)
	q, err := Parse(benchRollupQuery)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := db.execNoRewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, planned, raw, "month-long dashboard")
	if planned.Stats.Tier == "" {
		t.Fatal("planner did not engage on the dashboard query")
	}
	reduction := float64(raw.Stats.PointsScanned) / float64(planned.Stats.PointsScanned)
	if reduction < 50 {
		t.Errorf("scan reduction %.1fx below the 50x target (%d vs %d points)",
			reduction, planned.Stats.PointsScanned, raw.Stats.PointsScanned)
	}

	tiered := testing.Benchmark(BenchmarkTieredDashboard)
	rawB := testing.Benchmark(BenchmarkRawDashboard)

	// Cold-scan cache stress: a separate sealed engine whose decoded
	// working set is ~10x the budget; repeated full scans must stay
	// resident-bounded by evicting.
	const cacheBudget = 256 * 1024
	stress := Open(Options{BlockSize: 128, DecodeCacheBytes: cacheBudget, PlannerOff: true})
	var pts []Point
	for i := 0; i < 48000; i++ {
		pts = append(pts, Point{
			Measurement: "Power",
			Tags:        Tags{{"NodeId", "n0"}},
			Fields:      map[string]Value{"Reading": Float(float64(i % 997))},
			Time:        int64(i * 60),
		})
	}
	if err := stress.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		if _, err := stress.Query(`SELECT count("Reading") FROM "Power"`); err != nil {
			t.Fatal(err)
		}
		if cs := stress.CacheStats(); cs.ResidentBytes > cacheBudget {
			t.Errorf("pass %d: cache resident %d bytes over the %d budget", pass, cs.ResidentBytes, cacheBudget)
		}
	}
	cs := stress.CacheStats()

	out := map[string]any{
		"workload":               "month-long dashboard: 30d of 60s samples, 4 nodes, GROUP BY time(1h)",
		"tiers":                  []string{"Power_max_300s", "Power_max_300s_max_3600s"},
		"raw_points":             benchRollupNodes * benchRollupPerNode,
		"tier_served":            planned.Stats.Tier,
		"points_scanned_tiered":  planned.Stats.PointsScanned,
		"points_scanned_raw":     raw.Stats.PointsScanned,
		"scan_reduction":         reduction,
		"tier_raw_equivalent":    planned.Stats.TierRawEquivalent,
		"query_ns_tiered":        tiered.NsPerOp(),
		"query_ns_raw":           rawB.NsPerOp(),
		"query_speedup":          float64(rawB.NsPerOp()) / float64(tiered.NsPerOp()),
		"results_identical":      true, // sameResult above is fatal on any mismatch
		"cache_budget_bytes":     cs.BudgetBytes,
		"cache_resident_bytes":   cs.ResidentBytes,
		"cache_evictions":        cs.Evictions,
		"cache_hits":             cs.Hits,
		"cache_misses":           cs.Misses,
		"cache_hit_rate":         float64(cs.Hits) / float64(cs.Hits+cs.Misses),
		"cache_workload_points":  48000,
		"cache_workload_decoded": 48000 * cachedPointBytes,
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s: %.0fx fewer points scanned, %.1fx faster, cache %d/%d bytes resident",
		path, reduction, float64(rawB.NsPerOp())/float64(tiered.NsPerOp()), cs.ResidentBytes, cs.BudgetBytes)
}
