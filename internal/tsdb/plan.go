package tsdb

import (
	"math"
	"sort"
)

// Tier-aware query planning.
//
// A dashboard query like
//
//	SELECT max("Reading") FROM "Power" GROUP BY time(1h)
//
// over a month of 60-second samples reads ~43k raw points per series.
// When a rollup tier (rollup.go) already materializes per-5-minute or
// per-hour maxima, the same buckets can be assembled from tier rows —
// 12x to 60x fewer points — provided the answer stays exact. The
// planner rewrites eligible queries to do exactly that:
//
//   - The sealed prefix [Start, split) is served from the coarsest
//     registered tier whose interval divides the query's GROUP BY time
//     and whose chain bottoms out at the queried measurement + field
//     with the same aggregate.
//   - The unsealed tail [split, End) — buckets at or past the tier's
//     watermark, which raw writes may still be filling — is served from
//     raw storage, so late buckets are never reported from stale rows.
//   - split is GROUP-BY-aligned and buckets are absolutely aligned
//     everywhere (base = alignDown(minT, interval)), so the merge is
//     plain row concatenation per group, no bucket can straddle it.
//
// max/min/sum/count compose losslessly across tiers (sum of sums,
// max of maxes, sum of counts); mean recombines from the tier's
// materialized sum and count side fields. Sum-based aggregates over
// arbitrary floats may differ from the raw scan by reassociation
// (~1 ulp); integer-valued floats below 2^53 are bit-exact — see
// DESIGN.md.

// planTiered attempts the rollup rewrite for q against pinned view v.
// ok=false means the query is not eligible (no matching tier, unaligned
// range, disabled planner) and the caller should run the raw path.
func (db *DB) planTiered(v *dbView, q *Query, lockWaitNs int64) (_ *Result, ok bool, _ error) {
	if db.plannerOff {
		return nil, false, nil
	}
	reg := db.rollups.Load()
	if reg == nil || !q.Aggregated() || len(q.Fields) != 1 {
		return nil, false, nil
	}
	f := q.Fields[0]
	g := q.GroupByTime
	if g <= 0 || !chainableAgg(f.Func) {
		return nil, false, nil
	}
	best := -1
	for i := range reg.specs {
		cr := &reg.specs[i]
		if cr.root != q.Measurement || cr.rootField != f.Field || cr.agg != f.Func {
			continue
		}
		if g%cr.interval != 0 {
			continue
		}
		if best == -1 || cr.interval > reg.specs[best].interval {
			best = i
		}
	}
	if best < 0 {
		return nil, false, nil
	}
	cr := reg.specs[best]
	// A Start inside a tier bucket would clip raw samples that bucket's
	// row has already folded in; only tier-aligned (hence GROUP-BY-
	// aligned) starts are rewritten.
	if q.Start != math.MinInt64 && mod(q.Start, cr.interval) != 0 {
		return nil, false, nil
	}
	wm, okWM := inferWatermark(v, cr)
	if !okWM {
		return nil, false, nil
	}
	split := alignDown(min64(wm, q.End), g)
	if split <= q.Start {
		return nil, false, nil // tier covers nothing of the range
	}

	tq := &Query{
		Measurement: cr.target,
		Fields:      plannerTierFields(cr),
		TagConds:    q.TagConds,
		TagRegexps:  q.TagRegexps,
		Start:       q.Start,
		End:         split,
		GroupByTime: g,
		GroupByTags: q.GroupByTags,
	}
	tres, err := db.execView(v, tq, lockWaitNs)
	if err != nil {
		return nil, false, err
	}
	rq := *q
	rq.Start = split
	rq.Descending = false
	rq.Limit = 0
	rres, err := db.execView(v, &rq, 0)
	if err != nil {
		return nil, false, err
	}

	columns := []string{"time", f.Label()}
	type mergedSeries struct {
		tags Tags
		rows []Row
	}
	byKey := make(map[string]*mergedSeries)
	var order []string
	groupOf := func(tags Tags) *mergedSeries {
		key := seriesKey("", tags)
		ms, ok := byKey[key]
		if !ok {
			ms = &mergedSeries{tags: tags}
			byKey[key] = ms
			order = append(order, key)
		}
		return ms
	}
	for i := range tres.Series {
		s := &tres.Series[i]
		ms := groupOf(s.Tags)
		for _, row := range s.Rows {
			val, ok := plannerTierValue(cr, row)
			if !ok {
				continue
			}
			ms.rows = append(ms.rows, Row{Time: row.Time, Values: []Value{val}, Present: []bool{true}})
		}
	}
	// Tier rows all precede split, raw rows all follow it, and both sides
	// arrive ascending — concatenation is the merge.
	for i := range rres.Series {
		s := &rres.Series[i]
		ms := groupOf(s.Tags)
		ms.rows = append(ms.rows, s.Rows...)
	}

	res := &Result{}
	res.Stats = tres.Stats
	res.Stats.Add(rres.Stats)
	res.Stats.LockWaitNs = lockWaitNs
	res.Stats.Tier = cr.target
	res.Stats.TierRawEquivalent = estimateRawPoints(v, q, f.Field, split)
	res.Stats.Rows = 0
	res.Series = make([]ResultSeries, 0, len(order))
	for _, key := range order {
		ms := byKey[key]
		if len(ms.rows) == 0 {
			continue
		}
		if q.Descending {
			for i, j := 0, len(ms.rows)-1; i < j; i, j = i+1, j-1 {
				ms.rows[i], ms.rows[j] = ms.rows[j], ms.rows[i]
			}
		}
		if q.Limit > 0 && len(ms.rows) > q.Limit {
			ms.rows = ms.rows[:q.Limit]
		}
		res.Stats.Rows += len(ms.rows)
		res.Series = append(res.Series, ResultSeries{
			Name:    q.Measurement,
			Tags:    ms.tags,
			Columns: columns,
			Rows:    ms.rows,
		})
	}
	if len(res.Series) == 0 {
		res.Series = nil
	}
	sort.Slice(res.Series, func(i, j int) bool {
		return tagsLess(res.Series[i].Tags, res.Series[j].Tags)
	})
	return res, true, nil
}

// plannerTierFields maps the user's aggregate onto the tier's
// materialized fields: tier rows are already per-bucket aggregates, so
// coarser buckets recombine with the composition aggregate (sum of
// counts, max of maxes) rather than the original one.
func plannerTierFields(cr compiledRollup) []FieldExpr {
	switch cr.agg {
	case "mean":
		return []FieldExpr{
			{Func: "sum", Field: meanSumField(cr.rootField)},
			{Func: "sum", Field: meanCountField(cr.rootField)},
		}
	case "count":
		return []FieldExpr{{Func: "sum", Field: cr.rootField}}
	default: // max, min, sum compose with themselves
		return []FieldExpr{{Func: cr.agg, Field: cr.rootField}}
	}
}

// plannerTierValue converts one aggregated tier row into the value the
// raw scan would have produced for that bucket.
func plannerTierValue(cr compiledRollup, row Row) (Value, bool) {
	switch cr.agg {
	case "mean":
		if len(row.Values) < 2 || !row.Present[0] || !row.Present[1] {
			return Value{}, false
		}
		sum, okS := row.Values[0].AsFloat()
		cnt, okC := row.Values[1].AsFloat()
		if !okS || !okC || cnt == 0 {
			return Value{}, false
		}
		return Float(sum / cnt), true
	case "count":
		// Raw count emits Int; the tier side sums Int counts through the
		// float kernel, so coerce back.
		if len(row.Values) < 1 || !row.Present[0] {
			return Value{}, false
		}
		fv, ok := row.Values[0].AsFloat()
		if !ok {
			return Value{}, false
		}
		return Int(int64(math.Round(fv))), true
	default:
		if len(row.Values) < 1 || !row.Present[0] {
			return Value{}, false
		}
		return row.Values[0], true
	}
}

// estimateRawPoints estimates how many raw samples of field the query
// would have scanned over [q.Start, split) without the rewrite —
// header-only work: full blocks contribute their exact counts, blocks
// straddling a boundary contribute proportionally, the raw tail is
// counted exactly. Reported as QueryStats.TierRawEquivalent.
func estimateRawPoints(v *dbView, q *Query, field string, split int64) int64 {
	keys := v.matchSeries(q)
	if len(keys) == 0 {
		return 0
	}
	shards := v.shardsOverlapping(q.Start, split)
	var n int64
	for _, sh := range shards {
		for _, k := range keys {
			sr, ok := sh.series[k]
			if !ok {
				continue
			}
			col, ok := sr.fields[field]
			if !ok {
				continue
			}
			for _, b := range col.blocks {
				if b.maxT < q.Start || b.minT >= split {
					continue
				}
				if b.minT >= q.Start && b.maxT < split {
					n += int64(b.count)
					continue
				}
				span := b.maxT - b.minT + 1
				lo := max64(q.Start, b.minT)
				hi := min64(split-1, b.maxT)
				if ovl := hi - lo + 1; ovl > 0 && span > 0 {
					n += int64(b.count) * ovl / span
				}
			}
			lo, hi := col.rangeIndexes(q.Start, split)
			n += int64(hi - lo)
		}
	}
	return n
}
