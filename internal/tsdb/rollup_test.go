package tsdb

import (
	"fmt"
	"testing"
)

func rollupFixture(t *testing.T, nodes, minutes int) *DB {
	t.Helper()
	db := Open(Options{})
	var pts []Point
	for n := 0; n < nodes; n++ {
		for i := 0; i < minutes; i++ {
			pts = append(pts, Point{
				Measurement: "Power",
				Tags:        Tags{{"NodeId", fmt.Sprintf("n%d", n)}, {"Label", "NodePower"}},
				Fields:      map[string]Value{"Reading": Float(float64(100 + i%10))},
				Time:        int64(i * 60),
			})
		}
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestRollupSpecValidate(t *testing.T) {
	good := RollupSpec{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := good.TargetName(); got != "Power_max_300s" {
		t.Fatalf("target = %q", got)
	}
	good.Target = "PowerFiveMin"
	if good.TargetName() != "PowerFiveMin" {
		t.Fatal("explicit target ignored")
	}
	bad := []RollupSpec{
		{Field: "f", Aggregate: "max", Interval: 1},
		{Source: "m", Aggregate: "max", Interval: 1},
		{Source: "m", Field: "f", Aggregate: "max"},
		{Source: "m", Field: "f", Aggregate: "nope", Interval: 1},
		{Source: "m", Field: "f", Interval: 1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestRollupMaterializesBuckets(t *testing.T) {
	db := rollupFixture(t, 2, 60) // 1 h of minutely data per node
	rm := NewRollups(db)
	if err := rm.Add(RollupSpec{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300}); err != nil {
		t.Fatal(err)
	}
	// Process up to t=1800: 6 complete buckets per node.
	n, err := rm.Run(1800)
	if err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Fatalf("wrote %d rollup points, want 12", n)
	}
	res, err := db.Query(`SELECT "Reading" FROM "Power_max_300s" WHERE "NodeId"='n0'`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Series[0].Rows
	if len(rows) != 6 {
		t.Fatalf("rollup rows = %d", len(rows))
	}
	// Each 5-minute bucket of values 100..109 has max 104 or 109
	// depending on phase; bucket 0 covers i=0..4 -> max 104.
	if rows[0].Values[0].F != 104 {
		t.Fatalf("bucket0 = %v", rows[0].Values[0])
	}
	// Tags must carry over so per-node queries work.
	if v, _ := res.Series[0].Tags.Get("Label"); v != "NodePower" {
		// raw query without group-by returns no tags; check via SHOW SERIES
		r2, _ := db.Query(`SHOW SERIES FROM "Power_max_300s"`)
		found := false
		for _, s := range r2.Series {
			for _, row := range s.Rows {
				if row.Values[0].S == "Power_max_300s,Label=NodePower,NodeId=n0" {
					found = true
				}
			}
		}
		if !found {
			t.Fatal("rollup lost source tags")
		}
	}
}

func TestRollupIncrementalWatermark(t *testing.T) {
	db := rollupFixture(t, 1, 30)
	rm := NewRollups(db)
	if err := rm.Add(RollupSpec{Source: "Power", Field: "Reading", Aggregate: "mean", Interval: 600}); err != nil {
		t.Fatal(err)
	}
	n1, err := rm.Run(1200)
	if err != nil {
		t.Fatal(err)
	}
	if n1 != 2 {
		t.Fatalf("first run wrote %d", n1)
	}
	// Re-running at the same time is a no-op (no duplicates).
	n2, err := rm.Run(1200)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != 0 {
		t.Fatalf("second run wrote %d", n2)
	}
	// New data extends the source. Write-path maintenance closes every
	// data-complete bucket immediately: the batch reaches t=2340, so
	// [1200,1800) is materialized by the write itself and only the
	// clock-complete [1800,2400) remains for the next Run.
	var pts []Point
	for i := 30; i < 40; i++ {
		pts = append(pts, Point{
			Measurement: "Power",
			Tags:        Tags{{"NodeId", "n0"}, {"Label", "NodePower"}},
			Fields:      map[string]Value{"Reading": Float(50)},
			Time:        int64(i * 60),
		})
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	countRows := func() int64 {
		t.Helper()
		res, err := db.Query(`SELECT count("Reading") FROM "Power_mean_600s"`)
		if err != nil {
			t.Fatal(err)
		}
		return res.Series[0].Rows[0].Values[0].I
	}
	if got := countRows(); got != 3 {
		t.Fatalf("rollup points after write hook = %d, want 3", got)
	}
	n3, err := rm.Run(2400)
	if err != nil {
		t.Fatal(err)
	}
	if n3 != 1 { // bucket [1800,2400); [1200,1800) was closed by the write
		t.Fatalf("third run wrote %d, want 1", n3)
	}
	if got := countRows(); got != 4 {
		t.Fatalf("total rollup points = %d", got)
	}
}

func TestRollupIncompleteBucketExcluded(t *testing.T) {
	db := rollupFixture(t, 1, 10)
	rm := NewRollups(db)
	if err := rm.Add(RollupSpec{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300}); err != nil {
		t.Fatal(err)
	}
	// now=400 is inside the second bucket: only bucket [0,300) complete.
	n, err := rm.Run(400)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("wrote %d, want 1", n)
	}
}

func TestRollupEmptySource(t *testing.T) {
	db := Open(Options{})
	rm := NewRollups(db)
	if err := rm.Add(RollupSpec{Source: "Nope", Field: "f", Aggregate: "max", Interval: 60}); err != nil {
		t.Fatal(err)
	}
	n, err := rm.Run(1000)
	if err != nil || n != 0 {
		t.Fatalf("empty source: %d, %v", n, err)
	}
}

func TestRollupDuplicateTargetRejected(t *testing.T) {
	rm := NewRollups(Open(Options{}))
	spec := RollupSpec{Source: "m", Field: "f", Aggregate: "max", Interval: 60}
	if err := rm.Add(spec); err != nil {
		t.Fatal(err)
	}
	if err := rm.Add(spec); err == nil {
		t.Fatal("duplicate target accepted")
	}
	if len(rm.Specs()) != 1 {
		t.Fatal("specs leaked")
	}
}

func TestRollupQueryEquivalence(t *testing.T) {
	// The planner must serve a tier-aligned aggregate query from the
	// rollup measurement, bit-identical to the forced raw scan and far
	// cheaper.
	db := rollupFixture(t, 1, 60)
	rm := NewRollups(db)
	if err := rm.Add(RollupSpec{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300}); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Run(3600); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(`SELECT max("Reading") FROM "Power" WHERE time >= 0 AND time < 3600 GROUP BY time(5m)`)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := db.execNoRewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if planned.Stats.Tier != "Power_max_300s" {
		t.Fatalf("planner served tier %q, want Power_max_300s", planned.Stats.Tier)
	}
	if raw.Stats.Tier != "" {
		t.Fatalf("forced raw scan reports tier %q", raw.Stats.Tier)
	}
	rawRows := raw.Series[0].Rows
	plannedRows := planned.Series[0].Rows
	if len(rawRows) != len(plannedRows) {
		t.Fatalf("row counts differ: %d vs %d", len(rawRows), len(plannedRows))
	}
	for i := range rawRows {
		if rawRows[i].Time != plannedRows[i].Time || rawRows[i].Values[0].F != plannedRows[i].Values[0].F {
			t.Fatalf("bucket %d differs: %+v vs %+v", i, rawRows[i], plannedRows[i])
		}
	}
	// And the tier scan is much cheaper than the raw one it replaced.
	if planned.Stats.PointsScanned >= raw.Stats.PointsScanned/3 {
		t.Fatalf("planner scanned %d vs raw %d — no saving", planned.Stats.PointsScanned, raw.Stats.PointsScanned)
	}
	if planned.Stats.TierRawEquivalent < raw.Stats.PointsScanned/2 {
		t.Fatalf("raw-equivalent estimate %d implausibly low (raw scanned %d)",
			planned.Stats.TierRawEquivalent, raw.Stats.PointsScanned)
	}
}
