package tsdb

import (
	"fmt"
	"math"
	"regexp"
	"strings"
)

// The query language is the subset of InfluxQL the paper's Metrics
// Builder generates, e.g.:
//
//	SELECT max("Reading") FROM "Power"
//	  WHERE "NodeId"='10.101.1.1' AND "Label"='NodePower'
//	  AND time >= '2020-04-20T12:00:00Z' AND time < '2020-04-21T12:00:00Z'
//	  GROUP BY time(5m)
//
// Supported: one or more projected fields (raw or aggregated), tag
// equality and regex predicates joined with AND, absolute time bounds
// (RFC3339 strings or integer epoch seconds), GROUP BY time(interval)
// and/or tags, and LIMIT.
//
// The regex predicate ("NodeId" =~ /^(a|b|c)$/) is the multi-node
// batching primitive the optimized Metrics Builder generates: one
// query covers a whole node chunk instead of one query per node.

// FieldExpr is one projected column: a raw field or an aggregate over a
// field.
type FieldExpr struct {
	Func  string // "", "max", "min", "mean", "sum", "count", "first", "last", "stddev", "spread", "median"
	Field string
}

// Label is the result column name for the expression.
func (f FieldExpr) Label() string {
	if f.Func == "" {
		return f.Field
	}
	return f.Func
}

// TagCond is an equality predicate on a tag.
type TagCond struct {
	Key   string
	Value string
}

// TagRegex is a regular-expression predicate on a tag ("Key" =~ /re/).
// A series matches when the tag is present and its value matches Re.
type TagRegex struct {
	Key string
	Re  *regexp.Regexp
}

// Query is a parsed statement.
type Query struct {
	Fields      []FieldExpr
	Measurement string
	TagConds    []TagCond
	TagRegexps  []TagRegex
	Start       int64 // inclusive, unix seconds; MinInt64 when unbounded
	End         int64 // exclusive, unix seconds; MaxInt64 when unbounded
	GroupByTime int64 // bucket width in seconds; 0 = no time grouping
	GroupByTags []string
	Descending  bool // ORDER BY time DESC
	Limit       int  // 0 = no limit
}

// Aggregated reports whether every projected field is an aggregate.
func (q *Query) Aggregated() bool {
	for _, f := range q.Fields {
		if f.Func == "" {
			return false
		}
	}
	return len(q.Fields) > 0
}

// String renders the query back to (canonical) InfluxQL.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, f := range q.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		if f.Func != "" {
			fmt.Fprintf(&b, "%s(%q)", f.Func, f.Field)
		} else {
			fmt.Fprintf(&b, "%q", f.Field)
		}
	}
	fmt.Fprintf(&b, " FROM %q", q.Measurement)
	var conds []string
	for _, c := range q.TagConds {
		conds = append(conds, fmt.Sprintf("%q = '%s'", c.Key, c.Value))
	}
	for _, c := range q.TagRegexps {
		conds = append(conds, fmt.Sprintf("%q =~ /%s/", c.Key, strings.ReplaceAll(c.Re.String(), "/", `\/`)))
	}
	if q.Start != math.MinInt64 {
		conds = append(conds, fmt.Sprintf("time >= '%s'", FormatTime(q.Start)))
	}
	if q.End != math.MaxInt64 {
		conds = append(conds, fmt.Sprintf("time < '%s'", FormatTime(q.End)))
	}
	if len(conds) > 0 {
		b.WriteString(" WHERE ")
		b.WriteString(strings.Join(conds, " AND "))
	}
	var groups []string
	if q.GroupByTime > 0 {
		groups = append(groups, fmt.Sprintf("time(%s)", formatDurationQL(q.GroupByTime)))
	}
	for _, t := range q.GroupByTags {
		groups = append(groups, fmt.Sprintf("%q", t))
	}
	if len(groups) > 0 {
		b.WriteString(" GROUP BY ")
		b.WriteString(strings.Join(groups, ", "))
	}
	if q.Descending {
		b.WriteString(" ORDER BY time DESC")
	}
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// formatDurationQL renders a number of seconds as an InfluxQL duration
// literal using the largest unit that divides it evenly.
func formatDurationQL(sec int64) string {
	switch {
	case sec%(7*24*3600) == 0 && sec >= 7*24*3600:
		return fmt.Sprintf("%dw", sec/(7*24*3600))
	case sec%(24*3600) == 0 && sec >= 24*3600:
		return fmt.Sprintf("%dd", sec/(24*3600))
	case sec%3600 == 0 && sec >= 3600:
		return fmt.Sprintf("%dh", sec/3600)
	case sec%60 == 0 && sec >= 60:
		return fmt.Sprintf("%dm", sec/60)
	default:
		return fmt.Sprintf("%ds", sec)
	}
}

// Validate checks structural constraints the executor relies on.
func (q *Query) Validate() error {
	if q.Measurement == "" {
		return fmt.Errorf("tsdb: query has no measurement")
	}
	if len(q.Fields) == 0 {
		return fmt.Errorf("tsdb: query selects no fields")
	}
	agg := q.Fields[0].Func != ""
	for _, f := range q.Fields {
		if (f.Func != "") != agg {
			return fmt.Errorf("tsdb: cannot mix raw and aggregated fields")
		}
		if f.Func != "" {
			if _, ok := newAggregator(f.Func); !ok {
				return fmt.Errorf("tsdb: unknown aggregate function %q", f.Func)
			}
		}
	}
	if q.GroupByTime > 0 && !agg {
		return fmt.Errorf("tsdb: GROUP BY time requires an aggregate function")
	}
	for _, c := range q.TagRegexps {
		if c.Re == nil {
			return fmt.Errorf("tsdb: regex predicate on %q has no pattern", c.Key)
		}
	}
	if q.GroupByTime < 0 {
		return fmt.Errorf("tsdb: negative GROUP BY time interval")
	}
	if q.Start > q.End {
		return fmt.Errorf("tsdb: query start after end")
	}
	if q.Limit < 0 {
		return fmt.Errorf("tsdb: negative LIMIT")
	}
	return nil
}
