package tsdb

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// QueryStats records the work a query performed — the quantities the
// experiment harness converts into device time.
type QueryStats struct {
	SeriesScanned int   // distinct series probed
	PointsScanned int64 // samples read from columns
	BytesScanned  int64 // encoded bytes of the samples read
	Rows          int   // rows emitted

	// BlocksDecoded counts sealed blocks whose payload the query
	// decompressed; BlocksSkipped counts sealed blocks pruned by their
	// min/max-time headers without touching the payload. Together they
	// make the block tier's pruning observable (an out-of-range scan
	// is all skips, no decodes).
	BlocksDecoded int64
	BlocksSkipped int64
	// BlocksFromDisk counts decoded blocks whose compressed payload was
	// read back from the cold tier (a pread + CRC check) rather than
	// memory — the cold tier's read-amplification signal. Always <=
	// BlocksDecoded; zero once the hot set is cached or resident.
	BlocksFromDisk int64

	// SnapshotEpoch is the mutation epoch of the snapshot the query ran
	// against (the consistency token of the snapshot-isolated read path).
	SnapshotEpoch int64
	// LockWaitNs is time spent acquiring the read path before the
	// snapshot was pinned. Zero in the default lock-free mode; nonzero
	// under Options.GlobalLock when a write batch held the lock.
	LockWaitNs int64
	// Groups is the number of series groups the query produced
	// (including groups that emitted no rows).
	Groups int
	// ParallelWorkers is the worker-pool width used to scan and
	// aggregate the groups (1 = serial).
	ParallelWorkers int

	// Tier names the rollup measurement the planner served this query
	// from (empty when the query ran against raw storage). The unsealed
	// tail beyond the tier's watermark is still read raw, so a tiered
	// answer is exact.
	Tier string
	// TierRawEquivalent estimates how many raw samples the tier portion
	// replaced — what PointsScanned would have charged without the
	// rewrite. The ratio TierRawEquivalent / PointsScanned is the
	// planner's read amplification win.
	TierRawEquivalent int64

	// scanErr latches the first cold-tier read failure hit during the
	// scan. Resident-block decode failures are post-hoc memory
	// corruption and keep the legacy skip-and-continue behaviour, but a
	// spilled block that cannot be read back is an IO fault (missing or
	// truncated segment, checksum mismatch) that must fail the query —
	// silently skipping it would return answers missing durable data.
	scanErr error
}

// Add accumulates other into s. Counters sum; SnapshotEpoch and
// ParallelWorkers — per-query properties, not work counters — take the
// maximum, so a builder-level aggregate reports the newest snapshot
// seen and the widest pool used.
func (s *QueryStats) Add(o QueryStats) {
	s.SeriesScanned += o.SeriesScanned
	s.PointsScanned += o.PointsScanned
	s.BytesScanned += o.BytesScanned
	s.Rows += o.Rows
	s.BlocksDecoded += o.BlocksDecoded
	s.BlocksSkipped += o.BlocksSkipped
	s.BlocksFromDisk += o.BlocksFromDisk
	s.LockWaitNs += o.LockWaitNs
	s.Groups += o.Groups
	s.TierRawEquivalent += o.TierRawEquivalent
	if s.Tier == "" {
		s.Tier = o.Tier
	}
	if o.SnapshotEpoch > s.SnapshotEpoch {
		s.SnapshotEpoch = o.SnapshotEpoch
	}
	if o.ParallelWorkers > s.ParallelWorkers {
		s.ParallelWorkers = o.ParallelWorkers
	}
	if s.scanErr == nil {
		s.scanErr = o.scanErr
	}
}

// Row is one output row: a timestamp and one value per projected
// column. A nil-kind? No — missing values are reported via the Present
// bitmap to keep Value simple.
type Row struct {
	Time    int64
	Values  []Value
	Present []bool // Present[i] reports whether Values[i] is set
}

// ResultSeries is one output series (per group).
type ResultSeries struct {
	Name    string
	Tags    Tags // group-by tag values (empty when no tag grouping)
	Columns []string
	Rows    []Row
}

// Result is the full answer to one query.
type Result struct {
	Series []ResultSeries
	Stats  QueryStats
}

// Query parses and executes a statement (SELECT or SHOW).
func (db *DB) Query(stmt string) (*Result, error) {
	if isShowStatement(stmt) {
		return db.execShow(stmt)
	}
	if isDropStatement(stmt) {
		return db.execDrop(stmt)
	}
	q, err := Parse(stmt)
	if err != nil {
		return nil, err
	}
	return db.Exec(q)
}

// minParallelGroups is the group count below which automatic worker
// sizing stays serial — goroutine fan-out costs more than it saves on
// a handful of groups.
const minParallelGroups = 8

// maxAutoExecWorkers caps the automatically sized pool; explicit
// Options.ExecWorkers may exceed it.
const maxAutoExecWorkers = 8

// execWorkersFor sizes the worker pool for a query with the given
// number of series groups.
func (db *DB) execWorkersFor(groups int) int {
	w := db.execWorkers
	if w <= 0 {
		if groups < minParallelGroups {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
		if w > maxAutoExecWorkers {
			w = maxAutoExecWorkers
		}
	}
	if w > groups {
		w = groups
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Exec executes a parsed query against the current snapshot. The
// snapshot is pinned with one atomic load, so Exec never blocks behind
// a write batch and always observes whole batches; series groups are
// scanned and aggregated by a bounded worker pool.
//
// When the query's shape matches a registered rollup tier — single
// aggregate over a grouping interval the tier's buckets divide — the
// planner transparently answers the sealed prefix from the tier and
// only the unsealed tail from raw storage (see planTiered). Disable
// with Options.PlannerOff for A/B baselines.
func (db *DB) Exec(q *Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	t0 := db.clock.Now()
	v := db.acquireView()
	defer db.releaseView()
	lockWaitNs := db.clock.Now().Sub(t0).Nanoseconds()
	if res, ok, err := db.planTiered(v, q, lockWaitNs); ok || err != nil {
		return res, err
	}
	return db.execView(v, q, lockWaitNs)
}

// execNoRewrite executes q against the current snapshot with the
// tier-aware planner bypassed — the forced-raw baseline the
// equivalence tests compare against.
func (db *DB) execNoRewrite(q *Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	v := db.acquireView()
	defer db.releaseView()
	return db.execView(v, q, 0)
}

// execView runs q against one pinned view, bypassing the planner. The
// write path calls this on unpublished candidate views during rollup
// maintenance (never through Exec: the planner would consult the very
// tiers being rebuilt, and acquireView could deadlock under
// Options.GlobalLock).
func (db *DB) execView(v *dbView, q *Query, lockWaitNs int64) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	res.Stats.LockWaitNs = lockWaitNs
	res.Stats.SnapshotEpoch = v.epoch
	res.Stats.ParallelWorkers = 1

	keys := v.matchSeries(q)
	res.Stats.SeriesScanned = len(keys)
	if len(keys) == 0 {
		return res, nil
	}

	groups := groupSeries(q, keys, v.index[q.Measurement])
	shards := v.shardsOverlapping(q.Start, q.End)
	res.Stats.Groups = len(groups)

	columns := append([]string{"time"}, fieldLabels(q)...)
	out := make([]ResultSeries, len(groups))
	if workers := db.execWorkersFor(len(groups)); workers <= 1 {
		var scratch aggScratch
		for i := range groups {
			execGroup(q, &groups[i], shards, columns, &out[i], &res.Stats, &scratch, db.cache)
		}
	} else {
		res.Stats.ParallelWorkers = workers
		workerStats := make([]QueryStats, workers)
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var scratch aggScratch
				for {
					i := int(next.Add(1)) - 1
					if i >= len(groups) {
						return
					}
					execGroup(q, &groups[i], shards, columns, &out[i], &workerStats[w], &scratch, db.cache)
				}
			}(w)
		}
		wg.Wait()
		for w := range workerStats {
			res.Stats.Add(workerStats[w])
		}
	}
	if res.Stats.scanErr != nil {
		return nil, res.Stats.scanErr
	}

	res.Series = make([]ResultSeries, 0, len(out))
	for i := range out {
		if len(out[i].Rows) > 0 {
			res.Series = append(res.Series, out[i])
		}
	}
	if len(res.Series) == 0 {
		res.Series = nil // keep "no output" indistinguishable from the unsized path
	}
	sort.Slice(res.Series, func(i, j int) bool {
		return tagsLess(res.Series[i].Tags, res.Series[j].Tags)
	})
	return res, nil
}

// execGroup scans and aggregates one series group into rs, charging the
// work (including emitted rows) to stats. Group slots are disjoint, so
// pool workers call this concurrently with per-worker stats and
// scratch.
func execGroup(q *Query, g *seriesGroup, shards []*shard, columns []string, rs *ResultSeries, stats *QueryStats, scratch *aggScratch, cache *decodeCache) {
	rs.Name = q.Measurement
	rs.Tags = g.tags
	rs.Columns = columns
	if q.Aggregated() {
		execAgg(q, g.keys, shards, rs, stats, scratch, cache)
	} else {
		execRaw(q, g.keys, shards, rs, stats, cache)
	}
	if q.Descending {
		for i, j := 0, len(rs.Rows)-1; i < j; i, j = i+1, j-1 {
			rs.Rows[i], rs.Rows[j] = rs.Rows[j], rs.Rows[i]
		}
	}
	if q.Limit > 0 && len(rs.Rows) > q.Limit {
		rs.Rows = rs.Rows[:q.Limit]
	}
	stats.Rows += len(rs.Rows)
}

func fieldLabels(q *Query) []string {
	out := make([]string, len(q.Fields))
	for i, f := range q.Fields {
		out[i] = f.Label()
	}
	return out
}

// matchSeries finds series keys in the measurement that satisfy every
// tag predicate, using the most selective tag's posting list. Regex
// predicates are resolved against the tag-value index — each pattern is
// matched once per distinct value, not once per series.
func (v *dbView) matchSeries(q *Query) []string {
	mi, ok := v.index[q.Measurement]
	if !ok {
		return nil
	}
	// Single-regex statements — the batched fan-out shape — take a
	// direct route: match each distinct tag value once, union the
	// posting lists, done. No per-series re-check, no resolution map.
	if len(q.TagConds) == 0 && len(q.TagRegexps) == 1 {
		c := q.TagRegexps[0]
		vals, ok := mi.byTag[c.Key]
		if !ok {
			return nil
		}
		var out []string
		for val, list := range vals {
			if c.Re.MatchString(val) {
				out = append(out, list...)
			}
		}
		sort.Strings(out)
		return out
	}
	// Pre-resolve each regex predicate to its set of matching values.
	reMatch := make([]map[string]bool, len(q.TagRegexps))
	for i, c := range q.TagRegexps {
		vals, ok := mi.byTag[c.Key]
		if !ok {
			return nil
		}
		m := make(map[string]bool, len(vals))
		for val := range vals {
			if c.Re.MatchString(val) {
				m[val] = true
			}
		}
		if len(m) == 0 {
			return nil
		}
		reMatch[i] = m
	}
	var candidates []string
	switch {
	case len(q.TagConds) > 0:
		best := -1
		var bestList []string
		for _, c := range q.TagConds {
			vals, ok := mi.byTag[c.Key]
			if !ok {
				return nil
			}
			list, ok := vals[c.Value]
			if !ok {
				return nil
			}
			if best == -1 || len(list) < best {
				best = len(list)
				bestList = list
			}
		}
		candidates = bestList
	case len(q.TagRegexps) > 0:
		// Union the posting lists of the regex predicate with the
		// fewest matching values.
		best := 0
		for i := range reMatch {
			if len(reMatch[i]) < len(reMatch[best]) {
				best = i
			}
		}
		vals := mi.byTag[q.TagRegexps[best].Key]
		for val := range reMatch[best] {
			candidates = append(candidates, vals[val]...)
		}
	default:
		candidates = make([]string, 0, len(mi.series))
		for k := range mi.series {
			candidates = append(candidates, k)
		}
	}
	out := make([]string, 0, len(candidates))
	for _, k := range candidates {
		tags := mi.series[k]
		ok := true
		for _, c := range q.TagConds {
			val, has := tags.Get(c.Key)
			if !has || val != c.Value {
				ok = false
				break
			}
		}
		for i, c := range q.TagRegexps {
			if !ok {
				break
			}
			val, has := tags.Get(c.Key)
			if !has || !reMatch[i][val] {
				ok = false
			}
		}
		if ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

type seriesGroup struct {
	tags Tags
	keys []string
}

// groupKeysCover reports whether the GROUP BY keys cover the complete
// tag set of every matched series — in which case grouping is
// one-to-one with the series and no dedup map is needed.
func groupKeysCover(q *Query, keys []string, mi *measurementIndex) bool {
	if len(q.GroupByTags) == 0 {
		return false
	}
	for i, gk := range q.GroupByTags { // duplicate keys never cover
		for j := 0; j < i; j++ {
			if q.GroupByTags[j] == gk {
				return false
			}
		}
	}
	for _, k := range keys {
		tags := mi.series[k]
		if len(tags) != len(q.GroupByTags) {
			return false
		}
		for _, gk := range q.GroupByTags {
			if _, ok := tags.Get(gk); !ok {
				return false
			}
		}
	}
	return true
}

// groupSeries partitions matched series by the GROUP BY tag values.
// "*" groups by every tag (one group per series).
func groupSeries(q *Query, keys []string, mi *measurementIndex) []seriesGroup {
	if len(q.GroupByTags) == 0 {
		return []seriesGroup{{keys: keys}}
	}
	star := false
	for _, t := range q.GroupByTags {
		if t == "*" {
			star = true
		}
	}
	// Fast path: GROUP BY * — or a key set covering every series' full
	// tag set, like the fan-out GROUP BY "NodeId", "Label" — puts each
	// series in its own group, so the map/dedup machinery below is pure
	// overhead. Keys arrive sorted, which keeps the output order
	// deterministic.
	if star || groupKeysCover(q, keys, mi) {
		out := make([]seriesGroup, len(keys))
		for i, k := range keys {
			out[i] = seriesGroup{tags: mi.series[k], keys: keys[i : i+1 : i+1]}
		}
		return out
	}
	byID := make(map[string]*seriesGroup)
	var order []string
	for _, k := range keys {
		tags := mi.series[k]
		var gt Tags
		var id string
		if star {
			gt, id = tags, k
		} else {
			// When the GROUP BY keys cover the series' full tag set —
			// the common GROUP BY "NodeId", "Label" shape — the group
			// is the series itself: reuse its canonical tag set and
			// storage key instead of building new ones per series.
			full := len(q.GroupByTags) == len(tags)
			if full {
				for i, gk := range q.GroupByTags {
					if _, ok := tags.Get(gk); !ok {
						full = false
						break
					}
					for j := 0; j < i; j++ { // duplicate GROUP BY keys never cover
						if q.GroupByTags[j] == gk {
							full = false
						}
					}
					if !full {
						break
					}
				}
			}
			if full {
				gt, id = tags, k
			} else {
				for _, gk := range q.GroupByTags {
					v, _ := tags.Get(gk)
					gt = append(gt, Tag{gk, v})
				}
				id = seriesKey("", gt)
			}
		}
		g, ok := byID[id]
		if !ok {
			g = &seriesGroup{tags: gt}
			byID[id] = g
			order = append(order, id)
		}
		g.keys = append(g.keys, k)
	}
	sort.Strings(order)
	out := make([]seriesGroup, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}

// tagsLess orders tag sets field-wise (key, then value, per position).
// This matches the ordering of the rendered series keys for ordinary
// tag values while allocating nothing; batched queries sort hundreds
// of output series per statement, so this is on the query hot path.
func tagsLess(a, b Tags) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i].Key != b[i].Key {
			return a[i].Key < b[i].Key
		}
		if a[i].Value != b[i].Value {
			return a[i].Value < b[i].Value
		}
	}
	return len(a) < len(b)
}

// sample is one (time, value) pulled from a column during a scan.
type sample struct {
	t int64
	v Value
}

// colChunk is one contiguous, time-sorted run of samples that falls
// inside the query range — a window onto either a decoded sealed
// block's payload or a column's raw tail. Scans operate on chunk lists
// so the common case — every chunk already in global time order — can
// aggregate straight off the storage slices without materializing
// per-sample structs.
type colChunk struct {
	times  []int64
	vals   []Value
	lo, hi int
}

// collectChunks gathers the column ranges of one field across the
// group's series and overlapping shards. It reports whether visiting
// the chunks in order yields globally time-sorted samples, and the
// total sample count. It charges block decode/prune work to stats but
// not per-sample counters — the caller accounts for each sample
// exactly once when it is consumed.
func collectChunks(keys []string, field string, shards []*shard, start, end int64, stats *QueryStats, cache *decodeCache) ([]colChunk, bool, int) {
	return collectChunksInto(nil, keys, field, shards, start, end, stats, cache)
}

// collectChunksInto is collectChunks appending into a reusable buffer.
// Published columns are invariantly time-sorted (see shard.go), and
// sealed blocks are immutable with idempotent decode caching, so this
// is a walk safe for any number of concurrent readers. Each column is
// visited through a columnIterator: sealed blocks (header-pruned, then
// decoded) followed by the raw tail.
func collectChunksInto(chunks []colChunk, keys []string, field string, shards []*shard, start, end int64, stats *QueryStats, cache *decodeCache) (_ []colChunk, sorted bool, n int) {
	sorted = true
	var last int64
	have := false
	for _, sh := range shards {
		for _, k := range keys {
			sr, ok := sh.series[k]
			if !ok {
				continue
			}
			col, ok := sr.fields[field]
			if !ok {
				continue
			}
			it := newColumnIterator(col, start, end, cache)
			for {
				ch, ok := it.next(stats)
				if !ok {
					break
				}
				if have && ch.times[ch.lo] < last {
					sorted = false
				}
				last = ch.times[ch.hi-1]
				have = true
				chunks = append(chunks, ch)
				n += ch.hi - ch.lo
			}
		}
	}
	return chunks, sorted, n
}

// materialize flattens a chunk list into a time-sorted sample slice,
// charging each sample to the query stats.
func materialize(chunks []colChunk, sorted bool, n int, stats *QueryStats) []sample {
	out := make([]sample, 0, n)
	for _, ch := range chunks {
		for i := ch.lo; i < ch.hi; i++ {
			out = append(out, sample{ch.times[i], ch.vals[i]})
			stats.PointsScanned++
			stats.BytesScanned += 8 + int64(ch.vals[i].EncodedSize())
		}
	}
	if !sorted {
		sort.SliceStable(out, func(i, j int) bool { return out[i].t < out[j].t })
	}
	return out
}

// scanField collects, in time order, every sample of one field across
// the group's series and the overlapping shards.
func scanField(keys []string, field string, shards []*shard, start, end int64, stats *QueryStats, cache *decodeCache) []sample {
	chunks, sorted, n := collectChunks(keys, field, shards, start, end, stats, cache)
	return materialize(chunks, sorted, n, stats)
}

// maxFastBuckets bounds the dense bucket array used by the aggregation
// fast path; sparser or wider queries fall back to the map-based path.
const maxFastBuckets = 1 << 16

// aggScratch recycles the non-escaping per-group buffers of the
// aggregation fast path across the (often hundreds of) output groups
// one worker executes. Bucket slabs are handed out zeroed.
type aggScratch struct {
	chunksPerField [][]colChunk
	f1, f2         []float64
	n              []int64
	seen           []bool
}

func (s *aggScratch) chunkLists(nf int) [][]colChunk {
	if cap(s.chunksPerField) < nf {
		s.chunksPerField = make([][]colChunk, nf)
	}
	s.chunksPerField = s.chunksPerField[:nf]
	for i := range s.chunksPerField {
		s.chunksPerField[i] = s.chunksPerField[i][:0]
	}
	return s.chunksPerField
}

func (s *aggScratch) floats1(nb int) []float64 {
	if cap(s.f1) < nb {
		s.f1 = make([]float64, nb)
	}
	s.f1 = s.f1[:nb]
	clear(s.f1)
	return s.f1
}

func (s *aggScratch) floats2(nb int) []float64 {
	if cap(s.f2) < nb {
		s.f2 = make([]float64, nb)
	}
	s.f2 = s.f2[:nb]
	clear(s.f2)
	return s.f2
}

func (s *aggScratch) ints(nb int) []int64 {
	if cap(s.n) < nb {
		s.n = make([]int64, nb)
	}
	s.n = s.n[:nb]
	clear(s.n)
	return s.n
}

func (s *aggScratch) bools(nb int) []bool {
	if cap(s.seen) < nb {
		s.seen = make([]bool, nb)
	}
	s.seen = s.seen[:nb]
	clear(s.seen)
	return s.seen
}

// execAgg computes aggregate rows, optionally bucketed by GROUP BY
// time. Buckets with no samples are omitted (InfluxDB's fill(none)
// behaviour).
//
// The hot path aggregates directly off the storage columns: when every
// chunk is already in global time order (the overwhelmingly common
// case — one series per group, appends in time order), samples are fed
// to the aggregators in the exact order the slow path would after its
// stable sort, so results are bit-identical while skipping the
// per-sample materialization and the bucket hash map.
func execAgg(q *Query, keys []string, shards []*shard, rs *ResultSeries, stats *QueryStats, scratch *aggScratch, cache *decodeCache) {
	nf := len(q.Fields)
	chunksPerField := scratch.chunkLists(nf)
	allSorted := true
	minT, maxT := int64(math.MaxInt64), int64(math.MinInt64)
	for i, f := range q.Fields {
		chunks, sorted, _ := collectChunksInto(chunksPerField[i], keys, f.Field, shards, q.Start, q.End, stats, cache)
		chunksPerField[i] = chunks
		scratch.chunksPerField[i] = chunks // keep the grown backing for reuse
		if !sorted {
			allSorted = false
		}
		if len(chunks) > 0 && sorted {
			if t := chunks[0].times[chunks[0].lo]; t < minT {
				minT = t
			}
			last := chunks[len(chunks)-1]
			if t := last.times[last.hi-1]; t > maxT {
				maxT = t
			}
		}
	}
	if allSorted {
		if q.GroupByTime <= 0 {
			aggWholeRange(q, chunksPerField, rs, stats)
			return
		}
		if minT <= maxT {
			base := minT - mod(minT, q.GroupByTime)
			if nb := (maxT-base)/q.GroupByTime + 1; nb > 0 && nb <= maxFastBuckets {
				aggBucketedFast(q, chunksPerField, base, int(nb), rs, stats, scratch)
				return
			}
		} else {
			return // no samples at all
		}
	}
	aggBucketedSlow(q, chunksPerField, allSorted, rs, stats)
}

// aggWholeRange emits the single-row (no GROUP BY time) aggregate
// straight from the chunk lists.
func aggWholeRange(q *Query, chunksPerField [][]colChunk, rs *ResultSeries, stats *QueryStats) {
	nf := len(q.Fields)
	row := Row{Time: rangeStart(q), Values: make([]Value, nf), Present: make([]bool, nf)}
	any := false
	for i, f := range q.Fields {
		agg, _ := newAggregator(f.Func)
		for _, ch := range chunksPerField[i] {
			for j := ch.lo; j < ch.hi; j++ {
				agg.add(ch.vals[j])
				stats.PointsScanned++
				stats.BytesScanned += 8 + int64(ch.vals[j].EncodedSize())
			}
		}
		if v, ok := agg.result(); ok {
			row.Values[i], row.Present[i] = v, true
			any = true
		}
	}
	if any {
		rs.Rows = append(rs.Rows, row)
	}
}

// Dense bucket kernels for the simple reductions. Specializing the
// inner scan loop per aggregate keeps the hot path free of interface
// dispatch and per-bucket aggregator allocations; order-sensitive or
// state-heavy aggregates (first, last, stddev, median) route through
// the generic lazily-allocated aggregator slots.
const (
	kGeneric = iota
	kCount
	kSum
	kMean
	kMax
	kMin
	kSpread
)

// numericAt reads vals[j] as a float without copying the full Value
// struct, charging its encoded size (plus the 8-byte timestamp) to
// bytes. The kernels call this once per sample, so it stays a pointer
// read plus a switch.
func numericAt(vals []Value, j int, bytes *int64) (float64, bool) {
	v := &vals[j]
	switch v.Kind {
	case KindFloat:
		*bytes += 16
		return v.F, true
	case KindInt:
		*bytes += 16
		return float64(v.I), true
	default:
		*bytes += 8 + int64(v.EncodedSize())
		return 0, false
	}
}

func kernelFor(fn string) int {
	switch fn {
	case "count":
		return kCount
	case "sum":
		return kSum
	case "mean":
		return kMean
	case "max":
		return kMax
	case "min":
		return kMin
	case "spread":
		return kSpread
	default:
		return kGeneric
	}
}

// aggBucketedFast aggregates time-sorted chunks into dense bucket
// arrays indexed by (t - base) / interval. Empty buckets cost nothing
// and are omitted from the output (fill(none)). Row value/present
// storage is carved from two per-group slabs instead of being
// allocated per row.
func aggBucketedFast(q *Query, chunksPerField [][]colChunk, base int64, nb int, rs *ResultSeries, stats *QueryStats, scratch *aggScratch) {
	nf := len(q.Fields)
	iv := q.GroupByTime
	type denseField struct {
		mode   int
		n      []int64
		f1, f2 []float64
		seen   []bool
		aggs   []aggregator
	}
	fields := make([]denseField, nf)
	for i, f := range q.Fields {
		df := &fields[i]
		df.mode = kernelFor(f.Func)
		// The first field borrows the worker-scoped scratch slabs
		// (the single-field shape dominates fan-out queries); extra
		// fields fall back to fresh allocations.
		switch first := i == 0; df.mode {
		case kCount:
			if first {
				df.n = scratch.ints(nb)
			} else {
				df.n = make([]int64, nb)
			}
		case kMean:
			if first {
				df.f1, df.n = scratch.floats1(nb), scratch.ints(nb)
			} else {
				df.f1, df.n = make([]float64, nb), make([]int64, nb)
			}
		case kSum, kMax, kMin:
			if first {
				df.f1, df.seen = scratch.floats1(nb), scratch.bools(nb)
			} else {
				df.f1, df.seen = make([]float64, nb), make([]bool, nb)
			}
		case kSpread:
			if first {
				df.f1, df.f2, df.seen = scratch.floats1(nb), scratch.floats2(nb), scratch.bools(nb)
			} else {
				df.f1, df.f2, df.seen = make([]float64, nb), make([]float64, nb), make([]bool, nb)
			}
		default:
			df.aggs = make([]aggregator, nb)
		}
		var bytes int64
		for _, ch := range chunksPerField[i] {
			times, vals := ch.times, ch.vals
			stats.PointsScanned += int64(ch.hi - ch.lo)
			switch df.mode {
			case kCount:
				for j := ch.lo; j < ch.hi; j++ {
					df.n[(times[j]-base)/iv]++
					bytes += 8 + int64(vals[j].EncodedSize())
				}
			case kSum:
				for j := ch.lo; j < ch.hi; j++ {
					if fv, ok := numericAt(vals, j, &bytes); ok {
						b := (times[j] - base) / iv
						df.f1[b] += fv
						df.seen[b] = true
					}
				}
			case kMean:
				for j := ch.lo; j < ch.hi; j++ {
					if fv, ok := numericAt(vals, j, &bytes); ok {
						b := (times[j] - base) / iv
						df.f1[b] += fv
						df.n[b]++
					}
				}
			case kMax:
				for j := ch.lo; j < ch.hi; j++ {
					if fv, ok := numericAt(vals, j, &bytes); ok {
						b := (times[j] - base) / iv
						if !df.seen[b] || fv > df.f1[b] {
							df.f1[b] = fv
							df.seen[b] = true
						}
					}
				}
			case kMin:
				for j := ch.lo; j < ch.hi; j++ {
					if fv, ok := numericAt(vals, j, &bytes); ok {
						b := (times[j] - base) / iv
						if !df.seen[b] || fv < df.f1[b] {
							df.f1[b] = fv
							df.seen[b] = true
						}
					}
				}
			case kSpread:
				for j := ch.lo; j < ch.hi; j++ {
					if fv, ok := numericAt(vals, j, &bytes); ok {
						b := (times[j] - base) / iv
						if !df.seen[b] {
							df.f1[b], df.f2[b], df.seen[b] = fv, fv, true
						} else {
							if fv < df.f1[b] {
								df.f1[b] = fv
							}
							if fv > df.f2[b] {
								df.f2[b] = fv
							}
						}
					}
				}
			default:
				for j := ch.lo; j < ch.hi; j++ {
					b := (times[j] - base) / iv
					a := df.aggs[b]
					if a == nil {
						a, _ = newAggregator(f.Func)
						df.aggs[b] = a
					}
					a.add(vals[j])
					bytes += 8 + int64(vals[j].EncodedSize())
				}
			}
		}
		stats.BytesScanned += bytes
	}

	rowVals := make([]Value, nb*nf)
	rowPres := make([]bool, nb*nf)
	rows := make([]Row, 0, nb)
	for b := 0; b < nb; b++ {
		any := false
		vs := rowVals[b*nf : (b+1)*nf : (b+1)*nf]
		ps := rowPres[b*nf : (b+1)*nf : (b+1)*nf]
		for i := range fields {
			df := &fields[i]
			var v Value
			ok := false
			switch df.mode {
			case kCount:
				if df.n[b] > 0 {
					v, ok = Int(df.n[b]), true
				}
			case kSum, kMax, kMin:
				if df.seen[b] {
					v, ok = Float(df.f1[b]), true
				}
			case kMean:
				if df.n[b] > 0 {
					v, ok = Float(df.f1[b]/float64(df.n[b])), true
				}
			case kSpread:
				if df.seen[b] {
					v, ok = Float(df.f2[b]-df.f1[b]), true
				}
			default:
				if a := df.aggs[b]; a != nil {
					v, ok = a.result()
				}
			}
			if ok {
				vs[i], ps[i] = v, true
				any = true
			}
		}
		if any {
			rows = append(rows, Row{Time: base + int64(b)*iv, Values: vs, Present: ps})
		}
	}
	if len(rs.Rows) == 0 {
		rs.Rows = rows
	} else {
		rs.Rows = append(rs.Rows, rows...)
	}
}

// aggBucketedSlow is the general path: it materializes (and, when
// needed, time-sorts) the samples, then buckets through a map. Handles
// out-of-order chunk lists and pathologically wide bucket ranges.
func aggBucketedSlow(q *Query, chunksPerField [][]colChunk, sorted bool, rs *ResultSeries, stats *QueryStats) {
	nf := len(q.Fields)
	samplesPerField := make([][]sample, nf)
	for i, chunks := range chunksPerField {
		n := 0
		for _, ch := range chunks {
			n += ch.hi - ch.lo
		}
		samplesPerField[i] = materialize(chunks, sorted, n, stats)
	}
	if q.GroupByTime <= 0 {
		// Single row over the whole range.
		row := Row{Time: rangeStart(q), Values: make([]Value, nf), Present: make([]bool, nf)}
		any := false
		for i, f := range q.Fields {
			agg, _ := newAggregator(f.Func)
			for _, s := range samplesPerField[i] {
				agg.add(s.v)
			}
			if v, ok := agg.result(); ok {
				row.Values[i], row.Present[i] = v, true
				any = true
			}
		}
		if any {
			rs.Rows = append(rs.Rows, row)
		}
		return
	}

	iv := q.GroupByTime
	type bucketAgg struct {
		aggs []aggregator
		any  []bool
	}
	buckets := make(map[int64]*bucketAgg)
	var order []int64
	for i, f := range q.Fields {
		for _, s := range samplesPerField[i] {
			bt := s.t - mod(s.t, iv)
			b, ok := buckets[bt]
			if !ok {
				b = &bucketAgg{aggs: make([]aggregator, nf), any: make([]bool, nf)}
				for j, ff := range q.Fields {
					b.aggs[j], _ = newAggregator(ff.Func)
					_ = ff
				}
				buckets[bt] = b
				order = append(order, bt)
			}
			b.aggs[i].add(s.v)
			b.any[i] = true
		}
		_ = f
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	for _, bt := range order {
		b := buckets[bt]
		row := Row{Time: bt, Values: make([]Value, nf), Present: make([]bool, nf)}
		any := false
		for i := range q.Fields {
			if !b.any[i] {
				continue
			}
			if v, ok := b.aggs[i].result(); ok {
				row.Values[i], row.Present[i] = v, true
				any = true
			}
		}
		if any {
			rs.Rows = append(rs.Rows, row)
		}
	}
}

func rangeStart(q *Query) int64 {
	if q.Start == math.MinInt64 {
		return 0
	}
	return q.Start
}

// execRaw emits raw samples. Fields are merge-aligned on identical
// timestamps *within* one series; rows from different series in the
// group are concatenated and time-sorted, never merged (two nodes
// sampled at the same instant stay two rows).
func execRaw(q *Query, keys []string, shards []*shard, rs *ResultSeries, stats *QueryStats, cache *decodeCache) {
	nf := len(q.Fields)
	for _, key := range keys {
		rowsByTime := make(map[int64]*Row)
		var order []int64
		for i, f := range q.Fields {
			for _, s := range scanField([]string{key}, f.Field, shards, q.Start, q.End, stats, cache) {
				r, ok := rowsByTime[s.t]
				if !ok {
					r = &Row{Time: s.t, Values: make([]Value, nf), Present: make([]bool, nf)}
					rowsByTime[s.t] = r
					order = append(order, s.t)
				}
				r.Values[i], r.Present[i] = s.v, true
			}
		}
		sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
		for _, t := range order {
			rs.Rows = append(rs.Rows, *rowsByTime[t])
		}
	}
	sort.SliceStable(rs.Rows, func(a, b int) bool { return rs.Rows[a].Time < rs.Rows[b].Time })
}

// FormatResult renders a result as an aligned text table, useful in
// CLIs and examples.
func FormatResult(r *Result) string {
	var b strings.Builder
	for i := range r.Series {
		s := &r.Series[i]
		fmt.Fprintf(&b, "name: %s", s.Name)
		if len(s.Tags) > 0 {
			b.WriteString(" tags: ")
			for j, t := range s.Tags {
				if j > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "%s=%s", t.Key, t.Value)
			}
		}
		b.WriteString("\n")
		b.WriteString(strings.Join(s.Columns, "\t"))
		b.WriteString("\n")
		for _, row := range s.Rows {
			b.WriteString(FormatTime(row.Time))
			for k, v := range row.Values {
				b.WriteByte('\t')
				if row.Present[k] {
					b.WriteString(v.String())
				} else {
					b.WriteString("null")
				}
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}
