package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// QueryStats records the work a query performed — the quantities the
// experiment harness converts into device time.
type QueryStats struct {
	SeriesScanned int   // distinct series probed
	PointsScanned int64 // samples read from columns
	BytesScanned  int64 // encoded bytes of the samples read
	Rows          int   // rows emitted
}

// Add accumulates other into s.
func (s *QueryStats) Add(o QueryStats) {
	s.SeriesScanned += o.SeriesScanned
	s.PointsScanned += o.PointsScanned
	s.BytesScanned += o.BytesScanned
	s.Rows += o.Rows
}

// Row is one output row: a timestamp and one value per projected
// column. A nil-kind? No — missing values are reported via the Present
// bitmap to keep Value simple.
type Row struct {
	Time    int64
	Values  []Value
	Present []bool // Present[i] reports whether Values[i] is set
}

// ResultSeries is one output series (per group).
type ResultSeries struct {
	Name    string
	Tags    Tags // group-by tag values (empty when no tag grouping)
	Columns []string
	Rows    []Row
}

// Result is the full answer to one query.
type Result struct {
	Series []ResultSeries
	Stats  QueryStats
}

// Query parses and executes a statement (SELECT or SHOW).
func (db *DB) Query(stmt string) (*Result, error) {
	if isShowStatement(stmt) {
		return db.execShow(stmt)
	}
	if isDropStatement(stmt) {
		return db.execDrop(stmt)
	}
	q, err := Parse(stmt)
	if err != nil {
		return nil, err
	}
	return db.Exec(q)
}

// Exec executes a parsed query.
func (db *DB) Exec(q *Query) (*Result, error) {
	if err := q.Validate(); err != nil {
		return nil, err
	}
	db.mu.RLock()
	defer db.mu.RUnlock()

	keys := db.matchSeriesLocked(q)
	res := &Result{}
	res.Stats.SeriesScanned = len(keys)
	if len(keys) == 0 {
		return res, nil
	}

	groups := groupSeries(q, keys, db.index[q.Measurement])
	shards := db.shardsOverlappingLocked(q.Start, q.End)

	columns := append([]string{"time"}, fieldLabels(q)...)
	for _, g := range groups {
		var rs ResultSeries
		rs.Name = q.Measurement
		rs.Tags = g.tags
		rs.Columns = columns
		if q.Aggregated() {
			db.execAggLocked(q, g.keys, shards, &rs, &res.Stats)
		} else {
			db.execRawLocked(q, g.keys, shards, &rs, &res.Stats)
		}
		if q.Descending {
			for i, j := 0, len(rs.Rows)-1; i < j; i, j = i+1, j-1 {
				rs.Rows[i], rs.Rows[j] = rs.Rows[j], rs.Rows[i]
			}
		}
		if q.Limit > 0 && len(rs.Rows) > q.Limit {
			rs.Rows = rs.Rows[:q.Limit]
		}
		res.Stats.Rows += len(rs.Rows)
		if len(rs.Rows) > 0 {
			res.Series = append(res.Series, rs)
		}
	}
	sort.Slice(res.Series, func(i, j int) bool {
		return tagsLess(res.Series[i].Tags, res.Series[j].Tags)
	})
	return res, nil
}

func fieldLabels(q *Query) []string {
	out := make([]string, len(q.Fields))
	for i, f := range q.Fields {
		out[i] = f.Label()
	}
	return out
}

// matchSeriesLocked finds series keys in the measurement that satisfy
// every tag predicate, using the most selective tag's posting list.
func (db *DB) matchSeriesLocked(q *Query) []string {
	mi, ok := db.index[q.Measurement]
	if !ok {
		return nil
	}
	var candidates []string
	if len(q.TagConds) > 0 {
		best := -1
		var bestList []string
		for _, c := range q.TagConds {
			vals, ok := mi.byTag[c.Key]
			if !ok {
				return nil
			}
			list, ok := vals[c.Value]
			if !ok {
				return nil
			}
			if best == -1 || len(list) < best {
				best = len(list)
				bestList = list
			}
		}
		candidates = bestList
	} else {
		candidates = make([]string, 0, len(mi.series))
		for k := range mi.series {
			candidates = append(candidates, k)
		}
	}
	var out []string
	for _, k := range candidates {
		tags := mi.series[k]
		ok := true
		for _, c := range q.TagConds {
			v, has := tags.Get(c.Key)
			if !has || v != c.Value {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

type seriesGroup struct {
	tags Tags
	keys []string
}

// groupSeries partitions matched series by the GROUP BY tag values.
// "*" groups by every tag (one group per series).
func groupSeries(q *Query, keys []string, mi *measurementIndex) []seriesGroup {
	if len(q.GroupByTags) == 0 {
		return []seriesGroup{{keys: keys}}
	}
	star := false
	for _, t := range q.GroupByTags {
		if t == "*" {
			star = true
		}
	}
	byID := make(map[string]*seriesGroup)
	var order []string
	for _, k := range keys {
		tags := mi.series[k]
		var gt Tags
		if star {
			gt = tags
		} else {
			for _, gk := range q.GroupByTags {
				v, _ := tags.Get(gk)
				gt = append(gt, Tag{gk, v})
			}
		}
		id := seriesKey("", gt)
		g, ok := byID[id]
		if !ok {
			g = &seriesGroup{tags: gt}
			byID[id] = g
			order = append(order, id)
		}
		g.keys = append(g.keys, k)
	}
	sort.Strings(order)
	out := make([]seriesGroup, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}

func tagsLess(a, b Tags) bool {
	return seriesKey("", a) < seriesKey("", b)
}

// sample is one (time, value) pulled from a column during a scan.
type sample struct {
	t int64
	v Value
}

// scanField collects, in time order, every sample of one field across
// the group's series and the overlapping shards.
func (db *DB) scanFieldLocked(keys []string, field string, shards []*shard, start, end int64, stats *QueryStats) []sample {
	var out []sample
	sorted := true
	for _, sh := range shards {
		for _, k := range keys {
			sr, ok := sh.series[k]
			if !ok {
				continue
			}
			col, ok := sr.fields[field]
			if !ok {
				continue
			}
			col.ensureSorted()
			lo, hi := col.rangeIndexes(start, end)
			if lo >= hi {
				continue
			}
			if len(out) > 0 && col.times[lo] < out[len(out)-1].t {
				sorted = false
			}
			for i := lo; i < hi; i++ {
				out = append(out, sample{col.times[i], col.vals[i]})
				stats.PointsScanned++
				stats.BytesScanned += 8 + int64(col.vals[i].EncodedSize())
			}
		}
	}
	if !sorted {
		sort.SliceStable(out, func(i, j int) bool { return out[i].t < out[j].t })
	}
	return out
}

// execAggLocked computes aggregate rows, optionally bucketed by
// GROUP BY time. Buckets with no samples are omitted (InfluxDB's
// fill(none) behaviour).
func (db *DB) execAggLocked(q *Query, keys []string, shards []*shard, rs *ResultSeries, stats *QueryStats) {
	nf := len(q.Fields)
	samplesPerField := make([][]sample, nf)
	for i, f := range q.Fields {
		samplesPerField[i] = db.scanFieldLocked(keys, f.Field, shards, q.Start, q.End, stats)
	}
	if q.GroupByTime <= 0 {
		// Single row over the whole range.
		row := Row{Time: rangeStart(q), Values: make([]Value, nf), Present: make([]bool, nf)}
		any := false
		for i, f := range q.Fields {
			agg, _ := newAggregator(f.Func)
			for _, s := range samplesPerField[i] {
				agg.add(s.v)
			}
			if v, ok := agg.result(); ok {
				row.Values[i], row.Present[i] = v, true
				any = true
			}
		}
		if any {
			rs.Rows = append(rs.Rows, row)
		}
		return
	}

	iv := q.GroupByTime
	type bucketAgg struct {
		aggs []aggregator
		any  []bool
	}
	buckets := make(map[int64]*bucketAgg)
	var order []int64
	for i, f := range q.Fields {
		for _, s := range samplesPerField[i] {
			bt := s.t - mod(s.t, iv)
			b, ok := buckets[bt]
			if !ok {
				b = &bucketAgg{aggs: make([]aggregator, nf), any: make([]bool, nf)}
				for j, ff := range q.Fields {
					b.aggs[j], _ = newAggregator(ff.Func)
					_ = ff
				}
				buckets[bt] = b
				order = append(order, bt)
			}
			b.aggs[i].add(s.v)
			b.any[i] = true
		}
		_ = f
	}
	sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
	for _, bt := range order {
		b := buckets[bt]
		row := Row{Time: bt, Values: make([]Value, nf), Present: make([]bool, nf)}
		any := false
		for i := range q.Fields {
			if !b.any[i] {
				continue
			}
			if v, ok := b.aggs[i].result(); ok {
				row.Values[i], row.Present[i] = v, true
				any = true
			}
		}
		if any {
			rs.Rows = append(rs.Rows, row)
		}
	}
}

func rangeStart(q *Query) int64 {
	if q.Start == math.MinInt64 {
		return 0
	}
	return q.Start
}

// execRawLocked emits raw samples. Fields are merge-aligned on
// identical timestamps *within* one series; rows from different series
// in the group are concatenated and time-sorted, never merged (two
// nodes sampled at the same instant stay two rows).
func (db *DB) execRawLocked(q *Query, keys []string, shards []*shard, rs *ResultSeries, stats *QueryStats) {
	nf := len(q.Fields)
	for _, key := range keys {
		rowsByTime := make(map[int64]*Row)
		var order []int64
		for i, f := range q.Fields {
			for _, s := range db.scanFieldLocked([]string{key}, f.Field, shards, q.Start, q.End, stats) {
				r, ok := rowsByTime[s.t]
				if !ok {
					r = &Row{Time: s.t, Values: make([]Value, nf), Present: make([]bool, nf)}
					rowsByTime[s.t] = r
					order = append(order, s.t)
				}
				r.Values[i], r.Present[i] = s.v, true
			}
		}
		sort.Slice(order, func(a, b int) bool { return order[a] < order[b] })
		for _, t := range order {
			rs.Rows = append(rs.Rows, *rowsByTime[t])
		}
	}
	sort.SliceStable(rs.Rows, func(a, b int) bool { return rs.Rows[a].Time < rs.Rows[b].Time })
}

// FormatResult renders a result as an aligned text table, useful in
// CLIs and examples.
func FormatResult(r *Result) string {
	var b strings.Builder
	for i := range r.Series {
		s := &r.Series[i]
		fmt.Fprintf(&b, "name: %s", s.Name)
		if len(s.Tags) > 0 {
			b.WriteString(" tags: ")
			for j, t := range s.Tags {
				if j > 0 {
					b.WriteString(",")
				}
				fmt.Fprintf(&b, "%s=%s", t.Key, t.Value)
			}
		}
		b.WriteString("\n")
		b.WriteString(strings.Join(s.Columns, "\t"))
		b.WriteString("\n")
		for _, row := range s.Rows {
			b.WriteString(FormatTime(row.Time))
			for k, v := range row.Values {
				b.WriteByte('\t')
				if row.Present[k] {
					b.WriteString(v.String())
				} else {
					b.WriteString("null")
				}
			}
			b.WriteString("\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}
