package tsdb

import (
	"math"
	"strings"
	"testing"
)

func TestParsePaperQuery(t *testing.T) {
	// The exact statement shape from Section III-D of the paper.
	q, err := Parse(`SELECT max("Reading") FROM "Power" WHERE "NodeId"='10.101.1.1' AND "Label"='NodePower' AND time >= '2020-04-20T12:00:00Z' AND time < '2020-04-21T12:00:00Z' GROUP BY time(5m)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Fields) != 1 || q.Fields[0].Func != "max" || q.Fields[0].Field != "Reading" {
		t.Fatalf("fields = %+v", q.Fields)
	}
	if q.Measurement != "Power" {
		t.Fatalf("measurement = %q", q.Measurement)
	}
	if len(q.TagConds) != 2 {
		t.Fatalf("tag conds = %+v", q.TagConds)
	}
	if q.TagConds[0] != (TagCond{"NodeId", "10.101.1.1"}) {
		t.Fatalf("cond0 = %+v", q.TagConds[0])
	}
	wantStart, _ := ParseTime("2020-04-20T12:00:00Z")
	wantEnd, _ := ParseTime("2020-04-21T12:00:00Z")
	if q.Start != wantStart || q.End != wantEnd {
		t.Fatalf("range = [%d,%d), want [%d,%d)", q.Start, q.End, wantStart, wantEnd)
	}
	if q.GroupByTime != 300 {
		t.Fatalf("group interval = %d, want 300", q.GroupByTime)
	}
}

func TestParseUnquotedIdentifiers(t *testing.T) {
	q, err := Parse(`SELECT mean(Reading) FROM Thermal WHERE Label='CPU1Temp' GROUP BY time(30s), NodeId LIMIT 10`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Fields[0].Func != "mean" {
		t.Fatalf("func = %q", q.Fields[0].Func)
	}
	if q.GroupByTime != 30 {
		t.Fatalf("interval = %d", q.GroupByTime)
	}
	if len(q.GroupByTags) != 1 || q.GroupByTags[0] != "NodeId" {
		t.Fatalf("group tags = %v", q.GroupByTags)
	}
	if q.Limit != 10 {
		t.Fatalf("limit = %d", q.Limit)
	}
}

func TestParseRawSelect(t *testing.T) {
	q, err := Parse(`SELECT "Reading" FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Aggregated() {
		t.Fatal("raw select reported aggregated")
	}
	if q.Start != math.MinInt64 || q.End != math.MaxInt64 {
		t.Fatal("unbounded query got bounds")
	}
}

func TestParseMultipleFields(t *testing.T) {
	q, err := Parse(`SELECT max("Reading"), min("Reading"), mean("Reading") FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Fields) != 3 {
		t.Fatalf("fields = %+v", q.Fields)
	}
}

func TestParseEpochTimeLiterals(t *testing.T) {
	q, err := Parse(`SELECT count("Reading") FROM "Power" WHERE time >= 100 AND time < 200`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Start != 100 || q.End != 200 {
		t.Fatalf("range = [%d,%d)", q.Start, q.End)
	}
}

func TestParseTimeOperators(t *testing.T) {
	cases := []struct {
		stmt       string
		start, end int64
	}{
		{`SELECT count(f) FROM m WHERE time > 100`, 101, math.MaxInt64},
		{`SELECT count(f) FROM m WHERE time <= 100`, math.MinInt64, 101},
		{`SELECT count(f) FROM m WHERE time = 100`, 100, 101},
	}
	for _, c := range cases {
		q, err := Parse(c.stmt)
		if err != nil {
			t.Fatalf("%s: %v", c.stmt, err)
		}
		if q.Start != c.start || q.End != c.end {
			t.Errorf("%s: range [%d,%d), want [%d,%d)", c.stmt, q.Start, q.End, c.start, c.end)
		}
	}
}

func TestParseGroupByStar(t *testing.T) {
	q, err := Parse(`SELECT mean(f) FROM m GROUP BY *`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupByTags) != 1 || q.GroupByTags[0] != "*" {
		t.Fatalf("group tags = %v", q.GroupByTags)
	}
}

func TestParseDurationUnits(t *testing.T) {
	cases := map[string]int64{
		"30s": 30, "5m": 300, "2h": 7200, "1d": 86400, "1w": 604800,
	}
	for lit, want := range cases {
		q, err := Parse(`SELECT mean(f) FROM m GROUP BY time(` + lit + `)`)
		if err != nil {
			t.Fatalf("%s: %v", lit, err)
		}
		if q.GroupByTime != want {
			t.Errorf("time(%s) = %d, want %d", lit, q.GroupByTime, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`FROM m`,
		`SELECT FROM m`,
		`SELECT f`,
		`SELECT f FROM`,
		`SELECT max(f FROM m`,
		`SELECT nosuchagg(f) FROM m`,
		`SELECT f FROM m WHERE`,
		`SELECT f FROM m WHERE k=`,
		`SELECT f FROM m WHERE k='v`,
		`SELECT f FROM m WHERE time ~ 5`,
		`SELECT f FROM m WHERE time >= 'bogus'`,
		`SELECT mean(f) FROM m GROUP time(5m)`,
		`SELECT mean(f) FROM m GROUP BY time(5m`,
		`SELECT mean(f) FROM m GROUP BY time(5q)`,
		`SELECT mean(f) FROM m LIMIT x`,
		`SELECT f FROM m trailing`,
		`SELECT f FROM m GROUP BY time(5m)`, // raw + group-by-time
		`SELECT f, max(f) FROM m`,           // mixed raw/agg
		`SELECT f FROM m WHERE time >= 200 AND time < 100`,
	}
	for _, stmt := range bad {
		if _, err := Parse(stmt); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", stmt)
		}
	}
}

func TestMustParsePanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse did not panic")
		}
	}()
	MustParse("not a query")
}

func TestQueryStringRoundTrip(t *testing.T) {
	stmts := []string{
		`SELECT max("Reading") FROM "Power" WHERE "NodeId" = '10.101.1.1' AND time >= '2020-04-20T12:00:00Z' AND time < '2020-04-21T12:00:00Z' GROUP BY time(5m)`,
		`SELECT "Reading" FROM "Power"`,
		`SELECT mean("f") FROM "m" GROUP BY "NodeId" LIMIT 5`,
	}
	for _, s := range stmts {
		q1, err := Parse(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		q2, err := Parse(q1.String())
		if err != nil {
			t.Fatalf("reparse %q: %v", q1.String(), err)
		}
		if q1.String() != q2.String() {
			t.Errorf("round trip changed query:\n%s\n%s", q1.String(), q2.String())
		}
	}
}

func TestParserRejectsWeirdCharacters(t *testing.T) {
	_, err := Parse("SELECT f FROM m WHERE a=`x`")
	if err == nil {
		t.Fatal("backquote accepted")
	}
	if !strings.Contains(err.Error(), "unexpected character") {
		t.Fatalf("error %q does not mention the bad character", err)
	}
}

func TestParseOrderByTime(t *testing.T) {
	q, err := Parse(`SELECT "Reading" FROM "Power" ORDER BY time DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.Descending || q.Limit != 1 {
		t.Fatalf("query = %+v", q)
	}
	q, err = Parse(`SELECT "Reading" FROM "Power" ORDER BY time ASC`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Descending {
		t.Fatal("ASC parsed as descending")
	}
	for _, bad := range []string{
		`SELECT f FROM m ORDER time DESC`,
		`SELECT f FROM m ORDER BY value DESC`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded", bad)
		}
	}
	// Round trip.
	q1 := MustParse(`SELECT "f" FROM "m" ORDER BY time DESC LIMIT 3`)
	q2 := MustParse(q1.String())
	if !q2.Descending || q2.Limit != 3 {
		t.Fatalf("round trip lost ORDER BY: %s", q1.String())
	}
}
