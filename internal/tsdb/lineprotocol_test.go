package tsdb

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFormatLineProtocolPaperShape(t *testing.T) {
	p := Point{
		Measurement: "Power",
		Tags:        Tags{{"NodeId", "10.101.1.1"}, {"Label", "NodePower"}},
		Fields:      map[string]Value{"Reading": Float(273.8)},
		Time:        1583792296,
	}
	got := string(AppendLineProtocol(nil, &p))
	want := "Power,Label=NodePower,NodeId=10.101.1.1 Reading=273.8 1583792296"
	if got != want {
		t.Fatalf("line = %q, want %q", got, want)
	}
}

func TestLineProtocolRoundTrip(t *testing.T) {
	pts := []Point{
		{
			Measurement: "Power",
			Tags:        Tags{{"NodeId", "10.101.1.1"}, {"Label", "NodePower"}},
			Fields:      map[string]Value{"Reading": Float(273.8)},
			Time:        1583792296,
		},
		{
			Measurement: "JobsInfo",
			Tags:        Tags{{"JobId", "1291784"}},
			Fields: map[string]Value{
				"User":    Str("jieyao"),
				"Slots":   Int(36),
				"IsArray": Bool(false),
			},
			Time: 1583892564,
		},
	}
	data := FormatLineProtocol(pts)
	back, err := ParseLineProtocol(data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 {
		t.Fatalf("points = %d", len(back))
	}
	for i := range pts {
		if back[i].SeriesKey() != pts[i].SeriesKey() {
			t.Fatalf("series key %q != %q", back[i].SeriesKey(), pts[i].SeriesKey())
		}
		if back[i].Time != pts[i].Time {
			t.Fatalf("time %d != %d", back[i].Time, pts[i].Time)
		}
		for k, v := range pts[i].Fields {
			if !back[i].Fields[k].Equal(v) {
				t.Fatalf("field %s: %v != %v", k, back[i].Fields[k], v)
			}
		}
	}
}

func TestLineProtocolEscaping(t *testing.T) {
	p := Point{
		Measurement: "my measurement,x",
		Tags:        Tags{{"tag key", "va=lue, with stuff"}},
		Fields:      map[string]Value{"fi eld": Str(`quote " and \ slash`)},
		Time:        42,
	}
	data := FormatLineProtocol([]Point{p})
	back, err := ParseLineProtocol(data, 0)
	if err != nil {
		t.Fatalf("%v (line: %s)", err, data)
	}
	if back[0].Measurement != p.Measurement {
		t.Fatalf("measurement %q", back[0].Measurement)
	}
	if v, _ := back[0].Tags.Get("tag key"); v != "va=lue, with stuff" {
		t.Fatalf("tag = %q", v)
	}
	if got := back[0].Fields["fi eld"].S; got != `quote " and \ slash` {
		t.Fatalf("field = %q", got)
	}
}

func TestParseLineProtocolVariants(t *testing.T) {
	data := []byte(`
# comment line
cpu,host=a usage=0.5 100
cpu,host=b usage=1i
mem free=t
`)
	pts, err := ParseLineProtocol(data, 999)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Time != 100 {
		t.Fatalf("explicit ts = %d", pts[0].Time)
	}
	if pts[1].Time != 999 || pts[1].Fields["usage"].Kind != KindInt {
		t.Fatalf("default ts point = %+v", pts[1])
	}
	if pts[2].Fields["free"].Kind != KindBool || !pts[2].Fields["free"].B {
		t.Fatalf("bool point = %+v", pts[2])
	}
}

func TestParseLineProtocolErrors(t *testing.T) {
	bad := []string{
		"justname",
		"m,tagonly=v",
		"m field=",
		`m field="unterminated`,
		"m field=notanumber",
		"m field=1 notatimestamp",
		"m,badtag field=1",
		",empty field=1",
		"m 1x=2y=3",
	}
	for _, s := range bad {
		if _, err := ParseLineProtocol([]byte(s), 0); err == nil {
			t.Errorf("ParseLineProtocol(%q) succeeded, want error", s)
		}
	}
}

func TestWriteLineProtocolIntoDB(t *testing.T) {
	db := Open(Options{})
	n, err := db.WriteLineProtocol([]byte(
		"Power,NodeId=10.101.1.1,Label=NodePower Reading=273.8 1583792296\n"+
			"Power,NodeId=10.101.1.2,Label=NodePower Reading=281.2 1583792296\n"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("wrote %d points", n)
	}
	res, err := db.Query(`SELECT mean("Reading") FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Series[0].Rows[0].Values[0].F; got < 277 || got > 278 {
		t.Fatalf("mean = %v", got)
	}
	if n, err := db.WriteLineProtocol(nil, 0); err != nil || n != 0 {
		t.Fatalf("empty write = %d, %v", n, err)
	}
}

func TestPropLineProtocolRoundTripsFloats(t *testing.T) {
	f := func(node string, reading float64, ts int64) bool {
		if reading != reading { // NaN never round-trips
			return true
		}
		if strings.TrimSpace(node) == "" {
			node = "n"
		}
		p := Point{
			Measurement: "m",
			Tags:        Tags{{"NodeId", node}},
			Fields:      map[string]Value{"Reading": Float(reading)},
			Time:        ts,
		}
		if p.Validate() != nil {
			return true
		}
		back, err := ParseLineProtocol(FormatLineProtocol([]Point{p}), 0)
		if err != nil || len(back) != 1 {
			return false
		}
		return back[0].Fields["Reading"].F == reading && back[0].Time == ts
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropLineProtocolRoundTripsStrings(t *testing.T) {
	f := func(s string) bool {
		if strings.ContainsAny(s, "\n\r") {
			return true // line protocol is line-oriented by definition
		}
		p := Point{
			Measurement: "m",
			Fields:      map[string]Value{"v": Str(s)},
			Time:        1,
		}
		back, err := ParseLineProtocol(FormatLineProtocol([]Point{p}), 0)
		if err != nil || len(back) != 1 {
			return false
		}
		return back[0].Fields["v"].S == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
