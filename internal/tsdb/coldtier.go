package tsdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
)

// File-backed cold tier: sealed blocks spilled to per-shard segment
// files.
//
// The decode cache (PR 7) bounds *decoded* payload bytes, but every
// sealed block's compressed bytes still lived in memory forever, so
// the process footprint grew with total history instead of the hot
// set. The cold tier is the other half of the hot/cold split (the
// cc-metric-store checkpoint/archive shape): DB.SpillCold appends the
// compressed payload of sealed blocks past an age cutoff — and, under
// Options.ColdMaxResidentBytes, the oldest resident blocks beyond the
// cutoff until the budget holds — to an append-only per-shard segment
// file, fsyncs it, and republishes the view with each spilled block
// replaced by a twin that keeps only the header (minT/maxT/count/
// rawBytes) plus a file reference. Queries stay transparent:
// block.decode reads the payload back with one pread, verifies its
// CRC, decodes, and admits to the decode cache exactly like a
// resident block (QueryStats.BlocksFromDisk counts the reads).
//
// Segment file layout (cold-<shardStart>-<generation>.seg):
//
//	magic "MCLD" | version u16 | shardStart i64
//	then frames: payloadLen u32 | crc32(payload) u32 | payload
//
// Files are append-only, and every process run spills into a fresh
// generation — a restarted process never appends to a file an earlier
// run wrote, so a torn tail left by a crash can never end up beneath
// later live frames. Crash safety is sequenced, not logged: a spill
// fsyncs the segment before the view holding cold references
// publishes, and only a checkpoint snapshot (format v3) persists
// references, so every reference recovery can see points at bytes
// that were durable before the snapshot renamed into place. Frames no
// live reference touches (dropped measurements, expired shards,
// crashed spills, re-seals after an out-of-order unseal) are garbage:
// compaction at checkpoint rewrites mostly-dead files into a fresh
// generation, and sweepOrphans deletes files with no reference in
// either the just-written snapshot or the live view.
const (
	coldMagic       = "MCLD"
	coldVersion     = 1
	coldHeaderSize  = 4 + 2 + 8
	coldFrameHeader = 4 + 4

	// maxColdFrame bounds the payload size a frame may claim — same
	// order as the snapshot restore guard, so a corrupt length can
	// never drive a giant allocation.
	maxColdFrame = 1 << 28
)

// errColdCorrupt marks unreadable or failed-verification cold data.
var errColdCorrupt = errors.New("tsdb: corrupt cold segment")

// coldFile is one open segment file. The handle serves concurrent
// preads; size is the append offset and is only meaningful on the
// file's active appender.
type coldFile struct {
	name  string
	f     *os.File
	size  int64
	dirty bool // appended since the last Sync
}

// coldTier owns the segment directory: appenders (one active
// generation per shard), read handles, and counters. All file-set
// mutation happens under mu; payload preads run outside it on shared
// handles (ReadAt is concurrency-safe).
type coldTier struct {
	dir         string
	maxResident int64 // resident compressed sealed bytes budget; <=0 = none

	mu        sync.Mutex
	inited    bool
	initErr   error
	files     map[string]*coldFile // every open handle, by file name
	appenders map[int64]*coldFile  // active append file per shard start
	nextGen   map[int64]uint64
	retired   []*coldFile // unlinked by a sweep; closed on the next one

	spills         atomic.Int64
	spilledBytes   atomic.Int64
	reads          atomic.Int64
	readBytes      atomic.Int64
	compactions    atomic.Int64
	reclaimedBytes atomic.Int64
	orphansDropped atomic.Int64
}

// coldRef locates one block payload inside a segment file. Immutable
// after construction; blocks holding one have data == nil.
type coldRef struct {
	ct     *coldTier
	file   string
	off    int64
	length uint32
	crc    uint32
}

func newColdTier(dir string, maxResident int64) *coldTier {
	return &coldTier{
		dir:         dir,
		maxResident: maxResident,
		files:       make(map[string]*coldFile),
		appenders:   make(map[int64]*coldFile),
		nextGen:     make(map[int64]uint64),
	}
}

func coldFileName(shardStart int64, gen uint64) string {
	return fmt.Sprintf("cold-%d-%08d.seg", shardStart, gen)
}

// parseColdName extracts the shard start and generation from a segment
// file name; round-tripping through coldFileName rejects lookalikes
// (and, for names arriving from a snapshot, anything path-shaped).
func parseColdName(name string) (shardStart int64, gen uint64, ok bool) {
	var s int64
	var g uint64
	if _, err := fmt.Sscanf(name, "cold-%d-%d.seg", &s, &g); err != nil {
		return 0, 0, false
	}
	if name != coldFileName(s, g) {
		return 0, 0, false
	}
	return s, g, true
}

// initLocked creates the directory and scans existing generations so
// this run appends only to fresh files. Lazy and latching: Open cannot
// return an error, so the first spill reports directory problems.
func (ct *coldTier) initLocked() error {
	if ct.inited {
		return ct.initErr
	}
	ct.inited = true
	ct.initErr = func() error {
		if err := os.MkdirAll(ct.dir, 0o755); err != nil {
			return fmt.Errorf("tsdb: cold tier: %w", err)
		}
		entries, err := os.ReadDir(ct.dir)
		if err != nil {
			return fmt.Errorf("tsdb: cold tier: %w", err)
		}
		for _, e := range entries {
			shard, gen, ok := parseColdName(e.Name())
			if !ok {
				continue
			}
			if gen >= ct.nextGen[shard] {
				ct.nextGen[shard] = gen + 1
			}
		}
		return nil
	}()
	return ct.initErr
}

// createLocked opens a fresh generation for shardStart and writes its
// header.
func (ct *coldTier) createLocked(shardStart int64) (*coldFile, error) {
	gen := ct.nextGen[shardStart]
	ct.nextGen[shardStart] = gen + 1
	name := coldFileName(shardStart, gen)
	f, err := os.OpenFile(filepath.Join(ct.dir, name), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("tsdb: cold tier: %w", err)
	}
	var hdr [coldHeaderSize]byte
	copy(hdr[:4], coldMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], coldVersion)
	binary.LittleEndian.PutUint64(hdr[6:14], uint64(shardStart))
	if _, err := f.Write(hdr[:]); err != nil {
		closeErr := f.Close()
		rmErr := os.Remove(filepath.Join(ct.dir, name))
		return nil, errors.Join(fmt.Errorf("tsdb: cold tier: %w", err), closeErr, rmErr)
	}
	cf := &coldFile{name: name, f: f, size: coldHeaderSize}
	ct.files[name] = cf
	return cf, nil
}

// appendPayload appends one CRC-framed compressed payload to
// shardStart's active segment and returns its reference. The reference
// must not be published until syncAppenders succeeds. A failed write
// retires the appender (truncating the torn frame best-effort) so
// later appends land in a fresh file with correct offsets.
func (ct *coldTier) appendPayload(shardStart int64, payload []byte, compacting bool) (*coldRef, error) {
	if len(payload) == 0 || len(payload) > maxColdFrame {
		return nil, fmt.Errorf("%w: frame payload %d bytes", errColdCorrupt, len(payload))
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if err := ct.initLocked(); err != nil {
		return nil, err
	}
	cf := ct.appenders[shardStart]
	if cf == nil {
		var err error
		if cf, err = ct.createLocked(shardStart); err != nil {
			return nil, err
		}
		ct.appenders[shardStart] = cf
	}
	crc := crc32.ChecksumIEEE(payload)
	frame := make([]byte, coldFrameHeader+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc)
	copy(frame[coldFrameHeader:], payload)
	if _, err := cf.f.WriteAt(frame, cf.size); err != nil {
		truncErr := cf.f.Truncate(cf.size)
		delete(ct.appenders, shardStart)
		return nil, errors.Join(fmt.Errorf("tsdb: cold tier: append: %w", err), truncErr)
	}
	off := cf.size + coldFrameHeader
	cf.size += int64(len(frame))
	cf.dirty = true
	if !compacting {
		ct.spills.Add(1)
		ct.spilledBytes.Add(int64(len(payload)))
	}
	return &coldRef{ct: ct, file: cf.name, off: off, length: uint32(len(payload)), crc: crc}, nil
}

// syncAppenders fsyncs every segment with unsynced appends. Callers
// publish cold references only after it returns nil — that ordering is
// the entire crash-safety argument for spills.
func (ct *coldTier) syncAppenders() error {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	for _, cf := range ct.appenders {
		if !cf.dirty {
			continue
		}
		if err := cf.f.Sync(); err != nil {
			return fmt.Errorf("tsdb: cold tier: sync %s: %w", cf.name, err)
		}
		cf.dirty = false
	}
	return nil
}

// handle returns an open *os.File for name, opening (and header-
// verifying) it on first use. Handles are shared and cached; preads on
// them run outside the tier mutex.
func (ct *coldTier) handle(name string) (*os.File, error) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if cf := ct.files[name]; cf != nil {
		return cf.f, nil
	}
	shard, _, ok := parseColdName(name)
	if !ok {
		// Names reach here from snapshot v3 records; rejecting anything
		// not shaped exactly like a segment name keeps a corrupt
		// snapshot from naming a path outside the tier directory.
		return nil, fmt.Errorf("%w: bad segment name %q", errColdCorrupt, name)
	}
	f, err := os.Open(filepath.Join(ct.dir, name))
	if err != nil {
		return nil, fmt.Errorf("tsdb: cold tier: %w", err)
	}
	var hdr [coldHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		closeErr := f.Close()
		return nil, errors.Join(fmt.Errorf("%w: %s: short header", errColdCorrupt, name), closeErr)
	}
	if string(hdr[:4]) != coldMagic ||
		binary.LittleEndian.Uint16(hdr[4:6]) != coldVersion ||
		int64(binary.LittleEndian.Uint64(hdr[6:14])) != shard {
		closeErr := f.Close()
		return nil, errors.Join(fmt.Errorf("%w: %s: bad header", errColdCorrupt, name), closeErr)
	}
	st, err := f.Stat()
	if err != nil {
		closeErr := f.Close()
		return nil, errors.Join(fmt.Errorf("tsdb: cold tier: %w", err), closeErr)
	}
	ct.files[name] = &coldFile{name: name, f: f, size: st.Size()}
	return f, nil
}

// read preads and verifies the referenced payload. The frame header on
// disk is cross-checked against the reference so a shifted or
// truncated file reports corruption instead of decoding garbage.
func (r *coldRef) read() ([]byte, error) {
	f, err := r.ct.handle(r.file)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, coldFrameHeader+int64(r.length))
	if _, err := f.ReadAt(buf, r.off-coldFrameHeader); err != nil {
		return nil, fmt.Errorf("%w: %s@%d: %v", errColdCorrupt, r.file, r.off, err)
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != r.length ||
		binary.LittleEndian.Uint32(buf[4:8]) != r.crc {
		return nil, fmt.Errorf("%w: %s@%d: frame header mismatch", errColdCorrupt, r.file, r.off)
	}
	payload := buf[coldFrameHeader:]
	if crc32.ChecksumIEEE(payload) != r.crc {
		return nil, fmt.Errorf("%w: %s@%d: checksum mismatch", errColdCorrupt, r.file, r.off)
	}
	r.ct.reads.Add(1)
	r.ct.readBytes.Add(int64(r.length))
	return payload, nil
}

// coldFilesReferenced collects the segment file names any block in v
// points into.
func coldFilesReferenced(v *dbView, into map[string]struct{}) {
	for _, sh := range v.shards {
		for _, sr := range sh.series {
			for _, col := range sr.fields {
				for _, blk := range col.blocks {
					if blk.cold != nil {
						into[blk.cold.file] = struct{}{}
					}
				}
			}
		}
	}
}

// sweepOrphans deletes segment files no block in any keep view
// references. Callers pass both the just-snapshotted view and the live
// view: a file is garbage only when neither the newest durable
// snapshot nor current readers can name it, so a crash at any point
// re-recovers cleanly from what remains.
//
// Unlinked files' open handles are retired, not closed, until the
// following sweep: a scan still draining an older view keeps its pread
// target alive through POSIX unlink semantics for at least one more
// checkpoint interval.
func (ct *coldTier) sweepOrphans(keep ...*dbView) error {
	refs := make(map[string]struct{})
	for _, v := range keep {
		if v != nil {
			coldFilesReferenced(v, refs)
		}
	}
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if err := ct.initLocked(); err != nil {
		return err
	}
	for _, cf := range ct.retired {
		if err := cf.f.Close(); err != nil {
			return fmt.Errorf("tsdb: cold tier: close %s: %w", cf.name, err)
		}
	}
	ct.retired = nil
	entries, err := os.ReadDir(ct.dir)
	if err != nil {
		return fmt.Errorf("tsdb: cold tier: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		shard, _, ok := parseColdName(name)
		if !ok {
			continue
		}
		if _, live := refs[name]; live {
			continue
		}
		if info, err := e.Info(); err == nil {
			ct.reclaimedBytes.Add(info.Size())
		}
		if cf := ct.files[name]; cf != nil {
			delete(ct.files, name)
			if ct.appenders[shard] == cf {
				delete(ct.appenders, shard)
			}
			ct.retired = append(ct.retired, cf)
		}
		if err := os.Remove(filepath.Join(ct.dir, name)); err != nil {
			return fmt.Errorf("tsdb: cold tier: %w", err)
		}
		ct.orphansDropped.Add(1)
	}
	return nil
}

// compact rewrites segment files that are mostly garbage (more dead
// than live bytes) by re-appending their live payloads to the shard's
// active generation, returning old-block → new-block twins for the
// caller to publish copy-on-write. The emptied files are not deleted
// here — sweepOrphans removes them once the covering snapshot is
// durable, so a crash mid-compaction only ever leaves extra garbage.
func (ct *coldTier) compact(v *dbView) (map[*block]*block, error) {
	type fileLive struct {
		shard  int64
		blocks []*block
		bytes  int64
	}
	live := make(map[string]*fileLive)
	for _, start := range v.shardStarts {
		sh := v.shards[start]
		for _, key := range sortedSeriesKeys(sh) {
			sr := sh.series[key]
			for _, fk := range sortedFieldKeys(sr) {
				for _, blk := range sr.fields[fk].blocks {
					if blk.cold == nil {
						continue
					}
					fl := live[blk.cold.file]
					if fl == nil {
						fl = &fileLive{shard: start}
						live[blk.cold.file] = fl
					}
					fl.blocks = append(fl.blocks, blk)
					fl.bytes += coldFrameHeader + int64(blk.cold.length)
				}
			}
		}
	}
	twins := make(map[*block]*block)
	names := make([]string, 0, len(live))
	for name := range live {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fl := live[name]
		f, err := ct.handle(name)
		if err != nil {
			return nil, err
		}
		st, err := f.Stat()
		if err != nil {
			return nil, fmt.Errorf("tsdb: cold tier: %w", err)
		}
		payloadRegion := st.Size() - coldHeaderSize
		if payloadRegion-fl.bytes <= fl.bytes {
			continue // less than half garbage: not worth rewriting
		}
		ct.mu.Lock()
		isAppender := ct.appenders[fl.shard] != nil && ct.appenders[fl.shard].name == name
		if isAppender {
			// Detach so the rewrite lands in a fresh generation instead
			// of appending a file to itself.
			delete(ct.appenders, fl.shard)
		}
		ct.mu.Unlock()
		for _, blk := range fl.blocks {
			payload, err := blk.cold.read()
			if err != nil {
				return nil, err
			}
			ref, err := ct.appendPayload(fl.shard, payload, true)
			if err != nil {
				return nil, err
			}
			twin := &block{minT: blk.minT, maxT: blk.maxT, count: blk.count, rawBytes: blk.rawBytes, cold: ref}
			twins[blk] = twin
		}
		ct.compactions.Add(1)
	}
	if len(twins) == 0 {
		return nil, nil
	}
	if err := ct.syncAppenders(); err != nil {
		return nil, err
	}
	return twins, nil
}

func sortedSeriesKeys(sh *shard) []string {
	keys := make([]string, 0, len(sh.series))
	for k := range sh.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func sortedFieldKeys(sr *series) []string {
	keys := make([]string, 0, len(sr.fields))
	for k := range sr.fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// diskUsage reports segment file count and total bytes on disk.
func (ct *coldTier) diskUsage() (files int, bytes int64) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	entries, err := os.ReadDir(ct.dir)
	if err != nil {
		return 0, 0 // directory not created yet (no spill has run)
	}
	for _, e := range entries {
		if _, _, ok := parseColdName(e.Name()); !ok {
			continue
		}
		files++
		if info, err := e.Info(); err == nil {
			bytes += info.Size()
		}
	}
	return files, bytes
}

// spillCandidate pairs a resident sealed block with its shard for the
// spill pass.
type spillCandidate struct {
	shardStart int64
	blk        *block
}

// collectSpillCandidates walks v for resident sealed blocks to spill:
// every block entirely older than olderThan, plus — when maxResident
// is set — the oldest remaining resident blocks until the resident
// compressed-byte budget holds. The budget covers sealed compressed
// bytes only; decoded payloads are bounded separately by the decode
// cache, and mutable tails by block size times live series.
func collectSpillCandidates(v *dbView, olderThan int64, maxResident int64) []spillCandidate {
	var cands []spillCandidate
	var rest []spillCandidate
	var restBytes int64
	for _, start := range v.shardStarts {
		sh := v.shards[start]
		for _, key := range sortedSeriesKeys(sh) {
			sr := sh.series[key]
			for _, fk := range sortedFieldKeys(sr) {
				for _, blk := range sr.fields[fk].blocks {
					if blk.data == nil {
						continue
					}
					if blk.maxT < olderThan {
						cands = append(cands, spillCandidate{start, blk})
					} else {
						rest = append(rest, spillCandidate{start, blk})
						restBytes += int64(len(blk.data))
					}
				}
			}
		}
	}
	if maxResident > 0 && restBytes > maxResident {
		sort.SliceStable(rest, func(i, j int) bool {
			if rest[i].blk.maxT != rest[j].blk.maxT {
				return rest[i].blk.maxT < rest[j].blk.maxT
			}
			return rest[i].blk.minT < rest[j].blk.minT
		})
		for _, c := range rest {
			if restBytes <= maxResident {
				break
			}
			cands = append(cands, c)
			restBytes -= int64(len(c.blk.data))
		}
	}
	return cands
}

// SpillCold moves sealed blocks to the cold tier: every resident
// sealed block whose data is entirely older than olderThan (unix
// seconds), plus — when Options.ColdMaxResidentBytes is set — the
// oldest resident blocks beyond the cutoff until resident compressed
// sealed bytes fit the budget. Payloads are appended to per-shard
// segment files and fsynced before the view referencing them
// publishes, so a crash mid-spill recovers to the fully-resident
// state (the orphaned frames are swept later). Returns the number of
// blocks spilled.
//
// The write lock is held across the file appends: spills run once per
// collection cycle and the WAL already fsyncs under the same lock, so
// trading a brief writer stall for a race-free candidate set is the
// same bargain the rest of the engine makes.
func (db *DB) SpillCold(olderThan int64) (int, error) {
	if db.cold == nil {
		return 0, nil
	}
	wait := db.lockWrite()
	defer db.unlockWrite()
	v := db.view.Load()
	cands := collectSpillCandidates(v, olderThan, db.cold.maxResident)
	if len(cands) == 0 {
		return 0, nil
	}
	twins := make(map[*block]*block, len(cands))
	for _, c := range cands {
		ref, err := db.cold.appendPayload(c.shardStart, c.blk.data, false)
		if err != nil {
			return 0, err // nothing published; partial appends are swept as garbage
		}
		twins[c.blk] = &block{minT: c.blk.minT, maxT: c.blk.maxT, count: c.blk.count, rawBytes: c.blk.rawBytes, cold: ref}
	}
	if err := db.cold.syncAppenders(); err != nil {
		return 0, err
	}
	nv := spillBlocksView(v, twins, wait.Nanoseconds())
	db.publish(nv)
	db.cache.purgeDead(nv)
	return len(twins), nil
}

// compactCold rewrites mostly-garbage segment files and publishes the
// relocated references. Checkpoint calls it before cutting the WAL so
// the snapshot that follows records the compacted layout.
func (db *DB) compactCold() error {
	if db.cold == nil {
		return nil
	}
	wait := db.lockWrite()
	defer db.unlockWrite()
	v := db.view.Load()
	twins, err := db.cold.compact(v)
	if err != nil || len(twins) == 0 {
		return err
	}
	nv := spillBlocksView(v, twins, wait.Nanoseconds())
	db.publish(nv)
	db.cache.purgeDead(nv)
	return nil
}

// ColdStats is a point-in-time snapshot of the cold tier
// (DB.ColdStats): where sealed bytes live and how the tier is moving
// them.
type ColdStats struct {
	Enabled        bool  `json:"enabled"`
	BlocksCold     int64 `json:"blocks_cold"`     // sealed blocks whose payload lives on disk
	ColdBytes      int64 `json:"cold_bytes"`      // compressed bytes referenced on disk
	ResidentBlocks int64 `json:"resident_blocks"` // sealed blocks still holding payload in memory
	ResidentBytes  int64 `json:"resident_bytes"`  // compressed bytes of those blocks
	BudgetBytes    int64 `json:"budget_bytes"`    // resident budget; <=0 = age-based spill only
	Files          int   `json:"files"`           // segment files on disk (orphans included)
	FileBytes      int64 `json:"file_bytes"`      // segment bytes on disk (garbage included)
	Spills         int64 `json:"spills"`
	SpilledBytes   int64 `json:"spilled_bytes"`
	Reads          int64 `json:"reads"`
	ReadBytes      int64 `json:"read_bytes"`
	Compactions    int64 `json:"compactions"`
	ReclaimedBytes int64 `json:"reclaimed_bytes"`
}

// ColdStats reports the cold tier's block placement and counters. All
// zero when no cold directory is configured.
func (db *DB) ColdStats() ColdStats {
	ct := db.cold
	if ct == nil {
		return ColdStats{}
	}
	cs := ColdStats{
		Enabled:        true,
		BudgetBytes:    ct.maxResident,
		Spills:         ct.spills.Load(),
		SpilledBytes:   ct.spilledBytes.Load(),
		Reads:          ct.reads.Load(),
		ReadBytes:      ct.readBytes.Load(),
		Compactions:    ct.compactions.Load(),
		ReclaimedBytes: ct.reclaimedBytes.Load(),
	}
	v := db.acquireView()
	defer db.releaseView()
	for _, sh := range v.shards {
		for _, sr := range sh.series {
			for _, col := range sr.fields {
				for _, blk := range col.blocks {
					switch {
					case blk.cold != nil:
						cs.BlocksCold++
						cs.ColdBytes += int64(blk.cold.length)
					case blk.data != nil:
						cs.ResidentBlocks++
						cs.ResidentBytes += int64(len(blk.data))
					}
				}
			}
		}
	}
	cs.Files, cs.FileBytes = ct.diskUsage()
	return cs
}
