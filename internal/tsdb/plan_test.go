package tsdb

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// sameResult asserts the planner rewrite and the forced raw scan agree
// bit-for-bit: same series set (tags), same bucket times, same values.
// Fixtures use integer-valued floats, where even the sum-recombining
// tiers are exact (see the reassociation note in plan.go).
func sameResult(t *testing.T, planned, raw *Result, ctx string) {
	t.Helper()
	if len(planned.Series) != len(raw.Series) {
		t.Fatalf("%s: series count %d vs %d", ctx, len(planned.Series), len(raw.Series))
	}
	for i := range raw.Series {
		ps, rs := &planned.Series[i], &raw.Series[i]
		if seriesKey("", ps.Tags) != seriesKey("", rs.Tags) {
			t.Fatalf("%s: series %d tags %v vs %v", ctx, i, ps.Tags, rs.Tags)
		}
		if len(ps.Rows) != len(rs.Rows) {
			t.Fatalf("%s: series %d rows %d vs %d", ctx, i, len(ps.Rows), len(rs.Rows))
		}
		for j := range rs.Rows {
			pr, rr := ps.Rows[j], rs.Rows[j]
			if pr.Time != rr.Time {
				t.Fatalf("%s: series %d row %d time %d vs %d", ctx, i, j, pr.Time, rr.Time)
			}
			if len(pr.Values) != len(rr.Values) || pr.Values[0] != rr.Values[0] {
				t.Fatalf("%s: series %d bucket t=%d value %+v vs %+v", ctx, i, pr.Time, pr.Values, rr.Values)
			}
		}
	}
}

// TestPlannerChainedTierEquivalence registers a raw -> 5m -> 1h chain
// and checks an hour-bucketed dashboard query is served from the 1h
// tier (the coarsest eligible), identical to the raw scan.
func TestPlannerChainedTierEquivalence(t *testing.T) {
	db := rollupFixture(t, 2, 48*60) // 48 h of minutely data per node
	rm := NewRollups(db)
	if err := rm.Add(RollupSpec{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300}); err != nil {
		t.Fatal(err)
	}
	if err := rm.Add(RollupSpec{Source: "Power_max_300s", Field: "Reading", Aggregate: "max", Interval: 3600}); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Run(48 * 3600); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(`SELECT max("Reading") FROM "Power" WHERE time >= 0 AND time < 172800 GROUP BY time(1h), "NodeId"`)
	if err != nil {
		t.Fatal(err)
	}
	planned, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := db.execNoRewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	if planned.Stats.Tier != "Power_max_300s_max_3600s" {
		t.Fatalf("served from %q, want the chained 1h tier", planned.Stats.Tier)
	}
	sameResult(t, planned, raw, "chained")
	if planned.Stats.PointsScanned*10 >= raw.Stats.PointsScanned {
		t.Fatalf("chained tier scanned %d vs raw %d — want >=10x cheaper",
			planned.Stats.PointsScanned, raw.Stats.PointsScanned)
	}
}

// TestPlannerOffOption checks the escape hatch: with PlannerOff the
// exact same query never rewrites, and still answers identically.
func TestPlannerOffOption(t *testing.T) {
	for _, off := range []bool{false, true} {
		db := Open(Options{PlannerOff: off})
		var pts []Point
		for i := 0; i < 120; i++ {
			pts = append(pts, Point{
				Measurement: "Power",
				Tags:        Tags{{"NodeId", "n0"}},
				Fields:      map[string]Value{"Reading": Float(float64(i % 13))},
				Time:        int64(i * 60),
			})
		}
		if err := db.WritePoints(pts); err != nil {
			t.Fatal(err)
		}
		rm := NewRollups(db)
		if err := rm.Add(RollupSpec{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300}); err != nil {
			t.Fatal(err)
		}
		if _, err := rm.Run(7200); err != nil {
			t.Fatal(err)
		}
		q, err := Parse(`SELECT max("Reading") FROM "Power" WHERE time >= 0 AND time < 7200 GROUP BY time(10m)`)
		if err != nil {
			t.Fatal(err)
		}
		res, err := db.Exec(q)
		if err != nil {
			t.Fatal(err)
		}
		if off && res.Stats.Tier != "" {
			t.Fatalf("PlannerOff still served tier %q", res.Stats.Tier)
		}
		if !off && res.Stats.Tier == "" {
			t.Fatal("planner never engaged on an eligible query")
		}
		raw, err := db.execNoRewrite(q)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, res, raw, fmt.Sprintf("plannerOff=%t", off))
	}
}

// TestPlannerUnalignedStartFallsBack pins the clipping hazard: a Start
// inside a tier bucket must not be rewritten (the bucket's tier row
// folds in raw samples before Start), so the planner falls back to raw.
func TestPlannerUnalignedStartFallsBack(t *testing.T) {
	db := rollupFixture(t, 1, 60)
	rm := NewRollups(db)
	if err := rm.Add(RollupSpec{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300}); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Run(3600); err != nil {
		t.Fatal(err)
	}
	q, err := Parse(`SELECT max("Reading") FROM "Power" WHERE time >= 60 AND time < 3600 GROUP BY time(5m)`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Exec(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tier != "" {
		t.Fatalf("unaligned start rewritten to tier %q", res.Stats.Tier)
	}
	raw, err := db.execNoRewrite(q)
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, res, raw, "unaligned")
}

// plannerPropertyDB builds a 2-node, 6-hour workload with random
// integer-valued readings and random gaps, and registers one 5-minute
// tier per chainable aggregate.
func plannerPropertyDB(t testing.TB, seed int64) *DB {
	rng := rand.New(rand.NewSource(seed))
	db := Open(Options{BlockSize: 64})
	var pts []Point
	for n := 0; n < 2; n++ {
		for i := 0; i < 6*60; i++ {
			if rng.Intn(10) == 0 {
				continue // gaps: empty buckets must agree too
			}
			pts = append(pts, Point{
				Measurement: "Power",
				Tags:        Tags{{"NodeId", fmt.Sprintf("n%d", n)}},
				Fields:      map[string]Value{"Reading": Float(float64(rng.Intn(1000)))},
				Time:        int64(i * 60),
			})
		}
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	rm := NewRollups(db)
	for _, agg := range []string{"max", "min", "sum", "count", "mean"} {
		if err := rm.Add(RollupSpec{Source: "Power", Field: "Reading", Aggregate: agg, Interval: 300}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := rm.Run(6 * 3600); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestPlannerEquivalenceProperty is the randomized equivalence check:
// over random aggregates, GROUP BY widths, and ranges, the planner's
// answer must be indistinguishable from the forced raw scan.
func TestPlannerEquivalenceProperty(t *testing.T) {
	db := plannerPropertyDB(t, 1)
	rng := rand.New(rand.NewSource(2))
	aggs := []string{"max", "min", "sum", "count", "mean"}
	groups := []int64{300, 600, 900, 1800}
	rewrites := 0
	for trial := 0; trial < 200; trial++ {
		agg := aggs[rng.Intn(len(aggs))]
		g := groups[rng.Intn(len(groups))]
		start := int64(rng.Intn(24)) * 300
		if rng.Intn(5) == 0 {
			start += int64(rng.Intn(300)) // unaligned: must fall back, still agree
		}
		end := start + int64(1+rng.Intn(48))*300
		q := &Query{
			Measurement: "Power",
			Fields:      []FieldExpr{{Func: agg, Field: "Reading"}},
			Start:       start,
			End:         end,
			GroupByTime: g,
		}
		if rng.Intn(2) == 0 {
			q.GroupByTags = []string{"NodeId"}
		}
		ctx := fmt.Sprintf("trial %d: %s time(%ds) [%d,%d) tags=%v", trial, agg, g, start, end, q.GroupByTags)
		planned, err := db.Exec(q)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		raw, err := db.execNoRewrite(q)
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		sameResult(t, planned, raw, ctx)
		if planned.Stats.Tier != "" {
			rewrites++
		}
	}
	if rewrites == 0 {
		t.Fatal("planner never engaged across 200 trials — property test is vacuous")
	}
	t.Logf("planner served %d/200 trials from a tier", rewrites)
}

// FuzzRollupPlanner drives the planner with fuzz-chosen aggregate,
// bucket width, and range against a fixed tiered workload, asserting
// exact agreement with the raw scan on every input.
func FuzzRollupPlanner(f *testing.F) {
	f.Add(uint8(0), uint8(1), int64(0), int64(3600))
	f.Add(uint8(4), uint8(0), int64(300), int64(7200))
	f.Add(uint8(2), uint8(3), int64(-600), int64(math.MaxInt64))
	f.Add(uint8(3), uint8(2), int64(150), int64(5000))
	db := plannerPropertyDB(f, 3)
	aggs := []string{"max", "min", "sum", "count", "mean"}
	groups := []int64{300, 600, 900, 1800}
	f.Fuzz(func(t *testing.T, aggSel, gSel uint8, start, end int64) {
		if end <= start {
			return
		}
		q := &Query{
			Measurement: "Power",
			Fields:      []FieldExpr{{Func: aggs[int(aggSel)%len(aggs)], Field: "Reading"}},
			Start:       start,
			End:         end,
			GroupByTime: groups[int(gSel)%len(groups)],
			GroupByTags: []string{"NodeId"},
		}
		planned, err := db.Exec(q)
		if err != nil {
			return // invalid range combinations are rejected identically either way
		}
		raw, err := db.execNoRewrite(q)
		if err != nil {
			t.Fatalf("raw path rejected what the planner accepted: %v", err)
		}
		sameResult(t, planned, raw, fmt.Sprintf("fuzz agg=%d g=%d [%d,%d)", aggSel, gSel, start, end))
	})
}
