package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
)

// SaveFile writes a snapshot of the database to path atomically (via a
// temp file + rename in the same directory). Cold-tier payloads are
// read back and inlined so the file is portable — restoring it needs
// no cold directory.
func (db *DB) SaveFile(path string) error {
	v := db.acquireView()
	defer db.releaseView()
	return saveViewFile(v, db.shardDuration, path, true)
}

// saveViewFile serializes one pinned view to path atomically: temp
// file in the same directory, fsync, then rename. Checkpoint uses it
// with the view it cut the WAL boundary against and inlineCold=false
// (cold blocks stay file references — their bytes are already
// durable); export paths pass true for a self-contained file.
func saveViewFile(v *dbView, shardDuration int64, path string, inlineCold bool) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".monster-snapshot-*")
	if err != nil {
		return fmt.Errorf("tsdb: save %s: %w", path, err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if err := snapshotView(v, shardDuration, tmp, inlineCold); err != nil {
		_ = tmp.Close() // the snapshot error is the one worth reporting
		return fmt.Errorf("tsdb: save %s: %w", path, err)
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // the sync error is the one worth reporting
		return fmt.Errorf("tsdb: save %s: %w", path, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("tsdb: save %s: %w", path, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("tsdb: save %s: %w", path, err)
	}
	return nil
}

// LoadFile restores a database from a snapshot file.
func LoadFile(path string) (*DB, error) { return loadFileOptions(path, Options{}) }

// loadFileOptions restores a snapshot file into a DB configured by
// opts (see RestoreOptions).
func loadFileOptions(path string, opts Options) (*DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("tsdb: load %s: %w", path, err)
	}
	defer f.Close()
	db, err := RestoreOptions(f, opts)
	if err != nil {
		return nil, fmt.Errorf("tsdb: load %s: %w", path, err)
	}
	return db, nil
}
