package tsdb

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// concurrencyBatch builds one write batch of n points, all carrying the
// batch tag so a reader can check it observed the batch atomically.
func concurrencyBatch(batchNo, n int, t0 int64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			Measurement: "m",
			Tags:        Tags{{"batch", fmt.Sprintf("b%04d", batchNo)}, {"node", fmt.Sprintf("n%02d", i%8)}},
			Fields:      map[string]Value{"Reading": Float(float64(batchNo*n + i))},
			Time:        t0 + int64(i),
		}
	}
	return pts
}

// TestSnapshotIsolation hammers the DB with concurrent writers, query
// readers, metadata readers, snapshot serialization, and measurement
// drops, asserting no reader ever observes a half-applied batch: every
// batch writes exactly pointsPerBatch points under a distinct batch
// tag, so any group count other than pointsPerBatch is a torn read.
// Run under -race this also proves the lock-free read path is sound.
func TestSnapshotIsolation(t *testing.T) {
	const (
		batches        = 60
		pointsPerBatch = 48
		readers        = 4
	)
	db := Open(Options{ShardDuration: 1 << 20}) // one shard for all batches
	q := MustParse(`SELECT count("Reading") FROM "m" GROUP BY "batch"`)

	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for b := 0; b < batches; b++ {
			if err := db.WritePoints(concurrencyBatch(b, pointsPerBatch, int64(b))); err != nil {
				t.Errorf("WritePoints: %v", err)
				return
			}
			// Interleave drops of a scratch measurement and snapshot
			// saves with the batch stream.
			if b%7 == 0 {
				if err := db.WritePoint(Point{
					Measurement: "scratch",
					Tags:        Tags{{"node", "n0"}},
					Fields:      map[string]Value{"v": Int(int64(b))},
					Time:        int64(b),
				}); err != nil {
					t.Errorf("WritePoint: %v", err)
					return
				}
				db.DropMeasurement("scratch")
			}
		}
	}()

	saveDir := t.TempDir()
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := db.SaveFile(filepath.Join(saveDir, fmt.Sprintf("snap%d.mtsd", i%3))); err != nil {
				t.Errorf("SaveFile: %v", err)
				return
			}
			i++
		}
	}()

	var reads atomic.Int64
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastEpoch int64
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := db.Exec(q)
				if err != nil {
					t.Errorf("Exec: %v", err)
					return
				}
				if res.Stats.SnapshotEpoch < lastEpoch {
					t.Errorf("snapshot epoch went backwards: %d -> %d", lastEpoch, res.Stats.SnapshotEpoch)
					return
				}
				lastEpoch = res.Stats.SnapshotEpoch
				for _, s := range res.Series {
					for _, row := range s.Rows {
						if n := row.Values[0].I; n != pointsPerBatch {
							t.Errorf("torn batch: group %v has %d points, want %d", s.Tags, n, pointsPerBatch)
							return
						}
					}
				}
				reads.Add(1)
				db.Measurements()
				db.Disk()
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if reads.Load() == 0 {
		t.Fatal("readers never completed a query")
	}

	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("final Exec: %v", err)
	}
	if got := len(res.Series); got != batches {
		t.Fatalf("final series count = %d, want %d", got, batches)
	}
}

// TestConcurrentWritersAndRetention exercises WritePoints racing with
// DeleteBefore across many shards.
func TestConcurrentWritersAndRetention(t *testing.T) {
	db := Open(Options{ShardDuration: 10})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				pts := []Point{{
					Measurement: "m",
					Tags:        Tags{{"w", fmt.Sprintf("w%d", w)}},
					Fields:      map[string]Value{"v": Int(int64(i))},
					Time:        int64(i * 10),
				}}
				if err := db.WritePoints(pts); err != nil {
					t.Errorf("WritePoints: %v", err)
					return
				}
				if i%10 == 9 {
					db.DeleteBefore(int64(i * 5))
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestParallelExecMatchesSerial checks the worker pool produces results
// identical to serial execution, including under forced wide pools.
func TestParallelExecMatchesSerial(t *testing.T) {
	mk := func(workers int) *DB {
		db := Open(Options{ShardDuration: 3600, ExecWorkers: workers})
		rng := rand.New(rand.NewSource(7))
		var pts []Point
		for n := 0; n < 40; n++ {
			for i := 0; i < 30; i++ {
				pts = append(pts, Point{
					Measurement: "Power",
					Tags:        Tags{{"NodeId", fmt.Sprintf("node%02d", n)}, {"Label", "System"}},
					Fields:      map[string]Value{"Reading": Float(100 + float64(rng.Intn(200)))},
					Time:        int64(i*60 + rng.Intn(5)),
				})
			}
		}
		if err := db.WritePoints(pts); err != nil {
			t.Fatalf("WritePoints: %v", err)
		}
		return db
	}
	serial := mk(1)
	parallel := mk(16)
	for _, stmt := range []string{
		`SELECT max("Reading") FROM "Power" GROUP BY time(5m), "NodeId", "Label"`,
		`SELECT mean("Reading") FROM "Power" GROUP BY "NodeId"`,
		`SELECT "Reading" FROM "Power" WHERE "NodeId" = 'node03'`,
		`SELECT count("Reading") FROM "Power" GROUP BY time(1m), "NodeId" LIMIT 5`,
	} {
		q := MustParse(stmt)
		rs, err := serial.Exec(q)
		if err != nil {
			t.Fatalf("serial %q: %v", stmt, err)
		}
		rp, err := parallel.Exec(q)
		if err != nil {
			t.Fatalf("parallel %q: %v", stmt, err)
		}
		if !reflect.DeepEqual(rs.Series, rp.Series) {
			t.Errorf("%q: parallel result differs from serial", stmt)
		}
		if rs.Stats.Rows != rp.Stats.Rows ||
			rs.Stats.PointsScanned != rp.Stats.PointsScanned ||
			rs.Stats.Groups != rp.Stats.Groups {
			t.Errorf("%q: stats differ: serial %+v parallel %+v", stmt, rs.Stats, rp.Stats)
		}
		if rs.Stats.ParallelWorkers != 1 {
			t.Errorf("%q: serial ParallelWorkers = %d, want 1", stmt, rs.Stats.ParallelWorkers)
		}
	}
}

// TestGlobalLockModeEquivalent checks the baseline mode answers queries
// identically to the snapshot mode (it exists purely for A/B latency
// comparison).
func TestGlobalLockModeEquivalent(t *testing.T) {
	for _, opts := range []Options{{ShardDuration: 3600}, {ShardDuration: 3600, GlobalLock: true}} {
		db := Open(opts)
		if err := db.WritePoints(concurrencyBatch(0, 32, 0)); err != nil {
			t.Fatalf("WritePoints: %v", err)
		}
		res, err := db.Query(`SELECT count("Reading") FROM "m"`)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if len(res.Series) != 1 || res.Series[0].Rows[0].Values[0].I != 32 {
			t.Fatalf("GlobalLock=%v: unexpected result %+v", opts.GlobalLock, res.Series)
		}
	}
}

// TestShardStartsSortedInsertion writes shards in shuffled time order
// and checks the shard list stays time-sorted (the sorted-position
// insert in batch.insertShardStart).
func TestShardStartsSortedInsertion(t *testing.T) {
	db := Open(Options{ShardDuration: 100})
	order := rand.New(rand.NewSource(3)).Perm(20)
	for _, i := range order {
		if err := db.WritePoint(Point{
			Measurement: "m",
			Tags:        Tags{{"n", "a"}},
			Fields:      map[string]Value{"v": Int(int64(i))},
			Time:        int64(i * 100),
		}); err != nil {
			t.Fatalf("WritePoint: %v", err)
		}
	}
	stats := db.ShardStats()
	if len(stats) != 20 {
		t.Fatalf("shard count = %d, want 20", len(stats))
	}
	for i := 1; i < len(stats); i++ {
		if stats[i].Start <= stats[i-1].Start {
			t.Fatalf("shard starts not sorted: %d then %d", stats[i-1].Start, stats[i].Start)
		}
	}
}

// TestRegexCacheBounded checks the parser's LRU stays within its limit
// and keeps recently used patterns hot.
func TestRegexCacheBounded(t *testing.T) {
	for i := 0; i < reCacheLimit+100; i++ {
		if _, err := compileCachedRegex(fmt.Sprintf("^node%04d$", i)); err != nil {
			t.Fatalf("compileCachedRegex: %v", err)
		}
	}
	if n := reCache.len(); n > reCacheLimit {
		t.Fatalf("regex cache size %d exceeds limit %d", n, reCacheLimit)
	}
	// The most recent pattern must still be cached.
	last := fmt.Sprintf("^node%04d$", reCacheLimit+99)
	if _, ok := reCache.get(last); !ok {
		t.Fatalf("most recently inserted pattern evicted")
	}
}
