package tsdb

import (
	"math"
	"sort"
)

// aggregator consumes field values in time order and produces one
// summary value. ok=false from result means the bucket had no usable
// input (e.g. only non-numeric values for a numeric aggregate).
type aggregator interface {
	add(v Value)
	result() (Value, bool)
	reset()
}

// newAggregator returns an aggregator implementation by name.
func newAggregator(name string) (aggregator, bool) {
	switch name {
	case "count":
		return &countAgg{}, true
	case "sum":
		return &sumAgg{}, true
	case "mean":
		return &meanAgg{}, true
	case "max":
		return &extremeAgg{max: true}, true
	case "min":
		return &extremeAgg{}, true
	case "first":
		return &firstAgg{}, true
	case "last":
		return &lastAgg{}, true
	case "spread":
		return &spreadAgg{}, true
	case "stddev":
		return &stddevAgg{}, true
	case "median":
		return &medianAgg{}, true
	default:
		return nil, false
	}
}

type countAgg struct{ n int64 }

func (a *countAgg) add(Value)             { a.n++ }
func (a *countAgg) result() (Value, bool) { return Int(a.n), a.n > 0 }
func (a *countAgg) reset()                { a.n = 0 }

type sumAgg struct {
	sum float64
	ok  bool
}

func (a *sumAgg) add(v Value) {
	if f, ok := v.AsFloat(); ok {
		a.sum += f
		a.ok = true
	}
}
func (a *sumAgg) result() (Value, bool) { return Float(a.sum), a.ok }
func (a *sumAgg) reset()                { a.sum, a.ok = 0, false }

type meanAgg struct {
	sum float64
	n   int64
}

func (a *meanAgg) add(v Value) {
	if f, ok := v.AsFloat(); ok {
		a.sum += f
		a.n++
	}
}
func (a *meanAgg) result() (Value, bool) {
	if a.n == 0 {
		return Value{}, false
	}
	return Float(a.sum / float64(a.n)), true
}
func (a *meanAgg) reset() { a.sum, a.n = 0, 0 }

type extremeAgg struct {
	max  bool
	best float64
	ok   bool
}

func (a *extremeAgg) add(v Value) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	if !a.ok || (a.max && f > a.best) || (!a.max && f < a.best) {
		a.best = f
		a.ok = true
	}
}
func (a *extremeAgg) result() (Value, bool) { return Float(a.best), a.ok }
func (a *extremeAgg) reset()                { a.best, a.ok = 0, false }

type firstAgg struct {
	v  Value
	ok bool
}

func (a *firstAgg) add(v Value) {
	if !a.ok {
		a.v, a.ok = v, true
	}
}
func (a *firstAgg) result() (Value, bool) { return a.v, a.ok }
func (a *firstAgg) reset()                { a.v, a.ok = Value{}, false }

type lastAgg struct {
	v  Value
	ok bool
}

func (a *lastAgg) add(v Value)           { a.v, a.ok = v, true }
func (a *lastAgg) result() (Value, bool) { return a.v, a.ok }
func (a *lastAgg) reset()                { a.v, a.ok = Value{}, false }

type spreadAgg struct {
	min, max float64
	ok       bool
}

func (a *spreadAgg) add(v Value) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	if !a.ok {
		a.min, a.max, a.ok = f, f, true
		return
	}
	if f < a.min {
		a.min = f
	}
	if f > a.max {
		a.max = f
	}
}
func (a *spreadAgg) result() (Value, bool) { return Float(a.max - a.min), a.ok }
func (a *spreadAgg) reset()                { a.ok = false }

// stddevAgg computes the sample standard deviation with Welford's
// online algorithm.
type stddevAgg struct {
	n    int64
	mean float64
	m2   float64
}

func (a *stddevAgg) add(v Value) {
	f, ok := v.AsFloat()
	if !ok {
		return
	}
	a.n++
	d := f - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (f - a.mean)
}
func (a *stddevAgg) result() (Value, bool) {
	if a.n < 2 {
		return Value{}, false
	}
	return Float(math.Sqrt(a.m2 / float64(a.n-1))), true
}
func (a *stddevAgg) reset() { a.n, a.mean, a.m2 = 0, 0, 0 }

type medianAgg struct{ vals []float64 }

func (a *medianAgg) add(v Value) {
	if f, ok := v.AsFloat(); ok {
		a.vals = append(a.vals, f)
	}
}
func (a *medianAgg) result() (Value, bool) {
	n := len(a.vals)
	if n == 0 {
		return Value{}, false
	}
	sorted := make([]float64, n)
	copy(sorted, a.vals)
	sort.Float64s(sorted)
	if n%2 == 1 {
		return Float(sorted[n/2]), true
	}
	return Float((sorted[n/2-1] + sorted[n/2]) / 2), true
}
func (a *medianAgg) reset() { a.vals = a.vals[:0] }
