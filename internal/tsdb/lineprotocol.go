package tsdb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// InfluxDB line protocol support. The paper's collector writes to
// InfluxDB over its HTTP /write endpoint, whose body is line protocol:
//
//	Power,NodeId=10.101.1.1,Label=NodePower Reading=273.8 1583792296
//
// This file implements both directions so external tools can ingest
// into the engine (and the engine's contents can be exported to a real
// InfluxDB). Timestamps are in seconds (the engine's resolution).

// AppendLineProtocol renders one point in line protocol, appending to
// dst. Tags are emitted in canonical (sorted) order; fields sorted by
// key.
func AppendLineProtocol(dst []byte, p *Point) []byte {
	dst = appendEscaped(dst, p.Measurement, `, `)
	for _, t := range p.Tags.Sorted() {
		dst = append(dst, ',')
		dst = appendEscaped(dst, t.Key, `,= `)
		dst = append(dst, '=')
		dst = appendEscaped(dst, t.Value, `,= `)
	}
	dst = append(dst, ' ')
	keys := make([]string, 0, len(p.Fields))
	for k := range p.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for i, k := range keys {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendEscaped(dst, k, `,= `)
		dst = append(dst, '=')
		dst = appendFieldValue(dst, p.Fields[k])
	}
	dst = append(dst, ' ')
	dst = strconv.AppendInt(dst, p.Time, 10)
	return dst
}

// FormatLineProtocol renders a batch, one point per line.
func FormatLineProtocol(points []Point) []byte {
	var dst []byte
	for i := range points {
		dst = AppendLineProtocol(dst, &points[i])
		dst = append(dst, '\n')
	}
	return dst
}

func appendEscaped(dst []byte, s, escapeSet string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == '\\' || strings.IndexByte(escapeSet, c) >= 0 {
			dst = append(dst, '\\')
		}
		dst = append(dst, c)
	}
	return dst
}

func appendFieldValue(dst []byte, v Value) []byte {
	switch v.Kind {
	case KindFloat:
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	case KindInt:
		dst = strconv.AppendInt(dst, v.I, 10)
		return append(dst, 'i')
	case KindBool:
		return strconv.AppendBool(dst, v.B)
	case KindString:
		dst = append(dst, '"')
		for i := 0; i < len(v.S); i++ {
			c := v.S[i]
			if c == '"' || c == '\\' {
				dst = append(dst, '\\')
			}
			dst = append(dst, c)
		}
		return append(dst, '"')
	default:
		return strconv.AppendFloat(dst, v.F, 'g', -1, 64)
	}
}

// ParseLineProtocol parses a batch of line-protocol lines. Empty lines
// and '#' comments are skipped. defaultTime stamps lines without a
// timestamp.
func ParseLineProtocol(data []byte, defaultTime int64) ([]Point, error) {
	var out []Point
	lineNo := 0
	for len(data) > 0 {
		lineNo++
		var line []byte
		if idx := indexByteB(data, '\n'); idx >= 0 {
			line = data[:idx]
			data = data[idx+1:]
		} else {
			line = data
			data = nil
		}
		trimmed := strings.TrimSpace(string(line))
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		p, err := parseLine(trimmed, defaultTime)
		if err != nil {
			return nil, fmt.Errorf("tsdb: line %d: %w", lineNo, err)
		}
		out = append(out, p)
	}
	return out, nil
}

func indexByteB(b []byte, c byte) int {
	for i := range b {
		if b[i] == c {
			return i
		}
	}
	return -1
}

// splitUnescaped splits s at the first unescaped occurrence of sep.
func splitUnescaped(s string, sep byte) (string, string, bool) {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			// Skip quoted string contents.
			for i++; i < len(s); i++ {
				if s[i] == '\\' {
					i++
				} else if s[i] == '"' {
					break
				}
			}
		case sep:
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

func unescape(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func parseLine(line string, defaultTime int64) (Point, error) {
	var p Point
	// measurement[,tags] <fields> [timestamp]
	head, rest, ok := splitUnescaped(line, ' ')
	if !ok {
		return p, fmt.Errorf("missing fields section")
	}
	// Measurement and tags.
	meas, tagsPart, hasTags := splitUnescaped(head, ',')
	p.Measurement = unescape(meas)
	if p.Measurement == "" {
		return p, fmt.Errorf("empty measurement")
	}
	for hasTags {
		var pair string
		pair, tagsPart, hasTags = splitUnescaped(tagsPart, ',')
		k, v, ok := splitUnescaped(pair, '=')
		if !ok {
			return p, fmt.Errorf("bad tag %q", pair)
		}
		p.Tags = append(p.Tags, Tag{Key: unescape(k), Value: unescape(v)})
	}
	// Fields and optional timestamp.
	fieldsPart, tsPart, hasTS := splitUnescaped(rest, ' ')
	p.Fields = make(map[string]Value)
	for fieldsPart != "" {
		var pair string
		var more bool
		pair, fieldsPart, more = splitUnescaped(fieldsPart, ',')
		k, v, ok := splitUnescaped(pair, '=')
		if !ok {
			return p, fmt.Errorf("bad field %q", pair)
		}
		val, err := parseFieldValue(v)
		if err != nil {
			return p, fmt.Errorf("field %q: %w", k, err)
		}
		p.Fields[unescape(k)] = val
		if !more {
			break
		}
	}
	if len(p.Fields) == 0 {
		return p, fmt.Errorf("no fields")
	}
	p.Time = defaultTime
	if hasTS {
		tsPart = strings.TrimSpace(tsPart)
		if tsPart != "" {
			ts, err := strconv.ParseInt(tsPart, 10, 64)
			if err != nil {
				return p, fmt.Errorf("bad timestamp %q", tsPart)
			}
			p.Time = ts
		}
	}
	return p, p.Validate()
}

func parseFieldValue(s string) (Value, error) {
	if s == "" {
		return Value{}, fmt.Errorf("empty value")
	}
	if s[0] == '"' {
		if len(s) < 2 || s[len(s)-1] != '"' {
			return Value{}, fmt.Errorf("unterminated string %q", s)
		}
		body := s[1 : len(s)-1]
		var b strings.Builder
		for i := 0; i < len(body); i++ {
			if body[i] == '\\' && i+1 < len(body) {
				i++
			}
			b.WriteByte(body[i])
		}
		return Str(b.String()), nil
	}
	switch s {
	case "t", "T", "true", "True", "TRUE":
		return Bool(true), nil
	case "f", "F", "false", "False", "FALSE":
		return Bool(false), nil
	}
	if strings.HasSuffix(s, "i") {
		iv, err := strconv.ParseInt(s[:len(s)-1], 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("bad integer %q", s)
		}
		return Int(iv), nil
	}
	fv, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return Value{}, fmt.Errorf("bad number %q", s)
	}
	return Float(fv), nil
}

// WriteLineProtocol parses and stores a line-protocol batch.
func (db *DB) WriteLineProtocol(data []byte, defaultTime int64) (int, error) {
	pts, err := ParseLineProtocol(data, defaultTime)
	if err != nil {
		return 0, err
	}
	if len(pts) == 0 {
		return 0, nil
	}
	return len(pts), db.WritePoints(pts)
}
