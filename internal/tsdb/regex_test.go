package tsdb

import (
	"fmt"
	"strings"
	"testing"
)

// regexDB seeds a DB with one Power series per node plus a second
// measurement, for predicate-matching tests.
func regexDB(t testing.TB, nodes int) *DB {
	t.Helper()
	db := Open(Options{})
	var pts []Point
	for n := 1; n <= nodes; n++ {
		for i := 0; i < 5; i++ {
			pts = append(pts, Point{
				Measurement: "Power",
				Tags:        Tags{{Key: "NodeId", Value: fmt.Sprintf("10.101.1.%d", n)}, {Key: "Label", Value: "NodePower"}},
				Fields:      map[string]Value{"Reading": Float(float64(100*n + i))},
				Time:        int64(60 * i),
			})
		}
		pts = append(pts, Point{
			Measurement: "Thermal",
			Tags:        Tags{{Key: "NodeId", Value: fmt.Sprintf("10.101.1.%d", n)}, {Key: "Label", Value: "CPU1Temp"}},
			Fields:      map[string]Value{"Reading": Float(50)},
			Time:        0,
		})
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestParseRegexPredicate(t *testing.T) {
	q, err := Parse(`SELECT max("Reading") FROM "Power" WHERE "NodeId" =~ /^(10\.101\.1\.1|10\.101\.1\.2)$/ AND time >= 0 GROUP BY "NodeId"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.TagRegexps) != 1 || q.TagRegexps[0].Key != "NodeId" {
		t.Fatalf("regexps = %+v", q.TagRegexps)
	}
	if !q.TagRegexps[0].Re.MatchString("10.101.1.2") || q.TagRegexps[0].Re.MatchString("10.101.1.20") {
		t.Fatalf("compiled regex wrong: %v", q.TagRegexps[0].Re)
	}
	// Canonical rendering survives a re-parse.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", q.String(), err)
	}
	if q2.TagRegexps[0].Re.String() != q.TagRegexps[0].Re.String() {
		t.Fatalf("round trip changed regex: %q vs %q", q2.TagRegexps[0].Re, q.TagRegexps[0].Re)
	}
}

func TestParseRegexEscapedSlash(t *testing.T) {
	q, err := Parse(`SELECT "Reading" FROM "m" WHERE "Path" =~ /^\/scratch$/`)
	if err != nil {
		t.Fatal(err)
	}
	if !q.TagRegexps[0].Re.MatchString("/scratch") {
		t.Fatalf("escaped slash not honoured: %v", q.TagRegexps[0].Re)
	}
}

func TestParseRegexErrors(t *testing.T) {
	for _, stmt := range []string{
		`SELECT "Reading" FROM "m" WHERE "NodeId" =~ /(unclosed/`,
		`SELECT "Reading" FROM "m" WHERE "NodeId" =~ 'not-a-regex'`,
		`SELECT "Reading" FROM "m" WHERE "NodeId" =~ /never-terminated`,
	} {
		if _, err := Parse(stmt); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", stmt)
		}
	}
}

func TestRegexPredicateMatchesSubset(t *testing.T) {
	db := regexDB(t, 8)
	res, err := db.Query(`SELECT max("Reading") FROM "Power" WHERE "NodeId" =~ /^10\.101\.1\.[12]$/ AND time >= 0 AND time < 600 GROUP BY "NodeId"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d, want 2", len(res.Series))
	}
	for _, s := range res.Series {
		node, _ := s.Tags.Get("NodeId")
		if node != "10.101.1.1" && node != "10.101.1.2" {
			t.Fatalf("unexpected node %q", node)
		}
	}
	// Equality and regex must agree on the same subset.
	eq, err := db.Query(`SELECT max("Reading") FROM "Power" WHERE "NodeId" = '10.101.1.1'`)
	if err != nil {
		t.Fatal(err)
	}
	re, err := db.Query(`SELECT max("Reading") FROM "Power" WHERE "NodeId" =~ /^10\.101\.1\.1$/`)
	if err != nil {
		t.Fatal(err)
	}
	if eq.Series[0].Rows[0].Values[0] != re.Series[0].Rows[0].Values[0] {
		t.Fatalf("equality and regex disagree: %v vs %v", eq.Series[0].Rows[0], re.Series[0].Rows[0])
	}
}

func TestRegexPredicateCombinesWithEquality(t *testing.T) {
	db := regexDB(t, 4)
	res, err := db.Query(`SELECT count("Reading") FROM "Power" WHERE "Label" = 'NodePower' AND "NodeId" =~ /^10\.101\.1\.(2|3)$/`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Series[0].Rows[0].Values[0].I; got != 10 {
		t.Fatalf("count = %d, want 10 (2 nodes x 5 points)", got)
	}
}

func TestRegexPredicateNoMatch(t *testing.T) {
	db := regexDB(t, 4)
	res, err := db.Query(`SELECT "Reading" FROM "Power" WHERE "NodeId" =~ /^nope$/`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 0 {
		t.Fatalf("series = %d, want 0", len(res.Series))
	}
}

func TestRegexPredicateUnknownTagKey(t *testing.T) {
	db := regexDB(t, 2)
	res, err := db.Query(`SELECT "Reading" FROM "Power" WHERE "Rack" =~ /.*/`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 0 {
		t.Fatalf("series on unknown tag key = %d, want 0", len(res.Series))
	}
}

func TestEpochAdvancesOnMutation(t *testing.T) {
	db := regexDB(t, 2)
	e0 := db.Epoch()
	if e0 == 0 {
		t.Fatal("epoch still zero after seeding writes")
	}
	// Queries do not advance the epoch.
	if _, err := db.Query(`SELECT "Reading" FROM "Power"`); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != e0 {
		t.Fatal("query advanced epoch")
	}
	// Empty batch does not advance it either.
	if err := db.WritePoints(nil); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != e0 {
		t.Fatal("empty batch advanced epoch")
	}
	if err := db.WritePoint(Point{Measurement: "m", Fields: map[string]Value{"f": Float(1)}, Time: 1}); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != e0+1 {
		t.Fatalf("epoch after write = %d, want %d", db.Epoch(), e0+1)
	}
	if ok, err := db.DropMeasurement("m"); !ok || err != nil {
		t.Fatal("drop failed")
	}
	if db.Epoch() != e0+2 {
		t.Fatalf("epoch after drop = %d, want %d", db.Epoch(), e0+2)
	}
	// DeleteBefore that drops nothing keeps the epoch stable.
	before := db.Epoch()
	if n, _ := db.DeleteBefore(-1 << 40); n != 0 {
		t.Fatalf("deleted %d shards", n)
	}
	if db.Epoch() != before {
		t.Fatal("no-op retention advanced epoch")
	}
	if n, _ := db.DeleteBefore(1 << 40); n == 0 {
		t.Fatal("retention dropped nothing")
	}
	if db.Epoch() != before+1 {
		t.Fatalf("epoch after retention = %d, want %d", db.Epoch(), before+1)
	}
}

func TestRegexQueryStringRendering(t *testing.T) {
	q := MustParse(`SELECT mean("Reading") FROM "Power" WHERE "NodeId" =~ /^(a|b)$/ GROUP BY time(5m), "NodeId"`)
	s := q.String()
	if !strings.Contains(s, `"NodeId" =~ /^(a|b)$/`) {
		t.Fatalf("rendering lost regex: %s", s)
	}
}
