package tsdb

import (
	"fmt"
	"math"
	"sync"
)

// Rollups are the engine's continuous queries: InfluxDB's "variety of
// features that can be used to calculate aggregation, roll-ups,
// downsampling" the paper leans on (Section III-C). A RollupSpec
// materializes a downsampled copy of one field into a target
// measurement; consumers with coarse intervals then scan orders of
// magnitude fewer points (see BenchmarkAblationRollup).
type RollupSpec struct {
	// Source measurement and field to downsample.
	Source string
	Field  string
	// Aggregate function ("max", "mean", ...).
	Aggregate string
	// Interval is the bucket width in seconds.
	Interval int64
	// Target measurement; empty derives "<Source>_<agg>_<interval>s".
	Target string
}

// Validate checks the spec.
func (s *RollupSpec) Validate() error {
	if s.Source == "" || s.Field == "" {
		return fmt.Errorf("tsdb: rollup needs source and field")
	}
	if s.Interval <= 0 {
		return fmt.Errorf("tsdb: rollup interval must be positive")
	}
	if s.Aggregate == "" {
		return fmt.Errorf("tsdb: rollup needs an aggregate")
	}
	if _, ok := newAggregator(s.Aggregate); !ok {
		return fmt.Errorf("tsdb: unknown rollup aggregate %q", s.Aggregate)
	}
	return nil
}

// TargetName resolves the target measurement.
func (s *RollupSpec) TargetName() string {
	if s.Target != "" {
		return s.Target
	}
	return fmt.Sprintf("%s_%s_%ds", s.Source, s.Aggregate, s.Interval)
}

// Rollups manages a set of continuous downsampling queries over one
// DB. Each Run processes complete buckets between the per-spec
// watermark and the given data time.
type Rollups struct {
	db *DB

	mu        sync.Mutex
	specs     []RollupSpec
	watermark map[string]int64 // target -> first unprocessed bucket start
}

// NewRollups creates a manager for db.
func NewRollups(db *DB) *Rollups {
	return &Rollups{db: db, watermark: make(map[string]int64)}
}

// Add registers a spec; processing starts at the first Run.
func (r *Rollups) Add(spec RollupSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	name := spec.TargetName()
	for _, s := range r.specs {
		if s.TargetName() == name {
			return fmt.Errorf("tsdb: rollup target %q already registered", name)
		}
	}
	r.specs = append(r.specs, spec)
	r.watermark[name] = math.MinInt64
	return nil
}

// Specs lists registered specs.
func (r *Rollups) Specs() []RollupSpec {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RollupSpec, len(r.specs))
	copy(out, r.specs)
	return out
}

// Run materializes every complete bucket with end <= now (data time,
// unix seconds) for all specs. It reports the number of rollup points
// written.
func (r *Rollups) Run(now int64) (int, error) {
	r.mu.Lock()
	specs := make([]RollupSpec, len(r.specs))
	copy(specs, r.specs)
	r.mu.Unlock()

	total := 0
	for _, spec := range specs {
		n, err := r.runOne(spec, now)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func (r *Rollups) runOne(spec RollupSpec, now int64) (int, error) {
	target := spec.TargetName()
	horizon := now - mod(now, spec.Interval) // first incomplete bucket

	r.mu.Lock()
	start := r.watermark[target]
	r.mu.Unlock()
	if start == math.MinInt64 {
		// First run: begin at the oldest stored data.
		first, ok := r.db.earliestTime(spec.Source)
		if !ok {
			return 0, nil // nothing to do yet
		}
		start = first - mod(first, spec.Interval)
	}
	if start >= horizon {
		return 0, nil
	}

	q := &Query{
		Fields:      []FieldExpr{{Func: spec.Aggregate, Field: spec.Field}},
		Measurement: spec.Source,
		Start:       start,
		End:         horizon,
		GroupByTime: spec.Interval,
		GroupByTags: []string{"*"},
	}
	res, err := r.db.Exec(q)
	if err != nil {
		return 0, err
	}
	var pts []Point
	for _, s := range res.Series {
		for _, row := range s.Rows {
			if !row.Present[0] {
				continue
			}
			pts = append(pts, Point{
				Measurement: target,
				Tags:        s.Tags,
				Fields:      map[string]Value{spec.Field: row.Values[0]},
				Time:        row.Time,
			})
		}
	}
	if len(pts) > 0 {
		if err := r.db.WritePoints(pts); err != nil {
			return 0, err
		}
	}
	r.mu.Lock()
	r.watermark[target] = horizon
	r.mu.Unlock()
	return len(pts), nil
}

// earliestTime reports the earliest stored timestamp of a measurement.
func (db *DB) earliestTime(measurement string) (int64, bool) {
	v := db.acquireView()
	defer db.releaseView()
	mi, ok := v.index[measurement]
	if !ok {
		return 0, false
	}
	best := int64(math.MaxInt64)
	found := false
	for _, s := range v.shardStarts {
		sh := v.shards[s]
		for key := range mi.series {
			sr, ok := sh.series[key]
			if !ok {
				continue
			}
			for _, col := range sr.fields {
				if t, ok := col.firstTime(); ok && t < best {
					best = t
					found = true
				}
			}
		}
		if found {
			// Shards are time-ordered; the first shard containing the
			// measurement holds its earliest point.
			break
		}
	}
	return best, found
}
