package tsdb

import (
	"fmt"
	"math"
	"sync"
)

// Rollups are the engine's continuous queries: InfluxDB's "variety of
// features that can be used to calculate aggregation, roll-ups,
// downsampling" the paper leans on (Section III-C). A RollupSpec
// materializes a downsampled copy of one field into a target
// measurement; the tier-aware planner (exec.go) then answers coarse
// dashboard queries from the rollup tier transparently, and the write
// path keeps every tier fresh incrementally — O(touched buckets) per
// batch instead of a poll-loop rescan.
type RollupSpec struct {
	// Source measurement and field to downsample. Source may itself be
	// a registered rollup target, chaining tiers (raw -> 5m -> 1h);
	// a chained spec must keep the parent's field and aggregate, and
	// its interval must be a coarser multiple of the parent's.
	Source string
	Field  string
	// Aggregate function ("max", "mean", ...).
	Aggregate string
	// Interval is the bucket width in seconds.
	Interval int64
	// Target measurement; empty derives "<Source>_<agg>_<interval>s".
	Target string
}

// Validate checks the spec.
func (s *RollupSpec) Validate() error {
	if s.Source == "" || s.Field == "" {
		return fmt.Errorf("tsdb: rollup needs source and field")
	}
	if s.Interval <= 0 {
		return fmt.Errorf("tsdb: rollup interval must be positive")
	}
	if s.Aggregate == "" {
		return fmt.Errorf("tsdb: rollup needs an aggregate")
	}
	if _, ok := newAggregator(s.Aggregate); !ok {
		return fmt.Errorf("tsdb: unknown rollup aggregate %q", s.Aggregate)
	}
	return nil
}

// TargetName resolves the target measurement.
func (s *RollupSpec) TargetName() string {
	if s.Target != "" {
		return s.Target
	}
	return fmt.Sprintf("%s_%s_%ds", s.Source, s.Aggregate, s.Interval)
}

const minInt64 = math.MinInt64

// alignDown floors t to a multiple of interval (bucket start).
func alignDown(t, interval int64) int64 { return t - mod(t, interval) }

// compiledRollup is a registered spec resolved against the registry:
// chain provenance (root measurement/field for planner matching) plus
// the flags maintenance needs.
type compiledRollup struct {
	target   string
	source   string
	field    string
	agg      string
	interval int64

	chained   bool
	root      string // raw measurement at the bottom of the chain
	rootField string // raw field the chain aggregates
	depth     int
}

// rollupRegistry is the immutable registered-spec set the planner and
// write-path maintenance consult. specs is in registration order,
// which is topological: a chained spec's parent always precedes it.
type rollupRegistry struct {
	specs    []compiledRollup
	byTarget map[string]int
}

// chainableAggs are the aggregates a rollup can source from a coarser
// rollup (and the only ones the planner rewrites): they compose
// exactly — max of maxes, sum of sums, sum of counts; mean rides on
// materialized sum+count side fields.
func chainableAgg(agg string) bool {
	switch agg {
	case "max", "min", "sum", "count", "mean":
		return true
	}
	return false
}

// meanSumField / meanCountField name the side fields a mean rollup
// materializes next to the mean itself, so coarser tiers and the
// planner can recombine exactly instead of averaging averages.
func meanSumField(f string) string   { return f + "_sum" }
func meanCountField(f string) string { return f + "_count" }

// RegisterRollup compiles and registers a rollup tier on the engine.
// The target must be unused; a spec whose Source is itself a
// registered target chains onto it, which requires the same field and
// aggregate, a chain-exact aggregate (max/min/sum/count/mean), and an
// interval that is a coarser multiple of the parent's.
func (db *DB) RegisterRollup(spec RollupSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	target := spec.TargetName()
	db.lockWrite()
	defer db.unlockWrite()
	old := db.rollups.Load()
	cr := compiledRollup{
		target:    target,
		source:    spec.Source,
		field:     spec.Field,
		agg:       spec.Aggregate,
		interval:  spec.Interval,
		root:      spec.Source,
		rootField: spec.Field,
	}
	if old != nil {
		if _, dup := old.byTarget[target]; dup {
			return fmt.Errorf("tsdb: rollup target %q already registered", target)
		}
		if pi, ok := old.byTarget[spec.Source]; ok {
			parent := old.specs[pi]
			if !chainableAgg(spec.Aggregate) {
				return fmt.Errorf("tsdb: rollup aggregate %q cannot chain from %q", spec.Aggregate, spec.Source)
			}
			if spec.Aggregate != parent.agg {
				return fmt.Errorf("tsdb: chained rollup aggregate %q differs from parent's %q", spec.Aggregate, parent.agg)
			}
			if spec.Field != parent.rootField {
				return fmt.Errorf("tsdb: chained rollup field %q differs from parent's %q", spec.Field, parent.rootField)
			}
			if spec.Interval <= parent.interval || spec.Interval%parent.interval != 0 {
				return fmt.Errorf("tsdb: chained rollup interval %ds must be a coarser multiple of the parent's %ds",
					spec.Interval, parent.interval)
			}
			cr.chained = true
			cr.root = parent.root
			cr.rootField = parent.rootField
			cr.depth = parent.depth + 1
		}
	}
	next := &rollupRegistry{byTarget: make(map[string]int)}
	if old != nil {
		next.specs = append(next.specs, old.specs...)
		for k, v := range old.byTarget {
			next.byTarget[k] = v
		}
	}
	next.byTarget[target] = len(next.specs)
	next.specs = append(next.specs, cr)
	db.rollups.Store(next)
	return nil
}

// rollupOp is one tier mutation produced by maintenance: clear the
// target's stale bucket rows, then write the recomputed ones. Recorded
// in the composite WAL record so recovery replays the exact mutation
// instead of re-running maintenance (deterministic, never
// double-applied).
type rollupOp struct {
	target     string
	clearStart int64 // half-open clear range; equal bounds = no clear
	clearEnd   int64
	points     []Point
}

// wmOf resolves a spec's watermark (first unprocessed bucket start):
// staged updates from the current maintenance round, then the DB's
// cached map, then inference from the view. Callers hold writeMu.
func (db *DB) wmOf(v *dbView, cr compiledRollup, staged map[string]int64) (int64, bool) {
	if wm, ok := staged[cr.target]; ok {
		return wm, true
	}
	if wm, ok := db.rollupWM[cr.target]; ok {
		return wm, true
	}
	return inferWatermark(v, cr)
}

// inferWatermark derives a spec's watermark purely from stored data —
// how maintenance resumes after restart or crash recovery without
// persisting planner state. Target rows sit at bucket starts, so the
// newest target row t means every bucket through t is materialized:
// wm = t + interval. An empty target starts at the source's first
// bucket. ok=false means the source holds no data yet.
//
// Crash safety falls out of the construction: a watermark inferred
// this way never points below an existing bucket row, so replayed
// maintenance recomputes whole buckets idempotently (clear + rewrite)
// instead of appending duplicates.
func inferWatermark(v *dbView, cr compiledRollup) (int64, bool) {
	if last, ok := viewLastTime(v, cr.target); ok {
		return alignDown(last, cr.interval) + cr.interval, true
	}
	if first, ok := viewEarliestTime(v, cr.source); ok {
		return alignDown(first, cr.interval), true
	}
	return 0, false
}

// rollupMaintain advances every registered tier affected by a write
// batch, against the not-yet-published candidate view. For each spec
// (topological order) it recomputes the touched bucket range — late
// writes heal already-materialized buckets via clear+rewrite, because
// the store appends duplicate timestamps rather than overwriting —
// and materializes newly closed buckets up to the data horizon (the
// bucket holding the newest source point stays open). Returns the new
// candidate view, the ops to WAL-log, and staged watermark updates to
// apply after the log append succeeds. Caller holds writeMu.
func (db *DB) rollupMaintain(v *dbView, points []Point) (*dbView, []rollupOp, map[string]int64, error) {
	reg := db.rollups.Load()
	if reg == nil || len(points) == 0 {
		return v, nil, nil, nil
	}
	type timeRange struct{ min, max int64 }
	touched := make(map[string]timeRange)
	for i := range points {
		p := &points[i]
		tr, ok := touched[p.Measurement]
		if !ok {
			tr = timeRange{p.Time, p.Time}
		} else {
			if p.Time < tr.min {
				tr.min = p.Time
			}
			if p.Time > tr.max {
				tr.max = p.Time
			}
		}
		touched[p.Measurement] = tr
	}
	var ops []rollupOp
	staged := make(map[string]int64)
	for _, cr := range reg.specs {
		tch, ok := touched[cr.source]
		if !ok {
			continue
		}
		wm, ok := db.wmOf(v, cr, staged)
		if !ok {
			continue // source empty (first write validated against it below anyway)
		}
		// Horizon: how far materialization may advance. Root tiers are
		// data-driven — the bucket containing the newest source point is
		// still open. Chained tiers are bounded by the parent's
		// watermark: a child bucket closes once the parent materialized
		// everything inside it.
		var horizon int64
		if cr.chained {
			pwm, okP := db.wmOf(v, reg.specs[reg.byTarget[cr.source]], staged)
			if !okP {
				continue
			}
			horizon = alignDown(pwm, cr.interval)
		} else {
			last, okL := viewLastTime(v, cr.source)
			if !okL {
				continue
			}
			horizon = alignDown(last, cr.interval)
		}
		// Recompute span: stale touched buckets below the watermark
		// (heal) plus newly closed buckets up to the horizon (growth).
		start := alignDown(tch.min, cr.interval)
		if wm < start {
			start = wm
		}
		end := horizon
		if healEnd := min64(wm, alignDown(tch.max, cr.interval)+cr.interval); healEnd > end {
			end = healEnd
		}
		if start >= end {
			continue
		}
		nv, op, err := db.rollupExec(v, cr, start, end, wm)
		if err != nil {
			return v, nil, nil, err
		}
		v = nv
		if op.clearStart < op.clearEnd || len(op.points) > 0 {
			ops = append(ops, op)
		}
		staged[cr.target] = max64(wm, horizon)
		// The target advanced over [start, end): chained children see it
		// as touched source data.
		tr, ok := touched[cr.target]
		if !ok {
			tr = timeRange{start, end - 1}
		} else {
			if start < tr.min {
				tr.min = start
			}
			if end-1 > tr.max {
				tr.max = end - 1
			}
		}
		touched[cr.target] = tr
	}
	return v, ops, staged, nil
}

// rollupExec recomputes one spec's buckets in [start, end) against
// candidate view v: query the source, clear stale target rows below
// the watermark, write the recomputed rows. Returns the new candidate
// view and the op for WAL logging. Caller holds writeMu; the result is
// not published here.
func (db *DB) rollupExec(v *dbView, cr compiledRollup, start, end, wm int64) (*dbView, rollupOp, error) {
	q := &Query{
		Fields:      rollupQueryFields(cr),
		Measurement: cr.source,
		Start:       start,
		End:         end,
		GroupByTime: cr.interval,
		GroupByTags: []string{"*"},
	}
	res, err := db.execView(v, q, 0)
	if err != nil {
		return v, rollupOp{}, fmt.Errorf("tsdb: rollup %q: %w", cr.target, err)
	}
	var pts []Point
	for _, s := range res.Series {
		for _, row := range s.Rows {
			fields, ok := rollupRowFields(cr, row)
			if !ok {
				continue
			}
			pts = append(pts, Point{
				Measurement: cr.target,
				Tags:        s.Tags,
				Fields:      fields,
				Time:        row.Time,
			})
		}
	}
	op := rollupOp{target: cr.target, clearStart: start, clearEnd: min64(end, wm), points: pts}
	if op.clearStart < op.clearEnd {
		if nv, _ := clearMeasurementRangeView(v, cr.target, op.clearStart, op.clearEnd, db.blockSize, 0); nv != nil {
			v = nv
		} else {
			op.clearEnd = op.clearStart // nothing was there to clear
		}
	} else {
		op.clearEnd = op.clearStart
	}
	if len(pts) > 0 {
		v = applyRollupPoints(v, pts, db.shardDuration, db.blockSize)
	}
	return v, op, nil
}

// applyRollupPoints writes maintenance-produced points into a fresh
// batch over v and returns the finished (unpublished) view.
func applyRollupPoints(v *dbView, pts []Point, shardDuration int64, blockSize int) *dbView {
	b := newBatch(v, shardDuration, blockSize)
	for i := range pts {
		p := &pts[i]
		sorted := p.Tags.Sorted()
		key := seriesKey(p.Measurement, sorted)
		b.indexSeries(p, key, sorted)
		b.writePoint(p, key, sorted)
	}
	return b.finish(true, 0)
}

// rollupQueryFields builds the source query's field list for one spec.
// A root mean materializes sum and count next to the mean so coarser
// tiers and the planner recombine exactly; a chained tier re-reads the
// parent's materialized fields with chain-exact aggregates.
func rollupQueryFields(cr compiledRollup) []FieldExpr {
	if !cr.chained {
		if cr.agg == "mean" {
			return []FieldExpr{
				{Func: "mean", Field: cr.field},
				{Func: "sum", Field: cr.field},
				{Func: "count", Field: cr.field},
			}
		}
		return []FieldExpr{{Func: cr.agg, Field: cr.field}}
	}
	switch cr.agg {
	case "mean":
		return []FieldExpr{
			{Func: "sum", Field: meanSumField(cr.field)},
			{Func: "sum", Field: meanCountField(cr.field)},
		}
	case "count":
		// The parent's rows already hold per-bucket counts; coarser
		// counts are their sum.
		return []FieldExpr{{Func: "sum", Field: cr.field}}
	default: // max, min, sum compose with themselves
		return []FieldExpr{{Func: cr.agg, Field: cr.field}}
	}
}

// rollupRowFields converts one aggregated source row into the target
// point's field map, applying the chain coercions (counts stay Int,
// chained means recombine from sum/count).
func rollupRowFields(cr compiledRollup, row Row) (map[string]Value, bool) {
	if !cr.chained {
		if cr.agg == "mean" {
			if !row.Present[0] || !row.Present[1] || !row.Present[2] {
				return nil, false
			}
			return map[string]Value{
				cr.field:                 row.Values[0],
				meanSumField(cr.field):   row.Values[1],
				meanCountField(cr.field): row.Values[2],
			}, true
		}
		if !row.Present[0] {
			return nil, false
		}
		return map[string]Value{cr.field: row.Values[0]}, true
	}
	switch cr.agg {
	case "mean":
		if !row.Present[0] || !row.Present[1] {
			return nil, false
		}
		sum, okS := row.Values[0].AsFloat()
		cnt, okC := row.Values[1].AsFloat()
		if !okS || !okC || cnt == 0 {
			return nil, false
		}
		return map[string]Value{
			cr.field:                 Float(sum / cnt),
			meanSumField(cr.field):   Float(sum),
			meanCountField(cr.field): Int(int64(math.Round(cnt))),
		}, true
	case "count":
		if !row.Present[0] {
			return nil, false
		}
		f, ok := row.Values[0].AsFloat()
		if !ok {
			return nil, false
		}
		return map[string]Value{cr.field: Int(int64(math.Round(f)))}, true
	default:
		if !row.Present[0] {
			return nil, false
		}
		return map[string]Value{cr.field: row.Values[0]}, true
	}
}

// RollupAdvance materializes every complete bucket with end <= now
// (data time, unix seconds) for all registered tiers — the poll-loop
// complement to the write-path maintenance, used to close buckets by
// clock when writes go quiet. It reports rollup points written.
func (db *DB) RollupAdvance(now int64) (int, error) {
	reg := db.rollups.Load()
	if reg == nil {
		return 0, nil
	}
	db.lockWrite()
	defer db.unlockWrite()
	v := db.view.Load()
	base := v
	var ops []rollupOp
	staged := make(map[string]int64)
	total := 0
	for _, cr := range reg.specs {
		wm, ok := db.wmOf(v, cr, staged)
		if !ok {
			continue // source empty
		}
		var horizon int64
		if cr.chained {
			pwm, okP := db.wmOf(v, reg.specs[reg.byTarget[cr.source]], staged)
			if !okP {
				continue
			}
			horizon = alignDown(pwm, cr.interval)
		} else {
			horizon = alignDown(now, cr.interval)
		}
		if wm >= horizon {
			continue
		}
		nv, op, err := db.rollupExec(v, cr, wm, horizon, wm)
		if err != nil {
			return total, err
		}
		v = nv
		total += len(op.points)
		if op.clearStart < op.clearEnd || len(op.points) > 0 {
			ops = append(ops, op)
		}
		staged[cr.target] = horizon
	}
	if db.wal != nil && len(ops) > 0 {
		if err := db.wal.append(encodeBatchRecord(nil, ops)); err != nil {
			return 0, err
		}
	}
	for target, wm := range staged {
		db.rollupWM[target] = wm
	}
	if v != base {
		db.publish(v)
	}
	return total, nil
}

// TierStats describes one registered rollup tier for observability
// (/v1/stats storage_tiers, mquery).
type TierStats struct {
	Target    string `json:"target"`
	Source    string `json:"source"`
	Aggregate string `json:"aggregate"`
	IntervalS int64  `json:"interval_s"`
	Points    int64  `json:"points"`
	Watermark int64  `json:"watermark"`
}

// TierStats lists the registered rollup tiers with their materialized
// point counts and watermarks, in registration (chain) order.
func (db *DB) TierStats() []TierStats {
	reg := db.rollups.Load()
	if reg == nil {
		return nil
	}
	out := make([]TierStats, 0, len(reg.specs))
	db.lockWrite()
	v := db.view.Load()
	for _, cr := range reg.specs {
		ts := TierStats{
			Target:    cr.target,
			Source:    cr.source,
			Aggregate: cr.agg,
			IntervalS: cr.interval,
		}
		if wm, ok := db.wmOf(v, cr, nil); ok {
			ts.Watermark = wm
		}
		out = append(out, ts)
	}
	db.unlockWrite()
	for i := range out {
		out[i].Points = db.measurementPoints(out[i].Target)
	}
	return out
}

// measurementPoints counts one measurement's stored points across all
// shards.
func (db *DB) measurementPoints(name string) int64 {
	v := db.acquireView()
	defer db.releaseView()
	mi, ok := v.index[name]
	if !ok {
		return 0
	}
	var n int64
	for _, s := range v.shardStarts {
		sh := v.shards[s]
		for key := range mi.series {
			if sr, ok := sh.series[key]; ok {
				n += int64(sr.points())
			}
		}
	}
	return n
}

// Rollups manages a set of continuous downsampling queries over one
// DB — the stable wrapper around the engine-level registry
// (RegisterRollup/RollupAdvance) that core and the deployment wire up.
type Rollups struct {
	db *DB

	mu    sync.Mutex
	specs []RollupSpec
}

// NewRollups creates a manager for db.
func NewRollups(db *DB) *Rollups {
	return &Rollups{db: db}
}

// Add registers a spec on the engine; the write path maintains it
// incrementally from then on, and Run closes buckets by clock.
func (r *Rollups) Add(spec RollupSpec) error {
	if err := r.db.RegisterRollup(spec); err != nil {
		return err
	}
	r.mu.Lock()
	r.specs = append(r.specs, spec)
	r.mu.Unlock()
	return nil
}

// Specs lists registered specs.
func (r *Rollups) Specs() []RollupSpec {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]RollupSpec, len(r.specs))
	copy(out, r.specs)
	return out
}

// Run materializes every complete bucket with end <= now (data time,
// unix seconds) for all specs. It reports the number of rollup points
// written. With write-path maintenance active this mostly closes the
// final clock-complete bucket after writes go quiet.
func (r *Rollups) Run(now int64) (int, error) {
	return r.db.RollupAdvance(now)
}

// min64/max64 are int64 helpers (the stdlib min/max builtins arrived
// in Go 1.21; kept explicit for clarity with mixed literals).
func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// viewEarliestTime reports the earliest stored timestamp of a
// measurement within one pinned view.
func viewEarliestTime(v *dbView, measurement string) (int64, bool) {
	mi, ok := v.index[measurement]
	if !ok {
		return 0, false
	}
	best := int64(math.MaxInt64)
	found := false
	for _, s := range v.shardStarts {
		sh := v.shards[s]
		for key := range mi.series {
			sr, ok := sh.series[key]
			if !ok {
				continue
			}
			for _, col := range sr.fields {
				if t, ok := col.firstTime(); ok && t < best {
					best = t
					found = true
				}
			}
		}
		if found {
			// Shards are time-ordered; the first shard containing the
			// measurement holds its earliest point.
			break
		}
	}
	return best, found
}

// viewLastTime reports the newest stored timestamp of a measurement
// within one pinned view (the symmetric walk, newest shard first).
func viewLastTime(v *dbView, measurement string) (int64, bool) {
	mi, ok := v.index[measurement]
	if !ok {
		return 0, false
	}
	best := int64(math.MinInt64)
	found := false
	for i := len(v.shardStarts) - 1; i >= 0; i-- {
		sh := v.shards[v.shardStarts[i]]
		for key := range mi.series {
			sr, ok := sh.series[key]
			if !ok {
				continue
			}
			for _, col := range sr.fields {
				if t, ok := col.lastTime(); ok && t > best {
					best = t
					found = true
				}
			}
		}
		if found {
			break
		}
	}
	return best, found
}

// earliestTime reports the earliest stored timestamp of a measurement.
func (db *DB) earliestTime(measurement string) (int64, bool) {
	v := db.acquireView()
	defer db.releaseView()
	return viewEarliestTime(v, measurement)
}
