package tsdb

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"monster/internal/clock"
)

func walPoint(node string, ts int64, v float64) Point {
	return Point{
		Measurement: "Power",
		Tags:        Tags{{Key: "Label", Value: "NodePower"}, {Key: "NodeId", Value: node}},
		Fields:      map[string]Value{"Reading": Float(v)},
		Time:        ts,
	}
}

// crashOpen opens a durable DB without ever closing it — the tests
// simulate kill -9 by simply abandoning the handle, which is exactly
// what a SIGKILLed process does.
func crashOpen(t *testing.T, dir string, wopts WALOptions) (*DB, RecoveryInfo) {
	t.Helper()
	wopts.Dir = dir
	db, info, err := OpenDurable(Options{ShardDuration: 3600}, wopts)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return db, info
}

func TestWALRecoverAfterCrash(t *testing.T) {
	dir := t.TempDir()
	db, info := crashOpen(t, dir, WALOptions{Policy: FsyncNever})
	if info.SnapshotLoaded || info.Records != 0 {
		t.Fatalf("fresh dir recovered state: %+v", info)
	}

	for i := 0; i < 20; i++ {
		if err := db.WritePoints([]Point{
			walPoint("n1", int64(60*i), float64(i)),
			walPoint("n2", int64(60*i), float64(2*i)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.WritePoint(Point{Measurement: "scratch", Fields: map[string]Value{"f": Int(1)}, Time: 5}); err != nil {
		t.Fatal(err)
	}
	if ok, err := db.DropMeasurement("scratch"); !ok || err != nil {
		t.Fatalf("drop: ok=%t err=%v", ok, err)
	}
	wantPoints := db.Disk().Points
	wantEpochedSeries := db.SeriesCardinality("")

	// Crash (no close, no checkpoint) and recover.
	db2, info2 := crashOpen(t, dir, WALOptions{Policy: FsyncNever})
	if info2.SnapshotLoaded {
		t.Fatal("no checkpoint was taken, yet a snapshot loaded")
	}
	if info2.Records != 22 || info2.TornFrames != 0 {
		t.Fatalf("recovery = %+v, want 22 clean records", info2)
	}
	if got := db2.Disk().Points; got != wantPoints {
		t.Fatalf("recovered %d points, want %d", got, wantPoints)
	}
	if got := db2.SeriesCardinality(""); got != wantEpochedSeries {
		t.Fatalf("recovered %d series, want %d", got, wantEpochedSeries)
	}
	if ms := db2.Measurements(); len(ms) != 1 || ms[0] != "Power" {
		t.Fatalf("recovered measurements %v (the drop was not replayed)", ms)
	}
	st := db2.WALStats()
	if st.Replayed != 22 || st.TornFrames != 0 {
		t.Fatalf("WALStats = %+v", st)
	}

	// The recovered database answers queries identically.
	r1, err := db.Query(`SELECT max("Reading") FROM "Power" GROUP BY "NodeId"`)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Query(`SELECT max("Reading") FROM "Power" GROUP BY "NodeId"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Series) != len(r2.Series) {
		t.Fatalf("series %d vs %d after recovery", len(r1.Series), len(r2.Series))
	}
}

func TestWALRecoverDeleteBefore(t *testing.T) {
	dir := t.TempDir()
	db, _ := crashOpen(t, dir, WALOptions{Policy: FsyncNever})
	for ts := int64(0); ts < 10*3600; ts += 3600 {
		if err := db.WritePoint(walPoint("n1", ts, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := db.DeleteBefore(5 * 3600); n != 5 || err != nil {
		t.Fatalf("DeleteBefore = %d, %v", n, err)
	}
	want := db.Disk().Points

	db2, info := crashOpen(t, dir, WALOptions{Policy: FsyncNever})
	if got := db2.Disk().Points; got != want {
		t.Fatalf("recovered %d points, want %d (retention sweep not replayed; info %+v)", got, want, info)
	}
}

// TestWALKillPoints is the kill-point matrix: truncate the log at
// every byte offset and assert recovery yields exactly the longest
// valid prefix of acknowledged batches, never more, never a crash.
func TestWALKillPoints(t *testing.T) {
	master := t.TempDir()
	db, _ := crashOpen(t, master, WALOptions{Policy: FsyncNever})

	// Frame boundaries after each batch: boundaries[i] = segment size
	// once batch i is durable, so a truncation at offset off recovers
	// count(boundaries <= off) batches.
	const batches = 12
	var boundaries []int64
	for i := 0; i < batches; i++ {
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
		db.wal.mu.Lock()
		boundaries = append(boundaries, db.wal.segBytes)
		db.wal.mu.Unlock()
	}
	segPath := walSegmentPath(master, 1)
	data, err := os.ReadFile(segPath)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != boundaries[batches-1] {
		t.Fatalf("segment size %d, want %d", len(data), boundaries[batches-1])
	}

	for off := int64(0); off <= int64(len(data)); off++ {
		wantBatches := 0
		for _, b := range boundaries {
			if b <= off {
				wantBatches++
			}
		}
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("kill-%d", off))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(walSegmentPath(dir, 1), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, info, err := OpenDurable(Options{ShardDuration: 3600}, WALOptions{Dir: dir, Policy: FsyncNever})
		if err != nil {
			t.Fatalf("offset %d: OpenDurable: %v", off, err)
		}
		if got := rec.Disk().Points; got != int64(wantBatches) {
			t.Fatalf("offset %d: recovered %d points, want %d (info %+v)", off, got, wantBatches, info)
		}
		atBoundary := off == walHeaderSize
		for _, b := range boundaries {
			if b == off {
				atBoundary = true
			}
		}
		if atBoundary && info.TornFrames != 0 {
			t.Fatalf("offset %d is a frame boundary yet counted torn: %+v", off, info)
		}
		if !atBoundary && off > walHeaderSize && info.TornFrames != 1 {
			t.Fatalf("offset %d tore a frame but stats say %+v", off, info)
		}
		// Recovery after recovery is stable: the truncated tail is gone.
		rec2, info2, err := OpenDurable(Options{ShardDuration: 3600}, WALOptions{Dir: dir, Policy: FsyncNever})
		if err != nil {
			t.Fatalf("offset %d: second recovery: %v", off, err)
		}
		if rec2.Disk().Points != rec.Disk().Points || info2.TornFrames != 0 {
			t.Fatalf("offset %d: second recovery diverged: %d vs %d points, info %+v",
				off, rec2.Disk().Points, rec.Disk().Points, info2)
		}
	}
}

// TestWALKillPointsSealedBlocks reruns the kill-point matrix with an
// aggressive seal threshold, so recovery replays into an engine that
// compresses as it goes: every truncation offset must recover the same
// longest valid prefix, with columns split across sealed blocks and
// the raw tail.
func TestWALKillPointsSealedBlocks(t *testing.T) {
	sealedOpts := Options{ShardDuration: 3600, BlockSize: 4}
	master := t.TempDir()
	db, _, err := OpenDurable(sealedOpts, WALOptions{Dir: master, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	const batches = 12
	var boundaries []int64
	for i := 0; i < batches; i++ {
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
		db.wal.mu.Lock()
		boundaries = append(boundaries, db.wal.segBytes)
		db.wal.mu.Unlock()
	}
	if cs := db.Compression(); cs.Blocks != 3 {
		t.Fatalf("writer did not seal: %+v", cs)
	}
	data, err := os.ReadFile(walSegmentPath(master, 1))
	if err != nil {
		t.Fatal(err)
	}

	for off := int64(0); off <= int64(len(data)); off++ {
		wantBatches := int64(0)
		for _, b := range boundaries {
			if b <= off {
				wantBatches++
			}
		}
		dir := t.TempDir()
		if err := os.WriteFile(walSegmentPath(dir, 1), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		rec, info, err := OpenDurable(sealedOpts, WALOptions{Dir: dir, Policy: FsyncNever})
		if err != nil {
			t.Fatalf("offset %d: OpenDurable: %v", off, err)
		}
		if got := rec.Disk().Points; got != wantBatches {
			t.Fatalf("offset %d: recovered %d points, want %d (info %+v)", off, got, wantBatches, info)
		}
		cs := rec.Compression()
		if cs.SealedPoints+cs.TailPoints != wantBatches {
			t.Fatalf("offset %d: compression accounting lost points: %+v, want %d", off, cs, wantBatches)
		}
		if wantSealed := wantBatches / 4 * 4; cs.SealedPoints != wantSealed {
			t.Fatalf("offset %d: %d sealed points, want %d", off, cs.SealedPoints, wantSealed)
		}
		// The replayed data answers queries (decoding sealed blocks).
		res, err := rec.Query(`SELECT count("Reading") FROM "Power"`)
		if err != nil {
			t.Fatalf("offset %d: query: %v", off, err)
		}
		if wantBatches > 0 {
			if n := res.Series[0].Rows[0].Values[0].I; n != wantBatches {
				t.Fatalf("offset %d: count = %d, want %d", off, n, wantBatches)
			}
		}
	}
}

// TestWALCheckpointSealedBlocks checkpoints a database whose columns
// hold sealed blocks: the snapshot (v2, blocks verbatim) must load on
// recovery and merge cleanly with post-checkpoint WAL replay.
func TestWALCheckpointSealedBlocks(t *testing.T) {
	sealedOpts := Options{ShardDuration: 3600, BlockSize: 4}
	dir := t.TempDir()
	db, _, err := OpenDurable(sealedOpts, WALOptions{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	db2, info, err := OpenDurable(sealedOpts, WALOptions{Dir: dir, Policy: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	if !info.SnapshotLoaded || info.SnapshotPoints != 10 || info.Points != 5 {
		t.Fatalf("recovery split = %+v, want 10 snapshot + 5 replayed points", info)
	}
	cs := db2.Compression()
	if cs.SealedPoints != 12 || cs.TailPoints != 3 {
		t.Fatalf("recovered compression state %+v, want 12 sealed + 3 tail", cs)
	}
	r1, err := db.Query(`SELECT "Reading" FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db2.Query(`SELECT "Reading" FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := FormatResult(r2), FormatResult(r1); got != want {
		t.Fatalf("recovered data diverged:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWALCorruptionMidSegmentDropsTail(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation so corruption lands mid-log with
	// whole segments after it.
	db, _ := crashOpen(t, dir, WALOptions{Policy: FsyncNever, SegmentSize: 256})
	for i := 0; i < 40; i++ {
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if db.WALStats().Rotations == 0 {
		t.Fatal("no rotation at 256-byte segments")
	}
	segs, err := listWALSegments(dir)
	if err != nil || len(segs) < 3 {
		t.Fatalf("want >=3 segments, got %d (%v)", len(segs), err)
	}

	// Flip one payload byte in the second segment.
	data, err := os.ReadFile(segs[1].path)
	if err != nil {
		t.Fatal(err)
	}
	data[walHeaderSize+walFrameHeader] ^= 0xFF
	if err := os.WriteFile(segs[1].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	db2, info := crashOpen(t, dir, WALOptions{Policy: FsyncNever})
	if info.TornFrames != 1 {
		t.Fatalf("info = %+v, want exactly one torn frame", info)
	}
	// Everything from the first segment replayed; everything at and
	// after the corrupt frame is gone, including later segments.
	firstSegBatches := db2.Disk().Points
	if firstSegBatches == 0 || firstSegBatches >= 40 {
		t.Fatalf("recovered %d points, want a proper prefix", firstSegBatches)
	}
	for _, s := range segs[2:] {
		if _, err := os.Stat(s.path); !os.IsNotExist(err) {
			t.Fatalf("post-tear segment %s survived", s.path)
		}
	}
}

func TestWALCheckpointTruncatesLog(t *testing.T) {
	dir := t.TempDir()
	db, _ := crashOpen(t, dir, WALOptions{Policy: FsyncNever})
	for i := 0; i < 10; i++ {
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := db.WALStats()
	if st.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d", st.Checkpoints)
	}
	if st.Segments != 1 {
		t.Fatalf("segments after checkpoint = %d, want just the active one", st.Segments)
	}
	// Post-checkpoint writes land in the new segment.
	for i := 10; i < 15; i++ {
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}

	db2, info := crashOpen(t, dir, WALOptions{Policy: FsyncNever})
	if !info.SnapshotLoaded {
		t.Fatal("checkpoint snapshot not loaded")
	}
	if info.SnapshotPoints != 10 || info.Points != 5 {
		t.Fatalf("recovery split = %+v, want 10 snapshot + 5 replayed points", info)
	}
	if got := db2.Disk().Points; got != 15 {
		t.Fatalf("recovered %d points, want 15", got)
	}
}

func TestWALFsyncPolicies(t *testing.T) {
	t.Run("always", func(t *testing.T) {
		db, _ := crashOpen(t, t.TempDir(), WALOptions{Policy: FsyncAlways})
		for i := 0; i < 3; i++ {
			if err := db.WritePoint(walPoint("n1", int64(i), 1)); err != nil {
				t.Fatal(err)
			}
		}
		if st := db.WALStats(); st.Syncs != 3 {
			t.Fatalf("syncs = %d, want one per append", st.Syncs)
		}
	})
	t.Run("interval", func(t *testing.T) {
		sim := clock.NewSim(time.Unix(0, 0))
		db, _ := crashOpen(t, t.TempDir(), WALOptions{
			Policy: FsyncInterval, SyncInterval: time.Second, Clock: sim,
		})
		for i := 0; i < 5; i++ {
			if err := db.WritePoint(walPoint("n1", int64(i), 1)); err != nil {
				t.Fatal(err)
			}
		}
		if st := db.WALStats(); st.Syncs != 0 {
			t.Fatalf("syncs before the interval elapsed = %d", st.Syncs)
		}
		sim.Advance(2 * time.Second)
		if err := db.WritePoint(walPoint("n1", 100, 1)); err != nil {
			t.Fatal(err)
		}
		if st := db.WALStats(); st.Syncs != 1 {
			t.Fatalf("syncs after the interval elapsed = %d, want 1", st.Syncs)
		}
	})
	t.Run("never", func(t *testing.T) {
		db, _ := crashOpen(t, t.TempDir(), WALOptions{Policy: FsyncNever})
		for i := 0; i < 3; i++ {
			if err := db.WritePoint(walPoint("n1", int64(i), 1)); err != nil {
				t.Fatal(err)
			}
		}
		if st := db.WALStats(); st.Syncs != 0 {
			t.Fatalf("syncs = %d, want none", st.Syncs)
		}
	})
}

// TestWALConcurrentWritesAndCheckpoints drives writers against the
// checkpoint loop (run with -race): every acknowledged batch must
// survive crash-recovery regardless of which side of a checkpoint cut
// it landed on.
func TestWALConcurrentWritesAndCheckpoints(t *testing.T) {
	dir := t.TempDir()
	db, _ := crashOpen(t, dir, WALOptions{Policy: FsyncNever, SegmentSize: 4096})

	const writers = 4
	const perWriter = 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := fmt.Sprintf("n%d", w)
			for i := 0; i < perWriter; i++ {
				if err := db.WritePoint(walPoint(node, int64(60*i), float64(i))); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if err := db.Checkpoint(); err != nil {
				t.Errorf("checkpoint: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	<-done
	want := db.Disk().Points
	if want != writers*perWriter {
		t.Fatalf("acked %d points, want %d", want, writers*perWriter)
	}

	db2, info := crashOpen(t, dir, WALOptions{Policy: FsyncNever})
	if got := db2.Disk().Points; got != want {
		t.Fatalf("recovered %d points, want %d (info %+v)", got, want, info)
	}
	if info.TornFrames != 0 {
		t.Fatalf("clean log reported torn frames: %+v", info)
	}
}

func TestWALStatsSurfaceAndClose(t *testing.T) {
	db := Open(Options{})
	if st := db.WALStats(); st != (WALStats{}) {
		t.Fatalf("memory-only DB reported WAL stats %+v", st)
	}
	if err := db.Checkpoint(); err == nil {
		t.Fatal("checkpoint on a memory-only DB succeeded")
	}
	if err := db.CloseWAL(); err != nil {
		t.Fatalf("CloseWAL on memory-only DB: %v", err)
	}

	dir := t.TempDir()
	ddb, _ := crashOpen(t, dir, WALOptions{Policy: FsyncNever})
	if err := ddb.WritePoint(walPoint("n1", 0, 1)); err != nil {
		t.Fatal(err)
	}
	st := ddb.WALStats()
	if st.Appends != 1 || st.Segments != 1 || st.Bytes <= walHeaderSize {
		t.Fatalf("stats = %+v", st)
	}
	if err := ddb.CloseWAL(); err != nil {
		t.Fatal(err)
	}
	if err := ddb.WritePoint(walPoint("n1", 60, 1)); err == nil {
		t.Fatal("write after CloseWAL succeeded silently — durability contract broken")
	}
}

// TestWALCheckpointCrashBeforeTruncate pins the nastiest checkpoint
// crash window: the boundary-stamped snapshot has atomically renamed
// into place, but the process died before the covered segments (and
// the previous snapshot) were deleted. The store appends duplicate
// timestamps rather than overwriting, so replaying a covered segment
// would double every point. Recovery must load the newest snapshot,
// SKIP the covered segments, and clean the stale files up.
func TestWALCheckpointCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	db, _ := crashOpen(t, dir, WALOptions{Policy: FsyncNever})
	for i := 0; i < 10; i++ {
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// First, a completed checkpoint, so a stale older snapshot exists.
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 15; i++ {
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	// Now the crashing checkpoint: cut + snapshot rename, no truncation
	// (exactly Checkpoint minus its truncateBefore call).
	_ = db.lockWrite()
	boundary, err := db.wal.cut()
	v := db.view.Load()
	db.unlockWrite()
	if err != nil {
		t.Fatal(err)
	}
	if err := saveViewFile(v, db.shardDuration, snapshotPath(dir, boundary), false); err != nil {
		t.Fatal(err)
	}

	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want 2 snapshots on disk (completed + crashed), got %d (%v)", len(snaps), err)
	}

	db2, info := crashOpen(t, dir, WALOptions{Policy: FsyncNever})
	if !info.SnapshotLoaded || info.SnapshotPoints != 15 {
		t.Fatalf("recovery did not load the newest snapshot: %+v", info)
	}
	if info.Records != 0 {
		t.Fatalf("recovery replayed %d covered records — points would double", info.Records)
	}
	if got := db2.Disk().Points; got != 15 {
		t.Fatalf("recovered %d points, want 15 (no double replay)", got)
	}
	// Stale files were swept: one snapshot, no covered segments.
	snaps, err = listSnapshots(dir)
	if err != nil || len(snaps) != 1 || snaps[0].boundary != boundary {
		t.Fatalf("stale snapshots not swept: %v (%v)", snaps, err)
	}
	segs, err := listWALSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.seq < boundary {
			t.Fatalf("covered segment %s survived recovery", s.path)
		}
	}
}
