package tsdb

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// writeTestFleet writes count power samples per node at interval
// seconds starting at t0, value = base + nodeIdx + i%7.
func writeTestFleet(t *testing.T, db *DB, nodes, count int, t0, interval int64) {
	t.Helper()
	var pts []Point
	for n := 0; n < nodes; n++ {
		for i := 0; i < count; i++ {
			pts = append(pts, Point{
				Measurement: "Power",
				Tags: Tags{
					{"NodeId", fmt.Sprintf("10.101.1.%d", n+1)},
					{"Label", "NodePower"},
				},
				Fields: map[string]Value{"Reading": Float(float64(200 + n + i%7))},
				Time:   t0 + int64(i)*interval,
			})
		}
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAndRawQuery(t *testing.T) {
	db := Open(Options{})
	writeTestFleet(t, db, 2, 10, 1000, 60)
	res, err := db.Query(`SELECT "Reading" FROM "Power" WHERE "NodeId"='10.101.1.1'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("series = %d, want 1", len(res.Series))
	}
	if got := len(res.Series[0].Rows); got != 10 {
		t.Fatalf("rows = %d, want 10", got)
	}
	if res.Series[0].Rows[0].Time != 1000 {
		t.Fatalf("first row time = %d", res.Series[0].Rows[0].Time)
	}
}

func TestWriteRejectsInvalidBatchAtomically(t *testing.T) {
	db := Open(Options{})
	pts := []Point{
		{Measurement: "m", Fields: map[string]Value{"f": Float(1)}, Time: 1},
		{Measurement: "", Fields: map[string]Value{"f": Float(1)}, Time: 2},
	}
	if err := db.WritePoints(pts); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if db.Stats().PointsWritten != 0 {
		t.Fatal("partial batch was written")
	}
}

func TestAggMaxGroupByTime(t *testing.T) {
	db := Open(Options{})
	// Samples every 60 s for 1 h starting at t=0: values 0..59 mod 7.
	var pts []Point
	for i := 0; i < 60; i++ {
		pts = append(pts, Point{
			Measurement: "Power",
			Tags:        Tags{{"NodeId", "n1"}},
			Fields:      map[string]Value{"Reading": Float(float64(i % 7))},
			Time:        int64(i * 60),
		})
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT max("Reading") FROM "Power" WHERE time >= 0 AND time < 3600 GROUP BY time(5m)`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Series[0].Rows
	if len(rows) != 12 {
		t.Fatalf("buckets = %d, want 12", len(rows))
	}
	for i, r := range rows {
		if r.Time != int64(i*300) {
			t.Fatalf("bucket %d at %d, want %d", i, r.Time, i*300)
		}
		if v := r.Values[0].F; v < 4 || v > 6 {
			t.Fatalf("bucket %d max = %v, want in [4,6]", i, v)
		}
	}
}

func TestAggregatesAgainstNaiveReference(t *testing.T) {
	db := Open(Options{})
	rng := rand.New(rand.NewSource(7))
	const n = 500
	vals := make([]float64, n)
	var pts []Point
	for i := 0; i < n; i++ {
		vals[i] = rng.Float64() * 100
		pts = append(pts, Point{
			Measurement: "m",
			Tags:        Tags{{"id", "x"}},
			Fields:      map[string]Value{"f": Float(vals[i])},
			Time:        int64(i),
		})
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	var sum, max, min float64
	min = vals[0]
	max = vals[0]
	for _, v := range vals {
		sum += v
		if v > max {
			max = v
		}
		if v < min {
			min = v
		}
	}
	check := func(fn string, want float64) {
		t.Helper()
		res, err := db.Query(fmt.Sprintf(`SELECT %s("f") FROM "m"`, fn))
		if err != nil {
			t.Fatal(err)
		}
		got := res.Series[0].Rows[0].Values[0].F
		if diff := got - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%s = %v, want %v", fn, got, want)
		}
	}
	check("sum", sum)
	check("max", max)
	check("min", min)
	check("mean", sum/n)
	res, err := db.Query(`SELECT count("f") FROM "m"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Series[0].Rows[0].Values[0].I; got != n {
		t.Errorf("count = %d, want %d", got, n)
	}
}

func TestFirstLastRespectTimeOrderDespiteOutOfOrderWrites(t *testing.T) {
	db := Open(Options{})
	times := []int64{50, 10, 90, 30, 70}
	for _, ts := range times {
		err := db.WritePoint(Point{
			Measurement: "m",
			Tags:        Tags{{"id", "x"}},
			Fields:      map[string]Value{"f": Float(float64(ts))},
			Time:        ts,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(`SELECT first("f"), last("f") FROM "m"`)
	if err != nil {
		t.Fatal(err)
	}
	row := res.Series[0].Rows[0]
	if row.Values[0].F != 10 || row.Values[1].F != 90 {
		t.Fatalf("first/last = %v/%v, want 10/90", row.Values[0].F, row.Values[1].F)
	}
}

func TestTagFilterSelectivity(t *testing.T) {
	db := Open(Options{})
	writeTestFleet(t, db, 10, 5, 0, 60)
	res, err := db.Query(`SELECT count("Reading") FROM "Power" WHERE "NodeId"='10.101.1.3'`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.SeriesScanned != 1 {
		t.Fatalf("scanned %d series, want 1 (index should prune)", res.Stats.SeriesScanned)
	}
	if res.Series[0].Rows[0].Values[0].I != 5 {
		t.Fatalf("count = %v", res.Series[0].Rows[0].Values[0])
	}
}

func TestQueryMissingMeasurementOrTag(t *testing.T) {
	db := Open(Options{})
	writeTestFleet(t, db, 1, 1, 0, 60)
	res, err := db.Query(`SELECT count("Reading") FROM "Nope"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 0 {
		t.Fatal("missing measurement returned series")
	}
	res, err = db.Query(`SELECT count("Reading") FROM "Power" WHERE "NodeId"='missing'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 0 {
		t.Fatal("missing tag value returned series")
	}
}

func TestGroupByTagSplitsSeries(t *testing.T) {
	db := Open(Options{})
	writeTestFleet(t, db, 4, 3, 0, 60)
	res, err := db.Query(`SELECT mean("Reading") FROM "Power" GROUP BY "NodeId"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("groups = %d, want 4", len(res.Series))
	}
	// Groups must be tag-sorted and labelled.
	for i := 1; i < len(res.Series); i++ {
		if !tagsLess(res.Series[i-1].Tags, res.Series[i].Tags) {
			t.Fatal("groups not sorted by tags")
		}
	}
	if v, _ := res.Series[0].Tags.Get("NodeId"); v != "10.101.1.1" {
		t.Fatalf("first group tag = %q", v)
	}
}

func TestGroupByStarOneGroupPerSeries(t *testing.T) {
	db := Open(Options{})
	writeTestFleet(t, db, 3, 2, 0, 60)
	res, err := db.Query(`SELECT mean("Reading") FROM "Power" GROUP BY *`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("groups = %d, want 3", len(res.Series))
	}
	if len(res.Series[0].Tags) != 2 {
		t.Fatalf("star group tags = %v", res.Series[0].Tags)
	}
}

func TestTimeRangeClipsAcrossShards(t *testing.T) {
	db := Open(Options{ShardDuration: 3600}) // 1 h shards
	var pts []Point
	for i := 0; i < 10*60; i++ { // 10 h of minutely data
		pts = append(pts, Point{
			Measurement: "m",
			Tags:        Tags{{"id", "x"}},
			Fields:      map[string]Value{"f": Float(1)},
			Time:        int64(i * 60),
		})
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	if got := db.Disk().Shards; got != 10 {
		t.Fatalf("shards = %d, want 10", got)
	}
	res, err := db.Query(`SELECT count("f") FROM "m" WHERE time >= 5400 AND time < 12600`)
	if err != nil {
		t.Fatal(err)
	}
	// [5400, 12600) covers 7200 s of minutely samples = 120 points.
	if got := res.Series[0].Rows[0].Values[0].I; got != 120 {
		t.Fatalf("count = %d, want 120", got)
	}
	if res.Stats.PointsScanned != 120 {
		t.Fatalf("scanned %d, want 120 (shard+binary-search pruning)", res.Stats.PointsScanned)
	}
}

func TestLimit(t *testing.T) {
	db := Open(Options{})
	writeTestFleet(t, db, 1, 50, 0, 60)
	res, err := db.Query(`SELECT "Reading" FROM "Power" LIMIT 7`)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.Series[0].Rows); got != 7 {
		t.Fatalf("rows = %d, want 7", got)
	}
}

func TestMultiFieldRawAlignment(t *testing.T) {
	db := Open(Options{})
	err := db.WritePoints([]Point{
		{Measurement: "m", Tags: Tags{{"id", "x"}}, Fields: map[string]Value{"a": Float(1)}, Time: 10},
		{Measurement: "m", Tags: Tags{{"id", "x"}}, Fields: map[string]Value{"a": Float(2), "b": Float(20)}, Time: 20},
		{Measurement: "m", Tags: Tags{{"id", "x"}}, Fields: map[string]Value{"b": Float(30)}, Time: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(`SELECT "a", "b" FROM "m"`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Series[0].Rows
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if !rows[0].Present[0] || rows[0].Present[1] {
		t.Fatalf("row0 presence = %v", rows[0].Present)
	}
	if !rows[1].Present[0] || !rows[1].Present[1] {
		t.Fatalf("row1 presence = %v", rows[1].Present)
	}
	if rows[2].Present[0] || !rows[2].Present[1] {
		t.Fatalf("row2 presence = %v", rows[2].Present)
	}
}

func TestRawQueryDoesNotMergeSeriesAtSameTimestamp(t *testing.T) {
	// Regression: three nodes sampled at the same instant must yield
	// three rows, not one overwritten row.
	db := Open(Options{})
	for n := 1; n <= 3; n++ {
		err := db.WritePoint(Point{
			Measurement: "NodeJobs",
			Tags:        Tags{{"NodeId", fmt.Sprintf("n%d", n)}},
			Fields:      map[string]Value{"JobList": Str(fmt.Sprintf("['job%d']", n))},
			Time:        1000,
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	res, err := db.Query(`SELECT "JobList" FROM "NodeJobs"`)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	vals := map[string]bool{}
	for _, s := range res.Series {
		for _, r := range s.Rows {
			total++
			vals[r.Values[0].S] = true
		}
	}
	if total != 3 || len(vals) != 3 {
		t.Fatalf("rows = %d distinct = %d, want 3/3", total, len(vals))
	}
}

func TestStatsBytesScannedPositive(t *testing.T) {
	db := Open(Options{})
	writeTestFleet(t, db, 2, 10, 0, 60)
	res, err := db.Query(`SELECT mean("Reading") FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.BytesScanned <= 0 || res.Stats.PointsScanned != 20 {
		t.Fatalf("stats = %+v", res.Stats)
	}
}

func TestFormatResultRendersTable(t *testing.T) {
	db := Open(Options{})
	writeTestFleet(t, db, 1, 2, 1583792296, 60)
	res, err := db.Query(`SELECT "Reading" FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	out := FormatResult(res)
	if !strings.Contains(out, "name: Power") || !strings.Contains(out, "Reading") {
		t.Fatalf("unexpected render:\n%s", out)
	}
	if !strings.Contains(out, "2020-03-09T") {
		t.Fatalf("timestamp not rendered:\n%s", out)
	}
}

func TestExecRejectsInvalidQuery(t *testing.T) {
	db := Open(Options{})
	if _, err := db.Exec(&Query{}); err == nil {
		t.Fatal("empty query executed")
	}
}

func TestPropCountMatchesWrites(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 200 {
			raw = raw[:200]
		}
		db := Open(Options{ShardDuration: 1000})
		var pts []Point
		for i, r := range raw {
			pts = append(pts, Point{
				Measurement: "m",
				Tags:        Tags{{"id", "x"}},
				Fields:      map[string]Value{"f": Float(float64(r))},
				Time:        int64(r), // arbitrary, possibly duplicated times
			})
			_ = i
		}
		if err := db.WritePoints(pts); err != nil {
			return false
		}
		res, err := db.Query(`SELECT count("f") FROM "m"`)
		if err != nil {
			return false
		}
		return res.Series[0].Rows[0].Values[0].I == int64(len(raw))
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestPropMaxBucketsNeverExceedGlobalMax(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) < 2 {
			return true
		}
		if len(raw) > 300 {
			raw = raw[:300]
		}
		db := Open(Options{})
		var pts []Point
		var globalMax float64
		for i, r := range raw {
			v := float64(r)
			if i == 0 || v > globalMax {
				globalMax = v
			}
			pts = append(pts, Point{
				Measurement: "m",
				Tags:        Tags{{"id", "x"}},
				Fields:      map[string]Value{"f": Float(v)},
				Time:        int64(i * 10),
			})
		}
		if err := db.WritePoints(pts); err != nil {
			return false
		}
		res, err := db.Query(`SELECT max("f") FROM "m" GROUP BY time(1m)`)
		if err != nil {
			return false
		}
		found := false
		for _, row := range res.Series[0].Rows {
			if row.Values[0].F > globalMax {
				return false
			}
			if row.Values[0].F == globalMax {
				found = true
			}
		}
		return found
	}
	if err := quick.Check(f, quickConfig()); err != nil {
		t.Fatal(err)
	}
}

func quickConfig() *quick.Config {
	return &quick.Config{MaxCount: 30}
}

func TestOrderByTimeDescWithLimit(t *testing.T) {
	// The "latest value" idiom: ORDER BY time DESC LIMIT 1.
	db := Open(Options{})
	writeTestFleet(t, db, 1, 10, 0, 60)
	res, err := db.Query(`SELECT "Reading" FROM "Power" ORDER BY time DESC LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Series[0].Rows
	if len(rows) != 1 || rows[0].Time != 9*60 {
		t.Fatalf("latest row = %+v", rows)
	}
	// Descending aggregation buckets too.
	res, err = db.Query(`SELECT max("Reading") FROM "Power" GROUP BY time(2m) ORDER BY time DESC`)
	if err != nil {
		t.Fatal(err)
	}
	rows = res.Series[0].Rows
	for i := 1; i < len(rows); i++ {
		if rows[i].Time >= rows[i-1].Time {
			t.Fatalf("rows not descending: %v then %v", rows[i-1].Time, rows[i].Time)
		}
	}
}

// BenchmarkRangeIndexes guards the rangeIndexes fix: the upper-bound
// search runs only over the suffix the lower bound admitted, so a
// narrow window late in a long column costs two short binary searches,
// not one short and one full-length.
func BenchmarkRangeIndexes(b *testing.B) {
	c := &column{}
	const n = 1 << 20
	for i := 0; i < n; i++ {
		c.times = append(c.times, int64(i*60))
	}
	// The worst pre-fix case: a tiny window at the very end of the
	// column, where the second search's haystack shrinks from n to ~10.
	start, end := c.times[n-10], c.times[n-1]+1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo, hi := c.rangeIndexes(start, end)
		if hi-lo != 10 {
			b.Fatalf("window = [%d,%d)", lo, hi)
		}
	}
}
