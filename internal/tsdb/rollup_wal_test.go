package tsdb

import (
	"fmt"
	"os"
	"strings"
	"testing"
)

// tierSig renders the full materialized state of the Power_mean_300s
// tier (mean plus its sum/count side fields) as one comparable string,
// and fails the test if any field's rows are not strictly increasing in
// time — a duplicate bucket means a rollup op was applied twice.
func tierSig(t *testing.T, db *DB, ctx string) string {
	t.Helper()
	var sb strings.Builder
	for _, field := range []string{"Reading", "Reading_sum", "Reading_count"} {
		res, err := db.Query(fmt.Sprintf(`SELECT %q FROM "Power_mean_300s"`, field))
		if err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		for _, s := range res.Series {
			last := int64(-1 << 62)
			for _, r := range s.Rows {
				if r.Time <= last {
					t.Fatalf("%s: duplicate/unordered %s bucket at t=%d", ctx, field, r.Time)
				}
				last = r.Time
				fmt.Fprintf(&sb, "%s|%d|%v;", field, r.Time, r.Values[0])
			}
		}
	}
	return sb.String()
}

// TestWALRollupKillPoints is the kill-point matrix for incremental
// rollup maintenance: with a mean tier registered, every write batch
// logs one composite WAL record (raw points + the tier ops they
// triggered), and RollupAdvance logs another. Truncating the log at
// every byte offset and recovering must yield (a) exactly the longest
// valid prefix of raw batches, (b) a tier with no double-applied
// buckets, and (c) after re-registering the rollup and advancing, the
// exact state an uninterrupted run over that raw prefix produces.
func TestWALRollupKillPoints(t *testing.T) {
	spec := RollupSpec{Source: "Power", Field: "Reading", Aggregate: "mean", Interval: 300}
	const batches = 12
	const runNow = 3600

	master := t.TempDir()
	db, _ := crashOpen(t, master, WALOptions{Policy: FsyncNever})
	rm := NewRollups(db)
	if err := rm.Add(spec); err != nil {
		t.Fatal(err)
	}
	// One point per batch: crossing a 300s bucket boundary makes that
	// batch's WAL record composite (raw + rollup ops).
	var rawBoundaries []int64
	for i := 0; i < batches; i++ {
		if err := db.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
			t.Fatal(err)
		}
		db.wal.mu.Lock()
		rawBoundaries = append(rawBoundaries, db.wal.segBytes)
		db.wal.mu.Unlock()
	}
	// Clock-driven advance closes the data-incomplete tail bucket and
	// logs a points-free composite record.
	if _, err := rm.Run(runNow); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(walSegmentPath(master, 1))
	if err != nil {
		t.Fatal(err)
	}

	// Reference states: for each raw prefix length, the tier an
	// uninterrupted (never-crashed) run converges to.
	refSig := make([]string, batches+1)
	refRaw := make([]int64, batches+1)
	for k := 0; k <= batches; k++ {
		ref := Open(Options{ShardDuration: 3600})
		refRM := NewRollups(ref)
		if err := refRM.Add(spec); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < k; i++ {
			if err := ref.WritePoint(walPoint("n1", int64(60*i), float64(i))); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := refRM.Run(runNow); err != nil {
			t.Fatal(err)
		}
		refSig[k] = tierSig(t, ref, fmt.Sprintf("reference k=%d", k))
		refRaw[k] = ref.Disk().Points - tierPoints(t, ref)
	}

	for off := int64(0); off <= int64(len(data)); off++ {
		prefix := 0
		for _, b := range rawBoundaries {
			if b <= off {
				prefix++
			}
		}
		ctx := fmt.Sprintf("offset %d (prefix %d)", off, prefix)
		dir := t.TempDir()
		if err := os.WriteFile(walSegmentPath(dir, 1), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		// Recovery replays composite records verbatim — the rollup is
		// not registered yet, so maintenance cannot re-run and re-apply.
		rec, _, err := OpenDurable(Options{ShardDuration: 3600}, WALOptions{Dir: dir, Policy: FsyncNever})
		if err != nil {
			t.Fatalf("%s: OpenDurable: %v", ctx, err)
		}
		if got := rec.Disk().Points - tierPoints(t, rec); got != int64(prefix) {
			t.Fatalf("%s: recovered %d raw points, want %d", ctx, got, prefix)
		}
		tierSig(t, rec, ctx) // duplicate-bucket check on the bare replayed state
		// Re-register and advance: watermark inference must pick up from
		// the replayed tier rows and converge on the reference state.
		recRM := NewRollups(rec)
		if err := recRM.Add(spec); err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		if _, err := recRM.Run(runNow); err != nil {
			t.Fatalf("%s: %v", ctx, err)
		}
		if got := tierSig(t, rec, ctx); got != refSig[prefix] {
			t.Fatalf("%s: tier diverged from uninterrupted run:\n got %s\nwant %s", ctx, got, refSig[prefix])
		}
		if got := rec.Disk().Points - tierPoints(t, rec); got != refRaw[prefix] {
			t.Fatalf("%s: raw points %d after advance, want %d", ctx, got, refRaw[prefix])
		}
	}
}

// tierPoints counts the points materialized in the mean tier (every
// bucket row carries mean + sum + count fields at one timestamp, and
// Disk().Points counts field samples per measurement write).
func tierPoints(t *testing.T, db *DB) int64 {
	t.Helper()
	return db.measurementPoints("Power_mean_300s")
}

// TestWALRollupPlainWriteFormat pins the compatibility contract: a
// write that triggers no rollup ops (no registered rollups at all) must
// log the plain record format, byte-identical to what a pre-tier engine
// wrote, so old logs replay and new logs without tiers stay readable by
// the old decoder.
func TestWALRollupPlainWriteFormat(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	dbA, _ := crashOpen(t, dirA, WALOptions{Policy: FsyncNever})
	dbB, _ := crashOpen(t, dirB, WALOptions{Policy: FsyncNever})
	// B has a rollup registered but the batch closes no bucket, so no
	// ops are emitted and the record must stay in the plain format.
	rm := NewRollups(dbB)
	if err := rm.Add(RollupSpec{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300}); err != nil {
		t.Fatal(err)
	}
	for _, db := range []*DB{dbA, dbB} {
		if err := db.WritePoint(walPoint("n1", 60, 42)); err != nil {
			t.Fatal(err)
		}
	}
	a, err := os.ReadFile(walSegmentPath(dirA, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(walSegmentPath(dirB, 1))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("op-free write changed the WAL record format:\n a=%x\n b=%x", a, b)
	}
}
