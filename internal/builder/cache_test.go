package builder

import (
	"context"
	"fmt"
	"testing"
	"time"

	"monster/internal/tsdb"
)

func TestCacheHitOnRepeat(t *testing.T) {
	db := seedDB(t, 4, 30)
	c := NewCache(New(db, Options{Concurrent: true}), 0)
	req := stdRequest(30)

	resp1, st1, err := c.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Fatal("first fetch reported a hit")
	}
	resp2, st2, err := c.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("second fetch missed")
	}
	if resp1 != resp2 {
		t.Fatal("hit returned a different response object")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheKeyNormalization(t *testing.T) {
	db := seedDB(t, 3, 10)
	c := NewCache(New(db, Options{}), 0)
	a := stdRequest(10)
	a.Nodes = []string{"10.101.1.2", "10.101.1.1"}
	b := stdRequest(10)
	b.Nodes = []string{"10.101.1.1", "10.101.1.2"}
	if _, _, err := c.Fetch(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if _, st, err := c.Fetch(context.Background(), b); err != nil || !st.CacheHit {
		t.Fatalf("reordered node list missed the cache: hit=%t err=%v", st.CacheHit, err)
	}
}

func TestCacheInvalidatedByWrite(t *testing.T) {
	db := seedDB(t, 2, 10)
	c := NewCache(New(db, Options{}), 0)
	req := stdRequest(10)
	if _, _, err := c.Fetch(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// A new collection cycle lands.
	err := db.WritePoint(tsdb.Point{
		Measurement: "Power",
		Tags:        tsdb.Tags{{Key: "NodeId", Value: "10.101.1.1"}, {Key: "Label", Value: "NodePower"}},
		Fields:      map[string]tsdb.Value{"Reading": tsdb.Float(250)},
		Time:        testStart.Unix() + 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := c.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("stale response served after a write")
	}
	if got := c.Stats(); got.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", got.Invalidations)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	db := seedDB(t, 2, 30)
	c := NewCache(New(db, Options{}), 2)
	mk := func(minutes int) Request {
		return Request{Start: testStart, End: testStart.Add(time.Duration(minutes) * time.Minute),
			Interval: 5 * time.Minute, Aggregate: "max"}
	}
	ctx := context.Background()
	for _, m := range []int{10, 20, 30} { // third insert evicts the 10-minute entry
		if _, _, err := c.Fetch(ctx, mk(m)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if _, st, err := c.Fetch(ctx, mk(20)); err != nil || !st.CacheHit {
		t.Fatalf("surviving entry missed: %v", err)
	}
	if _, st, err := c.Fetch(ctx, mk(10)); err != nil || st.CacheHit {
		t.Fatalf("evicted entry hit: %v", err)
	}
}

func TestCachePropagatesErrors(t *testing.T) {
	db := seedDB(t, 1, 5)
	c := NewCache(New(db, Options{}), 0)
	_, _, err := c.Fetch(context.Background(), Request{Start: testStart, End: testStart})
	if err == nil {
		t.Fatal("invalid request accepted through cache")
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("error cached: %+v", st)
	}
}

// TestCacheFillRace is the regression test for the fill-time staleness
// race: goroutine A misses at epoch E and starts its fill; a write
// lands (epoch E+1) and a concurrent Fetch of a different key flushes
// the cache, advancing the cache's epoch to E+1; A then finishes.
// Comparing the insert-time DB epoch against the cache epoch would now
// pass — both are E+1 — and A's stale epoch-E response would be cached
// and served until the next write. The fix compares against the epoch
// captured at miss time, so A's fill must not be cached.
func TestCacheFillRace(t *testing.T) {
	db := seedDB(t, 2, 10)
	c := NewCache(New(db, Options{}), 0)
	ctx := context.Background()
	req := stdRequest(10)
	other := stdRequest(5)

	newPoint := tsdb.Point{
		Measurement: "Power",
		Tags:        tsdb.Tags{{Key: "NodeId", Value: "10.101.1.1"}, {Key: "Label", Value: "NodePower"}},
		Fields:      map[string]tsdb.Value{"Reading": tsdb.Float(99999)},
		Time:        testStart.Unix() + 120,
	}
	fired := false
	c.afterFill = func() {
		if fired {
			return // only interleave with the first (goroutine-A) fill
		}
		fired = true
		// The write lands while A's fill is in flight...
		if err := db.WritePoint(newPoint); err != nil {
			t.Error(err)
			return
		}
		// ...and a second consumer fetches a different key, which
		// flushes the cache and re-synchronizes its epoch with the DB.
		done := make(chan error, 1)
		go func() {
			_, _, err := c.Fetch(ctx, other)
			done <- err
		}()
		if err := <-done; err != nil {
			t.Error(err)
		}
	}

	// Goroutine A's fill: computed against pre-write data.
	if _, st, err := c.Fetch(ctx, req); err != nil || st.CacheHit {
		t.Fatalf("priming fetch: hit=%t err=%v", st.CacheHit, err)
	}

	// The next ask for the same key must MISS (the stale fill was not
	// cached) and must see the in-flight write.
	resp, st, err := c.Fetch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("stale fill was cached and served after a concurrent write")
	}
	fresh, _, err := New(db, Options{}).Fetch(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	sawWrite := func(r *Response) bool {
		for _, n := range r.Nodes {
			for _, s := range n.Metrics {
				for _, v := range s.Values {
					if v == 99999 {
						return true
					}
				}
			}
		}
		return false
	}
	if !sawWrite(fresh) {
		t.Fatal("test bug: fresh fetch does not see the new point")
	}
	if !sawWrite(resp) {
		t.Fatal("cache served a response missing the concurrent write")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	db := seedDB(t, 4, 20)
	c := NewCache(New(db, Options{Concurrent: true}), 8)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 20; i++ {
				req := stdRequest(10 + (g+i)%3*5)
				if _, _, err := c.Fetch(context.Background(), req); err != nil {
					done <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*20 {
		t.Fatalf("lost fetches: %+v", st)
	}
}
