package builder

import (
	"context"
	"fmt"
	"testing"
	"time"

	"monster/internal/tsdb"
)

func TestCacheHitOnRepeat(t *testing.T) {
	db := seedDB(t, 4, 30)
	c := NewCache(New(db, Options{Concurrent: true}), 0)
	req := stdRequest(30)

	resp1, st1, err := c.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st1.CacheHit {
		t.Fatal("first fetch reported a hit")
	}
	resp2, st2, err := c.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit {
		t.Fatal("second fetch missed")
	}
	if resp1 != resp2 {
		t.Fatal("hit returned a different response object")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheKeyNormalization(t *testing.T) {
	db := seedDB(t, 3, 10)
	c := NewCache(New(db, Options{}), 0)
	a := stdRequest(10)
	a.Nodes = []string{"10.101.1.2", "10.101.1.1"}
	b := stdRequest(10)
	b.Nodes = []string{"10.101.1.1", "10.101.1.2"}
	if _, _, err := c.Fetch(context.Background(), a); err != nil {
		t.Fatal(err)
	}
	if _, st, err := c.Fetch(context.Background(), b); err != nil || !st.CacheHit {
		t.Fatalf("reordered node list missed the cache: hit=%t err=%v", st.CacheHit, err)
	}
}

func TestCacheInvalidatedByWrite(t *testing.T) {
	db := seedDB(t, 2, 10)
	c := NewCache(New(db, Options{}), 0)
	req := stdRequest(10)
	if _, _, err := c.Fetch(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// A new collection cycle lands.
	err := db.WritePoint(tsdb.Point{
		Measurement: "Power",
		Tags:        tsdb.Tags{{Key: "NodeId", Value: "10.101.1.1"}, {Key: "Label", Value: "NodePower"}},
		Fields:      map[string]tsdb.Value{"Reading": tsdb.Float(250)},
		Time:        testStart.Unix() + 3600,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := c.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.CacheHit {
		t.Fatal("stale response served after a write")
	}
	if got := c.Stats(); got.Invalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", got.Invalidations)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	db := seedDB(t, 2, 30)
	c := NewCache(New(db, Options{}), 2)
	mk := func(minutes int) Request {
		return Request{Start: testStart, End: testStart.Add(time.Duration(minutes) * time.Minute),
			Interval: 5 * time.Minute, Aggregate: "max"}
	}
	ctx := context.Background()
	for _, m := range []int{10, 20, 30} { // third insert evicts the 10-minute entry
		if _, _, err := c.Fetch(ctx, mk(m)); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Evictions != 1 || st.Size != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if _, st, err := c.Fetch(ctx, mk(20)); err != nil || !st.CacheHit {
		t.Fatalf("surviving entry missed: %v", err)
	}
	if _, st, err := c.Fetch(ctx, mk(10)); err != nil || st.CacheHit {
		t.Fatalf("evicted entry hit: %v", err)
	}
}

func TestCachePropagatesErrors(t *testing.T) {
	db := seedDB(t, 1, 5)
	c := NewCache(New(db, Options{}), 0)
	_, _, err := c.Fetch(context.Background(), Request{Start: testStart, End: testStart})
	if err == nil {
		t.Fatal("invalid request accepted through cache")
	}
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("error cached: %+v", st)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	db := seedDB(t, 4, 20)
	c := NewCache(New(db, Options{Concurrent: true}), 8)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		g := g
		go func() {
			for i := 0; i < 20; i++ {
				req := stdRequest(10 + (g+i)%3*5)
				if _, _, err := c.Fetch(context.Background(), req); err != nil {
					done <- fmt.Errorf("goroutine %d: %w", g, err)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != 8*20 {
		t.Fatalf("lost fetches: %+v", st)
	}
}
