package builder

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"monster/internal/clock"
)

// Client fetches from a remote Metrics Builder API — the consumer side
// of the paper's Fig 17–19 transport measurements.
type Client struct {
	// BaseURL is the API root, e.g. "http://localhost:8080".
	BaseURL string
	// Compress asks the server for zlib transport compression
	// (Accept-Encoding: deflate).
	Compress bool
	// Level overrides the server-side compression level (1–9; 0 lets
	// the server pick its default). Only meaningful with Compress.
	Level int
	// HTTPClient overrides http.DefaultClient.
	HTTPClient *http.Client
	// Clock supplies time for TransferTime measurement. Nil selects
	// the wall clock.
	Clock clock.Clock
}

func (c *Client) clk() clock.Clock {
	if c.Clock != nil {
		return c.Clock
	}
	return clock.NewReal()
}

// FetchResult is one fetched response plus the transport accounting
// the experiments compare: bytes on the wire vs decoded body bytes,
// and wall-clock transfer time.
type FetchResult struct {
	Response *Response
	// Stats is the server-side breakdown (from the X-Monster-Stats
	// header); zero if the server did not send one.
	Stats Stats
	// WireBytes is what crossed the network (compressed when Compress).
	WireBytes int64
	// BodyBytes is the decoded JSON size.
	BodyBytes int64
	// TransferTime covers request start to body fully read.
	TransferTime time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Fetch performs one request against the remote API.
func (c *Client) Fetch(ctx context.Context, req Request) (*FetchResult, error) {
	q := url.Values{}
	q.Set("start", strconv.FormatInt(req.Start.Unix(), 10))
	q.Set("end", strconv.FormatInt(req.End.Unix(), 10))
	if req.Interval > 0 {
		q.Set("interval", strconv.FormatInt(int64(req.Interval.Seconds()), 10))
	}
	if req.Aggregate != "" {
		q.Set("agg", req.Aggregate)
	}
	if len(req.Nodes) > 0 {
		q.Set("nodes", strings.Join(req.Nodes, ","))
	}
	if len(req.Metrics) > 0 {
		names := make([]string, len(req.Metrics))
		for i, m := range req.Metrics {
			names[i] = m.Name()
		}
		q.Set("metrics", strings.Join(names, ","))
	}
	if req.IncludeJobs {
		q.Set("jobs", "true")
	}
	if c.Compress && c.Level > 0 {
		q.Set("zlevel", strconv.Itoa(c.Level))
	}

	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimSuffix(c.BaseURL, "/")+"/v1/metrics?"+q.Encode(), nil)
	if err != nil {
		return nil, fmt.Errorf("builder: client: %w", err)
	}
	// Explicit either way: it disables net/http's transparent gzip, so
	// WireBytes is what actually crossed the wire.
	if c.Compress {
		hreq.Header.Set("Accept-Encoding", "deflate")
	} else {
		hreq.Header.Set("Accept-Encoding", "identity")
	}

	clk := c.clk()
	t0 := clk.Now()
	hresp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, fmt.Errorf("builder: client: %w", err)
	}
	defer hresp.Body.Close()
	wire, err := io.ReadAll(hresp.Body)
	if err != nil {
		return nil, fmt.Errorf("builder: client: read body: %w", err)
	}
	transfer := clk.Now().Sub(t0)

	if hresp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(wire, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("builder: client: server returned %d: %s", hresp.StatusCode, e.Error)
		}
		return nil, fmt.Errorf("builder: client: server returned %d", hresp.StatusCode)
	}

	body := wire
	if hresp.Header.Get("Content-Encoding") == "deflate" {
		if body, err = Decompress(wire); err != nil {
			return nil, err
		}
	}
	resp, err := Decode(body)
	if err != nil {
		return nil, err
	}
	res := &FetchResult{
		Response:     resp,
		WireBytes:    int64(len(wire)),
		BodyBytes:    int64(len(body)),
		TransferTime: transfer,
	}
	if hdr := hresp.Header.Get(StatsHeader); hdr != "" {
		_ = json.Unmarshal([]byte(hdr), &res.Stats)
	}
	return res, nil
}
