package builder

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"monster/internal/tsdb"
)

var testStart = time.Date(2020, 4, 20, 12, 0, 0, 0, time.UTC)

// seedDB writes `minutes` of per-minute samples for every default
// metric on `nodes` nodes, plus job correlation data, directly into a
// fresh storage engine (no pipeline dependency).
func seedDB(t testing.TB, nodes, minutes int) *tsdb.DB {
	t.Helper()
	db := tsdb.Open(tsdb.Options{})
	var pts []tsdb.Point
	for i := 0; i < minutes; i++ {
		ts := testStart.Unix() + int64(i*60)
		for n := 1; n <= nodes; n++ {
			node := fmt.Sprintf("10.101.1.%d", n)
			for _, m := range DefaultMetrics() {
				pts = append(pts, tsdb.Point{
					Measurement: m.Measurement,
					Tags:        tsdb.Tags{{Key: "NodeId", Value: node}, {Key: "Label", Value: m.Label}},
					Fields:      map[string]tsdb.Value{"Reading": tsdb.Float(float64(100*n + i))},
					Time:        ts,
				})
			}
			pts = append(pts, tsdb.Point{
				Measurement: "NodeJobs",
				Tags:        tsdb.Tags{{Key: "NodeId", Value: node}},
				Fields:      map[string]tsdb.Value{"JobList": tsdb.Str("['1000.1', '1001.1']")},
				Time:        ts,
			})
		}
		pts = append(pts, tsdb.Point{
			Measurement: "JobsInfo",
			Tags:        tsdb.Tags{{Key: "JobId", Value: "1000.1"}},
			Fields: map[string]tsdb.Value{
				"User": tsdb.Str("alice"), "JobName": tsdb.Str("sim"), "Queue": tsdb.Str("omni"),
				"SubmitTime": tsdb.Int(testStart.Unix() - 300), "StartTime": tsdb.Int(testStart.Unix()),
				"Slots": tsdb.Int(36), "NodeCount": tsdb.Int(1),
			},
			Time: ts,
		})
	}
	// A finished job: FinishTime appears only on the last sample.
	pts = append(pts, tsdb.Point{
		Measurement: "JobsInfo",
		Tags:        tsdb.Tags{{Key: "JobId", Value: "1001.1"}},
		Fields: map[string]tsdb.Value{
			"User": tsdb.Str("bob"), "JobName": tsdb.Str("array"), "Queue": tsdb.Str("omni"),
			"SubmitTime": tsdb.Int(testStart.Unix()), "StartTime": tsdb.Int(testStart.Unix() + 60),
			"FinishTime": tsdb.Int(testStart.Unix() + 600), "Estimated": tsdb.Bool(true),
			"Slots": tsdb.Int(1), "NodeCount": tsdb.Int(1),
		},
		Time: testStart.Unix() + int64((minutes-1)*60),
	})
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	return db
}

func stdRequest(minutes int) Request {
	return Request{
		Start:     testStart,
		End:       testStart.Add(time.Duration(minutes) * time.Minute),
		Interval:  5 * time.Minute,
		Aggregate: "max",
	}
}

// TestNaiveAndBatchedPlansAgree is the core correctness property of
// the optimization ladder: the optimized plan must return exactly what
// the previous builder returned.
func TestNaiveAndBatchedPlansAgree(t *testing.T) {
	db := seedDB(t, 7, 30)
	req := stdRequest(30)
	req.IncludeJobs = true

	naive := New(db, Options{Concurrent: false})
	batched := New(db, Options{Concurrent: true, ChunkNodes: 3})

	respN, stN, err := naive.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	respB, stB, err := batched.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(respN, respB) {
		t.Fatalf("plans disagree:\nnaive   %+v\nbatched %+v", respN, respB)
	}
	// 7 nodes × 10 metrics + 2 jobs queries vs 3 measurements × 3 chunks + 2.
	if stN.Queries != 72 {
		t.Fatalf("naive queries = %d, want 72", stN.Queries)
	}
	if stB.Queries != 11 {
		t.Fatalf("batched queries = %d, want 11", stB.Queries)
	}
	if stN.Points != stB.Points || stN.Series != stB.Series {
		t.Fatalf("stats disagree: naive %d/%d batched %d/%d", stN.Series, stN.Points, stB.Series, stB.Points)
	}
}

func TestFetchShape(t *testing.T) {
	db := seedDB(t, 4, 60)
	b := New(db, Options{Concurrent: true})
	resp, st, err := b.Fetch(context.Background(), stdRequest(60))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(resp.Nodes))
	}
	if resp.Nodes[0].NodeID != "10.101.1.1" {
		t.Fatalf("nodes not sorted: %q first", resp.Nodes[0].NodeID)
	}
	for _, m := range DefaultMetrics() {
		sd, ok := resp.Nodes[2].Metrics[m.Name()]
		if !ok {
			t.Fatalf("metric %s missing", m.Name())
		}
		// End-exclusive window: exactly 12 five-minute buckets per hour.
		if len(sd.Times) != 12 {
			t.Fatalf("%s buckets = %d, want 12", m.Name(), len(sd.Times))
		}
		// max over minutes [25,29] of node 3 is 300+29.
		if sd.Values[5] != 329 {
			t.Fatalf("%s bucket 5 = %v, want 329", m.Name(), sd.Values[5])
		}
	}
	if st.Nodes != 4 || st.Series != 40 || st.Points != 480 {
		t.Fatalf("stats = %+v", st)
	}
	if st.TSDB.PointsScanned == 0 {
		t.Fatal("no storage work recorded")
	}
}

func TestFetchRawSamples(t *testing.T) {
	db := seedDB(t, 2, 10)
	b := New(db, Options{Concurrent: true})
	req := stdRequest(10)
	req.Interval = 0 // raw
	resp, _, err := b.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	sd := resp.Nodes[0].Metrics["Power/NodePower"]
	if len(sd.Times) != 10 {
		t.Fatalf("raw samples = %d, want 10", len(sd.Times))
	}
	if resp.Interval != 0 || resp.Aggregate != "" {
		t.Fatalf("raw response mislabeled: interval=%d agg=%q", resp.Interval, resp.Aggregate)
	}
	for i := 1; i < len(sd.Times); i++ {
		if sd.Times[i] <= sd.Times[i-1] {
			t.Fatal("raw samples not time-ascending")
		}
	}
}

func TestFetchNodeAndMetricSubsets(t *testing.T) {
	db := seedDB(t, 6, 20)
	for _, concurrent := range []bool{false, true} {
		b := New(db, Options{Concurrent: concurrent, ChunkNodes: 2})
		req := stdRequest(20)
		req.Nodes = []string{"10.101.1.5", "10.101.1.2"}
		req.Metrics = []Metric{{Measurement: "Power", Label: "NodePower"}}
		resp, st, err := b.Fetch(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Nodes) != 2 || resp.Nodes[0].NodeID != "10.101.1.2" {
			t.Fatalf("concurrent=%t: nodes = %+v", concurrent, resp.Nodes)
		}
		if len(resp.Nodes[0].Metrics) != 1 {
			t.Fatalf("concurrent=%t: metrics = %d, want 1", concurrent, len(resp.Nodes[0].Metrics))
		}
		if st.Series != 2 {
			t.Fatalf("concurrent=%t: series = %d", concurrent, st.Series)
		}
	}
}

func TestFetchJobsData(t *testing.T) {
	db := seedDB(t, 3, 15)
	b := New(db, Options{})
	req := stdRequest(15)
	req.IncludeJobs = true
	resp, _, err := b.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(resp.Jobs))
	}
	running, finished := resp.Jobs[0], resp.Jobs[1]
	if running.JobID != "1000.1" || running.User != "alice" || running.Slots != 36 || running.FinishTime != 0 {
		t.Fatalf("running job = %+v", running)
	}
	if finished.JobID != "1001.1" || finished.FinishTime == 0 || !finished.Estimated {
		t.Fatalf("finished job = %+v", finished)
	}
	if len(resp.NodeJobs) != 3*15 {
		t.Fatalf("node-jobs samples = %d, want 45", len(resp.NodeJobs))
	}
	if got := resp.NodeJobs[0].Jobs; len(got) != 2 || got[0] != "1000.1" {
		t.Fatalf("job list = %v", got)
	}
}

func TestFetchValidation(t *testing.T) {
	db := seedDB(t, 1, 5)
	b := New(db, Options{})
	cases := []Request{
		{Start: testStart, End: testStart},                                         // end == start
		{Start: testStart, End: testStart.Add(-time.Hour)},                         // end < start
		{Start: testStart, End: testStart.Add(time.Hour), Interval: -time.Minute},  // negative interval
		{Start: testStart, End: testStart.Add(time.Hour), Aggregate: "percentile"}, // unknown aggregate
		{Start: testStart, End: testStart.Add(time.Hour), Metrics: []Metric{{}}},   // empty metric
		{}, // no window at all
	}
	for i, req := range cases {
		_, _, err := b.Fetch(context.Background(), req)
		if err == nil {
			t.Errorf("case %d: invalid request accepted", i)
			continue
		}
		var reqErr *RequestError
		if !errors.As(err, &reqErr) {
			t.Errorf("case %d: error %v is not a RequestError", i, err)
		}
	}
}

func TestFetchContextCancellation(t *testing.T) {
	db := seedDB(t, 16, 30)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: both paths must notice at a task boundary
	for _, concurrent := range []bool{false, true} {
		b := New(db, Options{Concurrent: concurrent})
		if _, _, err := b.Fetch(ctx, stdRequest(30)); err != context.Canceled {
			t.Fatalf("concurrent=%t: err = %v, want context.Canceled", concurrent, err)
		}
	}
}

func TestDefaultAggregateIsMean(t *testing.T) {
	db := seedDB(t, 1, 10)
	b := New(db, Options{})
	req := stdRequest(10)
	req.Aggregate = ""
	resp, _, err := b.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Aggregate != "mean" {
		t.Fatalf("aggregate = %q", resp.Aggregate)
	}
	// mean over minutes [0,4] of node 1 is 100 + (0+1+2+3+4)/5 = 102.
	if v := resp.Nodes[0].Metrics["Power/NodePower"].Values[0]; v != 102 {
		t.Fatalf("mean = %v, want 102", v)
	}
}

func TestParseMetric(t *testing.T) {
	m, err := ParseMetric("Power/NodePower")
	if err != nil || m.Measurement != "Power" || m.Label != "NodePower" {
		t.Fatalf("parse = %+v, %v", m, err)
	}
	for _, bad := range []string{"", "Power", "/NodePower", "Power/"} {
		if _, err := ParseMetric(bad); err == nil {
			t.Errorf("ParseMetric(%q) accepted", bad)
		}
	}
	if got := m.Name(); got != "Power/NodePower" {
		t.Fatalf("name = %q", got)
	}
}

func TestRequestKeyCanonical(t *testing.T) {
	a := Request{Start: testStart, End: testStart.Add(time.Hour), Interval: 5 * time.Minute,
		Nodes: []string{"b", "a"}, Metrics: []Metric{{Measurement: "UGE", Label: "CPUUsage"}, {Measurement: "Power", Label: "NodePower"}}}
	b := Request{Start: testStart, End: testStart.Add(time.Hour), Interval: 5 * time.Minute, Aggregate: "mean",
		Nodes: []string{"a", "b"}, Metrics: []Metric{{Measurement: "Power", Label: "NodePower"}, {Measurement: "UGE", Label: "CPUUsage"}}}
	if a.Key() != b.Key() {
		t.Fatalf("equivalent requests key differently:\n%s\n%s", a.Key(), b.Key())
	}
	c := a
	c.IncludeJobs = true
	if c.Key() == a.Key() {
		t.Fatal("jobs flag not in key")
	}
}
