package builder

import (
	"bytes"
	"context"
	"reflect"
	"strings"
	"testing"
	"time"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	db := seedDB(t, 3, 20)
	b := New(db, Options{Concurrent: true})
	req := stdRequest(20)
	req.IncludeJobs = true
	resp, _, err := b.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	data, err := Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resp, back) {
		t.Fatal("JSON round trip changed the response")
	}
	if _, err := Decode([]byte("{not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestCompressRoundTripAllLevels(t *testing.T) {
	data := []byte(strings.Repeat("Reading: 273.15, Node: 10.101.1.42; ", 2000))
	for level := 0; level <= 9; level++ {
		comp, err := Compress(data, level)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if len(comp) >= len(data) {
			t.Fatalf("level %d did not shrink: %d -> %d", level, len(data), len(comp))
		}
		back, err := Decompress(comp)
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if !bytes.Equal(back, data) {
			t.Fatalf("level %d corrupted the data", level)
		}
	}
}

func TestCompressLevelValidation(t *testing.T) {
	for _, level := range []int{-1, 10, 100} {
		if _, err := Compress([]byte("x"), level); err == nil {
			t.Errorf("level %d accepted", level)
		}
	}
}

func TestCompressReusesPooledWriters(t *testing.T) {
	// Two sequential compressions at the same level must both round
	// trip — a stale pooled writer would corrupt the second stream.
	data := []byte(strings.Repeat("abcdef", 500))
	for i := 0; i < 3; i++ {
		comp, err := Compress(data, 6)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decompress(comp)
		if err != nil || !bytes.Equal(back, data) {
			t.Fatalf("iteration %d: %v", i, err)
		}
	}
}

func TestDecompressRejectsGarbage(t *testing.T) {
	if _, err := Decompress([]byte("definitely not zlib")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestCompressionRatioOnRealResponse(t *testing.T) {
	db := seedDB(t, 8, 120)
	b := New(db, Options{Concurrent: true})
	req := stdRequest(120)
	req.Interval = time.Minute // 1-minute buckets: lots of repetitive JSON
	resp, _, err := b.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := Compress(raw, 0)
	if err != nil {
		t.Fatal(err)
	}
	ratio := CompressionRatio(raw, comp)
	if ratio <= 0 || ratio > 0.35 {
		t.Fatalf("ratio = %.3f (raw %d, compressed %d) — paper reports ~0.05 on monitoring JSON", ratio, len(raw), len(comp))
	}
	if CompressionRatio(nil, comp) != 0 {
		t.Fatal("empty raw ratio not zero")
	}
}
