package builder

import (
	"sort"
	"strings"

	"monster/internal/tsdb"
)

// Response is the builder's merged answer: one JSON document covering
// every requested node and metric, plus (with IncludeJobs) the job
// records and node→jobs correlations needed for consumer-side joins.
type Response struct {
	Start     int64            `json:"start"`
	End       int64            `json:"end"`
	Interval  int64            `json:"interval"` // seconds; 0 = raw samples
	Aggregate string           `json:"aggregate,omitempty"`
	Nodes     []NodeSeries     `json:"nodes"`
	Jobs      []JobRecord      `json:"jobs,omitempty"`
	NodeJobs  []NodeJobsRecord `json:"node_jobs,omitempty"`
}

// NodeSeries is one node's slice of the response, keyed by
// Metric.Name() ("Measurement/Label").
type NodeSeries struct {
	NodeID  string                `json:"node_id"`
	Metrics map[string]SeriesData `json:"metrics"`
}

// SeriesData is one downsampled (or raw) series as parallel arrays —
// the compact column layout that makes the JSON compress so well.
type SeriesData struct {
	Times  []int64   `json:"times"`
	Values []float64 `json:"values"`
}

// JobRecord is the latest stored JobsInfo state of one job in the
// window.
type JobRecord struct {
	JobID      string `json:"job_id"`
	User       string `json:"user"`
	JobName    string `json:"job_name,omitempty"`
	Queue      string `json:"queue,omitempty"`
	SubmitTime int64  `json:"submit_time"`
	StartTime  int64  `json:"start_time"`
	FinishTime int64  `json:"finish_time,omitempty"` // 0 while running
	Estimated  bool   `json:"estimated,omitempty"`
	Slots      int64  `json:"slots"`
	NodeCount  int64  `json:"node_count"`
}

// NodeJobsRecord is one node→jobs correlation sample.
type NodeJobsRecord struct {
	NodeID string   `json:"node_id"`
	Time   int64    `json:"time"`
	Jobs   []string `json:"jobs"`
}

// newResponse pre-allocates one NodeSeries per planned node, sorted,
// so merge can append by index without re-sorting afterwards.
func newResponse(req *Request, nodes []string) (*Response, map[string]int) {
	resp := &Response{
		Start:    req.Start.Unix(),
		End:      req.End.Unix(),
		Interval: int64(req.Interval.Seconds()),
		Nodes:    make([]NodeSeries, len(nodes)),
	}
	if req.Interval > 0 {
		resp.Aggregate = req.aggregate()
	}
	idx := make(map[string]int, len(nodes))
	for i, n := range nodes {
		resp.Nodes[i] = NodeSeries{NodeID: n, Metrics: make(map[string]SeriesData)}
		idx[n] = i
	}
	return resp, idx
}

// mergeResult folds one query result into the response. Every
// (node, metric) series appears in exactly one query of the plan and
// rows arrive time-ascending, so series are assigned wholesale — no
// re-sort, no dedup (the merge cost the paper's Fig 11 breakdown
// charges to "processing").
func mergeResult(resp *Response, idx map[string]int, res *tsdb.Result) (series, points int) {
	for _, s := range res.Series {
		node, _ := s.Tags.Get("NodeId")
		label, _ := s.Tags.Get("Label")
		i, ok := idx[node]
		if !ok || label == "" {
			continue
		}
		sd := SeriesData{
			Times:  make([]int64, 0, len(s.Rows)),
			Values: make([]float64, 0, len(s.Rows)),
		}
		for _, row := range s.Rows {
			if len(row.Values) == 0 || (len(row.Present) > 0 && !row.Present[0]) {
				continue
			}
			v, ok := row.Values[0].AsFloat()
			if !ok {
				continue
			}
			sd.Times = append(sd.Times, row.Time)
			sd.Values = append(sd.Values, v)
		}
		if len(sd.Times) == 0 {
			continue
		}
		resp.Nodes[i].Metrics[s.Name+"/"+label] = sd
		series++
		points += len(sd.Times)
	}
	return series, points
}

// jobsInfoColumns is the projection of the jobs query, in order.
var jobsInfoColumns = []string{
	"User", "JobName", "Queue", "SubmitTime", "StartTime",
	"FinishTime", "Estimated", "Slots", "NodeCount",
}

// mergeJobs folds a raw JobsInfo query result (grouped by JobId) into
// job records. Job rows are written every cycle while the job is
// visible and once more when it finishes, so the latest present value
// per column wins.
func mergeJobs(resp *Response, res *tsdb.Result) {
	for _, s := range res.Series {
		jobID, _ := s.Tags.Get("JobId")
		if jobID == "" {
			continue
		}
		rec := JobRecord{JobID: jobID}
		for _, row := range s.Rows {
			for col, v := range row.Values {
				if col >= len(jobsInfoColumns) || (len(row.Present) > col && !row.Present[col]) {
					continue
				}
				switch jobsInfoColumns[col] {
				case "User":
					rec.User = v.S
				case "JobName":
					rec.JobName = v.S
				case "Queue":
					rec.Queue = v.S
				case "SubmitTime":
					rec.SubmitTime = v.I
				case "StartTime":
					rec.StartTime = v.I
				case "FinishTime":
					rec.FinishTime = v.I
				case "Estimated":
					rec.Estimated = v.B
				case "Slots":
					rec.Slots = v.I
				case "NodeCount":
					rec.NodeCount = v.I
				}
			}
		}
		resp.Jobs = append(resp.Jobs, rec)
	}
	sort.Slice(resp.Jobs, func(i, j int) bool { return resp.Jobs[i].JobID < resp.Jobs[j].JobID })
}

// mergeNodeJobs folds a raw NodeJobs query result (grouped by NodeId)
// into correlation samples, decoding the stringified job list the
// collector stores (InfluxDB has no array field type — Fig 5).
func mergeNodeJobs(resp *Response, res *tsdb.Result) {
	for _, s := range res.Series {
		node, _ := s.Tags.Get("NodeId")
		if node == "" {
			continue
		}
		for _, row := range s.Rows {
			if len(row.Values) == 0 || (len(row.Present) > 0 && !row.Present[0]) {
				continue
			}
			jobs := parseJobList(row.Values[0].S)
			if len(jobs) == 0 {
				continue
			}
			resp.NodeJobs = append(resp.NodeJobs, NodeJobsRecord{NodeID: node, Time: row.Time, Jobs: jobs})
		}
	}
	sort.Slice(resp.NodeJobs, func(i, j int) bool {
		a, b := resp.NodeJobs[i], resp.NodeJobs[j]
		if a.NodeID != b.NodeID {
			return a.NodeID < b.NodeID
		}
		return a.Time < b.Time
	})
}

// parseJobList decodes the collector's "['key1', 'key2']" encoding.
// Deliberately local: the builder must not depend on the collector.
func parseJobList(s string) []string {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.Trim(strings.TrimSpace(p), "'")
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}
