package builder

import (
	"context"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"sync"
	"time"

	"monster/internal/clock"
	"monster/internal/tsdb"
)

// Options configures a Builder.
type Options struct {
	// Concurrent selects the optimized query plan: metrics batched by
	// measurement, nodes grouped into multi-node regex predicates, and
	// the batch executed on a bounded worker pool. False reproduces the
	// previous builder — one query per (node, metric), serially — the
	// baseline whose Fig 10 response times motivated the redesign.
	Concurrent bool
	// Workers bounds the concurrent fan-out. Zero means 8 (the pool
	// size the paper's evaluation converged on in Fig 15).
	Workers int
	// ChunkNodes is how many nodes one batched query covers. Zero
	// means 16.
	ChunkNodes int
	// Clock supplies time for the per-stage Stats breakdown. Nil
	// selects the wall clock; the DES experiments inject a virtual
	// clock so replayed runs stay deterministic.
	Clock clock.Clock
}

func (o *Options) workers() int {
	if o.Workers <= 0 {
		return 8
	}
	return o.Workers
}

func (o *Options) chunkNodes() int {
	if o.ChunkNodes <= 0 {
		return 16
	}
	return o.ChunkNodes
}

// Stats decomposes one Fetch into the quantities the paper's Fig 11
// breakdown reports (query vs processing) plus transport accounting
// filled in by the HTTP API.
type Stats struct {
	Queries int             `json:"queries"` // InfluxQL statements executed
	TSDB    tsdb.QueryStats `json:"tsdb"`    // storage-engine work
	Nodes   int             `json:"nodes"`
	Series  int             `json:"series"`
	Points  int             `json:"points"`

	BytesRaw        int64 `json:"bytes_raw,omitempty"`        // encoded JSON size
	BytesCompressed int64 `json:"bytes_compressed,omitempty"` // zlib transport size

	PlanTime     time.Duration `json:"plan_ns"`
	QueryTime    time.Duration `json:"query_ns"`
	MergeTime    time.Duration `json:"merge_ns"`
	EncodeTime   time.Duration `json:"encode_ns,omitempty"`
	CompressTime time.Duration `json:"compress_ns,omitempty"`
	Total        time.Duration `json:"total_ns"`

	CacheHit bool `json:"cache_hit,omitempty"`
}

// Builder generates, executes, and merges the storage queries that
// answer one consumer Request.
type Builder struct {
	db    *tsdb.DB
	opts  Options
	clock clock.Clock
}

// New builds a Metrics Builder over a storage engine.
func New(db *tsdb.DB, opts Options) *Builder {
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	return &Builder{db: db, opts: opts, clock: clk}
}

// DB exposes the underlying storage engine (the HTTP API's /v1/stats
// endpoint reports its counters).
func (b *Builder) DB() *tsdb.DB { return b.db }

// task is one planned query and where its answer lands.
type task struct {
	stmt string
}

// Fetch answers one request: plan the queries, execute them (serially
// or on the worker pool), and merge the results into a Response.
func (b *Builder) Fetch(ctx context.Context, req Request) (*Response, Stats, error) {
	var st Stats
	t0 := b.clock.Now()
	if err := req.Validate(); err != nil {
		return nil, st, err
	}

	// Plan: resolve the node set and generate the statements.
	nodes := b.resolveNodes(&req)
	var tasks []task
	if b.opts.Concurrent {
		tasks = b.planBatched(&req, nodes)
	} else {
		tasks = b.planNaive(&req, nodes)
	}
	st.Nodes = len(nodes)
	st.PlanTime = b.clock.Now().Sub(t0)

	// Query: execute the plan.
	tq := b.clock.Now()
	results := make([]*tsdb.Result, len(tasks))
	var err error
	if b.opts.Concurrent {
		err = b.runPool(ctx, tasks, results)
	} else {
		err = b.runSerial(ctx, tasks, results)
	}
	if err != nil {
		return nil, st, err
	}
	st.Queries = len(tasks)
	st.QueryTime = b.clock.Now().Sub(tq)

	// Merge: fold every result into the single response document.
	tm := b.clock.Now()
	resp, idx := newResponse(&req, nodes)
	for _, res := range results {
		if res == nil {
			continue
		}
		st.TSDB.Add(res.Stats)
		series, points := mergeResult(resp, idx, res)
		st.Series += series
		st.Points += points
	}
	if req.IncludeJobs {
		if err := b.fetchJobs(ctx, &req, resp, &st); err != nil {
			return nil, st, err
		}
	}
	now := b.clock.Now()
	st.MergeTime = now.Sub(tm)
	st.Total = now.Sub(t0)
	return resp, st, nil
}

// resolveNodes returns the sorted node set the response covers: the
// requested subset, or every NodeId present in the requested
// measurements.
func (b *Builder) resolveNodes(req *Request) []string {
	if len(req.Nodes) > 0 {
		nodes := append([]string(nil), req.Nodes...)
		sort.Strings(nodes)
		return nodes
	}
	seen := make(map[string]bool)
	var nodes []string
	for _, m := range req.metrics() {
		for _, v := range b.db.TagValues(m.Measurement, "NodeId") {
			if !seen[v] {
				seen[v] = true
				nodes = append(nodes, v)
			}
		}
	}
	sort.Strings(nodes)
	return nodes
}

// planNaive reproduces the previous builder: one statement per
// (node, metric) pair — 64 nodes × 10 metrics = 640 queries, each
// paying its own parse, index-match, and shard-scan setup.
func (b *Builder) planNaive(req *Request, nodes []string) []task {
	metrics := req.metrics()
	tasks := make([]task, 0, len(nodes)*len(metrics))
	for _, node := range nodes {
		for _, m := range metrics {
			where := fmt.Sprintf(`"NodeId" = '%s' AND "Label" = '%s' AND %s`, node, m.Label, timeBounds(req))
			tasks = append(tasks, task{stmt: selectStmt(req, m.Measurement, where)})
		}
	}
	return tasks
}

// planBatched is the optimized plan: metrics grouped by measurement,
// nodes grouped into chunks, one statement per (measurement, chunk)
// with a multi-node regex predicate — 64 nodes × 10 metrics collapses
// to ~12 queries.
func (b *Builder) planBatched(req *Request, nodes []string) []task {
	byMeasurement := make(map[string][]string)
	var order []string
	for _, m := range req.metrics() {
		if _, ok := byMeasurement[m.Measurement]; !ok {
			order = append(order, m.Measurement)
		}
		byMeasurement[m.Measurement] = append(byMeasurement[m.Measurement], m.Label)
	}
	chunk := b.opts.chunkNodes()
	var tasks []task
	for _, meas := range order {
		labels := byMeasurement[meas]
		var labelCond string
		if len(labels) == 1 {
			labelCond = fmt.Sprintf(`"Label" = '%s'`, labels[0])
		} else {
			labelCond = fmt.Sprintf(`"Label" =~ /%s/`, alternation(labels))
		}
		for lo := 0; lo < len(nodes); lo += chunk {
			hi := lo + chunk
			if hi > len(nodes) {
				hi = len(nodes)
			}
			where := fmt.Sprintf(`"NodeId" =~ /%s/ AND %s AND %s`,
				alternation(nodes[lo:hi]), labelCond, timeBounds(req))
			tasks = append(tasks, task{stmt: selectStmt(req, meas, where)})
		}
	}
	return tasks
}

// alternation renders values as an anchored regex alternation,
// ^(a|b|c)$, quoting regex metacharacters and the / delimiter.
func alternation(values []string) string {
	quoted := make([]string, len(values))
	for i, v := range values {
		quoted[i] = strings.ReplaceAll(regexp.QuoteMeta(v), "/", `\/`)
	}
	return "^(" + strings.Join(quoted, "|") + ")$"
}

// timeBounds renders the end-exclusive window predicate.
func timeBounds(req *Request) string {
	return fmt.Sprintf("time >= %d AND time < %d", req.Start.Unix(), req.End.Unix())
}

// selectStmt renders the projection and grouping shared by both plans.
// Every statement groups by NodeId and Label so merge sees uniform
// per-(node, metric) series regardless of plan shape.
func selectStmt(req *Request, measurement, where string) string {
	if req.Interval <= 0 {
		return fmt.Sprintf(`SELECT "Reading" FROM %q WHERE %s GROUP BY "NodeId", "Label"`, measurement, where)
	}
	return fmt.Sprintf(`SELECT %s("Reading") FROM %q WHERE %s GROUP BY time(%ds), "NodeId", "Label"`,
		req.aggregate(), measurement, where, int64(req.Interval.Seconds()))
}

// runSerial executes tasks one at a time — the previous builder's
// synchronous loop.
func (b *Builder) runSerial(ctx context.Context, tasks []task, results []*tsdb.Result) error {
	for i, t := range tasks {
		if err := ctx.Err(); err != nil {
			return err
		}
		res, err := b.db.Query(t.stmt)
		if err != nil {
			return fmt.Errorf("builder: query %d: %w", i, err)
		}
		results[i] = res
	}
	return nil
}

// runPool executes tasks on a bounded worker pool. Queries run under
// the storage engine's read lock, so they proceed concurrently with
// each other (the Fig 15 fan-out).
func (b *Builder) runPool(ctx context.Context, tasks []task, results []*tsdb.Result) error {
	workers := b.opts.workers()
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		return b.runSerial(ctx, tasks, results)
	}
	work := make(chan int)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if err := ctx.Err(); err != nil {
					setErr(err)
					continue // drain
				}
				res, err := b.db.Query(tasks[i].stmt)
				if err != nil {
					setErr(fmt.Errorf("builder: query %d: %w", i, err))
					continue
				}
				results[i] = res
			}
		}()
	}
	for i := range tasks {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}

// fetchJobs runs the two correlation queries (JobsInfo grouped by
// JobId, NodeJobs grouped by NodeId) and merges them. Jobs are global:
// a node-subset request still returns every job in the window, because
// the consumer-side join needs the full job table.
func (b *Builder) fetchJobs(ctx context.Context, req *Request, resp *Response, st *Stats) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	cols := make([]string, len(jobsInfoColumns))
	for i, c := range jobsInfoColumns {
		cols[i] = fmt.Sprintf("%q", c)
	}
	jobsStmt := fmt.Sprintf(`SELECT %s FROM "JobsInfo" WHERE %s GROUP BY "JobId"`,
		strings.Join(cols, ", "), timeBounds(req))
	res, err := b.db.Query(jobsStmt)
	if err != nil {
		return fmt.Errorf("builder: jobs query: %w", err)
	}
	st.Queries++
	st.TSDB.Add(res.Stats)
	mergeJobs(resp, res)

	if err := ctx.Err(); err != nil {
		return err
	}
	njStmt := fmt.Sprintf(`SELECT "JobList" FROM "NodeJobs" WHERE %s GROUP BY "NodeId"`, timeBounds(req))
	res, err = b.db.Query(njStmt)
	if err != nil {
		return fmt.Errorf("builder: node-jobs query: %w", err)
	}
	st.Queries++
	st.TSDB.Add(res.Stats)
	mergeNodeJobs(resp, res)
	return nil
}
