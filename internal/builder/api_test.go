package builder

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"monster/internal/tsdb"
)

func apiServer(t *testing.T, nodes, minutes int) (*httptest.Server, *Builder) {
	t.Helper()
	db := seedDB(t, nodes, minutes)
	b := New(db, Options{Concurrent: true})
	srv := httptest.NewServer(NewAPI(b))
	t.Cleanup(srv.Close)
	return srv, b
}

// TestAPIRoundTrip drives Client -> httptest.Server -> API -> Builder
// and checks the response matches a direct Fetch, compressed and not.
func TestAPIRoundTrip(t *testing.T) {
	srv, b := apiServer(t, 5, 60)
	req := stdRequest(60)
	req.IncludeJobs = true
	direct, _, err := b.Fetch(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	for _, compress := range []bool{false, true} {
		client := &Client{BaseURL: srv.URL, Compress: compress}
		res, err := client.Fetch(context.Background(), req)
		if err != nil {
			t.Fatalf("compress=%t: %v", compress, err)
		}
		if !reflect.DeepEqual(res.Response, direct) {
			t.Fatalf("compress=%t: remote response differs from direct fetch", compress)
		}
		if compress {
			if res.WireBytes >= res.BodyBytes {
				t.Fatalf("compression did not shrink transport: %d vs %d", res.WireBytes, res.BodyBytes)
			}
			if res.Stats.BytesCompressed == 0 || res.Stats.BytesCompressed != res.WireBytes {
				t.Fatalf("stats bytes = %+v, wire %d", res.Stats, res.WireBytes)
			}
		} else if res.WireBytes != res.BodyBytes {
			t.Fatalf("identity transfer rewrote body: %d vs %d", res.WireBytes, res.BodyBytes)
		}
		if res.Stats.Queries == 0 || res.Stats.BytesRaw != res.BodyBytes {
			t.Fatalf("compress=%t: stats header missing or wrong: %+v", compress, res.Stats)
		}
		if res.TransferTime <= 0 {
			t.Fatal("no transfer time measured")
		}
	}
}

func TestAPIParameterForms(t *testing.T) {
	srv, _ := apiServer(t, 3, 30)
	start, end := testStart.Unix(), testStart.Add(30*time.Minute).Unix()
	urls := []string{
		// Epoch seconds + Go duration.
		fmt.Sprintf("%s/v1/metrics?start=%d&end=%d&interval=5m&agg=max", srv.URL, start, end),
		// RFC3339 + bare-seconds interval + subsets.
		fmt.Sprintf("%s/v1/metrics?start=%s&end=%s&interval=300&nodes=10.101.1.1,10.101.1.2&metrics=Power/NodePower,UGE/CPUUsage&jobs=true",
			srv.URL, testStart.Format(time.RFC3339), testStart.Add(30*time.Minute).Format(time.RFC3339)),
		// No interval: raw samples.
		fmt.Sprintf("%s/v1/metrics?start=%d&end=%d", srv.URL, start, end),
	}
	for _, u := range urls {
		resp, err := http.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d: %s", u, resp.StatusCode, body)
		}
		dec, err := Decode(body)
		if err != nil {
			t.Fatalf("GET %s: %v", u, err)
		}
		if len(dec.Nodes) == 0 {
			t.Fatalf("GET %s returned no nodes", u)
		}
	}
}

func TestAPIBadRequests(t *testing.T) {
	srv, _ := apiServer(t, 2, 10)
	start, end := testStart.Unix(), testStart.Add(10*time.Minute).Unix()
	cases := []struct {
		name  string
		query string
	}{
		{"missing start", fmt.Sprintf("end=%d", end)},
		{"missing end", fmt.Sprintf("start=%d", start)},
		{"bad start", fmt.Sprintf("start=yesterday&end=%d", end)},
		{"end before start", fmt.Sprintf("start=%d&end=%d", end, start)},
		{"end equals start", fmt.Sprintf("start=%d&end=%d", start, start)},
		{"zero interval", fmt.Sprintf("start=%d&end=%d&interval=0", start, end)},
		{"negative interval", fmt.Sprintf("start=%d&end=%d&interval=-5m", start, end)},
		{"garbage interval", fmt.Sprintf("start=%d&end=%d&interval=soon", start, end)},
		{"unknown aggregate", fmt.Sprintf("start=%d&end=%d&interval=5m&agg=percentile", start, end)},
		{"bad metric", fmt.Sprintf("start=%d&end=%d&metrics=NodePower", start, end)},
		{"bad jobs flag", fmt.Sprintf("start=%d&end=%d&jobs=maybe", start, end)},
		{"bad zlevel", fmt.Sprintf("start=%d&end=%d&zlevel=11", start, end)},
	}
	for _, tc := range cases {
		resp, err := http.Get(srv.URL + "/v1/metrics?" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		var e struct {
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
			continue
		}
		if err != nil || e.Error == "" {
			t.Errorf("%s: no error JSON: %v", tc.name, err)
		}
	}
}

func TestAPIClientCancellationMidFanOut(t *testing.T) {
	srv, _ := apiServer(t, 32, 60)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	client := &Client{BaseURL: srv.URL, Compress: true}
	if _, err := client.Fetch(ctx, stdRequest(60)); err == nil {
		t.Fatal("canceled fetch succeeded")
	}
	// The server must stay healthy for the next consumer.
	res, err := (&Client{BaseURL: srv.URL}).Fetch(context.Background(), stdRequest(60))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Response.Nodes) != 32 {
		t.Fatalf("nodes after cancellation = %d", len(res.Response.Nodes))
	}
}

func TestAPICompressionNegotiation(t *testing.T) {
	srv, _ := apiServer(t, 2, 10)
	u := fmt.Sprintf("%s/v1/metrics?start=%d&end=%d&interval=5m",
		srv.URL, testStart.Unix(), testStart.Add(10*time.Minute).Unix())
	cases := []struct {
		accept  string
		deflate bool
	}{
		{"", false},
		{"identity", false},
		{"gzip", false},
		{"deflate", true},
		{"gzip, deflate", true},
		{"deflate;q=0", false},
		{"*", true},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(http.MethodGet, u, nil)
		if tc.accept != "" {
			req.Header.Set("Accept-Encoding", tc.accept)
		} else {
			req.Header.Set("Accept-Encoding", "identity")
		}
		resp, err := http.DefaultTransport.RoundTrip(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		gotDeflate := resp.Header.Get("Content-Encoding") == "deflate"
		want := tc.deflate
		if tc.accept == "" {
			want = false
		}
		if gotDeflate != want {
			t.Errorf("Accept-Encoding %q: deflate=%t, want %t", tc.accept, gotDeflate, want)
			continue
		}
		if gotDeflate {
			if _, err := Decompress(body); err != nil {
				t.Errorf("Accept-Encoding %q: bad deflate body: %v", tc.accept, err)
			}
		} else if _, err := Decode(body); err != nil {
			t.Errorf("Accept-Encoding %q: bad identity body: %v", tc.accept, err)
		}
		if resp.Header.Get("Vary") != "Accept-Encoding" {
			t.Errorf("Accept-Encoding %q: missing Vary header", tc.accept)
		}
	}
}

func TestAPIStatsEndpoint(t *testing.T) {
	srv, b := apiServer(t, 3, 20)
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Points       int64   `json:"points"`
		DataBytes    int64   `json:"data_bytes"`
		Shards       int     `json:"shards"`
		StorageRaw   int64   `json:"storage_bytes_raw"`
		StorageComp  int64   `json:"storage_bytes_compressed"`
		Ratio        float64 `json:"compression_ratio"`
		BlocksSealed int64   `json:"blocks_sealed"`
		Measurements []struct {
			Name   string `json:"name"`
			Series int    `json:"series"`
		} `json:"measurements"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Points != b.DB().Disk().Points || body.Points == 0 {
		t.Fatalf("points = %d", body.Points)
	}
	comp := b.DB().Compression()
	if body.StorageRaw != comp.BytesRaw || body.StorageRaw == 0 {
		t.Fatalf("storage_bytes_raw = %d, engine says %d", body.StorageRaw, comp.BytesRaw)
	}
	if body.StorageComp != comp.BytesCompressed || body.StorageComp == 0 {
		t.Fatalf("storage_bytes_compressed = %d, engine says %d", body.StorageComp, comp.BytesCompressed)
	}
	if body.Ratio != comp.Ratio() || body.Ratio < 1 {
		t.Fatalf("compression_ratio = %v, engine says %v", body.Ratio, comp.Ratio())
	}
	if body.BlocksSealed != comp.BlocksSealed {
		t.Fatalf("blocks_sealed = %d, engine says %d", body.BlocksSealed, comp.BlocksSealed)
	}
	found := false
	for _, m := range body.Measurements {
		if m.Name == "Power" && m.Series == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Power measurement not reported: %+v", body.Measurements)
	}
}

func TestAPIStatsHeaderParses(t *testing.T) {
	srv, _ := apiServer(t, 2, 10)
	u := fmt.Sprintf("%s/v1/metrics?start=%d&end=%d&interval=5m",
		srv.URL, testStart.Unix(), testStart.Add(10*time.Minute).Unix())
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	hdr := resp.Header.Get(StatsHeader)
	if hdr == "" || strings.ContainsAny(hdr, "\r\n") {
		t.Fatalf("stats header = %q", hdr)
	}
	var st Stats
	if err := json.Unmarshal([]byte(hdr), &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries == 0 || st.Nodes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestAPIStatsIngestSection: the /v1/stats payload embeds the ingest
// pipeline's counters once a snapshot function is registered, and
// omits the key entirely before then (so deployments without a
// pipeline keep their exact old payload shape).
func TestAPIStatsIngestSection(t *testing.T) {
	db := seedDB(t, 2, 10)
	api := NewAPI(New(db, Options{}))
	srv := httptest.NewServer(api)
	defer srv.Close()

	fetch := func() map[string]json.RawMessage {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats status = %d", resp.StatusCode)
		}
		var body map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	if raw, ok := fetch()["ingest"]; ok {
		t.Fatalf("ingest section present before registration: %s", raw)
	}

	api.SetIngestStats(func() any {
		return map[string]any{"running": true, "points_received": 42}
	})
	raw, ok := fetch()["ingest"]
	if !ok {
		t.Fatal("ingest section missing after registration")
	}
	var ing struct {
		Running        bool  `json:"running"`
		PointsReceived int64 `json:"points_received"`
	}
	if err := json.Unmarshal(raw, &ing); err != nil {
		t.Fatal(err)
	}
	if !ing.Running || ing.PointsReceived != 42 {
		t.Fatalf("ingest section = %s", raw)
	}
}

// TestAPIStatsStorageSections: /v1/stats embeds the decode-cache
// counters once sealed blocks have been touched and the rollup tier
// list once tiers are registered — and omits both keys before then, so
// deployments without tiers keep their exact old payload shape.
func TestAPIStatsStorageSections(t *testing.T) {
	db := tsdb.Open(tsdb.Options{BlockSize: 8})
	var pts []tsdb.Point
	for i := 0; i < 60; i++ {
		pts = append(pts, tsdb.Point{
			Measurement: "Power",
			Tags:        tsdb.Tags{{Key: "NodeId", Value: "n0"}, {Key: "Label", Value: "NodePower"}},
			Fields:      map[string]tsdb.Value{"Reading": tsdb.Float(float64(100 + i))},
			Time:        int64(i * 60),
		})
	}
	if err := db.WritePoints(pts); err != nil {
		t.Fatal(err)
	}
	api := NewAPI(New(db, Options{}))
	srv := httptest.NewServer(api)
	defer srv.Close()

	fetch := func() map[string]json.RawMessage {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body map[string]json.RawMessage
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		return body
	}

	body := fetch()
	if raw, ok := body["storage_cache"]; ok {
		t.Fatalf("storage_cache present before any sealed-block decode: %s", raw)
	}
	if raw, ok := body["storage_tiers"]; ok {
		t.Fatalf("storage_tiers present before registration: %s", raw)
	}

	rm := tsdb.NewRollups(db)
	if err := rm.Add(tsdb.RollupSpec{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300}); err != nil {
		t.Fatal(err)
	}
	if _, err := rm.Run(1800); err != nil {
		t.Fatal(err)
	}
	// A raw scan over the sealed columns populates the decode cache.
	if _, err := db.Query(`SELECT max("Reading") FROM "Power"`); err != nil {
		t.Fatal(err)
	}

	body = fetch()
	rawTiers, ok := body["storage_tiers"]
	if !ok {
		t.Fatal("storage_tiers missing after registration")
	}
	var tiers []struct {
		Target    string `json:"target"`
		Source    string `json:"source"`
		IntervalS int64  `json:"interval_s"`
		Points    int64  `json:"points"`
		Watermark int64  `json:"watermark"`
	}
	if err := json.Unmarshal(rawTiers, &tiers); err != nil {
		t.Fatal(err)
	}
	if len(tiers) != 1 || tiers[0].Target != "Power_max_300s" || tiers[0].Source != "Power" ||
		tiers[0].IntervalS != 300 || tiers[0].Points == 0 || tiers[0].Watermark == 0 {
		t.Fatalf("storage_tiers = %s", rawTiers)
	}
	rawCache, ok := body["storage_cache"]
	if !ok {
		t.Fatal("storage_cache missing after sealed-block reads")
	}
	var cache struct {
		Hits     int64 `json:"hits"`
		Misses   int64 `json:"misses"`
		Resident int64 `json:"resident_bytes"`
		Budget   int64 `json:"budget_bytes"`
	}
	if err := json.Unmarshal(rawCache, &cache); err != nil {
		t.Fatal(err)
	}
	if cache.Misses == 0 || cache.Resident == 0 || cache.Budget == 0 {
		t.Fatalf("storage_cache = %s", rawCache)
	}
}
