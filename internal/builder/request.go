package builder

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Request is a consumer's ask: a time range, a downsampling interval,
// an aggregate, and optional node/metric subsets — the exact parameter
// shape of the paper's Section III-D example ("a time range, a time
// interval, and an aggregation function").
type Request struct {
	// Start and End bound the window [Start, End) — end-exclusive, so a
	// one-hour window at a five-minute interval yields exactly twelve
	// buckets.
	Start time.Time
	End   time.Time
	// Interval is the downsampling bucket width. Zero returns the raw
	// samples unaggregated.
	Interval time.Duration
	// Aggregate is the downsampling function (max, min, mean, sum,
	// count, first, last, spread, stddev, median). Empty means mean.
	// Ignored when Interval is zero.
	Aggregate string
	// Nodes restricts the response to these NodeId values. Empty means
	// every node present in the requested measurements.
	Nodes []string
	// Metrics selects the per-node series. Nil means DefaultMetrics.
	Metrics []Metric
	// IncludeJobs adds the JobsInfo and NodeJobs correlation data to
	// the response (the Fig 5/6 join).
	IncludeJobs bool
}

// aggregates the builder accepts — the storage engine's aggregator set.
var validAggregates = map[string]bool{
	"count": true, "sum": true, "mean": true, "max": true, "min": true,
	"first": true, "last": true, "spread": true, "stddev": true, "median": true,
}

// RequestError reports an invalid Request. The HTTP API maps it to a
// 400 response; everything else is a 500.
type RequestError struct{ Reason string }

func (e *RequestError) Error() string { return "builder: invalid request: " + e.Reason }

func badRequest(format string, args ...any) error {
	return &RequestError{Reason: fmt.Sprintf(format, args...)}
}

// Validate checks the request without touching storage.
func (r *Request) Validate() error {
	if r.Start.IsZero() || r.End.IsZero() {
		return badRequest("start and end are required")
	}
	if !r.End.After(r.Start) {
		return badRequest("end %v is not after start %v", r.End, r.Start)
	}
	if r.Interval < 0 {
		return badRequest("negative interval %v", r.Interval)
	}
	if r.Aggregate != "" && !validAggregates[r.Aggregate] {
		return badRequest("unknown aggregate %q", r.Aggregate)
	}
	for _, m := range r.Metrics {
		if m.Measurement == "" || m.Label == "" {
			return badRequest("metric %+v missing measurement or label", m)
		}
	}
	return nil
}

// aggregate resolves the effective aggregation function.
func (r *Request) aggregate() string {
	if r.Aggregate == "" {
		return "mean"
	}
	return r.Aggregate
}

// metrics resolves the effective metric set.
func (r *Request) metrics() []Metric {
	if len(r.Metrics) == 0 {
		return DefaultMetrics()
	}
	return r.Metrics
}

// Key is the request's canonical cache key: identical asks — including
// node and metric subsets in any order — map to the same key.
func (r *Request) Key() string {
	nodes := append([]string(nil), r.Nodes...)
	sort.Strings(nodes)
	names := make([]string, 0, len(r.metrics()))
	for _, m := range r.metrics() {
		names = append(names, m.Name())
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "%d|%d|%d|%s|jobs=%t|", r.Start.Unix(), r.End.Unix(), int64(r.Interval/time.Second), r.aggregate(), r.IncludeJobs)
	b.WriteString(strings.Join(nodes, ","))
	b.WriteByte('|')
	b.WriteString(strings.Join(names, ","))
	return b.String()
}
