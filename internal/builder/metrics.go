// Package builder implements MonSTer's Metrics Builder (Section III-C
// of the paper): the middleware between the time-series database and
// analysis consumers such as HiperJobViz. A consumer asks for a time
// range, a downsampling interval, and an aggregate; the builder
// generates the InfluxQL queries, fans them out over the storage
// engine, merges the per-series answers into one JSON document, and
// optionally compresses it for transport.
//
// The package is organized as the paper's optimization ladder:
//
//   - the previous builder (Options.Concurrent=false) issues one query
//     per (node, metric) pair, serially — the Fig 10/11 baseline;
//   - the optimized builder batches by measurement with a multi-node
//     regex predicate and runs the batch on a bounded worker pool
//     (Fig 14/15);
//   - Cache adds an LRU response cache invalidated by the DB's
//     mutation epoch (Fig 16's repeated-consumer case);
//   - Compress adds zlib transport compression (Fig 18/19).
package builder

import (
	"fmt"
	"strings"
)

// Metric identifies one per-node series: a measurement and its Label
// tag value in the optimized schema (e.g. Power/NodePower).
type Metric struct {
	Measurement string `json:"measurement"`
	Label       string `json:"label"`
}

// Name is the canonical "Measurement/Label" form used as the key of
// NodeSeries.Metrics and in the HTTP API's metrics parameter.
func (m Metric) Name() string { return m.Measurement + "/" + m.Label }

// ParseMetric parses the "Measurement/Label" form.
func ParseMetric(s string) (Metric, error) {
	meas, label, ok := strings.Cut(s, "/")
	if !ok || meas == "" || label == "" {
		return Metric{}, fmt.Errorf("builder: bad metric %q (want Measurement/Label)", s)
	}
	return Metric{Measurement: meas, Label: label}, nil
}

// DefaultMetrics is the full per-node metric set of the paper's
// Tables I and II: seven thermal series, node power, and the two
// UGE-reported usage series.
func DefaultMetrics() []Metric {
	return []Metric{
		{Measurement: "Thermal", Label: "CPU1Temp"},
		{Measurement: "Thermal", Label: "CPU2Temp"},
		{Measurement: "Thermal", Label: "InletTemp"},
		{Measurement: "Thermal", Label: "FanSpeed1"},
		{Measurement: "Thermal", Label: "FanSpeed2"},
		{Measurement: "Thermal", Label: "FanSpeed3"},
		{Measurement: "Thermal", Label: "FanSpeed4"},
		{Measurement: "Power", Label: "NodePower"},
		{Measurement: "UGE", Label: "CPUUsage"},
		{Measurement: "UGE", Label: "MemUsage"},
	}
}

// ExtendedMetrics adds the network and filesystem series collected
// when the deployment enables Section VI's missing metrics.
func ExtendedMetrics() []Metric {
	return append(DefaultMetrics(),
		Metric{Measurement: "Network", Label: "NICRx"},
		Metric{Measurement: "Network", Label: "NICTx"},
		Metric{Measurement: "Filesystem", Label: "ReadMBps"},
		Metric{Measurement: "Filesystem", Label: "WriteMBps"},
	)
}
