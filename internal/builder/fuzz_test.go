package builder

import (
	"testing"
	"time"

	"monster/internal/tsdb"
)

// fuzzRows decodes the fuzzer's byte stream into result rows: each
// byte contributes one row whose time, value kind, and presence bit
// all derive from it. The point is shape diversity — sparse Present
// bitmaps, non-float kinds, empty Values — not realistic data.
func fuzzRows(data []byte, width int) []tsdb.Row {
	rows := make([]tsdb.Row, 0, len(data))
	for i, b := range data {
		row := tsdb.Row{Time: int64(i) * int64(b%7), Values: make([]tsdb.Value, 0, width), Present: make([]bool, 0, width)}
		for c := 0; c < width; c++ {
			switch (int(b) + c) % 4 {
			case 0:
				row.Values = append(row.Values, tsdb.Float(float64(b)))
			case 1:
				row.Values = append(row.Values, tsdb.Int(int64(b)))
			case 2:
				row.Values = append(row.Values, tsdb.Str(string(data[:i])))
			case 3:
				row.Values = append(row.Values, tsdb.Bool(b%2 == 0))
			}
			row.Present = append(row.Present, (int(b)+c)%3 != 0)
		}
		if b%5 == 0 {
			// Ragged rows: fewer values than columns, or none at all.
			row.Values = row.Values[:len(row.Values)/2]
			row.Present = row.Present[:len(row.Present)/2]
		}
		rows = append(rows, row)
	}
	return rows
}

// FuzzMergeSeries drives the builder's merge layer — newResponse,
// mergeResult, mergeJobs, mergeNodeJobs, and parseJobList — with
// adversarial series shapes: unknown nodes, empty labels, ragged
// Present bitmaps, non-float values where floats are expected, and
// malformed job-list encodings. Nothing here may panic, and the
// series/point accounting must agree with what landed in the response.
func FuzzMergeSeries(f *testing.F) {
	f.Add("10.101.1.1", "NodePower", "['123-a', '456-b']", []byte{1, 2, 3, 250, 0})
	f.Add("", "", "", []byte{})
	f.Add("node-2", "CPU1Temp", "[]", []byte{5, 5, 5})
	f.Add("ghost", "Lab", "[''] ,", []byte{9})
	f.Add("10.101.1.1", "x", "['solo']", []byte{0, 255, 17, 128})

	f.Fuzz(func(t *testing.T, node, label, jobList string, data []byte) {
		req := &Request{
			Start:    time.Unix(0, 0),
			End:      time.Unix(3600, 0),
			Interval: 5 * time.Minute,
			Nodes:    []string{node, "10.101.1.1"},
		}
		resp, idx := newResponse(req, req.Nodes)

		metricRes := &tsdb.Result{Series: []tsdb.ResultSeries{
			{
				Name:    "Power",
				Tags:    tsdb.NewTags(map[string]string{"NodeId": node, "Label": label}),
				Columns: []string{"Reading"},
				Rows:    fuzzRows(data, 1),
			},
			{
				// A series for a node outside the request must be dropped.
				Name:    "Power",
				Tags:    tsdb.NewTags(map[string]string{"NodeId": "not-requested", "Label": label}),
				Columns: []string{"Reading"},
				Rows:    fuzzRows(data, 1),
			},
		}}
		series, points := mergeResult(resp, idx, metricRes)
		got := 0
		for _, n := range resp.Nodes {
			got += len(n.Metrics)
			for _, sd := range n.Metrics {
				if len(sd.Times) != len(sd.Values) {
					t.Fatalf("series with %d times but %d values", len(sd.Times), len(sd.Values))
				}
				points -= len(sd.Times)
			}
		}
		if series != got {
			t.Fatalf("mergeResult reported %d series, response holds %d", series, got)
		}
		if points != 0 {
			t.Fatalf("mergeResult point count disagrees with response by %d", points)
		}

		jobsRes := &tsdb.Result{Series: []tsdb.ResultSeries{
			{
				Name:    "JobsInfo",
				Tags:    tsdb.NewTags(map[string]string{"JobId": label}),
				Columns: []string{"User", "JobName", "Queue", "SubmitTime", "StartTime", "FinishTime", "Estimated", "Slots", "NodeCount"},
				Rows:    fuzzRows(data, 11), // wider than the column list on purpose
			},
		}}
		mergeJobs(resp, jobsRes)

		nodeJobsRes := &tsdb.Result{Series: []tsdb.ResultSeries{
			{
				Name:    "NodeJobs",
				Tags:    tsdb.NewTags(map[string]string{"NodeId": node}),
				Columns: []string{"JobList"},
				Rows: []tsdb.Row{
					{Time: 1, Values: []tsdb.Value{tsdb.Str(jobList)}, Present: []bool{true}},
					{Time: 2, Values: []tsdb.Value{tsdb.Str(jobList)}},
				},
			},
		}}
		mergeNodeJobs(resp, nodeJobsRes)
		for _, nj := range resp.NodeJobs {
			for _, j := range nj.Jobs {
				if j == "" {
					t.Fatal("parseJobList let an empty job id through")
				}
			}
		}
	})
}
