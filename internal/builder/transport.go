package builder

import (
	"bytes"
	"compress/zlib"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// Encode renders a Response as its JSON wire format.
func Encode(resp *Response) ([]byte, error) {
	return json.Marshal(resp)
}

// Decode parses the JSON wire format back into a Response.
func Decode(data []byte) (*Response, error) {
	var resp Response
	if err := json.Unmarshal(data, &resp); err != nil {
		return nil, fmt.Errorf("builder: decode response: %w", err)
	}
	return &resp, nil
}

// Per-level pools of zlib writers: Compress runs on the API's hot path
// for every response, and a zlib.Writer's allocation (window plus
// hash chains, ~1.3 MB) dwarfs the data it compresses. Index 0 is
// DefaultCompression, 1–9 the explicit levels.
var zlibWriters [10]sync.Pool

var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// Compress zlib-compresses a response body — the paper's transport
// optimization, which shrinks the monitoring JSON to ~5% of its raw
// size (Fig 18). Level 0 selects zlib's default level; 1–9 are the
// explicit speed/ratio trade-offs.
func Compress(data []byte, level int) ([]byte, error) {
	if level < 0 || level > 9 {
		return nil, fmt.Errorf("builder: compression level %d out of range [0,9]", level)
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)

	w, _ := zlibWriters[level].Get().(*zlib.Writer)
	if w == nil {
		zl := level
		if zl == 0 {
			zl = zlib.DefaultCompression
		}
		var err error
		if w, err = zlib.NewWriterLevel(buf, zl); err != nil {
			return nil, fmt.Errorf("builder: zlib writer: %w", err)
		}
	} else {
		w.Reset(buf)
	}
	if _, err := w.Write(data); err != nil {
		return nil, fmt.Errorf("builder: compress: %w", err)
	}
	if err := w.Close(); err != nil {
		return nil, fmt.Errorf("builder: compress: %w", err)
	}
	zlibWriters[level].Put(w)

	out := make([]byte, buf.Len())
	copy(out, buf.Bytes())
	return out, nil
}

// Decompress reverses Compress.
func Decompress(data []byte) ([]byte, error) {
	r, err := zlib.NewReader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("builder: decompress: %w", err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("builder: decompress: %w", err)
	}
	return out, nil
}

// CompressionRatio is compressed size over raw size (the Fig 18
// metric; ~0.05 for monitoring JSON).
func CompressionRatio(raw, compressed []byte) float64 {
	if len(raw) == 0 {
		return 0
	}
	return float64(len(compressed)) / float64(len(raw))
}
