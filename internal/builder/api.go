package builder

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"monster/internal/clock"
)

// StatsHeader carries the builder's Stats for one response as a JSON
// HTTP header, so consumers see the server-side stage breakdown
// without it inflating the (compressed) body.
const StatsHeader = "X-Monster-Stats"

// API serves a Builder over HTTP:
//
//	GET /v1/metrics?start=S&end=E&interval=5m&agg=max&nodes=a,b&metrics=Power/NodePower&jobs=true
//	GET /v1/stats
//
// start and end accept epoch seconds or RFC3339. interval accepts a Go
// duration ("5m") or bare seconds; omitting it returns raw samples.
// Responses are JSON; when the consumer sends Accept-Encoding:
// deflate, the body is zlib-compressed (Content-Encoding: deflate) —
// the paper's transport optimization. zlevel=1..9 overrides the
// compression level. Validation failures are 400s with {"error": ...}.
type API struct {
	b     *Builder
	mux   *http.ServeMux
	clock clock.Clock

	// writeErrs counts response bodies we failed to deliver (consumer
	// hung up mid-write, broken pipe). Surfaced as write_errors in
	// /v1/stats so failed deliveries are counted, never silent.
	writeErrs atomic.Int64

	// ingestStats, when registered, contributes the "ingest" section of
	// /v1/stats. Holds a func() any so the builder stays decoupled from
	// the ingest package.
	ingestStats atomic.Value
}

// NewAPI builds the HTTP surface over a Builder.
func NewAPI(b *Builder) *API {
	a := &API{b: b, mux: http.NewServeMux(), clock: b.clock}
	a.mux.HandleFunc("/v1/metrics", a.handleMetrics)
	a.mux.HandleFunc("/v1/stats", a.handleStats)
	return a
}

// ServeHTTP implements http.Handler.
func (a *API) ServeHTTP(w http.ResponseWriter, r *http.Request) { a.mux.ServeHTTP(w, r) }

// WriteErrors reports how many response writes have failed since start.
func (a *API) WriteErrors() int64 { return a.writeErrs.Load() }

// SetIngestStats registers a snapshot function whose result is embedded
// as the "ingest" section of /v1/stats — how the deployment surfaces
// per-stage pipeline counters without the builder importing the ingest
// package. Safe to call concurrently with request handling.
func (a *API) SetIngestStats(fn func() any) { a.ingestStats.Store(fn) }

func (a *API) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}); err != nil {
		a.writeErrs.Add(1)
	}
}

// parseTimeParam accepts epoch seconds or RFC3339.
func parseTimeParam(s string) (time.Time, error) {
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Unix(sec, 0).UTC(), nil
	}
	t, err := time.Parse(time.RFC3339, s)
	if err != nil {
		return time.Time{}, fmt.Errorf("want epoch seconds or RFC3339, got %q", s)
	}
	return t, nil
}

// parseIntervalParam accepts a Go duration string or bare seconds.
func parseIntervalParam(s string) (time.Duration, error) {
	if sec, err := strconv.ParseInt(s, 10, 64); err == nil {
		return time.Duration(sec) * time.Second, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("want duration or seconds, got %q", s)
	}
	return d, nil
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var req Request

	for _, p := range []struct {
		name string
		dst  *time.Time
	}{{"start", &req.Start}, {"end", &req.End}} {
		v := q.Get(p.name)
		if v == "" {
			a.httpError(w, http.StatusBadRequest, "missing %s parameter", p.name)
			return
		}
		t, err := parseTimeParam(v)
		if err != nil {
			a.httpError(w, http.StatusBadRequest, "bad %s: %v", p.name, err)
			return
		}
		*p.dst = t
	}
	if v := q.Get("interval"); v != "" {
		iv, err := parseIntervalParam(v)
		if err != nil {
			a.httpError(w, http.StatusBadRequest, "bad interval: %v", err)
			return
		}
		if iv <= 0 {
			a.httpError(w, http.StatusBadRequest, "interval must be positive, got %q", v)
			return
		}
		req.Interval = iv
	}
	req.Aggregate = q.Get("agg")
	if v := q.Get("nodes"); v != "" {
		req.Nodes = strings.Split(v, ",")
	}
	if v := q.Get("metrics"); v != "" {
		for _, name := range strings.Split(v, ",") {
			m, err := ParseMetric(name)
			if err != nil {
				a.httpError(w, http.StatusBadRequest, "bad metrics: %v", err)
				return
			}
			req.Metrics = append(req.Metrics, m)
		}
	}
	if v := q.Get("jobs"); v != "" {
		jobs, err := strconv.ParseBool(v)
		if err != nil {
			a.httpError(w, http.StatusBadRequest, "bad jobs: %v", err)
			return
		}
		req.IncludeJobs = jobs
	}
	zlevel := 0
	if v := q.Get("zlevel"); v != "" {
		zl, err := strconv.Atoi(v)
		if err != nil || zl < 0 || zl > 9 {
			a.httpError(w, http.StatusBadRequest, "bad zlevel: want 0..9, got %q", v)
			return
		}
		zlevel = zl
	}

	resp, st, err := a.b.Fetch(r.Context(), req)
	if err != nil {
		var reqErr *RequestError
		switch {
		case errors.As(err, &reqErr):
			a.httpError(w, http.StatusBadRequest, "%s", reqErr.Reason)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			// The consumer went away mid-fan-out; nothing to answer.
			a.httpError(w, 499, "request canceled")
		default:
			a.httpError(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}

	te := a.clock.Now()
	body, err := Encode(resp)
	if err != nil {
		a.httpError(w, http.StatusInternalServerError, "encode: %v", err)
		return
	}
	st.EncodeTime = a.clock.Now().Sub(te)
	st.BytesRaw = int64(len(body))

	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Vary", "Accept-Encoding")
	if acceptsDeflate(r.Header.Get("Accept-Encoding")) {
		tc := a.clock.Now()
		comp, err := Compress(body, zlevel)
		if err != nil {
			a.httpError(w, http.StatusInternalServerError, "compress: %v", err)
			return
		}
		st.CompressTime = a.clock.Now().Sub(tc)
		st.BytesCompressed = int64(len(comp))
		body = comp
		w.Header().Set("Content-Encoding", "deflate")
	}
	st.Total += st.EncodeTime + st.CompressTime
	if hdr, err := json.Marshal(st); err == nil {
		w.Header().Set(StatsHeader, string(hdr))
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if _, err := w.Write(body); err != nil {
		a.writeErrs.Add(1)
	}
}

// acceptsDeflate reports whether an Accept-Encoding header admits
// deflate (with a non-zero quality).
func acceptsDeflate(header string) bool {
	for _, part := range strings.Split(header, ",") {
		enc, params, _ := strings.Cut(strings.TrimSpace(part), ";")
		enc = strings.TrimSpace(enc)
		if enc != "deflate" && enc != "*" {
			continue
		}
		if q, ok := strings.CutPrefix(strings.TrimSpace(params), "q="); ok {
			if f, err := strconv.ParseFloat(strings.TrimSpace(q), 64); err == nil && f == 0 {
				continue
			}
		}
		return true
	}
	return false
}

// handleStats reports storage-engine counters (the mquery -stats view).
func (a *API) handleStats(w http.ResponseWriter, r *http.Request) {
	db := a.b.DB()
	disk := db.Disk()
	type measurement struct {
		Name   string `json:"name"`
		Series int    `json:"series"`
	}
	dbStats := db.Stats()
	walStats := db.WALStats()
	comp := db.Compression()
	out := struct {
		Points          int64         `json:"points"`
		PointsWritten   int64         `json:"points_written"`
		DataBytes       int64         `json:"data_bytes"`
		IndexBytes      int64         `json:"index_bytes"`
		StorageRaw      int64         `json:"storage_bytes_raw"`
		StorageComp     int64         `json:"storage_bytes_compressed"`
		CompressionRate float64       `json:"compression_ratio"`
		BlocksSealed    int64         `json:"blocks_sealed"`
		BlocksLive      int64         `json:"blocks_live"`
		BlocksCached    int64         `json:"blocks_cached"`
		BlocksCold      int64         `json:"blocks_cold"`
		SealedPoints    int64         `json:"sealed_points"`
		TailPoints      int64         `json:"tail_points"`
		Shards          int           `json:"shards"`
		Epoch           int64         `json:"epoch"`
		Batches         int64         `json:"batches_written"`
		SeriesCreated   int64         `json:"series_created"`
		MeasurementN    int           `json:"measurement_count"`
		WriteWaitNs     int64         `json:"write_wait_ns"`
		WriteErrors     int64         `json:"write_errors"`
		WALSegments     int           `json:"wal_segments"`
		WALBytes        int64         `json:"wal_bytes"`
		WALAppends      int64         `json:"wal_appends"`
		WALSyncs        int64         `json:"wal_syncs"`
		WALRotations    int64         `json:"wal_rotations"`
		WALCheckpoints  int64         `json:"wal_checkpoints"`
		WALReplayed     int64         `json:"wal_replayed"`
		WALReplayedPts  int64         `json:"wal_replayed_points"`
		WALTorn         int64         `json:"wal_torn_frames"`
		WALTruncated    int64         `json:"wal_truncated_bytes"`
		Measurements    []measurement `json:"measurements"`
		Ingest          any           `json:"ingest,omitempty"`
		// StorageCache is the sealed-block decode cache: hit/miss/eviction
		// counters and resident bytes against the configured budget.
		// Omitted until the first sealed block is touched keeps old
		// clients' output stable (same contract as "ingest").
		StorageCache any `json:"storage_cache,omitempty"`
		// StorageTiers lists registered rollup tiers (target, source,
		// interval, materialized points, watermark). Omitted when no
		// rollups are registered.
		StorageTiers any `json:"storage_tiers,omitempty"`
		// StorageCold is the file-backed cold tier: block placement
		// (resident vs spilled), segment-file footprint, and spill/read/
		// compaction counters. Omitted when no cold directory is
		// configured.
		StorageCold any `json:"storage_cold,omitempty"`
	}{
		Points:          disk.Points,
		PointsWritten:   dbStats.PointsWritten,
		DataBytes:       disk.DataBytes,
		IndexBytes:      disk.IndexBytes,
		StorageRaw:      comp.BytesRaw,
		StorageComp:     comp.BytesCompressed,
		CompressionRate: comp.Ratio(),
		BlocksSealed:    comp.BlocksSealed,
		BlocksLive:      comp.Blocks,
		BlocksCached:    comp.BlocksCached,
		BlocksCold:      comp.BlocksCold,
		SealedPoints:    comp.SealedPoints,
		TailPoints:      comp.TailPoints,
		Shards:          disk.Shards,
		Epoch:           db.Epoch(),
		Batches:         dbStats.BatchesWritten,
		SeriesCreated:   dbStats.SeriesCreated,
		MeasurementN:    dbStats.Measurements,
		WriteWaitNs:     dbStats.WriteWaitNs,
		WriteErrors:     a.writeErrs.Load(),
		WALSegments:     walStats.Segments,
		WALBytes:        walStats.Bytes,
		WALAppends:      walStats.Appends,
		WALSyncs:        walStats.Syncs,
		WALRotations:    walStats.Rotations,
		WALCheckpoints:  walStats.Checkpoints,
		WALReplayed:     walStats.Replayed,
		WALReplayedPts:  walStats.ReplayedPoints,
		WALTorn:         walStats.TornFrames,
		WALTruncated:    walStats.TruncatedBytes,
	}
	for _, name := range db.Measurements() {
		out.Measurements = append(out.Measurements, measurement{Name: name, Series: db.SeriesCardinality(name)})
	}
	if fn, ok := a.ingestStats.Load().(func() any); ok {
		out.Ingest = fn()
	}
	if cs := db.CacheStats(); cs.Hits+cs.Misses+cs.Evictions > 0 || cs.ResidentBytes > 0 {
		out.StorageCache = cs
	}
	if tiers := db.TierStats(); len(tiers) > 0 {
		out.StorageTiers = tiers
	}
	if cold := db.ColdStats(); cold.Enabled {
		out.StorageCold = cold
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(out); err != nil {
		a.writeErrs.Add(1)
	}
}
