package builder

import (
	"container/list"
	"context"
	"sync"
)

// DefaultCacheCapacity is the entry capacity when NewCache is given
// zero.
const DefaultCacheCapacity = 128

// Cache is an LRU response cache over a Builder — the optimization
// that serves Fig 16's repeated-consumer asks (dashboards polling the
// same window shape) without touching storage.
//
// Consistency is by mutation epoch: every Fetch compares the storage
// engine's Epoch() against the epoch the cache last saw and flushes
// everything on mismatch. A monitoring DB ingests on every collection
// cycle, so entries live for at most one collection interval — exactly
// the window during which repeated consumer asks are identical.
//
// Cached responses are shared; callers must treat them as read-only.
type Cache struct {
	b   *Builder
	cap int

	mu    sync.Mutex
	ll    *list.List // front = most recent; holds *cacheEntry
	items map[string]*list.Element
	epoch int64
	stats CacheStats

	// afterFill, when non-nil, runs between the builder fill returning
	// and the cache re-locking to insert. Test-only: it widens the
	// miss-to-insert window so the fill-time staleness race can be
	// exercised deterministically.
	afterFill func()
}

type cacheEntry struct {
	key   string
	resp  *Response
	stats Stats
}

// CacheStats counts cache activity.
type CacheStats struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Invalidations int64 `json:"invalidations"` // whole-cache epoch flushes
	Size          int   `json:"size"`
}

// NewCache wraps a Builder in an LRU response cache holding up to
// capacity responses (0 selects DefaultCacheCapacity).
func NewCache(b *Builder, capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCacheCapacity
	}
	return &Cache{
		b:     b,
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
		epoch: b.db.Epoch(),
	}
}

// Fetch answers the request from cache when the storage epoch is
// unchanged and an identical request (same window, interval,
// aggregate, node and metric subsets) was answered before; otherwise
// it delegates to the Builder and caches the answer.
func (c *Cache) Fetch(ctx context.Context, req Request) (*Response, Stats, error) {
	key := req.Key()

	c.mu.Lock()
	if epoch := c.b.db.Epoch(); epoch != c.epoch {
		if c.ll.Len() > 0 {
			c.stats.Invalidations++
		}
		c.ll.Init()
		c.items = make(map[string]*list.Element)
		c.epoch = epoch
	}
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		ent := el.Value.(*cacheEntry)
		c.stats.Hits++
		st := ent.stats
		st.CacheHit = true
		c.mu.Unlock()
		return ent.resp, st, nil
	}
	c.stats.Misses++
	// Capture the epoch this miss was answered against. Comparing the
	// insert-time DB epoch against c.epoch instead would race: another
	// Fetch can observe a post-fill write, flush, and advance c.epoch
	// to match the DB again, making a stale fill look current.
	missEpoch := c.epoch
	c.mu.Unlock()

	resp, st, err := c.b.Fetch(ctx, req)
	if err != nil {
		return nil, st, err
	}
	if c.afterFill != nil {
		c.afterFill()
	}

	c.mu.Lock()
	// A write may have landed during the fill; only cache the answer if
	// it is still current.
	if c.b.db.Epoch() == missEpoch {
		if _, ok := c.items[key]; !ok {
			if c.ll.Len() >= c.cap {
				oldest := c.ll.Back()
				c.ll.Remove(oldest)
				delete(c.items, oldest.Value.(*cacheEntry).key)
				c.stats.Evictions++
			}
			c.items[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp, stats: st})
		}
	}
	c.mu.Unlock()
	return resp, st, nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Size = c.ll.Len()
	return st
}
