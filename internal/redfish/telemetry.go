package redfish

import (
	"context"
	"fmt"
	"strconv"
	"time"
)

// The Redfish Telemetry Service is the paper's named future work
// ("collect more metrics by using additional tools and the upcoming
// telemetry model", Section VI): instead of four resource GETs per
// node per sweep, the BMC pushes/serves one MetricReport carrying every
// sensor in a single payload. Newer iDRAC firmware (14G+) implements
// it; the simulated BMC exposes it behind a capability flag so the
// collector can be benchmarked both ways.

// Telemetry resource paths.
const (
	PathTelemetryService = "/redfish/v1/TelemetryService"
	PathMetricReport     = "/redfish/v1/TelemetryService/MetricReports/NodeTelemetry"
)

// TelemetryService is /redfish/v1/TelemetryService.
type TelemetryService struct {
	ODataType     string  `json:"@odata.type"`
	ID            string  `json:"Id"`
	Status        Status  `json:"Status"`
	MetricReports ODataID `json:"MetricReports"`
}

// MetricValue is one sensor sample inside a MetricReport.
type MetricValue struct {
	MetricID       string `json:"MetricId"`
	MetricValue    string `json:"MetricValue"`
	Timestamp      string `json:"Timestamp"`
	MetricProperty string `json:"MetricProperty"`
}

// MetricReport is one telemetry batch.
type MetricReport struct {
	ODataType    string        `json:"@odata.type"`
	ID           string        `json:"Id"`
	Name         string        `json:"Name"`
	Timestamp    string        `json:"Timestamp"`
	MetricValues []MetricValue `json:"MetricValues"`
}

// Value looks up a metric by ID and parses it as float.
func (r *MetricReport) Value(id string) (float64, bool) {
	for _, mv := range r.MetricValues {
		if mv.MetricID == id {
			f, err := strconv.ParseFloat(mv.MetricValue, 64)
			if err != nil {
				return 0, false
			}
			return f, true
		}
	}
	return 0, false
}

// StringValue looks up a metric by ID as a raw string.
func (r *MetricReport) StringValue(id string) (string, bool) {
	for _, mv := range r.MetricValues {
		if mv.MetricID == id {
			return mv.MetricValue, true
		}
	}
	return "", false
}

// Metric IDs emitted in NodeTelemetry reports.
const (
	MetricCPU1Temp   = "CPU1Temp"
	MetricCPU2Temp   = "CPU2Temp"
	MetricInletTemp  = "InletTemp"
	MetricFanPrefix  = "FanSpeed" // FanSpeed1..4
	MetricPower      = "NodePower"
	MetricBMCHealth  = "BMCHealth"
	MetricHostHealth = "HostHealth"
	MetricPowerState = "PowerState"
	MetricNICRx      = "NICRxBps"
	MetricNICTx      = "NICTxBps"
)

// telemetryService renders the service root.
func (b *BMC) telemetryService() TelemetryService {
	return TelemetryService{
		ODataType:     "#TelemetryService.v1_2_0.TelemetryService",
		ID:            "TelemetryService",
		Status:        Status{Health: "OK", State: "Enabled"},
		MetricReports: ODataID{ID: "/redfish/v1/TelemetryService/MetricReports"},
	}
}

// metricReport renders the full sensor batch from live node state.
func (b *BMC) metricReport() MetricReport {
	rd := b.node.Readings()
	now := b.opts.Clock.Now().UTC().Format(time.RFC3339)
	f := func(v float64) string { return strconv.FormatFloat(v, 'f', 1, 64) }
	mvs := []MetricValue{
		{MetricID: MetricCPU1Temp, MetricValue: f(rd.CPUTempC[0]), Timestamp: now, MetricProperty: "/redfish/v1/Chassis/System.Embedded.1/Thermal#/Temperatures/0"},
		{MetricID: MetricCPU2Temp, MetricValue: f(rd.CPUTempC[1]), Timestamp: now, MetricProperty: "/redfish/v1/Chassis/System.Embedded.1/Thermal#/Temperatures/1"},
		{MetricID: MetricInletTemp, MetricValue: f(rd.InletTempC), Timestamp: now, MetricProperty: "/redfish/v1/Chassis/System.Embedded.1/Thermal#/Temperatures/2"},
	}
	for i, rpm := range rd.FanRPM {
		mvs = append(mvs, MetricValue{
			MetricID:       fmt.Sprintf("%s%d", MetricFanPrefix, i+1),
			MetricValue:    f(rpm),
			Timestamp:      now,
			MetricProperty: fmt.Sprintf("/redfish/v1/Chassis/System.Embedded.1/Thermal#/Fans/%d", i),
		})
	}
	net := b.node.Network()
	mvs = append(mvs,
		MetricValue{MetricID: MetricNICRx, MetricValue: f(net.RxBps), Timestamp: now, MetricProperty: PathNIC + "#/Oem/RxBps"},
		MetricValue{MetricID: MetricNICTx, MetricValue: f(net.TxBps), Timestamp: now, MetricProperty: PathNIC + "#/Oem/TxBps"},
		MetricValue{MetricID: MetricPower, MetricValue: f(rd.PowerW), Timestamp: now, MetricProperty: "/redfish/v1/Chassis/System.Embedded.1/Power#/PowerControl/0"},
		MetricValue{MetricID: MetricBMCHealth, MetricValue: string(rd.BMCHealth), Timestamp: now, MetricProperty: PathManager + "#/Status"},
		MetricValue{MetricID: MetricHostHealth, MetricValue: string(rd.HostHealth), Timestamp: now, MetricProperty: PathSystem + "#/Status"},
		MetricValue{MetricID: MetricPowerState, MetricValue: rd.PowerState, Timestamp: now, MetricProperty: PathSystem + "#/PowerState"},
	)
	return MetricReport{
		ODataType:    "#MetricReport.v1_4_0.MetricReport",
		ID:           "NodeTelemetry",
		Name:         "Node Telemetry Report",
		Timestamp:    now,
		MetricValues: mvs,
	}
}

// MetricReport fetches a node's telemetry batch. Returns an error if
// the firmware does not implement the telemetry service (HTTP 404).
func (c *Client) MetricReport(ctx context.Context, addr string) (*MetricReport, error) {
	var r MetricReport
	if err := c.GetJSON(ctx, URL(addr, PathMetricReport), &r); err != nil {
		return nil, err
	}
	return &r, nil
}
