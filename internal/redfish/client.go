package redfish

import (
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sync"
	"time"

	"monster/internal/clock"
)

// NoRetries disables retries entirely (one attempt per GET). The
// Retries field treats zero as "use the default", so "no retries" needs
// an explicit sentinel.
const NoRetries = -1

// NoRetryBackoff disables the inter-attempt delay. Like NoRetries, it
// exists because zero on RetryBackoff selects the default.
const NoRetryBackoff time.Duration = -1

// ClientOptions configures the collector-side Redfish client. The
// defaults mirror the mechanisms Section III-B1 describes: connection
// and read timeouts plus retries, added because the iDRAC "has limited
// resources and cannot handle a large number of requests".
type ClientOptions struct {
	// RequestTimeout bounds one attempt (connection + read). Zero means
	// 30 s.
	RequestTimeout time.Duration
	// Retries is how many additional attempts follow a failed one. Zero
	// means the default of 2; use NoRetries (or any negative value) for
	// a single attempt — a plain 0 cannot mean "none" because the zero
	// value must select the default.
	Retries int
	// RetryBackoff is the base delay before the first retry; later
	// retries back off exponentially (base, 2×base, 4×base, ...) with
	// deterministic jitter, capped at MaxRetryBackoff. Zero means the
	// default of 500 ms; use NoRetryBackoff (or any negative value) to
	// retry immediately.
	RetryBackoff time.Duration
	// Clock supplies sleep for backoff; nil means the real clock.
	Clock clock.Clock
	// HTTPClient performs requests; nil means http.DefaultClient. For a
	// simulated fleet pass fleet.Client().
	HTTPClient *http.Client
}

// MaxRetryBackoff caps the exponential backoff between attempts so a
// long retry budget cannot stall a collection cycle indefinitely.
const MaxRetryBackoff = 30 * time.Second

func (o *ClientOptions) applyDefaults() {
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	switch {
	case o.Retries < 0: // NoRetries: explicitly none
		o.Retries = 0
	case o.Retries == 0:
		o.Retries = 2
	}
	switch {
	case o.RetryBackoff < 0: // NoRetryBackoff: explicitly none
		o.RetryBackoff = 0
	case o.RetryBackoff == 0:
		o.RetryBackoff = 500 * time.Millisecond
	}
	if o.Clock == nil {
		o.Clock = clock.NewReal()
	}
	if o.HTTPClient == nil {
		o.HTTPClient = http.DefaultClient
	}
}

// ClientStats counts request outcomes across the client's lifetime.
type ClientStats struct {
	Requests int64 // logical GETs issued
	Attempts int64 // HTTP attempts including retries
	Retries  int64
	Failures int64 // logical GETs that exhausted retries
}

// Client fetches Redfish resources with timeouts and retries.
type Client struct {
	opts ClientOptions

	mu    sync.Mutex
	stats ClientStats
}

// NewClient builds a client.
func NewClient(opts ClientOptions) *Client {
	opts.applyDefaults()
	return &Client{opts: opts}
}

// Stats returns a snapshot of the request counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// backoff computes the delay before retry attempt (1-based) against
// url: exponential growth from the configured base, capped at
// MaxRetryBackoff, with deterministic equal jitter. The jittered half
// is derived from an FNV-1a hash of (url, attempt), so a rack of BMCs
// that failed together does not hammer the network in lockstep on
// retry, yet every schedule is a pure function of its inputs —
// reproducible under the simulated clock and safe to call
// concurrently.
func (c *Client) backoff(url string, attempt int) time.Duration {
	base := c.opts.RetryBackoff
	if base <= 0 {
		return 0
	}
	d := base
	for i := 1; i < attempt && d < MaxRetryBackoff; i++ {
		d *= 2
	}
	if d > MaxRetryBackoff {
		d = MaxRetryBackoff
	}
	half := d / 2
	h := fnv.New64a()
	_, _ = h.Write([]byte(url)) // hash.Hash Write never fails
	_, _ = h.Write([]byte{byte(attempt), byte(attempt >> 8)})
	frac := float64(h.Sum64()%1024) / 1024
	return half + time.Duration(float64(half)*frac)
}

// GetJSON fetches url and decodes the JSON body into out. It retries
// transport errors, timeouts, and 5xx responses, backing off
// exponentially between attempts (see backoff).
func (c *Client) GetJSON(ctx context.Context, url string, out interface{}) error {
	c.mu.Lock()
	c.stats.Requests++
	c.mu.Unlock()

	var lastErr error
	for attempt := 0; attempt <= c.opts.Retries; attempt++ {
		if attempt > 0 {
			c.mu.Lock()
			c.stats.Retries++
			c.mu.Unlock()
			if d := c.backoff(url, attempt); d > 0 {
				select {
				case <-ctx.Done():
					lastErr = ctx.Err()
				case <-c.opts.Clock.After(d):
				}
			}
			if ctx.Err() != nil {
				if lastErr == nil {
					lastErr = ctx.Err()
				}
				break
			}
		}
		c.mu.Lock()
		c.stats.Attempts++
		c.mu.Unlock()
		err := c.attempt(ctx, url, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	c.mu.Lock()
	c.stats.Failures++
	c.mu.Unlock()
	return fmt.Errorf("redfish: GET %s: %w", url, lastErr)
}

func (c *Client) attempt(ctx context.Context, url string, out interface{}) error {
	actx, cancel := context.WithTimeout(ctx, c.opts.RequestTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "application/json")
	resp, err := c.opts.HTTPClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	if out == nil {
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Thermal fetches a node's Thermal resource.
func (c *Client) Thermal(ctx context.Context, addr string) (*Thermal, error) {
	var t Thermal
	if err := c.GetJSON(ctx, URL(addr, PathThermal), &t); err != nil {
		return nil, err
	}
	return &t, nil
}

// Power fetches a node's Power resource.
func (c *Client) Power(ctx context.Context, addr string) (*Power, error) {
	var p Power
	if err := c.GetJSON(ctx, URL(addr, PathPower), &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// System fetches a node's System resource.
func (c *Client) System(ctx context.Context, addr string) (*System, error) {
	var s System
	if err := c.GetJSON(ctx, URL(addr, PathSystem), &s); err != nil {
		return nil, err
	}
	return &s, nil
}

// NIC fetches a node's fabric interface with live statistics.
func (c *Client) NIC(ctx context.Context, addr string) (*EthernetInterface, error) {
	var e EthernetInterface
	if err := c.GetJSON(ctx, URL(addr, PathNIC), &e); err != nil {
		return nil, err
	}
	return &e, nil
}

// Manager fetches a node's Manager resource.
func (c *Client) Manager(ctx context.Context, addr string) (*Manager, error) {
	var m Manager
	if err := c.GetJSON(ctx, URL(addr, PathManager), &m); err != nil {
		return nil, err
	}
	return &m, nil
}
