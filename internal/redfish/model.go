// Package redfish implements the subset of the DMTF Redfish data model
// and REST service that MonSTer's Metrics Collector consumes from each
// node's BMC (the iDRAC on the paper's Dell EMC C6320 nodes): the
// Chassis Thermal and Power resources, the System resource (host
// health), and the Manager resource (BMC health). The package provides
// both the simulated BMC servers for an entire fleet and the HTTP
// client — with the connection timeout, read timeout, and retry
// mechanisms Section III-B1 describes — that the collector uses.
package redfish

//lint:file-ignore statssurface the Redfish specification mandates PascalCase member names on the wire

// Status is the Redfish Status object.
type Status struct {
	Health string `json:"Health"` // "OK" | "Warning" | "Critical"
	State  string `json:"State"`  // "Enabled" | "Disabled" | ...
}

// ODataID is a Redfish resource reference.
type ODataID struct {
	ID string `json:"@odata.id"`
}

// ServiceRoot is /redfish/v1/.
type ServiceRoot struct {
	ODataType      string  `json:"@odata.type"`
	ID             string  `json:"Id"`
	Name           string  `json:"Name"`
	RedfishVersion string  `json:"RedfishVersion"`
	Chassis        ODataID `json:"Chassis"`
	Systems        ODataID `json:"Systems"`
	Managers       ODataID `json:"Managers"`
}

// Temperature is one entry of Thermal.Temperatures.
type Temperature struct {
	Name                   string  `json:"Name"`
	MemberID               string  `json:"MemberId"`
	ReadingCelsius         float64 `json:"ReadingCelsius"`
	UpperThresholdCritical float64 `json:"UpperThresholdCritical"`
	UpperThresholdFatal    float64 `json:"UpperThresholdFatal"`
	Status                 Status  `json:"Status"`
}

// Fan is one entry of Thermal.Fans.
type Fan struct {
	Name         string  `json:"FanName"`
	MemberID     string  `json:"MemberId"`
	Reading      float64 `json:"Reading"`
	ReadingUnits string  `json:"ReadingUnits"`
	Status       Status  `json:"Status"`
}

// Thermal is /redfish/v1/Chassis/System.Embedded.1/Thermal.
type Thermal struct {
	ODataType    string        `json:"@odata.type"`
	ID           string        `json:"Id"`
	Name         string        `json:"Name"`
	Temperatures []Temperature `json:"Temperatures"`
	Fans         []Fan         `json:"Fans"`
}

// PowerControl is one entry of Power.PowerControl.
type PowerControl struct {
	Name               string  `json:"Name"`
	MemberID           string  `json:"MemberId"`
	PowerConsumedWatts float64 `json:"PowerConsumedWatts"`
	PowerCapacityWatts float64 `json:"PowerCapacityWatts"`
}

// Voltage is one entry of Power.Voltages.
type Voltage struct {
	Name         string  `json:"Name"`
	MemberID     string  `json:"MemberId"`
	ReadingVolts float64 `json:"ReadingVolts"`
	Status       Status  `json:"Status"`
}

// Power is /redfish/v1/Chassis/System.Embedded.1/Power.
type Power struct {
	ODataType    string         `json:"@odata.type"`
	ID           string         `json:"Id"`
	Name         string         `json:"Name"`
	PowerControl []PowerControl `json:"PowerControl"`
	Voltages     []Voltage      `json:"Voltages"`
}

// ProcessorSummary summarizes the host CPUs.
type ProcessorSummary struct {
	Count  int    `json:"Count"`
	Model  string `json:"Model"`
	Status Status `json:"Status"`
}

// MemorySummary summarizes host memory.
type MemorySummary struct {
	TotalSystemMemoryGiB float64 `json:"TotalSystemMemoryGiB"`
	Status               Status  `json:"Status"`
}

// System is /redfish/v1/Systems/System.Embedded.1.
type System struct {
	ODataType        string           `json:"@odata.type"`
	ID               string           `json:"Id"`
	HostName         string           `json:"HostName"`
	Model            string           `json:"Model"`
	PowerState       string           `json:"PowerState"`
	Status           Status           `json:"Status"`
	ProcessorSummary ProcessorSummary `json:"ProcessorSummary"`
	MemorySummary    MemorySummary    `json:"MemorySummary"`
}

// Manager is /redfish/v1/Managers/iDRAC.Embedded.1.
type Manager struct {
	ODataType       string `json:"@odata.type"`
	ID              string `json:"Id"`
	Name            string `json:"Name"`
	ManagerType     string `json:"ManagerType"`
	Model           string `json:"Model"`
	FirmwareVersion string `json:"FirmwareVersion"`
	Status          Status `json:"Status"`
}

// EthernetInterface is one NIC with Dell-OEM-style live statistics —
// the out-of-band network visibility the paper lists as future work.
type EthernetInterface struct {
	ODataType  string  `json:"@odata.type"`
	ID         string  `json:"Id"`
	Name       string  `json:"Name"`
	SpeedMbps  float64 `json:"SpeedMbps"`
	LinkStatus string  `json:"LinkStatus"`
	Status     Status  `json:"Status"`
	Oem        NICOem  `json:"Oem"`
}

// NICOem carries vendor statistics (rates in bytes/second).
type NICOem struct {
	RxBps float64 `json:"RxBps"`
	TxBps float64 `json:"TxBps"`
}

// Resource paths served by every simulated BMC, matching the iDRAC URL
// layout quoted in Section III-B1 of the paper.
const (
	PathRoot    = "/redfish/v1/"
	PathThermal = "/redfish/v1/Chassis/System.Embedded.1/Thermal"
	PathPower   = "/redfish/v1/Chassis/System.Embedded.1/Power"
	PathSystem  = "/redfish/v1/Systems/System.Embedded.1"
	PathManager = "/redfish/v1/Managers/iDRAC.Embedded.1"
	PathNIC     = "/redfish/v1/Systems/System.Embedded.1/EthernetInterfaces/NIC.Embedded.1"
)

// Categories lists the four telemetry categories the collector polls —
// one URL per category per node, 4 × 467 = 1868 requests per sweep on
// the paper's cluster.
func Categories() []string {
	return []string{PathThermal, PathPower, PathSystem, PathManager}
}

// FirmwareVersion is the iDRAC firmware the paper's deployment ran
// (model 13G DCS).
const FirmwareVersion = "2.63.60.61"
