package redfish

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"monster/internal/clock"
	"monster/internal/simnode"
)

func newTestBMC(t *testing.T, opts BMCOptions) (*simnode.Node, *BMC) {
	t.Helper()
	node := simnode.New(simnode.Config{Name: "1-1", Addr: "10.101.1.1", Seed: 1})
	node.Step(10 * time.Minute)
	return node, NewBMC(node, opts)
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, "https://10.101.1.1"+path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestBMCServesServiceRoot(t *testing.T) {
	_, bmc := newTestBMC(t, BMCOptions{})
	rec := get(t, bmc, PathRoot)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var root ServiceRoot
	if err := json.Unmarshal(rec.Body.Bytes(), &root); err != nil {
		t.Fatal(err)
	}
	if root.RedfishVersion == "" || root.Chassis.ID == "" {
		t.Fatalf("incomplete root: %+v", root)
	}
}

func TestBMCThermalPayloadShape(t *testing.T) {
	node, bmc := newTestBMC(t, BMCOptions{})
	rec := get(t, bmc, PathThermal)
	var th Thermal
	if err := json.Unmarshal(rec.Body.Bytes(), &th); err != nil {
		t.Fatal(err)
	}
	// Table I: CPU1, CPU2, inlet temperature; four fans.
	if len(th.Temperatures) != 3 {
		t.Fatalf("temperatures = %d, want 3", len(th.Temperatures))
	}
	if len(th.Fans) != 4 {
		t.Fatalf("fans = %d, want 4", len(th.Fans))
	}
	rd := node.Readings()
	if diff := th.Temperatures[0].ReadingCelsius - rd.CPUTempC[0]; diff > 0.2 || diff < -0.2 {
		t.Fatalf("CPU1 reading %v does not track node state %v", th.Temperatures[0].ReadingCelsius, rd.CPUTempC[0])
	}
	if th.Fans[0].ReadingUnits != "RPM" {
		t.Fatalf("fan units = %q", th.Fans[0].ReadingUnits)
	}
}

func TestBMCPowerPayload(t *testing.T) {
	node, bmc := newTestBMC(t, BMCOptions{})
	rec := get(t, bmc, PathPower)
	var p Power
	if err := json.Unmarshal(rec.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if len(p.PowerControl) != 1 {
		t.Fatalf("power control entries = %d", len(p.PowerControl))
	}
	rd := node.Readings()
	if diff := p.PowerControl[0].PowerConsumedWatts - rd.PowerW; diff > 2 || diff < -2 {
		t.Fatalf("power %v vs node %v", p.PowerControl[0].PowerConsumedWatts, rd.PowerW)
	}
	if len(p.Voltages) != 3 {
		t.Fatalf("voltages = %d", len(p.Voltages))
	}
}

func TestBMCSystemAndManagerHealth(t *testing.T) {
	node, bmc := newTestBMC(t, BMCOptions{})
	var sys System
	if err := json.Unmarshal(get(t, bmc, PathSystem).Body.Bytes(), &sys); err != nil {
		t.Fatal(err)
	}
	if sys.Status.Health != "OK" || sys.PowerState != "On" {
		t.Fatalf("system = %+v", sys.Status)
	}
	var man Manager
	if err := json.Unmarshal(get(t, bmc, PathManager).Body.Bytes(), &man); err != nil {
		t.Fatal(err)
	}
	if man.FirmwareVersion != FirmwareVersion {
		t.Fatalf("firmware = %q", man.FirmwareVersion)
	}

	node.Inject(simnode.FaultBMCDegrade)
	if err := json.Unmarshal(get(t, bmc, PathManager).Body.Bytes(), &man); err != nil {
		t.Fatal(err)
	}
	if man.Status.Health != "Warning" {
		t.Fatalf("degraded BMC health = %q", man.Status.Health)
	}
}

func TestBMCNotFoundAndMethodNotAllowed(t *testing.T) {
	_, bmc := newTestBMC(t, BMCOptions{})
	if rec := get(t, bmc, "/redfish/v1/Nope"); rec.Code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", rec.Code)
	}
	req := httptest.NewRequest(http.MethodPost, "https://10.101.1.1"+PathSystem, nil)
	rec := httptest.NewRecorder()
	bmc.ServeHTTP(rec, req)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status = %d, want 405", rec.Code)
	}
}

func TestBMCErrorRate(t *testing.T) {
	_, bmc := newTestBMC(t, BMCOptions{Seed: 7})
	bmc.SetErrorRate(1.0)
	if rec := get(t, bmc, PathSystem); rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	bmc.SetErrorRate(0)
	if rec := get(t, bmc, PathSystem); rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
}

func TestBMCLatencyDelaysResponse(t *testing.T) {
	_, bmc := newTestBMC(t, BMCOptions{Latency: 30 * time.Millisecond})
	startT := time.Now()
	get(t, bmc, PathSystem)
	if elapsed := time.Since(startT); elapsed < 25*time.Millisecond {
		t.Fatalf("request returned in %v, latency not applied", elapsed)
	}
}

func TestBMCConcurrencyLimitQueues(t *testing.T) {
	_, bmc := newTestBMC(t, BMCOptions{Latency: 20 * time.Millisecond, MaxConcurrent: 1})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			get(t, bmc, PathSystem)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 55*time.Millisecond {
		t.Fatalf("3 serialized 20ms requests finished in %v", elapsed)
	}
	if bmc.Requests() != 3 {
		t.Fatalf("requests = %d", bmc.Requests())
	}
}

func TestFleetRoutesByHost(t *testing.T) {
	nodes, fleet := NewTestFleet(3, clock.NewReal())
	nodes.Step(time.Minute)
	if fleet.Len() != 3 {
		t.Fatalf("fleet len = %d", fleet.Len())
	}
	client := NewClient(ClientOptions{HTTPClient: fleet.Client(), RequestTimeout: 2 * time.Second})
	sys, err := client.System(context.Background(), "10.101.1.2")
	if err != nil {
		t.Fatal(err)
	}
	if sys.HostName != "1-2" {
		t.Fatalf("hostname = %q, want 1-2", sys.HostName)
	}
}

func TestFleetUnknownHost(t *testing.T) {
	_, fleet := NewTestFleet(1, clock.NewReal())
	client := NewClient(ClientOptions{HTTPClient: fleet.Client(), RequestTimeout: time.Second, Retries: 1, RetryBackoff: time.Millisecond})
	_, err := client.System(context.Background(), "10.9.9.9")
	if err == nil || !strings.Contains(err.Error(), "no route to host") {
		t.Fatalf("err = %v", err)
	}
	st := client.Stats()
	if st.Failures != 1 || st.Attempts != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClientRetriesTransientErrors(t *testing.T) {
	nodes, fleet := NewTestFleet(1, clock.NewReal())
	_ = nodes
	bmc, _ := fleet.BMC("10.101.1.1")
	// Fail roughly half the requests; retries should still succeed most
	// of the time across many calls.
	bmc.SetErrorRate(0.5)
	client := NewClient(ClientOptions{
		HTTPClient:     fleet.Client(),
		RequestTimeout: time.Second,
		Retries:        5,
		RetryBackoff:   time.Millisecond,
	})
	ok := 0
	for i := 0; i < 20; i++ {
		if _, err := client.Power(context.Background(), "10.101.1.1"); err == nil {
			ok++
		}
	}
	if ok < 18 {
		t.Fatalf("only %d/20 requests survived retries", ok)
	}
	if client.Stats().Retries == 0 {
		t.Fatal("no retries recorded despite 50% error rate")
	}
}

func TestClientTimeoutOnUnresponsiveBMC(t *testing.T) {
	_, fleet := NewTestFleet(1, clock.NewReal())
	bmc, _ := fleet.BMC("10.101.1.1")
	bmc.opts.Latency = 5 * time.Second // far beyond the request timeout
	client := NewClient(ClientOptions{
		HTTPClient:     fleet.Client(),
		RequestTimeout: 50 * time.Millisecond,
		Retries:        1,
		RetryBackoff:   time.Millisecond,
	})
	start := time.Now()
	_, err := client.Thermal(context.Background(), "10.101.1.1")
	if err == nil {
		t.Fatal("expected timeout error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

func TestClientUnreachableBMC(t *testing.T) {
	_, fleet := NewTestFleet(1, clock.NewReal())
	bmc, _ := fleet.BMC("10.101.1.1")
	bmc.SetUnreachable(true)
	client := NewClient(ClientOptions{HTTPClient: fleet.Client(), RequestTimeout: time.Second, Retries: 1, RetryBackoff: time.Millisecond})
	if _, err := client.Manager(context.Background(), "10.101.1.1"); err == nil {
		t.Fatal("expected connection error")
	}
	bmc.SetUnreachable(false)
	if _, err := client.Manager(context.Background(), "10.101.1.1"); err != nil {
		t.Fatalf("recovered BMC still failing: %v", err)
	}
}

func TestClientContextCancellation(t *testing.T) {
	_, fleet := NewTestFleet(1, clock.NewReal())
	bmc, _ := fleet.BMC("10.101.1.1")
	bmc.opts.Latency = 5 * time.Second
	client := NewClient(ClientOptions{HTTPClient: fleet.Client(), RequestTimeout: 10 * time.Second, Retries: 3, RetryBackoff: time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := client.GetJSON(ctx, URL("10.101.1.1", PathThermal), nil)
	if err == nil {
		t.Fatal("expected cancellation")
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("cancellation did not shortcut retries")
	}
}

func TestCategoriesCount(t *testing.T) {
	if got := len(Categories()); got != 4 {
		t.Fatalf("categories = %d, want 4 (Table I)", got)
	}
	// 467 nodes × 4 categories = 1868 request URLs per sweep (paper §III-B1).
	if got := 467 * len(Categories()); got != 1868 {
		t.Fatalf("request pool = %d, want 1868", got)
	}
}

func TestURLShape(t *testing.T) {
	got := URL("10.101.1.1", PathThermal)
	want := "https://10.101.1.1/redfish/v1/Chassis/System.Embedded.1/Thermal"
	if got != want {
		t.Fatalf("URL = %q, want %q", got, want)
	}
}

func TestTelemetryServiceGatedByFirmware(t *testing.T) {
	node := simnode.New(simnode.Config{Name: "1-1", Addr: "10.101.1.1", Seed: 1})
	node.Step(5 * time.Minute)
	old := NewBMC(node, BMCOptions{})
	if rec := get(t, old, PathMetricReport); rec.Code != http.StatusNotFound {
		t.Fatalf("13G firmware served telemetry: %d", rec.Code)
	}
	if rec := get(t, old, PathTelemetryService); rec.Code != http.StatusNotFound {
		t.Fatalf("13G firmware served telemetry service: %d", rec.Code)
	}
	neu := NewBMC(node, BMCOptions{Telemetry: true})
	rec := get(t, neu, PathTelemetryService)
	if rec.Code != http.StatusOK {
		t.Fatalf("telemetry service = %d", rec.Code)
	}
}

func TestMetricReportCarriesWholeNode(t *testing.T) {
	node := simnode.New(simnode.Config{Name: "1-1", Addr: "10.101.1.1", Seed: 2})
	node.SetDemand(0.8, 64, 2)
	node.Step(10 * time.Minute)
	bmc := NewBMC(node, BMCOptions{Telemetry: true})
	var report MetricReport
	if err := json.Unmarshal(get(t, bmc, PathMetricReport).Body.Bytes(), &report); err != nil {
		t.Fatal(err)
	}
	// 3 temps + 4 fans + 2 NIC rates + power + 2 healths + power state = 13 metrics.
	if len(report.MetricValues) != 13 {
		t.Fatalf("metric values = %d, want 13", len(report.MetricValues))
	}
	rd := node.Readings()
	if v, ok := report.Value(MetricCPU1Temp); !ok || v < rd.CPUTempC[0]-1 || v > rd.CPUTempC[0]+1 {
		t.Fatalf("cpu1 = %v (node %v)", v, rd.CPUTempC[0])
	}
	if v, ok := report.Value(MetricPower); !ok || v < 50 {
		t.Fatalf("power = %v", v)
	}
	if h, ok := report.StringValue(MetricHostHealth); !ok || h != "OK" {
		t.Fatalf("health = %q", h)
	}
	if _, ok := report.Value("Nope"); ok {
		t.Fatal("unknown metric id resolved")
	}
	if _, ok := report.Value(MetricPowerState); ok {
		t.Fatal("non-numeric metric parsed as float")
	}
}

func TestClientMetricReport(t *testing.T) {
	nodes := simnode.NewFleet(2, 1)
	fleet := NewFleet(nodes, BMCOptions{Telemetry: true, MaxConcurrent: 4})
	nodes.Step(time.Minute)
	client := NewClient(ClientOptions{HTTPClient: fleet.Client(), RequestTimeout: 2 * time.Second})
	report, err := client.MetricReport(context.Background(), "10.101.1.2")
	if err != nil {
		t.Fatal(err)
	}
	if len(report.MetricValues) != 13 {
		t.Fatalf("metric values = %d", len(report.MetricValues))
	}
}

// TestClientNoRetriesSentinel pins the zero-vs-unset contract: a zero
// Retries selects the default of 2 (three attempts), while the
// explicit NoRetries sentinel really means one attempt. Before the
// sentinel existed, "no retries" was silently impossible to configure.
func TestClientNoRetriesSentinel(t *testing.T) {
	attempts := func(opts ClientOptions) int64 {
		_, fleet := NewTestFleet(1, clock.NewReal())
		bmc, _ := fleet.BMC("10.101.1.1")
		bmc.SetUnreachable(true)
		opts.HTTPClient = fleet.Client()
		opts.RequestTimeout = time.Second
		client := NewClient(opts)
		if _, err := client.Power(context.Background(), "10.101.1.1"); err == nil {
			t.Fatal("unreachable BMC answered")
		}
		return client.Stats().Attempts
	}
	if got := attempts(ClientOptions{RetryBackoff: NoRetryBackoff}); got != 3 {
		t.Fatalf("default Retries made %d attempts, want 3 (1 + 2 retries)", got)
	}
	if got := attempts(ClientOptions{Retries: NoRetries}); got != 1 {
		t.Fatalf("NoRetries made %d attempts, want exactly 1", got)
	}
	if got := attempts(ClientOptions{Retries: -7}); got != 1 {
		t.Fatalf("negative Retries made %d attempts, want exactly 1", got)
	}
}

// TestClientBackoffSchedule pins the retry delay schedule: exponential
// from the base, jitter within [d/2, d), capped at MaxRetryBackoff,
// and a pure function of (url, attempt) so concurrent collectors are
// reproducible.
func TestClientBackoffSchedule(t *testing.T) {
	c := NewClient(ClientOptions{RetryBackoff: 100 * time.Millisecond})
	const url = "https://10.101.1.1/redfish/v1/Chassis/System.Embedded.1/Power"

	var prev time.Duration
	for attempt := 1; attempt <= 12; attempt++ {
		d := c.backoff(url, attempt)
		nominal := 100 * time.Millisecond << (attempt - 1)
		if nominal > MaxRetryBackoff || nominal <= 0 {
			nominal = MaxRetryBackoff
		}
		if d < nominal/2 || d >= nominal {
			t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, d, nominal/2, nominal)
		}
		if d2 := c.backoff(url, attempt); d2 != d {
			t.Fatalf("attempt %d: backoff not deterministic: %v vs %v", attempt, d, d2)
		}
		if attempt > 1 && d < prev/2 {
			t.Fatalf("attempt %d: backoff %v collapsed below half of previous %v", attempt, d, prev)
		}
		prev = d
	}
	if d := c.backoff(url, 1000); d >= MaxRetryBackoff {
		t.Fatalf("huge attempt: backoff %v not capped below %v", d, MaxRetryBackoff)
	}
	if a, b := c.backoff(url, 3), c.backoff(url+"x", 3); a == b {
		t.Fatalf("distinct URLs produced identical jitter %v — fleet retries in lockstep", a)
	}

	// Explicitly-disabled backoff retries immediately.
	none := NewClient(ClientOptions{RetryBackoff: NoRetryBackoff})
	if d := none.backoff(url, 1); d != 0 {
		t.Fatalf("NoRetryBackoff produced delay %v", d)
	}
}
