package redfish

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"monster/internal/clock"
	"monster/internal/simnode"
)

// BMCOptions tunes a simulated BMC's behaviour.
type BMCOptions struct {
	// Latency is the mean service time of one request. The paper
	// measured 4.29 s on the 13G iDRAC; tests and examples usually scale
	// this down. Zero means no artificial delay.
	Latency time.Duration
	// LatencyJitter is the +/- uniform jitter around Latency.
	LatencyJitter time.Duration
	// MaxConcurrent bounds in-flight requests; the iDRAC has limited
	// resources and serializes beyond a small window. Requests beyond
	// the bound queue (and may then hit the client's timeouts). Zero
	// means 2.
	MaxConcurrent int
	// Clock supplies time for latency simulation. Nil means the real
	// clock.
	Clock clock.Clock
	// Seed randomizes per-request jitter deterministically.
	Seed int64
	// Telemetry enables the Redfish Telemetry Service (newer firmware;
	// the paper's 13G iDRAC predates it). When false the telemetry
	// endpoints return 404, like real old firmware.
	Telemetry bool
}

func (o *BMCOptions) applyDefaults() {
	if o.MaxConcurrent == 0 {
		o.MaxConcurrent = 2
	}
	if o.Clock == nil {
		o.Clock = clock.NewReal()
	}
}

// BMC is a simulated baseboard management controller for one node. It
// implements http.Handler, serving the Redfish resource subset from the
// node's live sensor state.
type BMC struct {
	node *simnode.Node
	opts BMCOptions
	sem  chan struct{}

	mu          sync.Mutex
	rng         *rand.Rand
	unreachable bool
	errorRate   float64
	requests    int64
	rejected    int64
}

// NewBMC creates a BMC serving the given node's sensors.
func NewBMC(node *simnode.Node, opts BMCOptions) *BMC {
	opts.applyDefaults()
	return &BMC{
		node: node,
		opts: opts,
		sem:  make(chan struct{}, opts.MaxConcurrent),
		rng:  rand.New(rand.NewSource(opts.Seed ^ 0x69445241)),
	}
}

// Node returns the backing simulated node.
func (b *BMC) Node() *simnode.Node { return b.node }

// SetUnreachable makes the BMC drop connections (simulating a
// management-network fault or a wedged controller).
func (b *BMC) SetUnreachable(v bool) {
	b.mu.Lock()
	b.unreachable = v
	b.mu.Unlock()
}

// Unreachable reports whether the BMC is currently dropping
// connections.
func (b *BMC) Unreachable() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.unreachable
}

// SetErrorRate makes the fraction r of requests fail with HTTP 500,
// modelling the flaky iDRAC responses the collector's retry mechanism
// exists for.
func (b *BMC) SetErrorRate(r float64) {
	b.mu.Lock()
	b.errorRate = r
	b.mu.Unlock()
}

// Requests reports how many requests this BMC has served (including
// errored ones).
func (b *BMC) Requests() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.requests
}

// serviceDelay samples the per-request latency.
func (b *BMC) serviceDelay() time.Duration {
	if b.opts.Latency == 0 {
		return 0
	}
	d := b.opts.Latency
	if j := b.opts.LatencyJitter; j > 0 {
		b.mu.Lock()
		d += time.Duration(b.rng.Int63n(int64(2*j))) - j
		b.mu.Unlock()
	}
	if d < 0 {
		d = 0
	}
	return d
}

// ServeHTTP implements http.Handler.
func (b *BMC) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b.mu.Lock()
	b.requests++
	failNow := b.errorRate > 0 && b.rng.Float64() < b.errorRate
	b.mu.Unlock()

	// Limited controller resources: occupy a service slot for the whole
	// request, queueing if the controller is saturated.
	b.sem <- struct{}{}
	defer func() { <-b.sem }()

	if d := b.serviceDelay(); d > 0 {
		b.opts.Clock.Sleep(d)
	}
	if failNow {
		b.mu.Lock()
		b.rejected++
		b.mu.Unlock()
		http.Error(w, `{"error":{"message":"iDRAC internal error"}}`, http.StatusInternalServerError)
		return
	}
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}

	var body interface{}
	switch r.URL.Path {
	case PathRoot:
		body = b.serviceRoot()
	case PathThermal, PathThermal + "/":
		body = b.thermal()
	case PathPower, PathPower + "/":
		body = b.power()
	case PathSystem, PathSystem + "/":
		body = b.system()
	case PathManager, PathManager + "/":
		body = b.manager()
	case PathNIC, PathNIC + "/":
		body = b.ethernetInterface()
	case PathTelemetryService, PathTelemetryService + "/":
		if !b.opts.Telemetry {
			http.Error(w, `{"error":{"message":"resource not found"}}`, http.StatusNotFound)
			return
		}
		body = b.telemetryService()
	case PathMetricReport, PathMetricReport + "/":
		if !b.opts.Telemetry {
			http.Error(w, `{"error":{"message":"resource not found"}}`, http.StatusNotFound)
			return
		}
		body = b.metricReport()
	default:
		http.Error(w, `{"error":{"message":"resource not found"}}`, http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(body); err != nil {
		// Client went away mid-response; nothing to do.
		_ = err
	}
}

func (b *BMC) serviceRoot() ServiceRoot {
	return ServiceRoot{
		ODataType:      "#ServiceRoot.v1_3_0.ServiceRoot",
		ID:             "RootService",
		Name:           "Root Service",
		RedfishVersion: "1.4.0",
		Chassis:        ODataID{"/redfish/v1/Chassis"},
		Systems:        ODataID{"/redfish/v1/Systems"},
		Managers:       ODataID{"/redfish/v1/Managers"},
	}
}

func statusOf(h simnode.Health, state string) Status {
	return Status{Health: string(h), State: state}
}

func (b *BMC) thermal() Thermal {
	rd := b.node.Readings()
	tempStatus := func(c float64) Status {
		st := Status{Health: string(simnode.HealthOK), State: "Enabled"}
		if c >= 95 {
			st.Health = string(simnode.HealthCritical)
		} else if c >= 85 {
			st.Health = string(simnode.HealthWarning)
		}
		return st
	}
	th := Thermal{
		ODataType: "#Thermal.v1_4_0.Thermal",
		ID:        "Thermal",
		Name:      "Thermal",
	}
	names := []string{"CPU1 Temp", "CPU2 Temp"}
	for i, name := range names {
		th.Temperatures = append(th.Temperatures, Temperature{
			Name:                   name,
			MemberID:               fmt.Sprintf("iDRAC.Embedded.1#CPU%dTemp", i+1),
			ReadingCelsius:         round1(rd.CPUTempC[i]),
			UpperThresholdCritical: 95,
			UpperThresholdFatal:    100,
			Status:                 tempStatus(rd.CPUTempC[i]),
		})
	}
	th.Temperatures = append(th.Temperatures, Temperature{
		Name:                   "System Board Inlet Temp",
		MemberID:               "iDRAC.Embedded.1#SystemBoardInletTemp",
		ReadingCelsius:         round1(rd.InletTempC),
		UpperThresholdCritical: 42,
		UpperThresholdFatal:    47,
		Status:                 tempStatus(rd.InletTempC + 50), // inlet thresholds differ; keep OK below 35
	})
	// Correct the inlet status: it has its own thresholds.
	inlet := &th.Temperatures[len(th.Temperatures)-1]
	inlet.Status = Status{Health: string(simnode.HealthOK), State: "Enabled"}
	if rd.InletTempC >= 42 {
		inlet.Status.Health = string(simnode.HealthCritical)
	} else if rd.InletTempC >= 38 {
		inlet.Status.Health = string(simnode.HealthWarning)
	}
	for i := 0; i < 4; i++ {
		th.Fans = append(th.Fans, Fan{
			Name:         fmt.Sprintf("System Board Fan%d", i+1),
			MemberID:     fmt.Sprintf("0x17||Fan.Embedded.%d", i+1),
			Reading:      float64(int(rd.FanRPM[i])),
			ReadingUnits: "RPM",
			Status:       Status{Health: string(simnode.HealthOK), State: "Enabled"},
		})
	}
	return th
}

func (b *BMC) power() Power {
	rd := b.node.Readings()
	p := Power{
		ODataType: "#Power.v1_4_0.Power",
		ID:        "Power",
		Name:      "Power",
		PowerControl: []PowerControl{{
			Name:               "System Power Control",
			MemberID:           "PowerControl",
			PowerConsumedWatts: round1(rd.PowerW),
			PowerCapacityWatts: 498,
		}},
	}
	names := []string{"CPU1 VCORE PG", "CPU2 VCORE PG", "System Board 12V"}
	for i, v := range rd.VoltageV {
		name := fmt.Sprintf("Voltage %d", i+1)
		if i < len(names) {
			name = names[i]
		}
		p.Voltages = append(p.Voltages, Voltage{
			Name:         name,
			MemberID:     fmt.Sprintf("Volt%d", i+1),
			ReadingVolts: round3(v),
			Status:       Status{Health: string(simnode.HealthOK), State: "Enabled"},
		})
	}
	return p
}

func (b *BMC) system() System {
	rd := b.node.Readings()
	cfg := b.node.Config()
	return System{
		ODataType:  "#ComputerSystem.v1_5_0.ComputerSystem",
		ID:         "System.Embedded.1",
		HostName:   cfg.Name,
		Model:      "PowerEdge C6320",
		PowerState: rd.PowerState,
		Status:     statusOf(rd.HostHealth, "Enabled"),
		ProcessorSummary: ProcessorSummary{
			Count:  2,
			Model:  "Intel(R) Xeon(R) CPU E5-2695 v4 @ 2.10GHz",
			Status: statusOf(rd.HostHealth, "Enabled"),
		},
		MemorySummary: MemorySummary{
			TotalSystemMemoryGiB: cfg.MemoryGB,
			Status:               statusOf(simnode.HealthOK, "Enabled"),
		},
	}
}

func (b *BMC) ethernetInterface() EthernetInterface {
	net := b.node.Network()
	rd := b.node.Readings()
	link := "LinkUp"
	if rd.PowerState != "On" {
		link = "LinkDown"
	}
	return EthernetInterface{
		ODataType:  "#EthernetInterface.v1_4_0.EthernetInterface",
		ID:         "NIC.Embedded.1",
		Name:       "Omni-Path Fabric Interface",
		SpeedMbps:  100000,
		LinkStatus: link,
		Status:     Status{Health: "OK", State: "Enabled"},
		Oem:        NICOem{RxBps: round1(net.RxBps), TxBps: round1(net.TxBps)},
	}
}

func (b *BMC) manager() Manager {
	rd := b.node.Readings()
	return Manager{
		ODataType:       "#Manager.v1_3_3.Manager",
		ID:              "iDRAC.Embedded.1",
		Name:            "Manager",
		ManagerType:     "BMC",
		Model:           "13G DCS",
		FirmwareVersion: FirmwareVersion,
		Status:          statusOf(rd.BMCHealth, "Enabled"),
	}
}

func round1(v float64) float64 { return float64(int(v*10+0.5)) / 10 }
func round3(v float64) float64 { return float64(int(v*1000+0.5)) / 1000 }
