package redfish

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"

	"monster/internal/clock"
	"monster/internal/simnode"
)

// Fleet hosts one simulated BMC per node and routes HTTP requests to
// them by host address without opening operating-system sockets: it
// implements http.RoundTripper, so a standard *http.Client pointed at
// "https://10.101.1.31/redfish/v1/..." is served in-process by node
// 1-31's BMC. This is how a 467-BMC management network fits in one
// test process.
type Fleet struct {
	mu   sync.RWMutex
	bmcs map[string]*BMC // keyed by node management address
}

// NewFleet creates BMCs for every node in the fleet. Per-BMC seeds are
// derived from the node seed so latency jitter is deterministic.
func NewFleet(nodes *simnode.Fleet, opts BMCOptions) *Fleet {
	f := &Fleet{bmcs: make(map[string]*BMC, nodes.Len())}
	for i := 0; i < nodes.Len(); i++ {
		n := nodes.Node(i)
		o := opts
		o.Seed = opts.Seed + int64(i)*104729
		f.bmcs[n.Addr()] = NewBMC(n, o)
	}
	return f
}

// BMC returns the BMC at the given management address.
func (f *Fleet) BMC(addr string) (*BMC, bool) {
	f.mu.RLock()
	defer f.mu.RUnlock()
	b, ok := f.bmcs[addr]
	return b, ok
}

// Len reports the number of BMCs.
func (f *Fleet) Len() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.bmcs)
}

// Addrs returns every BMC address (unordered).
func (f *Fleet) Addrs() []string {
	f.mu.RLock()
	defer f.mu.RUnlock()
	out := make([]string, 0, len(f.bmcs))
	for a := range f.bmcs {
		out = append(out, a)
	}
	return out
}

// RoundTrip implements http.RoundTripper by dispatching to the BMC
// selected by the request host. Unknown hosts and unreachable BMCs
// produce a transport-level error, exactly like a refused connection.
func (f *Fleet) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Hostname()
	f.mu.RLock()
	bmc, ok := f.bmcs[host]
	f.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("redfish: no route to host %s", host)
	}
	if bmc.Unreachable() {
		return nil, fmt.Errorf("redfish: connect to %s: connection refused", host)
	}
	rec := httptest.NewRecorder()
	done := make(chan struct{})
	go func() {
		bmc.ServeHTTP(rec, req)
		close(done)
	}()
	ctx := req.Context()
	select {
	case <-done:
	case <-ctx.Done():
		// The BMC keeps grinding in the background (like a real slow
		// controller) but the client sees its timeout.
		return nil, ctx.Err()
	}
	return rec.Result(), nil
}

// Client returns an *http.Client whose transport is this fleet.
func (f *Fleet) Client() *http.Client {
	return &http.Client{Transport: f}
}

// URL builds the full URL for a resource path on a node, in the
// "https://10.101.1.1/redfish/v1/..." form the paper quotes.
func URL(addr, path string) string {
	return "https://" + addr + path
}

// NewTestFleet is a convenience for tests: n nodes with zero-latency
// BMCs on the given clock.
func NewTestFleet(n int, clk clock.Clock) (*simnode.Fleet, *Fleet) {
	nodes := simnode.NewFleet(n, 1)
	bmcs := NewFleet(nodes, BMCOptions{Clock: clk, MaxConcurrent: 8})
	return nodes, bmcs
}
