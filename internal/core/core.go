// Package core wires the complete MonSTer deployment together: the
// simulated cluster substrate (node physics, BMC fleet, UGE-style
// resource manager fed by a synthetic workload) and the monitoring
// pipeline on top of it (Metrics Collector → time-series database →
// Metrics Builder). It is the entry point the examples, the CLI tools,
// and the experiment harness all share.
package core

import (
	"context"
	"fmt"
	"io"
	"time"

	"monster/internal/alerting"
	"monster/internal/builder"
	"monster/internal/clock"
	"monster/internal/collector"
	"monster/internal/ingest"
	"monster/internal/redfish"
	"monster/internal/scheduler"
	"monster/internal/simnode"
	"monster/internal/tsdb"
)

// QuanahNodes is the size of the paper's deployment target.
const QuanahNodes = 467

// Config assembles a System.
type Config struct {
	// Nodes is the cluster size. Zero means 64 (a laptop-friendly
	// default; use QuanahNodes for paper-scale runs).
	Nodes int
	// Seed drives every stochastic component deterministically.
	Seed int64
	// Start is the simulation epoch. Zero means 2020-04-20T12:00:00Z
	// (the example window in Section III-D).
	Start time.Time
	// Workload is the synthetic user mix. Nil means
	// scheduler.DefaultUserMix. Empty (non-nil, length 0) disables
	// submissions.
	Workload []scheduler.UserProfile
	// Trace, when non-nil, replays this exact submission trace instead
	// of generating one from Workload (see scheduler.LoadTrace and
	// scheduler.LoadSWF).
	Trace *scheduler.Workload
	// WorkloadHorizon is how much submission trace to pre-generate.
	// Zero means 48 h.
	WorkloadHorizon time.Duration
	// CollectInterval is the collector cadence. Zero means 60 s.
	CollectInterval time.Duration
	// Schema selects the storage layout.
	Schema collector.SchemaVersion
	// BMCLatency is the per-request BMC service time (0 = instant; the
	// paper's iDRACs averaged 4.29 s).
	BMCLatency time.Duration
	// BMCConcurrency bounds the collector's async fan-out.
	BMCConcurrency int
	// ConcurrentQueries enables the builder's concurrent fan-out.
	ConcurrentQueries bool
	// ShardDuration overrides the TSDB shard width (seconds).
	ShardDuration int64
	// QueryWorkers bounds the storage engine's per-query worker pool
	// for parallel series-group execution (0 = automatic, 1 = serial).
	QueryWorkers int
	// BlockSize overrides the storage engine's seal threshold: columns
	// whose raw tail reaches this many points are compressed into
	// immutable Gorilla-encoded blocks. 0 = engine default (1024),
	// negative disables compression.
	BlockSize int
	// StorageGlobalLock restores the engine's pre-snapshot global
	// RWMutex serialization — the A/B baseline for the contention
	// experiment, never useful in production.
	StorageGlobalLock bool
	// WALDir enables crash-safe storage: every mutation is write-ahead
	// logged under this directory, and startup recovers the last
	// checkpoint snapshot plus the log's longest valid prefix. Empty
	// keeps the engine memory-only (the pre-durability behaviour).
	WALDir string
	// FsyncPolicy selects WAL sync behaviour when WALDir is set:
	// tsdb.FsyncInterval (default), FsyncAlways, or FsyncNever.
	FsyncPolicy tsdb.FsyncPolicy
	// FsyncInterval is the sync cadence under FsyncInterval policy
	// (0 = tsdb.DefaultSyncInterval).
	FsyncInterval time.Duration
	// SnapshotInterval is the cadence of the background checkpoint
	// (snapshot + WAL truncation) loop run by RunCheckpoints. Zero
	// selects 5 minutes when WALDir is set.
	SnapshotInterval time.Duration
	// Retention drops storage shards older than this (0 keeps
	// everything). Enforced once per collection interval.
	Retention time.Duration
	// Rollups are continuous downsampling queries materialized after
	// every collection cycle.
	Rollups []tsdb.RollupSpec
	// RawRetention expires raw samples older than this from rollup
	// source measurements, once every covering rollup has materialized
	// them — the age-based tiering knob (coarse tiers are kept by
	// Retention, raw detail only this long). 0 keeps raw forever.
	// Requires Rollups; enforced once per collection interval.
	RawRetention time.Duration
	// DecodeCacheBytes bounds the storage engine's sealed-block decode
	// cache (0 = engine default 64 MiB, negative = unbounded — the
	// keep-everything A/B baseline).
	DecodeCacheBytes int64
	// ColdDir enables the file-backed cold tier: sealed blocks past
	// ColdAfter (or past the resident budget) spill their compressed
	// payloads to per-shard segment files under this directory and are
	// read back transparently on scan. Empty keeps every sealed block
	// resident (the pre-cold-tier behaviour).
	ColdDir string
	// ColdAfter is the age past which sealed blocks spill to ColdDir,
	// measured against simulation time and enforced once per collection
	// interval. Zero selects 1 h when ColdDir is set.
	ColdAfter time.Duration
	// ColdMaxResidentBytes bounds resident compressed sealed-block
	// bytes: after the age pass, the oldest remaining blocks spill
	// until the residue fits. 0 = no budget (age-only spilling).
	ColdMaxResidentBytes int64
	// StoragePlannerOff disables the tier-aware query planner so
	// aggregate queries always scan raw storage — the A/B baseline for
	// the rollup-rewrite experiment.
	StoragePlannerOff bool
	// CacheResponses wraps the builder API in an LRU response cache.
	CacheResponses bool
	// StoreAllHealth disables the transition-only health filter
	// (Section III-B3) — the ablation baseline.
	StoreAllHealth bool
	// Telemetry equips the BMC firmware with the Redfish Telemetry
	// Service and makes the collector sweep with one MetricReport per
	// node instead of four category GETs (the paper's future work).
	Telemetry bool
	// CollectNetwork extends collection with NIC statistics (a fifth
	// Redfish category) and filesystem throughput — Section VI's
	// missing metrics.
	CollectNetwork bool
	// AlertRules enables the Nagios-role alerting engine, evaluated
	// after every collection cycle. Nil disables alerting; use
	// alerting.DefaultRules() for the Table I thresholds.
	AlertRules []alerting.Rule
	// IngestRules are the pipeline router's declarative transformation
	// rules, applied in order to every collected, pushed, or scraped
	// point (e.g. "add_tag:cluster=quanah",
	// "derive:PowerKW.Reading=Power.Reading*0.001"). Empty passes
	// points through untouched — the default single-path behaviour.
	IngestRules []string
	// IngestQueue bounds the pipeline's router queue and each sink
	// queue, in batches (0 = ingest.DefaultQueueBatches).
	IngestQueue int
	// IngestOverflow selects what a full bounded stage does: "block"
	// (backpressure, the default) or "drop-oldest".
	IngestOverflow string
	// ForwardTo adds a forward sink relaying every routed point to a
	// peer monsterd's push endpoint (line protocol over HTTP POST),
	// e.g. "http://peer:8080/v1/ingest/write".
	ForwardTo string
	// ForwardOnly removes the local storage sink, turning this instance
	// into a pure relay. Requires ForwardTo.
	ForwardOnly bool
	// DebugSink, when non-nil, adds a sink rendering every routed point
	// as line protocol to this writer (os.Stdout, a file).
	DebugSink io.Writer
	// ScrapeTargets adds a Prometheus-style scrape receiver polling
	// these text-exposition endpoints on ScrapeInterval.
	ScrapeTargets []string
	// ScrapeInterval is the scrape cadence (0 = 60 s).
	ScrapeInterval time.Duration
}

func (c *Config) applyDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 64
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2020, 4, 20, 12, 0, 0, 0, time.UTC)
	}
	if c.WorkloadHorizon == 0 {
		c.WorkloadHorizon = 48 * time.Hour
	}
	if c.CollectInterval == 0 {
		c.CollectInterval = 60 * time.Second
	}
	if c.Workload == nil {
		c.Workload = scheduler.DefaultUserMix()
	}
	if c.WALDir != "" && c.SnapshotInterval == 0 {
		c.SnapshotInterval = 5 * time.Minute
	}
	if c.ColdDir != "" && c.ColdAfter == 0 {
		c.ColdAfter = time.Hour
	}
}

// System is a fully wired MonSTer deployment over a simulated cluster.
type System struct {
	Config     Config
	Nodes      *simnode.Fleet
	BMCs       *redfish.Fleet
	QMaster    *scheduler.QMaster
	SchedAPI   *scheduler.API
	DB         *tsdb.DB
	Collector  *collector.Collector
	Builder    *builder.Builder
	BuilderAPI *builder.API
	Cache      *builder.Cache   // non-nil when Config.CacheResponses
	Rollups    *tsdb.Rollups    // non-nil when Config.Rollups is set
	Alerts     *alerting.Engine // non-nil when Config.AlertRules is set
	Workload   *scheduler.Workload
	// Ingest is the pluggable pipeline every point now flows through:
	// receivers (poll, push, optionally scrape) → router → sinks. With
	// the default config it contains exactly the poll receiver and the
	// local tsdb sink — the classic single path.
	Ingest *ingest.Pipeline
	Poll   *ingest.PollReceiver
	Push   *ingest.PushReceiver   // mount at the push endpoint to accept line protocol
	Scrape *ingest.ScrapeReceiver // non-nil when Config.ScrapeTargets
	Local  *ingest.TSDBSink       // non-nil unless Config.ForwardOnly
	Fwd    *ingest.ForwardSink    // non-nil when Config.ForwardTo
	// Recovery reports what startup reconstructed from the WAL
	// directory (zero value when Config.WALDir is empty).
	Recovery tsdb.RecoveryInfo

	now         time.Time
	nextCollect time.Time
}

// New builds a System; it panics on a bad configuration or a failed
// WAL recovery. NewSystem is the error-returning form daemons use.
func New(cfg Config) *System {
	sys, err := NewSystem(cfg)
	if err != nil {
		panic(fmt.Sprintf("core: %v", err))
	}
	return sys
}

// NewSystem builds a System, reporting configuration and storage
// recovery failures instead of panicking.
func NewSystem(cfg Config) (*System, error) {
	cfg.applyDefaults()
	nodes := simnode.NewFleet(cfg.Nodes, cfg.Seed)
	bmcs := redfish.NewFleet(nodes, redfish.BMCOptions{
		Latency:       cfg.BMCLatency,
		MaxConcurrent: 8,
		Seed:          cfg.Seed,
		Telemetry:     cfg.Telemetry,
	})
	qm := scheduler.NewQMaster(nodes.Nodes(), cfg.Start, scheduler.Options{})
	api := scheduler.NewAPI(qm)
	storageOpts := tsdb.Options{
		ShardDuration:        cfg.ShardDuration,
		ExecWorkers:          cfg.QueryWorkers,
		BlockSize:            cfg.BlockSize,
		GlobalLock:           cfg.StorageGlobalLock,
		DecodeCacheBytes:     cfg.DecodeCacheBytes,
		PlannerOff:           cfg.StoragePlannerOff,
		ColdDir:              cfg.ColdDir,
		ColdMaxResidentBytes: cfg.ColdMaxResidentBytes,
	}
	var (
		db       *tsdb.DB
		recovery tsdb.RecoveryInfo
	)
	if cfg.WALDir != "" {
		var err error
		db, recovery, err = tsdb.OpenDurable(storageOpts, tsdb.WALOptions{
			Dir:          cfg.WALDir,
			Policy:       cfg.FsyncPolicy,
			SyncInterval: cfg.FsyncInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("storage recovery: %w", err)
		}
	} else {
		db = tsdb.Open(storageOpts)
	}

	rf := redfish.NewClient(redfish.ClientOptions{
		HTTPClient:     bmcs.Client(),
		RequestTimeout: 30 * time.Second,
		Retries:        2,
		RetryBackoff:   10 * time.Millisecond,
	})
	addrs := make([]string, nodes.Len())
	for i := range addrs {
		addrs[i] = nodes.Node(i).Addr()
	}
	colOpts := collector.Options{
		Interval:       cfg.CollectInterval,
		Schema:         cfg.Schema,
		BMCConcurrency: cfg.BMCConcurrency,
	}
	if cfg.StoreAllHealth {
		off := false
		colOpts.FilterHealth = &off
	}
	colOpts.UseTelemetry = cfg.Telemetry
	colOpts.CollectNetwork = cfg.CollectNetwork
	col := collector.New(addrs, rf, &collector.DirectSchedulerSource{API: api}, db, colOpts)
	b := builder.New(db, builder.Options{Concurrent: cfg.ConcurrentQueries})
	var cache *builder.Cache
	if cfg.CacheResponses {
		cache = builder.NewCache(b, 0)
	}
	var rollups *tsdb.Rollups
	if len(cfg.Rollups) > 0 {
		rollups = tsdb.NewRollups(db)
		for _, spec := range cfg.Rollups {
			if err := rollups.Add(spec); err != nil {
				return nil, fmt.Errorf("bad rollup spec: %w", err)
			}
		}
	}
	var alerts *alerting.Engine
	if len(cfg.AlertRules) > 0 {
		var err error
		if alerts, err = alerting.New(db, cfg.AlertRules); err != nil {
			return nil, fmt.Errorf("bad alert rules: %w", err)
		}
	}

	workload := cfg.Trace
	if workload == nil {
		workload = scheduler.GenerateWorkload(cfg.Workload, cfg.Start, cfg.WorkloadHorizon, cfg.Seed)
	}

	// Ingest pipeline: the collector's output is re-homed behind the
	// poll receiver, a push receiver accepts line protocol over HTTP,
	// and the routed stream fans out to the configured sinks. The
	// default config reduces to poll → (no rules) → local tsdb — the
	// exact pre-pipeline path.
	if cfg.ForwardOnly && cfg.ForwardTo == "" {
		return nil, fmt.Errorf("ForwardOnly requires ForwardTo")
	}
	rules, err := ingest.ParseRules(cfg.IngestRules)
	if err != nil {
		return nil, fmt.Errorf("bad ingest rule: %w", err)
	}
	overflow := ingest.OverflowBlock
	if cfg.IngestOverflow != "" {
		if overflow, err = ingest.ParseOverflowPolicy(cfg.IngestOverflow); err != nil {
			return nil, err
		}
	}
	pipe, err := ingest.New(ingest.Options{
		Rules:        rules,
		QueueBatches: cfg.IngestQueue,
		Overflow:     overflow,
	})
	if err != nil {
		return nil, err
	}
	poll := ingest.NewPollReceiver(col, ingest.PollOptions{})
	pipe.AddReceiver(poll)
	push := ingest.NewPushReceiver(ingest.PushOptions{})
	pipe.AddReceiver(push)
	var scrape *ingest.ScrapeReceiver
	if len(cfg.ScrapeTargets) > 0 {
		scrape = ingest.NewScrapeReceiver(ingest.ScrapeOptions{
			Targets:  cfg.ScrapeTargets,
			Interval: cfg.ScrapeInterval,
		})
		pipe.AddReceiver(scrape)
	}
	var local *ingest.TSDBSink
	if !cfg.ForwardOnly {
		local = ingest.NewTSDBSink(db, ingest.TSDBOptions{})
		pipe.AddSink(local)
	}
	var fwd *ingest.ForwardSink
	if cfg.ForwardTo != "" {
		fwd = ingest.NewForwardSink(cfg.ForwardTo, ingest.ForwardOptions{})
		pipe.AddSink(fwd)
	}
	if cfg.DebugSink != nil {
		pipe.AddSink(ingest.NewDebugSink(cfg.DebugSink))
	}
	bapi := builder.NewAPI(b)
	bapi.SetIngestStats(func() any { return pipe.Stats() })

	return &System{
		Config:      cfg,
		Nodes:       nodes,
		BMCs:        bmcs,
		QMaster:     qm,
		SchedAPI:    api,
		DB:          db,
		Collector:   col,
		Builder:     b,
		BuilderAPI:  bapi,
		Cache:       cache,
		Rollups:     rollups,
		Alerts:      alerts,
		Workload:    workload,
		Ingest:      pipe,
		Poll:        poll,
		Push:        push,
		Scrape:      scrape,
		Local:       local,
		Fwd:         fwd,
		Recovery:    recovery,
		now:         cfg.Start,
		nextCollect: cfg.Start.Add(cfg.CollectInterval),
	}, nil
}

// Now reports the simulation time.
func (s *System) Now() time.Time { return s.now }

// Advance steps the cluster substrate (workload arrivals, scheduler,
// node physics) by d at the given resolution, without collecting.
func (s *System) Advance(d time.Duration) {
	const step = 15 * time.Second
	s.advance(d, step, false, context.Background())
}

// AdvanceCollecting steps the cluster and runs a collection cycle at
// every collector interval boundary crossed.
func (s *System) AdvanceCollecting(ctx context.Context, d time.Duration) error {
	const step = 15 * time.Second
	return s.advance(d, step, true, ctx)
}

func (s *System) advance(d, step time.Duration, collect bool, ctx context.Context) error {
	end := s.now.Add(d)
	for s.now.Before(end) {
		next := s.now.Add(step)
		if next.After(end) {
			next = end
		}
		s.Workload.FeedDue(s.QMaster, next)
		s.Nodes.Step(next.Sub(s.now))
		s.QMaster.Tick(next)
		s.now = next
		if collect && !s.now.Before(s.nextCollect) {
			if _, err := s.Collector.CollectOnce(ctx, s.now); err != nil {
				return fmt.Errorf("core: collection at %v: %w", s.now, err)
			}
			if s.Ingest.Running() {
				// Asynchronous stage workers hold the cycle's points in
				// bounded queues; wait for them to land so the rollup,
				// retention, and alert passes below see this cycle's data —
				// the same ordering the inline path gives for free.
				if err := s.Ingest.Flush(ctx); err != nil {
					return fmt.Errorf("core: ingest flush at %v: %w", s.now, err)
				}
			}
			s.nextCollect = s.nextCollect.Add(s.Config.CollectInterval)
			if s.Rollups != nil {
				if _, err := s.Rollups.Run(s.now.Unix()); err != nil {
					return fmt.Errorf("core: rollups at %v: %w", s.now, err)
				}
			}
			if s.Config.Retention > 0 {
				if _, err := s.DB.DeleteBefore(s.now.Add(-s.Config.Retention).Unix()); err != nil {
					return fmt.Errorf("core: retention at %v: %w", s.now, err)
				}
			}
			if s.Config.RawRetention > 0 && s.Rollups != nil {
				if _, err := s.DB.ExpireRaw(s.now.Add(-s.Config.RawRetention).Unix()); err != nil {
					return fmt.Errorf("core: raw-tier expiry at %v: %w", s.now, err)
				}
			}
			if s.Config.ColdDir != "" {
				// After retention and raw expiry have dropped what they
				// will, spill what remains past the age threshold (and
				// past the resident budget) to the cold tier.
				if _, err := s.DB.SpillCold(s.now.Add(-s.Config.ColdAfter).Unix()); err != nil {
					return fmt.Errorf("core: cold spill at %v: %w", s.now, err)
				}
			}
			if s.Alerts != nil {
				if _, err := s.Alerts.Evaluate(s.now, 3*s.Config.CollectInterval); err != nil {
					return fmt.Errorf("core: alert evaluation at %v: %w", s.now, err)
				}
			}
		}
	}
	return nil
}

// Warmup advances the cluster (collecting) until a steady mix of jobs
// is running — convenient before demos and experiments.
func (s *System) Warmup(ctx context.Context, d time.Duration) error {
	return s.AdvanceCollecting(ctx, d)
}

// Durable reports whether the storage layer is backed by a WAL.
func (s *System) Durable() bool { return s.Config.WALDir != "" }

// Checkpoint snapshots the database into the WAL directory and
// truncates the log. It is an error on a non-durable system.
func (s *System) Checkpoint() error { return s.DB.Checkpoint() }

// RunCheckpoints checkpoints on Config.SnapshotInterval until ctx is
// done — the background snapshot+truncate loop monsterd runs so the
// WAL stays short and restarts replay little. It returns ctx's error
// on cancellation, or the first checkpoint failure.
func (s *System) RunCheckpoints(ctx context.Context, clk clock.Clock) error {
	if !s.Durable() {
		return fmt.Errorf("core: checkpoints need Config.WALDir")
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-clk.After(s.Config.SnapshotInterval):
		}
		if err := s.Checkpoint(); err != nil {
			return fmt.Errorf("core: checkpoint: %w", err)
		}
	}
}

// RunIngest starts the pipeline's asynchronous stage workers (router
// loop, one worker per sink, receiver Run loops) and blocks until ctx
// is done. Without it the pipeline processes every emission inline in
// the producer's goroutine — the mode the deterministic simulation
// loop relies on. Daemons that accept pushes or scrape targets run
// this alongside their HTTP server.
func (s *System) RunIngest(ctx context.Context) error {
	return s.Ingest.Run(ctx)
}

// RunLive drives the simulation in real time, scaled by timeScale
// (e.g. 60 = one simulated hour per wall-clock minute), until ctx is
// done. It is what cmd/monsterd uses.
func (s *System) RunLive(ctx context.Context, clk clock.Clock, timeScale float64, tick time.Duration) error {
	if timeScale <= 0 {
		timeScale = 1
	}
	if tick <= 0 {
		tick = time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-clk.After(tick):
		}
		simStep := time.Duration(float64(tick) * timeScale)
		if err := s.AdvanceCollecting(ctx, simStep); err != nil {
			return err
		}
	}
}
