// Package core wires the complete MonSTer deployment together: the
// simulated cluster substrate (node physics, BMC fleet, UGE-style
// resource manager fed by a synthetic workload) and the monitoring
// pipeline on top of it (Metrics Collector → time-series database →
// Metrics Builder). It is the entry point the examples, the CLI tools,
// and the experiment harness all share.
package core

import (
	"context"
	"fmt"
	"time"

	"monster/internal/alerting"
	"monster/internal/builder"
	"monster/internal/clock"
	"monster/internal/collector"
	"monster/internal/redfish"
	"monster/internal/scheduler"
	"monster/internal/simnode"
	"monster/internal/tsdb"
)

// QuanahNodes is the size of the paper's deployment target.
const QuanahNodes = 467

// Config assembles a System.
type Config struct {
	// Nodes is the cluster size. Zero means 64 (a laptop-friendly
	// default; use QuanahNodes for paper-scale runs).
	Nodes int
	// Seed drives every stochastic component deterministically.
	Seed int64
	// Start is the simulation epoch. Zero means 2020-04-20T12:00:00Z
	// (the example window in Section III-D).
	Start time.Time
	// Workload is the synthetic user mix. Nil means
	// scheduler.DefaultUserMix. Empty (non-nil, length 0) disables
	// submissions.
	Workload []scheduler.UserProfile
	// Trace, when non-nil, replays this exact submission trace instead
	// of generating one from Workload (see scheduler.LoadTrace and
	// scheduler.LoadSWF).
	Trace *scheduler.Workload
	// WorkloadHorizon is how much submission trace to pre-generate.
	// Zero means 48 h.
	WorkloadHorizon time.Duration
	// CollectInterval is the collector cadence. Zero means 60 s.
	CollectInterval time.Duration
	// Schema selects the storage layout.
	Schema collector.SchemaVersion
	// BMCLatency is the per-request BMC service time (0 = instant; the
	// paper's iDRACs averaged 4.29 s).
	BMCLatency time.Duration
	// BMCConcurrency bounds the collector's async fan-out.
	BMCConcurrency int
	// ConcurrentQueries enables the builder's concurrent fan-out.
	ConcurrentQueries bool
	// ShardDuration overrides the TSDB shard width (seconds).
	ShardDuration int64
	// QueryWorkers bounds the storage engine's per-query worker pool
	// for parallel series-group execution (0 = automatic, 1 = serial).
	QueryWorkers int
	// StorageGlobalLock restores the engine's pre-snapshot global
	// RWMutex serialization — the A/B baseline for the contention
	// experiment, never useful in production.
	StorageGlobalLock bool
	// Retention drops storage shards older than this (0 keeps
	// everything). Enforced once per collection interval.
	Retention time.Duration
	// Rollups are continuous downsampling queries materialized after
	// every collection cycle.
	Rollups []tsdb.RollupSpec
	// CacheResponses wraps the builder API in an LRU response cache.
	CacheResponses bool
	// StoreAllHealth disables the transition-only health filter
	// (Section III-B3) — the ablation baseline.
	StoreAllHealth bool
	// Telemetry equips the BMC firmware with the Redfish Telemetry
	// Service and makes the collector sweep with one MetricReport per
	// node instead of four category GETs (the paper's future work).
	Telemetry bool
	// CollectNetwork extends collection with NIC statistics (a fifth
	// Redfish category) and filesystem throughput — Section VI's
	// missing metrics.
	CollectNetwork bool
	// AlertRules enables the Nagios-role alerting engine, evaluated
	// after every collection cycle. Nil disables alerting; use
	// alerting.DefaultRules() for the Table I thresholds.
	AlertRules []alerting.Rule
}

func (c *Config) applyDefaults() {
	if c.Nodes == 0 {
		c.Nodes = 64
	}
	if c.Start.IsZero() {
		c.Start = time.Date(2020, 4, 20, 12, 0, 0, 0, time.UTC)
	}
	if c.WorkloadHorizon == 0 {
		c.WorkloadHorizon = 48 * time.Hour
	}
	if c.CollectInterval == 0 {
		c.CollectInterval = 60 * time.Second
	}
	if c.Workload == nil {
		c.Workload = scheduler.DefaultUserMix()
	}
}

// System is a fully wired MonSTer deployment over a simulated cluster.
type System struct {
	Config     Config
	Nodes      *simnode.Fleet
	BMCs       *redfish.Fleet
	QMaster    *scheduler.QMaster
	SchedAPI   *scheduler.API
	DB         *tsdb.DB
	Collector  *collector.Collector
	Builder    *builder.Builder
	BuilderAPI *builder.API
	Cache      *builder.Cache   // non-nil when Config.CacheResponses
	Rollups    *tsdb.Rollups    // non-nil when Config.Rollups is set
	Alerts     *alerting.Engine // non-nil when Config.AlertRules is set
	Workload   *scheduler.Workload

	now         time.Time
	nextCollect time.Time
}

// New builds a System.
func New(cfg Config) *System {
	cfg.applyDefaults()
	nodes := simnode.NewFleet(cfg.Nodes, cfg.Seed)
	bmcs := redfish.NewFleet(nodes, redfish.BMCOptions{
		Latency:       cfg.BMCLatency,
		MaxConcurrent: 8,
		Seed:          cfg.Seed,
		Telemetry:     cfg.Telemetry,
	})
	qm := scheduler.NewQMaster(nodes.Nodes(), cfg.Start, scheduler.Options{})
	api := scheduler.NewAPI(qm)
	db := tsdb.Open(tsdb.Options{
		ShardDuration: cfg.ShardDuration,
		ExecWorkers:   cfg.QueryWorkers,
		GlobalLock:    cfg.StorageGlobalLock,
	})

	rf := redfish.NewClient(redfish.ClientOptions{
		HTTPClient:     bmcs.Client(),
		RequestTimeout: 30 * time.Second,
		Retries:        2,
		RetryBackoff:   10 * time.Millisecond,
	})
	addrs := make([]string, nodes.Len())
	for i := range addrs {
		addrs[i] = nodes.Node(i).Addr()
	}
	colOpts := collector.Options{
		Interval:       cfg.CollectInterval,
		Schema:         cfg.Schema,
		BMCConcurrency: cfg.BMCConcurrency,
	}
	if cfg.StoreAllHealth {
		off := false
		colOpts.FilterHealth = &off
	}
	colOpts.UseTelemetry = cfg.Telemetry
	colOpts.CollectNetwork = cfg.CollectNetwork
	col := collector.New(addrs, rf, &collector.DirectSchedulerSource{API: api}, db, colOpts)
	b := builder.New(db, builder.Options{Concurrent: cfg.ConcurrentQueries})
	var cache *builder.Cache
	if cfg.CacheResponses {
		cache = builder.NewCache(b, 0)
	}
	var rollups *tsdb.Rollups
	if len(cfg.Rollups) > 0 {
		rollups = tsdb.NewRollups(db)
		for _, spec := range cfg.Rollups {
			if err := rollups.Add(spec); err != nil {
				panic(fmt.Sprintf("core: bad rollup spec: %v", err))
			}
		}
	}
	var alerts *alerting.Engine
	if len(cfg.AlertRules) > 0 {
		var err error
		if alerts, err = alerting.New(db, cfg.AlertRules); err != nil {
			panic(fmt.Sprintf("core: bad alert rules: %v", err))
		}
	}

	workload := cfg.Trace
	if workload == nil {
		workload = scheduler.GenerateWorkload(cfg.Workload, cfg.Start, cfg.WorkloadHorizon, cfg.Seed)
	}

	return &System{
		Config:      cfg,
		Nodes:       nodes,
		BMCs:        bmcs,
		QMaster:     qm,
		SchedAPI:    api,
		DB:          db,
		Collector:   col,
		Builder:     b,
		BuilderAPI:  builder.NewAPI(b),
		Cache:       cache,
		Rollups:     rollups,
		Alerts:      alerts,
		Workload:    workload,
		now:         cfg.Start,
		nextCollect: cfg.Start.Add(cfg.CollectInterval),
	}
}

// Now reports the simulation time.
func (s *System) Now() time.Time { return s.now }

// Advance steps the cluster substrate (workload arrivals, scheduler,
// node physics) by d at the given resolution, without collecting.
func (s *System) Advance(d time.Duration) {
	const step = 15 * time.Second
	s.advance(d, step, false, context.Background())
}

// AdvanceCollecting steps the cluster and runs a collection cycle at
// every collector interval boundary crossed.
func (s *System) AdvanceCollecting(ctx context.Context, d time.Duration) error {
	const step = 15 * time.Second
	return s.advance(d, step, true, ctx)
}

func (s *System) advance(d, step time.Duration, collect bool, ctx context.Context) error {
	end := s.now.Add(d)
	for s.now.Before(end) {
		next := s.now.Add(step)
		if next.After(end) {
			next = end
		}
		s.Workload.FeedDue(s.QMaster, next)
		s.Nodes.Step(next.Sub(s.now))
		s.QMaster.Tick(next)
		s.now = next
		if collect && !s.now.Before(s.nextCollect) {
			if _, err := s.Collector.CollectOnce(ctx, s.now); err != nil {
				return fmt.Errorf("core: collection at %v: %w", s.now, err)
			}
			s.nextCollect = s.nextCollect.Add(s.Config.CollectInterval)
			if s.Rollups != nil {
				if _, err := s.Rollups.Run(s.now.Unix()); err != nil {
					return fmt.Errorf("core: rollups at %v: %w", s.now, err)
				}
			}
			if s.Config.Retention > 0 {
				s.DB.DeleteBefore(s.now.Add(-s.Config.Retention).Unix())
			}
			if s.Alerts != nil {
				if _, err := s.Alerts.Evaluate(s.now, 3*s.Config.CollectInterval); err != nil {
					return fmt.Errorf("core: alert evaluation at %v: %w", s.now, err)
				}
			}
		}
	}
	return nil
}

// Warmup advances the cluster (collecting) until a steady mix of jobs
// is running — convenient before demos and experiments.
func (s *System) Warmup(ctx context.Context, d time.Duration) error {
	return s.AdvanceCollecting(ctx, d)
}

// RunLive drives the simulation in real time, scaled by timeScale
// (e.g. 60 = one simulated hour per wall-clock minute), until ctx is
// done. It is what cmd/monsterd uses.
func (s *System) RunLive(ctx context.Context, clk clock.Clock, timeScale float64, tick time.Duration) error {
	if timeScale <= 0 {
		timeScale = 1
	}
	if tick <= 0 {
		tick = time.Second
	}
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-clk.After(tick):
		}
		simStep := time.Duration(float64(tick) * timeScale)
		if err := s.AdvanceCollecting(ctx, simStep); err != nil {
			return err
		}
	}
}
