package core

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"monster/internal/alerting"
	"monster/internal/builder"
	"monster/internal/clock"
	"monster/internal/collector"
	"monster/internal/ingest"
	"monster/internal/scheduler"
	"monster/internal/simnode"
	"monster/internal/tsdb"
)

func TestNewAppliesDefaults(t *testing.T) {
	s := New(Config{})
	if s.Nodes.Len() != 64 {
		t.Fatalf("nodes = %d", s.Nodes.Len())
	}
	if s.Config.CollectInterval != time.Minute {
		t.Fatalf("interval = %v", s.Config.CollectInterval)
	}
	if s.Workload.Len() == 0 {
		t.Fatal("no workload generated")
	}
}

func TestAdvanceSchedulesWorkload(t *testing.T) {
	s := New(Config{Nodes: 16, Seed: 3})
	s.Advance(2 * time.Hour)
	st := s.QMaster.Stats()
	if st.Submitted == 0 || st.Dispatched == 0 {
		t.Fatalf("scheduler idle after 2 h: %+v", st)
	}
	if s.Now() != s.Config.Start.Add(2*time.Hour) {
		t.Fatalf("now = %v", s.Now())
	}
}

func TestAdvanceCollectingFillsDB(t *testing.T) {
	s := New(Config{Nodes: 8, Seed: 1})
	if err := s.AdvanceCollecting(context.Background(), 10*time.Minute); err != nil {
		t.Fatal(err)
	}
	cs := s.Collector.Stats()
	if cs.Cycles != 10 {
		t.Fatalf("cycles = %d, want 10", cs.Cycles)
	}
	r, err := s.DB.Query(`SELECT count("Reading") FROM "Power"`)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Series[0].Rows[0].Values[0].I; got != 80 {
		t.Fatalf("power points = %d, want 80 (8 nodes × 10 cycles)", got)
	}
}

func TestBuilderServesCollectedData(t *testing.T) {
	s := New(Config{Nodes: 4, Seed: 2})
	ctx := context.Background()
	if err := s.AdvanceCollecting(ctx, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	resp, _, err := s.Builder.Fetch(ctx, builder.Request{
		Start:    s.Config.Start,
		End:      s.Now(),
		Interval: 5 * time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != 4 {
		t.Fatalf("builder nodes = %d", len(resp.Nodes))
	}
	sd := resp.Nodes[0].Metrics["Power/NodePower"]
	if len(sd.Times) < 5 {
		t.Fatalf("power buckets = %d", len(sd.Times))
	}
}

func TestSchemaSelectionPropagates(t *testing.T) {
	s := New(Config{Nodes: 2, Seed: 1, Schema: collector.SchemaV1})
	if err := s.AdvanceCollecting(context.Background(), 2*time.Minute); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, m := range s.DB.Measurements() {
		if m == "NodeMetrics" {
			found = true
		}
	}
	if !found {
		t.Fatal("schema v1 layout not written")
	}
}

func TestRunLiveStopsOnContext(t *testing.T) {
	s := New(Config{Nodes: 2, Seed: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 80*time.Millisecond)
	defer cancel()
	err := s.RunLive(ctx, clock.NewReal(), 120, 20*time.Millisecond)
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v", err)
	}
	if s.Now() == s.Config.Start {
		t.Fatal("live run never advanced the simulation")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() int64 {
		s := New(Config{Nodes: 8, Seed: 77})
		if err := s.AdvanceCollecting(context.Background(), 5*time.Minute); err != nil {
			t.Fatal(err)
		}
		return s.DB.Stats().PointsWritten
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic pipeline: %d vs %d points", a, b)
	}
}

func TestRetentionEnforced(t *testing.T) {
	s := New(Config{
		Nodes: 2, Seed: 1,
		ShardDuration: 600, // 10-minute shards
		Retention:     20 * time.Minute,
	})
	if err := s.AdvanceCollecting(context.Background(), time.Hour); err != nil {
		t.Fatal(err)
	}
	stats := s.DB.ShardStats()
	oldest := stats[0].Start
	cutoff := s.Now().Add(-30 * time.Minute).Unix() // retention + shard slack
	if oldest < cutoff {
		t.Fatalf("oldest shard starts at %d, retention cutoff %d", oldest, cutoff)
	}
	if len(stats) == 0 {
		t.Fatal("everything deleted")
	}
}

func TestRollupsWiredIntoPipeline(t *testing.T) {
	s := New(Config{
		Nodes: 2, Seed: 1,
		Rollups: []tsdb.RollupSpec{
			{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300},
		},
	})
	if err := s.AdvanceCollecting(context.Background(), 20*time.Minute); err != nil {
		t.Fatal(err)
	}
	res, err := s.DB.Query(`SELECT count("Reading") FROM "Power_max_300s"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 {
		t.Fatal("no rollup data materialized")
	}
	// 2 nodes × 3 complete 5-minute buckets (the 4th is incomplete).
	if got := res.Series[0].Rows[0].Values[0].I; got < 4 {
		t.Fatalf("rollup points = %d", got)
	}
}

func TestCacheWiredIntoSystem(t *testing.T) {
	s := New(Config{Nodes: 2, Seed: 1, CacheResponses: true})
	if s.Cache == nil {
		t.Fatal("cache not wired")
	}
	if err := s.AdvanceCollecting(context.Background(), 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	req := builder.Request{Start: s.Config.Start, End: s.Now()}
	if _, _, err := s.Cache.Fetch(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Cache.Fetch(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if st := s.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestAlertingWiredIntoPipeline(t *testing.T) {
	s := New(Config{Nodes: 4, Seed: 3, AlertRules: alerting.DefaultRules()})
	if s.Alerts == nil {
		t.Fatal("alert engine not wired")
	}
	ctx := context.Background()
	if err := s.AdvanceCollecting(ctx, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	if len(s.Alerts.Active()) != 0 {
		t.Fatalf("healthy cluster has active alerts: %v", s.Alerts.Active())
	}
	// Overheat one node; after enough cycles the engine must raise.
	s.Nodes.Node(1).ForceLoad(1.0, 100)
	s.Nodes.Node(1).Inject(simnode.FaultOverheat)
	if err := s.AdvanceCollecting(ctx, 30*time.Minute); err != nil {
		t.Fatal(err)
	}
	active := s.Alerts.Active()
	found := false
	for _, a := range active {
		if a.Node == s.Nodes.Node(1).Addr() && a.To >= alerting.SeverityWarning {
			found = true
		}
	}
	if !found {
		t.Fatalf("overheating node not alerted: active=%v history=%v", active, s.Alerts.History())
	}
}

func TestNetworkAndFilesystemCollection(t *testing.T) {
	s := New(Config{Nodes: 4, Seed: 2, CollectNetwork: true, Workload: []scheduler.UserProfile{}})
	ctx := context.Background()
	s.QMaster.Submit(scheduler.JobSpec{Owner: "mpi", Name: "exchange", PE: scheduler.PEMPI, Slots: 100, Runtime: time.Hour})
	if err := s.AdvanceCollecting(ctx, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	// Network measurement exists, with traffic on the MPI nodes.
	res, err := s.DB.Query(`SELECT last("Reading") FROM "Network" WHERE "Label"='NICTx' GROUP BY "NodeId"`)
	if err != nil {
		t.Fatal(err)
	}
	busy := 0
	for _, series := range res.Series {
		if series.Rows[0].Values[0].F > 1e6 { // > 1 MB/s
			busy++
		}
	}
	if busy < 3 {
		t.Fatalf("MPI traffic visible on %d nodes, want >= 3 (100 slots / 36)", busy)
	}
	// Filesystem throughput recorded in-band.
	res, err = s.DB.Query(`SELECT max("Reading") FROM "Filesystem" WHERE "Label"='ReadMBps'`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 || res.Series[0].Rows[0].Values[0].F <= 0 {
		t.Fatalf("no filesystem throughput recorded: %+v", res.Series)
	}
	// Five categories per node per cycle now.
	if got := s.Collector.Stats().BMCRequests; got != 5*4*5 {
		t.Fatalf("BMC requests = %d, want 100 (4 nodes x 5 categories x 5 cycles)", got)
	}
}

func TestNetworkCollectionViaTelemetry(t *testing.T) {
	s := New(Config{Nodes: 2, Seed: 2, CollectNetwork: true, Telemetry: true, Workload: []scheduler.UserProfile{}})
	s.QMaster.Submit(scheduler.JobSpec{Owner: "mpi", Name: "x", PE: scheduler.PEMPI, Slots: 50, Runtime: time.Hour})
	if err := s.AdvanceCollecting(context.Background(), 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	res, err := s.DB.Query(`SELECT count("Reading") FROM "Network"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) == 0 || res.Series[0].Rows[0].Values[0].I != 2*2*3 {
		t.Fatalf("telemetry network points = %+v", res.Series)
	}
	// Telemetry still needs only one request per node per cycle.
	if got := s.Collector.Stats().BMCRequests; got != 2*3 {
		t.Fatalf("BMC requests = %d, want 6", got)
	}
}

func TestPaperScaleSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale soak skipped in -short")
	}
	// The full 467-node deployment: everything on (alerts, network
	// collection, rollups, cache), five collection cycles.
	s := New(Config{
		Nodes:          QuanahNodes,
		Seed:           1,
		CollectNetwork: true,
		CacheResponses: true,
		AlertRules:     alerting.DefaultRules(),
		Rollups: []tsdb.RollupSpec{
			{Source: "Power", Field: "Reading", Aggregate: "max", Interval: 300},
		},
	})
	ctx := context.Background()
	start := time.Now()
	if err := s.AdvanceCollecting(ctx, 5*time.Minute); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)

	st := s.Collector.Stats()
	if st.Cycles != 5 || st.NodesFailed != 0 {
		t.Fatalf("collector stats = %+v", st)
	}
	// 467 nodes × 5 categories × 5 cycles BMC requests.
	if st.BMCRequests != int64(QuanahNodes*5*5) {
		t.Fatalf("requests = %d", st.BMCRequests)
	}
	// Roughly 10 metric points per node per cycle, plus jobs.
	if st.PointsWritten < int64(QuanahNodes*5*10) {
		t.Fatalf("points = %d", st.PointsWritten)
	}
	// A full builder fetch at paper scale must work.
	resp, _, err := s.Builder.Fetch(ctx, builder.Request{
		Start: s.Config.Start, End: s.Now(), Interval: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Nodes) != QuanahNodes {
		t.Fatalf("builder nodes = %d", len(resp.Nodes))
	}
	// Sanity: simulating+collecting 5 minutes of a 467-node cluster
	// should take seconds, not minutes, on a laptop.
	if elapsed > 2*time.Minute {
		t.Fatalf("soak took %v", elapsed)
	}
}

func TestTraceReplayConfig(t *testing.T) {
	trace := scheduler.GenerateWorkload(scheduler.DefaultUserMix(),
		time.Date(2020, 4, 20, 12, 0, 0, 0, time.UTC), time.Hour, 77)
	s := New(Config{Nodes: 8, Seed: 1, Trace: trace})
	if s.Workload != trace {
		t.Fatal("trace not installed")
	}
	if err := s.AdvanceCollecting(context.Background(), time.Hour); err != nil {
		t.Fatal(err)
	}
	if got := s.QMaster.Stats().Submitted; got == 0 {
		t.Fatal("trace replay submitted nothing")
	}
}

// TestTwoNodeForwarding wires two complete systems together the way
// the examples/forward demo does: node A polls its simulated cluster,
// routes every point through a rename rule, stores locally, and
// forwards the routed stream to node B's push receiver over HTTP.
// Both ends must account for every point.
func TestTwoNodeForwarding(t *testing.T) {
	b := New(Config{Nodes: 2, Seed: 7})
	mux := http.NewServeMux()
	mux.Handle("/v1/ingest/write", b.Push)
	mux.Handle("/", b.BuilderAPI)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	a := New(Config{
		Nodes:       4,
		Seed:        1,
		ForwardTo:   srv.URL + "/v1/ingest/write",
		IngestRules: []string{"add_tag:origin=node-a"},
	})
	if err := a.AdvanceCollecting(context.Background(), 5*time.Minute); err != nil {
		t.Fatal(err)
	}

	localPts := a.DB.Disk().Points
	if localPts == 0 {
		t.Fatal("node A stored nothing locally")
	}
	if got := b.DB.Disk().Points; got != localPts {
		t.Fatalf("node B has %d points, node A stored %d — forwarding lost data", got, localPts)
	}

	// The router's add_tag ran before the forward, so node B can group
	// by the injected origin tag.
	res, err := b.DB.Query(`SELECT count("Reading") FROM "Power" GROUP BY "origin"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 1 {
		t.Fatalf("forwarded points missing routed tag: %+v", res.Series)
	}
	if v, ok := res.Series[0].Tags.Get("origin"); !ok || v != "node-a" {
		t.Fatalf("forwarded points missing routed tag: %+v", res.Series)
	}

	// Both pipelines' counters are non-zero and conserve exactly.
	ast := a.Ingest.Stats()
	var fwd *ingest.SinkStatus
	for i := range ast.Sinks {
		if ast.Sinks[i].Name == "forward" {
			fwd = &ast.Sinks[i]
		}
	}
	if fwd == nil || fwd.PointsWritten != localPts || fwd.ForwardErrors != 0 {
		t.Fatalf("node A forward sink stats = %+v", ast.Sinks)
	}
	bst := b.Ingest.Stats()
	var push *ingest.ReceiverStatus
	for i := range bst.Receivers {
		if bst.Receivers[i].Name == "push" {
			push = &bst.Receivers[i]
		}
	}
	if push == nil || push.PointsReceived != localPts {
		t.Fatalf("node B push receiver stats = %+v", bst.Receivers)
	}
}

// TestForwardOnlyRelay: a ForwardOnly system keeps nothing locally —
// every collected point lands solely on the peer.
func TestForwardOnlyRelay(t *testing.T) {
	b := New(Config{Nodes: 2, Seed: 5})
	srv := httptest.NewServer(b.Push)
	defer srv.Close()

	a := New(Config{Nodes: 2, Seed: 1, ForwardTo: srv.URL, ForwardOnly: true})
	if a.Local != nil {
		t.Fatal("ForwardOnly system built a local sink")
	}
	if err := a.AdvanceCollecting(context.Background(), 3*time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := a.DB.Disk().Points; got != 0 {
		t.Fatalf("relay stored %d points locally", got)
	}
	if got := b.DB.Disk().Points; got == 0 {
		t.Fatal("peer received nothing from the relay")
	}

	// Misconfiguration is rejected up front.
	if _, err := NewSystem(Config{ForwardOnly: true}); err == nil {
		t.Fatal("ForwardOnly without ForwardTo accepted")
	}
}
