package analysis

import (
	"sort"
)

// Attribution is the paper's core promise made computable:
// "correlating applications to resource usage ... reveals insightful
// knowledge of how platform components interact" (Section I). Given
// out-of-band node power (Power measurement), the node→jobs
// correlation (NodeJobs measurement), and job metadata (JobsInfo), it
// apportions every node's energy to the jobs resident on it and rolls
// the result up per user — without any agent on the compute nodes,
// exactly the out-of-band way MonSTer works.

// PowerSample is one node power reading.
type PowerSample struct {
	Time  int64
	Watts float64
}

// NodeJobsSample is the job set resident on a node at one instant.
type NodeJobsSample struct {
	Time int64
	Jobs []string
}

// JobMeta is what attribution needs from JobsInfo.
type JobMeta struct {
	Key       string
	User      string
	Slots     int
	NodeCount int
}

// slotsPerNode estimates how many of the job's slots sit on one of its
// nodes.
func (m JobMeta) slotsPerNode() float64 {
	if m.NodeCount <= 0 {
		if m.Slots <= 0 {
			return 1
		}
		return float64(m.Slots)
	}
	return float64(m.Slots) / float64(m.NodeCount)
}

// AttributionInput collects the three measurement streams.
type AttributionInput struct {
	// IdleWatts is the node idle draw used to split busy vs idle
	// energy; zero disables the split (all energy is "busy").
	IdleWatts float64
	// Power holds per-node power samples (any order; sorted
	// internally).
	Power map[string][]PowerSample
	// NodeJobs holds per-node job-list samples (any order).
	NodeJobs map[string][]NodeJobsSample
	// Jobs maps job key -> metadata.
	Jobs map[string]JobMeta
}

// JobEnergy is one job's attributed consumption.
type JobEnergy struct {
	Key         string
	User        string
	Joules      float64 // total energy attributed to the job
	BusyJoules  float64 // portion above the idle baseline
	NodeSeconds float64 // node-residency integral
}

// KWh converts the attributed energy.
func (j *JobEnergy) KWh() float64 { return j.Joules / 3.6e6 }

// AttributionResult is the full energy ledger.
type AttributionResult struct {
	Jobs  map[string]*JobEnergy
	Users map[string]float64 // user -> joules

	TotalJoules        float64 // all node energy in the window
	IdleJoules         float64 // nodes with no resident jobs
	UnattributedJoules float64 // resident jobs missing from Jobs metadata
}

// TopUsers returns users ordered by attributed energy, descending.
func (r *AttributionResult) TopUsers() []string {
	users := make([]string, 0, len(r.Users))
	for u := range r.Users {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool {
		if r.Users[users[a]] != r.Users[users[b]] {
			return r.Users[users[a]] > r.Users[users[b]]
		}
		return users[a] < users[b]
	})
	return users
}

// AttributeEnergy integrates each node's power over time and splits
// every interval's energy across the jobs resident during it,
// weighted by their per-node slot footprint. Intervals with no
// resident jobs accrue to IdleJoules; resident jobs without metadata
// accrue to UnattributedJoules.
func AttributeEnergy(in AttributionInput) *AttributionResult {
	res := &AttributionResult{
		Jobs:  make(map[string]*JobEnergy),
		Users: make(map[string]float64),
	}
	for node, samples := range in.Power {
		power := append([]PowerSample(nil), samples...)
		sort.Slice(power, func(a, b int) bool { return power[a].Time < power[b].Time })
		if len(power) == 0 {
			continue
		}
		jobsTL := append([]NodeJobsSample(nil), in.NodeJobs[node]...)
		sort.Slice(jobsTL, func(a, b int) bool { return jobsTL[a].Time < jobsTL[b].Time })

		for i := range power {
			dt := sampleDT(power, i)
			if dt <= 0 {
				continue
			}
			joules := power[i].Watts * dt
			busy := joules
			if in.IdleWatts > 0 {
				idlePart := in.IdleWatts * dt
				if idlePart > joules {
					idlePart = joules
				}
				busy = joules - idlePart
			}
			res.TotalJoules += joules

			resident := jobsAt(jobsTL, power[i].Time)
			if len(resident) == 0 {
				res.IdleJoules += joules
				continue
			}
			// Weight by per-node slot footprint.
			weights := make([]float64, len(resident))
			var wsum float64
			for k, key := range resident {
				w := 1.0
				if m, ok := in.Jobs[key]; ok {
					w = m.slotsPerNode()
				}
				if w <= 0 {
					w = 1
				}
				weights[k] = w
				wsum += w
			}
			for k, key := range resident {
				share := joules * weights[k] / wsum
				m, ok := in.Jobs[key]
				if !ok {
					res.UnattributedJoules += share
					continue
				}
				je, ok := res.Jobs[key]
				if !ok {
					je = &JobEnergy{Key: key, User: m.User}
					res.Jobs[key] = je
				}
				je.Joules += share
				je.BusyJoules += busy * weights[k] / wsum
				je.NodeSeconds += dt
				res.Users[m.User] += share
			}
		}
	}
	return res
}

// sampleDT estimates the integration step for sample i: the gap to the
// next sample, or the previous gap for the last sample.
func sampleDT(power []PowerSample, i int) float64 {
	switch {
	case i+1 < len(power):
		return float64(power[i+1].Time - power[i].Time)
	case i > 0:
		return float64(power[i].Time - power[i-1].Time)
	default:
		return 60 // single sample: assume one collection interval
	}
}

// jobsAt returns the job set in effect at time t (the latest sample at
// or before t).
func jobsAt(tl []NodeJobsSample, t int64) []string {
	idx := sort.Search(len(tl), func(i int) bool { return tl[i].Time > t }) - 1
	if idx < 0 {
		return nil
	}
	return tl[idx].Jobs
}
