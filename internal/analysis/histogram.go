package analysis

import (
	"fmt"
	"sort"
)

// Histogram is one symmetric histogram cell of the Fig 9 user/metric
// matrix: the distribution of one user's readings along one dimension.
type Histogram struct {
	User      string
	Dimension string
	Bins      []int
	Min, Max  float64
	Count     int
	Mean      float64
}

// BinWidth reports the value span of one bin.
func (h *Histogram) BinWidth() float64 {
	if len(h.Bins) == 0 {
		return 0
	}
	return (h.Max - h.Min) / float64(len(h.Bins))
}

// BuildHistogram bins values into nbins over [min,max] computed from
// the data.
func BuildHistogram(user, dimension string, values []float64, nbins int) *Histogram {
	if nbins <= 0 {
		nbins = 10
	}
	h := &Histogram{User: user, Dimension: dimension, Bins: make([]int, nbins)}
	if len(values) == 0 {
		return h
	}
	h.Min, h.Max = values[0], values[0]
	var sum float64
	for _, v := range values {
		if v < h.Min {
			h.Min = v
		}
		if v > h.Max {
			h.Max = v
		}
		sum += v
	}
	h.Count = len(values)
	h.Mean = sum / float64(len(values))
	span := h.Max - h.Min
	for _, v := range values {
		var b int
		if span > 0 {
			b = int(float64(nbins) * (v - h.Min) / span)
		}
		if b >= nbins {
			b = nbins - 1
		}
		h.Bins[b]++
	}
	return h
}

// UserUsageMatrix is the Fig 9 right-hand panel: one histogram per
// (user, dimension), plus per-dimension user rankings.
type UserUsageMatrix struct {
	Users      []string
	Dimensions []string
	Cells      map[string]map[string]*Histogram // user -> dimension -> histogram
}

// BuildUserUsageMatrix groups per-user samples by dimension. samples
// maps user -> dimension -> values.
func BuildUserUsageMatrix(samples map[string]map[string][]float64, nbins int) *UserUsageMatrix {
	m := &UserUsageMatrix{Cells: make(map[string]map[string]*Histogram)}
	dimSet := make(map[string]bool)
	for user, dims := range samples {
		m.Users = append(m.Users, user)
		m.Cells[user] = make(map[string]*Histogram)
		for dim, vals := range dims {
			dimSet[dim] = true
			m.Cells[user][dim] = BuildHistogram(user, dim, vals, nbins)
		}
	}
	sort.Strings(m.Users)
	for d := range dimSet {
		m.Dimensions = append(m.Dimensions, d)
	}
	sort.Strings(m.Dimensions)
	return m
}

// RankUsers orders users by mean reading along one dimension,
// descending — "by clicking on the attribute name ... we can easily
// find the specific user that consumes the most resources".
func (m *UserUsageMatrix) RankUsers(dimension string) ([]string, error) {
	found := false
	for _, d := range m.Dimensions {
		if d == dimension {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("analysis: unknown dimension %q", dimension)
	}
	users := append([]string(nil), m.Users...)
	sort.SliceStable(users, func(a, b int) bool {
		ha := m.Cells[users[a]][dimension]
		hb := m.Cells[users[b]][dimension]
		ma, mb := 0.0, 0.0
		if ha != nil {
			ma = ha.Mean
		}
		if hb != nil {
			mb = hb.Mean
		}
		return ma > mb
	})
	return users, nil
}

// TopConsumer reports the highest-mean user on a dimension.
func (m *UserUsageMatrix) TopConsumer(dimension string) (string, error) {
	ranked, err := m.RankUsers(dimension)
	if err != nil {
		return "", err
	}
	if len(ranked) == 0 {
		return "", fmt.Errorf("analysis: no users")
	}
	return ranked[0], nil
}
