package analysis

import (
	"fmt"
	"math"
	"sort"
)

// Cross-metric correlation: the paper's Section I program — "we can
// cross-compare and correlate the sub-components within the HPC
// system, such as jobs data, resources usage and hardware status, so
// as to quickly understand the system status [and] detect anomalies in
// time". CorrelationMatrix computes pairwise Pearson coefficients
// between metric series (e.g. CPU usage vs CPU temperature vs power
// across the fleet); a node whose power–load correlation collapses is
// exactly the kind of anomaly the paper wants surfaced.

// Series is one named, aligned sample vector.
type Series struct {
	Name   string
	Values []float64
}

// CorrelationMatrix holds pairwise Pearson coefficients.
type CorrelationMatrix struct {
	Names []string
	R     [][]float64 // R[i][j] = pearson(series i, series j); NaN if undefined
}

// Pearson computes the correlation coefficient of two equal-length
// vectors. It returns NaN when either vector has zero variance or the
// lengths differ or are < 2.
func Pearson(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return math.NaN()
	}
	n := float64(len(a))
	var sa, sb float64
	for i := range a {
		sa += a[i]
		sb += b[i]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return math.NaN()
	}
	return cov / math.Sqrt(va*vb)
}

// Correlate builds the full pairwise matrix. Series must be aligned
// (same index = same observation); lengths may differ, in which case
// each pair is truncated to the shorter.
func Correlate(series []Series) *CorrelationMatrix {
	m := &CorrelationMatrix{
		Names: make([]string, len(series)),
		R:     make([][]float64, len(series)),
	}
	for i, s := range series {
		m.Names[i] = s.Name
		m.R[i] = make([]float64, len(series))
	}
	for i := range series {
		m.R[i][i] = 1
		for j := i + 1; j < len(series); j++ {
			a, b := series[i].Values, series[j].Values
			if len(a) > len(b) {
				a = a[:len(b)]
			} else if len(b) > len(a) {
				b = b[:len(a)]
			}
			r := Pearson(a, b)
			m.R[i][j] = r
			m.R[j][i] = r
		}
	}
	return m
}

// Pair is one named correlation.
type Pair struct {
	A, B string
	R    float64
}

// Strongest returns pairs ordered by |r| descending, skipping
// undefined entries and self-pairs.
func (m *CorrelationMatrix) Strongest() []Pair {
	var out []Pair
	for i := range m.Names {
		for j := i + 1; j < len(m.Names); j++ {
			r := m.R[i][j]
			if math.IsNaN(r) {
				continue
			}
			out = append(out, Pair{A: m.Names[i], B: m.Names[j], R: r})
		}
	}
	sort.Slice(out, func(a, b int) bool { return math.Abs(out[a].R) > math.Abs(out[b].R) })
	return out
}

// Lookup returns r for a named pair.
func (m *CorrelationMatrix) Lookup(a, b string) (float64, error) {
	ia, ib := -1, -1
	for i, n := range m.Names {
		if n == a {
			ia = i
		}
		if n == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return 0, fmt.Errorf("analysis: unknown series in pair (%q, %q)", a, b)
	}
	return m.R[ia][ib], nil
}

// CorrelationOutliers finds the indices of entities whose per-entity
// correlation between two vectors deviates most from the population.
// rows[i] must hold entity i's (x, y) sample pairs; entities with
// undefined correlation are skipped. Returned indices are ordered by
// |r_i - median| descending.
func CorrelationOutliers(xs, ys [][]float64) []int {
	type er struct {
		idx int
		r   float64
	}
	var rs []er
	for i := range xs {
		if i >= len(ys) {
			break
		}
		r := Pearson(xs[i], ys[i])
		if math.IsNaN(r) {
			continue
		}
		rs = append(rs, er{i, r})
	}
	if len(rs) == 0 {
		return nil
	}
	vals := make([]float64, len(rs))
	for i, e := range rs {
		vals[i] = e.r
	}
	sort.Float64s(vals)
	median := vals[len(vals)/2]
	sort.Slice(rs, func(a, b int) bool {
		return math.Abs(rs[a].r-median) > math.Abs(rs[b].r-median)
	})
	out := make([]int, len(rs))
	for i, e := range rs {
		out[i] = e.idx
	}
	return out
}
