package analysis

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// threeBlobs generates n vectors around three well-separated centers.
func threeBlobs(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	centers := [][]float64{
		{0.1, 0.1, 0.1},
		{0.5, 0.5, 0.5},
		{0.9, 0.9, 0.9},
	}
	vecs := make([][]float64, n)
	truth := make([]int, n)
	for i := range vecs {
		c := i % 3
		truth[i] = c
		v := make([]float64, 3)
		for d := range v {
			v[d] = centers[c][d] + rng.NormFloat64()*0.03
		}
		vecs[i] = v
	}
	return vecs, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	vecs, truth := threeBlobs(300, 1)
	res, err := KMeans(vecs, KMeansOptions{K: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	// Same-truth points must share a cluster (up to relabeling).
	label := map[int]int{}
	for i, a := range res.Assignment {
		tr := truth[i]
		if prev, ok := label[tr]; ok {
			if prev != a {
				t.Fatalf("blob %d split across clusters %d and %d", tr, prev, a)
			}
		} else {
			label[tr] = a
		}
	}
	if len(label) != 3 {
		t.Fatalf("recovered %d clusters, want 3", len(label))
	}
}

func TestKMeansDefaultsSevenGroups(t *testing.T) {
	vecs, _ := threeBlobs(100, 3)
	res, err := KMeans(vecs, KMeansOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 7 {
		t.Fatalf("centroids = %d, want 7 (paper's host groups)", len(res.Centroids))
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != 100 {
		t.Fatalf("cluster sizes sum to %d", total)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans(nil, KMeansOptions{}); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, KMeansOptions{}); err == nil {
		t.Fatal("ragged input accepted")
	}
}

func TestKMeansKLargerThanN(t *testing.T) {
	res, err := KMeans([][]float64{{0}, {1}}, KMeansOptions{K: 7, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Centroids) != 2 {
		t.Fatalf("centroids = %d, want clamped to 2", len(res.Centroids))
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	vecs, _ := threeBlobs(120, 9)
	a, _ := KMeans(vecs, KMeansOptions{K: 4, Seed: 7})
	b, _ := KMeans(vecs, KMeansOptions{K: 4, Seed: 7})
	for i := range a.Assignment {
		if a.Assignment[i] != b.Assignment[i] {
			t.Fatal("same seed produced different assignments")
		}
	}
}

func TestNormalizeBounds(t *testing.T) {
	vecs := [][]float64{{0, 10, 5}, {10, 20, 5}}
	b := ComputeBounds(vecs)
	if b.Min[0] != 0 || b.Max[0] != 10 || b.Min[1] != 10 || b.Max[1] != 20 {
		t.Fatalf("bounds = %+v", b)
	}
	norm := Normalize(vecs, b)
	if norm[0][0] != 0 || norm[1][0] != 1 {
		t.Fatalf("norm = %v", norm)
	}
	// Degenerate dimension maps to 0.5.
	if norm[0][2] != 0.5 || norm[1][2] != 0.5 {
		t.Fatalf("degenerate dim = %v", norm)
	}
}

func TestNormalizeClampsOutOfBounds(t *testing.T) {
	b := Bounds{Min: []float64{0}, Max: []float64{1}}
	norm := Normalize([][]float64{{-5}, {7}}, b)
	if norm[0][0] != 0 || norm[1][0] != 1 {
		t.Fatalf("clamp failed: %v", norm)
	}
}

func TestPropNormalizeInUnitRange(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 2 {
			return true
		}
		vecs := make([][]float64, 0, len(raw))
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			vecs = append(vecs, []float64{v})
		}
		norm := Normalize(vecs, ComputeBounds(vecs))
		for _, v := range norm {
			if v[0] < 0 || v[0] > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestClusterByActivity(t *testing.T) {
	centroids := [][]float64{
		{0.9, 0.9}, // hottest -> rank 2
		{0.1, 0.1}, // coolest -> rank 0
		{0.5, 0.5}, // middle -> rank 1
	}
	ranks := ClusterByActivity(centroids)
	if ranks[0] != 2 || ranks[1] != 0 || ranks[2] != 1 {
		t.Fatalf("ranks = %v", ranks)
	}
}

func TestRadarProfilesAndMorphology(t *testing.T) {
	dims := []string{"a", "b", "c", "d"}
	raw := [][]float64{
		{10, 10, 10, 10}, // uniform low
		{90, 90, 90, 90}, // uniform high
	}
	profiles, err := BuildRadarProfiles([]string{"n1", "n2"}, dims, raw, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m1 := profiles[0].Morph()
	m2 := profiles[1].Morph()
	if m2.Area <= m1.Area {
		t.Fatalf("hot node area %v not above cool %v", m2.Area, m1.Area)
	}
	if profiles[0].Cluster != 0 || profiles[1].Cluster != 1 {
		t.Fatal("cluster assignment lost")
	}
	if m2.Mean != 1 {
		t.Fatalf("uniform-high mean = %v", m2.Mean)
	}
}

func TestRadarPeakDimension(t *testing.T) {
	dims := []string{"temp", "power", "mem"}
	raw := [][]float64{{10, 10, 10}, {10, 99, 10}}
	profiles, err := BuildRadarProfiles([]string{"a", "b"}, dims, raw, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m := profiles[1].Morph(); m.PeakName != "power" {
		t.Fatalf("peak = %q, want power", m.PeakName)
	}
}

func TestBuildRadarProfilesLengthMismatch(t *testing.T) {
	if _, err := BuildRadarProfiles([]string{"a"}, nil, [][]float64{{1}, {2}}, nil); err == nil {
		t.Fatal("mismatch accepted")
	}
}

func TestRankAnomalies(t *testing.T) {
	vecs := [][]float64{
		{0.1, 0.1}, {0.12, 0.1}, {0.11, 0.09}, // tight cluster
		{0.95, 0.9}, // loner far away
	}
	res, err := KMeans(vecs, KMeansOptions{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ranked := RankAnomalies(vecs, res)
	if ranked[0] != 3 {
		t.Fatalf("top anomaly = %d, want 3", ranked[0])
	}
}

func TestTimelineBuild(t *testing.T) {
	jobs := []TimelineJob{
		{JobID: "1", User: "jieyao", SubmitTime: 100, StartTime: 100, FinishTime: 500, Slots: 2088, NodeCount: 58},
		{JobID: "2", User: "jieyao", SubmitTime: 120, StartTime: 300, FinishTime: 800, Slots: 2088, NodeCount: 58},
		{JobID: "3", User: "abdumal", SubmitTime: 50, StartTime: 60, FinishTime: 0, Slots: 1, NodeCount: 1},
		{JobID: "4", User: "abdumal", SubmitTime: 55, StartTime: 70, FinishTime: 400, Slots: 1, NodeCount: 1},
		{JobID: "5", User: "abdumal", SubmitTime: 58, StartTime: 0, FinishTime: 0, Slots: 1, NodeCount: 0},
		{JobID: "6", User: "late", SubmitTime: 5000, StartTime: 0, Slots: 1}, // outside window
	}
	tl := BuildTimeline(jobs, 0, 1000)
	if len(tl.Jobs) != 5 {
		t.Fatalf("jobs in window = %d, want 5", len(tl.Jobs))
	}
	if tl.Users[0].User != "abdumal" || tl.Users[0].Jobs != 3 {
		t.Fatalf("top user = %+v", tl.Users[0])
	}
	var jy *UserSummary
	for i := range tl.Users {
		if tl.Users[i].User == "jieyao" {
			jy = &tl.Users[i]
		}
	}
	if jy == nil || jy.Jobs != 2 || jy.Hosts != 116 {
		t.Fatalf("jieyao summary = %+v", jy)
	}
	if jy.MaxWait != 180e9 {
		t.Fatalf("max wait = %v", jy.MaxWait)
	}
	// Wait/run segment math.
	j := tl.Jobs[0] // earliest submit = abdumal job 3 at 50
	if j.JobID != "3" {
		t.Fatalf("first job = %s", j.JobID)
	}
	if j.WaitSeconds() != 10 {
		t.Fatalf("wait = %d", j.WaitSeconds())
	}
	if j.RunSeconds(1000) != 940 {
		t.Fatalf("run = %d (still-running clip)", j.RunSeconds(1000))
	}
}

func TestTimelineJobEdgeCases(t *testing.T) {
	j := TimelineJob{SubmitTime: 100}
	if j.WaitSeconds() != 0 || j.RunSeconds(500) != 0 {
		t.Fatal("pending job should have zero wait/run")
	}
	j2 := TimelineJob{SubmitTime: 100, StartTime: 90}
	if j2.WaitSeconds() != 0 {
		t.Fatal("negative wait not clamped")
	}
}

func TestBuildTrendBands(t *testing.T) {
	times := []int64{0, 60, 120, 180, 240, 300}
	// Vectors: cool, cool, hot, hot, cool, cool.
	vecs := [][]float64{
		{0.1, 0.1}, {0.1, 0.12}, {0.9, 0.95}, {0.92, 0.9}, {0.1, 0.11}, {0.09, 0.1},
	}
	res, err := KMeans(vecs, KMeansOptions{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	trend := BuildTrend("1-31", times, []string{"temp", "power"}, vecs, res, ComputeBounds(vecs))
	if len(trend.Bands) != 3 {
		t.Fatalf("bands = %+v, want 3 (cool/hot/cool)", trend.Bands)
	}
	if trend.Bands[0].Cluster == trend.Bands[1].Cluster {
		t.Fatal("adjacent bands share a cluster")
	}
	if trend.Bands[0].Cluster != trend.Bands[2].Cluster {
		t.Fatal("first and last bands should match (both cool)")
	}
	if len(trend.Metrics["temp"]) != 6 {
		t.Fatalf("metric column = %v", trend.Metrics["temp"])
	}
}

func TestHistogram(t *testing.T) {
	h := BuildHistogram("u", "power", []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if h.Count != 10 || h.Min != 0 || h.Max != 9 {
		t.Fatalf("histogram = %+v", h)
	}
	sum := 0
	for _, c := range h.Bins {
		sum += c
	}
	if sum != 10 {
		t.Fatalf("bins lost samples: %v", h.Bins)
	}
	if h.Bins[4] != 2 { // 8 and 9 land in the last bin
		t.Fatalf("last bin = %d", h.Bins[4])
	}
	if h.BinWidth() != 1.8 {
		t.Fatalf("bin width = %v", h.BinWidth())
	}
}

func TestHistogramEmptyAndConstant(t *testing.T) {
	h := BuildHistogram("u", "x", nil, 5)
	if h.Count != 0 {
		t.Fatal("empty histogram has samples")
	}
	h = BuildHistogram("u", "x", []float64{3, 3, 3}, 4)
	if h.Bins[0] != 3 {
		t.Fatalf("constant values should fill bin 0: %v", h.Bins)
	}
}

func TestUserUsageMatrixRanking(t *testing.T) {
	samples := map[string]map[string][]float64{
		"light": {"cpu": {10, 12, 11}, "mem": {5, 6}},
		"heavy": {"cpu": {90, 95, 92}, "mem": {80, 85}},
		"mid":   {"cpu": {50, 51}, "mem": {40}},
	}
	m := BuildUserUsageMatrix(samples, 8)
	if len(m.Users) != 3 || len(m.Dimensions) != 2 {
		t.Fatalf("matrix = %v %v", m.Users, m.Dimensions)
	}
	top, err := m.TopConsumer("cpu")
	if err != nil {
		t.Fatal(err)
	}
	if top != "heavy" {
		t.Fatalf("top consumer = %q", top)
	}
	ranked, _ := m.RankUsers("cpu")
	if ranked[2] != "light" {
		t.Fatalf("ranking = %v", ranked)
	}
	if _, err := m.RankUsers("gpu"); err == nil {
		t.Fatal("unknown dimension accepted")
	}
}

func TestRadarSVGWellFormed(t *testing.T) {
	p := &RadarProfile{
		NodeID:     "1-31",
		Dimensions: []string{"a", "b", "c"},
		Normalized: []float64{0.2, 0.8, 0.5},
		Cluster:    1,
	}
	svg := RadarSVG(p, 200)
	for _, want := range []string{"<svg", "</svg>", "polygon", "1-31"} {
		if !strings.Contains(svg, want) {
			t.Fatalf("svg missing %q:\n%s", want, svg)
		}
	}
}

func TestTimelineSVGWellFormed(t *testing.T) {
	tl := BuildTimeline([]TimelineJob{
		{JobID: "1", User: "u", SubmitTime: 10, StartTime: 50, FinishTime: 200, NodeCount: 2},
	}, 0, 300)
	svg := TimelineSVG(tl, 600)
	if !strings.Contains(svg, "rect") || !strings.Contains(svg, "u (1 jobs, 2 hosts)") {
		t.Fatalf("svg = %s", svg)
	}
}

func TestTrendSVGWellFormed(t *testing.T) {
	vecs := [][]float64{{1, 2}, {3, 4}, {2, 3}}
	res, _ := KMeans(vecs, KMeansOptions{K: 2, Seed: 1})
	trend := BuildTrend("1-31", []int64{0, 60, 120}, []string{"t", "p"}, vecs, res, ComputeBounds(vecs))
	svg := TrendSVG(trend, ClusterByActivity(res.Centroids), 600, 200)
	if !strings.Contains(svg, "polyline") || !strings.Contains(svg, "node 1-31") {
		t.Fatalf("svg = %s", svg)
	}
}

func TestHistogramMatrixSVGWellFormed(t *testing.T) {
	m := BuildUserUsageMatrix(map[string]map[string][]float64{
		"u1": {"cpu": {1, 2, 3}},
	}, 4)
	svg := HistogramMatrixSVG(m, 60)
	if !strings.Contains(svg, "rect") || !strings.Contains(svg, "u1") {
		t.Fatalf("svg = %s", svg)
	}
}

func TestClusterColorStability(t *testing.T) {
	if ClusterColor(-1) == "" || ClusterColor(0) == ClusterColor(1) {
		t.Fatal("cluster colours not distinct")
	}
	if ClusterColor(7) != ClusterColor(0) {
		t.Fatal("palette should wrap")
	}
}

func TestEscape(t *testing.T) {
	if escape(`a<b>&"c"`) != "a&lt;b&gt;&amp;&quot;c&quot;" {
		t.Fatalf("escape = %q", escape(`a<b>&"c"`))
	}
}

func TestDashboardHTML(t *testing.T) {
	dims := []string{"a", "b", "c"}
	profiles, err := BuildRadarProfiles(
		[]string{"1-1", "1-2"}, dims,
		[][]float64{{1, 2, 3}, {4, 5, 6}}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	tl := BuildTimeline([]TimelineJob{
		{JobID: "1", User: "u", SubmitTime: 10, StartTime: 20, FinishTime: 80, NodeCount: 1},
	}, 0, 100)
	usage := BuildUserUsageMatrix(map[string]map[string][]float64{
		"u": {"cpu": {1, 2, 3}},
	}, 5)
	d := &Dashboard{
		Generated: time.Unix(1587384000, 0),
		Radars:    profiles,
		Ranks:     []int{0, 1},
		Timeline:  tl,
		Usage:     usage,
		AlertLog:  []string{"2020-04-20 1-5/cpu1-temp OK -> WARNING (value 88.0)"},
		Footnotes: []string{"generated by test"},
	}
	html, err := d.HTML()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"<!DOCTYPE html>", "MonSTer cluster dashboard",
		"radar grid", "scheduling timeline", "resource usage",
		"<svg", "WARNING", "generated by test",
	} {
		if !strings.Contains(html, want) {
			t.Fatalf("dashboard missing %q", want)
		}
	}
}

func TestDashboardEmptySections(t *testing.T) {
	d := &Dashboard{Title: "empty", Generated: time.Unix(0, 0)}
	html, err := d.HTML()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(html, "radar grid") || strings.Contains(html, "Alerts") {
		t.Fatal("empty sections rendered")
	}
	if !strings.Contains(html, "empty") {
		t.Fatal("title lost")
	}
}

func TestDashboardEscapesAlertText(t *testing.T) {
	d := &Dashboard{
		Generated: time.Unix(0, 0),
		AlertLog:  []string{`<script>alert("x")</script>`},
	}
	html, err := d.HTML()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(html, "<script>") {
		t.Fatal("alert text not escaped")
	}
}
