// Package analysis implements the data layer of HiperJobViz, the
// paper's analysis and visualization tool (Section III-E): k-means
// clustering of nine-dimensional node-health vectors into the seven
// host groups of Fig 9, min-max normalization and radar-profile
// construction (Fig 7), the job-scheduling timeline with per-user
// job/host counts (Fig 6), per-user resource-usage histograms, and
// historical status trends with cluster-coloured bands (Fig 8). A
// small SVG renderer produces static versions of the figures.
package analysis

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// KMeansResult is the outcome of a clustering run.
type KMeansResult struct {
	Centroids  [][]float64 // k × dims, in normalized space
	Assignment []int       // per input vector
	Sizes      []int       // members per cluster
	Iterations int
	Converged  bool
}

// KMeansOptions tunes the clustering.
type KMeansOptions struct {
	K             int // number of clusters; zero means 7 (the paper's host groups)
	MaxIterations int // zero means 100
	Seed          int64
}

func (o *KMeansOptions) applyDefaults() {
	if o.K == 0 {
		o.K = 7
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 100
	}
}

// KMeans clusters vectors with Lloyd's algorithm and k-means++
// seeding. Inputs are used as-is; callers normally Normalize first so
// no dimension dominates the distance.
func KMeans(vectors [][]float64, opts KMeansOptions) (*KMeansResult, error) {
	opts.applyDefaults()
	n := len(vectors)
	if n == 0 {
		return nil, fmt.Errorf("analysis: kmeans on empty input")
	}
	dims := len(vectors[0])
	for i, v := range vectors {
		if len(v) != dims {
			return nil, fmt.Errorf("analysis: vector %d has %d dims, want %d", i, len(v), dims)
		}
	}
	k := opts.K
	if k > n {
		k = n
	}

	rng := rand.New(rand.NewSource(opts.Seed ^ 0x6b6d65616e73))
	centroids := seedPlusPlus(vectors, k, rng)
	assignment := make([]int, n)
	res := &KMeansResult{}

	for iter := 0; iter < opts.MaxIterations; iter++ {
		changed := false
		for i, v := range vectors {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				if d := sqDist(v, centroids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assignment[i] != best {
				assignment[i] = best
				changed = true
			}
		}
		// Recompute centroids; an emptied cluster keeps its position.
		sums := make([][]float64, k)
		counts := make([]int, k)
		for c := range sums {
			sums[c] = make([]float64, dims)
		}
		for i, v := range vectors {
			c := assignment[i]
			counts[c]++
			for d, x := range v {
				sums[c][d] += x
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] = sums[c][d] / float64(counts[c])
			}
		}
		res.Iterations = iter + 1
		if !changed && iter > 0 {
			res.Converged = true
			break
		}
	}

	res.Centroids = centroids
	res.Assignment = assignment
	res.Sizes = make([]int, k)
	for _, c := range assignment {
		res.Sizes[c]++
	}
	return res, nil
}

// seedPlusPlus picks initial centroids with the k-means++ rule.
func seedPlusPlus(vectors [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(vectors)
	centroids := make([][]float64, 0, k)
	first := vectors[rng.Intn(n)]
	centroids = append(centroids, append([]float64(nil), first...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		var sum float64
		for i, v := range vectors {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(v, c); d < best {
					best = d
				}
			}
			d2[i] = best
			sum += best
		}
		if sum == 0 {
			// All remaining points coincide with centroids; duplicate one.
			centroids = append(centroids, append([]float64(nil), vectors[rng.Intn(n)]...))
			continue
		}
		r := rng.Float64() * sum
		idx := 0
		for i, d := range d2 {
			r -= d
			if r <= 0 {
				idx = i
				break
			}
		}
		centroids = append(centroids, append([]float64(nil), vectors[idx]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Bounds holds per-dimension min/max for normalization.
type Bounds struct {
	Min []float64
	Max []float64
}

// ComputeBounds scans vectors for per-dimension extrema.
func ComputeBounds(vectors [][]float64) Bounds {
	if len(vectors) == 0 {
		return Bounds{}
	}
	dims := len(vectors[0])
	b := Bounds{Min: make([]float64, dims), Max: make([]float64, dims)}
	copy(b.Min, vectors[0])
	copy(b.Max, vectors[0])
	for _, v := range vectors[1:] {
		for d, x := range v {
			if x < b.Min[d] {
				b.Min[d] = x
			}
			if x > b.Max[d] {
				b.Max[d] = x
			}
		}
	}
	return b
}

// Normalize min-max scales vectors into [0,1] per dimension using the
// given bounds (degenerate dimensions map to 0.5, keeping them
// neutral in distance computations).
func Normalize(vectors [][]float64, b Bounds) [][]float64 {
	out := make([][]float64, len(vectors))
	for i, v := range vectors {
		nv := make([]float64, len(v))
		for d, x := range v {
			span := b.Max[d] - b.Min[d]
			if span == 0 {
				nv[d] = 0.5
				continue
			}
			nv[d] = (x - b.Min[d]) / span
			if nv[d] < 0 {
				nv[d] = 0
			}
			if nv[d] > 1 {
				nv[d] = 1
			}
		}
		out[i] = nv
	}
	return out
}

// ClusterByActivity orders cluster indices by centroid mean (ascending)
// so "group 7" style labels are stable: low readings first, hottest
// cluster last.
func ClusterByActivity(centroids [][]float64) []int {
	type ca struct {
		idx  int
		mean float64
	}
	cs := make([]ca, len(centroids))
	for i, c := range centroids {
		var s float64
		for _, x := range c {
			s += x
		}
		cs[i] = ca{i, s / float64(len(c))}
	}
	sort.Slice(cs, func(a, b int) bool { return cs[a].mean < cs[b].mean })
	out := make([]int, len(cs))
	for rank, c := range cs {
		out[c.idx] = rank
	}
	return out
}
