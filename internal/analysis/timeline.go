package analysis

import (
	"sort"
	"time"
)

// TimelineJob is one bar of the Fig 6 job-scheduling timeline: the gray
// segment is queueing (submit→start), the green segment is execution
// (start→finish).
type TimelineJob struct {
	JobID      string
	User       string
	SubmitTime int64
	StartTime  int64
	FinishTime int64 // 0 = still running at the window end
	Slots      int
	NodeCount  int
}

// WaitSeconds is the queueing delay.
func (j *TimelineJob) WaitSeconds() int64 {
	if j.StartTime == 0 || j.StartTime < j.SubmitTime {
		return 0
	}
	return j.StartTime - j.SubmitTime
}

// RunSeconds is the execution span within [0, end].
func (j *TimelineJob) RunSeconds(windowEnd int64) int64 {
	if j.StartTime == 0 {
		return 0
	}
	end := j.FinishTime
	if end == 0 || end > windowEnd {
		end = windowEnd
	}
	if end < j.StartTime {
		return 0
	}
	return end - j.StartTime
}

// UserSummary aggregates one user's row of the timeline: "user jieyao
// submitted two jobs that require 58 hosts".
type UserSummary struct {
	User       string
	Jobs       int
	Hosts      int // distinct-host upper bound: max concurrent node count
	TotalSlots int
	MeanWait   time.Duration
	MaxWait    time.Duration
}

// Timeline is the full Fig 6 artifact.
type Timeline struct {
	Start, End int64
	Jobs       []TimelineJob
	Users      []UserSummary
}

// BuildTimeline assembles the timeline from job records, clipping to
// [start, end) and summarizing per user. Jobs are ordered by submit
// time; users by descending job count.
func BuildTimeline(jobs []TimelineJob, start, end int64) *Timeline {
	tl := &Timeline{Start: start, End: end}
	byUser := make(map[string]*UserSummary)
	waitSums := make(map[string]time.Duration)
	hostPeak := make(map[string]int)
	for _, j := range jobs {
		if j.SubmitTime >= end || (j.FinishTime != 0 && j.FinishTime < start) {
			continue
		}
		tl.Jobs = append(tl.Jobs, j)
		us, ok := byUser[j.User]
		if !ok {
			us = &UserSummary{User: j.User}
			byUser[j.User] = us
		}
		us.Jobs++
		us.TotalSlots += j.Slots
		w := time.Duration(j.WaitSeconds()) * time.Second
		waitSums[j.User] += w
		if w > us.MaxWait {
			us.MaxWait = w
		}
		hostPeak[j.User] += j.NodeCount
	}
	sort.Slice(tl.Jobs, func(a, b int) bool {
		if tl.Jobs[a].SubmitTime != tl.Jobs[b].SubmitTime {
			return tl.Jobs[a].SubmitTime < tl.Jobs[b].SubmitTime
		}
		return tl.Jobs[a].JobID < tl.Jobs[b].JobID
	})
	for user, us := range byUser {
		if us.Jobs > 0 {
			us.MeanWait = waitSums[user] / time.Duration(us.Jobs)
		}
		us.Hosts = hostPeak[user]
		tl.Users = append(tl.Users, *us)
	}
	sort.Slice(tl.Users, func(a, b int) bool {
		if tl.Users[a].Jobs != tl.Users[b].Jobs {
			return tl.Users[a].Jobs > tl.Users[b].Jobs
		}
		return tl.Users[a].User < tl.Users[b].User
	})
	return tl
}

// DistinctUserHosts computes, per user, how many distinct hosts their
// jobs occupy — the Fig 6 margin statistic ("997 jobs, but only
// occupies 29 hosts"). nodeJobs maps a node to the job keys running on
// it (from the NodeJobs measurement); owner maps a job key to its
// user.
func DistinctUserHosts(nodeJobs map[string][]string, owner map[string]string) map[string]int {
	hosts := make(map[string]map[string]bool)
	for node, jobs := range nodeJobs {
		for _, jk := range jobs {
			user, ok := owner[jk]
			if !ok {
				// Array tasks share the array's job ID.
				if dot := indexByte(jk, '.'); dot > 0 {
					user, ok = owner[jk[:dot]]
				}
				if !ok {
					continue
				}
			}
			set := hosts[user]
			if set == nil {
				set = make(map[string]bool)
				hosts[user] = set
			}
			set[node] = true
		}
	}
	out := make(map[string]int, len(hosts))
	for user, set := range hosts {
		out[user] = len(set)
	}
	return out
}

func indexByte(s string, c byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == c {
			return i
		}
	}
	return -1
}

// OverrideHosts replaces each user summary's host count with the given
// distinct-host statistics (users absent from counts keep the additive
// per-job estimate).
func (tl *Timeline) OverrideHosts(counts map[string]int) {
	for i := range tl.Users {
		if n, ok := counts[tl.Users[i].User]; ok {
			tl.Users[i].Hosts = n
		}
	}
}

// TrendBand is one coloured background interval of the Fig 8 history
// view: the cluster a node's status belonged to during [Start, End).
type TrendBand struct {
	Start, End int64
	Cluster    int
}

// TrendSeries is a node's metric history plus its cluster bands.
type TrendSeries struct {
	NodeID  string
	Times   []int64
	Metrics map[string][]float64 // dimension name -> values aligned with Times
	Bands   []TrendBand
}

// BuildTrend assembles a Fig 8 history: per-timestamp health vectors
// are assigned to the precomputed clusters (nearest centroid in
// normalized space) and contiguous equal assignments merge into bands.
func BuildTrend(nodeID string, times []int64, dims []string, vectors [][]float64, res *KMeansResult, bounds Bounds) *TrendSeries {
	ts := &TrendSeries{NodeID: nodeID, Times: times, Metrics: make(map[string][]float64)}
	for d, name := range dims {
		col := make([]float64, len(vectors))
		for i, v := range vectors {
			if d < len(v) {
				col[i] = v[d]
			}
		}
		ts.Metrics[name] = col
	}
	if res == nil || len(vectors) == 0 {
		return ts
	}
	norm := Normalize(vectors, bounds)
	var cur *TrendBand
	for i, v := range norm {
		best, bestD := 0, sqDist(v, res.Centroids[0])
		for c := 1; c < len(res.Centroids); c++ {
			if d := sqDist(v, res.Centroids[c]); d < bestD {
				best, bestD = c, d
			}
		}
		t := times[i]
		next := t
		if i+1 < len(times) {
			next = times[i+1]
		} else if i > 0 {
			next = t + (t - times[i-1])
		}
		if cur != nil && cur.Cluster == best {
			cur.End = next
			continue
		}
		ts.Bands = append(ts.Bands, TrendBand{Start: t, End: next, Cluster: best})
		cur = &ts.Bands[len(ts.Bands)-1]
	}
	return ts
}
