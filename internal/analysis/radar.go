package analysis

import (
	"fmt"
	"math"
)

// RadarProfile is one node's nine-dimensional health profile prepared
// for a radar chart (Fig 7): normalized values arranged cyclically.
type RadarProfile struct {
	NodeID     string
	Dimensions []string
	Raw        []float64
	Normalized []float64
	Cluster    int // assigned host group (-1 if not clustered)
}

// BuildRadarProfiles normalizes raw health vectors against shared
// bounds and attaches cluster assignments when provided.
func BuildRadarProfiles(nodeIDs []string, dims []string, raw [][]float64, assignment []int) ([]RadarProfile, error) {
	if len(nodeIDs) != len(raw) {
		return nil, fmt.Errorf("analysis: %d node ids for %d vectors", len(nodeIDs), len(raw))
	}
	bounds := ComputeBounds(raw)
	norm := Normalize(raw, bounds)
	out := make([]RadarProfile, len(raw))
	for i := range raw {
		p := RadarProfile{
			NodeID:     nodeIDs[i],
			Dimensions: dims,
			Raw:        raw[i],
			Normalized: norm[i],
			Cluster:    -1,
		}
		if assignment != nil && i < len(assignment) {
			p.Cluster = assignment[i]
		}
		out[i] = p
	}
	return out, nil
}

// Morphology summarizes the "shape" of a radar profile: its area
// (overall intensity) and peak dimension. The paper uses radar shape
// differences to distinguish normal from anomalous nodes at a glance.
type Morphology struct {
	Area     float64 // polygon area in normalized radar space, [0, π·r²-ish]
	PeakDim  int
	PeakName string
	Mean     float64
}

// Morph computes the radar polygon's morphology.
func (p *RadarProfile) Morph() Morphology {
	n := len(p.Normalized)
	m := Morphology{PeakDim: -1}
	if n == 0 {
		return m
	}
	var area, sum, peak float64
	for i := 0; i < n; i++ {
		r1 := p.Normalized[i]
		r2 := p.Normalized[(i+1)%n]
		// Triangle between consecutive spokes at angle 2π/n.
		area += 0.5 * r1 * r2 * math.Sin(2*math.Pi/float64(n))
		sum += r1
		if r1 > peak || m.PeakDim == -1 {
			peak = r1
			m.PeakDim = i
		}
	}
	m.Area = area
	m.Mean = sum / float64(n)
	if m.PeakDim >= 0 && m.PeakDim < len(p.Dimensions) {
		m.PeakName = p.Dimensions[m.PeakDim]
	}
	return m
}

// AnomalyScore rates how far a node's profile is from its cluster
// centroid (normalized space); the paper's orange "critical status"
// radars are exactly the high-scoring ones.
func AnomalyScore(normalized []float64, centroid []float64) float64 {
	return math.Sqrt(sqDist(normalized, centroid))
}

// RankAnomalies returns node indices sorted by descending anomaly
// score against their assigned centroids.
func RankAnomalies(norm [][]float64, res *KMeansResult) []int {
	idx := make([]int, len(norm))
	scores := make([]float64, len(norm))
	for i := range norm {
		idx[i] = i
		scores[i] = AnomalyScore(norm[i], res.Centroids[res.Assignment[i]])
	}
	// Insertion sort keeps this dependency-free and stable for ties.
	for i := 1; i < len(idx); i++ {
		for j := i; j > 0 && scores[idx[j]] > scores[idx[j-1]]; j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
	return idx
}
