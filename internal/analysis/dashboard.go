package analysis

import (
	"fmt"
	"html/template"
	"strings"
	"time"
)

// Dashboard assembles the HiperJobViz views into one static HTML page:
// the cluster-wide radar grid grouped by k-means cluster (Fig 9 left),
// the job-scheduling timeline (Fig 6), the per-user usage histograms
// (Fig 9 right), a node history trend (Fig 8), and an alert feed. The
// output is self-contained (inline SVG, no scripts) so it can be
// archived next to the data that produced it.
type Dashboard struct {
	Title     string
	Generated time.Time

	Radars    []RadarProfile
	Ranks     []int // cluster activity ranks for colouring
	Timeline  *Timeline
	Trend     *TrendSeries
	Usage     *UserUsageMatrix
	AlertLog  []string
	Footnotes []string
}

var dashboardTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>{{.Title}}</title>
<style>
 body { font-family: sans-serif; margin: 1.5em; color: #222; }
 h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
 .meta { color: #777; font-size: 0.85em; }
 .radars { display: flex; flex-wrap: wrap; gap: 8px; }
 .alerts li { font-family: monospace; font-size: 0.85em; }
 .foot { color: #888; font-size: 0.8em; margin-top: 2em; }
</style>
</head>
<body>
<h1>{{.Title}}</h1>
<p class="meta">generated {{.GeneratedText}}</p>
{{if .RadarSVGs}}<h2>Node health radar grid (k-means host groups)</h2>
<div class="radars">{{range .RadarSVGs}}{{.}}{{end}}</div>{{end}}
{{if .TimelineSVG}}<h2>Job scheduling timeline</h2>{{.TimelineSVG}}{{end}}
{{if .TrendSVG}}<h2>Node history</h2>{{.TrendSVG}}{{end}}
{{if .UsageSVG}}<h2>Per-user resource usage</h2>{{.UsageSVG}}{{end}}
{{if .Alerts}}<h2>Alerts</h2><ul class="alerts">{{range .Alerts}}<li>{{.}}</li>{{end}}</ul>{{end}}
{{range .Footnotes}}<p class="foot">{{.}}</p>{{end}}
</body>
</html>
`))

// dashboardData is the template input with pre-rendered SVG fragments.
type dashboardData struct {
	Title         string
	GeneratedText string
	RadarSVGs     []template.HTML
	TimelineSVG   template.HTML
	TrendSVG      template.HTML
	UsageSVG      template.HTML
	Alerts        []string
	Footnotes     []string
}

// HTML renders the dashboard page.
func (d *Dashboard) HTML() (string, error) {
	data := dashboardData{
		Title:         d.Title,
		GeneratedText: d.Generated.UTC().Format(time.RFC3339),
		Alerts:        d.AlertLog,
		Footnotes:     d.Footnotes,
	}
	if data.Title == "" {
		data.Title = "MonSTer cluster dashboard"
	}
	for i := range d.Radars {
		p := d.Radars[i]
		if d.Ranks != nil && p.Cluster >= 0 && p.Cluster < len(d.Ranks) {
			p.Cluster = d.Ranks[p.Cluster]
		}
		data.RadarSVGs = append(data.RadarSVGs, template.HTML(RadarSVG(&p, 170)))
	}
	if d.Timeline != nil {
		data.TimelineSVG = template.HTML(TimelineSVG(d.Timeline, 1000))
	}
	if d.Trend != nil {
		data.TrendSVG = template.HTML(TrendSVG(d.Trend, d.Ranks, 1000, 240))
	}
	if d.Usage != nil && len(d.Usage.Users) > 0 {
		data.UsageSVG = template.HTML(HistogramMatrixSVG(d.Usage, 80))
	}
	var b strings.Builder
	if err := dashboardTmpl.Execute(&b, data); err != nil {
		return "", fmt.Errorf("analysis: dashboard render: %w", err)
	}
	return b.String(), nil
}
