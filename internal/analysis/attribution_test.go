package analysis

import (
	"math"
	"testing"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-6 }

func TestAttributeEnergySingleJob(t *testing.T) {
	in := AttributionInput{
		IdleWatts: 100,
		Power: map[string][]PowerSample{
			"n1": {{0, 300}, {60, 300}, {120, 300}},
		},
		NodeJobs: map[string][]NodeJobsSample{
			"n1": {{0, []string{"1"}}},
		},
		Jobs: map[string]JobMeta{
			"1": {Key: "1", User: "alice", Slots: 36, NodeCount: 1},
		},
	}
	res := AttributeEnergy(in)
	// 3 samples × 60 s × 300 W = 54000 J total, all attributed.
	if !almostEq(res.TotalJoules, 54000) {
		t.Fatalf("total = %v", res.TotalJoules)
	}
	je := res.Jobs["1"]
	if je == nil || !almostEq(je.Joules, 54000) {
		t.Fatalf("job energy = %+v", je)
	}
	if !almostEq(je.BusyJoules, 36000) { // (300-100) W × 180 s
		t.Fatalf("busy = %v", je.BusyJoules)
	}
	if !almostEq(res.Users["alice"], 54000) {
		t.Fatalf("user = %v", res.Users["alice"])
	}
	if res.IdleJoules != 0 || res.UnattributedJoules != 0 {
		t.Fatalf("leakage: %+v", res)
	}
	if !almostEq(je.KWh(), 54000/3.6e6) {
		t.Fatalf("kwh = %v", je.KWh())
	}
	if !almostEq(je.NodeSeconds, 180) {
		t.Fatalf("node seconds = %v", je.NodeSeconds)
	}
}

func TestAttributeEnergySlotWeighting(t *testing.T) {
	// Two jobs share a node: job A has 24 slots there, job B 12 —
	// A gets 2/3 of the energy.
	in := AttributionInput{
		Power: map[string][]PowerSample{
			"n1": {{0, 360}, {60, 360}},
		},
		NodeJobs: map[string][]NodeJobsSample{
			"n1": {{0, []string{"A", "B"}}},
		},
		Jobs: map[string]JobMeta{
			"A": {Key: "A", User: "ua", Slots: 24, NodeCount: 1},
			"B": {Key: "B", User: "ub", Slots: 12, NodeCount: 1},
		},
	}
	res := AttributeEnergy(in)
	total := res.TotalJoules
	if !almostEq(total, 2*60*360) {
		t.Fatalf("total = %v", total)
	}
	if !almostEq(res.Jobs["A"].Joules, total*2/3) {
		t.Fatalf("A = %v of %v", res.Jobs["A"].Joules, total)
	}
	if !almostEq(res.Jobs["B"].Joules, total/3) {
		t.Fatalf("B = %v", res.Jobs["B"].Joules)
	}
}

func TestAttributeEnergyMPISlotsPerNode(t *testing.T) {
	// An MPI job with 72 slots on 2 nodes coexists with a serial job
	// (1 slot) on n1: per-node MPI footprint is 36 slots.
	in := AttributionInput{
		Power: map[string][]PowerSample{
			"n1": {{0, 370}, {60, 370}},
			"n2": {{0, 370}, {60, 370}},
		},
		NodeJobs: map[string][]NodeJobsSample{
			"n1": {{0, []string{"mpi", "serial"}}},
			"n2": {{0, []string{"mpi"}}},
		},
		Jobs: map[string]JobMeta{
			"mpi":    {Key: "mpi", User: "um", Slots: 72, NodeCount: 2},
			"serial": {Key: "serial", User: "us", Slots: 1, NodeCount: 1},
		},
	}
	res := AttributeEnergy(in)
	perNode := 2.0 * 60 * 370
	wantSerial := perNode * 1 / 37
	wantMPI := perNode*36/37 + perNode
	if !almostEq(res.Jobs["serial"].Joules, wantSerial) {
		t.Fatalf("serial = %v, want %v", res.Jobs["serial"].Joules, wantSerial)
	}
	if !almostEq(res.Jobs["mpi"].Joules, wantMPI) {
		t.Fatalf("mpi = %v, want %v", res.Jobs["mpi"].Joules, wantMPI)
	}
}

func TestAttributeEnergyIdleNodes(t *testing.T) {
	in := AttributionInput{
		Power: map[string][]PowerSample{
			"n1": {{0, 110}, {60, 110}},
		},
		NodeJobs: map[string][]NodeJobsSample{
			"n1": {{0, nil}},
		},
	}
	res := AttributeEnergy(in)
	if !almostEq(res.IdleJoules, res.TotalJoules) || res.TotalJoules == 0 {
		t.Fatalf("idle accounting: %+v", res)
	}
	if len(res.Jobs) != 0 {
		t.Fatal("phantom jobs")
	}
}

func TestAttributeEnergyJobChurn(t *testing.T) {
	// Job 1 runs for the first interval, job 2 for the second.
	in := AttributionInput{
		Power: map[string][]PowerSample{
			"n1": {{0, 200}, {60, 400}, {120, 400}},
		},
		NodeJobs: map[string][]NodeJobsSample{
			"n1": {{0, []string{"1"}}, {60, []string{"2"}}},
		},
		Jobs: map[string]JobMeta{
			"1": {Key: "1", User: "u1", Slots: 1, NodeCount: 1},
			"2": {Key: "2", User: "u2", Slots: 1, NodeCount: 1},
		},
	}
	res := AttributeEnergy(in)
	if !almostEq(res.Jobs["1"].Joules, 200*60) {
		t.Fatalf("job1 = %v", res.Jobs["1"].Joules)
	}
	if !almostEq(res.Jobs["2"].Joules, 400*60+400*60) {
		t.Fatalf("job2 = %v", res.Jobs["2"].Joules)
	}
}

func TestAttributeEnergyUnknownJob(t *testing.T) {
	in := AttributionInput{
		Power: map[string][]PowerSample{
			"n1": {{0, 300}, {60, 300}},
		},
		NodeJobs: map[string][]NodeJobsSample{
			"n1": {{0, []string{"ghost"}}},
		},
	}
	res := AttributeEnergy(in)
	if !almostEq(res.UnattributedJoules, res.TotalJoules) {
		t.Fatalf("unattributed = %v of %v", res.UnattributedJoules, res.TotalJoules)
	}
}

func TestAttributeEnergyConservation(t *testing.T) {
	// Energy in = energy out across jobs + idle + unattributed.
	in := AttributionInput{
		IdleWatts: 105,
		Power: map[string][]PowerSample{
			"n1": {{0, 300}, {60, 310}, {120, 290}, {180, 415}},
			"n2": {{0, 110}, {60, 105}, {120, 120}},
			"n3": {{30, 250}, {90, 260}},
		},
		NodeJobs: map[string][]NodeJobsSample{
			"n1": {{0, []string{"a", "b"}}, {120, []string{"a"}}},
			"n2": {{0, nil}},
			"n3": {{0, []string{"ghost"}}},
		},
		Jobs: map[string]JobMeta{
			"a": {Key: "a", User: "u", Slots: 18, NodeCount: 1},
			"b": {Key: "b", User: "v", Slots: 18, NodeCount: 1},
		},
	}
	res := AttributeEnergy(in)
	var jobSum float64
	for _, je := range res.Jobs {
		jobSum += je.Joules
	}
	out := jobSum + res.IdleJoules + res.UnattributedJoules
	if math.Abs(out-res.TotalJoules) > 1e-6 {
		t.Fatalf("leak: attributed %v vs total %v", out, res.TotalJoules)
	}
	var userSum float64
	for _, j := range res.Users {
		userSum += j
	}
	if math.Abs(userSum-jobSum) > 1e-6 {
		t.Fatalf("user ledger %v != job ledger %v", userSum, jobSum)
	}
}

func TestTopUsersOrdering(t *testing.T) {
	res := &AttributionResult{Users: map[string]float64{"a": 10, "b": 30, "c": 20}}
	top := res.TopUsers()
	if top[0] != "b" || top[1] != "c" || top[2] != "a" {
		t.Fatalf("order = %v", top)
	}
}

func TestAttributeEnergySingleSampleUsesDefaultDT(t *testing.T) {
	in := AttributionInput{
		Power:    map[string][]PowerSample{"n1": {{0, 100}}},
		NodeJobs: map[string][]NodeJobsSample{"n1": {{0, []string{"j"}}}},
		Jobs:     map[string]JobMeta{"j": {Key: "j", User: "u", Slots: 1, NodeCount: 1}},
	}
	res := AttributeEnergy(in)
	if !almostEq(res.TotalJoules, 6000) { // 100 W × 60 s default
		t.Fatalf("total = %v", res.TotalJoules)
	}
}

func TestJobsAtBeforeFirstSample(t *testing.T) {
	tl := []NodeJobsSample{{100, []string{"x"}}}
	if jobsAt(tl, 50) != nil {
		t.Fatal("jobs reported before first correlation sample")
	}
	if got := jobsAt(tl, 100); len(got) != 1 {
		t.Fatal("exact-time lookup failed")
	}
}
