package analysis

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPearsonPerfectCorrelation(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if r := Pearson(a, b); math.Abs(r-1) > 1e-12 {
		t.Fatalf("r = %v, want 1", r)
	}
	c := []float64{10, 8, 6, 4, 2}
	if r := Pearson(a, c); math.Abs(r+1) > 1e-12 {
		t.Fatalf("r = %v, want -1", r)
	}
}

func TestPearsonUndefinedCases(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 2}, []float64{1})) {
		t.Fatal("length mismatch not NaN")
	}
	if !math.IsNaN(Pearson([]float64{1}, []float64{1})) {
		t.Fatal("single sample not NaN")
	}
	if !math.IsNaN(Pearson([]float64{3, 3, 3}, []float64{1, 2, 3})) {
		t.Fatal("zero variance not NaN")
	}
}

func TestPearsonNearZeroForOrthogonal(t *testing.T) {
	a := []float64{1, -1, 1, -1, 1, -1, 1, -1}
	b := []float64{1, 1, -1, -1, 1, 1, -1, -1}
	if r := Pearson(a, b); math.Abs(r) > 0.01 {
		t.Fatalf("orthogonal r = %v", r)
	}
}

func TestPropPearsonBounded(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 4 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r := Pearson(a, b)
		if math.IsNaN(r) {
			return true
		}
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropPearsonSymmetric(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) < 6 {
			return true
		}
		n := len(raw) / 2
		a, b := raw[:n], raw[n:2*n]
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
				return true
			}
		}
		r1, r2 := Pearson(a, b), Pearson(b, a)
		if math.IsNaN(r1) || math.IsNaN(r2) {
			return math.IsNaN(r1) == math.IsNaN(r2)
		}
		return math.Abs(r1-r2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCorrelateMatrix(t *testing.T) {
	load := []float64{0.1, 0.5, 0.9, 0.3, 0.7}
	power := []float64{120, 280, 410, 190, 330}  // tracks load
	inlet := []float64{21, 21.2, 20.9, 21.1, 21} // unrelated
	m := Correlate([]Series{
		{Name: "load", Values: load},
		{Name: "power", Values: power},
		{Name: "inlet", Values: inlet},
	})
	if m.R[0][0] != 1 || m.R[1][1] != 1 {
		t.Fatal("diagonal not 1")
	}
	lp, err := m.Lookup("load", "power")
	if err != nil {
		t.Fatal(err)
	}
	if lp < 0.95 {
		t.Fatalf("load-power r = %v, want strong", lp)
	}
	if m.R[0][1] != m.R[1][0] {
		t.Fatal("matrix not symmetric")
	}
	strongest := m.Strongest()
	if strongest[0].A != "load" || strongest[0].B != "power" {
		t.Fatalf("strongest = %+v", strongest[0])
	}
	if _, err := m.Lookup("load", "nope"); err == nil {
		t.Fatal("unknown series accepted")
	}
}

func TestCorrelateTruncatesUnequalLengths(t *testing.T) {
	m := Correlate([]Series{
		{Name: "a", Values: []float64{1, 2, 3, 4, 5, 6}},
		{Name: "b", Values: []float64{2, 4, 6}},
	})
	if r := m.R[0][1]; math.Abs(r-1) > 1e-9 {
		t.Fatalf("truncated r = %v", r)
	}
}

func TestCorrelationOutliers(t *testing.T) {
	// Nine healthy nodes: power tracks load. One broken node: power is
	// flat-high regardless of load (stuck PSU reading / firmware bug).
	var xs, ys [][]float64
	for n := 0; n < 9; n++ {
		load := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.4, 0.2, 0.8}
		power := make([]float64, len(load))
		for i, l := range load {
			power[i] = 105 + 310*l + float64(n) // tiny per-node offset
		}
		xs = append(xs, load)
		ys = append(ys, power)
	}
	xs = append(xs, []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.4, 0.2, 0.8})
	ys = append(ys, []float64{400, 401, 399, 400, 402, 398, 400, 401.5})
	ranked := CorrelationOutliers(xs, ys)
	if len(ranked) != 10 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0] != 9 {
		t.Fatalf("top outlier = %d, want 9 (the broken node)", ranked[0])
	}
}

func TestCorrelationOutliersEmptyAndDegenerate(t *testing.T) {
	if CorrelationOutliers(nil, nil) != nil {
		t.Fatal("nil input returned outliers")
	}
	// All-degenerate correlations are skipped.
	out := CorrelationOutliers([][]float64{{1, 1, 1}}, [][]float64{{2, 3, 4}})
	if out != nil {
		t.Fatalf("degenerate input returned %v", out)
	}
}
