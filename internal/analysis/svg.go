package analysis

import (
	"fmt"
	"math"
	"strings"
)

// The SVG renderer produces static versions of HiperJobViz's views so
// the examples can emit shareable artifacts without a browser. Colours
// follow the paper's palette: blue for normal clusters, orange for
// critical ones, gray for queueing, green for running.

var clusterPalette = []string{
	"#4E79A7", "#59A14F", "#9C755F", "#EDC948", "#B07AA1", "#76B7B2", "#F28E2B",
}

// ClusterColor maps a cluster rank to a stable colour (last = hottest =
// orange).
func ClusterColor(rank int) string {
	if rank < 0 {
		return "#BAB0AC"
	}
	return clusterPalette[rank%len(clusterPalette)]
}

// RadarSVG renders one node's radar profile (Fig 7 style).
func RadarSVG(p *RadarProfile, size int) string {
	if size <= 0 {
		size = 240
	}
	n := len(p.Normalized)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`, size, size, size, size)
	cx, cy := float64(size)/2, float64(size)/2
	r := float64(size)/2 - 30
	// Grid rings.
	for _, frac := range []float64{0.25, 0.5, 0.75, 1.0} {
		fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="%.1f" fill="none" stroke="#ddd"/>`, cx, cy, r*frac)
	}
	if n > 0 {
		// Spokes and labels.
		for i := 0; i < n; i++ {
			a := angle(i, n)
			x, y := cx+r*math.Cos(a), cy+r*math.Sin(a)
			fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="#eee"/>`, cx, cy, x, y)
			if i < len(p.Dimensions) {
				lx, ly := cx+(r+14)*math.Cos(a), cy+(r+14)*math.Sin(a)
				fmt.Fprintf(&b, `<text x="%.1f" y="%.1f" font-size="8" text-anchor="middle">%s</text>`, lx, ly, escape(p.Dimensions[i]))
			}
		}
		// Profile polygon.
		var pts []string
		for i, v := range p.Normalized {
			a := angle(i, n)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", cx+r*v*math.Cos(a), cy+r*v*math.Sin(a)))
		}
		color := ClusterColor(p.Cluster)
		fmt.Fprintf(&b, `<polygon points="%s" fill="%s" fill-opacity="0.35" stroke="%s" stroke-width="2"/>`,
			strings.Join(pts, " "), color, color)
	}
	fmt.Fprintf(&b, `<text x="%.1f" y="14" font-size="11" text-anchor="middle">%s</text>`, cx, escape(p.NodeID))
	b.WriteString("</svg>")
	return b.String()
}

func angle(i, n int) float64 {
	return 2*math.Pi*float64(i)/float64(n) - math.Pi/2
}

// TimelineSVG renders the job-scheduling timeline (Fig 6 style): one
// row per job (grouped by user), gray for waiting, green for running,
// and per-user job/host counts in the margin.
func TimelineSVG(tl *Timeline, width int) string {
	if width <= 0 {
		width = 900
	}
	rowH := 8
	margin := 170
	span := tl.End - tl.Start
	if span <= 0 {
		span = 1
	}
	// Order rows user-major (summary order), submit-minor.
	jobsByUser := make(map[string][]TimelineJob)
	for _, j := range tl.Jobs {
		jobsByUser[j.User] = append(jobsByUser[j.User], j)
	}
	rows := 0
	for _, us := range tl.Users {
		rows += len(jobsByUser[us.User]) + 1
	}
	height := rows*rowH + 40
	x := func(t int64) float64 {
		if t < tl.Start {
			t = tl.Start
		}
		if t > tl.End {
			t = tl.End
		}
		return float64(margin) + float64(width-margin-10)*float64(t-tl.Start)/float64(span)
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, width, height)
	y := 20
	for _, us := range tl.Users {
		fmt.Fprintf(&b, `<text x="4" y="%d" font-size="10">%s (%d jobs, %d hosts)</text>`,
			y+rowH, escape(us.User), us.Jobs, us.Hosts)
		y += rowH
		for _, j := range jobsByUser[us.User] {
			if j.StartTime > 0 {
				fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="#BAB0AC"/>`,
					x(j.SubmitTime), y, math.Max(x(j.StartTime)-x(j.SubmitTime), 0.5), rowH-2)
				end := j.FinishTime
				if end == 0 {
					end = tl.End
				}
				fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="#59A14F"/>`,
					x(j.StartTime), y, math.Max(x(end)-x(j.StartTime), 0.5), rowH-2)
			} else {
				fmt.Fprintf(&b, `<rect x="%.1f" y="%d" width="%.1f" height="%d" fill="#BAB0AC"/>`,
					x(j.SubmitTime), y, math.Max(x(tl.End)-x(j.SubmitTime), 0.5), rowH-2)
			}
			y += rowH
		}
	}
	b.WriteString("</svg>")
	return b.String()
}

// TrendSVG renders a node's historical metrics with cluster-coloured
// background bands (Fig 8 style).
func TrendSVG(ts *TrendSeries, ranks []int, width, height int) string {
	if width <= 0 {
		width = 900
	}
	if height <= 0 {
		height = 220
	}
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, width, height)
	if len(ts.Times) == 0 {
		b.WriteString("</svg>")
		return b.String()
	}
	start, end := ts.Times[0], ts.Times[len(ts.Times)-1]
	if end == start {
		end = start + 1
	}
	x := func(t int64) float64 {
		return 40 + float64(width-50)*float64(t-start)/float64(end-start)
	}
	// Background bands coloured by cluster rank.
	for _, band := range ts.Bands {
		rank := band.Cluster
		if ranks != nil && band.Cluster < len(ranks) {
			rank = ranks[band.Cluster]
		}
		fmt.Fprintf(&b, `<rect x="%.1f" y="20" width="%.1f" height="%d" fill="%s" fill-opacity="0.25"/>`,
			x(band.Start), math.Max(x(band.End)-x(band.Start), 0.5), height-40, ClusterColor(rank))
	}
	// One polyline per metric, each normalized to its own range.
	names := make([]string, 0, len(ts.Metrics))
	for name := range ts.Metrics {
		names = append(names, name)
	}
	// Deterministic order.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for mi, name := range names {
		vals := ts.Metrics[name]
		lo, hi := vals[0], vals[0]
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi == lo {
			hi = lo + 1
		}
		var pts []string
		for i, v := range vals {
			py := float64(height-20) - float64(height-40)*(v-lo)/(hi-lo)
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", x(ts.Times[i]), py))
		}
		color := clusterPalette[mi%len(clusterPalette)]
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.2"/>`, strings.Join(pts, " "), color)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="9" fill="%s">%s</text>`, 44, 30+12*mi, color, escape(name))
	}
	fmt.Fprintf(&b, `<text x="40" y="14" font-size="11">node %s</text>`, escape(ts.NodeID))
	b.WriteString("</svg>")
	return b.String()
}

// HistogramMatrixSVG renders the Fig 9 user/metric histogram matrix.
func HistogramMatrixSVG(m *UserUsageMatrix, cell int) string {
	if cell <= 0 {
		cell = 70
	}
	w := 120 + cell*len(m.Dimensions)
	h := 30 + cell*len(m.Users)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d">`, w, h)
	for di, dim := range m.Dimensions {
		fmt.Fprintf(&b, `<text x="%d" y="16" font-size="9" text-anchor="middle">%s</text>`, 120+di*cell+cell/2, escape(dim))
	}
	for ui, user := range m.Users {
		fmt.Fprintf(&b, `<text x="4" y="%d" font-size="10">%s</text>`, 30+ui*cell+cell/2, escape(user))
		for di, dim := range m.Dimensions {
			hst := m.Cells[user][dim]
			if hst == nil || hst.Count == 0 {
				continue
			}
			maxBin := 1
			for _, c := range hst.Bins {
				if c > maxBin {
					maxBin = c
				}
			}
			bw := float64(cell-10) / float64(len(hst.Bins))
			baseX := float64(120 + di*cell + 5)
			midY := float64(30 + ui*cell + cell/2)
			for bi, c := range hst.Bins {
				// Symmetric (violin-like) bars around the midline.
				bh := float64(cell-14) * float64(c) / float64(maxBin) / 2
				fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="#4E79A7"/>`,
					baseX+float64(bi)*bw, midY-bh, math.Max(bw-1, 0.5), math.Max(2*bh, 0.5))
			}
		}
	}
	b.WriteString("</svg>")
	return b.String()
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
