package lint

// Analyzer statssurface keeps the /v1/stats endpoint honest. The
// builder collects counter structs from every subsystem (DBStats,
// WALStats, CompressionStats, ...) and hand-copies their fields into
// the response object; a counter added to a subsystem but forgotten in
// handleStats silently never ships, which defeats the point of an
// always-on monitor monitoring itself. Two invariants:
//
//   - in any function named handleStats, every exported field of every
//     collected *Stats-typed local must be serialized: read directly,
//     carried as a whole value into the response, or mirrored — a
//     field with the same name and type read on another collected
//     struct covers its duplicates (e.g. BlocksSealed is kept both by
//     DBStats and CompressionStats; serializing either surfaces the
//     counter, deleting the one serialization flags both);
//   - *Stats/*Status structs that opt into JSON (at least one json
//     tag) must tag every exported field, with snake_case names,
//     unique within the struct — the wire surface stays consistent and
//     greppable.
//
// Reports for unserialized fields anchor at the local's declaration in
// handleStats, so a deliberate exception is suppressible where the
// collection happens, not in a foreign package.

import (
	"go/ast"
	"go/types"
	"reflect"
	"strings"
)

// StatsSurface reports stats fields collected but never serialized and
// inconsistent json tags on Stats/Status structs.
var StatsSurface = &Analyzer{
	Name: "statssurface",
	Doc:  "every exported field of the Stats structs collected into /v1/stats must be serialized and named consistently",
	Run:  runStatsSurface,
}

func runStatsSurface(p *Pass) error {
	checkStatsTags(p)
	inspectFiles(p, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil || fd.Name.Name != "handleStats" {
			return true
		}
		checkHandleStats(p, fd)
		return false
	})
	return nil
}

// statLocal is one *Stats-typed local collected in handleStats.
type statLocal struct {
	obj       *types.Var
	named     *types.Named
	st        *types.Struct
	wholeUse  bool
	fieldRead map[string]bool
}

func checkHandleStats(p *Pass, fd *ast.FuncDecl) {
	info := p.TypesInfo

	// Collect the *Stats-typed locals declared in the body.
	locals := make(map[*types.Var]*statLocal)
	var order []*statLocal
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Defs[id].(*types.Var)
		if !ok || locals[obj] != nil {
			return true
		}
		named := namedType(obj.Type())
		if named == nil || !strings.HasSuffix(named.Obj().Name(), "Stats") {
			return true
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return true
		}
		l := &statLocal{obj: obj, named: named, st: st, fieldRead: make(map[string]bool)}
		locals[obj] = l
		order = append(order, l)
		return true
	})
	if len(order) == 0 {
		return
	}

	// Classify every use: field reads vs whole-value uses. An ident
	// that is the base of a field selector records the field; the base
	// of a method call records nothing (the receiver is plumbing, not
	// serialization); any bare use is a whole-value use.
	selectorBase := make(map[*ast.Ident]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		se, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		base, ok := ast.Unparen(se.X).(*ast.Ident)
		if !ok {
			return true
		}
		obj, _ := info.Uses[base].(*types.Var)
		l := locals[obj]
		if l == nil {
			return true
		}
		selectorBase[base] = true
		if sel, ok := info.Selections[se]; ok && sel.Kind() == types.FieldVal {
			l.fieldRead[sel.Obj().Name()] = true
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || selectorBase[id] {
			return true
		}
		if obj, ok := info.Uses[id].(*types.Var); ok {
			if l := locals[obj]; l != nil {
				l.wholeUse = true
			}
		}
		return true
	})

	// mirroredReads: field name -> types whose read covers duplicates.
	mirrored := make(map[string]types.Type)
	for _, l := range order {
		for i := 0; i < l.st.NumFields(); i++ {
			f := l.st.Field(i)
			if l.fieldRead[f.Name()] {
				mirrored[f.Name()] = f.Type()
			}
		}
	}

	for _, l := range order {
		if l.wholeUse {
			continue
		}
		for i := 0; i < l.st.NumFields(); i++ {
			f := l.st.Field(i)
			if !f.Exported() || l.fieldRead[f.Name()] {
				continue
			}
			if mt, ok := mirrored[f.Name()]; ok && types.Identical(mt, f.Type()) {
				continue
			}
			p.Reportf(l.obj.Pos(), "%s (%s) exported stat field %s is never serialized into /v1/stats",
				l.obj.Name(), l.named.Obj().Name(), f.Name())
		}
	}
}

// checkStatsTags enforces json-tag discipline on the package's own
// Stats/Status structs: once a struct opts into JSON, every exported
// field is tagged, snake_case, and unique.
func checkStatsTags(p *Pass) {
	inspectFiles(p, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		name := ts.Name.Name
		if !strings.HasSuffix(name, "Stats") && !strings.HasSuffix(name, "Status") {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		tagged := false
		for _, f := range st.Fields.List {
			if jsonTag(f) != "" {
				tagged = true
				break
			}
		}
		if !tagged {
			return true // struct never meant for the wire (e.g. QueryStats header)
		}
		seen := make(map[string]bool)
		for _, f := range st.Fields.List {
			if len(f.Names) == 0 && f.Tag == nil {
				continue // untagged embedded struct: the JSON inlining idiom
			}
			tag := jsonTag(f)
			exported := false
			for _, id := range f.Names {
				if id.IsExported() {
					exported = true
				}
			}
			if len(f.Names) == 0 {
				exported = true
			}
			if tag == "" {
				if exported {
					p.Reportf(f.Pos(), "%s: exported field missing a json tag while siblings are tagged", name)
				}
				continue
			}
			tagName, _, _ := strings.Cut(tag, ",")
			if tagName == "" || tagName == "-" {
				continue
			}
			if !isSnakeCase(tagName) {
				p.Reportf(f.Pos(), "%s: json tag %q is not snake_case", name, tagName)
			}
			if seen[tagName] {
				p.Reportf(f.Pos(), "%s: duplicate json tag %q", name, tagName)
			}
			seen[tagName] = true
		}
		return true
	})
}

func jsonTag(f *ast.Field) string {
	if f.Tag == nil {
		return ""
	}
	raw := strings.Trim(f.Tag.Value, "`")
	return reflect.StructTag(raw).Get("json")
}

func isSnakeCase(s string) bool {
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
		default:
			return false
		}
	}
	return s != "" && s[0] != '_'
}
