package lint

// errdrop flags silently discarded errors from the I/O methods that
// matter on the pipeline's hot paths: Write*, Flush, Close, and Sync.
// The collector's 60 s batch path and the builder's HTTP responses
// must never lose a storage or transport error on the floor — the
// paper's robustness claims rest on failed cycles being *counted*,
// not invisible.
//
// Deliberate escapes stay visible: assigning to _ is allowed (it is an
// explicit, reviewable act), `defer x.Close()` on read paths is
// conventional and exempt, and never-failing writers (strings.Builder,
// bytes.Buffer) are recognized and skipped. Everything else needs a
// check or a //lint:ignore with a reason.

import (
	"go/ast"
	"strings"
)

// ErrDrop flags expression statements that discard an error from
// Write*/Flush/Close/Sync calls.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded errors from Write*/Flush/Close/Sync calls (collector/builder hot paths must count failures, not swallow them)",
	Run:  runErrDrop,
}

// neverFailingWriters are receiver types whose Write methods are
// documented to always return a nil error.
var neverFailingWriters = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

func isDropProneName(name string) bool {
	return strings.HasPrefix(name, "Write") || name == "Flush" || name == "Close" || name == "Sync"
}

func runErrDrop(p *Pass) error {
	inspectFiles(p, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name := sel.Sel.Name
		if !isDropProneName(name) || !returnsError(p.TypesInfo, call) {
			return true
		}
		// Method calls on never-failing writers are fine; package-level
		// functions (binary.Write, io.Copy-style helpers) have no
		// receiver and always count.
		if recv := namedType(p.TypesInfo.TypeOf(sel.X)); recv != nil {
			if obj := recv.Obj(); obj.Pkg() != nil && neverFailingWriters[obj.Pkg().Path()+"."+obj.Name()] {
				return true
			}
		}
		p.Reportf(stmt.Pos(), "discarded error from %s; check it, count it in stats, or assign to _ deliberately", name)
		return true
	})
	return nil
}
