package lint

// atomicfield closes the second half of the lockcopy story: a struct
// field that is accessed through sync/atomic anywhere in a package
// (atomic.AddInt64(&s.n, 1)) must be accessed through sync/atomic
// everywhere in that package. A plain `s.n` read racing an atomic
// writer is undefined behaviour the race detector reports only when a
// test happens to interleave the two; statically, the mixed access is
// visible immediately.
//
// The analyzer runs two package-wide passes: first it collects every
// field whose address is passed to a sync/atomic function, then it
// flags plain selector reads/writes of those same field objects. The
// composite-literal zero initialization and the &s.n argument inside
// the atomic call itself are exempt.

import (
	"go/ast"
	"go/types"
	"strings"
)

// AtomicField flags non-atomic access to fields used atomically
// elsewhere in the package.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc:  "flags plain reads/writes of struct fields that are accessed via sync/atomic elsewhere in the package (mixed access is a data race)",
	Run:  runAtomicField,
}

// isAtomicOpName matches the sync/atomic package-level operations that
// take an address.
func isAtomicOpName(name string) bool {
	for _, prefix := range []string{"Add", "Load", "Store", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}

func runAtomicField(p *Pass) error {
	// Pass 1: fields whose address feeds sync/atomic, and the selector
	// nodes doing so (exempt in pass 2).
	atomicFields := make(map[types.Object]bool)
	exempt := make(map[*ast.SelectorExpr]bool)
	inspectFiles(p, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := isPkgQualified(p.TypesInfo, call.Fun, "sync/atomic")
		if !ok || !isAtomicOpName(name) {
			return true
		}
		for _, arg := range call.Args {
			un, ok := arg.(*ast.UnaryExpr)
			if !ok {
				continue
			}
			sel, ok := un.X.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if s, ok := p.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
				atomicFields[s.Obj()] = true
				exempt[sel] = true
			}
		}
		return true
	})
	if len(atomicFields) == 0 {
		return nil
	}

	// Pass 2: plain accesses of those fields.
	inspectFiles(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || exempt[sel] {
			return true
		}
		s, ok := p.TypesInfo.Selections[sel]
		if !ok || s.Kind() != types.FieldVal || !atomicFields[s.Obj()] {
			return true
		}
		p.Reportf(sel.Pos(), "field %s is accessed with sync/atomic elsewhere in this package; this plain access races it — use sync/atomic here too", sel.Sel.Name)
		return true
	})
	return nil
}
