package lint

// clockdiscipline enforces the repository's virtual-time rule: no
// component outside internal/clock may read or wait on the wall clock
// directly. Every "now", sleep, or timer must go through a
// clock.Clock, so the same code runs against real time in the live
// pipeline and against simulated time in the discrete-event
// experiments that reproduce the paper's figures. A single stray
// time.Now() makes a DES run non-reproducible in a way no test can
// reliably catch — which is exactly what a vet pass is for.
//
// Constructors and conversions (time.Unix, time.Parse, time.Duration
// arithmetic) are fine: they manipulate time values without observing
// the clock. Test files are exempt.

import (
	"go/ast"
)

// forbiddenTimeFuncs are the package-time functions that observe or
// wait on the wall clock.
var forbiddenTimeFuncs = map[string]string{
	"Now":       "Clock.Now",
	"Since":     "Clock.Now().Sub",
	"Until":     "Clock.Now-based arithmetic",
	"Sleep":     "Clock.Sleep",
	"After":     "Clock.After",
	"Tick":      "Clock.After in a loop",
	"NewTicker": "Clock.After in a loop",
	"NewTimer":  "Clock.After",
	"AfterFunc": "Clock.After",
}

// ClockDiscipline flags wall-clock reads and timers outside
// internal/clock.
var ClockDiscipline = &Analyzer{
	Name: "clockdiscipline",
	Doc:  "forbids time.Now/Since/Sleep/After and timers outside internal/clock; thread a clock.Clock instead (keeps DES runs deterministic)",
	Run:  runClockDiscipline,
}

func runClockDiscipline(p *Pass) error {
	if p.Pkg.Name() == "clock" {
		return nil // the one package allowed to touch the wall clock
	}
	inspectFiles(p, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		name, ok := isPkgQualified(p.TypesInfo, sel, "time")
		if !ok {
			return true
		}
		if repl, bad := forbiddenTimeFuncs[name]; bad {
			p.Reportf(sel.Pos(), "wall-clock time.%s outside internal/clock breaks virtual-time determinism; use clock.%s", name, repl)
		}
		return true
	})
	return nil
}
