package lint

// viewmutate guards the storage engine's central invariant since the
// snapshot-isolation refactor: a dbView published through the DB's
// atomic pointer is immutable forever. All mutation happens in
// view.go's copy-on-write batch constructors, which clone exactly the
// levels they touch before writing. A write through a view anywhere
// else — db.go taking a shortcut during a drop, a new feature patching
// an index map in place — silently corrupts snapshots held by
// concurrent readers, a bug the race detector only catches when a
// reader happens to overlap.
//
// The analyzer is scoped to packages named "tsdb" and flags any
// assignment, ++/--, or delete() whose target is reached through an
// expression of type dbView (or *dbView) outside view.go. Mutating a
// batch-owned *shard/*series/*column local is allowed — ownership of
// those clones is established in view.go and cannot be checked
// file-locally — but the moment a write path starts at a view value,
// it must live in view.go or carry a //lint:ignore with a reason.

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// ViewMutate flags writes reached through a tsdb view outside view.go.
var ViewMutate = &Analyzer{
	Name: "viewmutate",
	Doc:  "flags writes through a tsdb dbView outside view.go's copy-on-write constructors (published views are immutable)",
	Run:  runViewMutate,
}

func runViewMutate(p *Pass) error {
	if p.Pkg.Name() != "tsdb" {
		return nil
	}
	for _, f := range p.Files {
		if p.IsTestFile(f) {
			continue
		}
		if filepath.Base(p.Filename(f.Pos())) == "view.go" {
			continue // the copy-on-write layer itself
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range st.Lhs {
					p.checkViewTarget(lhs)
				}
			case *ast.IncDecStmt:
				p.checkViewTarget(st.X)
			case *ast.CallExpr:
				if id, ok := st.Fun.(*ast.Ident); ok && id.Name == "delete" && len(st.Args) == 2 {
					if _, isBuiltin := p.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
						p.checkViewTarget(st.Args[0])
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkViewTarget walks a write target's selector/index chain and
// reports if any link is reached through a dbView-typed expression.
func (p *Pass) checkViewTarget(e ast.Expr) {
	for {
		var base ast.Expr
		switch x := e.(type) {
		case *ast.SelectorExpr:
			base = x.X
		case *ast.IndexExpr:
			base = x.X
		case *ast.StarExpr:
			base = x.X
		case *ast.ParenExpr:
			base = x.X
		default:
			return
		}
		if nt := namedType(p.TypesInfo.TypeOf(base)); nt != nil {
			if obj := nt.Obj(); obj.Name() == "dbView" && obj.Pkg() == p.Pkg {
				p.Reportf(e.Pos(), "write through a dbView outside view.go; published views are immutable — derive the next view with the copy-on-write constructors")
				return
			}
		}
		e = base
	}
}
