package lint

// The interprocedural layer: a package-level call graph built on
// go/types. Nodes are function bodies — declared functions and methods
// plus function literals — and edges are the calls the type information
// can resolve:
//
//   - static calls to package functions and concrete methods,
//   - calls through interface values, bounded CHA-style to the concrete
//     types declared in the same package,
//   - calls through function values, matched by signature against the
//     address-taken functions and literals of the package.
//
// Cross-package callees appear as external leaves (*types.Func without
// a body); the graph never follows them. That bound keeps construction
// a single pass over the already type-checked syntax and is the right
// fidelity for the invariants monsterlint enforces: lock ordering and
// goroutine escape analysis are per-subsystem properties, and each
// subsystem here is one package.
//
// The graph is built lazily, once per RunPackage, and shared by every
// analyzer in the run through the Pass's facts.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A CGNode is one function body in the call graph: either a declared
// function/method (Fn, Decl set) or a function literal (Lit set).
type CGNode struct {
	Fn   *types.Func   // nil for function literals
	Decl *ast.FuncDecl // nil for function literals
	Lit  *ast.FuncLit  // nil for declared functions
	File *ast.File     // enclosing file

	callees []*CGNode     // in-package callees with bodies, deduplicated
	externs []*types.Func // resolved callees without an in-package body
}

// Body returns the node's statement list.
func (n *CGNode) Body() *ast.BlockStmt {
	if n.Lit != nil {
		return n.Lit.Body
	}
	return n.Decl.Body
}

// Pos returns the node's declaration position.
func (n *CGNode) Pos() token.Pos {
	if n.Lit != nil {
		return n.Lit.Pos()
	}
	return n.Decl.Pos()
}

// Callees returns the in-package callees, in first-call order.
func (n *CGNode) Callees() []*CGNode { return n.callees }

// Externs returns resolved callees that have no body in the package.
func (n *CGNode) Externs() []*types.Func { return n.externs }

// Name renders the node for diagnostics: "(*DB).WritePoints",
// "replayWAL", or "function literal" for anonymous bodies.
func (n *CGNode) Name() string {
	if n.Lit != nil {
		return "function literal"
	}
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		return fmt.Sprintf("(%s).%s", types.TypeString(sig.Recv().Type(), types.RelativeTo(n.Fn.Pkg())), n.Fn.Name())
	}
	return n.Fn.Name()
}

// callTargets is the resolution of one call expression.
type callTargets struct {
	static []*types.Func // direct function/method callees
	cha    []*types.Func // interface-call candidates (same-package concrete types)
	lits   []*ast.FuncLit
	// dynamic reports that the call goes through a function value whose
	// target set was approximated (lits/static hold the signature-matched
	// address-taken candidates, possibly empty).
	dynamic bool
}

// A CallGraph indexes every function body of one package.
type CallGraph struct {
	fset *token.FileSet
	info *types.Info
	pkg  *types.Package

	nodes map[*types.Func]*CGNode
	lits  map[*ast.FuncLit]*CGNode
	order []*CGNode // deterministic: file order, then position

	// addrTaken maps a receiver-less signature string to the functions
	// and literals whose value escapes into a variable, field, argument,
	// or return — the candidate set for calls through function values.
	addrTaken map[string][]*CGNode

	// calledFun marks call-expression Fun nodes, so a *types.Func use
	// outside that set is an address-taken function value.
	calledFun map[ast.Node]bool
}

// buildCallGraph constructs the graph for the pass's package. Test
// files are excluded: the analyzers that consume the graph enforce
// production invariants only.
func buildCallGraph(p *Pass) *CallGraph {
	g := &CallGraph{
		fset:      p.Fset,
		info:      p.TypesInfo,
		pkg:       p.Pkg,
		nodes:     make(map[*types.Func]*CGNode),
		lits:      make(map[*ast.FuncLit]*CGNode),
		addrTaken: make(map[string][]*CGNode),
		calledFun: make(map[ast.Node]bool),
	}
	var files []*ast.File
	for _, f := range p.Files {
		if !p.IsTestFile(f) {
			files = append(files, f)
		}
	}
	// Pass 1: nodes and the called-position index.
	for _, f := range files {
		file := f
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				if fn, ok := g.info.Defs[n.Name].(*types.Func); ok {
					node := &CGNode{Fn: fn, Decl: n, File: file}
					g.nodes[fn] = node
					g.order = append(g.order, node)
				}
			case *ast.FuncLit:
				node := &CGNode{Lit: n, File: file}
				g.lits[n] = node
				g.order = append(g.order, node)
			case *ast.CallExpr:
				fun := ast.Unparen(n.Fun)
				g.calledFun[fun] = true
				if se, ok := fun.(*ast.SelectorExpr); ok {
					g.calledFun[se.Sel] = true
				}
			}
			return true
		})
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].Pos() < g.order[j].Pos() })

	// Pass 2: address-taken functions and literals, keyed by signature.
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if g.calledFun[n] {
					return true
				}
				if fn, ok := g.info.Uses[n].(*types.Func); ok {
					if node := g.nodes[fn]; node != nil {
						g.markAddrTaken(node, fn.Type())
					}
				}
			case *ast.SelectorExpr:
				if g.calledFun[n] {
					return true // a direct call, but descend: n.X may capture values
				}
				if sel, ok := g.info.Selections[n]; ok && sel.Kind() == types.MethodVal {
					if fn, ok := sel.Obj().(*types.Func); ok {
						if node := g.nodes[fn]; node != nil {
							// A method value's type drops the receiver.
							g.markAddrTaken(node, g.info.TypeOf(n))
						}
					}
				}
			case *ast.FuncLit:
				if !g.calledFun[n] {
					g.markAddrTaken(g.lits[n], g.info.TypeOf(n))
				}
			}
			return true
		})
	}

	// Pass 3: edges. Each node's own statements only — nested literal
	// bodies contribute edges to their own nodes.
	for _, node := range g.order {
		seen := make(map[*CGNode]bool)
		seenExt := make(map[*types.Func]bool)
		walkOwnStmts(node.Body(), func(n ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			t := g.CalleesOf(call)
			for _, fn := range t.static {
				g.addEdge(node, fn, seen, seenExt)
			}
			for _, fn := range t.cha {
				g.addEdge(node, fn, seen, seenExt)
			}
			for _, lit := range t.lits {
				if ln := g.lits[lit]; ln != nil && !seen[ln] {
					seen[ln] = true
					node.callees = append(node.callees, ln)
				}
			}
		})
	}
	return g
}

func (g *CallGraph) addEdge(from *CGNode, to *types.Func, seen map[*CGNode]bool, seenExt map[*types.Func]bool) {
	if node := g.nodes[to]; node != nil {
		if !seen[node] {
			seen[node] = true
			from.callees = append(from.callees, node)
		}
		return
	}
	if !seenExt[to] {
		seenExt[to] = true
		from.externs = append(from.externs, to)
	}
}

func (g *CallGraph) markAddrTaken(node *CGNode, t types.Type) {
	key := dynSigKey(t)
	if key == "" {
		return
	}
	for _, n := range g.addrTaken[key] {
		if n == node {
			return
		}
	}
	g.addrTaken[key] = append(g.addrTaken[key], node)
}

// dynSigKey canonicalizes a function type to a receiver-less signature
// string, the matching key for calls through function values.
func dynSigKey(t types.Type) string {
	sig, ok := t.(*types.Signature)
	if !ok {
		return ""
	}
	if sig.Recv() != nil {
		sig = types.NewSignatureType(nil, nil, nil, sig.Params(), sig.Results(), sig.Variadic())
	}
	return types.TypeString(sig, nil)
}

// Nodes returns every function body of the package in source order.
func (g *CallGraph) Nodes() []*CGNode { return g.order }

// NodeOf returns the node for a declared function, or nil.
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode { return g.nodes[fn] }

// LitNode returns the node for a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *CGNode { return g.lits[lit] }

// FuncsNamed returns the declared functions (and methods) with the
// given name, in source order.
func (g *CallGraph) FuncsNamed(name string) []*CGNode {
	var out []*CGNode
	for _, n := range g.order {
		if n.Fn != nil && n.Fn.Name() == name {
			out = append(out, n)
		}
	}
	return out
}

// Reachable returns the set of nodes reachable from the starts through
// in-package edges, including the starts themselves.
func (g *CallGraph) Reachable(starts ...*CGNode) map[*CGNode]bool {
	seen := make(map[*CGNode]bool)
	var stack []*CGNode
	for _, s := range starts {
		if s != nil && !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range n.callees {
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return seen
}

// CalleesOf resolves one call expression to its possible targets.
func (g *CallGraph) CalleesOf(call *ast.CallExpr) callTargets {
	var t callTargets
	fun := ast.Unparen(call.Fun)
	if tv, ok := g.info.Types[fun]; ok && tv.IsType() {
		return t // conversion, not a call
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		t.lits = append(t.lits, fun)
	case *ast.Ident:
		switch obj := g.info.Uses[fun].(type) {
		case *types.Func:
			t.static = append(t.static, obj)
		case *types.Var:
			g.resolveDynamic(&t, obj.Type())
		}
	case *ast.SelectorExpr:
		if sel, ok := g.info.Selections[fun]; ok {
			switch sel.Kind() {
			case types.MethodVal:
				fn, ok := sel.Obj().(*types.Func)
				if !ok {
					break
				}
				if types.IsInterface(sel.Recv()) {
					t.cha = g.chaCandidates(sel.Recv(), fn)
				} else {
					t.static = append(t.static, fn)
				}
			case types.MethodExpr:
				if fn, ok := sel.Obj().(*types.Func); ok {
					t.static = append(t.static, fn)
				}
			case types.FieldVal:
				g.resolveDynamic(&t, g.info.TypeOf(fun))
			}
			break
		}
		// Qualified identifier: pkg.F.
		switch obj := g.info.Uses[fun.Sel].(type) {
		case *types.Func:
			t.static = append(t.static, obj)
		case *types.Var:
			g.resolveDynamic(&t, obj.Type())
		}
	default:
		// Call of a call result or index expression: function value.
		g.resolveDynamic(&t, g.info.TypeOf(fun))
	}
	return t
}

func (g *CallGraph) resolveDynamic(t *callTargets, typ types.Type) {
	t.dynamic = true
	for _, node := range g.addrTaken[dynSigKey(typ)] {
		if node.Fn != nil {
			t.static = append(t.static, node.Fn)
		} else {
			t.lits = append(t.lits, node.Lit)
		}
	}
}

// chaCandidates returns the concrete implementations, among the named
// types declared in this package, of an interface method — the bounded
// class-hierarchy treatment of interface calls.
func (g *CallGraph) chaCandidates(iface types.Type, m *types.Func) []*types.Func {
	it, ok := iface.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	var out []*types.Func
	scope := g.pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		pt := types.NewPointer(t)
		if !types.Implements(t, it) && !types.Implements(pt, it) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(pt, true, g.pkg, m.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	return out
}

// walkOwnStmts visits every node lexically inside body without
// descending into nested function literals: a literal's statements
// belong to the literal's own graph node.
func walkOwnStmts(body *ast.BlockStmt, fn func(ast.Node)) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
