package lint

// ctxpropagate keeps the pipeline cancellable. The builder's fan-out,
// the collector's sweep, and the DES harness all run under a
// context.Context; a goroutine spawned — or an unconditional loop
// entered — without consulting that context outlives cancellation,
// leaks across collection cycles, and turns shutdown into a hang. The
// paper's overhead evaluation depends on cycles that stop when told
// to.
//
// Scope: packages named builder, collector, des, core, and ingest
// (where the concurrency lives). Inside any function that takes a
// context.Context, a `go` statement or a condition-less `for` loop
// must mention *some* context value (the parameter or one derived
// from it) somewhere in its body — passing ctx to a callee, selecting
// on ctx.Done(), or checking ctx.Err() all qualify.

import (
	"go/ast"
	"go/types"
)

// CtxPropagate flags goroutines and unbounded loops that ignore an
// in-scope context.
var CtxPropagate = &Analyzer{
	Name: "ctxpropagate",
	Doc:  "flags goroutine spawns and condition-less loops in builder/collector/des/core/ingest that ignore an in-scope context.Context (uncancellable work leaks)",
	Run:  runCtxPropagate,
}

// ctxScopedPackages are the package names the invariant applies to.
var ctxScopedPackages = map[string]bool{
	"builder":   true,
	"collector": true,
	"des":       true,
	"core":      true,
	"ingest":    true,
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// hasContextParam reports whether the function type declares a
// context.Context parameter.
func hasContextParam(p *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, f := range ft.Params.List {
		if isContextType(p.TypesInfo.TypeOf(f.Type)) {
			return true
		}
	}
	return false
}

// mentionsContext reports whether any identifier in the subtree has
// type context.Context.
func mentionsContext(p *Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if found {
			return false
		}
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		if obj := p.TypesInfo.Uses[id]; obj != nil && isContextType(obj.Type()) {
			found = true
			return false
		}
		return true
	})
	return found
}

func runCtxPropagate(p *Pass) error {
	if !ctxScopedPackages[p.Pkg.Name()] {
		return nil
	}
	inspectFiles(p, func(n ast.Node) bool {
		fd, ok := n.(*ast.FuncDecl)
		if !ok || fd.Body == nil || !hasContextParam(p, fd.Type) {
			return true
		}
		ast.Inspect(fd.Body, func(m ast.Node) bool {
			switch st := m.(type) {
			case *ast.FuncLit:
				// A nested function with its own ctx parameter starts a
				// fresh scope; its body is judged when it runs.
				if hasContextParam(p, st.Type) {
					return false
				}
			case *ast.GoStmt:
				if !mentionsContext(p, st.Call) {
					p.Reportf(st.Pos(), "goroutine ignores the in-scope context.Context; pass ctx in (or select on ctx.Done()) so cancellation reaches it")
				}
			case *ast.ForStmt:
				if st.Cond == nil && !mentionsContext(p, st) {
					p.Reportf(st.Pos(), "condition-less loop ignores the in-scope context.Context; check ctx.Err() or select on ctx.Done() so it can stop")
				}
			}
			return true
		})
		return true
	})
	return nil
}
