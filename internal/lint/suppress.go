package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives, staticcheck-style:
//
//	//lint:ignore analyzer1[,analyzer2...] reason
//
// suppresses the named analyzers (or "*" for all) on the directive's
// own line and on the line immediately below it — so the comment works
// both trailing the offending statement and on its own line above it.
//
//	//lint:file-ignore analyzer reason
//
// suppresses the named analyzers for the whole file. A reason is
// mandatory: a suppression without one is itself reported as a
// finding, so deliberate exceptions stay documented.
//
// Each directive also tracks whether it ever matched a finding: a
// directive naming an analyzer that ran and produced nothing on its
// lines is stale — dead armor that outlived the code it excused — and
// is reported by the pseudo-analyzer "suppression".

// A directive is one parsed lint:ignore / lint:file-ignore comment.
type directive struct {
	pos      token.Pos
	fileWide bool
	names    []string
	matched  map[string]bool // analyzer name -> matched a finding
}

// suppressions indexes the directives of one file.
type suppressions struct {
	fileWide   map[string][]*directive // analyzer name (or "*") -> directives
	byLine     map[int][]*directive    // line -> directives in scope
	directives []*directive
	malformed  []token.Pos // directives missing a reason
}

// collectSuppressions scans a file's comments.
func collectSuppressions(fset *token.FileSet, f *ast.File) *suppressions {
	s := &suppressions{
		fileWide: make(map[string][]*directive),
		byLine:   make(map[int][]*directive),
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			var fileWide bool
			var rest string
			switch {
			case strings.HasPrefix(text, "lint:ignore "), text == "lint:ignore":
				rest = strings.TrimPrefix(text, "lint:ignore")
			case strings.HasPrefix(text, "lint:file-ignore "), text == "lint:file-ignore":
				rest = strings.TrimPrefix(text, "lint:file-ignore")
				fileWide = true
			default:
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 { // analyzer list plus at least one reason word
				s.malformed = append(s.malformed, c.Pos())
				continue
			}
			d := &directive{
				pos:      c.Pos(),
				fileWide: fileWide,
				names:    strings.Split(fields[0], ","),
				matched:  make(map[string]bool),
			}
			s.directives = append(s.directives, d)
			if fileWide {
				for _, n := range d.names {
					s.fileWide[n] = append(s.fileWide[n], d)
				}
				continue
			}
			line := fset.Position(c.Pos()).Line
			s.byLine[line] = append(s.byLine[line], d)
			s.byLine[line+1] = append(s.byLine[line+1], d)
		}
	}
	return s
}

// suppresses reports whether a finding by analyzer at line is silenced,
// and records the match on every directive that covers it.
func (s *suppressions) suppresses(analyzer string, line int) bool {
	hit := false
	for _, key := range []string{"*", analyzer} {
		for _, d := range s.fileWide[key] {
			d.matched[key] = true
			hit = true
		}
	}
	for _, d := range s.byLine[line] {
		for _, n := range d.names {
			if n == "*" || n == analyzer {
				d.matched[n] = true
				hit = true
			}
		}
	}
	return hit
}

// stale returns, for every directive, the analyzer names that ran (are
// in active) yet matched no finding. "*" directives are exempt: they
// declare intent too broad to audit mechanically.
func (s *suppressions) stale(active map[string]bool) []struct {
	pos  token.Pos
	name string
} {
	var out []struct {
		pos  token.Pos
		name string
	}
	for _, d := range s.directives {
		for _, n := range d.names {
			if n == "*" || !active[n] || d.matched[n] {
				continue
			}
			out = append(out, struct {
				pos  token.Pos
				name string
			}{d.pos, n})
		}
	}
	return out
}
