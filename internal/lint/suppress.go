package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Suppression directives, staticcheck-style:
//
//	//lint:ignore analyzer1[,analyzer2...] reason
//
// suppresses the named analyzers (or "*" for all) on the directive's
// own line and on the line immediately below it — so the comment works
// both trailing the offending statement and on its own line above it.
//
//	//lint:file-ignore analyzer reason
//
// suppresses the named analyzers for the whole file. A reason is
// mandatory: a suppression without one is itself reported as a
// finding, so deliberate exceptions stay documented.

// suppressions indexes the directives of one file.
type suppressions struct {
	fileWide  map[string]bool  // analyzer name (or "*") -> suppressed
	byLine    map[int][]string // line -> analyzer names
	malformed []token.Pos      // directives missing a reason
}

// collectSuppressions scans a file's comments.
func collectSuppressions(fset *token.FileSet, f *ast.File) *suppressions {
	s := &suppressions{
		fileWide: make(map[string]bool),
		byLine:   make(map[int][]string),
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			var fileWide bool
			var rest string
			switch {
			case strings.HasPrefix(text, "lint:ignore "), text == "lint:ignore":
				rest = strings.TrimPrefix(text, "lint:ignore")
			case strings.HasPrefix(text, "lint:file-ignore "), text == "lint:file-ignore":
				rest = strings.TrimPrefix(text, "lint:file-ignore")
				fileWide = true
			default:
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) < 2 { // analyzer list plus at least one reason word
				s.malformed = append(s.malformed, c.Pos())
				continue
			}
			names := strings.Split(fields[0], ",")
			if fileWide {
				for _, n := range names {
					s.fileWide[n] = true
				}
				continue
			}
			line := fset.Position(c.Pos()).Line
			s.byLine[line] = append(s.byLine[line], names...)
			s.byLine[line+1] = append(s.byLine[line+1], names...)
		}
	}
	return s
}

// suppresses reports whether a finding by analyzer at line is silenced.
func (s *suppressions) suppresses(analyzer string, line int) bool {
	if s.fileWide["*"] || s.fileWide[analyzer] {
		return true
	}
	for _, n := range s.byLine[line] {
		if n == "*" || n == analyzer {
			return true
		}
	}
	return false
}
