package lint

// lockcopy flags copying, by value, any struct that (transitively)
// contains a sync lock or a sync/atomic value type. A copied
// sync.Mutex is a distinct, unlocked mutex — two goroutines each
// "holding" their own copy is exactly the storage-engine bug class the
// snapshot refactor removed the big RWMutex to avoid. A copied
// atomic.Pointer silently forks the published view. go vet's
// copylocks catches some of these; this analyzer extends the net to
// the atomic value types and keeps the check in the project's own
// gate so the suite stays self-contained.
//
// Flagged shapes: assigning or initializing from an existing
// lock-bearing value (x := *db, a = b), passing one by value as a call
// argument, declaring a by-value parameter or receiver of a
// lock-bearing type, and ranging over a slice/array of lock-bearing
// elements with a value variable. Constructing a fresh value (composite
// literal, new) is fine.

import (
	"go/ast"
	"go/types"
)

// LockCopy flags by-value copies of lock-bearing structs.
var LockCopy = &Analyzer{
	Name: "lockcopy",
	Doc:  "flags copying structs containing sync.Mutex/atomic values by value (a copied lock is a different lock; a copied atomic forks published state)",
	Run:  runLockCopy,
}

// syncValueTypes are the sync and sync/atomic types that must never be
// copied after first use.
var syncValueTypes = map[string]bool{
	"sync.Mutex":          true,
	"sync.RWMutex":        true,
	"sync.WaitGroup":      true,
	"sync.Once":           true,
	"sync.Cond":           true,
	"sync.Map":            true,
	"sync.Pool":           true,
	"sync/atomic.Bool":    true,
	"sync/atomic.Int32":   true,
	"sync/atomic.Int64":   true,
	"sync/atomic.Uint32":  true,
	"sync/atomic.Uint64":  true,
	"sync/atomic.Uintptr": true,
	"sync/atomic.Value":   true,
	"sync/atomic.Pointer": true,
}

type lockCache map[types.Type]bool

// containsLock reports whether t (not behind a pointer) transitively
// holds a sync value type.
func (c lockCache) containsLock(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := c[t]; ok {
		return v // includes in-progress cycle guard (false)
	}
	c[t] = false
	result := false
	switch u := t.(type) {
	case *types.Named:
		if obj := u.Obj(); obj.Pkg() != nil {
			if syncValueTypes[obj.Pkg().Path()+"."+obj.Name()] {
				result = true
				break
			}
		}
		result = c.containsLock(u.Underlying())
	case *types.Alias:
		result = c.containsLock(types.Unalias(t))
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c.containsLock(u.Field(i).Type()) {
				result = true
				break
			}
		}
	case *types.Array:
		result = c.containsLock(u.Elem())
	}
	c[t] = result
	return result
}

// copiesValue reports whether evaluating e yields a copy of an
// existing value (rather than a freshly constructed one).
func copiesValue(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.ParenExpr:
		return copiesValue(x.X)
	default:
		return false
	}
}

func runLockCopy(p *Pass) error {
	cache := make(lockCache)
	lockName := func(t types.Type) (string, bool) {
		if t == nil || !cache.containsLock(t) {
			return "", false
		}
		return types.TypeString(t, types.RelativeTo(p.Pkg)), true
	}
	inspectFiles(p, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if !copiesValue(rhs) {
					continue
				}
				if i < len(st.Lhs) {
					if id, ok := st.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						continue
					}
				}
				if name, bad := lockName(p.TypesInfo.TypeOf(rhs)); bad {
					p.Reportf(rhs.Pos(), "assignment copies %s by value; it contains a lock or atomic — use a pointer", name)
				}
			}
		case *ast.RangeStmt:
			if st.Value == nil {
				return true
			}
			if name, bad := lockName(p.TypesInfo.TypeOf(st.Value)); bad {
				p.Reportf(st.Value.Pos(), "range value copies %s per iteration; it contains a lock or atomic — range by index", name)
			}
		case *ast.CallExpr:
			for _, arg := range st.Args {
				if !copiesValue(arg) {
					continue
				}
				// Skip type arguments: new(T) and conversions name the
				// type, they do not copy a value of it.
				if tv, ok := p.TypesInfo.Types[arg]; ok && !tv.IsValue() {
					continue
				}
				if name, bad := lockName(p.TypesInfo.TypeOf(arg)); bad {
					p.Reportf(arg.Pos(), "call passes %s by value; it contains a lock or atomic — pass a pointer", name)
				}
			}
		case *ast.FuncDecl:
			check := func(fl *ast.FieldList) {
				if fl == nil {
					return
				}
				for _, field := range fl.List {
					if name, bad := lockName(p.TypesInfo.TypeOf(field.Type)); bad {
						p.Reportf(field.Type.Pos(), "by-value parameter or receiver of %s; it contains a lock or atomic — use a pointer", name)
					}
				}
			}
			check(st.Recv)
			check(st.Type.Params)
		}
		return true
	})
	return nil
}
