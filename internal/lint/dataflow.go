package lint

// The forward dataflow walker: a branch-cloning interpretation of one
// function body that tracks which mutex acquisitions are live at every
// call site and channel operation. Analyzers subscribe through
// flowEvents; lockorder uses the full machinery, goroutineleak reuses
// the channel-escape helpers at the bottom of the file.
//
// The abstraction is deliberately simple and over-approximate in the
// safe direction for ordering checks:
//
//   - at a branch the state is cloned per arm and the exits of
//     non-terminated arms are unioned;
//   - `defer mu.Unlock()` keeps the lock in the set for the rest of
//     the body (it really is held until return) but removes it from
//     the net-held summary the caller sees;
//   - a call applies its callee's summary: locks the callee leaves
//     held at return enter the set (db.lockWrite), locks it releases
//     leave it (db.unlockWrite);
//   - break/continue/goto conservatively terminate their path.
//
// Summaries are computed bottom-up over the call graph's SCC
// condensation, so helper pairs like lockWrite/unlockWrite are modeled
// precisely and recursion degrades to a sound-enough fixpoint rather
// than non-termination.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// A lockClass identifies one mutex for ordering purposes: a (named
// type, field) pair for struct-held mutexes, the variable for
// package-level and local ones.
type lockClass struct {
	key   string // stable identity
	label string // rendered in diagnostics
}

// lockInfo is what the walker knows about one held lock.
type lockInfo struct {
	pos   token.Pos // acquisition site (rewritten to the call site when propagated)
	rlock bool      // RLock rather than Lock
	expr  string    // receiver expression as written, "" when propagated loses it
}

// A lockSet maps held locks to how they were acquired.
type lockSet map[lockClass]lockInfo

func (s lockSet) clone() lockSet {
	c := make(lockSet, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// union keeps the first acquisition seen for a class.
func (s lockSet) union(o lockSet) {
	for k, v := range o {
		if _, ok := s[k]; !ok {
			s[k] = v
		}
	}
}

// sortedClasses returns the held classes in deterministic order.
func (s lockSet) sortedClasses() []lockClass {
	out := make([]lockClass, 0, len(s))
	for c := range s {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].key < out[j].key })
	return out
}

// funcSummary is the caller-visible lock behavior of one node.
type funcSummary struct {
	netHeld     lockSet            // held at return (beyond the caller's set)
	netReleased map[lockClass]bool // released at return without a local acquire
	acq         lockSet            // every acquisition anywhere inside (transitive)
	// blockingSend is the first channel send with no default/ctx escape
	// anywhere inside (transitive); NoPos when none.
	blockingSend token.Pos
}

// flowEvents subscribes an analyzer to the walker. Nil members are
// skipped. held is the state before the event applies.
type flowEvents struct {
	// acquire fires when a Lock/RLock executes.
	acquire func(c lockClass, info lockInfo, held lockSet)
	// call fires for every call that is not a lock operation, before
	// the callee's summary is applied.
	call func(call *ast.CallExpr, held lockSet)
	// chanop fires for channel sends and receives; sel is the
	// enclosing select statement when the op is a communication clause.
	chanop func(n ast.Node, send bool, ch ast.Expr, sel *ast.SelectStmt, held lockSet)
}

type flowWalker struct {
	p    *Pass
	g    *CallGraph
	sums map[*CGNode]*funcSummary
	ev   flowEvents

	acquired        lockSet // every acquisition in this body, incl. propagated
	released        map[lockClass]bool
	deferredRelease map[lockClass]bool
	exits           []lockSet
}

// flowFunc interprets one node with an empty entry set and returns its
// summary. sums supplies callee summaries (may be missing entries
// during the bottom-up pass; missing callees contribute nothing).
func flowFunc(p *Pass, g *CallGraph, n *CGNode, sums map[*CGNode]*funcSummary, ev flowEvents) *funcSummary {
	w := &flowWalker{
		p:               p,
		g:               g,
		sums:            sums,
		ev:              ev,
		acquired:        make(lockSet),
		released:        make(map[lockClass]bool),
		deferredRelease: make(map[lockClass]bool),
	}
	st, terminated := w.block(n.Body().List, make(lockSet))
	if !terminated {
		w.exits = append(w.exits, st)
	}
	sum := &funcSummary{
		netHeld:     make(lockSet),
		netReleased: w.released,
		acq:         w.acquired,
	}
	for _, exit := range w.exits {
		for c, info := range exit {
			if w.deferredRelease[c] {
				continue
			}
			if _, ok := sum.netHeld[c]; !ok {
				sum.netHeld[c] = info
			}
		}
	}
	// Transitive closure pieces that come from callees.
	walkOwnStmts(n.Body(), func(m ast.Node) {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return
		}
		for _, c := range calleeNodesOf(w.g, call) {
			if cs := sums[c]; cs != nil {
				sum.acq.union(cs.acq)
				if sum.blockingSend == token.NoPos && cs.blockingSend != token.NoPos {
					sum.blockingSend = cs.blockingSend
				}
			}
		}
	})
	if sum.blockingSend == token.NoPos {
		sum.blockingSend = w.directBlockingSend(n)
	}
	return sum
}

// directBlockingSend finds the first send in n's own statements with no
// default/ctx escape.
func (w *flowWalker) directBlockingSend(n *CGNode) token.Pos {
	pos := token.NoPos
	walkOwnStmts(n.Body(), func(m ast.Node) {
		if pos != token.NoPos {
			return
		}
		switch m := m.(type) {
		case *ast.SendStmt:
			if sel := enclosingSelect(n.Body(), m.Pos()); sel == nil || !selectEscapes(w.p, sel) {
				pos = m.Pos()
			}
		}
	})
	return pos
}

// computeSummaries produces summaries for every node, bottom-up over
// the SCC condensation of the call graph. Nodes in a cycle get a
// second pass so mutually recursive acquisitions converge.
func computeSummaries(p *Pass, g *CallGraph) map[*CGNode]*funcSummary {
	sums := make(map[*CGNode]*funcSummary)
	sccs := condense(g)
	for _, scc := range sccs { // already reverse-topological: callees first
		rounds := 1
		if len(scc) > 1 || selfLoop(scc[0]) {
			rounds = 2
		}
		for r := 0; r < rounds; r++ {
			for _, n := range scc {
				sums[n] = flowFunc(p, g, n, sums, flowEvents{})
			}
		}
	}
	return sums
}

func selfLoop(n *CGNode) bool {
	for _, c := range n.callees {
		if c == n {
			return true
		}
	}
	return false
}

// condense returns the strongly connected components of the call graph
// in reverse topological order (callees before callers) via Tarjan.
func condense(g *CallGraph) [][]*CGNode {
	index := make(map[*CGNode]int)
	low := make(map[*CGNode]int)
	onStack := make(map[*CGNode]bool)
	var stack []*CGNode
	var sccs [][]*CGNode
	next := 0

	var strong func(n *CGNode)
	strong = func(n *CGNode) {
		index[n] = next
		low[n] = next
		next++
		stack = append(stack, n)
		onStack[n] = true
		for _, c := range n.callees {
			if _, seen := index[c]; !seen {
				strong(c)
				if low[c] < low[n] {
					low[n] = low[c]
				}
			} else if onStack[c] && index[c] < low[n] {
				low[n] = index[c]
			}
		}
		if low[n] == index[n] {
			var scc []*CGNode
			for {
				m := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[m] = false
				scc = append(scc, m)
				if m == n {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range g.Nodes() {
		if _, seen := index[n]; !seen {
			strong(n)
		}
	}
	return sccs
}

// ---- statement interpretation ----

func (w *flowWalker) block(list []ast.Stmt, st lockSet) (lockSet, bool) {
	for _, s := range list {
		var terminated bool
		st, terminated = w.stmt(s, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (w *flowWalker) stmt(s ast.Stmt, st lockSet) (lockSet, bool) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.block(s.List, st)
	case *ast.ExprStmt:
		w.expr(s.X, st)
	case *ast.SendStmt:
		w.expr(s.Chan, st)
		w.expr(s.Value, st)
		w.emitChanop(s, true, s.Chan, nil, st)
	case *ast.IncDecStmt:
		w.expr(s.X, st)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.expr(e, st)
		}
		for _, e := range s.Lhs {
			w.expr(e, st)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.expr(e, st)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.expr(e, st)
		}
		w.exits = append(w.exits, st.clone())
		return st, true
	case *ast.BranchStmt:
		return st, true // conservative: break/continue/goto end this path
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		w.expr(s.Cond, st)
		thenSt, thenTerm := w.block(s.Body.List, st.clone())
		elseSt, elseTerm := st.clone(), false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, elseSt)
		}
		switch {
		case thenTerm && elseTerm:
			return st, s.Else != nil // both arms gone; without else the path continues
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			thenSt.union(elseSt)
			return thenSt, false
		}
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			w.expr(s.Cond, st)
		}
		bodySt, bodyTerm := w.block(s.Body.List, st.clone())
		if s.Post != nil && !bodyTerm {
			bodySt, _ = w.stmt(s.Post, bodySt)
		}
		out := st.clone() // zero iterations
		if !bodyTerm {
			out.union(bodySt)
		}
		return out, false
	case *ast.RangeStmt:
		w.expr(s.X, st)
		if t := w.p.TypesInfo.TypeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				w.emitChanop(s, false, s.X, nil, st)
			}
		}
		bodySt, bodyTerm := w.block(s.Body.List, st.clone())
		out := st.clone()
		if !bodyTerm {
			out.union(bodySt)
		}
		return out, false
	case *ast.SwitchStmt:
		return w.switchLike(s.Init, s.Tag, nil, s.Body, st)
	case *ast.TypeSwitchStmt:
		return w.switchLike(s.Init, nil, s.Assign, s.Body, st)
	case *ast.SelectStmt:
		var out lockSet
		allTerm := len(s.Body.List) > 0
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			cst := st.clone()
			if cc.Comm != nil {
				w.commClause(cc.Comm, s, cst)
			}
			bodySt, bodyTerm := w.block(cc.Body, cst)
			if !bodyTerm {
				allTerm = false
				if out == nil {
					out = bodySt
				} else {
					out.union(bodySt)
				}
			}
		}
		if out == nil {
			out = st
		}
		return out, allTerm
	case *ast.DeferStmt:
		w.deferCall(s.Call, st)
	case *ast.GoStmt:
		// Receiver and arguments evaluate now; the spawned body runs
		// with its own empty lock set and is analyzed as its own node.
		if se, ok := ast.Unparen(s.Call.Fun).(*ast.SelectorExpr); ok {
			w.expr(se.X, st)
		}
		for _, a := range s.Call.Args {
			w.expr(a, st)
		}
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)
	}
	return st, false
}

func (w *flowWalker) switchLike(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt, st lockSet) (lockSet, bool) {
	if init != nil {
		st, _ = w.stmt(init, st)
	}
	if tag != nil {
		w.expr(tag, st)
	}
	if assign != nil {
		st, _ = w.stmt(assign, st)
	}
	var out lockSet
	hasDefault := false
	for _, clause := range body.List {
		cc := clause.(*ast.CaseClause)
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			w.expr(e, st)
		}
		bodySt, bodyTerm := w.block(cc.Body, st.clone())
		if !bodyTerm {
			if out == nil {
				out = bodySt
			} else {
				out.union(bodySt)
			}
		}
	}
	if !hasDefault || out == nil {
		if out == nil {
			out = st.clone()
		} else {
			out.union(st)
		}
	}
	return out, false
}

// commClause interprets a select communication statement so its channel
// operation carries the enclosing select.
func (w *flowWalker) commClause(comm ast.Stmt, sel *ast.SelectStmt, st lockSet) {
	switch comm := comm.(type) {
	case *ast.SendStmt:
		w.expr(comm.Chan, st)
		w.expr(comm.Value, st)
		w.emitChanop(comm, true, comm.Chan, sel, st)
	case *ast.ExprStmt:
		if ue, ok := ast.Unparen(comm.X).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			w.expr(ue.X, st)
			w.emitChanop(ue, false, ue.X, sel, st)
		}
	case *ast.AssignStmt:
		for _, e := range comm.Rhs {
			if ue, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
				w.expr(ue.X, st)
				w.emitChanop(ue, false, ue.X, sel, st)
			} else {
				w.expr(e, st)
			}
		}
	}
}

// deferCall handles `defer f(...)`: a deferred Unlock (or a deferred
// call to a function that releases locks) keeps the lock held for the
// rest of the body but drops it from the net-held summary.
func (w *flowWalker) deferCall(call *ast.CallExpr, st lockSet) {
	if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(se.X, st)
	}
	for _, a := range call.Args {
		w.expr(a, st)
	}
	if c, _, op, ok := w.lockOp(call); ok {
		if op == "Unlock" || op == "RUnlock" {
			w.deferredRelease[c] = true
		}
		return
	}
	for _, node := range calleeNodesOf(w.g, call) {
		if cs := w.sums[node]; cs != nil {
			for c := range cs.netReleased {
				w.deferredRelease[c] = true
			}
		}
	}
}

// ---- expression interpretation ----

func (w *flowWalker) expr(e ast.Expr, st lockSet) {
	switch e := e.(type) {
	case *ast.CallExpr:
		w.call(e, st)
	case *ast.UnaryExpr:
		w.expr(e.X, st)
		if e.Op == token.ARROW {
			w.emitChanop(e, false, e.X, nil, st)
		}
	case *ast.BinaryExpr:
		w.expr(e.X, st)
		w.expr(e.Y, st)
	case *ast.ParenExpr:
		w.expr(e.X, st)
	case *ast.SelectorExpr:
		w.expr(e.X, st)
	case *ast.IndexExpr:
		w.expr(e.X, st)
		w.expr(e.Index, st)
	case *ast.IndexListExpr:
		w.expr(e.X, st)
	case *ast.SliceExpr:
		w.expr(e.X, st)
		for _, x := range []ast.Expr{e.Low, e.High, e.Max} {
			if x != nil {
				w.expr(x, st)
			}
		}
	case *ast.StarExpr:
		w.expr(e.X, st)
	case *ast.TypeAssertExpr:
		w.expr(e.X, st)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			w.expr(el, st)
		}
	case *ast.KeyValueExpr:
		w.expr(e.Key, st)
		w.expr(e.Value, st)
	case *ast.FuncLit:
		// A literal's body is its own graph node; nothing executes here.
	}
}

func (w *flowWalker) call(call *ast.CallExpr, st lockSet) {
	if tv, ok := w.p.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		for _, a := range call.Args {
			w.expr(a, st)
		}
		return // conversion
	}
	if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		w.expr(se.X, st)
	}
	for _, a := range call.Args {
		w.expr(a, st)
	}

	if c, info, op, ok := w.lockOp(call); ok {
		switch op {
		case "Lock", "RLock":
			if w.ev.acquire != nil {
				w.ev.acquire(c, info, st)
			}
			w.acquired[c] = info
			st[c] = info
		case "Unlock", "RUnlock":
			if _, held := st[c]; held {
				delete(st, c)
			} else {
				w.released[c] = true
			}
		}
		return
	}

	if w.ev.call != nil {
		w.ev.call(call, st)
	}
	// Apply callee summaries: what the callee leaves held or releases.
	for _, node := range calleeNodesOf(w.g, call) {
		cs := w.sums[node]
		if cs == nil {
			continue
		}
		for c, info := range cs.netHeld {
			if _, held := st[c]; !held {
				st[c] = lockInfo{pos: call.Pos(), rlock: info.rlock, expr: info.expr}
				w.acquired[c] = st[c]
			}
		}
		for c := range cs.netReleased {
			if _, held := st[c]; held {
				delete(st, c)
			} else {
				w.released[c] = true
			}
		}
	}
}

func (w *flowWalker) emitChanop(n ast.Node, send bool, ch ast.Expr, sel *ast.SelectStmt, st lockSet) {
	if w.ev.chanop != nil {
		w.ev.chanop(n, send, ch, sel, st)
	}
}

// ---- mutex recognition ----

// lockOp recognizes mu.Lock / mu.Unlock / mu.RLock / mu.RUnlock calls
// on sync.Mutex and sync.RWMutex values (including mutexes promoted
// from embedded fields) and classifies the receiver.
func (w *flowWalker) lockOp(call *ast.CallExpr) (lockClass, lockInfo, string, bool) {
	se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockClass{}, lockInfo{}, "", false
	}
	op := se.Sel.Name
	switch op {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return lockClass{}, lockInfo{}, "", false
	}
	info := w.p.TypesInfo
	recvT := info.TypeOf(se.X)
	if isSyncMutex(recvT) {
		c := w.classOf(se.X)
		return c, lockInfo{pos: call.Pos(), rlock: op == "RLock", expr: types.ExprString(se.X)}, op, true
	}
	// Promoted method from an embedded mutex: the whole struct is the
	// lock identity.
	if sel, ok := info.Selections[se]; ok && sel.Kind() == types.MethodVal {
		if fn, ok := sel.Obj().(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync" {
			if n := namedType(recvT); n != nil {
				c := lockClass{key: "type:" + n.Obj().Pkg().Name() + "." + n.Obj().Name(), label: n.Obj().Pkg().Name() + "." + n.Obj().Name()}
				return c, lockInfo{pos: call.Pos(), rlock: op == "RLock", expr: types.ExprString(se.X)}, op, true
			}
		}
	}
	return lockClass{}, lockInfo{}, "", false
}

func isSyncMutex(t types.Type) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// classOf derives the ordering identity of a mutex expression: the
// (owner type, field) pair for struct fields, the variable for
// package-level and local mutexes.
func (w *flowWalker) classOf(mu ast.Expr) lockClass {
	info := w.p.TypesInfo
	switch mu := ast.Unparen(mu).(type) {
	case *ast.SelectorExpr:
		if owner := namedType(info.TypeOf(mu.X)); owner != nil {
			pkg := ""
			if owner.Obj().Pkg() != nil {
				pkg = owner.Obj().Pkg().Name() + "."
			}
			label := pkg + owner.Obj().Name() + "." + mu.Sel.Name
			return lockClass{key: "field:" + label, label: label}
		}
	case *ast.Ident:
		if obj := info.ObjectOf(mu); obj != nil {
			if obj.Parent() == w.p.Pkg.Scope() {
				label := w.p.Pkg.Name() + "." + obj.Name()
				return lockClass{key: "pkgvar:" + label, label: label}
			}
			return lockClass{
				key:   "local:" + w.p.Fset.Position(obj.Pos()).String(),
				label: obj.Name(),
			}
		}
	}
	s := types.ExprString(mu)
	return lockClass{key: "expr:" + s, label: s}
}

// ---- channel escape helpers (shared with goroutineleak) ----

// selectEscapes reports whether a select statement can always make
// progress without the blocked communication: it has a default clause,
// or a case observing ctx.Done()/a timer channel.
func selectEscapes(p *Pass, sel *ast.SelectStmt) bool {
	for _, clause := range sel.Body.List {
		cc := clause.(*ast.CommClause)
		if cc.Comm == nil {
			return true // default
		}
		if ch, recv := commRecvChan(cc.Comm); recv && isCtxDoneOrTimerChan(p, ch) {
			return true
		}
	}
	return false
}

// commRecvChan extracts the channel of a receive communication clause.
func commRecvChan(comm ast.Stmt) (ast.Expr, bool) {
	var x ast.Expr
	switch comm := comm.(type) {
	case *ast.ExprStmt:
		x = comm.X
	case *ast.AssignStmt:
		if len(comm.Rhs) == 1 {
			x = comm.Rhs[0]
		}
	}
	if ue, ok := ast.Unparen(x).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
		return ue.X, true
	}
	return nil, false
}

// isCtxDoneOrTimerChan reports whether a received-from channel is a
// cancellation or clock signal: ctx.Done(), or any <-chan time.Time
// (time.After, Ticker.C, the clock package's After).
func isCtxDoneOrTimerChan(p *Pass, ch ast.Expr) bool {
	if call, ok := ast.Unparen(ch).(*ast.CallExpr); ok {
		if se, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && se.Sel.Name == "Done" {
			if isContextType(p.TypesInfo.TypeOf(se.X)) {
				return true
			}
		}
	}
	t := p.TypesInfo.TypeOf(ch)
	if t == nil {
		return false
	}
	chT, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	if n := namedType(chT.Elem()); n != nil {
		obj := n.Obj()
		if obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Path() == "time" {
			return true
		}
	}
	return false
}

// enclosingSelect returns the innermost select statement containing
// pos, searching only body's own statements (not nested literals).
func enclosingSelect(body *ast.BlockStmt, pos token.Pos) *ast.SelectStmt {
	var found *ast.SelectStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if sel, ok := n.(*ast.SelectStmt); ok && sel.Pos() <= pos && pos < sel.End() {
			found = sel
		}
		return true
	})
	return found
}
