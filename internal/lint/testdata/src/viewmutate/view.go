// Package tsdb is a viewmutate fixture shaped like the real storage
// engine: view.go owns the copy-on-write constructors and may mutate
// views freely; every other file must treat views as immutable.
package tsdb

type shard struct {
	points int64
}

type dbView struct {
	epoch  int64
	shards map[int64]*shard
	index  map[string]int
}

// deriveView is the legitimate copy-on-write layer: writes through a
// view inside view.go are the constructors doing their job.
func deriveView(base *dbView) *dbView {
	nv := *base
	nv.epoch++
	nv.index = make(map[string]int, len(base.index))
	for k, v := range base.index {
		nv.index[k] = v
	}
	return &nv
}
