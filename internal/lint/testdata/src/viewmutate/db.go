package tsdb

type db struct {
	view *dbView
}

func (d *db) badMutations(v *dbView) {
	v.epoch++                 // want "write through a dbView outside view.go"
	v.index["cpu"] = 1        // want "write through a dbView outside view.go"
	delete(v.index, "cpu")    // want "write through a dbView outside view.go"
	d.view.epoch = 7          // want "write through a dbView outside view.go"
	v.shards[0] = &shard{}    // want "write through a dbView outside view.go"
	v.shards[0].points = 1    // want "write through a dbView outside view.go"
	(*v).epoch = 9            // want "write through a dbView outside view.go"
	d.view.shards[1].points-- // want "write through a dbView outside view.go"
}

func (d *db) allowed(v *dbView) int64 {
	// Reads are fine, as are writes to locals and batch-owned clones
	// whose chain does not pass through a view.
	sh := v.shards[0]
	sh.points = 42
	n := v.epoch
	n++
	return n + sh.points
}

func (d *db) suppressed(v *dbView) {
	//lint:ignore viewmutate fixture demonstrates a documented escape
	v.epoch++
}
