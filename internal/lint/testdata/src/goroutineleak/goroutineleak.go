// Package ingest is the goroutineleak fixture: goroutines that can
// block forever on a channel with no ctx, close, default, or buffer
// escape — including one whose blocking op is only visible through the
// call graph.
package ingest

import (
	"context"
	"time"
)

// leakSend: unbuffered, never closed, no select — the send can block
// forever if the consumer goes away.
func leakSend() {
	ch := make(chan int)
	go func() { // want "block forever on channel send"
		ch <- 1
	}()
	_ = ch
}

// leakRecv: the receive side of the same bug.
func leakRecv() {
	ch := make(chan int)
	go func() { // want "block forever on channel receive"
		<-ch
	}()
}

// drain blocks forever on its parameter: the leak is inside a named
// function, invisible to any single-function analysis.
func drain(ch chan int) {
	for range ch {
		// The range only ends when ch is closed, and nobody closes it.
	}
}

func leakViaCall() {
	ch := make(chan int)
	go drain(ch) // want "block forever on channel receive"
}

// okClosed: the channel is closed in this package, so the range ends.
func okClosed() {
	ch := make(chan int)
	go func() {
		for range ch {
		}
	}()
	close(ch)
}

// okDefault: a select with default never blocks.
func okDefault() {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		default:
		}
	}()
}

// okCtx: a ctx.Done case bounds the wait.
func okCtx(ctx context.Context) {
	ch := make(chan int)
	go func() {
		select {
		case ch <- 1:
		case <-ctx.Done():
		}
	}()
}

// okBuffered: the send has somewhere to go (bounded treatment: a full
// buffer still blocks, but flagging every bounded queue would drown
// the real findings).
func okBuffered() {
	ch := make(chan int, 8)
	go func() {
		ch <- 1
	}()
}

// okTimer: <-chan time.Time receives always fire eventually.
func okTimer() {
	go func() {
		<-time.After(time.Second)
	}()
}

// suppressedLeak documents a deliberate forever-goroutine.
func suppressedLeak() {
	ch := make(chan int)
	//lint:ignore goroutineleak the process exits by os.Exit; this worker is meant to die with it
	go func() {
		<-ch
	}()
}
