// Package clocks is a clockdiscipline fixture: wall-clock calls are
// flagged everywhere outside internal/clock, with //lint:ignore as the
// deliberate escape.
package clocks

import "time"

func bad() time.Duration {
	t0 := time.Now()          // want "wall-clock time.Now outside internal/clock"
	time.Sleep(time.Second)   // want "wall-clock time.Sleep outside internal/clock"
	<-time.After(time.Second) // want "wall-clock time.After outside internal/clock"
	d := time.Since(t0)       // want "wall-clock time.Since outside internal/clock"
	_ = time.NewTicker(d)     // want "wall-clock time.NewTicker outside internal/clock"
	return d
}

func allowed() time.Time {
	// Durations, formatting, and parsing are pure — only clock reads
	// and timers are flagged.
	d := 5 * time.Minute
	t, _ := time.Parse(time.RFC3339, "2020-04-20T12:00:00Z")
	return t.Add(d)
}

func suppressed() time.Time {
	//lint:ignore clockdiscipline fixture demonstrates a documented escape
	return time.Now()
}
