// Package builder is the statssurface fixture: stats structs collected
// into a handleStats endpoint with one counter silently dropped, a
// whole-value escape, the mirrored-field rule for duplicated counters,
// and json-tag discipline on wire-facing Stats structs.
package builder

// EngineStats is collected field-by-field; Hidden never ships.
type EngineStats struct {
	Points  int64
	Dropped int64
	Hidden  int64
}

// PoolStats is carried into the response as a whole value, which
// surfaces every field at once.
type PoolStats struct {
	Busy int64
	Idle int64
}

// DiskStats and CompStats both keep a Sealed counter; serializing
// either one surfaces it (the mirrored-field rule), deleting the one
// serialization flags both.
type DiskStats struct {
	Bytes  int64
	Sealed int64
}

type CompStats struct {
	Raw    int64
	Sealed int64
}

// LegacyStats is a deliberate, documented exception.
type LegacyStats struct {
	Visible int64
	Ancient int64
}

func engineStats() EngineStats { return EngineStats{} }
func poolStats() PoolStats     { return PoolStats{} }
func diskStats() DiskStats     { return DiskStats{} }
func compStats() CompStats     { return CompStats{} }
func legacyStats() LegacyStats { return LegacyStats{} }

type server struct{}

func (s *server) handleStats() map[string]any {
	es := engineStats() // want "Hidden is never serialized"
	ps := poolStats()
	ds := diskStats()
	co := compStats() // Sealed is mirrored by the ds.Sealed read below
	//lint:ignore statssurface Ancient predates the builder and is scraped nowhere
	ls := legacyStats()

	out := map[string]any{
		"points":  es.Points,
		"dropped": es.Dropped,
		"pool":    ps, // whole value: every PoolStats field ships
		"bytes":   ds.Bytes,
		"sealed":  ds.Sealed,
		"raw":     co.Raw,
		"visible": ls.Visible,
	}
	return out
}

// WireStats opted into JSON, so every exported field must carry a
// snake_case, unique tag.
type WireStats struct {
	Good     int64 `json:"good"`
	Bad      int64 `json:"BadName"` // want "not snake_case"
	Dup      int64 `json:"good"`    // want "duplicate json tag"
	Untagged int64 // want "missing a json tag"
}

// QuietStats never opted into JSON: no tags, no findings.
type QuietStats struct {
	Raw int64
}
