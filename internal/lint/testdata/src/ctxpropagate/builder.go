// Package builder is a ctxpropagate fixture (the analyzer scopes to
// the pipeline packages by name): inside a function that takes a
// context, goroutines and condition-less loops must consult it.
package builder

import "context"

func badSpawn(ctx context.Context, work func()) {
	go work() // want "goroutine ignores the in-scope context.Context"
	for {     // want "condition-less loop ignores the in-scope context.Context"
		work()
	}
}

func goodSpawn(ctx context.Context, work func(context.Context)) {
	go work(ctx)
	go func() {
		<-ctx.Done()
	}()
	for {
		if ctx.Err() != nil {
			return
		}
		work(ctx)
	}
}

func noContext(work func()) {
	// Without a context in scope there is nothing to propagate.
	go work()
	for {
		work()
	}
}

func nestedOwnScope(ctx context.Context, handler func(context.Context)) {
	// A nested function that declares its own ctx parameter starts a
	// fresh scope; its body is judged when it runs.
	_ = func(inner context.Context) {
		go handler(inner)
	}
	go handler(ctx)
}

func suppressed(ctx context.Context, work func()) {
	//lint:ignore ctxpropagate fixture demonstrates a documented escape
	go work()
}
