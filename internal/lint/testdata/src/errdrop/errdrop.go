// Package errdrop is an errdrop fixture: discarded errors from
// Write*/Flush/Close/Sync calls are flagged; explicit discards,
// never-failing writers, and deferred closes are not.
package errdrop

import (
	"bufio"
	"bytes"
	"os"
	"strings"
)

func bad(f *os.File, bw *bufio.Writer) {
	f.Write([]byte("x")) // want "discarded error from Write"
	f.WriteString("x")   // want "discarded error from WriteString"
	bw.Flush()           // want "discarded error from Flush"
	f.Close()            // want "discarded error from Close"
	f.Sync()             // want "discarded error from Sync"
}

func allowed(f *os.File, sb *strings.Builder, bb *bytes.Buffer) error {
	defer f.Close() // deferred close on a read path is conventional
	sb.WriteString("never fails")
	bb.WriteString("never fails")
	_, _ = f.Write([]byte("explicit discard is a reviewable act"))
	_, err := f.Write([]byte("checked"))
	return err
}

func suppressed(f *os.File) {
	//lint:ignore errdrop fixture demonstrates a documented escape
	f.Close()
}
