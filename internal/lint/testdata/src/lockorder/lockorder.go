// Package tsdb is the lockorder fixture: acquisition-order cycles,
// self-deadlocks, and sends under a held mutex — including a cycle
// that only exists through a helper call, which the syntactic suite
// cannot see.
package tsdb

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var (
	a A
	b B
)

// lockAB establishes the order A.mu -> B.mu.
func lockAB() {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// lockBA closes the cycle: B.mu -> A.mu.
func lockBA() {
	b.mu.Lock()
	a.mu.Lock() // want "lock acquisition order cycle"
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

var (
	c C
	d D
)

// acquireC leaves C.mu held at return — the summary the dataflow
// walker propagates to callers.
func acquireC() {
	c.mu.Lock()
}

func releaseC() {
	c.mu.Unlock()
}

// viaHelperCD takes C.mu through the helper, then D.mu directly:
// order C.mu -> D.mu, invisible to any single-function analysis.
func viaHelperCD() {
	acquireC()
	d.mu.Lock()
	d.mu.Unlock()
	releaseC()
}

// viaHelperDC closes the interprocedural cycle: D.mu -> C.mu, where
// the second acquisition happens inside the callee.
func viaHelperDC() {
	d.mu.Lock()
	acquireC() // want "lock acquisition order cycle"
	releaseC()
	d.mu.Unlock()
}

type S struct{ mu sync.Mutex }

var s S

// double re-locks the same receiver: guaranteed self-deadlock.
func double() {
	s.mu.Lock()
	s.mu.Lock() // want "acquired while already held"
	s.mu.Unlock()
	s.mu.Unlock()
}

type Q struct {
	mu sync.Mutex
	ch chan int
}

// sendLocked blocks on an unguarded send with the mutex held.
func (q *Q) sendLocked(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want "channel send while holding"
}

// sendGuarded is the escape shape: select with default makes the send
// non-blocking, so holding the lock across it is fine.
func (q *Q) sendGuarded(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	select {
	case q.ch <- v:
	default:
	}
}

type E struct{ mu sync.Mutex }
type F struct{ mu sync.Mutex }

var (
	e E
	f F
)

// consistentOne and consistentTwo take E.mu -> F.mu in the same order:
// edges, but no cycle, no finding.
func consistentOne() {
	e.mu.Lock()
	f.mu.Lock()
	f.mu.Unlock()
	e.mu.Unlock()
}

func consistentTwo() {
	e.mu.Lock()
	defer e.mu.Unlock()
	f.mu.Lock()
	defer f.mu.Unlock()
}

type G struct {
	mu sync.Mutex
	ch chan int
}

// sendSuppressed documents a deliberate send-under-lock.
func (g *G) sendSuppressed(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	//lint:ignore lockorder the receiver is a same-process drain that never blocks
	g.ch <- v
}
