// Package suppression is a fixture for the directive layer itself
// (asserted explicitly by TestSuppressionDirectives, not via want
// comments): a lint:ignore without a reason is a finding and
// suppresses nothing; a list suppresses several analyzers at once.
package suppression

import (
	"os"
	"time"
)

//lint:ignore errdrop
func missingReason(f *os.File) {
	f.Close() // the malformed directive above does NOT suppress this
}

func listed(f *os.File) {
	//lint:ignore errdrop,clockdiscipline one directive may cover several analyzers
	f.WriteString(time.Now().String())
}
