// Package atomicfield is an atomicfield fixture: a field whose address
// feeds sync/atomic anywhere in the package must be accessed through
// sync/atomic everywhere in the package.
package atomicfield

import "sync/atomic"

type counter struct {
	hits  int64 // accessed atomically below
	other int64 // never accessed atomically — plain access is fine
}

func (c *counter) record(n int64) {
	atomic.AddInt64(&c.hits, n) // the atomic site itself is exempt
	c.other += n
}

func (c *counter) badSnapshot() (int64, int64) {
	return c.hits, c.other // want "field hits is accessed with sync/atomic elsewhere"
}

func (c *counter) badReset() {
	c.hits = 0 // want "field hits is accessed with sync/atomic elsewhere"
}

func (c *counter) goodSnapshot() int64 {
	return atomic.LoadInt64(&c.hits)
}

func (c *counter) suppressed() int64 {
	//lint:ignore atomicfield fixture demonstrates a documented escape
	return c.hits
}
