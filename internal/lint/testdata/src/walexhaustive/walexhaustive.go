// Package tsdb is the walexhaustive fixture: a miniature WAL with one
// op that is decoded but never applied (the exact bug class the
// kill-point matrix only catches dynamically), one op never encoded,
// and one composite-record field replay never reads. Deliberately
// import-free so the fuzz harness can type-check mutations of it
// without an importer.
package tsdb

type walOp byte

const (
	opWrite walOp = 1
	opClear walOp = 2
	opBatch walOp = 3
	opGhost walOp = 4 // want "never encoded"
)

type rollupOp struct {
	target string
	n      int
}

type walRecord struct {
	op     walOp
	points []int
	name   string
	extra  int // want "never read by WAL replay"
	//lint:ignore walexhaustive retained for wire compatibility with v1 segments
	legacy int
	ops    []rollupOp
}

// encode writes every op as a single byte — except opGhost, which is
// the seeded "forgot the encode arm" bug.
func encode(rec walRecord) []byte {
	var b []byte
	switch rec.op { // want "missing case opGhost"
	case opWrite:
		b = append(b, byte(opWrite))
	case opClear:
		b = append(b, byte(opClear))
	case opBatch:
		b = append(b, byte(opBatch))
	}
	b = append(b, byte(len(rec.points)))
	return b
}

// decode covers every op: the wire can still carry ghosts written by
// an older binary.
func decode(data []byte) walRecord {
	var rec walRecord
	if len(data) == 0 {
		return rec
	}
	op := walOp(data[0])
	switch op {
	case opWrite, opClear, opBatch, opGhost:
		rec.op = op
	}
	rec.points = append(rec.points, int(data[0]))
	return rec
}

// OpenDurable is the recovery entry point the reachability check
// anchors on.
func OpenDurable(data []byte) int {
	rec := decode(data)
	return apply(rec)
}

// apply replays one record. The missing opGhost arm means a ghost
// record written by an older binary is silently dropped on replay —
// the default clause does not excuse it.
func apply(rec walRecord) int {
	total := 0
	switch rec.op { // want "missing case opGhost"
	case opWrite:
		total += len(rec.points)
	case opClear:
		total += len(rec.name)
	case opBatch:
		for _, op := range rec.ops {
			total += op.n + len(op.target)
		}
	default:
		total++
	}
	return total
}
