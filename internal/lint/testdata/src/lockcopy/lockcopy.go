// Package lockcopy is a lockcopy fixture: by-value copies of structs
// that (transitively) hold a sync lock or sync/atomic value are
// flagged; pointers and fresh composite literals are fine.
package lockcopy

import (
	"sync"
	"sync/atomic"
)

type store struct {
	mu   sync.Mutex
	n    int
	view atomic.Pointer[int]
}

type wrapper struct {
	inner store // lock-bearing transitively
}

func bad(s store, w wrapper) { // want "by-value parameter or receiver of store" "by-value parameter or receiver of wrapper"
	c := s        // want "assignment copies store by value"
	c2 := w.inner // want "assignment copies store by value"
	use(w.inner)  // want "call passes store by value"
	_ = c.n + c2.n
	list := []store{{}, {}}
	for _, item := range list { // want "range value copies store per iteration"
		_ = item.n
	}
}

func (s store) badReceiver() {} // want "by-value parameter or receiver of store"

func use(s store) {} // want "by-value parameter or receiver of store"

func allowed() *store {
	fresh := store{}   // composite literal constructs, not copies
	p := &fresh        // pointers are fine
	q := new(store)    // so is new
	_ = []*store{p, q} // pointer slices don't copy
	return p
}

func suppressed(s *store) {
	//lint:ignore lockcopy fixture demonstrates a documented escape
	c := *s
	_ = c.n
}
