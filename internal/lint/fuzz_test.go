package lint

// FuzzWALExhaustive feeds mutated Go source through the full
// interprocedural pipeline — parse, type-check, call graph, dataflow,
// the deep analyzers — seeded with the walexhaustive fixture corpus
// (which is deliberately import-free, so the harness needs no
// importer). The property under test is robustness: malformed or
// half-type-checked syntax must never panic the engine; findings are
// free to vary.

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func FuzzWALExhaustive(f *testing.F) {
	dir := filepath.Join("testdata", "src", "walexhaustive")
	ents, err := os.ReadDir(dir)
	if err != nil {
		f.Fatal(err)
	}
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
	f.Fuzz(func(t *testing.T, src string) {
		fuzzDeepAnalyzers(src)
	})
}

// fuzzDeepAnalyzers runs the interprocedural analyzers over one source
// string, tolerating parse and type errors (partial type information
// is exactly the hostile input the engine must survive).
func fuzzDeepAnalyzers(src string) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fuzz.go", src, parser.ParseComments)
	if err != nil {
		return
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Error: func(error) {}} // collect-and-continue
	pkg, _ := conf.Check("fuzz", fset, []*ast.File{file}, info)
	if pkg == nil {
		return
	}
	shared := &facts{}
	for _, a := range Deep() {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     []*ast.File{file},
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(Diagnostic) {},
			facts:     shared,
		}
		_ = a.Run(pass)
	}
}

// TestFuzzSeedsClean replays the seed corpus through the fuzz body so
// `go test` exercises it even without -fuzz.
func TestFuzzSeedsClean(t *testing.T) {
	dir := filepath.Join("testdata", "src", "walexhaustive")
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if ent.IsDir() || !strings.HasSuffix(ent.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		fuzzDeepAnalyzers(string(data))
	}
}
