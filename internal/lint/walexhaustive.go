package lint

// Analyzer walexhaustive pins the WAL's structural invariant: every
// operation the log can record must be encodable and replayable, and
// every field of a composite record must actually be consumed by
// replay. PR 7's kill-point matrix probes this dynamically — it only
// catches a missing replay arm if a crash test happens to exercise
// that op. This analyzer catches it at compile time:
//
//   - every package-level constant of the `walOp` type must appear as
//     the operand of a byte conversion (the encode path writes ops as
//     single bytes);
//   - every switch over a walOp-typed value must list every walOp
//     constant as a case — a default clause does not excuse a missing
//     replay arm, because "unknown op" handling is exactly where a
//     forgotten op hides;
//   - every field of the `walRecord` struct (and of the record structs
//     nested in its slice fields, e.g. rollupOp) must be read by some
//     function reachable from OpenDurable, the recovery entry point.
//     A field that is encoded and decoded but never applied is dead
//     durability: data paid for on every write and dropped on replay.
//
// Packages that declare no walOp type are skipped, so the analyzer is
// self-scoping to the storage engine (and its fixtures).

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// WALExhaustive reports walOp constants missing from the encode path
// or a replay switch, and walRecord fields replay never reads.
var WALExhaustive = &Analyzer{
	Name: "walexhaustive",
	Doc:  "every walOp must be encoded and replayed, and every walRecord field must be read by replay",
	Run:  runWALExhaustive,
}

func runWALExhaustive(p *Pass) error {
	scope := p.Pkg.Scope()
	opTN, _ := scope.Lookup("walOp").(*types.TypeName)
	if opTN == nil {
		return nil
	}
	opType := opTN.Type()

	// The walOp constants, in declaration order.
	var opConsts []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), opType) {
			opConsts = append(opConsts, c)
		}
	}
	sort.Slice(opConsts, func(i, j int) bool { return opConsts[i].Pos() < opConsts[j].Pos() })
	if len(opConsts) == 0 {
		return nil
	}

	encoded := make(map[*types.Const]bool)
	type opSwitch struct {
		pos     token.Pos
		covered map[*types.Const]bool
	}
	var switches []opSwitch

	constOf := func(e ast.Expr) *types.Const {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		c, _ := p.TypesInfo.Uses[id].(*types.Const)
		if c != nil && types.Identical(c.Type(), opType) {
			return c
		}
		return nil
	}

	inspectFiles(p, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// byte(walOpX) / uint8(walOpX): the encode-path marker.
			tv, ok := p.TypesInfo.Types[n.Fun]
			if !ok || !tv.IsType() || len(n.Args) != 1 {
				return true
			}
			b, ok := tv.Type.Underlying().(*types.Basic)
			if !ok || b.Kind() != types.Uint8 {
				return true
			}
			if c := constOf(n.Args[0]); c != nil {
				encoded[c] = true
			}
		case *ast.SwitchStmt:
			if n.Tag == nil {
				return true
			}
			if t := p.TypesInfo.TypeOf(n.Tag); t == nil || !types.Identical(t, opType) {
				return true
			}
			sw := opSwitch{pos: n.Pos(), covered: make(map[*types.Const]bool)}
			for _, clause := range n.Body.List {
				for _, e := range clause.(*ast.CaseClause).List {
					if c := constOf(e); c != nil {
						sw.covered[c] = true
					}
				}
			}
			switches = append(switches, sw)
		}
		return true
	})

	for _, c := range opConsts {
		if !encoded[c] {
			p.Reportf(c.Pos(), "walOp constant %s is never encoded: no byte(%s) conversion in the write path", c.Name(), c.Name())
		}
	}
	for _, sw := range switches {
		for _, c := range opConsts {
			if !sw.covered[c] {
				p.Reportf(sw.pos, "switch on walOp is missing case %s; a default clause does not excuse a missing replay arm", c.Name())
			}
		}
	}

	checkRecordFields(p)
	return nil
}

// checkRecordFields verifies every field of walRecord (and of the
// record structs nested in its slice fields) is read by some function
// reachable from OpenDurable.
func checkRecordFields(p *Pass) {
	scope := p.Pkg.Scope()
	recTN, _ := scope.Lookup("walRecord").(*types.TypeName)
	if recTN == nil {
		return
	}
	rec, ok := recTN.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	g := p.callGraph()
	entries := g.FuncsNamed("OpenDurable")
	if len(entries) == 0 {
		return
	}

	// The record structs: walRecord plus named structs that are slice
	// or array elements of its fields.
	structs := []struct {
		name string
		st   *types.Struct
	}{{recTN.Name(), rec}}
	for i := 0; i < rec.NumFields(); i++ {
		t := rec.Field(i).Type()
		switch t := t.Underlying().(type) {
		case *types.Slice:
			if n := namedType(t.Elem()); n != nil {
				if st, ok := n.Underlying().(*types.Struct); ok {
					structs = append(structs, struct {
						name string
						st   *types.Struct
					}{n.Obj().Name(), st})
				}
			}
		case *types.Array:
			if n := namedType(t.Elem()); n != nil {
				if st, ok := n.Underlying().(*types.Struct); ok {
					structs = append(structs, struct {
						name string
						st   *types.Struct
					}{n.Obj().Name(), st})
				}
			}
		}
	}

	// Collect field reads inside the replay-reachable nodes. A selector
	// on the sole left side of a plain assignment is a write, anything
	// else is a read.
	read := make(map[*types.Var]bool)
	for node := range g.Reachable(entries...) {
		body := node.Body()
		writes := make(map[*ast.SelectorExpr]bool)
		walkOwnStmts(body, func(n ast.Node) {
			as, ok := n.(*ast.AssignStmt)
			if !ok || (as.Tok != token.ASSIGN && as.Tok != token.DEFINE) {
				return
			}
			for _, lhs := range as.Lhs {
				if se, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok {
					writes[se] = true
				}
			}
		})
		walkOwnStmts(body, func(n ast.Node) {
			se, ok := n.(*ast.SelectorExpr)
			if !ok || writes[se] {
				return
			}
			if sel, ok := p.TypesInfo.Selections[se]; ok && sel.Kind() == types.FieldVal {
				if f, ok := sel.Obj().(*types.Var); ok {
					read[f] = true
				}
			}
		})
	}

	for _, s := range structs {
		for i := 0; i < s.st.NumFields(); i++ {
			f := s.st.Field(i)
			if f.Embedded() {
				continue
			}
			if !read[f] {
				p.Reportf(f.Pos(), "%s field %s is never read by WAL replay (no read reachable from OpenDurable)", s.name, f.Name())
			}
		}
	}
}
