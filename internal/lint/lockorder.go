package lint

// Analyzer lockorder builds a lock-acquisition-order graph for the
// concurrency-heavy packages and reports potential deadlocks:
//
//   - cycles in the acquisition order (goroutine 1 takes A then B,
//     goroutine 2 takes B then A),
//   - a mutex re-acquired through the same receiver expression while
//     already held (guaranteed self-deadlock),
//   - a channel send executed while holding a mutex, with no default
//     or ctx escape — a blocked receiver then holds the lock
//     indefinitely, which is how monitoring daemons die quietly.
//
// Acquisition edges are discovered by the forward dataflow walker
// (dataflow.go) with function summaries applied at call sites, so the
// lockWrite/unlockWrite-style helper pairs and locks held across calls
// into other functions are modeled interprocedurally within the
// package. Cross-package calls are leaves: each subsystem owns its
// lock order.

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

var lockOrderScopedPackages = map[string]bool{
	"tsdb":    true,
	"ingest":  true,
	"builder": true,
}

// LockOrder reports lock-ordering cycles and locks held across
// blocking channel sends.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report mutex acquisition-order cycles, self-deadlocks, and locks held across blocking channel sends",
	Run:  runLockOrder,
}

type lockEdge struct {
	from, to lockClass
	pos      token.Pos // where `to` was acquired (or the call that acquires it)
	note     string
}

func runLockOrder(p *Pass) error {
	if !lockOrderScopedPackages[p.Pkg.Name()] {
		return nil
	}
	g := p.callGraph()
	sums := p.summaries()

	edges := make(map[[2]string]lockEdge)
	addEdge := func(from, to lockClass, pos token.Pos, note string) {
		k := [2]string{from.key, to.key}
		if _, ok := edges[k]; !ok {
			edges[k] = lockEdge{from: from, to: to, pos: pos, note: note}
		}
	}

	for _, node := range g.Nodes() {
		flowFunc(p, g, node, sums, flowEvents{
			acquire: func(c lockClass, info lockInfo, held lockSet) {
				if prev, ok := held[c]; ok {
					if info.expr != "" && prev.expr == info.expr && !(info.rlock && prev.rlock) {
						p.Reportf(info.pos, "%s acquired while already held (self-deadlock)", c.label)
					}
					return
				}
				for _, o := range held.sortedClasses() {
					addEdge(o, c, info.pos, "")
				}
			},
			call: func(call *ast.CallExpr, held lockSet) {
				if len(held) == 0 {
					return
				}
				for _, callee := range calleeNodesOf(g, call) {
					cs := sums[callee]
					if cs == nil {
						continue
					}
					for _, m := range cs.acq.sortedClasses() {
						if _, already := held[m]; already {
							continue
						}
						for _, o := range held.sortedClasses() {
							if o != m {
								addEdge(o, m, call.Pos(), " via call to "+callee.Name())
							}
						}
					}
					if cs.blockingSend != token.NoPos {
						p.Reportf(call.Pos(), "%s held across call to %s, which can block on a channel send with no default or ctx escape",
							heldLabels(held), callee.Name())
					}
				}
			},
			chanop: func(n ast.Node, send bool, ch ast.Expr, sel *ast.SelectStmt, held lockSet) {
				if !send || len(held) == 0 {
					return
				}
				if sel != nil && selectEscapes(p, sel) {
					return
				}
				p.Reportf(n.Pos(), "channel send while holding %s with no default or ctx escape; a blocked receiver holds the lock indefinitely",
					heldLabels(held))
			},
		})
	}

	reportLockCycles(p, edges)
	return nil
}

func heldLabels(held lockSet) string {
	var parts []string
	for _, c := range held.sortedClasses() {
		parts = append(parts, c.label)
	}
	return strings.Join(parts, ", ")
}

func calleeNodesOf(g *CallGraph, call *ast.CallExpr) []*CGNode {
	t := g.CalleesOf(call)
	var out []*CGNode
	for _, fn := range t.static {
		if n := g.NodeOf(fn); n != nil {
			out = append(out, n)
		}
	}
	for _, fn := range t.cha {
		if n := g.NodeOf(fn); n != nil {
			out = append(out, n)
		}
	}
	for _, lit := range t.lits {
		if n := g.LitNode(lit); n != nil {
			out = append(out, n)
		}
	}
	return out
}

// reportLockCycles finds cycles in the acquisition-order graph and
// reports one finding per cycle, positioned at the edge that closes it.
func reportLockCycles(p *Pass, edges map[[2]string]lockEdge) {
	// Adjacency, deterministic.
	adj := make(map[string][]lockEdge)
	classes := make(map[string]lockClass)
	for _, e := range edges {
		adj[e.from.key] = append(adj[e.from.key], e)
		classes[e.from.key] = e.from
		classes[e.to.key] = e.to
	}
	for k := range adj {
		sort.Slice(adj[k], func(i, j int) bool { return adj[k][i].to.key < adj[k][j].to.key })
	}
	keys := make([]string, 0, len(classes))
	for k := range classes {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	reported := make(map[string]bool) // canonical cycle id
	for _, start := range keys {
		path := []lockEdge{}
		onPath := map[string]bool{start: true}
		var dfs func(at string) bool
		dfs = func(at string) bool {
			for _, e := range adj[at] {
				if e.to.key == start {
					cycle := append(append([]lockEdge{}, path...), e)
					id := cycleID(cycle)
					if !reported[id] {
						reported[id] = true
						reportCycle(p, cycle)
					}
					continue
				}
				if onPath[e.to.key] {
					continue
				}
				onPath[e.to.key] = true
				path = append(path, e)
				dfs(e.to.key)
				path = path[:len(path)-1]
				delete(onPath, e.to.key)
			}
			return false
		}
		dfs(start)
	}
}

// cycleID canonicalizes a cycle (rotation-invariant) so each distinct
// cycle is reported once.
func cycleID(cycle []lockEdge) string {
	keys := make([]string, len(cycle))
	for i, e := range cycle {
		keys[i] = e.from.key
	}
	min := 0
	for i := range keys {
		if keys[i] < keys[min] {
			min = i
		}
	}
	rotated := make([]string, 0, len(keys))
	rotated = append(rotated, keys[min:]...)
	rotated = append(rotated, keys[:min]...)
	return strings.Join(rotated, "->")
}

func reportCycle(p *Pass, cycle []lockEdge) {
	var b strings.Builder
	b.WriteString(cycle[0].from.label)
	for _, e := range cycle {
		pos := p.Fset.Position(e.pos)
		fmt.Fprintf(&b, " -> %s (%s:%d%s)", e.to.label, filepath.Base(pos.Filename), pos.Line, e.note)
	}
	last := cycle[len(cycle)-1]
	p.Reportf(last.pos, "lock acquisition order cycle: %s", b.String())
}
