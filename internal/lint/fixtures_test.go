package lint

// The fixture harness is analysistest in miniature: each analyzer has
// a package under testdata/src/<name> whose source carries
// `// want "regex"` comments on the lines expected to be flagged
// (several quoted regexes on one line mean several findings). The
// harness runs the analyzer, then fails on any unexpected finding and
// any unmatched want — so the fixtures pin both the positives and the
// deliberate negatives (suppressions, exempt shapes).

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	loaderOnce sync.Once
	fixLoader  *Loader
	loaderErr  error
)

// fixtureLoader shares one Loader (and thus one type-checked standard
// library) across every fixture test.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	loaderOnce.Do(func() { fixLoader, loaderErr = NewLoader("") })
	if loaderErr != nil {
		t.Fatalf("NewLoader: %v", loaderErr)
	}
	return fixLoader
}

// runFixture loads testdata/src/<fixture> and runs the analyzers on it.
func runFixture(t *testing.T, fixture string, analyzers ...*Analyzer) ([]Finding, string) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	l := fixtureLoader(t)
	pkgs, err := l.Load(dir)
	if err != nil {
		t.Fatalf("load %s: %v", fixture, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load %s: got %d packages, want 1", fixture, len(pkgs))
	}
	findings, err := RunPackage(l, pkgs[0], analyzers)
	if err != nil {
		t.Fatalf("run %s: %v", fixture, err)
	}
	return findings, dir
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

var wantQuoted = regexp.MustCompile(`"([^"]*)"`)

// loadWants collects `// want "..."` expectations, keyed by file:line.
func loadWants(t *testing.T, dir string) map[string][]*want {
	t.Helper()
	out := make(map[string][]*want)
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			key := fmt.Sprintf("%s:%d", name, i+1)
			for _, m := range wantQuoted.FindAllStringSubmatch(line[idx:], -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regex %q: %v", key, m[1], err)
				}
				out[key] = append(out[key], &want{re: re})
			}
		}
	}
	return out
}

// checkFixture runs analyzers over a fixture and diffs the findings
// against its want comments.
func checkFixture(t *testing.T, fixture string, analyzers ...*Analyzer) {
	t.Helper()
	findings, dir := runFixture(t, fixture, analyzers...)
	wants := loadWants(t, dir)
	for _, f := range findings {
		if f.Suppressed {
			continue // suppressed findings are reported, not failed on
		}
		key := fmt.Sprintf("%s:%d", filepath.Base(f.Position.Filename), f.Position.Line)
		matched := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s: %s (%s)", key, f.Message, f.Analyzer)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("missing finding at %s matching %q", key, w.re)
			}
		}
	}
}

func TestClockDisciplineFixture(t *testing.T) { checkFixture(t, "clockdiscipline", ClockDiscipline) }
func TestViewMutateFixture(t *testing.T)      { checkFixture(t, "viewmutate", ViewMutate) }
func TestErrDropFixture(t *testing.T)         { checkFixture(t, "errdrop", ErrDrop) }
func TestLockCopyFixture(t *testing.T)        { checkFixture(t, "lockcopy", LockCopy) }
func TestAtomicFieldFixture(t *testing.T)     { checkFixture(t, "atomicfield", AtomicField) }
func TestCtxPropagateFixture(t *testing.T)    { checkFixture(t, "ctxpropagate", CtxPropagate) }
func TestLockOrderFixture(t *testing.T)       { checkFixture(t, "lockorder", LockOrder) }
func TestGoroutineLeakFixture(t *testing.T)   { checkFixture(t, "goroutineleak", GoroutineLeak) }
func TestWALExhaustiveFixture(t *testing.T)   { checkFixture(t, "walexhaustive", WALExhaustive) }
func TestStatsSurfaceFixture(t *testing.T)    { checkFixture(t, "statssurface", StatsSurface) }

// TestSuppressionDirectives pins the directive layer: a directive
// without a reason is itself a finding and suppresses nothing, while a
// well-formed analyzer list silences every listed analyzer at once.
func TestSuppressionDirectives(t *testing.T) {
	findings, _ := runFixture(t, "suppression", ErrDrop, ClockDiscipline)
	var malformed, errdrop, clockd, suppressed int
	for _, f := range findings {
		if f.Suppressed {
			suppressed++
			continue
		}
		switch f.Analyzer {
		case "suppression":
			malformed++
		case "errdrop":
			errdrop++
		case "clockdiscipline":
			clockd++
		default:
			t.Errorf("unexpected analyzer %q: %s", f.Analyzer, f)
		}
	}
	if malformed != 1 {
		t.Errorf("got %d malformed-directive findings, want 1", malformed)
	}
	// The malformed directive must not have suppressed the Close below
	// it; the listed directive must have silenced both analyzers.
	if errdrop != 1 {
		t.Errorf("got %d errdrop findings, want 1 (the Close under the malformed directive)", errdrop)
	}
	if clockd != 0 {
		t.Errorf("got %d clockdiscipline findings, want 0 (listed suppression)", clockd)
	}
	// The silenced findings are still reported, flagged Suppressed, so
	// -json output and the stale audit can see them.
	if suppressed != 2 {
		t.Errorf("got %d suppressed findings, want 2 (errdrop+clockdiscipline under the listed directive)", suppressed)
	}
}

// TestByName pins the analyzer-selection surface the CLI exposes.
func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("ByName(all) = %d analyzers, err %v; want %d", len(all), err, len(All()))
	}
	two, err := ByName("errdrop, clockdiscipline")
	if err != nil || len(two) != 2 {
		t.Fatalf("ByName subset: got %d analyzers, err %v", len(two), err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should error")
	}
}
